package telemetry

import (
	"os"
	"path/filepath"
	"testing"
)

func sampleResult(key string) SessionResult {
	return SessionResult{
		Key:        key,
		Session:    "s-1",
		SimNs:      5_000_000,
		Instret:    50_000,
		Exited:     true,
		Violations: 2,
		Detected:   true,
		Samples:    7,
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	st := NewMemStore()
	if _, ok := st.Get("k"); ok {
		t.Fatal("empty store returned a result")
	}
	want := sampleResult("k")
	if err := st.Put("k", want); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get("k")
	if !ok || got != want {
		t.Fatalf("Get = %+v/%v, want %+v", got, ok, want)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult("abc123")
	if err := st.Put("abc123", want); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}

	// A fresh store over the same directory serves the old result from disk.
	st2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st2.Get("abc123")
	if !ok || got != want {
		t.Fatalf("reopened Get = %+v/%v, want %+v", got, ok, want)
	}
	if _, ok := st2.Get("missing"); ok {
		t.Fatal("reopened store invented a result")
	}
}

func TestFileStoreSanitizesKeys(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	evil := "../../etc/passwd"
	if err := st.Put(evil, sampleResult(evil)); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].IsDir() {
		t.Fatalf("store wrote outside its dir: %v", ents)
	}
	if _, ok := st.Get(evil); !ok {
		t.Fatal("sanitized key no longer resolves")
	}
}

func TestCacheable(t *testing.T) {
	cases := []struct {
		r    SessionResult
		want bool
	}{
		{SessionResult{Key: "k"}, true},
		{SessionResult{}, false},
		{SessionResult{Key: "k", Canceled: true}, false},
		{SessionResult{Key: "k", TimedOut: true}, false},
	}
	for _, c := range cases {
		if got := c.r.cacheable(); got != c.want {
			t.Errorf("cacheable(%+v) = %v, want %v", c.r, got, c.want)
		}
	}
}
