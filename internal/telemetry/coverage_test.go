package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/cover"
)

// syntheticSnapshot builds a deterministic per-cell coverage snapshot
// through the real capture path: a guest view with one shared block and one
// cell-unique edge, plus a policy audit whose output rule is exercised only
// for even-length workload names — so dead-rule intersections have content.
func syntheticSnapshot(workload, policy string) *cover.Snapshot {
	c := cover.New()
	c.Guest.Configure(0x80000000, 0x1000)
	var sum uint32
	for _, b := range []byte(workload + "|" + policy) {
		sum = sum*31 + uint32(b)
	}
	pc := 0x80000100 + (sum%64)*8
	c.Guest.OnRetire(0x80000000, 0, 0x80000004) // shared straight-line hit
	c.Guest.OnRetire(pc, 0, pc+8)               // cell-unique edge

	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	pol := core.NewPolicy(l, li).WithFetchClearance(hi).WithOutput("uart0.tx", li)
	c.Audit.Configure(pol)
	l.LUB(hi, li)
	c.Audit.Fetch.Checks++
	if len(workload)%2 == 0 {
		c.Audit.Output("uart0.tx").Checks++
	}
	return cover.Capture(c,
		cover.RunID{Workload: workload, Policy: policy, Image: "stub", PolicyID: "stub-pol"},
		&cover.Verdict{Workload: workload, Policy: policy, Exited: true})
}

// fetchCellSnapshots pulls every cell result and returns the snapshots in
// index order.
func fetchCellSnapshots(t *testing.T, base, id string, want int) []*cover.Snapshot {
	t.Helper()
	r := doJSON(t, http.MethodGet, base+"/api/v1/campaigns/"+id+"/results?limit=1000", nil)
	if r.status != http.StatusOK {
		t.Fatalf("results: status = %d (%+v)", r.status, r.Error)
	}
	var page struct {
		Cells []CellInfo `json:"cells"`
	}
	if err := json.Unmarshal(r.Data, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(page.Cells), want)
	}
	snaps := make([]*cover.Snapshot, 0, want)
	for _, cell := range page.Cells {
		if cell.Result == nil || cell.Result.Cover == nil {
			t.Fatalf("cell %d has no coverage snapshot", cell.Index)
		}
		snaps = append(snaps, cell.Result.Cover)
	}
	return snaps
}

func TestCampaignCoverageRollup(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(4))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", CampaignSpec{
		ID:        "cov",
		Policies:  []string{"p1", "p2"},
		Workloads: []string{"wa", "wbx"}, // wa exercises the output rule, wbx leaves it dead
		Cover:     true,
	})
	if r.status != http.StatusCreated {
		t.Fatalf("create: status = %d (%+v)", r.status, r.Error)
	}
	waitCampaignDone(t, ts.URL, "cov", 4)

	// The rollup's merged snapshot must be bit-identical to the offline
	// fold of the per-cell snapshots in index order.
	snaps := fetchCellSnapshots(t, ts.URL, "cov", 4)
	offline, err := cover.MergeAll(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/api/v1/campaigns/cov/coverage?format=snapshot")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coverage snapshot: status = %d: %s", resp.StatusCode, raw)
	}
	if !bytes.Equal(raw, offline.JSON()) {
		t.Errorf("served merge differs from offline merge:\n--- served ---\n%s\n--- offline ---\n%s", raw, offline.JSON())
	}

	// The enveloped rollup: every cell covered, the dead-rule intersection
	// a subset of every cell's own dead rules, and per-cell frontiers with
	// the first cell contributing everything it has.
	rr := doJSON(t, http.MethodGet, ts.URL+"/api/v1/campaigns/cov/coverage", nil)
	if rr.status != http.StatusOK {
		t.Fatalf("coverage: status = %d (%+v)", rr.status, rr.Error)
	}
	var cc campaignCoverage
	if err := json.Unmarshal(rr.Data, &cc); err != nil {
		t.Fatal(err)
	}
	if cc.CoveredCells != 4 || len(cc.Frontier) != 4 || len(cc.MergeErrors) != 0 {
		t.Fatalf("rollup = covered %d, frontier %d, errors %v", cc.CoveredCells, len(cc.Frontier), cc.MergeErrors)
	}
	for _, dead := range cc.DeadRules {
		for i, s := range snaps {
			found := false
			for _, d := range s.Audit.DeadRules {
				if d == dead {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("merged dead rule %q not dead in cell %d", dead, i)
			}
		}
	}
	// "wa" cells exercised the output rule, so it must NOT survive the
	// intersection even though "wbx" cells left it dead.
	if joined := strings.Join(cc.DeadRules, "\n"); strings.Contains(joined, "uart0.tx") {
		t.Errorf("intersection kept a rule exercised in half the cells: %v", cc.DeadRules)
	}
	// Per-policy intersection: each policy row has one wa and one wbx cell,
	// so the output rule dies in neither row's intersection.
	for pol, dead := range cc.DeadRulesByPolicy {
		if joined := strings.Join(dead, "\n"); strings.Contains(joined, "uart0.tx") {
			t.Errorf("policy %s intersection kept exercised rule: %v", pol, dead)
		}
	}
	if f0 := cc.Frontier[0]; !f0.Frontier.Contributes() || f0.Frontier.NewEdges != snaps[0].EdgeCount() {
		t.Errorf("first cell frontier = %+v, want all %d edges new", f0.Frontier, snaps[0].EdgeCount())
	}

	// Rollup gauges on /metrics, labeled by campaign.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		`vpdift_campaign_edges_total{campaign="cov"}`,
		`vpdift_campaign_frontier_cells{campaign="cov"}`,
		`vpdift_campaign_dead_rules{campaign="cov"}`,
		"# TYPE vpdift_campaign_edges_total gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

func TestCampaignCoverageDiff(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(4))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	mk := func(id string, workloads ...string) {
		r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", CampaignSpec{
			ID: id, Policies: []string{"p1"}, Workloads: workloads, Cover: true,
		})
		if r.status != http.StatusCreated {
			t.Fatalf("create %s: status = %d (%+v)", id, r.status, r.Error)
		}
		waitCampaignDone(t, ts.URL, id, len(workloads))
	}
	mk("small", "wa")
	mk("big", "wa", "wbx")

	// big adds wbx's coverage over small: progress, not a regression.
	r := doJSON(t, http.MethodGet, ts.URL+"/api/v1/campaigns/big/coverage/diff?against=small", nil)
	if r.status != http.StatusOK {
		t.Fatalf("diff: status = %d (%+v)", r.status, r.Error)
	}
	var d campaignCoverageDiff
	if err := json.Unmarshal(r.Data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Regression || len(d.Diff.NewEdges) == 0 || len(d.Diff.LostEdges) != 0 {
		t.Errorf("big vs small: %s", d.Diff.JSON())
	}

	// The reverse direction loses wbx's edge: a regression.
	r = doJSON(t, http.MethodGet, ts.URL+"/api/v1/campaigns/small/coverage/diff?against=big", nil)
	if r.status != http.StatusOK {
		t.Fatalf("reverse diff: status = %d (%+v)", r.status, r.Error)
	}
	if err := json.Unmarshal(r.Data, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Regression || len(d.Diff.LostEdges) == 0 {
		t.Errorf("small vs big not a regression: %s", d.Diff.JSON())
	}

	// Parameter validation.
	if r := doJSON(t, http.MethodGet, ts.URL+"/api/v1/campaigns/big/coverage/diff", nil); r.status != http.StatusBadRequest {
		t.Errorf("missing against: status = %d", r.status)
	}
	if r := doJSON(t, http.MethodGet, ts.URL+"/api/v1/campaigns/big/coverage/diff?against=nope", nil); r.status != http.StatusNotFound {
		t.Errorf("unknown against: status = %d", r.status)
	}
	if r := doJSON(t, http.MethodGet, ts.URL+"/api/v1/campaigns/nope/coverage", nil); r.status != http.StatusNotFound {
		t.Errorf("unknown campaign coverage: status = %d", r.status)
	}
}

func TestCampaignCoverageWithoutCover(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(2))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", CampaignSpec{
		ID: "plain", Policies: []string{"p1"}, Workloads: []string{"wa"},
	})
	if r.status != http.StatusCreated {
		t.Fatalf("create: status = %d (%+v)", r.status, r.Error)
	}
	waitCampaignDone(t, ts.URL, "plain", 1)

	// The rollup exists but is empty; the raw-snapshot form is a 404.
	rr := doJSON(t, http.MethodGet, ts.URL+"/api/v1/campaigns/plain/coverage", nil)
	if rr.status != http.StatusOK {
		t.Fatalf("coverage: status = %d (%+v)", rr.status, rr.Error)
	}
	var cc campaignCoverage
	if err := json.Unmarshal(rr.Data, &cc); err != nil {
		t.Fatal(err)
	}
	if cc.CoveredCells != 0 || cc.Merged != nil {
		t.Errorf("uncovered campaign has coverage: %+v", cc)
	}
	resp, err := http.Get(ts.URL + "/api/v1/campaigns/plain/coverage?format=snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("snapshot of uncovered campaign: status = %d, want 404", resp.StatusCode)
	}
}
