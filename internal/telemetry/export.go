package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteJSONL writes the retained samples oldest-first, one JSON object per
// line. Each line carries the simulated timestamp, the derived rates, and
// the full metric map (keys sorted by encoding/json, so output is
// deterministic for a deterministic run).
func (s *Sampler) WriteJSONL(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := json.NewEncoder(w)
	var err error
	s.each(func(sm *Sample) {
		if err == nil {
			err = enc.Encode(sm)
		}
	})
	return err
}

// csvHeader lists the fixed CSV columns; the full metric map does not fit a
// rectangular format, so CSV carries the derived rates plus the headline
// gauges and JSONL carries everything.
var csvHeader = []string{
	"seq", "t_ns", "wall_ns", "instret",
	"mips", "taint_events_per_s", "violations",
	"decode_cache_hit_ratio", "bus_bytes_per_s",
}

// WriteCSV writes the retained samples oldest-first as CSV with a header
// row — the spreadsheet-friendly companion to WriteJSONL.
func (s *Sampler) WriteCSV(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	var err error
	s.each(func(sm *Sample) {
		if err != nil {
			return
		}
		err = cw.Write([]string{
			strconv.FormatUint(sm.Seq, 10),
			strconv.FormatUint(uint64(sm.Time), 10),
			strconv.FormatInt(int64(sm.Wall), 10),
			strconv.FormatUint(sm.Metrics["sim.instret"], 10),
			strconv.FormatFloat(sm.Derived.MIPS, 'g', -1, 64),
			strconv.FormatFloat(sm.Derived.TaintEventRate, 'g', -1, 64),
			strconv.FormatUint(sm.Derived.Violations, 10),
			strconv.FormatFloat(sm.Derived.DecodeCacheHitRatio, 'g', -1, 64),
			strconv.FormatFloat(sm.Derived.BusBytesPerSec, 'g', -1, 64),
		})
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
