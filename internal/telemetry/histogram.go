package telemetry

import (
	"sync/atomic"
	"time"
)

// DurationBuckets is the default latency bucket ladder shared by every
// serving-plane histogram (HTTP request duration, queue wait, service time):
// 100µs to 30s, roughly 2.5x per step. Sessions on the "micro" workload
// finish well under a millisecond while a large Table II row runs for tens
// of seconds, so the ladder has to span five orders of magnitude.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket duration histogram built for the serving hot
// path: Observe is lock-free (one atomic add per call after a linear scan of
// ~17 int64 bounds) and allocates nothing, so instrumenting a request costs
// nanoseconds whether or not anyone ever scrapes /metrics. Buckets are
// cumulative only at render time; internally each counter holds its own
// bucket so Observe touches exactly one slot.
type Histogram struct {
	boundsSec []float64 // ascending upper bounds, seconds (for rendering)
	boundsNs  []int64   // the same bounds in nanoseconds (for comparing)
	counts    []atomic.Uint64
	inf       atomic.Uint64
	count     atomic.Uint64
	sumNs     atomic.Int64
}

// NewHistogram creates a histogram over ascending upper bounds given in
// seconds. With no bounds it uses DurationBuckets.
func NewHistogram(boundsSec ...float64) *Histogram {
	if len(boundsSec) == 0 {
		boundsSec = DurationBuckets
	}
	h := &Histogram{
		boundsSec: boundsSec,
		boundsNs:  make([]int64, len(boundsSec)),
		counts:    make([]atomic.Uint64, len(boundsSec)),
	}
	for i, b := range boundsSec {
		h.boundsNs[i] = int64(b * float64(time.Second))
	}
	return h
}

// Observe records one duration. Negative durations count as zero. Safe for
// concurrent use; never allocates.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for i, bound := range h.boundsNs {
		if ns <= bound {
			h.counts[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Count returns how many observations the histogram has recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations in seconds.
func (h *Histogram) Sum() float64 {
	return float64(h.sumNs.Load()) / float64(time.Second)
}

// snapshot returns the cumulative per-bucket counts (one per bound, +Inf
// last), the total count, and the sum in seconds. The load is not atomic
// across buckets; a concurrent Observe may appear in count but not yet in a
// bucket, so rendering tops the +Inf bucket up to count to keep the exposed
// series internally consistent.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sumSec float64) {
	cum = make([]uint64, len(h.counts)+1)
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	running += h.inf.Load()
	cum[len(cum)-1] = running
	count = h.count.Load()
	if cum[len(cum)-1] > count {
		count = cum[len(cum)-1]
	}
	cum[len(cum)-1] = count
	return cum, count, h.Sum()
}
