package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"vpdift/internal/cover"
)

// SessionResult is the durable outcome of one finished session: the part of
// a run that is a pure function of (image, policy, stimulus) and therefore
// safe to serve from the result store on a repeated submission. Wall-clock
// and sample counts are informational — they describe the run that produced
// the result, not the result itself.
type SessionResult struct {
	// Key is the (image, policy, stimulus) content hash the result is
	// stored under; empty for sessions submitted without one.
	Key string `json:"key,omitempty"`
	// Session names the session that produced the result.
	Session string `json:"session,omitempty"`
	// SimNs is the simulated time reached when the session ended.
	SimNs uint64 `json:"sim_time_ns"`
	// Instret is the number of retired instructions.
	Instret uint64 `json:"instret"`
	// Exited reports whether the guest powered off, with its exit code.
	Exited   bool   `json:"exited"`
	ExitCode uint32 `json:"exit_code,omitempty"`
	// Violations sums every violations.* counter at session end.
	Violations uint64 `json:"violations"`
	// Detected reports whether the session ended on a policy violation —
	// the Table I verdict for attack workloads.
	Detected bool `json:"detected"`
	// Error is the run error that ended the session, "" for a clean end.
	Error string `json:"error,omitempty"`
	// Fault carries the guest-fault headline (faulting PC, cause, access
	// address) when the session ended on a bus error or unhandled trap.
	Fault *FaultDetail `json:"fault,omitempty"`
	// Forensics reports that the session kept a flight-recorder bundle,
	// served on GET /api/v1/sessions/{id}/forensics while the session is
	// registered. Results replayed from the store have no live bundle.
	Forensics bool `json:"forensics,omitempty"`
	// Canceled marks results of sessions ended by DELETE or server drain;
	// they are never cached.
	Canceled bool `json:"canceled,omitempty"`
	// TimedOut marks sessions that hit their wall-clock timeout; never
	// cached either.
	TimedOut bool `json:"timed_out,omitempty"`
	// WallNs is host wall-clock time the session spent running (0 for
	// results served from the store).
	WallNs int64 `json:"wall_ns,omitempty"`
	// Samples is the sampler's total at session end, when one was attached.
	Samples uint64 `json:"samples,omitempty"`
	// Cover is the coverage snapshot captured at session end when the spec
	// asked for one ("cover": true). Being part of the stored result, cells
	// replayed from the result store keep their coverage identity.
	Cover *cover.Snapshot `json:"cover,omitempty"`
}

// cacheable reports whether the result may be served for future submissions
// of the same key: only complete, uncanceled runs are.
func (r SessionResult) cacheable() bool {
	return r.Key != "" && !r.Canceled && !r.TimedOut
}

// ResultStore is the dedup cache behind the campaign runner: results are
// keyed by the (image, policy, stimulus) content hash computed by the
// session factory, so resubmitting identical work is a cache hit instead of
// a re-simulation. Implementations must be safe for concurrent use.
type ResultStore interface {
	// Get returns the stored result for key.
	Get(key string) (SessionResult, bool)
	// Put stores the result under key, replacing any previous entry.
	Put(key string, r SessionResult) error
	// Len returns how many results are stored.
	Len() int
}

// MemStore is the in-process ResultStore: a map under a mutex. It is the
// default store of a NewServer without WithResultStore.
type MemStore struct {
	mu sync.Mutex
	m  map[string]SessionResult
}

// NewMemStore creates an empty in-memory result store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string]SessionResult)} }

// Get returns the stored result for key.
func (st *MemStore) Get(key string) (SessionResult, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, ok := st.m[key]
	return r, ok
}

// Put stores the result under key.
func (st *MemStore) Put(key string, r SessionResult) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.m[key] = r
	return nil
}

// Len returns how many results are stored.
func (st *MemStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// FileStore persists results as one JSON file per key under a directory, so
// the dedup cache survives server restarts. Reads hit an in-memory cache
// first and fall back to disk, so a store reopened over an existing
// directory serves its old results.
type FileStore struct {
	dir string
	mem MemStore
	// loadErrors counts disk reads that found a file but could not use it
	// (I/O error or corrupt JSON) — a silent-degradation signal the server
	// surfaces as vpdift_serve_store_load_errors_total.
	loadErrors atomic.Uint64
}

// LoadErrors returns how many on-disk results failed to load (unreadable
// file or corrupt JSON). A plain miss — no file — is not an error.
func (st *FileStore) LoadErrors() uint64 { return st.loadErrors.Load() }

// NewFileStore opens (creating if needed) a directory-backed result store.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: result store: %w", err)
	}
	return &FileStore{dir: dir, mem: MemStore{m: make(map[string]SessionResult)}}, nil
}

// path maps a key to its file. Keys are hex content hashes, but guard
// against anything path-like all the same.
func (st *FileStore) path(key string) string {
	key = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, key)
	return filepath.Join(st.dir, key+".json")
}

// Get returns the stored result for key, reading through to disk on a
// memory miss.
func (st *FileStore) Get(key string) (SessionResult, bool) {
	if r, ok := st.mem.Get(key); ok {
		return r, true
	}
	b, err := os.ReadFile(st.path(key))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			st.loadErrors.Add(1)
		}
		return SessionResult{}, false
	}
	var r SessionResult
	if json.Unmarshal(b, &r) != nil {
		st.loadErrors.Add(1)
		return SessionResult{}, false
	}
	st.mem.Put(key, r)
	return r, true
}

// Put stores the result under key, writing the file atomically
// (write-to-temp + rename) so a concurrent reader never sees a torn entry.
func (st *FileStore) Put(key string, r SessionResult) error {
	st.mem.Put(key, r)
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.dir, ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), st.path(key))
}

// Len returns how many results are on disk.
func (st *FileStore) Len() int {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return st.mem.Len()
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}
