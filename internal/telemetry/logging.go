package telemetry

import (
	"context"
	"log/slog"
	"strconv"
	"sync/atomic"
	"time"
)

// ctxKey keys context values owned by this package.
type ctxKey int

const requestIDKey ctxKey = iota

// ContextWithRequestID returns ctx carrying a request ID. The server's HTTP
// middleware attaches one to every request (minted, or taken from an
// inbound X-Request-Id header), and the session/campaign creation paths pull
// it back out so lifecycle logs can be joined to the request that caused
// them.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the request ID carried by ctx, "" when absent.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// requestIDs mints process-unique request IDs: a boot-time epoch prefix (so
// IDs from different server lives never collide in aggregated logs) plus a
// sequence number.
type requestIDs struct {
	prefix string
	seq    atomic.Uint64
}

func newRequestIDs() *requestIDs {
	return &requestIDs{prefix: "r" + strconv.FormatInt(time.Now().UnixMilli(), 36) + "-"}
}

func (g *requestIDs) next() string {
	return g.prefix + strconv.FormatUint(g.seq.Add(1), 36)
}

// discardHandler is the default slog sink: Enabled always answers false, so
// an unconfigured server skips attribute assembly entirely — logging follows
// the repo's disabled-is-free contract. (The stdlib grew slog.DiscardHandler
// in a later release; this keeps the module's floor where it is.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// nopLogger returns a logger that drops everything without formatting it.
func nopLogger() *slog.Logger { return slog.New(discardHandler{}) }

// WithLogger installs the server's structured logger: request logs, session
// and campaign lifecycle transitions, drain progress. The default logger
// discards everything at zero formatting cost; vp-serve wires one from its
// -log-level/-log-format flags.
func WithLogger(l *slog.Logger) ServerOption {
	return func(o *serverOptions) {
		if l != nil {
			o.log = l
		}
	}
}
