package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/flight"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
)

// Platform is the slice of *soc.Platform the server needs. Keeping it an
// interface here (rather than importing soc) breaks the soc→telemetry→soc
// cycle and lets tests drive the server with a stub.
type Platform interface {
	// Run advances the simulation to the horizon (kernel.Simulator.Run
	// semantics: the clock never passes it).
	Run(horizon kernel.Time) error
	// Now returns the current simulated time.
	Now() kernel.Time
	// MetricsSnapshotInto fills dst with the platform's current counters.
	MetricsSnapshotInto(dst map[string]uint64)
	// Observer returns the attached observer, nil when observability is off.
	Observer() *obs.Observer
	// Exited reports whether the guest powered off, with its exit code.
	Exited() (bool, uint32)
}

// SessionConfig describes one simulation to serve.
type SessionConfig struct {
	// ID names the session in URLs and the session label on /metrics.
	ID string
	// Platform is the simulation; the owning worker runs it and all HTTP
	// access is serialized against it through the session mutex.
	Platform Platform
	// Sampler, when set, backs the /timeseries endpoint. The caller starts
	// it (soc wires it through Config.Telemetry); the server only reads.
	Sampler *Sampler
	// Step is how much simulated time each locked Run chunk advances.
	// Defaults to 1ms — long enough to amortize lock traffic, short enough
	// that scrapes never wait perceptibly.
	Step kernel.Time
	// Horizon ends the session when simulated time reaches it; 0 runs until
	// the guest exits or the session is stopped.
	Horizon kernel.Time
	// Drive, when set, is called between chunks (under the session lock) to
	// feed the simulation — e.g. delivering the next immobilizer challenge.
	// Returning an error ends the session.
	Drive func() error
	// Priority orders the pending queue: higher runs sooner, FIFO within a
	// level. Default 0.
	Priority int
	// Timeout bounds the session's host wall-clock run time; exceeding it
	// ends the session with a timeout error. 0 means no limit.
	Timeout time.Duration
	// Key is the (image, policy, stimulus) content hash used for result
	// dedup. Empty keys are never cached.
	Key string
	// Close, when set, releases the platform (soc.Platform.Shutdown) once
	// the session has finalized; the server snapshots final metrics first.
	Close func()
	// CoverSnapshot, when set, freezes the platform's coverage into a
	// cross-run snapshot at finalize time (before Close releases the
	// platform); the result lands in SessionResult.Cover. Factories set it
	// when the spec asked for coverage.
	CoverSnapshot func() *cover.Snapshot
	// Origin is the request ID of the HTTP request that created the session,
	// "" for programmatic submissions. It joins the session's lifecycle log
	// lines and trace spans back to the request log.
	Origin string
}

// Version is the build version stamped into the vpdift_build_info metric.
// Overridable at link time:
//
//	go build -ldflags "-X vpdift/internal/telemetry.Version=v1.2.3"
var Version = "dev"

// Session lifecycle states, as reported in the API.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled"
)

// session wraps a platform with the mutex that serializes the run loop
// against HTTP readers. The kernel is single-threaded by design; the mutex
// is the only thing that makes snapshots safe while the loop runs.
type session struct {
	cfg      SessionConfig
	seq      uint64 // FIFO stamp, assigned by the pool
	origin   string // request ID that created the session, "" if programmatic
	stop     chan struct{}
	stopOnce sync.Once

	mu        sync.Mutex // guards the platform and the fields below
	state     string
	done      bool
	finalized bool
	canceled  bool
	timedOut  bool
	err       error
	started   time.Time
	lc        lifecycle         // wall-clock lifecycle stamps
	final     map[string]uint64 // metrics snapshot taken at finalize
	simNs     uint64
	result    SessionResult
	forensics *flight.Bundle // frozen at finalize for failed sessions
	callbacks []func(SessionResult)
}

func (s *session) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

func (s *session) cancel() { s.stopOnce.Do(func() { close(s.stop) }) }

// onDone registers fn to run with the session's result once it finalizes;
// if it already has, fn runs immediately. Used by campaigns to coalesce
// cells onto in-flight sessions.
func (s *session) onDone(fn func(SessionResult)) {
	s.mu.Lock()
	if s.finalized {
		r := s.result
		s.mu.Unlock()
		fn(r)
		return
	}
	s.callbacks = append(s.callbacks, fn)
	s.mu.Unlock()
}

// ServerOption configures a Server, mirroring the vpdift.NewPlatform
// options facade.
type ServerOption func(*serverOptions)

type serverOptions struct {
	workers    int
	queueDepth int
	store      ResultStore
	factory    SessionFactory
	timeout    time.Duration
	log        *slog.Logger
}

// Default pool sizing: one worker per scheduler thread (floored at 2 so a
// one-CPU host still interleaves an endless session with new arrivals) and
// a queue deep enough for fleet-scale campaign bursts.
const DefaultQueueDepth = 4096

// WithWorkers sets the worker-pool size; n <= 0 keeps the default
// (GOMAXPROCS, floored at 2).
func WithWorkers(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.workers = n
		}
	}
}

// WithQueueDepth caps how many sessions may wait in the pending queue;
// submissions beyond it fail with ErrQueueFull (HTTP 429). n <= 0 keeps
// DefaultQueueDepth.
func WithQueueDepth(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.queueDepth = n
		}
	}
}

// WithResultStore sets the dedup result store (default: a fresh MemStore).
func WithResultStore(st ResultStore) ServerOption {
	return func(o *serverOptions) {
		if st != nil {
			o.store = st
		}
	}
}

// WithFactory installs the session factory that backs POST /api/v1/sessions
// and /api/v1/campaigns. Without one, those endpoints report that session
// creation over HTTP is not configured.
func WithFactory(f SessionFactory) ServerOption {
	return func(o *serverOptions) { o.factory = f }
}

// WithSessionTimeout sets the default wall-clock timeout applied to
// factory-built sessions whose spec does not choose one. 0 means no limit.
func WithSessionTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.timeout = d }
}

// serverStats counts scheduling outcomes; exposed on /healthz and as
// serve.* metrics.
type serverStats struct {
	submitted    atomic.Uint64
	completed    atomic.Uint64
	canceled     atomic.Uint64
	timedOut     atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	forced       atomic.Uint64
	coalesced    atomic.Uint64
	rejectedFull atomic.Uint64
}

// Stats is a point-in-time snapshot of the server's scheduling counters.
type Stats struct {
	Submitted     uint64 `json:"submitted"`
	Completed     uint64 `json:"completed"`
	Canceled      uint64 `json:"canceled"`
	TimedOut      uint64 `json:"timed_out"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	Forced        uint64 `json:"forced"`
	Coalesced     uint64 `json:"coalesced"`
	RejectedFull  uint64 `json:"rejected_full"`
	Queued        int    `json:"queued"`
	Running       int    `json:"running"`
	Workers       int    `json:"workers"`
	QueueDepth    int    `json:"queue_depth"`
	StoredResults int    `json:"stored_results"`
}

// Server schedules simulation sessions onto a bounded worker pool and
// serves them over a versioned HTTP API. Create with NewServer, submit
// sessions with Submit (or POST /api/v1/sessions when a factory is
// configured), expose Handler on any http.Server.
type Server struct {
	opts      serverOptions
	pool      *pool
	stats     serverStats
	log       *slog.Logger
	metrics   *serverMetrics
	reqIDs    *requestIDs
	startedAt time.Time
	ready     atomic.Bool // readiness gate for /readyz; true once serving

	// submitMu serializes multi-session submissions (campaign expansion)
	// against the pool's capacity check so a campaign is admitted or
	// rejected atomically.
	submitMu sync.Mutex

	mu        sync.Mutex
	sessions  map[string]*session
	order     []string
	byKey     map[string]*session // live session per dedup key, for coalescing
	campaigns map[string]*campaign
	campOrder []string
	nextID    uint64
	closed    bool
}

// NewServer creates a server. With no options it has a GOMAXPROCS-sized
// worker pool, a DefaultQueueDepth pending queue, an in-memory result
// store, and no session factory (sessions are submitted programmatically).
func NewServer(opts ...ServerOption) *Server {
	o := serverOptions{
		workers:    runtime.GOMAXPROCS(0),
		queueDepth: DefaultQueueDepth,
	}
	if o.workers < 2 {
		o.workers = 2
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.store == nil {
		o.store = NewMemStore()
	}
	if o.log == nil {
		o.log = nopLogger()
	}
	sv := &Server{
		opts:      o,
		log:       o.log,
		metrics:   newServerMetrics(),
		reqIDs:    newRequestIDs(),
		startedAt: time.Now(),
		sessions:  make(map[string]*session),
		byKey:     make(map[string]*session),
		campaigns: make(map[string]*campaign),
	}
	sv.ready.Store(true)
	sv.pool = newPool(o.workers, o.queueDepth, sv.runSession)
	return sv
}

// SetReady flips the /readyz readiness gate. vp-serve holds it false while
// preloading sessions so an orchestrator does not route traffic at a server
// still building platforms; Drain and Close clear it permanently.
func (sv *Server) SetReady(ready bool) { sv.ready.Store(ready) }

// Workers returns the pool size.
func (sv *Server) Workers() int { return sv.opts.workers }

// Store returns the server's result store.
func (sv *Server) Store() ResultStore { return sv.opts.store }

// Stats returns the current scheduling counters.
func (sv *Server) Stats() Stats {
	queued, running := sv.pool.load()
	return Stats{
		Submitted:     sv.stats.submitted.Load(),
		Completed:     sv.stats.completed.Load(),
		Canceled:      sv.stats.canceled.Load(),
		TimedOut:      sv.stats.timedOut.Load(),
		CacheHits:     sv.stats.cacheHits.Load(),
		CacheMisses:   sv.stats.cacheMisses.Load(),
		Forced:        sv.stats.forced.Load(),
		Coalesced:     sv.stats.coalesced.Load(),
		RejectedFull:  sv.stats.rejectedFull.Load(),
		Queued:        queued,
		Running:       running,
		Workers:       sv.opts.workers,
		QueueDepth:    sv.opts.queueDepth,
		StoredResults: sv.opts.store.Len(),
	}
}

// Submit registers a session and queues it on the worker pool. It fails
// with ErrQueueFull at capacity and ErrDraining after Drain/Close.
func (sv *Server) Submit(cfg SessionConfig) error {
	if cfg.ID == "" || cfg.Platform == nil {
		return fmt.Errorf("telemetry: session needs an ID and a Platform")
	}
	if cfg.Step == 0 {
		cfg.Step = kernel.Time(1_000_000) // 1ms
	}
	s := &session{cfg: cfg, origin: cfg.Origin, stop: make(chan struct{}), state: StateQueued}
	s.lc.submitted = time.Now()

	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return ErrDraining
	}
	if _, dup := sv.sessions[cfg.ID]; dup {
		sv.mu.Unlock()
		return fmt.Errorf("telemetry: duplicate session %q: %w", cfg.ID, ErrDuplicateID)
	}
	sv.sessions[cfg.ID] = s
	sv.order = append(sv.order, cfg.ID)
	if cfg.Key != "" {
		sv.byKey[cfg.Key] = s
	}
	sv.mu.Unlock()

	if err := sv.pool.submit(s); err != nil {
		if errors.Is(err, ErrQueueFull) {
			sv.stats.rejectedFull.Add(1)
		}
		sv.unregister(s)
		if cfg.Close != nil {
			cfg.Close()
		}
		return err
	}
	sv.stats.submitted.Add(1)
	if sv.log.Enabled(context.Background(), slog.LevelInfo) {
		sv.log.LogAttrs(context.Background(), slog.LevelInfo, "session submitted",
			slog.String("session", cfg.ID),
			slog.String("request_id", cfg.Origin),
			slog.String("key", cfg.Key),
			slog.Int("priority", cfg.Priority),
		)
	}
	return nil
}

// Add registers a session and queues it for execution.
//
// Deprecated: Add is the PR 5 name; new code uses Submit (identical
// behavior on today's Server — sessions now run on the bounded worker pool
// rather than a goroutine each).
func (sv *Server) Add(cfg SessionConfig) error { return sv.Submit(cfg) }

// unregister removes a session from the registries (failed submit, DELETE).
func (sv *Server) unregister(s *session) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.sessions[s.cfg.ID] == s {
		delete(sv.sessions, s.cfg.ID)
		for i, id := range sv.order {
			if id == s.cfg.ID {
				sv.order = append(sv.order[:i], sv.order[i+1:]...)
				break
			}
		}
	}
	if s.cfg.Key != "" && sv.byKey[s.cfg.Key] == s {
		delete(sv.byKey, s.cfg.Key)
	}
}

// Cancel stops a session: a queued one is pulled from the pool and
// finalized immediately, a running one stops at its next chunk boundary.
// Returns false for unknown IDs.
func (sv *Server) Cancel(id string) bool {
	s := sv.get(id)
	if s == nil {
		return false
	}
	s.cancel()
	if sv.pool.remove(s) {
		sv.finalize(s)
	}
	return true
}

// EndSession cancels a session, waits for it to finalize (bounded), and
// removes it from the registry — the DELETE /api/v1/sessions/{id}
// semantics. The final result is returned.
func (sv *Server) EndSession(id string) (SessionResult, error) {
	s := sv.get(id)
	if s == nil {
		return SessionResult{}, fmt.Errorf("telemetry: unknown session %q", id)
	}
	s.cancel()
	if sv.pool.remove(s) {
		sv.finalize(s)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		fin := s.finalized
		r := s.result
		s.mu.Unlock()
		if fin {
			sv.unregister(s)
			return r, nil
		}
		if time.Now().After(deadline) {
			return SessionResult{}, fmt.Errorf("telemetry: session %q did not stop", id)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Drain stops intake and waits for queued and running sessions to finish —
// the graceful-shutdown half of SIGTERM handling. On ctx expiry the
// remainder keeps running; call Close to cancel it. /readyz reports 503
// from the moment drain begins.
func (sv *Server) Drain(ctx context.Context) error {
	sv.ready.Store(false)
	sv.log.LogAttrs(ctx, slog.LevelInfo, "drain started")
	err := sv.pool.drain(ctx)
	if err != nil {
		sv.log.LogAttrs(context.Background(), slog.LevelWarn, "drain incomplete",
			slog.String("error", err.Error()))
	} else {
		sv.log.LogAttrs(context.Background(), slog.LevelInfo, "drain complete")
	}
	return err
}

// Close stops every session and the worker pool. Queued sessions finalize
// as canceled; running ones stop at their next chunk boundary. Platforms
// with a Close hook are released.
func (sv *Server) Close() {
	sv.ready.Store(false)
	sv.mu.Lock()
	sv.closed = true
	all := make([]*session, 0, len(sv.order))
	for _, id := range sv.order {
		all = append(all, sv.sessions[id])
	}
	sv.mu.Unlock()
	for _, s := range all {
		s.cancel()
	}
	for _, s := range sv.pool.close() {
		sv.finalize(s)
	}
}

func (sv *Server) get(id string) *session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.sessions[id]
}

func (sv *Server) all() []*session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make([]*session, 0, len(sv.order))
	for _, id := range sv.order {
		out = append(out, sv.sessions[id])
	}
	return out
}

// liveByKey returns the in-flight session for a dedup key, if any.
func (sv *Server) liveByKey(key string) *session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.byKey[key]
}

// runSession is the worker-pool body: advance the platform in Step-sized
// chunks, holding the session lock only while the kernel runs, so scrapes
// interleave between chunks.
func (sv *Server) runSession(s *session) {
	if s.stopped() {
		sv.finalize(s)
		return
	}
	s.mu.Lock()
	s.state = StateRunning
	s.started = time.Now()
	s.lc.started = s.started
	wait := s.started.Sub(s.lc.submitted)
	var deadline time.Time
	if s.cfg.Timeout > 0 {
		deadline = s.started.Add(s.cfg.Timeout)
	}
	s.mu.Unlock()
	// Queue wait is booked at dequeue, not finalize, so an endless session
	// (the immo preload) still contributes its wait to the histogram.
	sv.metrics.queueWait.Observe(wait)
	if sv.log.Enabled(context.Background(), slog.LevelDebug) {
		sv.log.LogAttrs(context.Background(), slog.LevelDebug, "session started",
			slog.String("session", s.cfg.ID),
			slog.String("request_id", s.origin),
			slog.Duration("queue_wait", wait),
		)
	}

	pl := s.cfg.Platform
	for {
		if s.stopped() {
			sv.finalize(s)
			return
		}
		s.mu.Lock()
		target := pl.Now() + s.cfg.Step
		if s.cfg.Horizon != 0 && target > s.cfg.Horizon {
			target = s.cfg.Horizon
		}
		err := pl.Run(target)
		if err == nil && s.cfg.Drive != nil {
			err = s.cfg.Drive()
		}
		exited, _ := pl.Exited()
		finished := err != nil || exited || (s.cfg.Horizon != 0 && pl.Now() >= s.cfg.Horizon)
		if !finished && !deadline.IsZero() && time.Now().After(deadline) {
			err = fmt.Errorf("telemetry: session timeout after %v", s.cfg.Timeout)
			s.timedOut = true
			finished = true
		}
		if finished {
			s.err = err
			s.done = true
		}
		s.mu.Unlock()
		if finished {
			sv.finalize(s)
			return
		}
		// Yield between chunks so HTTP readers can take the lock. Simulated
		// time advances even through guest idle (the kernel idles to the
		// chunk horizon), so there is nothing to busy-poll for.
		time.Sleep(50 * time.Microsecond)
	}
}

// finalize snapshots the session's terminal state, publishes its result to
// the store, fires completion callbacks, and releases the platform. Safe to
// call more than once; only the first call acts.
func (sv *Server) finalize(s *session) {
	s.mu.Lock()
	if s.finalized {
		s.mu.Unlock()
		return
	}
	s.finalized = true
	s.lc.finished = time.Now()
	if !s.started.IsZero() {
		sv.metrics.serviceTime.Observe(s.lc.finished.Sub(s.started))
	}
	if !s.done {
		// Stopped before completing (cancel or drain-kill).
		s.canceled = true
		s.state = StateCanceled
	} else {
		s.state = StateDone
	}
	s.done = true
	pl := s.cfg.Platform
	m := make(map[string]uint64, 64)
	pl.MetricsSnapshotInto(m)
	s.final = m
	s.simNs = uint64(pl.Now())
	exited, code := pl.Exited()
	var violations uint64
	for k, n := range m {
		if strings.HasPrefix(k, "violations.") {
			violations += n
		}
	}
	r := SessionResult{
		Key:        s.cfg.Key,
		Session:    s.cfg.ID,
		SimNs:      s.simNs,
		Instret:    m["sim.instret"],
		Exited:     exited,
		ExitCode:   code,
		Violations: violations,
		Canceled:   s.canceled,
		TimedOut:   s.timedOut,
	}
	if !s.started.IsZero() {
		r.WallNs = time.Since(s.started).Nanoseconds()
	}
	if s.cfg.Sampler != nil {
		r.Samples = s.cfg.Sampler.Total()
	}
	if s.err != nil {
		r.Error = s.err.Error()
		r.Fault = faultDetail(s.err)
		var v *core.Violation
		if errors.As(s.err, &v) {
			r.Detected = true
		}
	}
	// Freeze the flight-recorder bundle now, while the platform is still
	// alive — the Close hook below releases it.
	s.forensics = s.captureForensics(violations)
	r.Forensics = s.forensics != nil
	// Likewise the coverage snapshot: capture before Close.
	if s.cfg.CoverSnapshot != nil {
		r.Cover = s.cfg.CoverSnapshot()
	}
	s.result = r
	cbs := s.callbacks
	s.callbacks = nil
	closeFn := s.cfg.Close
	s.mu.Unlock()

	if r.cacheable() {
		sv.opts.store.Put(r.Key, r)
	}
	s.mu.Lock()
	s.lc.stored = time.Now()
	state := s.state
	s.mu.Unlock()
	if s.cfg.Key != "" {
		sv.mu.Lock()
		if sv.byKey[s.cfg.Key] == s {
			delete(sv.byKey, s.cfg.Key)
		}
		sv.mu.Unlock()
	}
	switch {
	case s.canceled:
		sv.stats.canceled.Add(1)
	case s.timedOut:
		sv.stats.timedOut.Add(1)
	default:
		sv.stats.completed.Add(1)
	}
	if sv.log.Enabled(context.Background(), slog.LevelInfo) {
		attrs := []slog.Attr{
			slog.String("session", s.cfg.ID),
			slog.String("request_id", s.origin),
			slog.String("state", state),
			slog.Uint64("sim_ns", r.SimNs),
			slog.Uint64("instret", r.Instret),
			slog.Uint64("violations", r.Violations),
			slog.Int64("wall_ns", r.WallNs),
		}
		if r.Error != "" {
			attrs = append(attrs, slog.String("error", r.Error))
		}
		sv.log.LogAttrs(context.Background(), slog.LevelInfo, "session finished", attrs...)
	}
	for _, cb := range cbs {
		cb(r)
	}
	if closeFn != nil {
		closeFn()
	}
}

// sessionInfo is the session JSON shape (legacy /api/sessions and the
// "data" payload of the v1 session endpoints).
type sessionInfo struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Priority int    `json:"priority,omitempty"`
	Key      string `json:"key,omitempty"`
	SimNs    uint64 `json:"sim_time_ns"`
	Instret  uint64 `json:"instret"`
	Samples  uint64 `json:"samples"`
	Done     bool   `json:"done"`
	Exited   bool   `json:"exited"`
	ExitCode uint32 `json:"exit_code,omitempty"`
	Error    string `json:"error,omitempty"`
	// Fault is the guest-fault headline when the session died on a bus
	// error or unhandled trap.
	Fault *FaultDetail `json:"fault,omitempty"`
	// Forensics reports that a flight-recorder bundle was kept; fetch it on
	// GET /api/v1/sessions/{id}/forensics.
	Forensics bool `json:"forensics,omitempty"`
	// Timings is the session's wall-clock lifecycle (queue wait, run, store
	// publication); open spans are reported up to the request time.
	Timings *SessionTimings `json:"timings,omitempty"`
}

func (s *session) info() sessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := sessionInfo{
		ID:       s.cfg.ID,
		State:    s.state,
		Priority: s.cfg.Priority,
		Key:      s.cfg.Key,
		Done:     s.done,
		Timings:  s.lc.timings(time.Now()),
	}
	if s.finalized {
		info.SimNs = s.result.SimNs
		info.Instret = s.result.Instret
		info.Exited = s.result.Exited
		info.ExitCode = s.result.ExitCode
		info.Fault = s.result.Fault
		info.Forensics = s.result.Forensics
	} else {
		m := make(map[string]uint64, 64)
		s.cfg.Platform.MetricsSnapshotInto(m)
		exited, code := s.cfg.Platform.Exited()
		info.SimNs = uint64(s.cfg.Platform.Now())
		info.Instret = m["sim.instret"]
		info.Exited = exited
		info.ExitCode = code
	}
	if s.cfg.Sampler != nil {
		info.Samples = s.cfg.Sampler.Total()
	}
	if s.err != nil {
		info.Error = s.err.Error()
	}
	return info
}

// metrics returns the session's counter snapshot: live from the platform
// while it runs, the frozen finalize-time snapshot afterwards (the platform
// may have been released).
func (s *session) metrics() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]uint64, 64)
	if s.finalized {
		for k, v := range s.final {
			m[k] = v
		}
		return m
	}
	s.cfg.Platform.MetricsSnapshotInto(m)
	return m
}

// Handler returns the server's HTTP routes. Versioned API (all JSON bodies
// use the {"data":...} / {"error":{"code","message"}} envelope; streaming
// responses — SSE, JSONL, CSV — are raw):
//
//	GET    /healthz                              liveness + scheduler counters
//	GET    /readyz                               readiness: 503 while preloading or draining
//	GET    /metrics                              Prometheus text format, all sessions
//	GET    /api/v1/sessions                      session list
//	POST   /api/v1/sessions                      create a session from a SessionSpec
//	GET    /api/v1/sessions/{id}                 one session's state
//	DELETE /api/v1/sessions/{id}                 cancel and remove a session
//	GET    /api/v1/sessions/{id}/result          final result (409 until done)
//	GET    /api/v1/sessions/{id}/forensics       flight-recorder bundle (?format=report for text)
//	GET    /api/v1/sessions/{id}/timeseries      sampler ring (?format=jsonl|csv streams raw)
//	GET    /api/v1/sessions/{id}/events          SSE tail of the observer event ring
//	GET    /api/v1/campaigns                     campaign list
//	POST   /api/v1/campaigns                     run N policies x M workloads
//	GET    /api/v1/campaigns/{id}                campaign progress
//	DELETE /api/v1/campaigns/{id}                cancel a campaign's sessions
//	GET    /api/v1/campaigns/{id}/results        paginated cells (?offset,limit) or SSE (?stream=sse)
//	GET    /api/v1/results/{key}                 result-store lookup by content hash
//	GET    /api/v1/trace                         session lifecycles as a Chrome trace timeline
//
// Deprecated aliases of the PR 5 surface (raw shapes, Deprecation header):
//
//	GET /api/sessions                            session list as a bare JSON array
//	GET /api/sessions/{id}/timeseries            sampler ring as JSONL (?format=csv)
//	GET /api/sessions/{id}/events                SSE tail of the observer event ring
//
// Unknown v1 paths return an enveloped 404; known paths with a wrong method
// return an enveloped 405 with an Allow header.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// handle registers a pattern with route capture: inside the mux dispatch
	// the cloned request carries http.Request.Pattern, which the wrapper
	// stashes on the pooled statusWriter so the instrument middleware can
	// book the request under its route without re-matching (a wildcard match
	// would allocate). The type assertion on a concrete pointer is free.
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if sw, ok := w.(*statusWriter); ok {
				sw.pattern = r.Pattern
			}
			h(w, r)
		})
	}
	handle("GET /healthz", sv.handleHealthz)
	handle("GET /readyz", sv.handleReadyz)
	handle("GET /metrics", sv.handleMetrics)

	// Versioned surface. Patterns carry no method so the handlers can
	// answer wrong-method requests with an enveloped 405 + Allow.
	handle("/api/v1/sessions", sv.v1Sessions)
	handle("/api/v1/sessions/{id}", sv.v1Session)
	handle("/api/v1/sessions/{id}/result", sv.v1SessionResult)
	handle("/api/v1/sessions/{id}/forensics", sv.v1Forensics)
	handle("/api/v1/sessions/{id}/timeseries", sv.v1Timeseries)
	handle("/api/v1/sessions/{id}/events", sv.v1Events)
	handle("/api/v1/campaigns", sv.v1Campaigns)
	handle("/api/v1/campaigns/{id}", sv.v1Campaign)
	handle("/api/v1/campaigns/{id}/results", sv.v1CampaignResults)
	handle("/api/v1/campaigns/{id}/coverage", sv.v1CampaignCoverage)
	handle("/api/v1/campaigns/{id}/coverage/diff", sv.v1CampaignCoverageDiff)
	handle("/api/v1/results/{key}", sv.v1StoredResult)
	handle("/api/v1/trace", sv.handleTrace)
	handle("/api/v1/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "no such v1 route: "+r.URL.Path)
	})

	// Deprecated PR 5 aliases: same raw response shapes, plus headers
	// pointing migrators at the v1 successor.
	handle("GET /api/sessions", deprecated("/api/v1/sessions", sv.handleSessions))
	handle("GET /api/sessions/{id}/timeseries", deprecated("/api/v1/sessions/{id}/timeseries", sv.handleTimeseries))
	handle("GET /api/sessions/{id}/events", deprecated("/api/v1/sessions/{id}/events", sv.handleEvents))

	// Observability middleware: withRequestID (outer) mints/propagates the
	// request ID — the only per-request allocation the server adds — and
	// instrument (inner) does timing, status capture, RED counters and the
	// request log without allocating.
	return sv.withRequestID(sv.instrument(mux))
}

// deprecated wraps a legacy handler with the Deprecation header (RFC 9745
// shape) and a successor-version link.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "@1767225600") // 2026-01-01, the PR 7 API cut
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// handleReadyz answers readiness probes. Liveness (/healthz) stays 200 for
// the whole process lifetime; readiness goes 503 before vp-serve finishes
// preloading and again once drain/shutdown begins, so load balancers stop
// routing new submissions while in-flight work finishes.
func (sv *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch {
	case sv.pool.stopped():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, "{\"status\":\"draining\"}\n")
	case !sv.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, "{\"status\":\"starting\"}\n")
	default:
		fmt.Fprint(w, "{\"status\":\"ready\"}\n")
	}
}

func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	sv.mu.Lock()
	n := len(sv.sessions)
	sv.mu.Unlock()
	st := sv.Stats()
	fmt.Fprintf(w, "{\"status\":\"ok\",\"sessions\":%d,\"queued\":%d,\"running\":%d,\"workers\":%d,\"completed\":%d,\"cache_hits\":%d,\"rejected_full\":%d}\n",
		n, st.Queued, st.Running, st.Workers, st.Completed, st.CacheHits, st.RejectedFull)
}

func (sv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sets := make([]MetricSet, 0, 4)
	for _, s := range sv.all() {
		sets = append(sets, MetricSet{
			Labels:  map[string]string{"session": s.cfg.ID},
			Metrics: s.metrics(),
		})
	}
	st := sv.Stats()
	draining := sv.pool.stopped()
	serve := map[string]uint64{
		"serve.queued":              uint64(st.Queued),
		"serve.running":             uint64(st.Running),
		"serve.workers":             uint64(st.Workers),
		"serve.stored_results":      uint64(st.StoredResults),
		"serve.submitted_total":     st.Submitted,
		"serve.completed_total":     st.Completed,
		"serve.canceled_total":      st.Canceled,
		"serve.timeout_total":       st.TimedOut,
		"serve.cache_hits_total":    st.CacheHits,
		"serve.cache_misses_total":  st.CacheMisses,
		"serve.forced_total":        st.Forced,
		"serve.coalesced_total":     st.Coalesced,
		"serve.rejected_full_total": st.RejectedFull,
		"serve.draining":            0,
		"serve.ready":               0,
	}
	if draining {
		serve["serve.draining"] = 1
	}
	if sv.ready.Load() && !draining {
		serve["serve.ready"] = 1
	}
	// Stores that track load failures (FileStore) surface them here; the
	// MemStore cannot fail a load and emits no such series.
	if le, ok := sv.opts.store.(interface{ LoadErrors() uint64 }); ok {
		serve["serve.store_load_errors_total"] = le.LoadErrors()
	}
	sets = append(sets, MetricSet{Metrics: serve})
	sets = append(sets, sv.campaignRollupSets()...)
	sets = append(sets, sv.metrics.requestSets()...)
	sets = append(sets, MetricSet{
		Labels: map[string]string{
			"version":   Version,
			"goversion": runtime.Version(),
			"platform":  runtime.GOOS + "/" + runtime.GOARCH,
		},
		Metrics: map[string]uint64{"build_info": 1},
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheusSets(w, sets)
	WriteHistogramFamilies(w, sv.metrics.histogramFamilies())
}

func (sv *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	infos := sv.sessionInfos()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(infos)
}

func (sv *Server) sessionInfos() []sessionInfo {
	infos := make([]sessionInfo, 0, 4)
	for _, s := range sv.all() {
		infos = append(infos, s.info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

func (sv *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	s := sv.get(r.PathValue("id"))
	if s == nil {
		http.NotFound(w, r)
		return
	}
	if s.cfg.Sampler == nil {
		http.Error(w, "session has no sampler", http.StatusNotFound)
		return
	}
	// The sampler has its own lock; the session lock is not needed because
	// the daemon thread only appends between kernel events.
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		s.cfg.Sampler.WriteCSV(w)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.cfg.Sampler.WriteJSONL(w)
}

// handleEvents tails the observer's provenance ring as server-sent events:
// each taint event newer than the last delivered sequence number becomes one
// `data:` frame of the event's JSON. The handler polls the ring — the
// simulation cannot push without perturbing determinism.
func (sv *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s := sv.get(r.PathValue("id"))
	if s == nil {
		http.NotFound(w, r)
		return
	}
	if s.cfg.Platform.Observer() == nil {
		http.Error(w, "session has no observer", http.StatusNotFound)
		return
	}
	sv.streamEvents(w, r, s)
}

func (sv *Server) streamEvents(w http.ResponseWriter, r *http.Request, s *session) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var lastSeq uint64
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.mu.Lock()
		events := s.cfg.Platform.Observer().Events()
		done := s.done
		s.mu.Unlock()
		for _, ev := range events {
			if ev.Seq <= lastSeq {
				continue
			}
			lastSeq = ev.Seq
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, b)
		}
		fl.Flush()
		if done {
			fmt.Fprint(w, "event: done\ndata: {}\n\n")
			fl.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		case <-ticker.C:
		}
	}
}
