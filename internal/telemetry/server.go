package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"vpdift/internal/kernel"
	"vpdift/internal/obs"
)

// Platform is the slice of *soc.Platform the server needs. Keeping it an
// interface here (rather than importing soc) breaks the soc→telemetry→soc
// cycle and lets tests drive the server with a stub.
type Platform interface {
	// Run advances the simulation to the horizon (kernel.Simulator.Run
	// semantics: the clock never passes it).
	Run(horizon kernel.Time) error
	// Now returns the current simulated time.
	Now() kernel.Time
	// MetricsSnapshotInto fills dst with the platform's current counters.
	MetricsSnapshotInto(dst map[string]uint64)
	// Observer returns the attached observer, nil when observability is off.
	Observer() *obs.Observer
	// Exited reports whether the guest powered off, with its exit code.
	Exited() (bool, uint32)
}

// SessionConfig describes one simulation to serve.
type SessionConfig struct {
	// ID names the session in URLs and the session label on /metrics.
	ID string
	// Platform is the simulation; the session goroutine owns it and all
	// HTTP access is serialized against it through the session mutex.
	Platform Platform
	// Sampler, when set, backs the /timeseries endpoint. The caller starts
	// it (soc wires it through Config.Telemetry); the server only reads.
	Sampler *Sampler
	// Step is how much simulated time each locked Run chunk advances.
	// Defaults to 1ms — long enough to amortize lock traffic, short enough
	// that scrapes never wait perceptibly.
	Step kernel.Time
	// Horizon ends the session when simulated time reaches it; 0 runs until
	// the guest exits or the session is stopped.
	Horizon kernel.Time
	// Drive, when set, is called between chunks (under the session lock) to
	// feed the simulation — e.g. delivering the next immobilizer challenge.
	// Returning an error ends the session.
	Drive func() error
}

// session wraps a platform with the mutex that serializes the run loop
// against HTTP readers. The kernel is single-threaded by design; the mutex
// is the only thing that makes snapshots safe while the loop runs.
type session struct {
	cfg  SessionConfig
	stop chan struct{}

	mu   sync.Mutex // guards the platform and the fields below
	done bool
	err  error
}

// Server runs simulation sessions and serves their telemetry. Create with
// NewServer, register sessions with Add, expose Handler on any http.Server.
type Server struct {
	mu       sync.Mutex
	sessions map[string]*session
	order    []string
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{sessions: make(map[string]*session)}
}

// Add registers a session and starts its run-loop goroutine. The loop
// advances the platform in Step-sized chunks, holding the session lock only
// while the kernel runs, so scrapes interleave between chunks.
func (sv *Server) Add(cfg SessionConfig) error {
	if cfg.ID == "" || cfg.Platform == nil {
		return fmt.Errorf("telemetry: session needs an ID and a Platform")
	}
	if cfg.Step == 0 {
		cfg.Step = kernel.Time(1_000_000) // 1ms
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if _, dup := sv.sessions[cfg.ID]; dup {
		return fmt.Errorf("telemetry: duplicate session %q", cfg.ID)
	}
	s := &session{cfg: cfg, stop: make(chan struct{})}
	sv.sessions[cfg.ID] = s
	sv.order = append(sv.order, cfg.ID)
	go s.loop()
	return nil
}

// Close stops every session loop. Platforms are left intact; callers that
// own them shut them down afterwards.
func (sv *Server) Close() {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	for _, s := range sv.sessions {
		select {
		case <-s.stop:
		default:
			close(s.stop)
		}
	}
}

func (sv *Server) get(id string) *session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.sessions[id]
}

func (sv *Server) all() []*session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make([]*session, 0, len(sv.order))
	for _, id := range sv.order {
		out = append(out, sv.sessions[id])
	}
	return out
}

func (s *session) loop() {
	pl := s.cfg.Platform
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			return
		}
		target := pl.Now() + s.cfg.Step
		if s.cfg.Horizon != 0 && target > s.cfg.Horizon {
			target = s.cfg.Horizon
		}
		err := pl.Run(target)
		if err == nil && s.cfg.Drive != nil {
			err = s.cfg.Drive()
		}
		exited, _ := pl.Exited()
		if err != nil || exited || (s.cfg.Horizon != 0 && pl.Now() >= s.cfg.Horizon) {
			s.err = err
			s.done = true
		}
		done := s.done
		s.mu.Unlock()
		if done {
			return
		}
		// Yield between chunks so HTTP readers can take the lock. Simulated
		// time advances even through guest idle (the kernel idles to the
		// chunk horizon), so there is nothing to busy-poll for.
		time.Sleep(50 * time.Microsecond)
	}
}

// sessionInfo is the /api/sessions JSON shape.
type sessionInfo struct {
	ID       string `json:"id"`
	SimNs    uint64 `json:"sim_time_ns"`
	Instret  uint64 `json:"instret"`
	Samples  uint64 `json:"samples"`
	Done     bool   `json:"done"`
	Exited   bool   `json:"exited"`
	ExitCode uint32 `json:"exit_code,omitempty"`
	Error    string `json:"error,omitempty"`
}

func (s *session) info() sessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]uint64, 64)
	s.cfg.Platform.MetricsSnapshotInto(m)
	exited, code := s.cfg.Platform.Exited()
	info := sessionInfo{
		ID:       s.cfg.ID,
		SimNs:    uint64(s.cfg.Platform.Now()),
		Instret:  m["sim.instret"],
		Done:     s.done,
		Exited:   exited,
		ExitCode: code,
	}
	if s.cfg.Sampler != nil {
		info.Samples = s.cfg.Sampler.Total()
	}
	if s.err != nil {
		info.Error = s.err.Error()
	}
	return info
}

// Handler returns the server's HTTP routes:
//
//	GET /healthz                        liveness + session count
//	GET /metrics                        Prometheus text format, all sessions
//	GET /api/sessions                   session list as JSON
//	GET /api/sessions/{id}/timeseries   sampler ring as JSONL (?format=csv)
//	GET /api/sessions/{id}/events       SSE tail of the observer event ring
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", sv.handleHealthz)
	mux.HandleFunc("GET /metrics", sv.handleMetrics)
	mux.HandleFunc("GET /api/sessions", sv.handleSessions)
	mux.HandleFunc("GET /api/sessions/{id}/timeseries", sv.handleTimeseries)
	mux.HandleFunc("GET /api/sessions/{id}/events", sv.handleEvents)
	return mux
}

func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	sv.mu.Lock()
	n := len(sv.sessions)
	sv.mu.Unlock()
	fmt.Fprintf(w, "{\"status\":\"ok\",\"sessions\":%d}\n", n)
}

func (sv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sets := make([]MetricSet, 0, 4)
	for _, s := range sv.all() {
		m := make(map[string]uint64, 64)
		s.mu.Lock()
		s.cfg.Platform.MetricsSnapshotInto(m)
		s.mu.Unlock()
		sets = append(sets, MetricSet{
			Labels:  map[string]string{"session": s.cfg.ID},
			Metrics: m,
		})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheusSets(w, sets)
}

func (sv *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	infos := make([]sessionInfo, 0, 4)
	for _, s := range sv.all() {
		infos = append(infos, s.info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(infos)
}

func (sv *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	s := sv.get(r.PathValue("id"))
	if s == nil {
		http.NotFound(w, r)
		return
	}
	if s.cfg.Sampler == nil {
		http.Error(w, "session has no sampler", http.StatusNotFound)
		return
	}
	// The sampler has its own lock; the session lock is not needed because
	// the daemon thread only appends between kernel events.
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		s.cfg.Sampler.WriteCSV(w)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.cfg.Sampler.WriteJSONL(w)
}

// handleEvents tails the observer's provenance ring as server-sent events:
// each taint event newer than the last delivered sequence number becomes one
// `data:` frame of the event's JSON. The handler polls the ring — the
// simulation cannot push without perturbing determinism.
func (sv *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s := sv.get(r.PathValue("id"))
	if s == nil {
		http.NotFound(w, r)
		return
	}
	if s.cfg.Platform.Observer() == nil {
		http.Error(w, "session has no observer", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var lastSeq uint64
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.mu.Lock()
		events := s.cfg.Platform.Observer().Events()
		done := s.done
		s.mu.Unlock()
		for _, ev := range events {
			if ev.Seq <= lastSeq {
				continue
			}
			lastSeq = ev.Seq
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, b)
		}
		fl.Flush()
		if done {
			fmt.Fprint(w, "event: done\ndata: {}\n\n")
			fl.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		case <-ticker.C:
		}
	}
}
