package telemetry

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func waitStats(t *testing.T, sv *Server, cond func(Stats) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(sv.Stats()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("server never reached %s (stats %+v)", what, sv.Stats())
}

// TestBackpressure fills the two workers and the two queue slots with held
// sessions, then asserts the fifth submission is a 429 with Retry-After, and
// that releasing the gate drains everything cleanly.
func TestBackpressure(t *testing.T) {
	f := newGateFactory()
	gate := f.gate("slow")
	sv := NewServer(WithFactory(f), WithWorkers(2), WithQueueDepth(2))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	post := func(i int) apiResp {
		return doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions",
			SessionSpec{Workload: "slow", Stimulus: fmt.Sprint(i)})
	}

	// Two run, two queue.
	for i := 0; i < 2; i++ {
		if r := post(i); r.status != http.StatusCreated {
			t.Fatalf("POST %d: status = %d", i, r.status)
		}
	}
	waitStats(t, sv, func(st Stats) bool { return st.Running == 2 }, "2 running")
	for i := 2; i < 4; i++ {
		if r := post(i); r.status != http.StatusCreated {
			t.Fatalf("POST %d: status = %d", i, r.status)
		}
	}
	waitStats(t, sv, func(st Stats) bool { return st.Queued == 2 }, "2 queued")

	// Queue full: 429 + Retry-After.
	r := post(4)
	if r.status != http.StatusTooManyRequests || r.Error == nil || r.Error.Code != "queue_full" {
		t.Fatalf("POST over capacity: status=%d error=%+v", r.status, r.Error)
	}
	if ra := r.header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response has no Retry-After header")
	}
	if st := sv.Stats(); st.RejectedFull != 1 {
		t.Fatalf("stats.RejectedFull = %d, want 1", st.RejectedFull)
	}

	// Release and drain: everything completes, nothing leaks.
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st := sv.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("after drain: queued=%d running=%d, want 0/0", st.Queued, st.Running)
	}
	if st.Completed != 4 {
		t.Fatalf("after drain: completed=%d, want 4", st.Completed)
	}

	// Draining server refuses new work with 503.
	r = post(5)
	if r.status != http.StatusServiceUnavailable || r.Error == nil || r.Error.Code != "draining" {
		t.Fatalf("POST while draining: status=%d error=%+v", r.status, r.Error)
	}
	if err := sv.Submit(SessionConfig{ID: "direct", Platform: &stubPlatform{}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining: err = %v, want ErrDraining", err)
	}
}

// TestDeleteQueuedSession cancels a session that never left the queue: it
// finalizes as canceled without its platform ever running.
func TestDeleteQueuedSession(t *testing.T) {
	f := newGateFactory()
	gate := f.gate("hold")
	sv := NewServer(WithFactory(f), WithWorkers(1), WithQueueDepth(4))
	defer sv.Close()
	defer close(gate)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{ID: "runner", Workload: "hold"})
	waitStats(t, sv, func(st Stats) bool { return st.Running == 1 }, "runner running")
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{ID: "waiter", Workload: "w", Stimulus: "q"})
	waitStats(t, sv, func(st Stats) bool { return st.Queued == 1 }, "waiter queued")

	r := doJSON(t, http.MethodDelete, ts.URL+"/api/v1/sessions/waiter", nil)
	if r.status != http.StatusOK {
		t.Fatalf("DELETE queued: status = %d (%+v)", r.status, r.Error)
	}
	if n := f.buildCount("w"); n != 1 {
		t.Fatalf("waiter built %d times, want 1 (built at submit, canceled before run)", n)
	}
	st := sv.Stats()
	if st.Queued != 0 || st.Canceled != 1 {
		t.Fatalf("after cancel: queued=%d canceled=%d, want 0/1", st.Queued, st.Canceled)
	}
}

// TestSessionTimeout bounds a held session by wall clock: it finalizes as
// timed out and its result is not cached.
func TestSessionTimeout(t *testing.T) {
	f := newGateFactory()
	gate := f.gate("stuck")
	sv := NewServer(WithFactory(f), WithWorkers(1))
	defer sv.Close()
	defer close(gate)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions",
		SessionSpec{ID: "stuck-1", Workload: "stuck", TimeoutMs: 30})
	if r.status != http.StatusCreated {
		t.Fatalf("create: status = %d", r.status)
	}
	waitState(t, ts.URL, "stuck-1", StateDone)
	res, err := sv.EndSession("stuck-1")
	if err != nil {
		t.Fatalf("EndSession: %v", err)
	}
	if !res.TimedOut || res.Error == "" {
		t.Fatalf("result = %+v, want timed-out with error", res)
	}
	if st := sv.Stats(); st.TimedOut != 1 {
		t.Fatalf("stats.TimedOut = %d, want 1", st.TimedOut)
	}
	if sv.Store().Len() != 0 {
		t.Fatal("timed-out result was cached; must not be")
	}
}

// TestCloseCancelsEverything shuts the server down with held and queued
// sessions in flight; Close must return promptly with all of them finalized.
func TestCloseCancelsEverything(t *testing.T) {
	f := newGateFactory()
	gate := f.gate("held")
	defer close(gate)
	sv := NewServer(WithFactory(f), WithWorkers(1), WithQueueDepth(8))
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions",
			SessionSpec{Workload: "held", Stimulus: fmt.Sprint(i)})
		if r.status != http.StatusCreated {
			t.Fatalf("POST %d: status = %d", i, r.status)
		}
	}
	waitStats(t, sv, func(st Stats) bool { return st.Running == 1 && st.Queued == 3 }, "1 running 3 queued")

	done := make(chan struct{})
	go func() { sv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return within 5s")
	}
	st := sv.Stats()
	if st.Canceled != 4 {
		t.Fatalf("after close: canceled=%d, want 4", st.Canceled)
	}
}
