package telemetry

import (
	"net/http"
	"sort"
	"strconv"

	"vpdift/internal/cover"
)

// cellFrontier is one cell's contribution record in the campaign coverage
// rollup: what this cell reached that no earlier (by index) covered cell
// had. The fold order is cell index order — the same deterministic order
// /results streams in — so the frontier assignment is stable across scrapes.
type cellFrontier struct {
	Index    int             `json:"index"`
	Policy   string          `json:"policy"`
	Workload string          `json:"workload"`
	Session  string          `json:"session,omitempty"`
	Cached   bool            `json:"cached,omitempty"`
	Frontier *cover.Frontier `json:"frontier"`
}

// campaignCoverage is the "data" payload of GET /api/v1/campaigns/{id}/coverage.
type campaignCoverage struct {
	Campaign CampaignInfo `json:"campaign"`
	// CoveredCells counts finished cells that carried a snapshot.
	CoveredCells int `json:"covered_cells"`
	// Merged is the fold of every covered cell's snapshot in index order —
	// bit-identical to an offline cover.Merge over the per-cell snapshots.
	Merged *cover.Snapshot `json:"merged,omitempty"`
	// DeadRules is the merged dead-rule intersection: rules dead in every
	// audited cell of the campaign.
	DeadRules []string `json:"dead_rules,omitempty"`
	// DeadRulesByPolicy intersects dead rules across each policy row's
	// covered cells, answering "which rules does policy P never exercise,
	// whatever the workload".
	DeadRulesByPolicy map[string][]string `json:"dead_rules_by_policy,omitempty"`
	// Frontier lists each covered cell's contribution beyond the cells
	// before it.
	Frontier []cellFrontier `json:"frontier,omitempty"`
	// MergeErrors records cells whose snapshot could not be folded (base
	// mismatch, shared-run overlap); their coverage is excluded.
	MergeErrors []string `json:"merge_errors,omitempty"`
}

// frontierCells counts cells that contributed new coverage.
func (cc *campaignCoverage) frontierCells() int {
	n := 0
	for _, f := range cc.Frontier {
		if f.Frontier.Contributes() {
			n++
		}
	}
	return n
}

// coverage folds the campaign's per-cell snapshots into the rollup, cached
// until more cells finish. Safe to call concurrently.
func (c *campaign) coverage() *campaignCoverage {
	info := c.info()
	c.covMu.Lock()
	defer c.covMu.Unlock()
	if c.covRoll != nil && c.covDone == info.Done {
		out := *c.covRoll
		out.Campaign = info
		return &out
	}

	cc := &campaignCoverage{Campaign: info}
	var acc *cover.Snapshot
	perPolicy := map[string][]string{}
	polSeen := map[string]bool{}
	for _, cell := range c.cells {
		if !c.cellDone(cell) {
			continue
		}
		cell.mu.Lock()
		snap := cell.result.Cover
		session := cell.session
		cached := cell.cached
		cell.mu.Unlock()
		if snap == nil {
			continue
		}
		cc.CoveredCells++
		fr := snap.Frontier(acc)
		merged, err := cover.Merge(acc, snap)
		if err != nil {
			cc.MergeErrors = append(cc.MergeErrors,
				"cell "+strconv.Itoa(cell.index)+": "+err.Error())
			continue
		}
		acc = merged
		cc.Frontier = append(cc.Frontier, cellFrontier{
			Index: cell.index, Policy: cell.policy, Workload: cell.workload,
			Session: session, Cached: cached, Frontier: fr,
		})
		if snap.Audit != nil {
			if !polSeen[cell.policy] {
				polSeen[cell.policy] = true
				perPolicy[cell.policy] = append([]string{}, snap.Audit.DeadRules...)
			} else {
				perPolicy[cell.policy] = intersectSorted(perPolicy[cell.policy], snap.Audit.DeadRules)
			}
		}
	}
	cc.Merged = acc
	if acc != nil && acc.Audit != nil {
		cc.DeadRules = acc.Audit.DeadRules
	}
	if len(perPolicy) > 0 {
		cc.DeadRulesByPolicy = perPolicy
	}
	c.covDone = info.Done
	c.covRoll = cc
	return cc
}

// intersectSorted keeps a's elements also present in b, preserving a's
// (sorted) order.
func intersectSorted(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	out := a[:0]
	for _, s := range a {
		if in[s] {
			out = append(out, s)
		}
	}
	return out
}

// v1CampaignCoverage serves the campaign coverage rollup. The enveloped
// default carries the full rollup; ?format=snapshot streams the merged
// snapshot's canonical bytes (the exact input vp-diff takes).
func (sv *Server) v1CampaignCoverage(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id := r.PathValue("id")
	c := sv.getCampaign(id)
	if c == nil {
		writeError(w, http.StatusNotFound, "not_found", "no campaign "+strconv.Quote(id))
		return
	}
	cc := c.coverage()
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeData(w, http.StatusOK, cc)
	case "snapshot":
		if cc.Merged == nil {
			writeError(w, http.StatusNotFound, "no_coverage",
				"campaign "+id+" has no covered cells yet (create it with \"cover\": true)")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(cc.Merged.JSON())
	default:
		writeError(w, http.StatusBadRequest, "bad_request", "format must be json or snapshot")
	}
}

// campaignCoverageDiff is the "data" payload of
// GET /api/v1/campaigns/{id}/coverage/diff?against=<campaign>: the A/B
// comparison of two campaigns' merged coverage. `against` is the base,
// {id} the candidate, so "new_*" is what {id} adds.
type campaignCoverageDiff struct {
	Campaign   string            `json:"campaign"`
	Against    string            `json:"against"`
	Regression bool              `json:"regression"`
	Diff       *cover.DiffReport `json:"diff"`
}

func (sv *Server) v1CampaignCoverageDiff(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id := r.PathValue("id")
	c := sv.getCampaign(id)
	if c == nil {
		writeError(w, http.StatusNotFound, "not_found", "no campaign "+strconv.Quote(id))
		return
	}
	againstID := r.URL.Query().Get("against")
	if againstID == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "diff needs ?against=<campaign id>")
		return
	}
	against := sv.getCampaign(againstID)
	if against == nil {
		writeError(w, http.StatusNotFound, "not_found", "no campaign "+strconv.Quote(againstID))
		return
	}
	base, other := against.coverage(), c.coverage()
	if base.Merged == nil || other.Merged == nil {
		writeError(w, http.StatusConflict, "no_coverage",
			"both campaigns need at least one covered cell to diff")
		return
	}
	d := cover.Diff(base.Merged, other.Merged)
	writeData(w, http.StatusOK, campaignCoverageDiff{
		Campaign: id, Against: againstID, Regression: d.Regression(), Diff: d,
	})
}

// campaignRollupSets renders each covered campaign's rollup gauges for
// /metrics: total distinct edges, cells that contributed frontier coverage,
// and the surviving dead-rule intersection.
func (sv *Server) campaignRollupSets() []MetricSet {
	sv.mu.Lock()
	ids := append([]string(nil), sv.campOrder...)
	camps := make([]*campaign, 0, len(ids))
	for _, id := range ids {
		camps = append(camps, sv.campaigns[id])
	}
	sv.mu.Unlock()

	var sets []MetricSet
	for i, c := range camps {
		if c == nil || !c.spec.Cover {
			continue
		}
		cc := c.coverage()
		m := map[string]uint64{
			"campaign.cells":          uint64(cc.Campaign.Cells),
			"campaign.cells_done":     uint64(cc.Campaign.Done),
			"campaign.covered_cells":  uint64(cc.CoveredCells),
			"campaign.edges_total":    uint64(cc.Merged.EdgeCount()),
			"campaign.blocks_total":   uint64(cc.Merged.BlockCount()),
			"campaign.frontier_cells": uint64(cc.frontierCells()),
			"campaign.dead_rules":     uint64(len(cc.DeadRules)),
		}
		sets = append(sets, MetricSet{
			Labels:  map[string]string{"campaign": ids[i]},
			Metrics: m,
		})
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].Labels["campaign"] < sets[j].Labels["campaign"] })
	return sets
}
