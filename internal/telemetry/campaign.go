package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// CampaignSpec is the wire shape of POST /api/v1/campaigns: the cross
// product of policies x workloads, each cell one session. Cells expand in
// row-major order (policies outer, workloads inner) and that index order is
// the order results stream in, regardless of completion order.
type CampaignSpec struct {
	// ID optionally names the campaign; the server assigns c-<n> otherwise.
	ID string `json:"id,omitempty"`
	// Policies and Workloads span the grid; both must be non-empty.
	Policies  []string `json:"policies"`
	Workloads []string `json:"workloads"`
	// Scale, Stimulus, HorizonMs, TimeoutMs, SampleUs, Observe and Priority
	// apply to every cell (see SessionSpec).
	Scale     string `json:"scale,omitempty"`
	Stimulus  string `json:"stimulus,omitempty"`
	Priority  int    `json:"priority,omitempty"`
	HorizonMs int64  `json:"horizon_ms,omitempty"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
	SampleUs  int64  `json:"sample_us,omitempty"`
	Observe   bool   `json:"observe,omitempty"`
	// Cover captures a coverage snapshot per cell, enabling the campaign's
	// /coverage rollup (merged snapshot, dead-rule intersection, per-cell
	// frontier) and the campaign.* gauges on /metrics.
	Cover bool `json:"cover,omitempty"`
	// Force re-simulates every cell even on result-store hits.
	Force bool `json:"force,omitempty"`
}

// MaxCampaignCells bounds one campaign's grid; larger requests are a 400.
const MaxCampaignCells = 4096

// campaignCell is one (policy, workload) grid point. index, policy,
// workload and key are immutable after expansion; mu guards the rest
// against concurrent readers while the campaign fills.
type campaignCell struct {
	index    int
	policy   string
	workload string
	key      string

	mu      sync.Mutex
	session string        // session ID when the cell spawned or joined one
	done    chan struct{} // closed when result is valid
	cached  bool
	result  SessionResult
}

func (cell *campaignCell) setSession(id string) {
	cell.mu.Lock()
	cell.session = id
	cell.mu.Unlock()
}

// finish records the cell's result and marks it done. Only the first call
// acts (a cell can race its coalesced session's callback against campaign
// DELETE bookkeeping).
func (cell *campaignCell) finish(r SessionResult, cached bool) {
	cell.mu.Lock()
	defer cell.mu.Unlock()
	select {
	case <-cell.done:
		return
	default:
	}
	cell.result = r
	cell.cached = cached
	close(cell.done)
}

// CellInfo is a cell's JSON view.
type CellInfo struct {
	Index    int    `json:"index"`
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	Key      string `json:"key,omitempty"`
	Session  string `json:"session,omitempty"`
	// State is "pending" until the cell's result exists, then "done".
	State string `json:"state"`
	// Cached marks cells served from the result store without simulating.
	Cached bool           `json:"cached,omitempty"`
	Result *SessionResult `json:"result,omitempty"`
	// Forensics links to the cell session's flight-recorder bundle when the
	// cell failed (violation, fault, or error) and one was kept.
	Forensics string `json:"forensics,omitempty"`
}

// campaign tracks one grid run.
type campaign struct {
	id    string
	spec  CampaignSpec
	cells []*campaignCell
	start time.Time

	// Coverage rollup cache (see coverage.go): recomputed only when more
	// cells have finished since the cached fold. covMu serializes the fold
	// itself so concurrent scrapes don't merge the same grid twice.
	covMu   sync.Mutex
	covDone int
	covRoll *campaignCoverage
}

func (c *campaign) cellDone(cell *campaignCell) bool {
	select {
	case <-cell.done:
		return true
	default:
		return false
	}
}

func (c *campaign) cellInfo(cell *campaignCell) CellInfo {
	cell.mu.Lock()
	defer cell.mu.Unlock()
	info := CellInfo{
		Index:    cell.index,
		Policy:   cell.policy,
		Workload: cell.workload,
		Key:      cell.key,
		Session:  cell.session,
		State:    "pending",
	}
	select {
	case <-cell.done:
		info.State = "done"
		info.Cached = cell.cached
		r := cell.result
		info.Result = &r
		if r.Forensics && cell.session != "" {
			info.Forensics = "/api/v1/sessions/" + cell.session + "/forensics"
		}
	default:
	}
	return info
}

// CampaignInfo is a campaign's JSON view (without the cell list).
type CampaignInfo struct {
	ID        string `json:"id"`
	Policies  int    `json:"policies"`
	Workloads int    `json:"workloads"`
	Cells     int    `json:"cells"`
	Done      int    `json:"done"`
	Cached    int    `json:"cached"`
}

func (c *campaign) info() CampaignInfo {
	info := CampaignInfo{
		ID:        c.id,
		Policies:  len(c.spec.Policies),
		Workloads: len(c.spec.Workloads),
		Cells:     len(c.cells),
	}
	for _, cell := range c.cells {
		if c.cellDone(cell) {
			info.Done++
			if cell.cached {
				info.Cached++
			}
		}
	}
	return info
}

// v1Campaigns handles GET (list) and POST (create) on /api/v1/campaigns.
func (sv *Server) v1Campaigns(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodGet {
		sv.mu.Lock()
		infos := make([]CampaignInfo, 0, len(sv.campOrder))
		for _, id := range sv.campOrder {
			infos = append(infos, sv.campaigns[id].info())
		}
		sv.mu.Unlock()
		writeData(w, http.StatusOK, map[string]any{"campaigns": infos, "total": len(infos)})
		return
	}
	var spec CampaignSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid campaign spec: "+err.Error())
		return
	}
	c, status, aerr := sv.createCampaign(r.Context(), spec)
	if aerr != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(sv.pool.retryAfter()))
		}
		writeJSON(w, status, envelope{Error: aerr})
		return
	}
	writeData(w, status, c.info())
}

// createCampaign expands the grid, dedups each cell against the result
// store and in-flight sessions, and submits the misses — atomically against
// other submissions, so a campaign either fits the queue or is rejected
// whole with 429. The request ID carried by ctx becomes every spawned
// session's Origin.
func (sv *Server) createCampaign(ctx context.Context, spec CampaignSpec) (*campaign, int, *apiError) {
	f := sv.opts.factory
	if f == nil {
		return nil, http.StatusNotImplemented, &apiError{
			Code: "unsupported", Message: "server has no session factory; campaigns need one"}
	}
	if len(spec.Policies) == 0 || len(spec.Workloads) == 0 {
		return nil, http.StatusBadRequest, &apiError{
			Code: "bad_request", Message: "campaign needs at least one policy and one workload"}
	}
	if n := len(spec.Policies) * len(spec.Workloads); n > MaxCampaignCells {
		return nil, http.StatusBadRequest, &apiError{
			Code: "bad_request", Message: fmt.Sprintf("campaign has %d cells, max %d", n, MaxCampaignCells)}
	}

	// Resolve every cell's key before touching the queue, so admission can
	// be checked in one shot.
	type pend struct {
		cell *campaignCell
		spec SessionSpec
	}
	cells := make([]*campaignCell, 0, len(spec.Policies)*len(spec.Workloads))
	var pending []pend
	for _, pol := range spec.Policies {
		for _, wl := range spec.Workloads {
			cell := &campaignCell{
				index:    len(cells),
				policy:   pol,
				workload: wl,
				done:     make(chan struct{}),
			}
			cellSpec := SessionSpec{
				Workload:  wl,
				Scale:     spec.Scale,
				Policy:    pol,
				Stimulus:  spec.Stimulus,
				Priority:  spec.Priority,
				HorizonMs: spec.HorizonMs,
				TimeoutMs: spec.TimeoutMs,
				SampleUs:  spec.SampleUs,
				Observe:   spec.Observe,
				Cover:     spec.Cover,
				Force:     spec.Force,
			}
			key, err := f.Key(cellSpec)
			if err != nil {
				return nil, http.StatusBadRequest, &apiError{
					Code:    "bad_request",
					Message: fmt.Sprintf("cell %d (%s x %s): %v", cell.index, pol, wl, err)}
			}
			cell.key = key
			cells = append(cells, cell)
			pending = append(pending, pend{cell, cellSpec})
		}
	}

	sv.submitMu.Lock()
	defer sv.submitMu.Unlock()

	// Count how many cells actually need a fresh session, then check
	// admission once.
	fresh := 0
	inCampaign := make(map[string]bool)
	for _, p := range pending {
		if !spec.Force {
			if _, hit := sv.opts.store.Get(p.cell.key); hit {
				continue
			}
			if sv.liveByKey(p.cell.key) != nil || inCampaign[p.cell.key] {
				continue
			}
		}
		inCampaign[p.cell.key] = true
		fresh++
	}
	if sv.pool.stopped() {
		return nil, http.StatusServiceUnavailable, &apiError{
			Code: "draining", Message: "server is draining; no new campaigns"}
	}
	if sv.pool.capacityLeft() < fresh {
		sv.stats.rejectedFull.Add(1)
		return nil, http.StatusTooManyRequests, &apiError{
			Code:    "queue_full",
			Message: fmt.Sprintf("campaign needs %d queue slots, %d free; retry later", fresh, sv.pool.capacityLeft())}
	}

	c := &campaign{spec: spec, cells: cells, start: time.Now()}
	if spec.ID != "" {
		c.id = spec.ID
	} else {
		c.id = sv.autoID("c")
	}
	sv.mu.Lock()
	if _, dup := sv.campaigns[c.id]; dup {
		sv.mu.Unlock()
		return nil, http.StatusConflict, &apiError{Code: "conflict", Message: "duplicate campaign " + strconv.Quote(c.id)}
	}
	sv.campaigns[c.id] = c
	sv.campOrder = append(sv.campOrder, c.id)
	sv.mu.Unlock()

	origin := RequestIDFrom(ctx)
	if sv.log.Enabled(ctx, slog.LevelInfo) {
		sv.log.LogAttrs(ctx, slog.LevelInfo, "campaign created",
			slog.String("campaign", c.id),
			slog.String("request_id", origin),
			slog.Int("cells", len(cells)),
			slog.Int("fresh", fresh),
		)
	}

	// Fill cells: store hit -> done now; live session (including one just
	// created for an earlier cell of this campaign) -> subscribe; miss ->
	// build and submit.
	for _, p := range pending {
		cell := p.cell
		if spec.Force {
			sv.stats.forced.Add(1)
		} else {
			if res, hit := sv.opts.store.Get(cell.key); hit {
				sv.stats.cacheHits.Add(1)
				cell.finish(res, true)
				continue
			}
			sv.stats.cacheMisses.Add(1)
			if live := sv.liveByKey(cell.key); live != nil {
				sv.stats.coalesced.Add(1)
				cell.setSession(live.cfg.ID)
				live.onDone(cell.complete)
				continue
			}
		}
		cfg, err := f.Build(p.spec)
		if err != nil {
			cell.finish(SessionResult{Key: cell.key, Error: err.Error()}, false)
			continue
		}
		cfg.Key = cell.key
		cfg.Priority = p.spec.Priority
		cfg.Origin = origin
		if p.spec.TimeoutMs > 0 {
			cfg.Timeout = time.Duration(p.spec.TimeoutMs) * time.Millisecond
		} else if cfg.Timeout == 0 {
			cfg.Timeout = sv.opts.timeout
		}
		if cfg.ID == "" {
			cfg.ID = fmt.Sprintf("%s-cell-%d", c.id, cell.index)
		}
		cell.setSession(cfg.ID)
		if err := sv.Submit(cfg); err != nil {
			// Admission was checked above; this is the Force-dup or
			// closed-server edge. Record the failure on the cell rather
			// than failing the whole campaign.
			cell.finish(SessionResult{Key: cell.key, Error: err.Error()}, false)
			continue
		}
		sv.get(cfg.ID).onDone(cell.complete)
	}
	return c, http.StatusCreated, nil
}

// complete records a finished session's result on the cell.
func (cell *campaignCell) complete(r SessionResult) { cell.finish(r, false) }

func (sv *Server) getCampaign(id string) *campaign {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.campaigns[id]
}

// v1Campaign handles GET (progress) and DELETE (cancel) on
// /api/v1/campaigns/{id}.
func (sv *Server) v1Campaign(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet, http.MethodDelete) {
		return
	}
	id := r.PathValue("id")
	c := sv.getCampaign(id)
	if c == nil {
		writeError(w, http.StatusNotFound, "not_found", "no campaign "+strconv.Quote(id))
		return
	}
	if r.Method == http.MethodGet {
		writeData(w, http.StatusOK, c.info())
		return
	}
	// DELETE: cancel the campaign's own sessions (cells that joined an
	// unrelated in-flight session are left alone) and drop the campaign.
	for _, cell := range c.cells {
		cell.mu.Lock()
		sid := cell.session
		cell.mu.Unlock()
		if sid != "" && !c.cellDone(cell) {
			if s := sv.get(sid); s != nil && s.cfg.Key == cell.key {
				sv.Cancel(sid)
			}
		}
	}
	sv.mu.Lock()
	delete(sv.campaigns, id)
	for i, cid := range sv.campOrder {
		if cid == id {
			sv.campOrder = append(sv.campOrder[:i], sv.campOrder[i+1:]...)
			break
		}
	}
	sv.mu.Unlock()
	writeData(w, http.StatusOK, map[string]any{"canceled": id})
}

// v1CampaignResults serves a campaign's per-cell results: paginated JSON by
// default (?offset, ?limit), or an SSE stream (?stream=sse or Accept:
// text/event-stream) that emits every cell strictly in index order as each
// becomes ready — deterministic regardless of completion order.
func (sv *Server) v1CampaignResults(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id := r.PathValue("id")
	c := sv.getCampaign(id)
	if c == nil {
		writeError(w, http.StatusNotFound, "not_found", "no campaign "+strconv.Quote(id))
		return
	}
	if r.URL.Query().Get("stream") == "sse" || r.Header.Get("Accept") == "text/event-stream" {
		sv.streamCampaign(w, r, c)
		return
	}

	offset, limit := 0, 100
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "offset must be a non-negative integer")
			return
		}
		offset = n
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "limit must be a positive integer")
			return
		}
		limit = n
	}
	cellInfos := make([]CellInfo, 0, limit)
	for i := offset; i < len(c.cells) && len(cellInfos) < limit; i++ {
		cellInfos = append(cellInfos, c.cellInfo(c.cells[i]))
	}
	next := -1
	if offset+len(cellInfos) < len(c.cells) {
		next = offset + len(cellInfos)
	}
	writeData(w, http.StatusOK, map[string]any{
		"campaign":    c.info(),
		"offset":      offset,
		"next_offset": next,
		"cells":       cellInfos,
	})
}

// streamCampaign emits `event: cell` frames strictly in cell index order,
// waiting on each cell in turn, then a final `event: done` with the
// campaign summary.
func (sv *Server) streamCampaign(w http.ResponseWriter, r *http.Request, c *campaign) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal", "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for _, cell := range c.cells {
		select {
		case <-cell.done:
		case <-r.Context().Done():
			return
		}
		b, err := json.Marshal(c.cellInfo(cell))
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "event: cell\nid: %d\ndata: %s\n\n", cell.index, b)
		fl.Flush()
	}
	b, _ := json.Marshal(c.info())
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", b)
	fl.Flush()
}
