package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"vpdift/internal/obs"
)

// MetricSet is one labeled group of counters — typically one simulation
// session. Labels become Prometheus label pairs on every sample line.
type MetricSet struct {
	Labels  map[string]string
	Metrics map[string]uint64
}

// namePrefix is prepended to every sanitized metric name so the platform's
// metrics land in their own Prometheus namespace.
const namePrefix = "vpdift_"

// promHelp maps the platform's metric-name prefixes to HELP text. Longest
// match wins; the table is ordered most-specific first.
var promHelp = []struct{ prefix, help string }{
	{"sim.decode_cache", "Predecoded-instruction cache statistic."},
	{"sim.", "Simulation gauge sampled from the platform."},
	{"checks.", "DIFT clearance checks performed, by check point."},
	{"violations.", "Policy violations detected, by violation kind."},
	{"bus.monitor", "TLM bus-monitor transaction accounting."},
	{"bus.", "TLM bus traffic counter."},
	{"dift.", "Decoupled taint-monitor statistic."},
	{"flight.", "Flight-recorder statistic."},
	{"io.", "Peripheral I/O counter."},
	{"obs.", "Observer provenance-ring counter."},
	{"serve.", "Session-server scheduler statistic."},
	{"http.", "Serving-plane HTTP statistic, by route."},
	{"build_info", "Build metadata; the value is always 1."},
	{"lub_ops", "Security-lattice least-upper-bound operations."},
	{"trace.", "Trace subsystem counter."},
	{"cover.", "Coverage gauge."},
	{"campaign.", "Campaign coverage rollup gauge."},
}

// promIsGauge reports whether a metric is exposed as a gauge rather than a
// counter. Coverage metrics describe a current level (covered blocks can
// only grow here, but conceptually they measure state, not a flow), and the
// audit dead-rule count genuinely shrinks as rules fire — the campaign
// rollups share both traits (dead_rules shrinks as cells land, edges_total
// measures merged state). The decoupled monitor's instantaneous statistics
// (ring occupancy, live registers, dirty blocks) rise and fall with live
// taint; its *_total siblings are monotone. Everything else the platform
// emits is a monotone counter.
func promIsGauge(name string) bool {
	if strings.HasPrefix(name, "dift.") || strings.HasPrefix(name, "serve.") ||
		strings.HasPrefix(name, "flight.") {
		return !strings.HasSuffix(name, "_total")
	}
	return strings.HasPrefix(name, "cover.") || strings.HasPrefix(name, "campaign.") ||
		name == "build_info"
}

func helpFor(name string) string {
	for _, h := range promHelp {
		if strings.HasPrefix(name, h.prefix) {
			return h.help
		}
	}
	return "vpdift platform metric."
}

// WritePrometheus renders one unlabeled metric set in the Prometheus text
// exposition format (version 0.0.4): for every counter a # HELP line, a
// # TYPE line, and a sample line, with names routed through
// obs.SanitizeMetricName and prefixed vpdift_. Output is sorted by exposed
// name, so a deterministic run produces byte-identical output.
func WritePrometheus(w io.Writer, metrics map[string]uint64) error {
	return WritePrometheusSets(w, []MetricSet{{Metrics: metrics}})
}

// WritePrometheusSets renders several labeled metric sets into one valid
// exposition: all samples sharing an exposed name are grouped under a single
// HELP/TYPE pair (the format forbids repeating them), with one sample line
// per set that carries the metric.
func WritePrometheusSets(w io.Writer, sets []MetricSet) error {
	type sample struct {
		labels string
		value  uint64
	}
	byName := make(map[string][]sample)
	gauge := make(map[string]bool)
	help := make(map[string]string)
	for _, set := range sets {
		labels := renderLabels(set.Labels)
		for name, v := range set.Metrics {
			exposed := namePrefix + obs.SanitizeMetricName(name)
			byName[exposed] = append(byName[exposed], sample{labels, v})
			if _, ok := help[exposed]; !ok {
				help[exposed] = helpFor(name)
				gauge[exposed] = promIsGauge(name)
			}
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		typ := "counter"
		if gauge[n] {
			typ = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", n, help[n], n, typ); err != nil {
			return err
		}
		samples := byName[n]
		sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
		for _, s := range samples {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", n, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderLabels turns a label map into the {k="v",...} suffix with keys
// sorted and values escaped per the exposition format.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + labelPairs(labels) + "}"
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// LabeledHistogram is one labeled member of a histogram family — e.g. the
// request-duration histogram of one route.
type LabeledHistogram struct {
	Labels map[string]string
	Hist   *Histogram
}

// HistogramFamily is one exposed histogram: a platform-style name (routed
// through the same sanitize+prefix pipeline as counters), HELP text, and any
// number of labeled series sharing the bucket layout.
type HistogramFamily struct {
	Name   string
	Help   string
	Series []LabeledHistogram
}

// WriteHistogramFamilies renders histogram families in the text exposition
// format: per family one HELP/TYPE histogram pair, then per series the
// cumulative `_bucket` samples (`le` label, `+Inf` last), `_sum` (seconds,
// plain decimal) and `_count`. Families sort by exposed name and series by
// label set, so deterministic inputs render byte-identically. Series whose
// histogram has recorded nothing are skipped — an idle route contributes no
// 20-line bucket block to every scrape.
func WriteHistogramFamilies(w io.Writer, fams []HistogramFamily) error {
	sorted := make([]HistogramFamily, len(fams))
	copy(sorted, fams)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, fam := range sorted {
		exposed := namePrefix + obs.SanitizeMetricName(fam.Name)
		type series struct {
			labels string // rendered pairs without braces, "" when unlabeled
			h      *Histogram
		}
		live := make([]series, 0, len(fam.Series))
		for _, s := range fam.Series {
			if s.Hist == nil || s.Hist.Count() == 0 {
				continue
			}
			live = append(live, series{labelPairs(s.Labels), s.Hist})
		}
		if len(live) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", exposed, fam.Help, exposed); err != nil {
			return err
		}
		sort.Slice(live, func(i, j int) bool { return live[i].labels < live[j].labels })
		for _, s := range live {
			cum, count, sum := s.h.snapshot()
			withLE := func(le string) string {
				if s.labels == "" {
					return `{le="` + le + `"}`
				}
				return "{" + s.labels + `,le="` + le + `"}`
			}
			for i, bound := range s.h.boundsSec {
				le := strconv.FormatFloat(bound, 'g', -1, 64)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", exposed, withLE(le), cum[i]); err != nil {
					return err
				}
			}
			plain := ""
			if s.labels != "" {
				plain = "{" + s.labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", exposed, withLE("+Inf"), cum[len(cum)-1]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", exposed, plain, strconv.FormatFloat(sum, 'f', -1, 64)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", exposed, plain, count); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelPairs renders a label map as sorted `k="v"` pairs joined by commas,
// without the surrounding braces (so a `le` pair can be appended).
func labelPairs(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(obs.SanitizeMetricName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}
