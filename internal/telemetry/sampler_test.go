package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vpdift/internal/kernel"
)

// fakeCounters simulates a platform snapshot source: instret grows 1000 per
// simulated microsecond, taint events at a tenth of that.
type fakeCounters struct {
	instret uint64
	events  uint64
	hits    uint64
	misses  uint64
	bus     struct{ read, write uint64 }
	viol    uint64
}

func (f *fakeCounters) snapshot(dst map[string]uint64) {
	dst["sim.instret"] = f.instret
	dst["obs.events"] = f.events
	dst["sim.decode_cache_hits"] = f.hits
	dst["sim.decode_cache_misses"] = f.misses
	dst["bus.read_bytes"] = f.bus.read
	dst["bus.write_bytes"] = f.bus.write
	dst["violations.output-clearance"] = f.viol
}

func TestSamplerDaemonCapture(t *testing.T) {
	sim := kernel.New()
	defer sim.Shutdown()
	var fc fakeCounters
	sim.Spawn("workload", func(p *kernel.Proc) {
		for i := 0; i < 100; i++ {
			p.Wait(1000) // 1µs
			fc.instret += 1000
			fc.events += 100
			fc.hits += 990
			fc.misses += 10
			fc.bus.read += 64
		}
	})
	s := NewSampler(Options{Every: 10_000}) // 10µs cadence
	s.Start(sim, fc.snapshot)
	if err := sim.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	// Workload spans 100µs; sampler ticks at 10, 20, ... 90µs while the
	// workload is live (the 100µs tick races the worker's last event in the
	// heap order, so only the nine interior ticks are guaranteed).
	if s.Total() < 9 {
		t.Fatalf("Total() = %d, want >= 9", s.Total())
	}
	samples := s.Samples()
	var prev kernel.Time
	for i, sm := range samples {
		if sm.Time <= prev && i > 0 {
			t.Fatalf("sample %d: time %d not strictly increasing after %d", i, sm.Time, prev)
		}
		prev = sm.Time
		if sm.Metrics["sim.instret"] == 0 {
			t.Fatalf("sample %d: empty metrics", i)
		}
	}
	// 1000 instrs per µs = 1000 MIPS; every interval after the first has a
	// full delta.
	d := samples[3].Derived
	if d.MIPS < 999 || d.MIPS > 1001 {
		t.Errorf("MIPS = %v, want ~1000", d.MIPS)
	}
	if d.TaintEventRate < 0.99e8 || d.TaintEventRate > 1.01e8 {
		t.Errorf("TaintEventRate = %v, want ~1e8", d.TaintEventRate)
	}
	if d.DecodeCacheHitRatio < 0.98 || d.DecodeCacheHitRatio > 1 {
		t.Errorf("DecodeCacheHitRatio = %v, want ~0.99", d.DecodeCacheHitRatio)
	}
	if d.BusBytesPerSec == 0 {
		t.Error("BusBytesPerSec = 0, want > 0")
	}
}

func TestSamplerRingBounded(t *testing.T) {
	s := NewSampler(Options{Every: 1, RingCapacity: 4})
	var fc fakeCounters
	for i := 1; i <= 10; i++ {
		fc.instret = uint64(i)
		s.TakeSample(kernel.Time(i), fc.snapshot)
	}
	if s.Total() != 10 {
		t.Fatalf("Total() = %d, want 10", s.Total())
	}
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("len(Samples()) = %d, want ring capacity 4", len(samples))
	}
	for i, sm := range samples {
		if want := uint64(7 + i); sm.Seq != want {
			t.Errorf("sample %d: Seq = %d, want %d (oldest-first tail)", i, sm.Seq, want)
		}
	}
	last, ok := s.Last()
	if !ok || last.Seq != 10 || last.Metrics["sim.instret"] != 10 {
		t.Errorf("Last() = %+v, %v", last, ok)
	}
}

func TestSamplerViolationsCumulative(t *testing.T) {
	s := NewSampler(Options{})
	var fc fakeCounters
	fc.viol = 3
	s.TakeSample(1000, fc.snapshot)
	last, _ := s.Last()
	if last.Derived.Violations != 3 {
		t.Errorf("Violations = %d, want 3", last.Derived.Violations)
	}
}

// Steady-state sampling must not allocate: the ring slot's map is reused and
// the derived-rate math is plain arithmetic. One lap of the ring warms every
// slot; after that, zero.
func TestSamplerTakeSampleZeroAlloc(t *testing.T) {
	s := NewSampler(Options{RingCapacity: 8})
	var fc fakeCounters
	now := kernel.Time(0)
	for i := 0; i < 8; i++ { // warm the full ring
		now += 1000
		s.TakeSample(now, fc.snapshot)
	}
	allocs := testing.AllocsPerRun(100, func() {
		now += 1000
		fc.instret += 500
		s.TakeSample(now, fc.snapshot)
	})
	if allocs != 0 {
		t.Errorf("TakeSample allocates %.1f per call, want 0", allocs)
	}
}

func TestWriteJSONL(t *testing.T) {
	s := NewSampler(Options{})
	var fc fakeCounters
	for i := 1; i <= 3; i++ {
		fc.instret = uint64(i * 100)
		s.TakeSample(kernel.Time(i*1000), fc.snapshot)
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var prevT uint64
	for i, line := range lines {
		var sm struct {
			Seq     uint64            `json:"seq"`
			T       uint64            `json:"t_ns"`
			Metrics map[string]uint64 `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(line), &sm); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if sm.T <= prevT {
			t.Fatalf("line %d: t_ns %d not increasing", i, sm.T)
		}
		prevT = sm.T
		if sm.Metrics["sim.instret"] != uint64((i+1)*100) {
			t.Errorf("line %d: instret = %d", i, sm.Metrics["sim.instret"])
		}
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewSampler(Options{})
	var fc fakeCounters
	fc.instret = 42
	s.TakeSample(1000, fc.snapshot)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "seq,t_ns,wall_ns,instret,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,1000,") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[1], ",42,") {
		t.Errorf("row missing instret 42: %q", lines[1])
	}
}
