package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Line shapes of the text exposition format (version 0.0.4), restricted to
// what this package emits: numeric samples, optional label sets.
var (
	reHelp   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	reType   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	reSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-][0-9]+)?)$`)
	reLabel  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// ValidateExposition checks that text is a well-formed Prometheus text-format
// exposition: every line is a HELP comment, a TYPE comment, or a sample with
// a legal metric name; HELP/TYPE for a name appear at most once and before
// any of its samples. For every name declared `TYPE ... histogram` it
// additionally checks the histogram contract per label set: `le` bounds
// strictly ascending and ending at `+Inf`, cumulative bucket counts
// non-decreasing, and the `+Inf` bucket equal to the `_count` sample. It
// exists so tests (and CI) can assert /metrics output without a real
// Prometheus binary.
func ValidateExposition(text string) error {
	typed := make(map[string]bool)
	histogram := make(map[string]bool)
	helped := make(map[string]bool)
	sampled := make(map[string]bool)
	type sample struct {
		lineNo int
		labels string
		value  float64
	}
	byName := make(map[string][]sample)
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		lineNo := i + 1
		if m := reHelp.FindStringSubmatch(line); m != nil {
			if helped[m[1]] {
				return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, m[1])
			}
			if sampled[m[1]] {
				return fmt.Errorf("line %d: HELP for %s after its samples", lineNo, m[1])
			}
			helped[m[1]] = true
			continue
		}
		if m := reType.FindStringSubmatch(line); m != nil {
			if typed[m[1]] {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, m[1])
			}
			if sampled[m[1]] {
				return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, m[1])
			}
			typed[m[1]] = true
			if m[2] == "histogram" {
				histogram[m[1]] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("line %d: malformed comment: %q", lineNo, line)
		}
		if m := reSample.FindStringSubmatch(line); m != nil {
			sampled[m[1]] = true
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return fmt.Errorf("line %d: bad sample value %q", lineNo, m[3])
			}
			byName[m[1]] = append(byName[m[1]], sample{lineNo, m[2], v})
			continue
		}
		return fmt.Errorf("line %d: malformed sample line: %q", lineNo, line)
	}

	// Histogram contract, checked per (base name, label set without le).
	for base := range histogram {
		type bucket struct {
			lineNo int
			le     float64
			count  float64
		}
		buckets := make(map[string][]bucket) // labels-without-le -> buckets in order
		for _, s := range byName[base+"_bucket"] {
			le, rest, ok := splitLE(s.labels)
			if !ok {
				return fmt.Errorf("line %d: %s_bucket sample without an le label", s.lineNo, base)
			}
			var bound float64
			if le == "+Inf" {
				bound = math.Inf(1)
			} else {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: %s_bucket has unparsable le=%q", s.lineNo, base, le)
				}
			}
			buckets[rest] = append(buckets[rest], bucket{s.lineNo, bound, s.value})
		}
		counts := make(map[string]float64)
		for _, s := range byName[base+"_count"] {
			counts[s.labels] = s.value
		}
		keys := make([]string, 0, len(buckets))
		for k := range buckets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bs := buckets[k]
			for i := 1; i < len(bs); i++ {
				if bs[i].le <= bs[i-1].le {
					return fmt.Errorf("line %d: %s_bucket%s le bounds not ascending", bs[i].lineNo, base, k)
				}
				if bs[i].count < bs[i-1].count {
					return fmt.Errorf("line %d: %s_bucket%s counts not cumulative (%g after %g)",
						bs[i].lineNo, base, k, bs[i].count, bs[i-1].count)
				}
			}
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, 1) {
				return fmt.Errorf("line %d: %s_bucket%s does not end at le=\"+Inf\"", last.lineNo, base, k)
			}
			total, ok := counts[k]
			if !ok {
				return fmt.Errorf("%s%s has buckets but no _count sample", base, k)
			}
			if total != last.count {
				return fmt.Errorf("line %d: %s_bucket%s +Inf bucket %g != _count %g",
					last.lineNo, base, k, last.count, total)
			}
		}
	}
	return nil
}

// splitLE extracts the le label from a rendered label block and returns the
// block with le removed (re-braced, or "" when le was the only label).
func splitLE(labels string) (le, rest string, ok bool) {
	if labels == "" {
		return "", "", false
	}
	var kept []string
	for _, m := range reLabel.FindAllStringSubmatch(labels[1:len(labels)-1], -1) {
		if m[1] == "le" {
			le, ok = m[2], true
			continue
		}
		kept = append(kept, m[0])
	}
	if !ok {
		return "", "", false
	}
	if len(kept) == 0 {
		return le, "", true
	}
	return le, "{" + strings.Join(kept, ",") + "}", true
}
