package telemetry

import (
	"fmt"
	"regexp"
	"strings"
)

// Line shapes of the text exposition format (version 0.0.4), restricted to
// what this package emits: integer-valued samples, optional label sets.
var (
	reHelp   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	reType   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	reSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-][0-9]+)?$`)
)

// ValidateExposition checks that text is a well-formed Prometheus text-format
// exposition: every line is a HELP comment, a TYPE comment, or a sample with
// a legal metric name; HELP/TYPE for a name appear at most once and before
// any of its samples. It exists so tests (and CI) can assert /metrics output
// without a real Prometheus binary.
func ValidateExposition(text string) error {
	typed := make(map[string]bool)
	helped := make(map[string]bool)
	sampled := make(map[string]bool)
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		lineNo := i + 1
		if m := reHelp.FindStringSubmatch(line); m != nil {
			if helped[m[1]] {
				return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, m[1])
			}
			if sampled[m[1]] {
				return fmt.Errorf("line %d: HELP for %s after its samples", lineNo, m[1])
			}
			helped[m[1]] = true
			continue
		}
		if m := reType.FindStringSubmatch(line); m != nil {
			if typed[m[1]] {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, m[1])
			}
			if sampled[m[1]] {
				return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, m[1])
			}
			typed[m[1]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("line %d: malformed comment: %q", lineNo, line)
		}
		if m := reSample.FindStringSubmatch(line); m != nil {
			sampled[m[1]] = true
			continue
		}
		return fmt.Errorf("line %d: malformed sample line: %q", lineNo, line)
	}
	return nil
}
