package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// The exporter must be byte-deterministic: same metrics, same output. The
// golden string doubles as documentation of the exact format.
func TestWritePrometheusGolden(t *testing.T) {
	metrics := map[string]uint64{
		"sim.instret":                 123456,
		"checks.output":               42,
		"violations.output-clearance": 1,
		"cover.guest_blocks_covered":  17,
		"io.uart0.tx.bytes":           88,
	}
	want := strings.Join([]string{
		"# HELP vpdift_checks_output DIFT clearance checks performed, by check point.",
		"# TYPE vpdift_checks_output counter",
		"vpdift_checks_output 42",
		"# HELP vpdift_cover_guest_blocks_covered Coverage gauge.",
		"# TYPE vpdift_cover_guest_blocks_covered gauge",
		"vpdift_cover_guest_blocks_covered 17",
		"# HELP vpdift_io_uart0_tx_bytes Peripheral I/O counter.",
		"# TYPE vpdift_io_uart0_tx_bytes counter",
		"vpdift_io_uart0_tx_bytes 88",
		"# HELP vpdift_sim_instret Simulation gauge sampled from the platform.",
		"# TYPE vpdift_sim_instret counter",
		"vpdift_sim_instret 123456",
		"# HELP vpdift_violations_output_clearance Policy violations detected, by violation kind.",
		"# TYPE vpdift_violations_output_clearance counter",
		"vpdift_violations_output_clearance 1",
		"",
	}, "\n")
	for i := 0; i < 3; i++ { // determinism across runs
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, metrics); err != nil {
			t.Fatal(err)
		}
		if buf.String() != want {
			t.Fatalf("run %d:\ngot:\n%s\nwant:\n%s", i, buf.String(), want)
		}
	}
}

// Multiple sessions share HELP/TYPE lines: the format forbids repeating
// them, so samples group under one header with a session label each.
func TestWritePrometheusSetsGroupsLabels(t *testing.T) {
	sets := []MetricSet{
		{Labels: map[string]string{"session": "b"}, Metrics: map[string]uint64{"sim.instret": 2}},
		{Labels: map[string]string{"session": "a"}, Metrics: map[string]uint64{"sim.instret": 1, "checks.output": 7}},
	}
	var buf bytes.Buffer
	if err := WritePrometheusSets(&buf, sets); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE vpdift_sim_instret") != 1 {
		t.Errorf("TYPE line must appear once:\n%s", out)
	}
	// Samples sorted by label under the shared header.
	ia := strings.Index(out, `vpdift_sim_instret{session="a"} 1`)
	ib := strings.Index(out, `vpdift_sim_instret{session="b"} 2`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("labeled samples wrong or misordered:\n%s", out)
	}
	if err := ValidateExposition(out); err != nil {
		t.Errorf("invalid exposition: %v\n%s", err, out)
	}
}

func TestWritePrometheusValid(t *testing.T) {
	metrics := map[string]uint64{
		"sim.instret":                 1,
		"sim.time_ns":                 2,
		"violations.sanitize-taint":   3,
		"bus.monitor_dropped.uart0":   4,
		"9weird name":                 5,
		"cover.audit_dead_rules":      6,
		"io.can0.rx.frames":           7,
		"obs.events":                  8,
		"lub_ops":                     9,
		"trace.kernel_events":         10,
		"checks.fetch":                11,
		"sim.decode_cache_hits":       12,
		"bus.read_bytes":              13,
		"completely.unknown.category": 14,
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, metrics); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.String()); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, buf.String())
	}
}

// The decoupled taint monitor's statistics follow the _total convention:
// monotone flows export as counters, instantaneous levels as gauges.
func TestWritePrometheusDecoupledMetrics(t *testing.T) {
	metrics := map[string]uint64{
		"dift.ring_occupancy":   3,
		"dift.stall_ns_total":   12345,
		"dift.suppressed_total": 999,
		"dift.live_regs":        2,
		"dift.emitted_total":    500,
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, metrics); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# HELP vpdift_dift_ring_occupancy Decoupled taint-monitor statistic.",
		"# TYPE vpdift_dift_ring_occupancy gauge",
		"vpdift_dift_ring_occupancy 3",
		"# TYPE vpdift_dift_live_regs gauge",
		"# TYPE vpdift_dift_stall_ns_total counter",
		"vpdift_dift_stall_ns_total 12345",
		"# TYPE vpdift_dift_suppressed_total counter",
		"vpdift_dift_suppressed_total 999",
		"# TYPE vpdift_dift_emitted_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	bad := []string{
		"vpdift.dotted 1",                    // illegal name
		"# TYPE vpdift_x banana",             // unknown type
		"vpdift_x 1\n# TYPE vpdift_x gauge",  // TYPE after sample
		"# HELP vpdift_x a\n# HELP vpdift_x", // second HELP malformed (no text)
		"vpdift_x{label=unquoted} 1",         // unquoted label value
	}
	for _, text := range bad {
		if err := ValidateExposition(text); err == nil {
			t.Errorf("ValidateExposition accepted %q", text)
		}
	}
	if err := ValidateExposition("vpdift_ok{a=\"b\",c=\"d\\\"e\"} 12\n"); err != nil {
		t.Errorf("valid line rejected: %v", err)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := escapeLabelValue("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escapeLabelValue = %q", got)
	}
}
