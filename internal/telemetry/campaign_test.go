package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func waitCampaignDone(t *testing.T, base, id string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		r := doJSON(t, http.MethodGet, base+"/api/v1/campaigns/"+id, nil)
		if r.status == http.StatusOK {
			var info CampaignInfo
			json.Unmarshal(r.Data, &info)
			if info.Done >= want {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("campaign %q never reached %d done cells", id, want)
}

// readSSE collects (event, data) frames until the stream ends.
func readSSE(t *testing.T, resp *http.Response) []ssEvent {
	t.Helper()
	defer resp.Body.Close()
	var events []ssEvent
	var cur ssEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			cur = ssEvent{}
		}
	}
	return events
}

type ssEvent struct{ name, data string }

// TestCampaignStreamOrderDeterministic scrambles cell completion order (the
// first cell finishes last) and asserts the SSE stream still emits cells
// strictly in index order.
func TestCampaignStreamOrderDeterministic(t *testing.T) {
	f := newGateFactory()
	slowGate := f.gate("w0") // cell 0 held until everything else finished
	sv := NewServer(WithFactory(f), WithWorkers(4))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", CampaignSpec{
		ID:       "order",
		Policies: []string{"p"},
		Workloads: []string{
			"w0", "w1", "w2",
		},
	})
	if r.status != http.StatusCreated {
		t.Fatalf("create campaign: status = %d (%+v)", r.status, r.Error)
	}
	waitCampaignDone(t, ts.URL, "order", 2) // w1, w2 finish; w0 held

	// Open the stream while cell 0 is still running, then release it.
	resp, err := http.Get(ts.URL + "/api/v1/campaigns/order/results?stream=sse")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	close(slowGate)
	events := readSSE(t, resp)
	if len(events) != 4 {
		t.Fatalf("got %d SSE events, want 3 cells + done: %+v", len(events), events)
	}
	for i := 0; i < 3; i++ {
		if events[i].name != "cell" {
			t.Fatalf("event %d = %q, want cell", i, events[i].name)
		}
		var cell CellInfo
		if err := json.Unmarshal([]byte(events[i].data), &cell); err != nil {
			t.Fatalf("cell %d payload: %v", i, err)
		}
		if cell.Index != i || cell.State != "done" {
			t.Fatalf("frame %d carries cell index %d state %s", i, cell.Index, cell.State)
		}
	}
	if events[3].name != "done" {
		t.Fatalf("last event = %q, want done", events[3].name)
	}
	var sum CampaignInfo
	json.Unmarshal([]byte(events[3].data), &sum)
	if sum.Done != 3 || sum.Cells != 3 {
		t.Fatalf("done summary = %+v", sum)
	}
}

// TestCampaignDedup runs a grid with a repeated workload column and then the
// identical campaign again: duplicate cells coalesce onto one session, the
// rerun is served wholly from the result store.
func TestCampaignDedup(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(2))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	spec := CampaignSpec{
		ID:        "dd",
		Policies:  []string{"p1"},
		Workloads: []string{"wa", "wa", "wb"},
	}
	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", spec)
	if r.status != http.StatusCreated {
		t.Fatalf("create: status = %d (%+v)", r.status, r.Error)
	}
	waitCampaignDone(t, ts.URL, "dd", 3)
	if n := f.buildCount("wa"); n != 1 {
		t.Fatalf("duplicate cells built wa %d times, want 1", n)
	}

	// Identical rerun: zero new builds, every cell cached.
	spec.ID = "dd2"
	r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", spec)
	if r.status != http.StatusCreated {
		t.Fatalf("rerun: status = %d (%+v)", r.status, r.Error)
	}
	var info CampaignInfo
	json.Unmarshal(r.Data, &info)
	if info.Done != 3 || info.Cached != 3 {
		t.Fatalf("rerun info = %+v, want 3 done, 3 cached", info)
	}
	if n := f.buildCount("wa") + f.buildCount("wb"); n != 2 {
		t.Fatalf("rerun built %d sessions, want 0 new (2 total)", n)
	}

	// Duplicate campaign ID: 409.
	r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", spec)
	if r.status != http.StatusConflict {
		t.Fatalf("dup campaign ID: status = %d, want 409", r.status)
	}
}

func TestCampaignPagination(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(4))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", CampaignSpec{
		ID:        "pg",
		Policies:  []string{"a", "b"},
		Workloads: []string{"x", "y", "z"},
	})
	if r.status != http.StatusCreated {
		t.Fatalf("create: status = %d (%+v)", r.status, r.Error)
	}
	waitCampaignDone(t, ts.URL, "pg", 6)

	type page struct {
		Campaign   CampaignInfo `json:"campaign"`
		Offset     int          `json:"offset"`
		NextOffset int          `json:"next_offset"`
		Cells      []CellInfo   `json:"cells"`
	}
	var got []CellInfo
	offset := 0
	for {
		r := doJSON(t, http.MethodGet, ts.URL+"/api/v1/campaigns/pg/results?limit=4&offset="+itoa(offset), nil)
		if r.status != http.StatusOK {
			t.Fatalf("page at %d: status = %d", offset, r.status)
		}
		var p page
		json.Unmarshal(r.Data, &p)
		got = append(got, p.Cells...)
		if p.NextOffset < 0 {
			break
		}
		offset = p.NextOffset
	}
	if len(got) != 6 {
		t.Fatalf("paginated %d cells, want 6", len(got))
	}
	// Row-major: policies outer, workloads inner.
	if got[0].Policy != "a" || got[0].Workload != "x" || got[3].Policy != "b" || got[3].Workload != "x" {
		t.Fatalf("cell order wrong: %+v", got)
	}
	for i, c := range got {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
	}
}

// TestCampaignTooBigAndBadSpecs covers the 400 paths.
func TestCampaignTooBigAndBadSpecs(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(2))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", CampaignSpec{Policies: []string{"p"}})
	if r.status != http.StatusBadRequest {
		t.Fatalf("empty workloads: status = %d, want 400", r.status)
	}
	pols := make([]string, 70)
	wls := make([]string, 70)
	for i := range pols {
		pols[i], wls[i] = itoa(i), itoa(i)
	}
	r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", CampaignSpec{Policies: pols, Workloads: wls})
	if r.status != http.StatusBadRequest {
		t.Fatalf("oversized grid: status = %d, want 400", r.status)
	}
	r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns",
		CampaignSpec{Policies: []string{"p"}, Workloads: []string{"badkey"}})
	if r.status != http.StatusBadRequest {
		t.Fatalf("bad cell key: status = %d, want 400", r.status)
	}
	r = doJSON(t, http.MethodGet, ts.URL+"/api/v1/campaigns/ghost", nil)
	if r.status != http.StatusNotFound {
		t.Fatalf("unknown campaign: status = %d, want 404", r.status)
	}
}

// TestCampaignAtomicAdmission rejects a campaign whole when its fresh cells
// exceed the queue, leaving no partial work behind.
func TestCampaignAtomicAdmission(t *testing.T) {
	f := newGateFactory()
	gate := f.gate("busy")
	sv := NewServer(WithFactory(f), WithWorkers(1), WithQueueDepth(2))
	defer sv.Close()
	defer close(gate)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// Occupy the worker so queued slots stay occupied.
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{Workload: "busy"})
	waitStats(t, sv, func(st Stats) bool { return st.Running == 1 }, "busy running")

	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", CampaignSpec{
		ID:        "big",
		Policies:  []string{"p"},
		Workloads: []string{"c1", "c2", "c3"}, // 3 fresh > 2 free slots
	})
	if r.status != http.StatusTooManyRequests || r.Error == nil || r.Error.Code != "queue_full" {
		t.Fatalf("oversubscribed campaign: status=%d error=%+v", r.status, r.Error)
	}
	if r.header.Get("Retry-After") == "" {
		t.Fatal("429 campaign response has no Retry-After")
	}
	if st := sv.Stats(); st.Queued != 0 {
		t.Fatalf("rejected campaign left %d sessions queued", st.Queued)
	}
	if sv.getCampaign("big") != nil {
		t.Fatal("rejected campaign was registered")
	}

	// A campaign that fits is admitted.
	r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/campaigns", CampaignSpec{
		ID:        "fits",
		Policies:  []string{"p"},
		Workloads: []string{"c1", "c2"},
	})
	if r.status != http.StatusCreated {
		t.Fatalf("fitting campaign: status = %d (%+v)", r.status, r.Error)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
