// Package telemetry turns a running virtual prototype into a live data
// source: a kernel-resident sampler snapshots the platform's metrics on a
// fixed simulated-time cadence into a bounded ring, exporters render the
// ring as JSONL, CSV, or Prometheus text format, and Server exposes one or
// more simulation sessions over HTTP.
//
// The package follows the same disabled-by-default contract as obs, trace,
// and cover: a platform built without a sampler pays nothing — no goroutine,
// no per-instruction branch, no allocation. The sampler itself rides on a
// kernel daemon thread (kernel.SpawnDaemon), so it never keeps an unbounded
// Run alive and never perturbs the deterministic event order of the
// simulation proper: it only reads counters at quiescent points between
// scheduled work.
//
// telemetry deliberately does not import internal/soc — soc imports
// telemetry for its Config — so everything here operates on plain counter
// maps and the small Platform interface in server.go, which *soc.Platform
// satisfies.
package telemetry

import (
	"strings"
	"sync"
	"time"

	"vpdift/internal/kernel"
)

// Default sampling cadence and ring size.
const (
	DefaultEvery        = kernel.Time(1_000_000) // 1ms of simulated time
	DefaultRingCapacity = 4096
)

// Options configures a Sampler.
type Options struct {
	// Every is the sampling period in simulated nanoseconds.
	// Defaults to DefaultEvery (1ms).
	Every kernel.Time
	// RingCapacity bounds how many samples are retained; older samples are
	// overwritten. Defaults to DefaultRingCapacity.
	RingCapacity int
}

// Derived holds the rates computed from the delta between two consecutive
// samples. Rates are per simulated second — a paused or slow host does not
// distort them.
type Derived struct {
	// MIPS is millions of retired instructions per simulated second.
	MIPS float64 `json:"mips"`
	// TaintEventRate is provenance events recorded per simulated second
	// (0 when no observer is attached).
	TaintEventRate float64 `json:"taint_events_per_s"`
	// Violations is the cumulative count of policy violations across every
	// violations.* counter.
	Violations uint64 `json:"violations"`
	// DecodeCacheHitRatio is hits/(hits+misses) over the sample interval,
	// 0 when no instruction was fetched during it.
	DecodeCacheHitRatio float64 `json:"decode_cache_hit_ratio"`
	// BusBytesPerSec is TLM bus payload traffic (read + write) per
	// simulated second.
	BusBytesPerSec float64 `json:"bus_bytes_per_s"`
}

// Sample is one timestamped snapshot of the platform's metrics.
type Sample struct {
	// Seq numbers samples from 1 in capture order.
	Seq uint64 `json:"seq"`
	// Time is the simulated timestamp in nanoseconds.
	Time kernel.Time `json:"t_ns"`
	// Wall is host wall-clock time elapsed since Start.
	Wall time.Duration `json:"wall_ns"`
	// Derived holds the interval rates.
	Derived Derived `json:"derived"`
	// Metrics is the full counter snapshot. The map is owned by the
	// sampler's ring and reused; callers outside the sampler's lock must
	// copy it (Samples does).
	Metrics map[string]uint64 `json:"metrics"`
}

// Sampler captures periodic metric snapshots into a bounded ring. All
// methods are safe for concurrent use; the simulation side only ever calls
// TakeSample (via the daemon thread), readers use Samples, Last, Total, or
// the Write* exporters.
type Sampler struct {
	opts Options

	mu      sync.Mutex
	ring    []Sample
	total   uint64 // samples ever taken; ring index = (seq-1) % cap
	started time.Time
	haveT0  bool

	// Previous cumulative values for interval rates.
	prevTime    kernel.Time
	prevInstret uint64
	prevEvents  uint64
	prevHits    uint64
	prevMisses  uint64
	prevBus     uint64
}

// NewSampler creates a sampler; zero-value options pick the defaults.
func NewSampler(opts Options) *Sampler {
	if opts.Every == 0 {
		opts.Every = DefaultEvery
	}
	if opts.RingCapacity <= 0 {
		opts.RingCapacity = DefaultRingCapacity
	}
	return &Sampler{opts: opts, ring: make([]Sample, opts.RingCapacity)}
}

// Options returns the sampler's effective configuration.
func (s *Sampler) Options() Options { return s.opts }

// Start spawns the sampling daemon on sim. snapshot must fill dst with the
// platform's current counters (soc.Platform.MetricsSnapshotInto); it runs at
// quiescent simulation points, so it may read simulation state freely. The
// daemon never keeps an unbounded Run alive — see kernel.SpawnDaemon.
func (s *Sampler) Start(sim *kernel.Simulator, snapshot func(dst map[string]uint64)) {
	s.mu.Lock()
	if !s.haveT0 {
		s.started = time.Now()
		s.haveT0 = true
	}
	s.mu.Unlock()
	every := s.opts.Every
	sim.SpawnDaemon("telemetry", func(p *kernel.Proc) {
		for {
			p.Wait(every)
			s.takeSample(p.Now(), snapshot)
		}
	})
}

// TakeSample captures one snapshot immediately — the manual variant for
// callers that drive the simulation themselves and want a final sample at an
// exact point (e.g. end of run).
func (s *Sampler) TakeSample(now kernel.Time, snapshot func(dst map[string]uint64)) {
	s.takeSample(now, snapshot)
}

func (s *Sampler) takeSample(now kernel.Time, snapshot func(dst map[string]uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.haveT0 {
		s.started = time.Now()
		s.haveT0 = true
	}
	s.total++
	sm := &s.ring[int((s.total-1)%uint64(len(s.ring)))]
	sm.Seq = s.total
	sm.Time = now
	sm.Wall = time.Since(s.started)
	// Reuse the slot's map: after the ring's first lap every sample is
	// allocation-free (clear + refill of an already-sized map).
	if sm.Metrics == nil {
		sm.Metrics = make(map[string]uint64, 64)
	} else {
		clear(sm.Metrics)
	}
	snapshot(sm.Metrics)
	sm.Derived = s.derive(sm)
}

// derive computes interval rates against the previous sample and rolls the
// cumulative baselines forward. Called with s.mu held.
func (s *Sampler) derive(sm *Sample) Derived {
	m := sm.Metrics
	instret := m["sim.instret"]
	events := m["obs.events"]
	hits := m["sim.decode_cache_hits"]
	misses := m["sim.decode_cache_misses"]
	bus := m["bus.read_bytes"] + m["bus.write_bytes"]
	var violations uint64
	for k, n := range m {
		if strings.HasPrefix(k, "violations.") {
			violations += n
		}
	}

	var d Derived
	d.Violations = violations
	dt := float64(sm.Time - s.prevTime) // simulated ns since previous sample
	if dt > 0 {
		perSec := 1e9 / dt
		d.MIPS = float64(instret-s.prevInstret) * perSec / 1e6
		d.TaintEventRate = float64(events-s.prevEvents) * perSec
		d.BusBytesPerSec = float64(bus-s.prevBus) * perSec
	}
	if dh, dm := hits-s.prevHits, misses-s.prevMisses; dh+dm > 0 {
		d.DecodeCacheHitRatio = float64(dh) / float64(dh+dm)
	}

	s.prevTime = sm.Time
	s.prevInstret = instret
	s.prevEvents = events
	s.prevHits = hits
	s.prevMisses = misses
	s.prevBus = bus
	return d
}

// Total returns how many samples have ever been taken (the ring may retain
// fewer).
func (s *Sampler) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Last returns the most recent sample with a copied metrics map, or false
// when none has been taken.
func (s *Sampler) Last() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total == 0 {
		return Sample{}, false
	}
	return copySample(s.ring[int((s.total-1)%uint64(len(s.ring)))]), true
}

// Samples returns the retained samples oldest-first. Metric maps are copied,
// so the result is safe to hold while sampling continues.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, s.retained())
	s.each(func(sm *Sample) { out = append(out, copySample(*sm)) })
	return out
}

// retained and each iterate the ring oldest-first. Called with s.mu held.
func (s *Sampler) retained() int {
	if s.total < uint64(len(s.ring)) {
		return int(s.total)
	}
	return len(s.ring)
}

func (s *Sampler) each(fn func(*Sample)) {
	n := s.retained()
	for i := 0; i < n; i++ {
		seq := s.total - uint64(n) + uint64(i) + 1
		fn(&s.ring[int((seq-1)%uint64(len(s.ring)))])
	}
}

func copySample(sm Sample) Sample {
	cp := sm
	cp.Metrics = make(map[string]uint64, len(sm.Metrics))
	for k, v := range sm.Metrics {
		cp.Metrics[k] = v
	}
	return cp
}
