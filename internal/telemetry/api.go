package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// SessionSpec is the wire shape of POST /api/v1/sessions and of each
// campaign cell: what to simulate, under which policy, fed which stimulus.
// The session factory turns a spec into a platform; the (image, policy,
// stimulus) triple it resolves to is content-hashed into the dedup key.
type SessionSpec struct {
	// ID optionally names the session; the server assigns s-<n> otherwise.
	// A taken ID is a 409.
	ID string `json:"id,omitempty"`
	// Workload names what runs: "immo" (endless challenge loop), a Table II
	// workload (qsort, dhrystone, primes, sha512, simple-sensor,
	// freertos-tasks), "micro" (tiny load-test guest), or a Wilander-Kamkar
	// attack ("wk-3" ... "wk-18").
	Workload string `json:"workload"`
	// Scale sizes Table II workloads: small (default), medium, large.
	Scale string `json:"scale,omitempty"`
	// Policy selects the security policy: "default" (per-workload), "none"
	// (baseline VP), or a workload-specific name ("base", "per-byte" for
	// immo).
	Policy string `json:"policy,omitempty"`
	// Stimulus is free-form stimulus identity (e.g. a challenge seed). It
	// is folded into the dedup key, so distinct stimuli never coalesce.
	Stimulus string `json:"stimulus,omitempty"`
	// Priority orders the pending queue; higher runs sooner.
	Priority int `json:"priority,omitempty"`
	// HorizonMs bounds simulated time (milliseconds); 0 = run to exit or
	// the workload default.
	HorizonMs int64 `json:"horizon_ms,omitempty"`
	// TimeoutMs bounds host wall-clock time; 0 = the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// SampleUs attaches a metrics sampler at this simulated cadence
	// (microseconds); 0 = no sampler.
	SampleUs int64 `json:"sample_us,omitempty"`
	// Observe attaches a taint observer so /events streams provenance.
	Observe bool `json:"observe,omitempty"`
	// Cover attaches the coverage views and captures a cross-run snapshot
	// into the session result when it finishes (SessionResult.Cover).
	Cover bool `json:"cover,omitempty"`
	// Force bypasses the result store: simulate even on a dedup hit.
	Force bool `json:"force,omitempty"`
}

// SessionFactory builds sessions from wire specs. Key must be cheap
// relative to Build (it runs on every submission, hit or miss) and must
// fold every result-determining input — image bytes, policy, stimulus,
// horizon — into the returned content hash.
type SessionFactory interface {
	// Key returns the dedup content hash for the spec.
	Key(spec SessionSpec) (string, error)
	// Build constructs the session (platform, drive closure, Close hook).
	// The server fills ID, Priority, Timeout, and Key afterwards.
	Build(spec SessionSpec) (SessionConfig, error)
}

// apiError is the error half of the v1 envelope.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Fault carries guest-fault detail when the error concerns a session
	// that died on one (e.g. the no_forensics 404 of a faulted session
	// whose recorder was disabled).
	Fault *FaultDetail `json:"fault,omitempty"`
}

// envelope is the one JSON shape every v1 response uses: exactly one of
// Data and Error is set.
type envelope struct {
	Data  any       `json:"data,omitempty"`
	Error *apiError `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeData(w http.ResponseWriter, status int, v any) {
	writeJSON(w, status, envelope{Data: v})
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, envelope{Error: &apiError{Code: code, Message: msg}})
}

// allow dispatches on the request method, answering anything outside the
// allowed set with an enveloped 405 and an Allow header. Returns false when
// it already answered.
func allow(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
		fmt.Sprintf("%s not allowed on %s (allow: %s)", r.Method, r.URL.Path, strings.Join(methods, ", ")))
	return false
}

// createdSession is the "data" payload of POST /api/v1/sessions.
type createdSession struct {
	Session *sessionInfo `json:"session,omitempty"`
	// Cached is set when the submission was served from the result store
	// without simulating.
	Cached bool `json:"cached,omitempty"`
	// Coalesced is set when an identical submission was already in flight;
	// Session then describes that session.
	Coalesced bool           `json:"coalesced,omitempty"`
	Result    *SessionResult `json:"result,omitempty"`
	Key       string         `json:"key,omitempty"`
}

// v1Sessions handles GET (list) and POST (create) on /api/v1/sessions.
func (sv *Server) v1Sessions(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodGet {
		infos := sv.sessionInfos()
		writeData(w, http.StatusOK, map[string]any{
			"sessions": infos,
			"total":    len(infos),
		})
		return
	}
	var spec SessionSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid session spec: "+err.Error())
		return
	}
	out, status, aerr := sv.createSession(r.Context(), spec)
	if aerr != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(sv.pool.retryAfter()))
		}
		writeJSON(w, status, envelope{Error: aerr})
		return
	}
	writeData(w, status, out)
}

// createSession is the factory path shared by POST /api/v1/sessions and the
// campaign expander: dedup against the result store and in-flight sessions,
// then build and submit. The request ID carried by ctx becomes the session's
// Origin, joining its lifecycle logs and trace spans to the request that
// created it. Returns the payload and HTTP status, or an API error with its
// status.
func (sv *Server) createSession(ctx context.Context, spec SessionSpec) (*createdSession, int, *apiError) {
	f := sv.opts.factory
	if f == nil {
		return nil, http.StatusNotImplemented, &apiError{
			Code: "unsupported", Message: "server has no session factory; sessions are preconfigured"}
	}
	if spec.Workload == "" {
		return nil, http.StatusBadRequest, &apiError{Code: "bad_request", Message: "spec needs a workload"}
	}
	key, err := f.Key(spec)
	if err != nil {
		return nil, http.StatusBadRequest, &apiError{Code: "bad_request", Message: err.Error()}
	}

	sv.submitMu.Lock()
	defer sv.submitMu.Unlock()

	if spec.Force {
		sv.stats.forced.Add(1)
	} else {
		if res, ok := sv.opts.store.Get(key); ok {
			sv.stats.cacheHits.Add(1)
			return &createdSession{Cached: true, Result: &res, Key: key}, http.StatusOK, nil
		}
		sv.stats.cacheMisses.Add(1)
		if live := sv.liveByKey(key); live != nil {
			sv.stats.coalesced.Add(1)
			info := live.info()
			return &createdSession{Coalesced: true, Session: &info, Key: key}, http.StatusOK, nil
		}
	}
	if sv.pool.stopped() {
		return nil, http.StatusServiceUnavailable, &apiError{Code: "draining", Message: "server is draining; no new sessions"}
	}
	if sv.pool.capacityLeft() < 1 {
		sv.stats.rejectedFull.Add(1)
		return nil, http.StatusTooManyRequests, &apiError{Code: "queue_full", Message: "session queue at capacity; retry later"}
	}

	cfg, err := f.Build(spec)
	if err != nil {
		return nil, http.StatusBadRequest, &apiError{Code: "bad_request", Message: err.Error()}
	}
	cfg.Key = key
	cfg.Priority = spec.Priority
	cfg.Origin = RequestIDFrom(ctx)
	if spec.TimeoutMs > 0 {
		cfg.Timeout = time.Duration(spec.TimeoutMs) * time.Millisecond
	} else if cfg.Timeout == 0 {
		cfg.Timeout = sv.opts.timeout
	}
	if spec.ID != "" {
		cfg.ID = spec.ID
	} else if cfg.ID == "" {
		cfg.ID = sv.autoID("s")
	}
	if err := sv.Submit(cfg); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			return nil, http.StatusTooManyRequests, &apiError{Code: "queue_full", Message: err.Error()}
		case errors.Is(err, ErrDraining):
			return nil, http.StatusServiceUnavailable, &apiError{Code: "draining", Message: err.Error()}
		case errors.Is(err, ErrDuplicateID):
			return nil, http.StatusConflict, &apiError{Code: "conflict", Message: err.Error()}
		default:
			return nil, http.StatusBadRequest, &apiError{Code: "bad_request", Message: err.Error()}
		}
	}
	s := sv.get(cfg.ID)
	info := s.info()
	return &createdSession{Session: &info, Key: key}, http.StatusCreated, nil
}

// autoID mints a fresh "<prefix>-<n>" ID that no current session or
// campaign holds.
func (sv *Server) autoID(prefix string) string {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	for {
		sv.nextID++
		id := fmt.Sprintf("%s-%d", prefix, sv.nextID)
		if _, taken := sv.sessions[id]; taken {
			continue
		}
		if _, taken := sv.campaigns[id]; taken {
			continue
		}
		return id
	}
}

// v1Session handles GET and DELETE on /api/v1/sessions/{id}.
func (sv *Server) v1Session(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet, http.MethodDelete) {
		return
	}
	id := r.PathValue("id")
	s := sv.get(id)
	if s == nil {
		writeError(w, http.StatusNotFound, "not_found", "no session "+strconv.Quote(id))
		return
	}
	if r.Method == http.MethodGet {
		writeData(w, http.StatusOK, s.info())
		return
	}
	res, err := sv.EndSession(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeData(w, http.StatusOK, map[string]any{"ended": id, "result": res})
}

// v1SessionResult serves the final result of a finished session; 409 while
// it is still queued or running.
func (sv *Server) v1SessionResult(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id := r.PathValue("id")
	s := sv.get(id)
	if s == nil {
		writeError(w, http.StatusNotFound, "not_found", "no session "+strconv.Quote(id))
		return
	}
	s.mu.Lock()
	fin := s.finalized
	res := s.result
	s.mu.Unlock()
	if !fin {
		writeError(w, http.StatusConflict, "conflict", "session "+id+" has not finished")
		return
	}
	writeData(w, http.StatusOK, res)
}

// v1Timeseries serves the sampler ring. The enveloped default carries the
// samples as JSON; ?format=jsonl|csv streams the raw exporter output.
func (sv *Server) v1Timeseries(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id := r.PathValue("id")
	s := sv.get(id)
	if s == nil {
		writeError(w, http.StatusNotFound, "not_found", "no session "+strconv.Quote(id))
		return
	}
	if s.cfg.Sampler == nil {
		writeError(w, http.StatusNotFound, "no_sampler", "session "+id+" has no sampler attached")
		return
	}
	switch r.URL.Query().Get("format") {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		s.cfg.Sampler.WriteCSV(w)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		s.cfg.Sampler.WriteJSONL(w)
	case "", "json":
		samples := s.cfg.Sampler.Samples()
		writeData(w, http.StatusOK, map[string]any{
			"session": id,
			"total":   s.cfg.Sampler.Total(),
			"samples": samples,
		})
	default:
		writeError(w, http.StatusBadRequest, "bad_request", "format must be json, jsonl or csv")
	}
}

// v1Events streams the observer ring as SSE (the frames themselves are the
// SSE protocol, not enveloped JSON).
func (sv *Server) v1Events(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id := r.PathValue("id")
	s := sv.get(id)
	if s == nil {
		writeError(w, http.StatusNotFound, "not_found", "no session "+strconv.Quote(id))
		return
	}
	if s.cfg.Platform.Observer() == nil {
		writeError(w, http.StatusNotFound, "no_observer", "session "+id+" has no observer attached")
		return
	}
	sv.streamEvents(w, r, s)
}

// v1StoredResult serves a result-store entry by its content hash.
func (sv *Server) v1StoredResult(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	key := r.PathValue("key")
	res, ok := sv.opts.store.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no stored result for key "+strconv.Quote(key))
		return
	}
	writeData(w, http.StatusOK, res)
}
