package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
)

// stubPlatform satisfies Platform without a real SoC: Run teleports the
// clock to the horizon and retires 10 instructions per simulated µs.
type stubPlatform struct {
	now     kernel.Time
	instret uint64
	o       *obs.Observer
	exitAt  kernel.Time
	exited  bool
	runErr  error
}

func (p *stubPlatform) Run(horizon kernel.Time) error {
	if p.runErr != nil {
		return p.runErr
	}
	if horizon > p.now {
		p.instret += uint64(horizon-p.now) / 100
		p.now = horizon
	}
	if p.exitAt != 0 && p.now >= p.exitAt {
		p.exited = true
	}
	return nil
}
func (p *stubPlatform) Now() kernel.Time { return p.now }
func (p *stubPlatform) MetricsSnapshotInto(dst map[string]uint64) {
	dst["sim.instret"] = p.instret
	dst["sim.time_ns"] = uint64(p.now)
}
func (p *stubPlatform) Observer() *obs.Observer { return p.o }
func (p *stubPlatform) Exited() (bool, uint32)  { return p.exited, 0 }

func waitDone(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/api/sessions")
		if err != nil {
			t.Fatal(err)
		}
		var infos []sessionInfo
		json.NewDecoder(resp.Body).Decode(&infos)
		resp.Body.Close()
		for _, in := range infos {
			if in.ID == id && in.Done {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("session %q never finished", id)
}

func TestServerEndpoints(t *testing.T) {
	sv := NewServer()
	defer sv.Close()
	s := NewSampler(Options{})
	var fc fakeCounters
	fc.instret = 7
	s.TakeSample(1000, fc.snapshot)
	fc.instret = 9
	s.TakeSample(2000, fc.snapshot)
	if err := sv.Add(SessionConfig{
		ID:       "alpha",
		Platform: &stubPlatform{},
		Sampler:  s,
		Horizon:  5_000_000, // 5ms: a few chunks, then done
	}); err != nil {
		t.Fatal(err)
	}
	if err := sv.Add(SessionConfig{ID: "alpha", Platform: &stubPlatform{}}); err == nil {
		t.Fatal("duplicate session ID accepted")
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	waitDone(t, ts, "alpha")

	// /healthz
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("/healthz: %d %s", resp.StatusCode, body)
	}

	// /metrics
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `vpdift_sim_instret{session="alpha"} 50000`) {
		t.Errorf("/metrics missing instret sample:\n%s", text)
	}
	if err := ValidateExposition(text); err != nil {
		t.Errorf("/metrics invalid: %v\n%s", err, text)
	}

	// /api/sessions
	resp, err = http.Get(ts.URL + "/api/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var infos []sessionInfo
	json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if len(infos) != 1 || infos[0].ID != "alpha" || !infos[0].Done ||
		infos[0].SimNs != 5_000_000 || infos[0].Samples != 2 {
		t.Errorf("/api/sessions = %+v", infos)
	}

	// /api/sessions/{id}/timeseries
	resp, err = http.Get(ts.URL + "/api/sessions/alpha/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"t_ns":1000`) {
		t.Errorf("timeseries = %q", body)
	}
	resp, err = http.Get(ts.URL + "/api/sessions/alpha/timeseries?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(string(body), "seq,t_ns,") {
		t.Errorf("csv timeseries = %q", body)
	}

	// Unknown session and sampler-less session 404.
	for _, path := range []string{
		"/api/sessions/nope/timeseries",
		"/api/sessions/nope/events",
	} {
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServerMetricsMonotone(t *testing.T) {
	sv := NewServer()
	defer sv.Close()
	if err := sv.Add(SessionConfig{ID: "run", Platform: &stubPlatform{}}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	scrape := func() uint64 {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		for _, line := range strings.Split(string(body), "\n") {
			if v, ok := parseSampleLine(line, `vpdift_sim_instret{session="run"} `); ok {
				return v
			}
		}
		t.Fatalf("no instret in scrape:\n%s", body)
		return 0
	}
	a := scrape()
	time.Sleep(20 * time.Millisecond)
	b := scrape()
	if b <= a {
		t.Errorf("instret not monotone across scrapes: %d then %d", a, b)
	}
}

func parseSampleLine(line, prefix string) (uint64, bool) {
	if !strings.HasPrefix(line, prefix) {
		return 0, false
	}
	var n uint64
	for _, c := range line[len(prefix):] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + uint64(c-'0')
	}
	return n, true
}

func TestServerEventsSSE(t *testing.T) {
	o := obs.New()
	o.PinClassify("secret", 0x100, 0x104, core.Tag(1))
	o.BeginInsn(0x8000, 0x00052283)
	o.OnLoad(0x100, 4, core.W(0xAB, core.Tag(1)))
	o.AssignReg(5)

	sv := NewServer()
	defer sv.Close()
	if err := sv.Add(SessionConfig{
		ID:       "sse",
		Platform: &stubPlatform{o: o, exitAt: 1},
		Horizon:  1_000_000,
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	waitDone(t, ts, "sse")

	resp, err := http.Get(ts.URL + "/api/sessions/sse/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var dataLines, doneEvents int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: {\"seq\"") {
			dataLines++
			// Kind marshals as a string, so decode into a loose shape.
			var ev struct {
				Seq  uint64 `json:"seq"`
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil || ev.Seq == 0 {
				t.Errorf("bad SSE payload %q: %v", line, err)
			}
		}
		if line == "event: done" {
			doneEvents++
		}
	}
	if dataLines < 2 {
		t.Errorf("got %d SSE events, want >= 2 (classify + load)", dataLines)
	}
	if doneEvents != 1 {
		t.Errorf("got %d done events, want 1", doneEvents)
	}
}
