package telemetry

import (
	"encoding/json"
	"net/http"
	"time"

	"vpdift/internal/obs"
)

// ChromePidServe is the Chrome-trace process id of the serving plane's
// session spans; internal/trace puts kernel (0), taint (1) and bus (2) rows
// under their own pids, so one merged file keeps all four views separable.
const ChromePidServe = 3

// lifecycle stamps a session's wall-clock transitions. time.Time carries a
// monotonic reading, so the derived durations are immune to clock steps;
// the RFC 3339 render of submitted is the one wall-clock anchor. Fields are
// guarded by the session mutex.
type lifecycle struct {
	submitted time.Time // Submit accepted the session (start of queue wait)
	started   time.Time // a worker dequeued it (start of the run span)
	finished  time.Time // the run loop ended (cancel, error, exit or horizon)
	stored    time.Time // result published to the store and callbacks fired
}

// SessionTimings is the lifecycle's wire form, exposed on the session
// envelope. For live sessions the open span is reported up to "now", so a
// dashboard can watch queue wait grow on a saturated pool.
type SessionTimings struct {
	// SubmittedAt anchors the spans in wall-clock time (RFC 3339, UTC).
	SubmittedAt string `json:"submitted_at"`
	// QueueWaitNs is submit->dequeue (so far, while queued).
	QueueWaitNs int64 `json:"queue_wait_ns"`
	// RunNs is dequeue->run-end (so far, while running; absent while queued).
	RunNs int64 `json:"run_ns,omitempty"`
	// StoreNs is run-end->result-published (absent until finalized).
	StoreNs int64 `json:"store_ns,omitempty"`
	// TotalNs is submit->result-published (absent until finalized).
	TotalNs int64 `json:"total_ns,omitempty"`
}

// timings renders the lifecycle relative to now. Call with the session
// mutex held.
func (lc *lifecycle) timings(now time.Time) *SessionTimings {
	if lc.submitted.IsZero() {
		return nil
	}
	t := &SessionTimings{SubmittedAt: lc.submitted.UTC().Format(time.RFC3339Nano)}
	switch {
	case lc.started.IsZero():
		// Still queued — or canceled before a worker picked it up, in which
		// case the wait ended when the session did.
		end := now
		if !lc.finished.IsZero() {
			end = lc.finished
		}
		t.QueueWaitNs = end.Sub(lc.submitted).Nanoseconds()
		if !lc.stored.IsZero() {
			t.TotalNs = lc.stored.Sub(lc.submitted).Nanoseconds()
		}
	case lc.finished.IsZero():
		t.QueueWaitNs = lc.started.Sub(lc.submitted).Nanoseconds()
		t.RunNs = now.Sub(lc.started).Nanoseconds()
	default:
		t.QueueWaitNs = lc.started.Sub(lc.submitted).Nanoseconds()
		t.RunNs = lc.finished.Sub(lc.started).Nanoseconds()
		if !lc.stored.IsZero() {
			t.StoreNs = lc.stored.Sub(lc.finished).Nanoseconds()
			t.TotalNs = lc.stored.Sub(lc.submitted).Nanoseconds()
		}
	}
	return t
}

// chromeSpans renders every session's lifecycle as Chrome trace events on
// one shared wall-clock axis (1 trace µs = 1 wall µs since server start):
// pid ChromePidServe, one thread row per session, a complete span per
// closed phase and an instant for the submit. Open phases extend to now, so
// a trace exported mid-run still shows where every session currently is.
// The output loads in the same viewer as trace.WriteChromeTrace output and
// uses disjoint pids, so the fleet view and a simulation's internal view
// can be concatenated into one timeline.
func (sv *Server) chromeSpans() []obs.ChromeEvent {
	now := time.Now()
	us := func(t time.Time) float64 { return t.Sub(sv.startedAt).Seconds() * 1e6 }
	out := []obs.ChromeEvent{{
		Name: "process_name", Ph: "M", Pid: ChromePidServe,
		Args: map[string]any{"name": "serve"},
	}}
	for i, s := range sv.all() {
		tid := i + 1
		s.mu.Lock()
		lc := s.lc
		state := s.state
		origin := s.origin
		s.mu.Unlock()
		if lc.submitted.IsZero() {
			continue
		}
		args := map[string]any{"session": s.cfg.ID, "state": state}
		if origin != "" {
			args["request_id"] = origin
		}
		out = append(out,
			obs.ChromeEvent{Name: "thread_name", Ph: "M", Pid: ChromePidServe, Tid: tid,
				Args: map[string]any{"name": s.cfg.ID}},
			obs.ChromeEvent{Name: "submit", Ph: "i", Ts: us(lc.submitted),
				Pid: ChromePidServe, Tid: tid, S: "t", Args: args},
		)
		span := func(name string, from, to time.Time) {
			if to.IsZero() {
				to = now
			}
			out = append(out, obs.ChromeEvent{Name: name, Ph: "X",
				Ts: us(from), Dur: to.Sub(from).Seconds() * 1e6,
				Pid: ChromePidServe, Tid: tid, Args: args})
		}
		qEnd := lc.started
		if qEnd.IsZero() {
			qEnd = lc.finished // canceled before dequeue
		}
		span("queued", lc.submitted, qEnd)
		if !lc.started.IsZero() {
			span("run", lc.started, lc.finished)
		}
		if !lc.finished.IsZero() {
			span("store", lc.finished, lc.stored)
		}
	}
	return out
}

// handleTrace serves GET /api/v1/trace: the whole fleet's lifecycle spans
// as one Chrome trace_event JSON array (raw, not enveloped — the file is
// the product; load it in a trace viewer).
func (sv *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sv.chromeSpans())
}
