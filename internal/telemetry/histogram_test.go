package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	h.Observe(500 * time.Microsecond) // <= 0.001
	h.Observe(1 * time.Millisecond)   // boundary: still <= 0.001
	h.Observe(5 * time.Millisecond)   // <= 0.01
	h.Observe(2 * time.Second)        // +Inf
	h.Observe(-time.Second)           // clamped to 0 -> first bucket

	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	wantSum := 0.0005 + 0.001 + 0.005 + 2.0
	if got := h.Sum(); got < wantSum-1e-9 || got > wantSum+1e-9 {
		t.Errorf("Sum = %v, want %v", got, wantSum)
	}
	cum, count, _ := h.snapshot()
	if count != 5 {
		t.Errorf("snapshot count = %d, want 5", count)
	}
	want := []uint64{3, 4, 4, 5} // cumulative: <=1ms, <=10ms, <=100ms, +Inf
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d (all: %v)", i, cum[i], w, cum)
		}
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram()
	if len(h.boundsSec) != len(DurationBuckets) {
		t.Fatalf("default bucket count = %d, want %d", len(h.boundsSec), len(DurationBuckets))
	}
	for i := 1; i < len(h.boundsSec); i++ {
		if h.boundsSec[i] <= h.boundsSec[i-1] {
			t.Fatalf("default buckets not ascending at %d: %v", i, h.boundsSec)
		}
	}
}

func TestWriteHistogramFamilies(t *testing.T) {
	lat := NewHistogram(0.001, 0.01)
	lat.Observe(2 * time.Millisecond)
	lat.Observe(3 * time.Second)
	idle := NewHistogram() // no observations: series must be skipped
	var b strings.Builder
	err := WriteHistogramFamilies(&b, []HistogramFamily{{
		Name: "http.request_duration_seconds",
		Help: "Request duration.",
		Series: []LabeledHistogram{
			{Labels: map[string]string{"route": "/healthz"}, Hist: lat},
			{Labels: map[string]string{"route": "/metrics"}, Hist: idle},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE vpdift_http_request_duration_seconds histogram",
		`vpdift_http_request_duration_seconds_bucket{route="/healthz",le="0.001"} 0`,
		`vpdift_http_request_duration_seconds_bucket{route="/healthz",le="0.01"} 1`,
		`vpdift_http_request_duration_seconds_bucket{route="/healthz",le="+Inf"} 2`,
		`vpdift_http_request_duration_seconds_count{route="/healthz"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "/metrics") {
		t.Errorf("idle series rendered:\n%s", text)
	}
	if err := ValidateExposition(text); err != nil {
		t.Errorf("exposition invalid: %v\n%s", err, text)
	}
}

// TestValidateHistogramContract exercises the validator's histogram checks
// with deliberately corrupted expositions — the guard CI relies on.
func TestValidateHistogramContract(t *testing.T) {
	const head = "# HELP h x\n# TYPE h histogram\n"
	cases := []struct {
		name, text, wantErr string
	}{
		{"valid", head +
			`h_bucket{le="0.1"} 1` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\n" +
			"h_sum 0.5\nh_count 2\n", ""},
		{"valid labeled", head +
			`h_bucket{r="a",le="0.1"} 1` + "\n" +
			`h_bucket{r="a",le="+Inf"} 1` + "\n" +
			`h_sum{r="a"} 0.1` + "\n" + `h_count{r="a"} 1` + "\n", ""},
		{"non-cumulative", head +
			`h_bucket{le="0.1"} 5` + "\n" +
			`h_bucket{le="+Inf"} 3` + "\n" +
			"h_sum 1.0\nh_count 3\n", "not cumulative"},
		{"missing inf", head +
			`h_bucket{le="0.1"} 1` + "\n" +
			"h_sum 0.1\nh_count 1\n", "does not end"},
		{"inf mismatch", head +
			`h_bucket{le="0.1"} 1` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\n" +
			"h_sum 0.5\nh_count 3\n", "!= _count"},
		{"descending bounds", head +
			`h_bucket{le="0.5"} 1` + "\n" +
			`h_bucket{le="0.1"} 2` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\n" +
			"h_sum 0.5\nh_count 2\n", "not ascending"},
		{"no le label", head +
			"h_bucket 1\nh_sum 0.1\nh_count 1\n", "without an le label"},
		{"no count sample", head +
			`h_bucket{le="+Inf"} 1` + "\n" + "h_sum 0.1\n", "no _count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateExposition(tc.text)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid exposition rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}
