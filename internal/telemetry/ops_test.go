package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vpdift/internal/kernel"
	"vpdift/internal/obs"
)

// syncBuffer collects log output from concurrent handler goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitLogged polls until every want string appears in the buffer on a single
// line shared with marker (the request ID), proving the log join works.
func waitLogged(t *testing.T, buf *syncBuffer, marker string, msgs ...string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		text := buf.String()
		missing := ""
		for _, msg := range msgs {
			found := false
			for _, line := range strings.Split(text, "\n") {
				if strings.Contains(line, msg) && strings.Contains(line, marker) {
					found = true
					break
				}
			}
			if !found {
				missing = msg
				break
			}
		}
		if missing == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("log never joined %q with marker %q; log:\n%s", missing, marker, text)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRequestIDPropagation checks the request-ID contract end to end: an
// inbound X-Request-Id is echoed on the response and joins the request log,
// the session lifecycle logs, and the session's trace span; absent a header
// the server mints one.
func TestRequestIDPropagation(t *testing.T) {
	buf := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(2), WithLogger(logger))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// Minted ID: no header on the way in, one on the way out.
	resp, err := http.Get(ts.URL + "/api/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" {
		t.Error("GET /api/v1/sessions: no X-Request-Id on response")
	}

	// Upstream ID: honored, echoed, and stamped on the session it creates.
	const reqID = "upstream-trace-42"
	body := strings.NewReader(`{"workload":"wl-rid"}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/sessions", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", reqID)
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-Id"); got != reqID {
		t.Errorf("X-Request-Id echo = %q, want %q", got, reqID)
	}
	var env struct {
		Data struct {
			Session sessionInfo `json:"session"`
		} `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || env.Data.Session.ID == "" {
		t.Fatalf("POST status %d, session %+v", resp.StatusCode, env.Data.Session)
	}
	id := env.Data.Session.ID
	waitState(t, ts.URL, id, StateDone)

	// The ID must appear on the HTTP request log and both lifecycle logs.
	waitLogged(t, buf, reqID, "http request", "session submitted", "session finished")

	// And on the session's trace span args.
	resp, err = http.Get(ts.URL + "/api/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.ChromeEvent
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	foundRun := false
	for _, ev := range events {
		if ev.Name == "run" && ev.Ph == "X" && ev.Args["session"] == id {
			foundRun = true
			if ev.Args["request_id"] != reqID {
				t.Errorf("run span request_id = %v, want %q", ev.Args["request_id"], reqID)
			}
		}
	}
	if !foundRun {
		t.Errorf("trace has no run span for session %s: %+v", id, events)
	}
	if len(events) == 0 || events[0].Name != "process_name" {
		t.Errorf("trace does not open with process metadata: %+v", events)
	}
}

// TestReadyz checks the liveness/readiness split: /healthz stays 200 through
// every phase while /readyz tracks the preload and drain gates.
func TestReadyz(t *testing.T) {
	sv := NewServer(WithWorkers(2))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	check := func(path string, wantStatus int, wantBody string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus || !strings.Contains(string(body), wantBody) {
			t.Errorf("%s = %d %q, want %d containing %q", path, resp.StatusCode, body, wantStatus, wantBody)
		}
	}

	check("/readyz", http.StatusOK, "ready")
	sv.SetReady(false) // vp-serve holds this during preload
	check("/readyz", http.StatusServiceUnavailable, "starting")
	check("/healthz", http.StatusOK, "ok")
	sv.SetReady(true)
	check("/readyz", http.StatusOK, "ready")

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := sv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	check("/readyz", http.StatusServiceUnavailable, "draining")
	check("/healthz", http.StatusOK, "ok")
}

// TestServerMetricsExposition drives traffic through every interesting
// status class and checks the scrape: RED series per route, pool histograms,
// store counters, build info — all passing the validator's histogram checks.
func TestServerMetricsExposition(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(2))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// One finished session (queue-wait + service-time observations), one
	// cache miss counter, plus a 404 for the error series.
	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{Workload: "wl-met"})
	if r.status != http.StatusCreated {
		t.Fatalf("POST: %d %+v", r.status, r.Error)
	}
	var created struct {
		Session sessionInfo `json:"session"`
	}
	json.Unmarshal(r.Data, &created)
	waitState(t, ts.URL, created.Session.ID, StateDone)
	if resp, err := http.Get(ts.URL + "/api/v1/no-such-route"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Scrape twice: the second exposition includes the first /metrics hit,
	// so the route table provably covers the scrape path too.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text := string(body)
		if err := ValidateExposition(text); err != nil {
			t.Fatalf("scrape %d invalid: %v\n%s", i, err, text)
		}
		if i == 0 {
			continue
		}
		for _, want := range []string{
			`vpdift_http_requests_total{code="2xx",route="/healthz"}`,
			`vpdift_http_requests_total{code="2xx",route="/metrics"}`,
			`vpdift_http_requests_total{code="2xx",route="/api/v1/sessions"}`,
			`vpdift_http_requests_total{code="4xx",route="/api/v1/"}`,
			`vpdift_http_errors_total{route="/api/v1/"}`,
			`vpdift_http_request_duration_seconds_bucket{route="/healthz",le="+Inf"}`,
			"vpdift_serve_queue_wait_seconds_count 1",
			"vpdift_serve_service_time_seconds_count 1",
			"vpdift_serve_cache_misses_total 1",
			"vpdift_serve_ready 1",
			"vpdift_serve_draining 0",
			`vpdift_build_info{`,
			`goversion="go`,
		} {
			if !strings.Contains(text, want) {
				t.Errorf("scrape missing %q:\n%s", want, text)
			}
		}
	}
}

// TestSessionTimings checks the lifecycle stamps surface on the session
// envelope once a session completes.
func TestSessionTimings(t *testing.T) {
	sv := NewServer(WithWorkers(2))
	defer sv.Close()
	if err := sv.Submit(SessionConfig{
		ID:       "timed",
		Platform: &stubPlatform{exitAt: 1 * kernel.MS},
		Horizon:  2 * kernel.MS,
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	waitState(t, ts.URL, "timed", StateDone)

	r := doJSON(t, http.MethodGet, ts.URL+"/api/v1/sessions/timed", nil)
	var info sessionInfo
	json.Unmarshal(r.Data, &info)
	tm := info.Timings
	if tm == nil {
		t.Fatalf("finished session has no timings: %s", r.Data)
	}
	if _, err := time.Parse(time.RFC3339Nano, tm.SubmittedAt); err != nil {
		t.Errorf("submitted_at %q: %v", tm.SubmittedAt, err)
	}
	if tm.QueueWaitNs < 0 || tm.RunNs < 0 || tm.StoreNs < 0 {
		t.Errorf("negative span: %+v", tm)
	}
	if tm.TotalNs < tm.RunNs || tm.TotalNs < tm.QueueWaitNs {
		t.Errorf("total %dns shorter than its parts: %+v", tm.TotalNs, tm)
	}
	if tm.TotalNs == 0 {
		t.Errorf("finished session reports zero total: %+v", tm)
	}
}

// nopResponseWriter is an allocation-free ResponseWriter for the middleware
// alloc guard.
type nopResponseWriter struct{ h http.Header }

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}

// TestMetricsMiddlewareZeroAlloc guards the disabled-is-free contract of the
// instrumentation layer: with the logger off, the instrument middleware and
// the record path add no steady-state heap allocations. (The threshold is
// <1 amortized rather than exactly 0 because a GC cycle may clear the
// statusWriter pool mid-run.)
func TestMetricsMiddlewareZeroAlloc(t *testing.T) {
	sv := NewServer(WithWorkers(2))
	defer sv.Close()

	if avg := testing.AllocsPerRun(1000, func() {
		sv.metrics.record("/api/v1/sessions/{id}", http.StatusOK, 123*time.Microsecond)
	}); avg != 0 {
		t.Errorf("metrics record path allocates %.2f/op, want 0", avg)
	}

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sw, ok := w.(*statusWriter); ok {
			sw.pattern = "GET /api/v1/sessions/{id}"
		}
		w.WriteHeader(http.StatusOK)
	})
	h := sv.instrument(inner)
	req := httptest.NewRequest(http.MethodGet, "/api/v1/sessions/steady", nil)
	w := &nopResponseWriter{h: make(http.Header)}
	if avg := testing.AllocsPerRun(1000, func() {
		h.ServeHTTP(w, req)
	}); avg >= 1 {
		t.Errorf("instrument middleware allocates %.2f/op on the read path, want 0", avg)
	}
}

func BenchmarkInstrumentMiddleware(b *testing.B) {
	sv := NewServer(WithWorkers(2))
	defer sv.Close()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sw, ok := w.(*statusWriter); ok {
			sw.pattern = "GET /api/v1/sessions/{id}"
		}
		w.WriteHeader(http.StatusOK)
	})
	h := sv.instrument(inner)
	req := httptest.NewRequest(http.MethodGet, "/api/v1/sessions/steady", nil)
	w := &nopResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}
