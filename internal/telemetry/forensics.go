package telemetry

// Forensics plumbing: when a session ends badly — run error, policy
// violation, or wall-clock timeout — the server freezes the platform's
// flight-recorder bundle before releasing it, and serves it afterwards on
// GET /api/v1/sessions/{id}/forensics. The bundle is captured at finalize
// time because the Close hook shuts the platform down; there is no second
// chance.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"vpdift/internal/flight"
	"vpdift/internal/rv32"
)

// ForensicsProvider is the optional platform slice the server probes for at
// finalize: soc.Platform implements it, test stubs need not.
type ForensicsProvider interface {
	// LastForensics returns the bundle stashed by the first terminal
	// violation or fault, nil on clean runs.
	LastForensics() *flight.Bundle
	// Snapshot builds an on-demand bundle of the current state.
	Snapshot(reason string) *flight.Bundle
}

// FaultDetail is the guest-fault headline surfaced in session JSON and in
// error envelopes: where the guest died and why.
type FaultDetail struct {
	// PC is the faulting program counter, "0x%08x".
	PC string `json:"pc"`
	// Cause is the human-readable fault cause.
	Cause string `json:"cause"`
	// Addr is the faulting access address (bus errors) or trap value,
	// omitted when unknown.
	Addr string `json:"addr,omitempty"`
}

// faultDetail extracts the guest-fault headline from a session's stopping
// error; nil for clean ends, violations, and host-side errors (timeouts).
func faultDetail(err error) *FaultDetail {
	if err == nil {
		return nil
	}
	var be *rv32.BusError
	if errors.As(err, &be) {
		return &FaultDetail{
			PC:    flight.Hex32(be.PC),
			Cause: "bus error: " + be.What,
			Addr:  flight.Hex32(be.Addr),
		}
	}
	var te *rv32.TrapError
	if errors.As(err, &te) {
		return &FaultDetail{
			PC:    flight.Hex32(te.PC),
			Cause: fmt.Sprintf("unhandled trap: cause=%d (mtvec not set)", te.Cause),
			Addr:  flight.Hex32(te.Tval),
		}
	}
	return nil
}

// captureForensics freezes the session's forensic bundle while the platform
// is still alive. Called under the session lock, before the Close hook runs.
// Sessions that ended cleanly keep no bundle — forensics are for failures.
func (s *session) captureForensics(violations uint64) *flight.Bundle {
	failed := s.err != nil || violations > 0 || s.timedOut
	if !failed {
		return nil
	}
	fp, ok := s.cfg.Platform.(ForensicsProvider)
	if !ok {
		return nil
	}
	b := fp.LastForensics()
	if b == nil {
		reason := "snapshot"
		if s.timedOut {
			reason = "timeout"
		}
		b = fp.Snapshot(reason)
	}
	return b
}

// v1Forensics serves a finished session's forensic bundle: the raw
// self-contained JSON by default, the human-readable report with
// ?format=report. 409 while the session still runs; an enveloped 404
// carrying any guest-fault detail when no bundle was kept.
func (sv *Server) v1Forensics(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id := r.PathValue("id")
	s := sv.get(id)
	if s == nil {
		writeError(w, http.StatusNotFound, "not_found", "no session "+strconv.Quote(id))
		return
	}
	s.mu.Lock()
	fin := s.finalized
	b := s.forensics
	fault := s.result.Fault
	s.mu.Unlock()
	if !fin {
		writeError(w, http.StatusConflict, "conflict", "session "+id+" has not finished")
		return
	}
	if b == nil {
		writeJSON(w, http.StatusNotFound, envelope{Error: &apiError{
			Code:    "no_forensics",
			Message: "session " + id + " kept no forensic bundle (clean run or recorder disabled)",
			Fault:   fault,
		}})
		return
	}
	switch r.URL.Query().Get("format") {
	case "report":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		b.WriteReport(w)
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(b.JSON())
	default:
		writeError(w, http.StatusBadRequest, "bad_request", "format must be json or report")
	}
}
