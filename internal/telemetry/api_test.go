package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vpdift/internal/cover"
	"vpdift/internal/kernel"
)

// gateFactory builds stub-platform sessions for API tests. A workload whose
// name appears in gates makes no simulation progress until that gate channel
// is closed — the lever the backpressure and coalescing tests use to hold
// sessions in flight deterministically. The hold must not block inside Run:
// the server runs chunks under the session mutex, so a blocking Run would
// deadlock every HTTP reader of that session.
type gateFactory struct {
	mu     sync.Mutex
	builds map[string]int
	gates  map[string]chan struct{}
}

func newGateFactory() *gateFactory {
	return &gateFactory{builds: map[string]int{}, gates: map[string]chan struct{}{}}
}

// gate registers (or returns) the hold gate for a workload name.
func (f *gateFactory) gate(workload string) chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.gates[workload]
	if !ok {
		g = make(chan struct{})
		f.gates[workload] = g
	}
	return g
}

func (f *gateFactory) buildCount(workload string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.builds[workload]
}

func (f *gateFactory) Key(spec SessionSpec) (string, error) {
	if spec.Workload == "badkey" {
		return "", errors.New("no such workload")
	}
	key := "k|" + spec.Workload + "|" + spec.Policy + "|" + spec.Stimulus
	if spec.Cover {
		key += "|cover"
	}
	return key, nil
}

func (f *gateFactory) Build(spec SessionSpec) (SessionConfig, error) {
	if spec.Workload == "badbuild" {
		return SessionConfig{}, errors.New("cannot build this")
	}
	f.mu.Lock()
	f.builds[spec.Workload]++
	g := f.gates[spec.Workload]
	f.mu.Unlock()
	p := &gatedPlatform{stubPlatform: stubPlatform{exitAt: 1 * kernel.MS}, gate: g}
	cfg := SessionConfig{Platform: p, Horizon: 2 * kernel.MS}
	if spec.Cover {
		snap := syntheticSnapshot(spec.Workload, spec.Policy)
		cfg.CoverSnapshot = func() *cover.Snapshot { return snap }
	}
	if spec.SampleUs > 0 {
		smp := NewSampler(Options{})
		var fc fakeCounters
		fc.instret = 5
		smp.TakeSample(1000, fc.snapshot)
		smp.TakeSample(2000, fc.snapshot)
		cfg.Sampler = smp
	}
	return cfg, nil
}

type gatedPlatform struct {
	stubPlatform
	gate chan struct{}
}

func (p *gatedPlatform) Run(h kernel.Time) error {
	if p.gate != nil {
		select {
		case <-p.gate:
		default:
			return nil // held: no progress this chunk
		}
	}
	return p.stubPlatform.Run(h)
}

// apiResp decodes one enveloped response.
type apiResp struct {
	status int
	header http.Header
	Data   json.RawMessage `json:"data"`
	Error  *apiError       `json:"error"`
}

func doJSON(t *testing.T, method, url string, body any) apiResp {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := apiResp{status: resp.StatusCode, header: resp.Header}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decoding envelope: %v", method, url, err)
	}
	return out
}

func waitState(t *testing.T, base, id, state string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		r := doJSON(t, http.MethodGet, base+"/api/v1/sessions/"+id, nil)
		if r.status == http.StatusOK {
			var info sessionInfo
			json.Unmarshal(r.Data, &info)
			if info.State == state {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("session %q never reached state %q", id, state)
}

func TestV1EnvelopeAndStatusCodes(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(2))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// GET list: data set, error unset.
	r := doJSON(t, http.MethodGet, ts.URL+"/api/v1/sessions", nil)
	if r.status != http.StatusOK || r.Error != nil || r.Data == nil {
		t.Fatalf("GET sessions: status=%d error=%v data=%s", r.status, r.Error, r.Data)
	}

	// Unknown method: enveloped 405 with Allow.
	r = doJSON(t, http.MethodPut, ts.URL+"/api/v1/sessions", nil)
	if r.status != http.StatusMethodNotAllowed {
		t.Fatalf("PUT sessions: status = %d, want 405", r.status)
	}
	if r.Error == nil || r.Error.Code != "method_not_allowed" {
		t.Fatalf("PUT sessions: error = %+v", r.Error)
	}
	if a := r.header.Get("Allow"); !strings.Contains(a, http.MethodPost) {
		t.Fatalf("PUT sessions: Allow = %q", a)
	}

	// Unknown v1 path: enveloped 404 from the catchall.
	r = doJSON(t, http.MethodGet, ts.URL+"/api/v1/nope", nil)
	if r.status != http.StatusNotFound || r.Error == nil || r.Error.Code != "not_found" {
		t.Fatalf("GET /api/v1/nope: status=%d error=%+v", r.status, r.Error)
	}

	// Unknown session: enveloped 404.
	r = doJSON(t, http.MethodGet, ts.URL+"/api/v1/sessions/ghost", nil)
	if r.status != http.StatusNotFound || r.Error == nil || r.Error.Code != "not_found" {
		t.Fatalf("GET ghost: status=%d error=%+v", r.status, r.Error)
	}

	// Malformed body and failed factory stages: 400.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/sessions", strings.NewReader("{nope"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST garbage: status = %d, want 400", resp.StatusCode)
	}
	for _, spec := range []SessionSpec{{}, {Workload: "badkey"}, {Workload: "badbuild"}} {
		r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", spec)
		if r.status != http.StatusBadRequest || r.Error == nil || r.Error.Code != "bad_request" {
			t.Fatalf("POST %+v: status=%d error=%+v", spec, r.status, r.Error)
		}
	}

	// Duplicate explicit ID: 409 conflict. Distinct stimuli keep the keys
	// apart so the dedup paths stay out of the way.
	r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{ID: "dup", Workload: "a", Stimulus: "1"})
	if r.status != http.StatusCreated {
		t.Fatalf("POST dup #1: status = %d", r.status)
	}
	r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{ID: "dup", Workload: "a", Stimulus: "2"})
	if r.status != http.StatusConflict || r.Error == nil || r.Error.Code != "conflict" {
		t.Fatalf("POST dup #2: status=%d error=%+v", r.status, r.Error)
	}
}

func TestV1SessionLifecycle(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(2))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{Workload: "life", SampleUs: 1000})
	if r.status != http.StatusCreated {
		t.Fatalf("create: status = %d (%+v)", r.status, r.Error)
	}
	var created createdSession
	if err := json.Unmarshal(r.Data, &created); err != nil || created.Session == nil {
		t.Fatalf("create payload: %s (err %v)", r.Data, err)
	}
	id := created.Session.ID
	if !strings.HasPrefix(id, "s-") {
		t.Fatalf("auto ID = %q, want s-<n>", id)
	}
	if created.Key == "" {
		t.Fatal("create response has no dedup key")
	}
	waitState(t, ts.URL, id, StateDone)

	// Result is enveloped and carries the stub's clean exit.
	r = doJSON(t, http.MethodGet, ts.URL+"/api/v1/sessions/"+id+"/result", nil)
	if r.status != http.StatusOK {
		t.Fatalf("result: status = %d (%+v)", r.status, r.Error)
	}
	var res SessionResult
	json.Unmarshal(r.Data, &res)
	if !res.Exited || res.SimNs == 0 || res.Error != "" {
		t.Fatalf("result = %+v, want clean exit with progress", res)
	}

	// Timeseries default format is enveloped JSON with the two samples.
	r = doJSON(t, http.MethodGet, ts.URL+"/api/v1/sessions/"+id+"/timeseries", nil)
	if r.status != http.StatusOK {
		t.Fatalf("timeseries: status = %d (%+v)", r.status, r.Error)
	}
	var tsr struct {
		Total   uint64            `json:"total"`
		Samples []json.RawMessage `json:"samples"`
	}
	json.Unmarshal(r.Data, &tsr)
	if tsr.Total != 2 || len(tsr.Samples) != 2 {
		t.Fatalf("timeseries = total %d, %d samples, want 2/2", tsr.Total, len(tsr.Samples))
	}

	// DELETE ends and unregisters; a second GET is a 404.
	r = doJSON(t, http.MethodDelete, ts.URL+"/api/v1/sessions/"+id, nil)
	if r.status != http.StatusOK {
		t.Fatalf("delete: status = %d (%+v)", r.status, r.Error)
	}
	r = doJSON(t, http.MethodGet, ts.URL+"/api/v1/sessions/"+id, nil)
	if r.status != http.StatusNotFound {
		t.Fatalf("get after delete: status = %d, want 404", r.status)
	}
}

func TestV1ResultConflictWhileRunning(t *testing.T) {
	f := newGateFactory()
	gate := f.gate("held")
	sv := NewServer(WithFactory(f), WithWorkers(2))
	defer sv.Close()
	defer close(gate)
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{ID: "held-1", Workload: "held"})
	if r.status != http.StatusCreated {
		t.Fatalf("create: status = %d", r.status)
	}
	r = doJSON(t, http.MethodGet, ts.URL+"/api/v1/sessions/held-1/result", nil)
	if r.status != http.StatusConflict || r.Error == nil || r.Error.Code != "conflict" {
		t.Fatalf("result while running: status=%d error=%+v", r.status, r.Error)
	}
}

func TestV1DedupAndCoalesce(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(2))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	spec := SessionSpec{Workload: "dedup", Stimulus: "x"}
	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", spec)
	if r.status != http.StatusCreated {
		t.Fatalf("first POST: status = %d", r.status)
	}
	var created createdSession
	json.Unmarshal(r.Data, &created)
	waitState(t, ts.URL, created.Session.ID, StateDone)

	// Identical spec again: served from the store, no new build.
	r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", spec)
	if r.status != http.StatusOK {
		t.Fatalf("second POST: status = %d, want 200", r.status)
	}
	var hit createdSession
	json.Unmarshal(r.Data, &hit)
	if !hit.Cached || hit.Result == nil {
		t.Fatalf("second POST: %+v, want cached result", hit)
	}
	if n := f.buildCount("dedup"); n != 1 {
		t.Fatalf("dedup built %d times, want 1", n)
	}
	if st := sv.Stats(); st.CacheHits != 1 {
		t.Fatalf("stats.CacheHits = %d, want 1", st.CacheHits)
	}

	// Force bypasses the store.
	spec.Force = true
	r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", spec)
	if r.status != http.StatusCreated {
		t.Fatalf("forced POST: status = %d, want 201", r.status)
	}
	if n := f.buildCount("dedup"); n != 2 {
		t.Fatalf("forced resubmit built %d times, want 2", n)
	}

	// An identical in-flight submission coalesces instead of building.
	gate := f.gate("co")
	defer close(gate)
	co := SessionSpec{Workload: "co"}
	r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", co)
	if r.status != http.StatusCreated {
		t.Fatalf("co POST: status = %d", r.status)
	}
	r = doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", co)
	if r.status != http.StatusOK {
		t.Fatalf("co POST #2: status = %d, want 200", r.status)
	}
	var joined createdSession
	json.Unmarshal(r.Data, &joined)
	if !joined.Coalesced || joined.Session == nil {
		t.Fatalf("co POST #2: %+v, want coalesced", joined)
	}
	if n := f.buildCount("co"); n != 1 {
		t.Fatalf("coalesced spec built %d times, want 1", n)
	}
}

func TestV1NoFactoryIs501(t *testing.T) {
	sv := NewServer()
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{Workload: "x"})
	if r.status != http.StatusNotImplemented || r.Error == nil || r.Error.Code != "unsupported" {
		t.Fatalf("POST without factory: status=%d error=%+v", r.status, r.Error)
	}
}

func TestLegacyAliasesCarryDeprecation(t *testing.T) {
	sv := NewServer()
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/api/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/sessions: status = %d", resp.StatusCode)
	}
	if d := resp.Header.Get("Deprecation"); d == "" {
		t.Error("legacy /api/sessions has no Deprecation header")
	}
	if l := resp.Header.Get("Link"); !strings.Contains(l, "/api/v1/sessions") {
		t.Errorf("legacy Link header = %q, want successor-version pointer", l)
	}
}

func TestServeMetricsExposed(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(2))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{Workload: "m1"})
	if r.status != http.StatusCreated {
		t.Fatalf("create: status = %d", r.status)
	}
	var created createdSession
	json.Unmarshal(r.Data, &created)
	waitState(t, ts.URL, created.Session.ID, StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE vpdift_serve_workers gauge",
		"# TYPE vpdift_serve_submitted_total counter",
		"vpdift_serve_completed_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// healthz keeps the legacy shape and adds scheduler gauges.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}
	for _, k := range []string{"sessions", "workers", "queued", "running"} {
		if _, ok := health[k]; !ok {
			t.Errorf("healthz missing %q: %v", k, health)
		}
	}
}

func TestV1StoredResultEndpoint(t *testing.T) {
	f := newGateFactory()
	sv := NewServer(WithFactory(f), WithWorkers(2))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	r := doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{Workload: "sr"})
	var created createdSession
	json.Unmarshal(r.Data, &created)
	waitState(t, ts.URL, created.Session.ID, StateDone)

	r = doJSON(t, http.MethodGet, ts.URL+"/api/v1/results/"+created.Key, nil)
	if r.status != http.StatusOK {
		t.Fatalf("stored result: status = %d (%+v)", r.status, r.Error)
	}
	var res SessionResult
	json.Unmarshal(r.Data, &res)
	if res.Key != created.Key || !res.Exited {
		t.Fatalf("stored result = %+v", res)
	}

	r = doJSON(t, http.MethodGet, ts.URL+"/api/v1/results/absent", nil)
	if r.status != http.StatusNotFound {
		t.Fatalf("absent stored result: status = %d, want 404", r.status)
	}
}

func TestV1PriorityOrdersQueue(t *testing.T) {
	f := newGateFactory()
	gate := f.gate("block")
	sv := NewServer(WithFactory(f), WithWorkers(1), WithQueueDepth(8))
	defer sv.Close()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// Occupy the single worker, then queue low before high.
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{ID: "blocker", Workload: "block"})
	waitState(t, ts.URL, "blocker", StateRunning)
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{ID: "low", Workload: "p", Stimulus: "l"})
	doJSON(t, http.MethodPost, ts.URL+"/api/v1/sessions", SessionSpec{ID: "high", Workload: "p", Stimulus: "h", Priority: 5})

	var mu sync.Mutex
	var order []string
	for _, id := range []string{"low", "high"} {
		s := sv.get(id)
		if s == nil {
			t.Fatalf("session %q not registered", id)
		}
		id := id
		s.onDone(func(SessionResult) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		})
	}
	close(gate)
	waitState(t, ts.URL, "low", StateDone)
	waitState(t, ts.URL, "high", StateDone)
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(order) != "[high low]" {
		t.Fatalf("completion order = %v, want high before low", order)
	}
}
