package telemetry

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"
)

// Pool scheduling errors, surfaced by Submit and mapped to HTTP status
// codes by the v1 API (429 and 503 respectively).
var (
	// ErrQueueFull is returned when the pending queue is at capacity; the
	// caller should back off and retry (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("telemetry: session queue full")
	// ErrDraining is returned once Drain or Close has begun; no further
	// sessions are accepted.
	ErrDraining = errors.New("telemetry: server draining")
	// ErrDuplicateID is returned by Submit for an ID already in use
	// (HTTP 409).
	ErrDuplicateID = errors.New("telemetry: duplicate session ID")
)

// sessHeap orders pending sessions by descending priority, FIFO within a
// priority level (ascending submission sequence).
type sessHeap []*session

func (h sessHeap) Len() int { return len(h) }
func (h sessHeap) Less(i, j int) bool {
	if h[i].cfg.Priority != h[j].cfg.Priority {
		return h[i].cfg.Priority > h[j].cfg.Priority
	}
	return h[i].seq < h[j].seq
}
func (h sessHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sessHeap) Push(x any)   { *h = append(*h, x.(*session)) }
func (h *sessHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// pool is the bounded worker pool that executes queued sessions: a fixed
// number of worker goroutines pull from a priority+FIFO heap whose depth is
// capped, giving the server natural backpressure instead of a goroutine per
// request.
type pool struct {
	workers int
	depth   int
	run     func(*session)

	mu       sync.Mutex
	cond     *sync.Cond
	pending  sessHeap
	running  int
	seq      uint64
	draining bool
	closed   bool
	done     chan struct{} // closed when all workers have exited
}

func newPool(workers, depth int, run func(*session)) *pool {
	p := &pool{workers: workers, depth: depth, run: run, done: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	go p.runWorkers()
	return p
}

func (p *pool) runWorkers() {
	var wg sync.WaitGroup
	wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		go func() {
			defer wg.Done()
			p.worker()
		}()
	}
	wg.Wait()
	close(p.done)
}

// submit queues a session, stamping its FIFO sequence. It fails fast when
// the queue is at depth or the pool is draining/closed.
func (p *pool) submit(s *session) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.draining {
		return ErrDraining
	}
	if len(p.pending) >= p.depth {
		return ErrQueueFull
	}
	p.seq++
	s.seq = p.seq
	heap.Push(&p.pending, s)
	p.cond.Signal()
	return nil
}

// worker pulls the highest-priority pending session and runs it to
// completion. Exits when the pool closes.
func (p *pool) worker() {
	for {
		p.mu.Lock()
		for len(p.pending) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		s := heap.Pop(&p.pending).(*session)
		p.running++
		p.mu.Unlock()

		p.run(s)

		p.mu.Lock()
		p.running--
		p.cond.Broadcast() // wake Drain waiters
		p.mu.Unlock()
	}
}

// remove pulls a still-pending session out of the queue (DELETE on a queued
// session). Returns false when the session is no longer pending.
func (p *pool) remove(s *session) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, q := range p.pending {
		if q == s {
			heap.Remove(&p.pending, i)
			return true
		}
	}
	return false
}

// load returns the current queue length and running count.
func (p *pool) load() (queued, running int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending), p.running
}

// stopped reports whether the pool has stopped intake (draining or closed).
func (p *pool) stopped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed || p.draining
}

// capacityLeft returns how many more sessions submit would accept right now.
func (p *pool) capacityLeft() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.draining {
		return 0
	}
	return p.depth - len(p.pending)
}

// retryAfter estimates, in whole seconds, when queue capacity is likely to
// free up — a deliberately rough queue-length/worker heuristic for the 429
// Retry-After header.
func (p *pool) retryAfter() int {
	queued, _ := p.load()
	secs := 1 + queued/(p.workers*8+1)
	if secs > 30 {
		secs = 30
	}
	return secs
}

// setDraining stops intake. Queued sessions still run.
func (p *pool) setDraining() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
}

// drain stops intake and waits for the queue to empty and every running
// session to finish. On ctx expiry it returns ctx.Err() with work still in
// flight — the caller then Closes to cancel the remainder.
func (p *pool) drain(ctx context.Context) error {
	p.setDraining()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		queued, running := p.load()
		if queued == 0 && running == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// close stops the workers and returns the sessions still pending so the
// server can finalize them as canceled. Idempotent.
func (p *pool) close() []*session {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return nil
	}
	p.closed = true
	orphans := make([]*session, len(p.pending))
	copy(orphans, p.pending)
	p.pending = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	<-p.done
	return orphans
}
