package telemetry

import (
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// routeOther is the metrics bucket for requests that matched no registered
// pattern — typos, scanners, and anything answered by the mux's built-in 404.
const routeOther = "other"

// servedRoutes lists every route pattern the handler registers,
// method-stripped — the fixed label universe of the per-route RED metrics.
// Bounding the set at construction keeps the middleware allocation-free (no
// label strings are built per request) and keeps scrape cardinality immune
// to request-path garbage.
var servedRoutes = []string{
	"/healthz",
	"/readyz",
	"/metrics",
	"/api/v1/sessions",
	"/api/v1/sessions/{id}",
	"/api/v1/sessions/{id}/result",
	"/api/v1/sessions/{id}/timeseries",
	"/api/v1/sessions/{id}/events",
	"/api/v1/campaigns",
	"/api/v1/campaigns/{id}",
	"/api/v1/campaigns/{id}/results",
	"/api/v1/results/{key}",
	"/api/v1/trace",
	"/api/v1/", // the enveloped 404 catch-all
	"/api/sessions",
	"/api/sessions/{id}/timeseries",
	"/api/sessions/{id}/events",
	routeOther,
}

// statusClasses are the response-code label values of http.requests_total:
// exact codes would multiply series per route for no alerting value.
var statusClasses = [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}

// routeStats holds one route's RED counters: request count per status
// class, an error count (4xx+5xx), and the duration histogram. Everything
// is atomic; the middleware only ever adds.
type routeStats struct {
	requests [6]atomic.Uint64
	errors   atomic.Uint64
	duration *Histogram
}

func (rs *routeStats) record(status int, d time.Duration) {
	class := status / 100
	if class < 1 || class > 5 {
		class = 0
	}
	rs.requests[class].Add(1)
	if class >= 4 {
		rs.errors.Add(1)
	}
	rs.duration.Observe(d)
}

// serverMetrics is the serving plane's own instrumentation: per-route RED
// metrics plus the pool latency histograms. It is always on — every path is
// a handful of atomic adds — so there is no enabled flag to get wrong.
type serverMetrics struct {
	routes map[string]*routeStats // keyed by method-stripped pattern

	// queueWait measures submit->dequeue (observed when a worker picks the
	// session up, so an endless session still contributes its wait).
	queueWait *Histogram
	// serviceTime measures dequeue->finalize.
	serviceTime *Histogram
}

func newServerMetrics() *serverMetrics {
	m := &serverMetrics{
		routes:      make(map[string]*routeStats, len(servedRoutes)),
		queueWait:   NewHistogram(),
		serviceTime: NewHistogram(),
	}
	for _, r := range servedRoutes {
		m.routes[r] = &routeStats{duration: NewHistogram()}
	}
	return m
}

// record books one finished request under its route pattern.
func (m *serverMetrics) record(route string, status int, d time.Duration) {
	rs := m.routes[route]
	if rs == nil {
		rs = m.routes[routeOther]
	}
	rs.record(status, d)
}

// requestSets renders the RED counters as labeled metric sets for /metrics.
// Routes that never served a request are skipped.
func (m *serverMetrics) requestSets() []MetricSet {
	sets := make([]MetricSet, 0, len(servedRoutes))
	for _, route := range servedRoutes {
		rs := m.routes[route]
		for class, name := range statusClasses {
			if n := rs.requests[class].Load(); n > 0 {
				sets = append(sets, MetricSet{
					Labels:  map[string]string{"route": route, "code": name},
					Metrics: map[string]uint64{"http.requests_total": n},
				})
			}
		}
		if n := rs.errors.Load(); n > 0 {
			sets = append(sets, MetricSet{
				Labels:  map[string]string{"route": route},
				Metrics: map[string]uint64{"http.errors_total": n},
			})
		}
	}
	return sets
}

// histogramFamilies renders the duration histograms for /metrics.
func (m *serverMetrics) histogramFamilies() []HistogramFamily {
	durations := HistogramFamily{
		Name: "http.request_duration_seconds",
		Help: "HTTP request duration by route, seconds.",
	}
	for _, route := range servedRoutes {
		durations.Series = append(durations.Series, LabeledHistogram{
			Labels: map[string]string{"route": route},
			Hist:   m.routes[route].duration,
		})
	}
	return []HistogramFamily{
		durations,
		{Name: "serve.queue_wait_seconds",
			Help:   "Session wait between submission and a worker picking it up, seconds.",
			Series: []LabeledHistogram{{Hist: m.queueWait}}},
		{Name: "serve.service_time_seconds",
			Help:   "Session wall-clock run time between dequeue and finalize, seconds.",
			Series: []LabeledHistogram{{Hist: m.serviceTime}}},
	}
}

// statusWriter captures the response status — and the mux pattern that
// matched, stashed by the route-capture wrapper in Handler — for metrics and
// logging while delegating everything else. It forwards Flush so the SSE
// streams keep working through the wrapper, and is pooled so steady-state
// requests allocate nothing in the metrics layer.
type statusWriter struct {
	http.ResponseWriter
	status  int
	pattern string
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

// routeOf maps a captured mux pattern to its metrics route: the pattern with
// any method prefix stripped (so "GET /healthz" and a future "POST /healthz"
// share a series), or routeOther when no registered handler ran — the mux's
// built-in 404 and redirects. Pure slicing — no allocation.
func routeOf(pattern string) string {
	if pattern == "" {
		return routeOther
	}
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		pattern = pattern[i+1:]
	}
	return pattern
}

// instrument is the metrics middleware: it times the request, captures the
// status and matched route through a pooled statusWriter (the route-capture
// wrapper in Handler stashes http.Request.Pattern on it, because the mux
// only stamps the pattern on the cloned request its handlers see), books
// the RED counters, and emits the request log line. On the steady-state
// read path it adds zero heap allocations over the bare mux (guarded by
// TestMetricsMiddlewareZeroAlloc); the log line costs nothing when the
// logger's level is off because LogAttrs short-circuits on Enabled. It sits
// inside withRequestID so the log can carry the ID.
func (sv *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := statusWriterPool.Get().(*statusWriter)
		sw.ResponseWriter, sw.status, sw.pattern = w, 0, ""
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		route := routeOf(sw.pattern)
		sv.metrics.record(route, status, elapsed)
		// Scrape and probe traffic logs at Debug, API traffic at Info.
		level := slog.LevelInfo
		if !strings.HasPrefix(route, "/api/") {
			level = slog.LevelDebug
		}
		if sv.log.Enabled(r.Context(), level) {
			sv.log.LogAttrs(r.Context(), level, "http request",
				slog.String("request_id", RequestIDFrom(r.Context())),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", status),
				slog.Duration("elapsed", elapsed),
			)
		}
		sw.ResponseWriter = nil
		statusWriterPool.Put(sw)
	})
}

// withRequestID stamps every request with an ID — taken from an inbound
// X-Request-Id header so an upstream proxy's ID survives, minted otherwise —
// echoes it on the response, and carries it in the request context for the
// request log and the session/campaign lifecycle logs. This is the outermost
// layer and the one place the server allocates per request (an ID string and
// a derived context); instrument inside it stays allocation-free.
func (sv *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = sv.reqIDs.next()
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(ContextWithRequestID(r.Context(), id)))
	})
}
