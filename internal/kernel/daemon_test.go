package kernel

import "testing"

// A daemon thread alone must not keep an unbounded Run alive: once the
// regular work drains, Run(Forever) returns exactly as if the queue were
// empty, with the daemon's next wake-up still queued.
func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	s := New()
	defer s.Shutdown()
	ticks := 0
	s.SpawnDaemon("sampler", func(p *Proc) {
		for {
			p.Wait(10)
			ticks++
		}
	})
	s.Spawn("worker", func(p *Proc) {
		p.Wait(35)
	})
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Errorf("ticks = %d, want 3 (at 10, 20, 30 while the worker lives)", ticks)
	}
	if s.Now() != 35 {
		t.Errorf("Now() = %v, want 35 (the last live work item)", s.Now())
	}
	if !s.Pending() {
		t.Error("the daemon's next wake-up must stay queued")
	}
}

// Under a finite horizon the daemon keeps ticking through idle simulated
// time: the caller explicitly asked for that span to be simulated, so the
// periodic observation continues even with no live work queued.
func TestDaemonTicksThroughIdleHorizon(t *testing.T) {
	s := New()
	defer s.Shutdown()
	var stamps []Time
	s.SpawnDaemon("sampler", func(p *Proc) {
		for {
			p.Wait(10)
			stamps = append(stamps, p.Now())
		}
	})
	if err := s.Run(45); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30, 40}
	if len(stamps) != len(want) {
		t.Fatalf("stamps = %v, want %v", stamps, want)
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps = %v, want %v", stamps, want)
		}
	}
	if s.Now() != 45 {
		t.Errorf("Now() = %v, want the horizon 45", s.Now())
	}
}

// An unbounded Run that returns on daemon-only work must leave the clock
// and the queued daemon wake-up consistent: a later finite Run picks the
// daemon back up without the clock ever moving backwards.
func TestDaemonResumesAfterUnboundedRun(t *testing.T) {
	s := New()
	defer s.Shutdown()
	var stamps []Time
	s.SpawnDaemon("sampler", func(p *Proc) {
		for {
			p.Wait(10)
			stamps = append(stamps, p.Now())
		}
	})
	s.Spawn("worker", func(p *Proc) { p.Wait(5) })
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", s.Now())
	}
	if err := s.Run(25); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20}
	if len(stamps) != len(want) || stamps[0] != want[0] || stamps[1] != want[1] {
		t.Errorf("stamps = %v, want %v", stamps, want)
	}
	prev := Time(0)
	for _, st := range stamps {
		if st < prev {
			t.Fatalf("clock moved backwards: %v after %v", st, prev)
		}
		prev = st
	}
	if s.Now() != 25 {
		t.Errorf("Now() = %v, want the horizon 25", s.Now())
	}
}

// Stop ends daemon activity like everything else.
func TestDaemonStopsWithSimulation(t *testing.T) {
	s := New()
	defer s.Shutdown()
	ticks := 0
	s.SpawnDaemon("sampler", func(p *Proc) {
		for {
			p.Wait(10)
			ticks++
		}
	})
	s.Spawn("stopper", func(p *Proc) {
		p.Wait(25)
		p.Stop()
	})
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if ticks != 2 {
		t.Errorf("ticks = %d, want 2 before the stop at 25", ticks)
	}
}
