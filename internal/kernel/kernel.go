// Package kernel provides a deterministic discrete-event simulation kernel,
// the Go substitute for the SystemC simulation kernel used by the paper's
// virtual prototype.
//
// The execution model mirrors SystemC's: a set of cooperative processes
// advance a shared simulated clock. Thread processes (the analog of
// SC_THREAD) are goroutines that run exclusively — exactly one process or the
// scheduler itself executes at any instant — and yield by calling Wait or
// WaitEvent. Timed callbacks (the analog of SC_METHOD sensitivity) can be
// scheduled with After/At. Events support delayed notification like
// sc_event::notify(delay).
//
// Determinism: all runnable work is ordered by (timestamp, schedule sequence
// number), so repeated simulations of the same model produce identical
// traces. There is no real concurrency; goroutines are used purely as
// coroutines.
package kernel

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time uint64

// Convenience units for simulated durations.
const (
	NS Time = 1
	US Time = 1000 * NS
	MS Time = 1000 * US
	S  Time = 1000 * MS
)

// Forever is a run horizon that is never reached in practice.
const Forever Time = 1<<64 - 1

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= S:
		return fmt.Sprintf("%d.%03ds", t/S, (t%S)/MS)
	case t >= MS:
		return fmt.Sprintf("%d.%03dms", t/MS, (t%MS)/US)
	case t >= US:
		return fmt.Sprintf("%d.%03dus", t/US, (t%US)/NS)
	default:
		return fmt.Sprintf("%dns", t)
	}
}

// workItem is a scheduled unit of execution: either a thread wake-up or a
// plain callback. Daemon items (wake-ups of daemon threads) never keep the
// simulation alive on their own — see Run.
type workItem struct {
	at     Time
	seq    uint64
	thread *Thread
	fn     func()
	daemon bool
}

type workQueue []*workItem

func (q workQueue) Len() int { return len(q) }
func (q workQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q workQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *workQueue) Push(x any)   { *q = append(*q, x.(*workItem)) }
func (q *workQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Tracer observes kernel scheduling: process lifecycle, event
// notifications, and simulated-clock advances. All callbacks run
// synchronously inside the scheduler, so implementations must not call back
// into the simulator. A nil tracer costs one predictable branch per hook
// site, the same discipline as the cores' Tracer/Obs hooks.
type Tracer interface {
	// ThreadSpawn: a thread was created (its first run is scheduled at `at`).
	ThreadSpawn(name string, at Time)
	// ThreadRun: the scheduler dispatched the thread at the current time.
	ThreadRun(name string, at Time)
	// ThreadPause: the thread yielded back to the scheduler (Wait, WaitEvent,
	// or body return).
	ThreadPause(name string, at Time)
	// ThreadWake: the thread was scheduled to resume at wakeAt.
	ThreadWake(name string, at, wakeAt Time)
	// EventNotify: an event fired at `at`, waking `waiters` threads at
	// deliverAt.
	EventNotify(event string, at, deliverAt Time, waiters int)
	// TimeAdvance: the simulated clock moved from `from` to `to`. Work items
	// executing between two advances at the same timestamp are delta cycles.
	TimeAdvance(from, to Time)
}

// Simulator owns the simulated clock and the work queue.
type Simulator struct {
	now     Time
	seq     uint64
	queue   workQueue
	live    int // queued non-daemon work items
	threads []*Thread
	stopped bool
	err     error
	running bool
	trace   Tracer
}

// SetTracer attaches a scheduling tracer (nil detaches). Zero cost when nil.
func (s *Simulator) SetTracer(t Tracer) { s.trace = t }

// New creates an empty simulator at time 0.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Err returns the fatal error that stopped the simulation, if any.
func (s *Simulator) Err() error { return s.err }

// Stopped reports whether Stop or Fatal has been called.
func (s *Simulator) Stopped() bool { return s.stopped }

// Stop ends the simulation gracefully: Run returns after the currently
// executing process yields.
func (s *Simulator) Stop() { s.stopped = true }

// Fatal stops the simulation with an error; Run returns it. The first fatal
// error wins.
func (s *Simulator) Fatal(err error) {
	if s.err == nil {
		s.err = err
	}
	s.stopped = true
}

func (s *Simulator) push(it *workItem) {
	it.seq = s.seq
	s.seq++
	if !it.daemon {
		s.live++
	}
	heap.Push(&s.queue, it)
}

// At schedules fn to run at absolute simulated time t (not before the current
// time).
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.push(&workItem{at: t, fn: fn})
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Run executes scheduled work until the horizon is passed, the queue drains,
// or the simulation is stopped. It returns the fatal error, if any. The clock
// never advances past `until`; work scheduled later stays queued for a
// subsequent Run call.
//
// Daemon threads (SpawnDaemon) never keep the simulation alive: once only
// daemon wake-ups remain queued, an unbounded Run returns exactly as if the
// queue had drained. Under a finite horizon the remaining daemon items still
// execute up to the horizon — a periodic sampler keeps ticking through idle
// stretches the caller explicitly asked to simulate.
func (s *Simulator) Run(until Time) error {
	if s.running {
		panic("kernel: Run called from inside a process")
	}
	s.running = true
	defer func() { s.running = false }()

	for !s.stopped && len(s.queue) > 0 {
		if s.live == 0 && until == Forever {
			break // only daemon work left; an unbounded run would never end
		}
		next := s.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		if !next.daemon {
			s.live--
		}
		// Daemon-only stretches can leave the clock already advanced past a
		// queued item's schedule time; the clock must never move backwards.
		if next.at > s.now {
			if s.trace != nil {
				s.trace.TimeAdvance(s.now, next.at)
			}
			s.now = next.at
		}
		if next.thread != nil {
			next.thread.dispatch()
		} else {
			next.fn()
		}
	}
	if !s.stopped && s.now < until && until != Forever {
		// Idle until the horizon, like sc_start with no pending activity.
		if s.trace != nil && until != s.now {
			s.trace.TimeAdvance(s.now, until)
		}
		s.now = until
	}
	return s.err
}

// Pending reports whether any work is queued.
func (s *Simulator) Pending() bool { return len(s.queue) > 0 }

// Shutdown terminates all thread goroutines. It must be called when a
// simulator is abandoned (tests create many); afterwards the simulator must
// not be used.
func (s *Simulator) Shutdown() {
	s.stopped = true
	for _, t := range s.threads {
		t.kill()
	}
	s.threads = nil
	s.queue = nil
	s.live = 0
}

// Event is the analog of sc_event: processes block on it with
// Proc.WaitEvent, and it is fired with Notify.
type Event struct {
	s       *Simulator
	name    string
	waiters []*Thread
}

// NewEvent creates a named event.
func (s *Simulator) NewEvent(name string) *Event { return &Event{s: s, name: name} }

// Name returns the event's name.
func (e *Event) Name() string { return e.name }

// Notify wakes all processes currently waiting on the event after the given
// delay. Like sc_event::notify, processes that start waiting after the call
// are not woken by it. Notify(0) wakes waiters at the current timestamp,
// after the currently running process yields.
func (e *Event) Notify(delay Time) {
	waiters := e.waiters
	e.waiters = nil
	if e.s.trace != nil {
		e.s.trace.EventNotify(e.name, e.s.now, e.s.now+delay, len(waiters))
	}
	for _, t := range waiters {
		t.scheduleWake(e.s.now + delay)
	}
}

// kernelKilled is the panic payload used to unwind killed thread goroutines.
type kernelKilled struct{}

// Thread is a cooperative process, the analog of SC_THREAD. Its body runs in
// a dedicated goroutine but executes strictly exclusively with the scheduler
// and all other threads.
type Thread struct {
	s      *Simulator
	name   string
	resume chan bool // true = run, false = kill
	yield  chan struct{}
	done   bool
	queued bool
	daemon bool
	proc   *Proc
}

// Proc is the handle a thread body uses to interact with the kernel.
type Proc struct {
	t *Thread
}

// Spawn creates a thread and schedules its first execution at the current
// time. The body runs until it returns; a body that wants to live for the
// whole simulation loops around Wait calls, exactly like an SC_THREAD.
func (s *Simulator) Spawn(name string, body func(p *Proc)) *Thread {
	return s.spawn(name, body, false)
}

// SpawnDaemon creates a daemon thread: it participates in simulated time
// like any other thread, but its pending wake-ups never keep the simulation
// alive — Run(Forever) returns when only daemon work remains, exactly as if
// the queue had drained. This is the contract a periodic telemetry sampler
// needs: it observes the platform at a fixed simulated cadence without
// turning a finished (or deadlocked) simulation into an infinite loop.
func (s *Simulator) SpawnDaemon(name string, body func(p *Proc)) *Thread {
	return s.spawn(name, body, true)
}

func (s *Simulator) spawn(name string, body func(p *Proc), daemon bool) *Thread {
	t := &Thread{
		s:      s,
		name:   name,
		resume: make(chan bool),
		yield:  make(chan struct{}),
		daemon: daemon,
	}
	t.proc = &Proc{t: t}
	s.threads = append(s.threads, t)
	if s.trace != nil {
		s.trace.ThreadSpawn(name, s.now)
	}
	go func() {
		if !<-t.resume {
			t.done = true
			t.yield <- struct{}{}
			return
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, killed := r.(kernelKilled); !killed {
						panic(r)
					}
				}
			}()
			body(t.proc)
		}()
		t.done = true
		t.yield <- struct{}{}
	}()
	t.scheduleWake(s.now)
	return t
}

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Done reports whether the thread body has returned.
func (t *Thread) Done() bool { return t.done }

func (t *Thread) scheduleWake(at Time) {
	if t.done || t.queued {
		return
	}
	t.queued = true
	if t.s.trace != nil {
		t.s.trace.ThreadWake(t.name, t.s.now, at)
	}
	t.s.push(&workItem{at: at, thread: t, daemon: t.daemon})
}

// dispatch resumes the thread and blocks until it yields or finishes.
func (t *Thread) dispatch() {
	if t.done {
		return
	}
	t.queued = false
	if t.s.trace != nil {
		t.s.trace.ThreadRun(t.name, t.s.now)
	}
	t.resume <- true
	<-t.yield
	if t.s.trace != nil {
		t.s.trace.ThreadPause(t.name, t.s.now)
	}
}

// kill unwinds the thread goroutine if it is still alive.
func (t *Thread) kill() {
	if t.done {
		return
	}
	t.resume <- false // the goroutine either panics out of its pause or exits before starting
	<-t.yield
	t.done = true
}

// pause returns control to the scheduler and blocks until resumed. When the
// simulator is shutting down it unwinds the goroutine.
func (p *Proc) pause() {
	t := p.t
	t.yield <- struct{}{}
	if !<-t.resume {
		t.done = true
		panic(kernelKilled{})
	}
}

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.t.s.Now() }

// Simulator returns the owning simulator.
func (p *Proc) Simulator() *Simulator { return p.t.s }

// Wait suspends the thread for d of simulated time — sc_core::wait(d).
func (p *Proc) Wait(d Time) {
	p.t.scheduleWake(p.t.s.now + d)
	p.pause()
}

// WaitEvent suspends the thread until the event is notified —
// sc_core::wait(event).
func (p *Proc) WaitEvent(e *Event) {
	e.waiters = append(e.waiters, p.t)
	p.pause()
}

// Yield suspends the thread and reschedules it at the current timestamp,
// letting other runnable processes execute first.
func (p *Proc) Yield() { p.Wait(0) }

// Stop gracefully stops the simulation (and suspends the calling thread
// permanently).
func (p *Proc) Stop() {
	p.t.s.Stop()
	p.parkForever()
}

// Fatal stops the simulation with an error (and suspends the calling thread
// permanently).
func (p *Proc) Fatal(err error) {
	p.t.s.Fatal(err)
	p.parkForever()
}

// parkForever yields without rescheduling; the thread only wakes again to be
// killed at Shutdown.
func (p *Proc) parkForever() {
	p.pause()
}
