package kernel

import (
	"errors"
	"testing"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1 * US, "1.000us"},
		{1500 * NS, "1.500us"},
		{25 * MS, "25.000ms"},
		{2*S + 250*MS, "2.250s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", uint64(c.t), got, c.want)
		}
	}
}

func TestCallbackOrdering(t *testing.T) {
	s := New()
	defer s.Shutdown()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.At(10, func() { order = append(order, 11) }) // same time: FIFO by seq
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v, want 30", s.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	s := New()
	defer s.Shutdown()
	ran := false
	s.At(100, func() { ran = true })
	if err := s.Run(50); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("work beyond the horizon must not run")
	}
	if s.Now() != 50 {
		t.Errorf("clock must idle forward to the horizon, Now() = %v", s.Now())
	}
	if !s.Pending() {
		t.Error("work must remain queued")
	}
	if err := s.Run(200); err != nil {
		t.Fatal(err)
	}
	if !ran || s.Now() != 200 {
		t.Errorf("second Run: ran=%v Now()=%v, want ran at 100 and clock idled to 200", ran, s.Now())
	}
}

func TestThreadWait(t *testing.T) {
	s := New()
	defer s.Shutdown()
	var stamps []Time
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 3; i++ {
			stamps = append(stamps, p.Now())
			p.Wait(25 * MS)
		}
	})
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 25 * MS, 50 * MS}
	for i, w := range want {
		if stamps[i] != w {
			t.Errorf("stamp %d = %v, want %v", i, stamps[i], w)
		}
	}
	if s.Now() != 75*MS {
		t.Errorf("final time = %v, want 75ms (last wait completes)", s.Now())
	}
}

func TestThreadsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		defer s.Shutdown()
		var log []string
		s.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "a")
				p.Wait(10)
			}
		})
		s.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "b")
				p.Wait(10)
			}
		})
		if err := s.Run(Forever); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 10; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("run %d: length %d != %d", i, len(again), len(first))
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("run %d: nondeterministic interleaving %v vs %v", i, again, first)
			}
		}
	}
	// Spawn order breaks the tie at equal timestamps.
	if first[0] != "a" || first[1] != "b" {
		t.Errorf("interleaving = %v, want a before b at each step", first)
	}
}

func TestEventNotify(t *testing.T) {
	s := New()
	defer s.Shutdown()
	ev := s.NewEvent("irq")
	if ev.Name() != "irq" {
		t.Errorf("Name() = %q", ev.Name())
	}
	var woke Time
	s.Spawn("waiter", func(p *Proc) {
		p.WaitEvent(ev)
		woke = p.Now()
	})
	s.Spawn("notifier", func(p *Proc) {
		p.Wait(40)
		ev.Notify(5)
	})
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if woke != 45 {
		t.Errorf("waiter woke at %v, want 45", woke)
	}
}

func TestEventNotifyWakesOnlyCurrentWaiters(t *testing.T) {
	s := New()
	defer s.Shutdown()
	ev := s.NewEvent("e")
	count := 0
	s.Spawn("late", func(p *Proc) {
		p.Wait(10) // starts waiting after the notify below has fired
		p.WaitEvent(ev)
		count++
	})
	s.At(5, func() { ev.Notify(0) })
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Error("a process that waits after Notify must not be woken by it")
	}
}

func TestEventNotifyMultipleWaiters(t *testing.T) {
	s := New()
	defer s.Shutdown()
	ev := s.NewEvent("e")
	woke := 0
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			p.WaitEvent(ev)
			woke++
		})
	}
	s.At(10, func() { ev.Notify(0) })
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Errorf("woke = %d, want 3", woke)
	}
}

func TestYield(t *testing.T) {
	s := New()
	defer s.Shutdown()
	var log []string
	s.Spawn("a", func(p *Proc) {
		log = append(log, "a1")
		p.Yield()
		log = append(log, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		log = append(log, "b1")
	})
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestStopFromThread(t *testing.T) {
	s := New()
	defer s.Shutdown()
	reached := false
	s.Spawn("stopper", func(p *Proc) {
		p.Wait(10)
		p.Stop()
		reached = true // must never run
	})
	s.Spawn("other", func(p *Proc) {
		for {
			p.Wait(1)
		}
	})
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Error("Stop must park the calling thread")
	}
	if !s.Stopped() || s.Now() != 10 {
		t.Errorf("Stopped=%v Now=%v", s.Stopped(), s.Now())
	}
}

func TestFatalFromThread(t *testing.T) {
	s := New()
	defer s.Shutdown()
	boom := errors.New("boom")
	s.Spawn("failer", func(p *Proc) {
		p.Wait(3)
		p.Fatal(boom)
	})
	err := s.Run(Forever)
	if !errors.Is(err, boom) {
		t.Errorf("Run error = %v, want boom", err)
	}
	if s.Err() != boom {
		t.Errorf("Err() = %v", s.Err())
	}
	// First fatal wins.
	s2 := New()
	defer s2.Shutdown()
	first, second := errors.New("first"), errors.New("second")
	s2.Fatal(first)
	s2.Fatal(second)
	if s2.Err() != first {
		t.Errorf("Err() = %v, want first", s2.Err())
	}
}

func TestShutdownKillsBlockedThreads(t *testing.T) {
	s := New()
	ev := s.NewEvent("never")
	cleanedUp := false
	s.Spawn("waiter", func(p *Proc) {
		defer func() { cleanedUp = true }()
		p.WaitEvent(ev)
	})
	s.Spawn("sleeper", func(p *Proc) {
		for {
			p.Wait(1000)
		}
	})
	if err := s.Run(5000); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	if !cleanedUp {
		t.Error("Shutdown must unwind blocked goroutines (running their defers)")
	}
}

func TestShutdownBeforeFirstDispatch(t *testing.T) {
	s := New()
	s.Spawn("neverran", func(p *Proc) {
		t.Error("body must not run")
	})
	s.Shutdown() // must not hang or run the body
}

func TestThreadDoneAndName(t *testing.T) {
	s := New()
	defer s.Shutdown()
	th := s.Spawn("worker", func(p *Proc) { p.Wait(5) })
	if th.Name() != "worker" {
		t.Errorf("Name() = %q", th.Name())
	}
	if th.Done() {
		t.Error("thread must not be done before running")
	}
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if !th.Done() {
		t.Error("thread must be done after body returns")
	}
}

func TestAtClampsToPast(t *testing.T) {
	s := New()
	defer s.Shutdown()
	var at Time = 999
	s.At(50, func() {
		s.At(10, func() { at = s.Now() }) // in the past: clamp to now
	})
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if at != 50 {
		t.Errorf("past-scheduled callback ran at %v, want 50", at)
	}
}

func TestNestedRunPanics(t *testing.T) {
	s := New()
	defer s.Shutdown()
	s.At(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("nested Run must panic")
			}
		}()
		s.Run(Forever)
	})
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
}

func TestProcAccessors(t *testing.T) {
	s := New()
	defer s.Shutdown()
	s.Spawn("x", func(p *Proc) {
		if p.Simulator() != s {
			t.Error("Simulator() mismatch")
		}
		if p.Now() != 0 {
			t.Errorf("Now() = %v", p.Now())
		}
	})
	if err := s.Run(Forever); err != nil {
		t.Fatal(err)
	}
}
