package soc_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
	"vpdift/internal/soc"
	"vpdift/internal/telemetry"
	"vpdift/internal/trace"
)

// spinSrc busy-loops forever; the platform is driven by a finite horizon.
const spinSrc = `
main:
1:	addi t0, t0, 1
	j 1b
`

func TestTelemetrySamplerOnPlatform(t *testing.T) {
	img, err := guest.Program(spinSrc)
	if err != nil {
		t.Fatal(err)
	}
	l := core.IFP1()
	pol := core.NewPolicy(l, l.MustTag(core.ClassLC)).
		WithOutput("uart0.tx", l.MustTag(core.ClassLC))
	smp := telemetry.NewSampler(telemetry.Options{Every: kernel.MS})
	o := obs.New()
	pl, err := soc.New(soc.Config{Policy: pol, Obs: o, Telemetry: smp})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if pl.Telemetry() != smp {
		t.Fatal("Telemetry() accessor lost the sampler")
	}
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(12 * kernel.MS); err != nil {
		t.Fatal(err)
	}
	if pl.Now() != 12*kernel.MS {
		t.Fatalf("Now() = %v", pl.Now())
	}
	samples := smp.Samples()
	if len(samples) < 10 {
		t.Fatalf("got %d samples over 12ms at 1ms cadence, want >= 10", len(samples))
	}
	var prevT kernel.Time
	var prevI uint64
	for i, sm := range samples {
		if sm.Time <= prevT && i > 0 {
			t.Fatalf("sample %d: time %d not strictly increasing", i, sm.Time)
		}
		prevT = sm.Time
		ir := sm.Metrics["sim.instret"]
		if ir <= prevI {
			t.Fatalf("sample %d: sim.instret %d not monotone after %d", i, ir, prevI)
		}
		prevI = ir
	}
	// A 100 MHz single-issue busy loop retires ~100 M instructions per
	// simulated second.
	if mips := samples[len(samples)-1].Derived.MIPS; mips < 50 || mips > 200 {
		t.Errorf("MIPS = %v, want ~100", mips)
	}
}

// The merged snapshot's precedence: platform gauges overwrite observer
// registry counters of the same name, and cover gauges overwrite both.
func TestMetricsSnapshotPrecedence(t *testing.T) {
	img, err := guest.Program(coverSrc)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	cv := cover.New()
	pl, err := soc.New(soc.Config{Obs: o, Cover: cv})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	// Poison the observer registry with names the platform and the cover
	// layer own.
	reg := o.Metrics()
	reg.Add("sim.instret", 0xDEAD_BEEF)
	reg.Add("sim.time_ns", 0xDEAD_BEEF)
	reg.Add("cover.guest_blocks", 0xDEAD_BEEF)

	m := pl.MetricsSnapshot()
	if m["sim.instret"] != pl.Instret() {
		t.Errorf("sim.instret = %d, want the platform's %d", m["sim.instret"], pl.Instret())
	}
	if m["sim.time_ns"] != uint64(pl.Now()) {
		t.Errorf("sim.time_ns = %d, want %d", m["sim.time_ns"], uint64(pl.Now()))
	}
	if want := uint64(cv.Guest.Stats().Blocks); m["cover.guest_blocks"] != want {
		t.Errorf("cover.guest_blocks = %d, want the cover view's %d", m["cover.guest_blocks"], want)
	}
	// A name nobody else owns passes through from the registry untouched.
	reg.Add("custom.counter", 7)
	if m2 := pl.MetricsSnapshot(); m2["custom.counter"] != 7 {
		t.Errorf("custom.counter = %d, want 7", m2["custom.counter"])
	}
}

// Every metric name the full-featured platform emits must round-trip
// unchanged through the JSON exporter and become a legal Prometheus name —
// the two export formats must agree on what a metric is called.
func TestMetricsNamesRoundTrip(t *testing.T) {
	img, err := guest.Program(coverSrc)
	if err != nil {
		t.Fatal(err)
	}
	l := core.IFP1()
	hi := l.MustTag(core.ClassHC)
	pol := core.NewPolicy(l, l.MustTag(core.ClassLC)).
		WithOutput("uart0.tx", l.MustTag(core.ClassLC)).
		WithRegion(core.RegionRule{
			Name: "image", Start: img.Base, End: img.End(),
			Classify: true, Class: hi,
		})
	o := obs.New()
	cv := cover.New()
	tr := &trace.Trace{Kernel: trace.NewKernelTrace(0)}
	pl, err := soc.New(soc.Config{Policy: pol, Obs: o, Cover: cv, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	m := pl.MetricsSnapshot()
	if len(m) < 20 {
		t.Fatalf("suspiciously small snapshot: %d keys", len(m))
	}

	// JSON round-trip: names verbatim, values intact.
	var buf bytes.Buffer
	if err := obs.WriteMetricsJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	var back map[string]uint64
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(m) {
		t.Fatalf("JSON round-trip lost keys: %d != %d", len(back), len(m))
	}
	for k, v := range m {
		if back[k] != v {
			t.Errorf("JSON round-trip: %s = %d, want %d", k, back[k], v)
		}
	}

	// Prometheus: every name sanitizes legally and the exposition validates.
	buf.Reset()
	if err := telemetry.WritePrometheus(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateExposition(buf.String()); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, buf.String())
	}
}

// The sampler's per-tick path — MetricsSnapshotInto on a platform with
// every observability layer attached — must not allocate once the
// destination map has seen the key set.
func TestMetricsSnapshotIntoZeroAlloc(t *testing.T) {
	img, err := guest.Program(coverSrc)
	if err != nil {
		t.Fatal(err)
	}
	l := core.IFP1()
	pol := core.NewPolicy(l, l.MustTag(core.ClassLC)).
		WithOutput("uart0.tx", l.MustTag(core.ClassLC)).
		WithOutput("can0.tx", l.MustTag(core.ClassLC))
	o := obs.New()
	cv := cover.New()
	pl, err := soc.New(soc.Config{Policy: pol, Obs: o, Cover: cv})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	dst := make(map[string]uint64, 64)
	pl.MetricsSnapshotInto(dst) // warm the key set
	allocs := testing.AllocsPerRun(100, func() {
		pl.MetricsSnapshotInto(dst)
	})
	if allocs != 0 {
		t.Errorf("MetricsSnapshotInto allocates %.1f per call, want 0", allocs)
	}

	// The allocation-free dead-rule count agrees with the rendered list.
	if got, want := cv.Audit.DeadRuleCount(), len(cv.Audit.DeadRules()); got != want {
		t.Errorf("DeadRuleCount = %d, len(DeadRules) = %d", got, want)
	}
}
