package soc

import (
	"errors"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
)

// The full-system pipeline: confidential sensor data is DMA-copied into
// RAM, encrypted by the AES engine (which declassifies the ciphertext), and
// transmitted on the CAN bus. Taint must follow the data across the sensor
// MMIO frame, the DMA engine, RAM, and the AES — and the declassification
// must be the only reason the CAN transmission is legal: the same guest
// also has a "raw" mode that skips the AES, which must violate.
const pipelineGuest = `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	# mode from the console: 'e' = encrypt path, 'r' = raw leak path
	call uart_getc
	mv s6, a0

	# enable the sensor interrupt
	la t0, pipeline_trap
	csrw mtvec, t0
	li t0, INTC_BASE
	li t1, 1 << IRQ_SENSOR
	sw t1, INTC_ENABLE(t0)
	li t1, 0x800
	csrw mie, t1
	csrsi mstatus, 8
	# wait for a frame
	la s0, frame_ready
1:	lw t1, 0(s0)
	beqz t1, 1b

	# DMA the first 16 sensor bytes into RAM
	li t0, DMA_BASE
	li t1, SENSOR_BASE
	sw t1, DMA_SRC(t0)
	la t1, frame_copy
	sw t1, DMA_DST(t0)
	li t1, 16
	sw t1, DMA_LEN(t0)
	li t1, 1
	sw t1, DMA_CTRL(t0)

	li t2, 'r'
	beq s6, t2, raw_path

	# encrypted path: AES_KEY <- key, AES_IN <- frame copy
	li t0, AES_BASE
	la t1, aes_key
	li t2, 0
2:	add t3, t1, t2
	lbu t4, 0(t3)
	add t3, t0, t2
	sb t4, AES_KEY(t3)
	addi t2, t2, 1
	li t3, 16
	blt t2, t3, 2b
	la t1, frame_copy
	li t2, 0
3:	add t3, t1, t2
	lbu t4, 0(t3)
	add t3, t0, t2
	sb t4, AES_IN(t3)
	addi t2, t2, 1
	li t3, 16
	blt t2, t3, 3b
	li t3, 1
	sw t3, AES_CTRL(t0)
	# transmit the first 8 ciphertext bytes
	li t1, CAN_BASE
	li t3, 0x77
	sw t3, CAN_TX_ID(t1)
	li t3, 8
	sw t3, CAN_TX_LEN(t1)
	li t2, 0
4:	add t3, t0, t2
	lbu t4, AES_OUT(t3)
	add t3, t1, t2
	sb t4, CAN_TX_DATA(t3)
	addi t2, t2, 1
	li t3, 8
	blt t2, t3, 4b
	li t3, 1
	sw t3, CAN_TX_CTRL(t1)
	li a0, 0
	j exit

raw_path:
	# leak the raw (confidential) frame copy on the CAN bus
	li t1, CAN_BASE
	li t3, 0x78
	sw t3, CAN_TX_ID(t1)
	li t3, 8
	sw t3, CAN_TX_LEN(t1)
	la t0, frame_copy
	li t2, 0
5:	add t3, t0, t2
	lbu t4, 0(t3)
	add t3, t1, t2
	sb t4, CAN_TX_DATA(t3)
	addi t2, t2, 1
	li t3, 8
	blt t2, t3, 5b
	li t3, 1
	sw t3, CAN_TX_CTRL(t1)
	li a0, 0
	j exit

pipeline_trap:
	li t0, INTC_BASE
	lw t1, INTC_CLAIM(t0)
	la t0, frame_ready
	li t1, 1
	sw t1, 0(t0)
	mret

	.data
	.align 2
frame_ready:
	.word 0
aes_key:
	.byte 0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6
	.byte 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c
	.align 4
frame_copy:
	.space 16
`

// pipelinePolicy: IFP-3; sensor data and key confidential+trusted, CAN is
// a public interface, AES admits everything and declassifies.
func pipelinePolicy(img interface{ MustSymbol(string) uint32 }) *core.Policy {
	l := core.IFP3()
	lcLI := l.MustTag("(LC,LI)")
	hcHI := l.MustTag("(HC,HI)")
	top, _ := l.Top()
	key := img.MustSymbol("aes_key")
	return core.NewPolicy(l, lcLI).
		WithInput("sensor0.data", hcHI).
		WithInput("uart0.rx", lcLI).
		WithInput("aes0.out", lcLI).
		WithOutput("can0.tx", lcLI).
		WithOutput("aes0.in", top).
		WithRegion(core.RegionRule{
			Name: "key", Start: key, End: key + 16,
			Classify: true, Class: hcHI,
		})
}

func TestFullSystemPipelineEncryptedPathPasses(t *testing.T) {
	img := guest.MustProgram(pipelineGuest)
	pl := MustNew(Config{Policy: pipelinePolicy(img)})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	pl.UART.Inject([]byte{'e'})
	if err := pl.Run(kernel.S); err != nil {
		t.Fatalf("encrypted pipeline must pass: %v", err)
	}
	if exited, code := pl.Exited(); !exited || code != 0 {
		t.Fatalf("exited=%v code=%d", exited, code)
	}
	if len(pl.CAN.TxLog) != 1 {
		t.Fatalf("tx frames = %d", len(pl.CAN.TxLog))
	}
	f := pl.CAN.TxLog[0]
	if f.ID != 0x77 || len(f.Data) != 8 {
		t.Fatalf("frame = %+v", f)
	}
	// The transmitted bytes must be declassified ciphertext: (LC,LI) tags.
	lcLI := pipelinePolicy(img).L.MustTag("(LC,LI)")
	for i, b := range f.Data {
		if b.T != lcLI {
			t.Errorf("tx byte %d tag = %d, want declassified", i, b.T)
		}
	}
	// And it must really be AES of the (confidential) sensor frame: the
	// frame bytes live in RAM at frame_copy.
	frame, err := pl.ReadRAM(img.MustSymbol("frame_copy"), 16)
	if err != nil {
		t.Fatal(err)
	}
	var nonZero bool
	for _, b := range frame {
		if b != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("DMA did not copy the sensor frame")
	}
}

func TestFullSystemPipelineRawPathViolates(t *testing.T) {
	img := guest.MustProgram(pipelineGuest)
	pl := MustNew(Config{Policy: pipelinePolicy(img)})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	pl.UART.Inject([]byte{'r'})
	err := pl.Run(kernel.S)
	var v *core.Violation
	if !errors.As(err, &v) || v.Port != "can0.tx" {
		t.Fatalf("raw sensor data on CAN must violate, got %v", err)
	}
	if v.HaveClass() != "(HC,HI)" {
		t.Errorf("offending class = %s: the sensor classification must have survived DMA and RAM", v.HaveClass())
	}
	if len(pl.CAN.TxLog) != 0 {
		t.Error("no frame may have left the system")
	}
}

func TestFullSystemPipelineOnBaseline(t *testing.T) {
	// Same raw leak on the baseline VP: runs to completion (nothing to
	// detect it) — the motivation for the whole approach.
	img := guest.MustProgram(pipelineGuest)
	pl := MustNew(Config{})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	pl.UART.Inject([]byte{'r'})
	if err := pl.Run(kernel.S); err != nil {
		t.Fatal(err)
	}
	if exited, _ := pl.Exited(); !exited {
		t.Fatal("guest did not finish")
	}
	if len(pl.CAN.TxLog) != 1 {
		t.Error("baseline must have leaked the frame")
	}
}
