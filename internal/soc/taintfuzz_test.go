package soc

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
)

// The taint-tracking fuzzer: generate random straight-line data-flow chains
// that shuttle a value through registers, arithmetic, and memory (word,
// half and byte granularity), then emit the result on the UART.
//
//   - Soundness (no under-tainting): a chain rooted at the secret must
//     ALWAYS raise an output-clearance violation, whatever path the data
//     took.
//   - Precision (no over-tainting): a chain rooted at public data must
//     NEVER raise a violation, even when a secret-derived chain runs
//     interleaved next to it.

type chainGen struct {
	seed uint32
	b    strings.Builder
	buf  int // scratch slots used
}

func (g *chainGen) rnd() uint32 {
	g.seed = g.seed*1664525 + 1013904223
	return g.seed
}

func (g *chainGen) line(format string, args ...any) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

// step applies one random taint-preserving transformation to the live value
// in reg (an s-register name), using other as a public helper register.
func (g *chainGen) step(reg, other string) {
	switch g.rnd() % 8 {
	case 0: // move through a temporary
		g.line("mv t0, %s", reg)
		g.line("mv %s, t0", reg)
	case 1: // arithmetic with a public register
		g.line("li %s, %d", other, g.rnd()%1000)
		g.line("add %s, %s, %s", reg, reg, other)
	case 2: // xor with an immediate
		g.line("xori %s, %s, %d", reg, reg, g.rnd()%2048)
	case 3: // shift left then right (keeps derivation)
		g.line("slli %s, %s, 1", reg, reg)
		g.line("srli %s, %s, 1", reg, reg)
	case 4: // word round trip through memory
		slot := g.slot()
		g.line("la t1, %s", slot)
		g.line("sw %s, 0(t1)", reg)
		g.line("lw %s, 0(t1)", reg)
	case 5: // byte round trip (only the low byte survives, still tainted)
		slot := g.slot()
		g.line("la t1, %s", slot)
		g.line("sb %s, 0(t1)", reg)
		g.line("lbu %s, 0(t1)", reg)
	case 6: // halfword round trip
		slot := g.slot()
		g.line("la t1, %s", slot)
		g.line("sh %s, 0(t1)", reg)
		g.line("lhu %s, 0(t1)", reg)
	case 7: // multiply by a public value
		g.line("li %s, 3", other)
		g.line("mul %s, %s, %s", reg, reg, other)
	}
}

func (g *chainGen) slot() string {
	g.buf++
	return fmt.Sprintf("fz_slot%d", g.buf)
}

// program builds a guest with two interleaved chains: one rooted at the
// secret (register s2), one rooted at public data (s3). emitSecret selects
// which one is written to the console at the end.
func (g *chainGen) program(steps int, emitSecret bool) string {
	g.b.Reset()
	g.buf = 0
	g.b.WriteString("main:\n")
	g.line("la t0, fz_secret")
	g.line("lw s2, 0(t0)")
	g.line("li s3, 0x1234")
	for i := 0; i < steps; i++ {
		g.step("s2", "s4")
		g.step("s3", "s5")
	}
	out := "s3"
	if emitSecret {
		out = "s2"
	}
	g.line("li t0, UART_BASE")
	g.line("sw %s, UART_TX(t0)", out)
	g.line("li a0, 0")
	g.line("j exit")
	fmt.Fprintf(&g.b, "\t.data\n\t.align 2\nfz_secret:\n\t.word 0x%08x\n", 0xC0DE0000|g.rnd()&0xFFFF)
	for i := 1; i <= g.buf; i++ {
		fmt.Fprintf(&g.b, "fz_slot%d:\n\t.word 0\n", i)
	}
	return g.b.String()
}

func TestTaintFuzzSoundnessAndPrecision(t *testing.T) {
	for seed := uint32(1); seed <= 24; seed++ {
		for _, emitSecret := range []bool{true, false} {
			g := &chainGen{seed: seed * 7919}
			src := g.program(6+int(seed%5), emitSecret)

			img, err := guest.Program(src)
			if err != nil {
				t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
			}
			l := core.IFP1()
			lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
			secret := img.MustSymbol("fz_secret")
			pol := core.NewPolicy(l, lc).
				WithOutput("uart0.tx", lc).
				WithRegion(core.RegionRule{
					Name: "secret", Start: secret, End: secret + 4,
					Classify: true, Class: hc,
				})
			pl := MustNew(Config{Policy: pol})
			err = func() error {
				defer pl.Shutdown()
				if err := pl.Load(img); err != nil {
					return err
				}
				return pl.Run(kernel.S)
			}()

			var v *core.Violation
			isViolation := errors.As(err, &v)
			if emitSecret && !isViolation {
				t.Fatalf("seed %d: UNDER-TAINTING — secret-derived output not detected (err=%v)\nsource:\n%s",
					seed, err, src)
			}
			if !emitSecret {
				if isViolation {
					t.Fatalf("seed %d: OVER-TAINTING — public output flagged: %v\nsource:\n%s",
						seed, v, src)
				}
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}
	}
}
