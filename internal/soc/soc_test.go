package soc

import (
	"errors"
	"strings"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
)

func TestHelloUART(t *testing.T) {
	img := guest.MustProgram(`
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, msg
	call uart_puts
	li a0, 0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
	.data
msg:	.asciz "hello, vp!\n"
`)
	pl := MustNew(Config{})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	exited, code := pl.Exited()
	if !exited || code != 0 {
		t.Fatalf("exited=%v code=%d", exited, code)
	}
	if got := string(pl.UART.Output()); got != "hello, vp!\n" {
		t.Errorf("uart = %q", got)
	}
	if pl.Instret() == 0 {
		t.Error("instret must count")
	}
	if pl.IsDIFT() {
		t.Error("no policy => baseline")
	}
}

func TestHelloUARTOnDIFTPlatform(t *testing.T) {
	img := guest.MustProgram(`
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, msg
	call uart_puts
	li a0, 7
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
	.data
msg:	.asciz "dift\n"
`)
	l := core.IFP1()
	pol := core.NewPolicy(l, l.MustTag(core.ClassLC)).
		WithOutput("uart0.tx", l.MustTag(core.ClassLC))
	pl := MustNew(Config{Policy: pol})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	if got := string(pl.UART.Output()); got != "dift\n" {
		t.Errorf("uart = %q", got)
	}
	if _, code := pl.Exited(); code != 7 {
		t.Errorf("exit code = %d", code)
	}
	if !pl.IsDIFT() {
		t.Error("policy => VP+")
	}
}

func TestSecretLeakDetectedOnUART(t *testing.T) {
	// The canonical confidentiality scenario: the guest prints the secret;
	// the UART's (LC) clearance catches it.
	img := guest.MustProgram(`
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la t0, secret
	lw a0, 0(t0)
	call uart_puthex     # leaks HC data to the LC console
	li a0, 0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
	.data
	.align 2
secret:	.word 0xC0FFEE11
`)
	l := core.IFP1()
	lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
	secret := img.MustSymbol("secret")
	pol := core.NewPolicy(l, lc).
		WithOutput("uart0.tx", lc).
		WithRegion(core.RegionRule{Name: "secret", Start: secret, End: secret + 4, Classify: true, Class: hc})
	pl := MustNew(Config{Policy: pol})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	err := pl.Run(kernel.Forever)
	var v *core.Violation
	if !errors.As(err, &v) || v.Kind != core.KindOutputClearance || v.Port != "uart0.tx" {
		t.Fatalf("err = %v, want uart0.tx output violation", err)
	}
}

func TestSensorInterruptDrivenCopy(t *testing.T) {
	// The Fig. 4 flow: sensor fills a frame every 25 ms and raises IRQ 2;
	// the guest claims it and copies the frame to the UART. Run two frames.
	img := guest.MustProgram(`
main:
	la t0, trap_handler
	csrw mtvec, t0
	# enable sensor IRQ in the interrupt controller
	li t0, INTC_BASE
	li t1, 1 << IRQ_SENSOR
	sw t1, INTC_ENABLE(t0)
	# enable machine external interrupts
	li t1, 0x800
	csrw mie, t1
	csrsi mstatus, 8
1:	la t0, frames_done
	lw t1, 0(t0)
	li t2, 2
	blt t1, t2, 1b
	li a0, 0
	j exit

trap_handler:
	addi sp, sp, -16
	sw ra, 12(sp)
	sw t0, 8(sp)
	sw t1, 4(sp)
	# claim
	li t0, INTC_BASE
	lw t1, INTC_CLAIM(t0)
	# copy 64 sensor bytes to UART
	li t0, SENSOR_BASE
	li t1, UART_BASE
	li t2, 0
2:	add t3, t0, t2
	lbu t4, 0(t3)
	sw t4, UART_TX(t1)
	addi t2, t2, 1
	li t3, 64
	blt t2, t3, 2b
	la t0, frames_done
	lw t1, 0(t0)
	addi t1, t1, 1
	sw t1, 0(t0)
	lw t1, 4(sp)
	lw t0, 8(sp)
	lw ra, 12(sp)
	addi sp, sp, 16
	mret
	.data
	.align 2
frames_done:
	.word 0
`)
	pl := MustNew(Config{})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(200 * kernel.MS); err != nil {
		t.Fatal(err)
	}
	exited, _ := pl.Exited()
	if !exited {
		t.Fatal("guest did not finish two frames")
	}
	out := pl.UART.Output()
	if len(out) != 128 {
		t.Fatalf("uart got %d bytes, want 128 (two frames)", len(out))
	}
	if pl.Sensor.Frames() < 2 {
		t.Error("sensor must have generated at least two frames")
	}
}

func TestSensorConfidentialDataBlockedAtUART(t *testing.T) {
	// Same flow on the DIFT platform with HC sensor data: the first copied
	// byte must violate the UART clearance.
	img := guest.MustProgram(`
main:
	li t0, INTC_BASE
	li t1, 1 << IRQ_SENSOR
	sw t1, INTC_ENABLE(t0)
	la t0, trap_handler
	csrw mtvec, t0
	li t1, 0x800
	csrw mie, t1
	csrsi mstatus, 8
1:	j 1b

trap_handler:
	li t0, INTC_BASE
	lw t1, INTC_CLAIM(t0)
	li t0, SENSOR_BASE
	lbu t1, 0(t0)
	li t0, UART_BASE
	sw t1, UART_TX(t0)      # HC sensor byte -> LC console: violation
	mret
`)
	l := core.IFP1()
	lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
	pol := core.NewPolicy(l, lc).
		WithOutput("uart0.tx", lc).
		WithInput("sensor0.data", hc)
	pl := MustNew(Config{Policy: pol})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	err := pl.Run(kernel.S)
	var v *core.Violation
	if !errors.As(err, &v) || v.Port != "uart0.tx" {
		t.Fatalf("err = %v, want uart0.tx violation", err)
	}
}

func TestDMAMovesTaintAcrossMemory(t *testing.T) {
	// Guest programs the DMA to copy the secret into a scratch buffer, then
	// prints the scratch buffer: the tag must have travelled with the copy.
	img := guest.MustProgram(`
main:
	li t0, DMA_BASE
	la t1, secret
	sw t1, DMA_SRC(t0)
	la t1, scratch
	sw t1, DMA_DST(t0)
	li t1, 4
	sw t1, DMA_LEN(t0)
	li t1, 1
	sw t1, DMA_CTRL(t0)
	# (copy is performed immediately in the model; no need to wait)
	la t0, scratch
	lbu t1, 0(t0)
	li t0, UART_BASE
	sw t1, UART_TX(t0)    # leaked copy -> violation
	li a0, 0
	j exit
	.data
	.align 2
secret:	.word 0x11223344
scratch:
	.word 0
`)
	l := core.IFP1()
	lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
	secret := img.MustSymbol("secret")
	pol := core.NewPolicy(l, lc).
		WithOutput("uart0.tx", lc).
		WithRegion(core.RegionRule{Name: "secret", Start: secret, End: secret + 4, Classify: true, Class: hc})
	pl := MustNew(Config{Policy: pol})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	err := pl.Run(kernel.S)
	var v *core.Violation
	if !errors.As(err, &v) || v.Port != "uart0.tx" {
		t.Fatalf("err = %v, want violation through the DMA copy", err)
	}
}

func TestUARTEcho(t *testing.T) {
	img := guest.MustProgram(`
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	li s0, 3
1:	call uart_getc
	addi a0, a0, 1        # transform so we see real flow
	call uart_putc
	addi s0, s0, -1
	bnez s0, 1b
	li a0, 0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
`)
	pl := MustNew(Config{})
	defer pl.Shutdown()
	pl.UART.Inject([]byte("abc"))
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.S); err != nil {
		t.Fatal(err)
	}
	if got := string(pl.UART.Output()); got != "bcd" {
		t.Errorf("echo = %q", got)
	}
}

func TestTimerInterruptViaCLINT(t *testing.T) {
	// Program mtimecmp 1 ms ahead, wfi, count the tick.
	img := guest.MustProgram(`
main:
	la t0, trap_handler
	csrw mtvec, t0
	# mtimecmp = mtime + 1000 (1ms at 1MHz)
	li t0, CLINT_BASE + CLINT_MTIME
	lw t1, 0(t0)
	addi t1, t1, 1000
	li t0, CLINT_BASE + CLINT_MTIMECMP
	li t2, 0
	sw t2, 4(t0)
	sw t1, 0(t0)
	li t1, 0x80           # MTIE
	csrw mie, t1
	csrsi mstatus, 8
	wfi
	# after handler
	la t0, ticks
	lw a0, 0(t0)
	j exit
trap_handler:
	la t0, ticks
	lw t1, 0(t0)
	addi t1, t1, 1
	sw t1, 0(t0)
	# push mtimecmp far away to drop the line
	li t0, CLINT_BASE + CLINT_MTIMECMP
	li t1, -1
	sw t1, 0(t0)
	sw t1, 4(t0)
	mret
	.data
	.align 2
ticks:	.word 0
`)
	pl := MustNew(Config{})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.S); err != nil {
		t.Fatal(err)
	}
	exited, code := pl.Exited()
	if !exited || code != 1 {
		t.Fatalf("exited=%v ticks=%d, want 1 tick", exited, code)
	}
	// The wfi must have slept to ~1ms of simulated time, not busy-spun.
	if pl.Sim.Now() < 900*kernel.US {
		t.Errorf("sim time = %v, want >= ~1ms", pl.Sim.Now())
	}
}

func TestPlatformErrors(t *testing.T) {
	pl := MustNew(Config{})
	defer pl.Shutdown()
	if err := pl.Run(kernel.S); err == nil || !strings.Contains(err.Error(), "no image") {
		t.Errorf("Run without image: %v", err)
	}
	img := guest.MustProgram("main:\n\tret\n")
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Load(img); err == nil {
		t.Error("double load must fail")
	}

	bad := core.NewPolicy(core.IFP1(), 9)
	if _, err := New(Config{Policy: bad}); err == nil {
		t.Error("invalid policy must be rejected")
	}
}

func TestReadRAM(t *testing.T) {
	img := guest.MustProgram(`
main:
	li a0, 0
	ret
	.data
blob:	.byte 1, 2, 3, 4
`)
	for _, dift := range []bool{false, true} {
		var pol *core.Policy
		if dift {
			l := core.IFP1()
			pol = core.NewPolicy(l, l.MustTag(core.ClassLC))
		}
		pl := MustNew(Config{Policy: pol})
		if err := pl.Load(img); err != nil {
			t.Fatal(err)
		}
		got, err := pl.ReadRAM(img.MustSymbol("blob"), 4)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 1 || got[3] != 4 {
			t.Errorf("dift=%v blob = %v", dift, got)
		}
		if _, err := pl.ReadRAM(0x1000, 4); err == nil {
			t.Error("below-RAM read must fail")
		}
		if _, err := pl.ReadRAM(RAMBase+pl.cfg.RAMSize-2, 4); err == nil {
			t.Error("beyond-RAM read must fail")
		}
		pl.Shutdown()
	}
}

func TestExitCodePropagates(t *testing.T) {
	img := guest.MustProgram("main:\n\tli a0, 42\n\tret\n")
	pl := MustNew(Config{})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	if _, code := pl.Exited(); code != 42 {
		t.Errorf("code = %d", code)
	}
}

func TestTaintSummaryAndRanges(t *testing.T) {
	img := guest.MustProgram(`
main:
	la t0, secret
	lw a0, 0(t0)
	la t1, copy
	sw a0, 0(t1)        # spread the secret
	li a0, 0
	ret
	.data
	.align 2
secret:	.word 1
gap:	.space 8          # default-class separator between the two ranges
	.align 2
copy:	.word 0
`)
	l := core.IFP1()
	lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
	secret := img.MustSymbol("secret")
	pol := core.NewPolicy(l, lc).WithRegion(core.RegionRule{
		Name: "secret", Start: secret, End: secret + 4, Classify: true, Class: hc,
	})
	pl := MustNew(Config{Policy: pol})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	sum := pl.TaintSummary()
	if sum[core.ClassHC] != 8 {
		t.Errorf("HC bytes = %d, want 8 (secret + copy)", sum[core.ClassHC])
	}
	ranges := pl.TaintedRanges()
	if len(ranges) != 2 {
		t.Fatalf("ranges = %v, want two HC ranges", ranges)
	}
	for _, r := range ranges {
		if !strings.Contains(r, "HC") {
			t.Errorf("range %q", r)
		}
	}

	// Baseline platform reports nothing.
	plb := MustNew(Config{})
	defer plb.Shutdown()
	if plb.TaintSummary() != nil || plb.TaintedRanges() != nil {
		t.Error("baseline platform must report no taint")
	}
}
