package soc

import (
	"errors"
	"reflect"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
)

// decoupledLeakSrc programs a DMA copy of the secret (a bus-initiated tag
// move that exercises the decoupled front end's memory-rescan hook) and then
// leaks the copy to the UART.
const decoupledLeakSrc = `
main:
	li t0, DMA_BASE
	la t1, secret
	sw t1, DMA_SRC(t0)
	la t1, scratch
	sw t1, DMA_DST(t0)
	li t1, 4
	sw t1, DMA_LEN(t0)
	li t1, 1
	sw t1, DMA_CTRL(t0)
	la t0, scratch
	lbu t1, 0(t0)
	li t0, UART_BASE
	sw t1, UART_TX(t0)    # leaked copy -> violation
	li a0, 0
	j exit
	.data
	.align 2
secret:	.word 0x11223344
scratch:
	.word 0
`

func TestDecoupledPlatformParity(t *testing.T) {
	img := guest.MustProgram(decoupledLeakSrc)
	l := core.IFP1()
	lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
	secret := img.MustSymbol("secret")
	pol := core.NewPolicy(l, lc).
		WithOutput("uart0.tx", lc).
		WithRegion(core.RegionRule{Name: "secret", Start: secret, End: secret + 4, Classify: true, Class: hc})

	run := func(decoupled bool) (*core.Violation, map[string]uint64, uint64) {
		t.Helper()
		pl := MustNew(Config{Policy: pol, DecoupledTaint: decoupled})
		defer pl.Shutdown()
		if err := pl.Load(img); err != nil {
			t.Fatal(err)
		}
		err := pl.Run(kernel.S)
		var v *core.Violation
		if !errors.As(err, &v) || v.Port != "uart0.tx" {
			t.Fatalf("decoupled=%v: err = %v, want uart0.tx violation", decoupled, err)
		}
		return v, pl.TaintSummary(), pl.Instret()
	}

	vi, si, ni := run(false)
	vd, sd, nd := run(true)

	if !reflect.DeepEqual(vi, vd) {
		t.Errorf("violation diverged:\ninline:    %+v\ndecoupled: %+v", vi, vd)
	}
	if !reflect.DeepEqual(si, sd) {
		t.Errorf("taint summary diverged:\ninline:    %v\ndecoupled: %v", si, sd)
	}
	if ni != nd {
		t.Errorf("instret diverged: inline %d decoupled %d", ni, nd)
	}
}

func TestDecoupledPlatformMetrics(t *testing.T) {
	img := guest.MustProgram(`
main:
	li a0, 0
	j exit
`)
	l := core.IFP1()
	lc := l.MustTag(core.ClassLC)
	pol := core.NewPolicy(l, lc)
	pl := MustNew(Config{Policy: pol, DecoupledTaint: true})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.S); err != nil {
		t.Fatal(err)
	}
	m := pl.MetricsSnapshot()
	for _, k := range []string{
		"dift.ring_occupancy", "dift.stall_ns_total", "dift.suppressed_total",
		"dift.emitted_total", "dift.drains_total", "dift.backpressure_total",
		"dift.cleaned_blocks_total", "dift.live_regs", "dift.dirty_blocks",
	} {
		if _, ok := m[k]; !ok {
			t.Errorf("metrics missing %q", k)
		}
	}
	if m["dift.ring_occupancy"] != 0 {
		t.Errorf("ring occupancy = %d after run, want 0 (drained)", m["dift.ring_occupancy"])
	}

	// The inline platform must not grow the keys.
	pli := MustNew(Config{Policy: pol})
	defer pli.Shutdown()
	if _, ok := pli.MetricsSnapshot()["dift.emitted_total"]; ok {
		t.Error("inline platform reports decoupled metrics")
	}
}
