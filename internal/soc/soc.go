// Package soc assembles the complete virtual prototype: CPU, tainted RAM,
// TLM bus, and the peripheral set (UART, sensor, CLINT, interrupt
// controller, DMA, CAN, AES, SysCtrl), mirroring the RISC-V VP platform the
// paper builds on.
//
// Two platform flavours exist, selected by Config.Policy:
//
//   - Policy == nil — the baseline "VP": plain core, plain memory, no tag
//     tracking. This is the reference for Table II.
//   - Policy != nil — "VP+": TaintCore over tainted memory, with the policy
//     encoded into the platform: load-time classification, peripheral input
//     classes, output/input clearances, execution clearance, and the AES
//     declassifier.
package soc

import (
	"errors"
	"fmt"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/flight"
	"vpdift/internal/kernel"
	"vpdift/internal/mem"
	"vpdift/internal/obs"
	"vpdift/internal/periph"
	"vpdift/internal/rv32"
	"vpdift/internal/telemetry"
	"vpdift/internal/tlm"
	"vpdift/internal/trace"
)

// Memory map of the platform.
const (
	CLINTBase   = 0x02000000
	IntCBase    = 0x0C000000
	UARTBase    = 0x10000000
	SysCtrlBase = 0x11000000
	CANBase     = 0x40000000
	SensorBase  = 0x50000000
	AESBase     = 0x60000000
	DMABase     = 0x70000000
	RAMBase     = 0x80000000
)

// External interrupt source numbers on the IntC.
const (
	IRQUart   = 1
	IRQSensor = 2
	IRQCan    = 3
	IRQDma    = 4
)

// DefaultRAMSize is 8 MiB, plenty for every guest in this repository.
const DefaultRAMSize = 8 << 20

// DefaultQuantum is the number of instructions the CPU executes between
// kernel synchronizations (the TLM loosely-timed quantum).
const DefaultQuantum = 4096

// DefaultInstrTime models a 100 MHz single-issue core: 10 ns per
// instruction.
const DefaultInstrTime = 10 * kernel.NS

// Config parameterizes platform construction.
type Config struct {
	// Policy enables DIFT (VP+) when non-nil. It must validate.
	Policy *core.Policy
	// RAMSize defaults to DefaultRAMSize.
	RAMSize uint32
	// Quantum defaults to DefaultQuantum instructions.
	Quantum uint64
	// InstrTime defaults to DefaultInstrTime.
	InstrTime kernel.Time
	// TaintMemViaTLM routes every VP+ data access through full TLM
	// transactions instead of the direct memory path, matching the
	// memory-interface organization the paper describes for its DIFT
	// platform. Ignored on the baseline VP.
	TaintMemViaTLM bool
	// DecoupledTaint splits the VP+ into a fast ISS front end and a
	// parallel taint-monitor goroutine fed through a lock-free ring
	// (internal/dift): tag propagation runs off the critical path, and the
	// ISS stalls only at clearance points and explicit sync points.
	// Verdicts, violations and final tag state are identical to the inline
	// VP+. Ignored on the baseline VP.
	DecoupledTaint bool
	// NoDecodeCache disables the predecoded-instruction cache on whichever
	// core the platform builds — every fetch decodes (and, on the VP+,
	// tag-folds) from RAM again. For ablation benchmarks.
	NoDecodeCache bool
	// Obs, when non-nil, is attached to the platform and wired through every
	// layer: core hooks, peripheral I/O, load-time classification roots, and
	// bus monitors on the data-carrying peripherals. Nil (the default) keeps
	// all hook sites on their one-branch fast path.
	Obs *obs.Observer
	// Trace, when non-nil with at least one view enabled, wires the
	// simulation-side observability layer: kernel/bus event recording
	// (Trace.Kernel), waveform probes over CPU and peripheral state
	// (Trace.VCD), and the guest hot-path profiler (Trace.Prof). Nil keeps
	// every hook site on its one-branch fast path.
	Trace *trace.Trace
	// Cover, when non-nil with at least one view enabled, wires the
	// coverage-observability layer: guest block/edge coverage (Cover.Guest),
	// taint heatmaps and register occupancy (Cover.Taint), and the policy
	// audit with per-lattice-edge hit counters (Cover.Audit). On the
	// baseline VP only the guest view applies. Nil keeps the cores'
	// post-retire hook on its one-branch fast path.
	Cover *cover.Cover
	// Telemetry, when non-nil, runs a periodic metrics sampler on a kernel
	// daemon thread: every Sampler.Options().Every of simulated time it
	// snapshots MetricsSnapshotInto into its bounded ring. Daemon threads
	// never keep an unbounded Run alive, so enabling telemetry does not
	// change when a simulation ends. Nil (the default) spawns nothing.
	Telemetry *telemetry.Sampler
	// Flight is the always-on flight recorder (internal/flight): a small
	// overwrite-oldest ring of per-retire records plus IRQ/trap/bus marks,
	// frozen into a forensic bundle when the run stops on a violation or
	// guest fault (see forensics.go). Nil selects a default-sized recorder;
	// FlightOff disables capture entirely (the recorder-off flavour of the
	// perf guard).
	Flight    *flight.Recorder
	FlightOff bool
}

// Platform is a constructed virtual prototype.
type Platform struct {
	Sim *kernel.Simulator
	Bus *tlm.Bus

	UART    *periph.UART
	Sensor  *periph.Sensor
	CLINT   *periph.CLINT
	IntC    *periph.IntC
	DMA     *periph.DMA
	CAN     *periph.CAN
	AES     *periph.AES
	SysCtrl *periph.SysCtrl

	// Exactly one of the two cores is non-nil.
	Core      *rv32.Core
	TaintCore *rv32.TaintCore

	policy   *core.Policy
	ram      *mem.Memory      // VP+ RAM
	plainRAM *mem.PlainMemory // VP RAM

	cfg      Config
	irqEvent *kernel.Event
	exited   bool
	exitCode uint32
	loaded   bool

	// monitors are the TLM monitors wrapped around data-carrying peripherals
	// when an observer is attached, kept so MetricsSnapshot can report how
	// many transactions each one dropped past its log limit.
	monitors []namedMonitor

	// lastBundle is the forensic bundle stashed by the first terminal
	// violation or fault (see forensics.go); later Run calls on the stopped
	// platform keep the original evidence.
	lastBundle *flight.Bundle

	// imgDigest and lastErr feed the coverage snapshot's run identity and
	// verdict (see coversnap.go): the loaded image's content hash and the
	// first terminal Run error.
	imgDigest string
	lastErr   error
}

type namedMonitor struct {
	name string
	key  string // "bus.monitor_dropped."+name, precomputed so snapshots don't concat
	m    *tlm.Monitor
}

// New builds a platform. The baseline VP is built when cfg.Policy is nil.
func New(cfg Config) (*Platform, error) {
	if cfg.RAMSize == 0 {
		cfg.RAMSize = DefaultRAMSize
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = DefaultQuantum
	}
	if cfg.InstrTime == 0 {
		cfg.InstrTime = DefaultInstrTime
	}
	// The flight recorder is on by default: a fixed ~96 KiB ring is the
	// price of having forensics for every verdict anywhere in a fleet.
	if cfg.FlightOff {
		cfg.Flight = nil
	} else if cfg.Flight == nil {
		cfg.Flight = flight.New(0)
	}
	pl := &Platform{
		Sim: kernel.New(),
		Bus: tlm.NewBus(),
		cfg: cfg,
	}
	pl.irqEvent = pl.Sim.NewEvent("irq")

	// Simulation-side tracing hooks in before any process spawns so thread
	// creation is part of the record; the bus hook lands every transaction on
	// the same stream.
	if cfg.Trace.Active() {
		pl.Sim.SetTracer(cfg.Trace)
		if kt := cfg.Trace.Kernel; kt != nil {
			pl.Bus.Trace = kt.BusHook(pl.Sim)
		}
	}

	env := &periph.Env{Sim: pl.Sim}
	pol := cfg.Policy
	if pol != nil {
		if err := pol.Validate(); err != nil {
			return nil, fmt.Errorf("soc: %w", err)
		}
		pl.policy = pol
		env.Lat = pol.L
		env.Default = pol.Default
	}

	// CPU and RAM.
	var setIRQ func(line uint32, level bool)
	if pol == nil {
		pl.plainRAM = mem.NewPlain(cfg.RAMSize)
		pl.Core = rv32.NewCore(pl.plainRAM, RAMBase, pl.Bus)
		if cfg.NoDecodeCache {
			pl.Core.DisableDecodeCache()
		}
		setIRQ = func(line uint32, level bool) {
			pl.Core.SetIRQ(line, level)
			if level {
				if fr := pl.cfg.Flight; fr != nil {
					fr.MarkIRQ(pl.Core.Instret, line)
				}
				pl.irqEvent.Notify(0)
			}
		}
	} else {
		pl.ram = mem.New(cfg.RAMSize, pol.Default)
		pl.TaintCore = rv32.NewTaintCore(pl.ram, RAMBase, pl.Bus, pol)
		pl.TaintCore.ForceBusMem = cfg.TaintMemViaTLM
		if cfg.NoDecodeCache {
			pl.TaintCore.DisableDecodeCache()
		}
		if cfg.DecoupledTaint {
			pl.TaintCore.EnableDecoupledTaint()
			// Bus-initiated writes (DMA, TLM targets) mutate byte tags
			// behind the front end's memory flag cache; rescan the blocks
			// they touch. They only run between CPU quanta, after Run's
			// mandatory drain, so the monitor is quiescent.
			pl.ram.AddWriteHook(pl.TaintCore.DecoupledMemWrite)
		}
		setIRQ = func(line uint32, level bool) {
			pl.TaintCore.SetIRQ(line, level)
			if level {
				if fr := pl.cfg.Flight; fr != nil {
					fr.MarkIRQ(pl.TaintCore.Instret, line)
				}
				pl.irqEvent.Notify(0)
			}
		}
	}
	// Flight recorder: wire the retire path into whichever core was built
	// and chain an MMIO mark onto the TLM trace hook. RAM-range traffic is
	// filtered out — under TaintMemViaTLM every data access is a bus
	// transaction and would evict the instruction window the bundle is for.
	if fr := pl.cfg.Flight; fr != nil {
		if pl.Core != nil {
			pl.Core.FR = fr
		} else {
			pl.TaintCore.FR = fr
		}
		prev := pl.Bus.Trace
		pl.Bus.Trace = func(name string, p *tlm.Payload) {
			if prev != nil {
				prev(name, p)
			}
			if name != "ram" {
				fr.MarkBus(pl.Instret(), name, p.Addr, p.Cmd == tlm.Write, len(p.Data))
			}
		}
	}
	if cfg.Trace != nil && cfg.Trace.Prof != nil {
		if pl.Core != nil {
			pl.Core.Retire = cfg.Trace.Prof.OnRetire
		} else {
			pl.TaintCore.Retire = cfg.Trace.Prof.OnRetire
		}
	}

	// Observability: attach the observer to simulated time and the security
	// context, register peripheral base addresses for MMIO provenance, and
	// route the lattice's LUB counter into the metrics.
	if o := cfg.Obs; o != nil {
		var lat *core.Lattice
		var def core.Tag
		if pol != nil {
			lat, def = pol.L, pol.Default
			pol.L.SetLUBCounter(o.LUBCounter())
		}
		o.Attach(func() uint64 { return uint64(pl.Sim.Now()) }, lat, def)
		env.Obs = o
		if pl.Core != nil {
			// The baseline core has no taint to record; its only hook is the
			// per-retire EvExec event, so wire it only when tracing is on.
			if o.TracesExec() {
				pl.Core.Obs = o
			}
		} else {
			pl.TaintCore.Obs = o
		}
		o.RegisterPort("uart0", UARTBase)
		o.RegisterPort("can0", CANBase)
		o.RegisterPort("sensor0", SensorBase)
		o.RegisterPort("aes0", AESBase)
		o.RegisterPort("dma0", DMABase)
	}

	// Interrupt fabric.
	pl.CLINT = periph.NewCLINT(env,
		func(lv bool) { setIRQ(rv32.IntMTI, lv) },
		func(lv bool) { setIRQ(rv32.IntMSI, lv) })
	pl.IntC = periph.NewIntC(env, func(lv bool) { setIRQ(rv32.IntMEI, lv) })

	// Peripherals.
	pl.UART = periph.NewUART(env, "uart0", pl.IntC.Source(IRQUart))
	pl.Sensor = periph.NewSensor(env, "sensor0", pl.IntC.Source(IRQSensor))
	pl.CAN = periph.NewCAN(env, "can0", pl.IntC.Source(IRQCan))
	pl.DMA = periph.NewDMA(env, pl.Bus, "dma0", pl.IntC.Source(IRQDma))
	var decl *core.Declassifier
	if pol != nil {
		decl = core.NewDeclassifier(pol.L)
	}
	pl.AES = periph.NewAES(env, "aes0", decl)
	pl.SysCtrl = periph.NewSysCtrl(env, func(code uint32) {
		pl.exited = true
		pl.exitCode = code
		if pl.Core != nil {
			pl.Core.Halted = true
		} else {
			pl.TaintCore.Halted = true
		}
	})

	// Encode the policy into the peripherals.
	if pol != nil {
		if t, ok := pol.OutputClearance("uart0.tx"); ok {
			pl.UART.SetTxClearance(t)
		}
		if t, ok := pol.OutputClearance("can0.tx"); ok {
			pl.CAN.SetTxClearance(t)
		}
		if t, ok := pol.OutputClearance("aes0.in"); ok {
			pl.AES.SetInputClearance(t)
		}
		pl.UART.SetRxClass(pol.InputClass("uart0.rx"))
		pl.CAN.SetRxClass(pol.InputClass("can0.rx"))
		pl.Sensor.SetDataTag(pol.InputClass("sensor0.data"))
		pl.AES.SetOutputClass(pol.InputClass("aes0.out"))
	}

	// Memory map. With an observer attached, the data-carrying peripherals
	// get a TLM monitor in front so their transactions land in the event
	// stream; the interrupt fabric and SysCtrl stay unwrapped (pure control).
	mapData := func(name string, base, size uint32, t tlm.Target) {
		if cfg.Obs != nil {
			m := tlm.NewMonitor(t, pl.Sim, 1)
			m.OnTransaction = cfg.Obs.BusSink(name)
			pl.monitors = append(pl.monitors, namedMonitor{
				name: name, key: "bus.monitor_dropped." + name, m: m,
			})
			t = m
		}
		pl.Bus.MustMap(name, base, size, t)
	}
	pl.Bus.MustMap("clint", CLINTBase, periph.CLINTSize, pl.CLINT)
	pl.Bus.MustMap("intc", IntCBase, periph.IntCSize, pl.IntC)
	mapData("uart0", UARTBase, periph.UARTSize, pl.UART)
	pl.Bus.MustMap("sysctrl", SysCtrlBase, periph.SysCtrlSize, pl.SysCtrl)
	mapData("can0", CANBase, periph.CANSize, pl.CAN)
	mapData("sensor0", SensorBase, periph.SensorSize, pl.Sensor)
	mapData("aes0", AESBase, periph.AESSize, pl.AES)
	mapData("dma0", DMABase, periph.DMASize, pl.DMA)
	if pol == nil {
		pl.Bus.MustMap("ram", RAMBase, cfg.RAMSize, pl.plainRAM)
	} else {
		pl.Bus.MustMap("ram", RAMBase, cfg.RAMSize, pl.ram)
	}

	// Default waveform probes: the CPU program counter plus the externally
	// visible peripheral state. Guests add memory and tag probes via
	// AddMemProbe / AddTagProbe before Run.
	if cfg.Trace != nil && cfg.Trace.VCD != nil {
		v := cfg.Trace.VCD
		if pl.Core != nil {
			v.AddProbe("cpu_pc", 32, func() uint64 { return uint64(pl.Core.PC) })
		} else {
			v.AddProbe("cpu_pc", 32, func() uint64 { return uint64(pl.TaintCore.PC) })
		}
		v.AddProbe("uart0_rx_pending", 8, func() uint64 { return uint64(pl.UART.RxPending()) })
		v.AddProbe("uart0_tx_count", 16, func() uint64 { return uint64(pl.UART.TxCount()) })
		v.AddProbe("uart0_last_tx", 8, func() uint64 { return uint64(pl.UART.LastTx()) })
		v.AddProbe("sensor0_frames", 16, func() uint64 { return pl.Sensor.Frames() })
		v.AddProbe("intc_pending", 32, func() uint64 { return uint64(pl.IntC.Pending()) })
		v.AddProbe("intc_enable", 32, func() uint64 { return uint64(pl.IntC.Enabled()) })
		v.AddProbe("dma0_busy", 1, func() uint64 {
			if pl.DMA.Busy() {
				return 1
			}
			return 0
		})
		v.AddProbe("dma0_transfers", 16, func() uint64 { return uint64(pl.DMA.Transfers()) })
	}

	// Coverage observability: size the requested views against this
	// platform's geometry and hand the bundle to the core. The audit
	// installs its lattice counters here — after all wiring-time queries
	// (Top, clearance encoding) — so setup noise does not pollute the run's
	// per-edge counts.
	if cv := cfg.Cover; cv.Active() {
		if cv.Guest != nil {
			cv.Guest.Configure(RAMBase, cfg.RAMSize)
		}
		if pol == nil {
			pl.Core.Cov = cv
		} else {
			if cv.Taint != nil {
				cv.Taint.Configure(RAMBase, cfg.RAMSize, pol.L, pol.Default)
				// CPU stores report through the core's cover hook; this hook
				// catches the bus-initiated writes (DMA, TLM) that bypass it.
				ram := pl.ram
				pl.ram.AddWriteHook(func(start, end uint32) {
					cv.Taint.OnMemWrite(ram.Data()[start:end], start)
				})
			}
			if cv.Audit != nil {
				cv.Audit.Configure(pol)
				env.Audit = cv.Audit
			}
			pl.TaintCore.Cov = cv
		}
	}

	pl.spawnCPU()

	// Live telemetry rides on a daemon thread spawned after the CPU so the
	// first tick observes a platform that has already started executing.
	if cfg.Telemetry != nil {
		cfg.Telemetry.Start(pl.Sim, pl.MetricsSnapshotInto)
	}
	return pl, nil
}

// Cover returns the attached coverage bundle, nil when coverage is off.
func (pl *Platform) Cover() *cover.Cover { return pl.cfg.Cover }

// Trace returns the attached trace bundle, nil when simulation-side tracing
// is off.
func (pl *Platform) Trace() *trace.Trace { return pl.cfg.Trace }

// AddMemProbe registers a waveform probe on the 32-bit little-endian RAM
// word at bus address addr. Call before Run; requires an attached VCD view.
func (pl *Platform) AddMemProbe(name string, addr uint32) error {
	if pl.cfg.Trace == nil || pl.cfg.Trace.VCD == nil {
		return fmt.Errorf("soc: no VCD view attached")
	}
	off := addr - RAMBase
	if addr < RAMBase || uint64(off)+4 > uint64(pl.cfg.RAMSize) {
		return fmt.Errorf("soc: mem probe 0x%08x outside RAM", addr)
	}
	read := func() uint64 {
		var w uint32
		if pl.Core != nil {
			d := pl.plainRAM.Data()
			w = uint32(d[off]) | uint32(d[off+1])<<8 | uint32(d[off+2])<<16 | uint32(d[off+3])<<24
		} else {
			d := pl.ram.Data()
			w = uint32(d[off].V) | uint32(d[off+1].V)<<8 | uint32(d[off+2].V)<<16 | uint32(d[off+3].V)<<24
		}
		return uint64(w)
	}
	pl.cfg.Trace.VCD.AddProbe(name, 32, read)
	return nil
}

// AddTagProbe registers a waveform probe on the security tag of the RAM
// byte at bus address addr — the per-location DIFT state as a waveform. VP+
// only; call before Run.
func (pl *Platform) AddTagProbe(name string, addr uint32) error {
	if pl.cfg.Trace == nil || pl.cfg.Trace.VCD == nil {
		return fmt.Errorf("soc: no VCD view attached")
	}
	if pl.ram == nil {
		return fmt.Errorf("soc: tag probes need the VP+ (taint) platform")
	}
	off := addr - RAMBase
	if addr < RAMBase || uint64(off) >= uint64(pl.cfg.RAMSize) {
		return fmt.Errorf("soc: tag probe 0x%08x outside RAM", addr)
	}
	pl.cfg.Trace.VCD.AddProbe(name, 8, func() uint64 {
		return uint64(pl.ram.Data()[off].T)
	})
	return nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Platform {
	pl, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return pl
}

// spawnCPU starts the CPU process: execute a quantum, advance simulated
// time, repeat; on WFI sleep until an interrupt line rises.
func (pl *Platform) spawnCPU() {
	pl.Sim.Spawn("cpu", func(p *kernel.Proc) {
		for {
			var delay kernel.Time
			var n uint64
			var st rv32.RunStatus
			var err error
			if pl.Core != nil {
				n, st, err = pl.Core.Run(pl.cfg.Quantum, &delay)
			} else {
				n, st, err = pl.TaintCore.Run(pl.cfg.Quantum, &delay)
			}
			if err != nil {
				p.Fatal(err)
			}
			advance := kernel.Time(n)*pl.cfg.InstrTime + delay
			switch st {
			case rv32.RunHalt:
				p.Stop()
			case rv32.RunWFI:
				if fr := pl.cfg.Flight; fr != nil {
					fr.MarkEvent(pl.Instret(), "wfi-sleep")
				}
				if advance > 0 {
					p.Wait(advance)
				}
				for !pl.pendingIRQ() && !pl.Sim.Stopped() {
					p.WaitEvent(pl.irqEvent)
				}
			default:
				p.Wait(advance)
			}
		}
	})
}

func (pl *Platform) pendingIRQ() bool {
	if pl.Core != nil {
		return pl.Core.PendingIRQ()
	}
	return pl.TaintCore.PendingIRQ()
}

// Load places a program image into RAM and points the CPU at its entry. On
// the DIFT platform every loaded byte is classified per the policy's region
// rules (program text typically HI, key material HC/HI, everything else the
// default class); classification rules also apply to untouched RAM such as
// zero-initialized key buffers.
func (pl *Platform) Load(img *asm.Image) error {
	if pl.loaded {
		return fmt.Errorf("soc: image already loaded")
	}
	flat := img.Flatten()
	if img.Base < RAMBase {
		return fmt.Errorf("soc: image base 0x%x below RAM base 0x%x", img.Base, RAMBase)
	}
	pl.imgDigest = imageDigest(img, flat)
	offset := img.Base - RAMBase
	// The profiler and the coverage reports symbolize against the loaded
	// image.
	if pl.cfg.Trace != nil && pl.cfg.Trace.Prof != nil {
		pl.cfg.Trace.Prof.SetImage(img)
	}
	if cv := pl.cfg.Cover; cv != nil && cv.Guest != nil {
		cv.Guest.SetImage(img)
	}
	if pl.Core != nil {
		if err := pl.plainRAM.Load(offset, flat); err != nil {
			return err
		}
		pl.Core.PC = img.Entry
		pl.loaded = true
		return nil
	}
	pol := pl.policy
	data := pl.ram.Data()
	if uint64(offset)+uint64(len(flat)) > uint64(len(data)) {
		return fmt.Errorf("soc: image of %d bytes does not fit RAM", len(flat))
	}
	for i, b := range flat {
		addr := img.Base + uint32(i)
		data[offset+uint32(i)] = core.TByte{V: b, T: pol.ClassifyAt(addr)}
	}
	// Classification rules may also cover RAM outside the image.
	for i := range pol.Regions {
		r := &pol.Regions[i]
		if !r.Classify {
			continue
		}
		for a := r.Start; a < r.End; a++ {
			off := a - RAMBase
			if off < uint32(len(data)) && (a < img.Base || a >= img.Base+uint32(len(flat))) {
				data[off].T = r.Class
			}
		}
	}
	// Load-time classification is where every provenance chain begins: pin
	// one never-evicted root event per classified region so chains survive
	// arbitrarily long runs.
	if pl.cfg.Obs != nil {
		for i := range pol.Regions {
			r := &pol.Regions[i]
			if r.Classify && r.Class != pol.Default {
				pl.cfg.Obs.PinClassify(r.Name, r.Start, r.End, r.Class)
			}
		}
	}
	// Seed the taint heatmap's shadow tags from the classified RAM so the
	// classification roots count as ever-tainted without counting as churn.
	if cv := pl.cfg.Cover; cv != nil && cv.Taint != nil {
		cv.Taint.InitFromRAM(data)
	}
	// The image and classification rules were written through the raw Data()
	// slice, which bypasses the RAM write hooks; drop any predecoded
	// entries explicitly.
	pl.TaintCore.InvalidateDecodeCache(0, pl.ram.Size())
	pl.TaintCore.PC = img.Entry
	pl.loaded = true
	return nil
}

// Run advances the simulation until the guest exits, a violation or error
// stops it, or the horizon passes. It returns the stopping error (a
// *core.Violation for policy violations), or nil on clean exit/horizon.
func (pl *Platform) Run(horizon kernel.Time) error {
	if !pl.loaded {
		return fmt.Errorf("soc: no image loaded")
	}
	err := pl.Sim.Run(horizon)
	// The violating instruction never retires (the core returns early past
	// its cover hook), so attribute terminal violations to their clearance
	// point here.
	if cv := pl.cfg.Cover; err != nil && cv != nil && cv.Audit != nil {
		var v *core.Violation
		if errors.As(err, &v) {
			cv.Audit.NoteViolation(v)
		}
	}
	// Freeze the forensic evidence at the first terminal error: append the
	// violating/faulting instruction as the window's last record and stash
	// the bundle (see forensics.go).
	if err != nil {
		if pl.lastErr == nil {
			pl.lastErr = err
		}
		pl.noteForensics(err)
	}
	return err
}

// Shutdown releases the platform's kernel processes (and, in decoupled-taint
// mode, drains and stops the monitor goroutine). The platform must not be
// used afterwards.
func (pl *Platform) Shutdown() {
	if pl.TaintCore != nil {
		pl.TaintCore.StopDecoupled()
	}
	pl.Sim.Shutdown()
}

// Exited reports whether the guest powered off, with its exit code.
func (pl *Platform) Exited() (bool, uint32) { return pl.exited, pl.exitCode }

// Instret returns the number of instructions executed so far.
func (pl *Platform) Instret() uint64 {
	if pl.Core != nil {
		return pl.Core.Instret
	}
	return pl.TaintCore.Instret
}

// IsDIFT reports whether this is the VP+ (taint-tracking) flavour.
func (pl *Platform) IsDIFT() bool { return pl.TaintCore != nil }

// MetricsSnapshot returns the platform's simulation gauges merged with the
// observer's counters (when one is attached): instructions retired,
// simulated nanoseconds, decode-cache hit/miss statistics, per-monitor
// dropped-transaction counts, trace-subsystem gauges, plus every obs.* /
// checks.* / bus.* / violations.* counter. The decode-cache and monitor
// gauges are also pushed into the observer's Metrics registry so they ride
// along wherever that registry is exported.
func (pl *Platform) MetricsSnapshot() map[string]uint64 {
	m := make(map[string]uint64, 64)
	pl.MetricsSnapshotInto(m)
	return m
}

// MetricsSnapshotInto fills dst with the same merged view as MetricsSnapshot
// without allocating: every key written here is either a constant, a
// pre-concatenated monitor key, or comes from the observer's own
// allocation-free SnapshotInto. The telemetry sampler calls this once per
// tick into a reused map, so a long run must not churn garbage per sample.
// Platform gauges are written after the observer's counters, so on a key
// collision the platform's value wins.
func (pl *Platform) MetricsSnapshotInto(m map[string]uint64) {
	if pl.cfg.Obs != nil {
		pl.cfg.Obs.MetricsSnapshotInto(m)
	}
	m["sim.instret"] = pl.Instret()
	m["sim.time_ns"] = uint64(pl.Sim.Now())

	// Decode-cache statistics. Hits are derived, not counted on the hot
	// path: every retired instruction fetched through the cache except the
	// fills and the uncached fetches. IRQ-taken steps retire without a
	// fetch, so clamp the difference.
	var fills, uncached uint64
	if pl.Core != nil {
		fills, uncached = pl.Core.DecodeCacheStats()
	} else {
		fills, uncached = pl.TaintCore.DecodeCacheStats()
	}
	misses := fills + uncached
	var hits uint64
	if total := pl.Instret(); total > misses {
		hits = total - misses
	}
	m["sim.decode_cache_fills"] = fills
	m["sim.decode_cache_hits"] = hits
	m["sim.decode_cache_misses"] = misses

	// Decoupled taint-monitor statistics. The sampler runs between CPU
	// quanta, after Run's mandatory drain, so the counters are exact and the
	// ring occupancy it reports is the post-drain value (zero unless sampled
	// mid-violation).
	if pl.TaintCore != nil {
		if s, ok := pl.TaintCore.DecoupledStats(); ok {
			m["dift.ring_occupancy"] = uint64(s.RingOccupancy)
			m["dift.stall_ns_total"] = s.StallNs
			m["dift.suppressed_total"] = s.Suppressed
			m["dift.emitted_total"] = s.Emitted
			m["dift.drains_total"] = s.Drains
			m["dift.backpressure_total"] = s.Backpressure
			m["dift.cleaned_blocks_total"] = s.CleanedBlocks
			m["dift.live_regs"] = uint64(s.LiveRegs)
			m["dift.dirty_blocks"] = uint64(s.DirtyBlocks)
		}
	}

	// Flight-recorder statistics. The capture cost is calibrated once per
	// process (a timed loop over a throwaway ring), not measured in the hot
	// path — measuring would cost more than the capture.
	if fr := pl.cfg.Flight; fr != nil {
		m["flight.ring_occupancy"] = uint64(fr.Len())
		m["flight.ring_size"] = uint64(fr.Size())
		m["flight.captured_total"] = fr.Captured()
		m["flight.dropped_total"] = fr.Dropped()
		m["flight.bundles_total"] = fr.Bundles()
		m["flight.capture_cost_ns"] = flight.CaptureCostNs()
	}

	// Bus-monitor drop counts (observer-attached platforms only).
	var dropped uint64
	for _, nm := range pl.monitors {
		d := nm.m.Dropped()
		m[nm.key] = d
		dropped += d
	}
	if pl.monitors != nil {
		m["bus.monitor_dropped"] = dropped
	}

	if t := pl.cfg.Trace; t.Active() {
		if t.Kernel != nil {
			m["trace.kernel_events"] = t.Kernel.EventCount()
			m["trace.kernel_dropped"] = t.Kernel.Dropped()
		}
		if t.VCD != nil {
			m["trace.vcd_changes"] = uint64(t.VCD.Changes())
		}
		if t.Prof != nil {
			m["trace.prof_retired"] = t.Prof.Total()
		}
	}

	if cv := pl.cfg.Cover; cv.Active() {
		if cv.Guest != nil {
			s := cv.Guest.Stats()
			m["cover.guest_insns"] = uint64(s.Insns)
			m["cover.guest_insns_covered"] = uint64(s.InsnsCovered)
			m["cover.guest_blocks"] = uint64(s.Blocks)
			m["cover.guest_blocks_covered"] = uint64(s.BlocksCovered)
			m["cover.guest_edges"] = uint64(s.Edges)
			m["cover.guest_edges_covered"] = uint64(s.EdgesCovered)
		}
		if cv.Taint != nil && pl.ram != nil {
			m["cover.taint_ever_bytes"] = cv.Taint.EverTainted()
			m["cover.taint_churn"] = cv.Taint.ChurnTotal()
		}
		if cv.Audit != nil && cv.Audit.Configured() {
			m["cover.audit_fetch_checks"] = cv.Audit.Fetch.Checks
			m["cover.audit_branch_checks"] = cv.Audit.Branch.Checks
			m["cover.audit_memaddr_checks"] = cv.Audit.MemAddr.Checks
			m["cover.audit_dead_rules"] = uint64(cv.Audit.DeadRuleCount())
		}
	}

	// Mirror the derived gauges into the observer's registry.
	if o := pl.cfg.Obs; o != nil {
		reg := o.Metrics()
		*reg.Counter("sim.decode_cache_fills") = fills
		*reg.Counter("sim.decode_cache_hits") = hits
		*reg.Counter("sim.decode_cache_misses") = misses
		*reg.Counter("bus.monitor_dropped") = dropped
	}
}

// Observer returns the attached observer, nil when observability is off.
func (pl *Platform) Observer() *obs.Observer { return pl.cfg.Obs }

// Telemetry returns the attached metrics sampler, nil when telemetry is off.
func (pl *Platform) Telemetry() *telemetry.Sampler { return pl.cfg.Telemetry }

// Now returns the current simulated time.
func (pl *Platform) Now() kernel.Time { return pl.Sim.Now() }

// TaintSummary counts RAM bytes per security class — a debugging aid for
// policy development ("how far did the secret spread?"). It returns nil on
// the baseline platform.
func (pl *Platform) TaintSummary() map[string]uint64 {
	if pl.ram == nil {
		return nil
	}
	counts := make([]uint64, pl.policy.L.Size())
	for _, b := range pl.ram.Data() {
		if int(b.T) < len(counts) {
			counts[b.T]++
		}
	}
	out := make(map[string]uint64, len(counts))
	for tag, n := range counts {
		if n > 0 {
			out[pl.policy.L.Name(core.Tag(tag))] = n
		}
	}
	return out
}

// TaintedRanges lists the maximal RAM ranges whose bytes carry a class
// other than the policy default, as "[start, end) CLASS" strings in address
// order. Empty on the baseline platform.
func (pl *Platform) TaintedRanges() []string {
	if pl.ram == nil {
		return nil
	}
	var out []string
	data := pl.ram.Data()
	def := pl.policy.Default
	i := 0
	for i < len(data) {
		if data[i].T == def {
			i++
			continue
		}
		tag := data[i].T
		start := i
		for i < len(data) && data[i].T == tag {
			i++
		}
		out = append(out, fmt.Sprintf("[0x%08x, 0x%08x) %s",
			RAMBase+uint32(start), RAMBase+uint32(i), pl.policy.L.Name(tag)))
	}
	return out
}

// ReadRAM copies size bytes of RAM at the given bus address (values only).
func (pl *Platform) ReadRAM(addr, size uint32) ([]byte, error) {
	if addr < RAMBase {
		return nil, fmt.Errorf("soc: 0x%x below RAM", addr)
	}
	off := addr - RAMBase
	if pl.Core != nil {
		d := pl.plainRAM.Data()
		if uint64(off)+uint64(size) > uint64(len(d)) {
			return nil, fmt.Errorf("soc: read beyond RAM")
		}
		return append([]byte(nil), d[off:off+size]...), nil
	}
	d := pl.ram.Data()
	if uint64(off)+uint64(size) > uint64(len(d)) {
		return nil, fmt.Errorf("soc: read beyond RAM")
	}
	out := make([]byte, size)
	for i := range out {
		out[i] = d[off+uint32(i)].V
	}
	return out, nil
}
