package soc

// Post-mortem forensics: freezing the flight recorder's window into a
// self-contained bundle. The platform owns this step because it is the one
// layer that sees every ingredient at once — both core flavours' register
// files, the tainted RAM, the policy identity, and the stopping error.

import (
	"errors"
	"fmt"
	"runtime"
	"strings"

	"vpdift/internal/core"
	"vpdift/internal/flight"
	"vpdift/internal/rv32"
	"vpdift/internal/telemetry"
)

// noteForensics reacts to Run's terminal error: it appends the violating or
// faulting instruction as the window's last record (those instructions
// never retire, so the hot-loop capture missed them) and stashes the
// bundle. Only the first error is kept — re-running a stopped platform must
// not overwrite the original evidence.
func (pl *Platform) noteForensics(err error) {
	fr := pl.cfg.Flight
	if fr == nil || pl.lastBundle != nil {
		return
	}
	reason := "error"
	var (
		v  *core.Violation
		be *rv32.BusError
		te *rv32.TrapError
	)
	switch {
	case errors.As(err, &v):
		reason = "violation"
		fr.MarkViolation(pl.Instret(), v.PC, pl.insnAt(v.PC), v.Addr)
	case errors.As(err, &be):
		reason = "fault"
		fr.MarkFault(pl.Instret(), be.PC, pl.insnAt(be.PC), be.Addr)
	case errors.As(err, &te):
		reason = "fault"
		fr.MarkFault(pl.Instret(), te.PC, pl.insnAt(te.PC), te.Tval)
	}
	pl.lastBundle = pl.buildBundle(reason, err)
}

// LastForensics returns the bundle stashed by the first terminal violation
// or fault, nil when the run never failed (or the recorder is off).
func (pl *Platform) LastForensics() *flight.Bundle { return pl.lastBundle }

// FlightRecorder returns the attached flight recorder, nil when disabled.
func (pl *Platform) FlightRecorder() *flight.Recorder { return pl.cfg.Flight }

// Snapshot builds a forensic bundle of the current platform state on
// demand — horizon expiry, operator request, or any stop that is not a
// terminal error. Returns nil when the recorder is off.
func (pl *Platform) Snapshot(reason string) *flight.Bundle {
	if pl.cfg.Flight == nil {
		return nil
	}
	if reason == "" {
		reason = "snapshot"
	}
	return pl.buildBundle(reason, nil)
}

// buildBundle assembles the flight.Snapshot from platform state and freezes
// the recorder's window through it.
func (pl *Platform) buildBundle(reason string, err error) *flight.Bundle {
	s := &flight.Snapshot{
		Reason:    reason,
		Version:   telemetry.Version,
		GoVersion: runtime.Version(),
		SimNs:     uint64(pl.Sim.Now()),
		Instret:   pl.Instret(),
		Exited:    pl.exited,
		ExitCode:  pl.exitCode,
		RAMBase:   RAMBase,
		RAMSize:   pl.cfg.RAMSize,
		Mem:       pl.memWindow,
		Disasm:    rv32.Disassemble,
		Metrics:   pl.MetricsSnapshot(),
	}
	if pl.Core != nil {
		s.PC = pl.Core.PC
		for r := 0; r < 32; r++ {
			s.Regs[r] = flight.RegState{
				Name:  rv32.RegName(r),
				Value: flight.Hex32(pl.Core.Regs[r]),
			}
		}
	} else {
		s.PC = pl.TaintCore.PC
		lat, def := pl.policy.L, pl.policy.Default
		for r := 0; r < 32; r++ {
			w := pl.TaintCore.Regs[r]
			rs := flight.RegState{
				Name:  rv32.RegName(r),
				Value: flight.Hex32(w.V),
				Tag:   uint8(w.T),
			}
			if w.T != def {
				rs.Class = lat.Name(w.T)
			}
			s.Regs[r] = rs
		}
	}
	if pol := pl.policy; pol != nil {
		s.Policy = &flight.PolicyInfo{
			Classes: pol.L.Classes(),
			Default: pol.L.Name(pol.Default),
			Lattice: pol.L.String(),
		}
	}
	if err != nil {
		s.Violation, s.Fault = renderError(err)
	}
	return pl.cfg.Flight.Bundle(s)
}

// renderError classifies Run's stopping error into the bundle's violation /
// fault headline.
func renderError(err error) (*flight.ViolationInfo, *flight.FaultInfo) {
	var v *core.Violation
	if errors.As(err, &v) {
		vi := &flight.ViolationInfo{
			Kind:     v.Kind.String(),
			Have:     v.HaveClass(),
			Required: v.RequiredClass(),
			PC:       flight.Hex32(v.PC),
			Port:     v.Port,
			Message:  v.Error(),
		}
		if v.Addr != 0 {
			vi.Addr = flight.Hex32(v.Addr)
		}
		if v.Value != 0 {
			vi.Value = flight.Hex32(v.Value)
		}
		if rep := v.ProvenanceReport(nil); rep != "" {
			for _, line := range strings.Split(rep, "\n") {
				if line = strings.TrimSpace(line); line != "" {
					vi.Provenance = append(vi.Provenance, line)
				}
			}
		}
		return vi, nil
	}
	var be *rv32.BusError
	if errors.As(err, &be) {
		return nil, &flight.FaultInfo{
			Cause: "bus error: " + be.What,
			PC:    flight.Hex32(be.PC),
			Addr:  flight.Hex32(be.Addr),
		}
	}
	var te *rv32.TrapError
	if errors.As(err, &te) {
		return nil, &flight.FaultInfo{
			Cause: fmt.Sprintf("unhandled trap: cause=%d tval=0x%08x (mtvec not set)", te.Cause, te.Tval),
			PC:    flight.Hex32(te.PC),
		}
	}
	return nil, &flight.FaultInfo{Cause: err.Error()}
}

// insnAt refetches the instruction word at a bus address for the terminal
// mark; zero outside RAM.
func (pl *Platform) insnAt(pc uint32) uint32 {
	b, err := pl.ReadRAM(pc, 4)
	if err != nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// memWindow is the bundle builder's RAM reader: values on both platform
// flavours, per-byte tags on the VP+.
func (pl *Platform) memWindow(addr, size uint32) (data, tags []byte) {
	if addr < RAMBase {
		return nil, nil
	}
	off := addr - RAMBase
	if pl.Core != nil {
		d := pl.plainRAM.Data()
		if uint64(off)+uint64(size) > uint64(len(d)) {
			return nil, nil
		}
		return append([]byte(nil), d[off:off+size]...), nil
	}
	d := pl.ram.Data()
	if uint64(off)+uint64(size) > uint64(len(d)) {
		return nil, nil
	}
	data = make([]byte, size)
	tags = make([]byte, size)
	for i := uint32(0); i < size; i++ {
		data[i] = d[off+i].V
		tags[i] = byte(d[off+i].T)
	}
	return data, tags
}
