package soc

import (
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
)

// Self-modifying code through bus initiators: the decode caches are
// invalidated inline for the CPU's own direct-path stores, but writes that
// arrive over the TLM fabric — the DMA engine, or data stores routed
// through full transactions under TaintMemViaTLM — reach RAM behind the
// CPU's back and invalidate via the memory write hooks. These tests pin
// that hook path on both platforms.
//
// The guest calls victim (returns 1, warming the decode cache), rewrites
// victim's first instruction with `addi a0, x0, 7` via the path under
// test, calls victim again, and exits 0 only if the calls returned 1 and 7.
const smcDMAGuest = `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	call victim
	mv s0, a0            # 1
	li t0, DMA_BASE
	la t1, newinsn
	sw t1, DMA_SRC(t0)
	la t1, victim
	sw t1, DMA_DST(t0)
	li t1, 4
	sw t1, DMA_LEN(t0)
	li t1, 1
	sw t1, DMA_CTRL(t0)  # copy happens immediately in the model
	call victim          # must now return 7
	xori t0, a0, 7
	xori t1, s0, 1
	or a0, t0, t1        # 0 iff both calls returned as expected
	lw ra, 12(sp)
	addi sp, sp, 16
	ret

victim:
	li a0, 1
	ret

newinsn:
	li a0, 7             # the word DMA copies over victim's first insn
`

func runSMCGuest(t *testing.T, cfg Config, src string) {
	t.Helper()
	pl := MustNew(cfg)
	defer pl.Shutdown()
	if err := pl.Load(guest.MustProgram(src)); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	exited, code := pl.Exited()
	if !exited || code != 0 {
		t.Fatalf("exited=%v code=%d, want clean exit 0 (stale instruction executed?)", exited, code)
	}
}

func TestSelfModifyingCodeViaDMAOnVP(t *testing.T) {
	runSMCGuest(t, Config{}, smcDMAGuest)
}

func TestSelfModifyingCodeViaDMAOnVPPlus(t *testing.T) {
	// A fetch-checking integrity policy with the whole image HI: the DMA
	// source word lives inside the image, so the copy carries HI tags and
	// the patched victim must (re-)pass the fetch check. This exercises
	// both halves of the hook: the stale decoded instruction is dropped
	// AND the cached fetch-tag summary is recomputed over the new bytes.
	img := guest.MustProgram(smcDMAGuest)
	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	pol := core.NewPolicy(l, li).
		WithFetchClearance(hi).
		WithRegion(core.RegionRule{
			Name: "image", Start: img.Base, End: img.End(),
			Classify: true, Class: hi,
		})
	runSMCGuest(t, Config{Policy: pol}, smcDMAGuest)
}

func TestSelfModifyingCodeViaTLMStore(t *testing.T) {
	// TaintMemViaTLM routes the patch store through a full TLM transaction
	// into mem.Memory.Transport instead of the CPU's direct path, so the
	// invalidation must come from the write hook.
	l := core.IFP2()
	pol := core.NewPolicy(l, l.MustTag(core.ClassLI))
	runSMCGuest(t, Config{Policy: pol, TaintMemViaTLM: true}, `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	call victim
	mv s0, a0            # 1
	la t0, victim
	la t1, newinsn
	lw t1, 0(t1)
	sw t1, 0(t0)         # TLM-routed store over victim's first insn
	call victim          # must now return 7
	xori t0, a0, 7
	xori t1, s0, 1
	or a0, t0, t1
	lw ra, 12(sp)
	addi sp, sp, 16
	ret

victim:
	li a0, 1
	ret

newinsn:
	li a0, 7
`)
}
