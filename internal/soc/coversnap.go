package soc

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/cover"
)

// CoverSnapshot freezes the platform's coverage state into a serializable
// cross-run snapshot, stamped with the loaded image's content hash, the
// policy fingerprint, and the run's detection verdict (derived from the
// first terminal Run error). Returns nil when no cover views are attached.
// workload and policy are caller-chosen labels identifying what ran; they
// become the snapshot's run and verdict identity.
func (pl *Platform) CoverSnapshot(workload, policy string) *cover.Snapshot {
	cv := pl.cfg.Cover
	if !cv.Active() {
		return nil
	}
	run := cover.RunID{
		Workload: workload,
		Policy:   policy,
		Image:    pl.imgDigest,
		PolicyID: policyDigest(pl.policy),
	}
	v := cover.Verdict{Workload: workload, Policy: policy}
	v.Exited, v.ExitCode = pl.Exited()
	if pl.lastErr != nil {
		var vio *core.Violation
		if errors.As(pl.lastErr, &vio) {
			v.Detected = true
			v.Kind = vio.Kind.String()
			v.PC = fmt.Sprintf("0x%08x", vio.PC)
		} else {
			v.Error = pl.lastErr.Error()
		}
	}
	return cover.Capture(cv, run, &v)
}

// imageDigest hashes the image's flattened bytes together with its layout so
// two images with identical contents at different addresses get distinct
// identities.
func imageDigest(img *asm.Image, flat []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "base=0x%08x entry=0x%08x len=%d\n", img.Base, img.Entry, len(flat))
	h.Write(flat)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// policyDigest fingerprints a policy's observable content — lattice, default
// class, clearance points, output/input assignments, region rules — in a
// deterministic rendering, so snapshots from the same policy compare equal
// and a changed policy is visible in the diff. Nil (the baseline VP) hashes
// to "".
func policyDigest(pol *core.Policy) string {
	if pol == nil {
		return ""
	}
	h := sha256.New()
	fmt.Fprintf(h, "lattice=%s\ndefault=%s\n", pol.L.String(), pol.L.Name(pol.Default))
	e := pol.Exec
	fmt.Fprintf(h, "exec=fetch:%v/%s branch:%v/%s memaddr:%v/%s\n",
		e.CheckFetch, pol.L.Name(e.Fetch), e.CheckBranch, pol.L.Name(e.Branch),
		e.CheckMemAddr, pol.L.Name(e.MemAddr))
	writeTagMap(h, "output", pol.Outputs, pol.L)
	writeTagMap(h, "input", pol.Inputs, pol.L)
	for i := range pol.Regions {
		r := &pol.Regions[i]
		fmt.Fprintf(h, "region=%q [0x%08x,0x%08x) classify:%v/%s store:%v/%s\n",
			r.Name, r.Start, r.End, r.Classify, pol.L.Name(r.Class),
			r.CheckStore, pol.L.Name(r.Clearance))
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

func writeTagMap(h interface{ Write([]byte) (int, error) }, kind string, m map[string]core.Tag, l *core.Lattice) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%q %s\n", kind, k, l.Name(m[k]))
	}
}
