package soc_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/soc"
	"vpdift/internal/trace"
)

// sensorUARTSrc is the paper's Fig. 4 scenario (the sensor-uart example): an
// interrupt handler copies each generated sensor frame to the console.
const sensorUARTSrc = `
main:
	la t0, trap_handler
	csrw mtvec, t0
	li t0, INTC_BASE
	li t1, 1 << IRQ_SENSOR
	sw t1, INTC_ENABLE(t0)
	li t1, 0x800           # MEIE
	csrw mie, t1
	csrsi mstatus, 8       # MIE
	la s0, frames
1:	lw t1, 0(s0)
	li t2, 4
	blt t1, t2, 1b
	li a0, 0
	j exit

trap_handler:
	li t0, INTC_BASE
	lw t1, INTC_CLAIM(t0)
	li t0, SENSOR_BASE
	li t1, UART_BASE
	li t2, 0
2:	add t3, t0, t2
	lbu t4, 0(t3)
	sw t4, UART_TX(t1)
	addi t2, t2, 1
	li t3, 64
	blt t2, t3, 2b
	la t0, frames
	lw t1, 0(t0)
	addi t1, t1, 1
	sw t1, 0(t0)
	mret

	.data
	.align 2
frames:
	.word 0
`

// sensorUARTVCD runs the sensor-to-UART guest for 30 ms with the waveform
// view attached (default probes plus a memory and a tag probe on the frame
// counter) and returns the VCD bytes.
func sensorUARTVCD(t *testing.T) []byte {
	t.Helper()
	img, err := guest.Program(sensorUARTSrc)
	if err != nil {
		t.Fatal(err)
	}
	l := core.IFP1()
	lc := l.MustTag(core.ClassLC)
	pol := core.NewPolicy(l, lc).WithOutput("uart0.tx", lc)
	v := trace.NewVCD()
	pl, err := soc.New(soc.Config{Policy: pol, Trace: &trace.Trace{VCD: v}})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.AddMemProbe("frames", img.MustSymbol("frames")); err != nil {
		t.Fatal(err)
	}
	if err := pl.AddTagProbe("frames_tag", img.MustSymbol("frames")); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(30 * kernel.MS); err != nil {
		t.Fatal(err)
	}
	if got := pl.Sensor.Frames(); got < 1 {
		t.Fatalf("expected at least one sensor frame, got %d", got)
	}
	v.Sample(uint64(pl.Sim.Now()))
	var b bytes.Buffer
	if err := v.Dump(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestVCDGoldenSensorUART pins the exact waveform of the sensor-to-UART run:
// the simulation is deterministic and the VCD writer emits no time or tool
// stamps, so the file must be byte-identical run over run. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/soc -run VCDGolden.
func TestVCDGoldenSensorUART(t *testing.T) {
	got := sensorUARTVCD(t)
	golden := filepath.Join("testdata", "sensor_uart.vcd")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("VCD output diverged from %s: got %d bytes, want %d bytes",
			golden, len(got), len(want))
	}
}

// TestVCDStructure sanity-checks the GTKWave-relevant structure: header
// sections in order, every probe declared, sensor and UART activity visible.
func TestVCDStructure(t *testing.T) {
	s := string(sensorUARTVCD(t))
	order := []string{
		"$timescale 1ns $end",
		"$scope module vp $end",
		"$upscope $end",
		"$enddefinitions $end",
		"$dumpvars",
	}
	pos := -1
	for _, sec := range order {
		i := strings.Index(s, sec)
		if i < 0 || i < pos {
			t.Fatalf("section %q missing or out of order", sec)
		}
		pos = i
	}
	for _, probe := range []string{
		"cpu_pc", "uart0_rx_pending", "uart0_tx_count", "uart0_last_tx",
		"sensor0_frames", "intc_pending", "intc_enable",
		"dma0_busy", "dma0_transfers", "frames", "frames_tag",
	} {
		if !strings.Contains(s, " "+probe+" ") {
			t.Fatalf("probe %q not declared:\n%s", probe, s[:400])
		}
	}
	// The 25 ms sensor frame must have produced value changes at and after
	// the interrupt: the frame counter increments and the UART transmits.
	if !strings.Contains(s, "#25000000") {
		t.Fatal("no value change at the 25 ms sensor frame")
	}
}

// TestTraceMetricsSnapshot checks the trace gauges and derived decode-cache
// statistics surfaced through the platform metrics.
func TestTraceMetricsSnapshot(t *testing.T) {
	img, err := guest.Program(sensorUARTSrc)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{
		Kernel: trace.NewKernelTrace(0),
		Prof:   trace.NewProfiler(soc.RAMBase, soc.DefaultRAMSize),
	}
	pl, err := soc.New(soc.Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(30 * kernel.MS); err != nil {
		t.Fatal(err)
	}
	m := pl.MetricsSnapshot()
	if m["trace.kernel_events"] == 0 {
		t.Fatal("no kernel events recorded")
	}
	if m["trace.prof_retired"] == 0 {
		t.Fatal("profiler saw no retires")
	}
	hits, misses := m["sim.decode_cache_hits"], m["sim.decode_cache_misses"]
	if hits+misses > m["sim.instret"] {
		t.Fatalf("hits %d + misses %d exceed instret %d", hits, misses, m["sim.instret"])
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate decode-cache stats: hits=%d misses=%d", hits, misses)
	}
	// The hot poll loop must make the cache overwhelmingly hit.
	if float64(hits)/float64(hits+misses) < 0.99 {
		t.Fatalf("hit rate %d/%d below 99%%", hits, hits+misses)
	}
}
