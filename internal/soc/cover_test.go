package soc_test

import (
	"bytes"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/soc"
)

// coverSrc is a small self-terminating guest with branches, calls and stores,
// so every coverage view has something to record.
const coverSrc = `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	li s0, 0
	li s1, 10
1:	mv a0, s0
	call square
	la t0, results
	slli t1, s0, 2
	add t0, t0, t1
	sw a0, 0(t0)
	addi s0, s0, 1
	blt s0, s1, 1b
	li a0, 0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret

square:
	mv t0, a0
	li a0, 0
	beqz t0, 2f
	mv t1, t0
1:	add a0, a0, t0
	addi t1, t1, -1
	bnez t1, 1b
2:	ret

	.data
	.align 2
results:
	.space 40
`

func TestCoverWiredIntoVPPlus(t *testing.T) {
	img, err := guest.Program(coverSrc)
	if err != nil {
		t.Fatal(err)
	}
	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	pol := core.NewPolicy(l, li).
		WithFetchClearance(hi).
		WithRegion(core.RegionRule{
			Name: "image", Start: img.Base, End: img.End(),
			Classify: true, Class: hi,
		})
	cv := cover.New()
	pl, err := soc.New(soc.Config{Policy: pol, Cover: cv})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	if exited, code := pl.Exited(); !exited || code != 0 {
		t.Fatalf("guest exited=%v code=%d", exited, code)
	}

	s := cv.Guest.Stats()
	if s.InsnsCovered == 0 || s.BlocksCovered == 0 || s.EdgesCovered == 0 {
		t.Fatalf("guest coverage recorded nothing: %+v", s)
	}
	if s.InsnsCovered > s.Insns || s.BlocksCovered > s.Blocks || s.EdgesCovered > s.Edges {
		t.Fatalf("covered exceeds totals: %+v", s)
	}
	// The image was classified HI at load, so its footprint is ever-tainted.
	if cv.Taint.EverTainted() == 0 {
		t.Fatal("taint heatmap recorded nothing despite HI image classification")
	}
	// The store loop writes HI-derived values: churn must be visible.
	if cv.Taint.ChurnTotal() == 0 {
		t.Fatal("no tag churn recorded")
	}
	if cv.Audit.Fetch.Checks == 0 {
		t.Fatal("audit saw no fetch checks with fetch clearance enabled")
	}

	m := pl.MetricsSnapshot()
	for _, key := range []string{
		"cover.guest_insns", "cover.guest_insns_covered",
		"cover.guest_blocks", "cover.guest_blocks_covered",
		"cover.guest_edges", "cover.guest_edges_covered",
		"cover.taint_ever_bytes", "cover.taint_churn",
		"cover.audit_fetch_checks",
	} {
		if m[key] == 0 {
			t.Errorf("metrics gauge %s is zero", key)
		}
	}
	if m["cover.audit_dead_rules"] != 0 {
		// This tight policy has no unexercised parts.
		t.Errorf("cover.audit_dead_rules = %d, want 0", m["cover.audit_dead_rules"])
	}
}

func TestCoverBaselineGuestOnly(t *testing.T) {
	// On the baseline platform (no policy) only the guest view applies; the
	// unconfigured taint and audit views must stay inert.
	img, err := guest.Program(coverSrc)
	if err != nil {
		t.Fatal(err)
	}
	cv := cover.New()
	pl, err := soc.New(soc.Config{Cover: cv})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	if s := cv.Guest.Stats(); s.InsnsCovered == 0 {
		t.Fatalf("baseline guest coverage recorded nothing: %+v", s)
	}
	if cv.Taint.EverTainted() != 0 || cv.Audit.Configured() {
		t.Error("taint/audit views active on the baseline platform")
	}
}

func TestCoverDisabledParity(t *testing.T) {
	// Coverage must be an observer: with and without it, the simulation
	// executes the identical instruction stream and produces identical
	// output.
	run := func(cv *cover.Cover) (uint64, []byte) {
		img, err := guest.Program(coverSrc)
		if err != nil {
			t.Fatal(err)
		}
		l := core.IFP2()
		hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
		pol := core.NewPolicy(l, li).
			WithFetchClearance(hi).
			WithRegion(core.RegionRule{
				Name: "image", Start: img.Base, End: img.End(),
				Classify: true, Class: hi,
			})
		pl, err := soc.New(soc.Config{Policy: pol, Cover: cv})
		if err != nil {
			t.Fatal(err)
		}
		defer pl.Shutdown()
		if err := pl.Load(img); err != nil {
			t.Fatal(err)
		}
		if err := pl.Run(kernel.Forever); err != nil {
			t.Fatal(err)
		}
		return pl.Instret(), pl.UART.Output()
	}
	insnOn, outOn := run(cover.New())
	insnOff, outOff := run(nil)
	if insnOn != insnOff {
		t.Errorf("instret diverges: %d with coverage, %d without", insnOn, insnOff)
	}
	if !bytes.Equal(outOn, outOff) {
		t.Errorf("UART output diverges")
	}
}
