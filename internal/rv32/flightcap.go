package rv32

import "vpdift/internal/flight"

// Flight-recorder capture for both cores. The capture site is the very end
// of the interpreter step, after the switch and every clearance check, so a
// record exists exactly when the instruction retired — violating or
// faulting instructions never reach it and are appended as terminal marks
// by the platform instead, which is what lets the bundle's trace window end
// at the violating instruction.

// flightFlags gives each opcode its static flight-record flag bits; the
// dynamic bits (FlagTaken, FlagTaintRd) are added at capture time.
var flightFlags = func() [numOps]uint8 {
	var t [numOps]uint8
	for _, op := range []Op{OpJAL, OpJALR, OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpMRET} {
		t[op] = flight.FlagBranch
	}
	for _, op := range []Op{OpLB, OpLH, OpLW, OpLBU, OpLHU} {
		t[op] = flight.FlagLoad
	}
	for _, op := range []Op{OpSB, OpSH, OpSW} {
		t[op] = flight.FlagStore
	}
	return t
}()

// The capture itself is hand-inlined at the end of Core.step,
// TaintCore.step and TaintCore.stepDec behind the `c.FR != nil` guard: it
// must cost a handful of instructions per retire, not a function call, and
// as a helper it exceeds the compiler's inlining budget. All three copies
// follow the same shape —
//
//	fl := flightFlags[i.Op]
//	if next != pc+4 { fl |= flight.FlagTaken }
//	(VP+ only) if i.Rd != 0 && c.Regs[i.Rd].T != c.def { fl |= flight.FlagTaintRd }
//	addr := c.frAddr for loads/stores, 0 otherwise
//	fill c.FR.Slot() with {Instret, pc, w, addr, 0, KindRetire, fl}
//
// where c.frAddr was stashed by the load/store helpers (recomputing the
// effective address post-switch would be wrong when rd aliases rs1). The
// VP+ copies run on both the inline step and the decoupled front end's
// stepDec — register tags are exact at every instruction boundary in both
// modes (see decoupled.go's ownership protocol), so the captured window is
// bit-identical across inline and decoupled runs.

// RegName returns the ABI name of architectural register r (0..31).
func RegName(r int) string {
	if r < 0 || r >= len(abiNames) {
		return "?"
	}
	return abiNames[r]
}
