package rv32

// The taint-monitor goroutine: the consumer half of the decoupled VP+. It
// drains retire records from the SPSC ring and replays tag propagation and
// the obs/cover hooks against the shadow register file. See decoupled.go
// for the ownership protocol that makes this race-free.

import (
	"sync/atomic"

	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/dift"
	"vpdift/internal/obs"
)

// monState is the monitor goroutine's lifecycle handle. The wake channel
// has capacity one: a wake while already signalled is a no-op, and the
// parked flag keeps the front end from channel-sending to a monitor that is
// busy draining anyway.
type monState struct {
	wakeC  chan struct{}
	stopC  chan struct{}
	doneC  chan struct{}
	parked atomic.Bool
}

func newMonState() monState {
	return monState{
		wakeC: make(chan struct{}, 1),
		stopC: make(chan struct{}),
		doneC: make(chan struct{}),
	}
}

// wake nudges a parked monitor. Lost wakes are harmless: the front end's
// drain loop retries, and the monitor re-checks the ring before parking.
func (m *monState) wake() {
	if m.parked.Load() {
		select {
		case m.wakeC <- struct{}{}:
		default:
		}
	}
}

// monitorLoop is the monitor goroutine body: apply records until told to
// stop, parking when the ring runs dry.
func (c *TaintCore) monitorLoop() {
	d := c.dec
	defer close(d.mon.doneC)
	for {
		if rec := d.ring.Peek(); rec != nil {
			c.applyRecord(d, rec)
			d.ring.Advance()
			continue
		}
		d.mon.parked.Store(true)
		if d.ring.Peek() != nil {
			// Raced with a push: keep draining.
			d.mon.parked.Store(false)
			continue
		}
		select {
		case <-d.mon.wakeC:
			d.mon.parked.Store(false)
		case <-d.mon.stopC:
			return
		}
	}
}

func (c *TaintCore) applyRecord(d *decState, rec *dift.Record) {
	if rec.Kind == dift.KindRetire {
		c.applyRetire(d, rec)
	}
}

// applyRetire replays one fullEmit-mode record: shadow register writeback,
// then the obs events, then the cover events — the exact call order of the
// inline core's store()/observeStep/coverStep path, so observer sequence
// numbers and provenance chains are preserved bit-for-bit.
func (c *TaintCore) applyRetire(d *decState, rec *dift.Record) {
	op := Op(rec.Op)

	// Architectural writeback into the shadow register file.
	switch op {
	case OpLUI, OpAUIPC, OpJAL, OpJALR,
		OpLB, OpLH, OpLW, OpLBU, OpLHU,
		OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI,
		OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
		OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU,
		OpCSRRW, OpCSRRS, OpCSRRC, OpCSRRWI, OpCSRRSI, OpCSRRCI:
		if rec.Rd != 0 {
			d.shadow[rec.Rd] = core.W(rec.Val, rec.ValT)
		}
	}

	isStore := op == OpSB || op == OpSH || op == OpSW
	ramStore := false
	if isStore {
		soff := rec.Addr - c.ramBase
		ramStore = !c.ForceBusMem && soff < c.ramSize && soff+uint32(rec.Size) <= c.ramSize
	}

	if o := c.Obs; o != nil {
		// RAM-store events replay here; MMIO stores already fired them on
		// the (drained) front end, before the bus transaction.
		if ramStore {
			o.SetInsn(rec.PC, rec.Insn)
			o.OnStore(rec.Addr, uint32(rec.Size), rec.Rs2, core.W(rec.Val, rec.ValT))
		}
		o.BeginInsn(rec.PC, rec.Insn)
		switch op {
		case OpJALR:
			o.OnJump(rec.Next, rec.Rs1, rec.S1T)
			o.AssignReg(rec.Rd)
		case OpMRET:
			o.OnJump(rec.Next, obs.RegNone, rec.S1T)
		case OpLB, OpLBU:
			o.OnLoad(rec.Addr, 1, core.W(rec.Val, rec.ValT))
			o.AssignReg(rec.Rd)
		case OpLH, OpLHU:
			o.OnLoad(rec.Addr, 2, core.W(rec.Val, rec.ValT))
			o.AssignReg(rec.Rd)
		case OpLW:
			o.OnLoad(rec.Addr, 4, core.W(rec.Val, rec.ValT))
			o.AssignReg(rec.Rd)
		case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
			o.OnOp(rec.Rs1, obs.RegNone, rec.Val, rec.S1T)
			o.AssignReg(rec.Rd)
		case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
			OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU:
			o.OnOp(rec.Rs1, rec.Rs2, rec.Val, rec.S1T)
			o.AssignReg(rec.Rd)
		case OpLUI, OpAUIPC, OpJAL,
			OpCSRRW, OpCSRRS, OpCSRRC, OpCSRRWI, OpCSRRSI, OpCSRRCI:
			o.AssignReg(rec.Rd)
		}
	}

	if cv := c.Cov; cv != nil {
		c.coverReplay(d, cv, rec, op, isStore)
	}
}

// coverReplay mirrors coverStep against the shadow register file.
func (c *TaintCore) coverReplay(d *decState, cv *cover.Cover, rec *dift.Record, op Op, isStore bool) {
	if g := cv.Guest; g != nil {
		g.OnRetire(rec.PC, rec.Insn, rec.Next)
	}
	if t := cv.Taint; t != nil {
		t.OnRetireRegs(&d.shadow)
		if isStore {
			t.OnStore(rec.Addr, uint32(rec.Size), rec.ValT)
		}
	}
	if a := cv.Audit; a != nil {
		if c.checkFetch {
			a.Fetch.Checks++
		}
		switch op {
		case OpJALR, OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpMRET:
			if c.checkBranch {
				a.Branch.Checks++
			}
		case OpLB, OpLH, OpLW, OpLBU, OpLHU:
			if c.checkMemAddr {
				a.MemAddr.Checks++
			}
		case OpSB, OpSH, OpSW:
			if c.checkMemAddr {
				a.MemAddr.Checks++
			}
			if c.hasRegions {
				a.NoteStore(rec.Addr)
			}
		}
	}
}
