package rv32

import (
	"errors"
	"reflect"
	"testing"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
)

// runQuanta drives a core in small quanta (forcing a drain at every quantum
// boundary in decoupled mode) until halt, an error, or the step budget.
func runQuanta(c *TaintCore, quantum uint64) error {
	var delay kernel.Time
	for total := uint64(0); total < 1_000_000; {
		n, st, err := c.Run(quantum, &delay)
		total += n
		if err != nil {
			return err
		}
		if st == RunHalt {
			return nil
		}
	}
	return errors.New("step budget exhausted")
}

// runBothModes executes src under pol inline and decoupled and requires
// bit-identical outcomes: errors, registers (values and tags), PC, and every
// RAM byte tag.
func runBothModes(t *testing.T, src string, pol *core.Policy) (inErr, decErr error) {
	t.Helper()

	ri := buildTaint(t, src, pol)
	inErr = runQuanta(ri.c, 1_000_000)

	rd := buildTaint(t, src, pol)
	rd.c.EnableDecoupledTaint()
	if !rd.c.Decoupled() {
		t.Fatal("Decoupled() = false after enable")
	}
	decErr = runQuanta(rd.c, 256) // small quanta: exercise drain/restart
	rd.c.StopDecoupled()

	if (inErr == nil) != (decErr == nil) {
		t.Fatalf("error parity: inline=%v decoupled=%v", inErr, decErr)
	}
	var vi, vd *core.Violation
	if errors.As(inErr, &vi) != errors.As(decErr, &vd) {
		t.Fatalf("violation parity: inline=%v decoupled=%v", inErr, decErr)
	}
	if vi != nil && !reflect.DeepEqual(vi, vd) {
		t.Errorf("violation diverged:\ninline:    %+v\ndecoupled: %+v", vi, vd)
	}
	if ri.c.PC != rd.c.PC {
		t.Errorf("PC diverged: inline %#x decoupled %#x", ri.c.PC, rd.c.PC)
	}
	if ri.c.Instret != rd.c.Instret {
		t.Errorf("Instret diverged: inline %d decoupled %d", ri.c.Instret, rd.c.Instret)
	}
	if ri.c.Regs != rd.c.Regs {
		for r := 0; r < 32; r++ {
			if ri.c.Regs[r] != rd.c.Regs[r] {
				t.Errorf("x%d diverged: inline %+v decoupled %+v", r, ri.c.Regs[r], rd.c.Regs[r])
			}
		}
	}
	di, dd := ri.ram.Data(), rd.ram.Data()
	for i := range di {
		if di[i] != dd[i] {
			t.Fatalf("RAM[%#x] diverged: inline %+v decoupled %+v", i, di[i], dd[i])
		}
	}
	return inErr, decErr
}

// decoupledFlowSrc exercises every mode-A path: tainted loads and stores of
// all widths, ALU joins, taint death by overwrite, branches, and clean loops.
const decoupledFlowSrc = `
_start:
	la t0, secret
	lw a0, 0(t0)        # taint enters a register
	li a1, 5
	add a2, a0, a1      # join: tainted
	la t1, buf
	sw a2, 0(t1)        # tainted store, word
	lb a3, 1(t1)        # tainted load, signed byte
	sh a0, 4(t1)        # tainted store, half
	lhu a4, 4(t1)       # tainted load, unsigned half
	xor a5, a4, a3      # tainted join
	slli a6, a5, 2
	srai a7, a5, 1
	mul s0, a5, a1
	divu s1, a5, a1
	li a2, 0            # register taint death (tainted rd, clear source)
	mv a5, zero
	mv a6, zero
	mv a7, zero
	mv s0, zero
	mv s1, zero
	sw x0, 0(t1)        # memory taint death by overwrite
	sw x0, 4(t1)
	sw x0, 0(t0)
	mv a0, zero
	mv a3, zero
	mv a4, zero
	li t2, 50           # clean loop: must run entirely on the fast paths
1:	lw a1, 0(t1)
	addi a1, a1, 1
	sw a1, 0(t1)
	addi t2, t2, -1
	bnez t2, 1b
	call halt
	.data
secret:
	.word 0x1337c0de
buf:
	.space 32
`

func TestDecoupledParityTagState(t *testing.T) {
	img := asm.MustAssemble(decoupledFlowSrc+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	if inErr, _ := runBothModes(t, decoupledFlowSrc, pol); inErr != nil {
		t.Fatal(inErr)
	}
}

func TestDecoupledParityViolations(t *testing.T) {
	cases := []struct {
		name string
		src  string
		arm  func(p *core.Policy)
		kind core.ViolationKind
	}{
		{
			name: "branch",
			src: `
_start:
	la t0, secret
	lw a0, 0(t0)
	bnez a0, 1f
1:	call halt
	.data
secret:
	.word 1
`,
			arm:  func(p *core.Policy) { p.WithBranchClearance(p.L.MustTag(core.ClassLC)) },
			kind: core.KindBranchClearance,
		},
		{
			name: "jalr",
			src: `
_start:
	la t0, secret
	lw a0, 0(t0)
	la t1, halt
	add t1, t1, a0
	jr t1
	.data
secret:
	.word 0
`,
			arm:  func(p *core.Policy) { p.WithBranchClearance(p.L.MustTag(core.ClassLC)) },
			kind: core.KindBranchClearance,
		},
		{
			name: "memaddr",
			src: `
_start:
	la t0, secret
	lw a0, 0(t0)
	la t1, buf
	add t1, t1, a0
	sw x0, 0(t1)
	call halt
	.data
secret:
	.word 4
buf:
	.space 64
`,
			arm:  func(p *core.Policy) { p.WithMemAddrClearance(p.L.MustTag(core.ClassLC)) },
			kind: core.KindMemAddrClearance,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := asm.MustAssemble(tc.src+testEpilogue, asm.Options{Base: testRAMBase})
			pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
			tc.arm(pol)
			_, decErr := runBothModes(t, tc.src, pol)
			var v *core.Violation
			if !errors.As(decErr, &v) || v.Kind != tc.kind {
				t.Fatalf("decoupled err = %v, want %v violation", decErr, tc.kind)
			}
		})
	}
}

// TestDecoupledSuppressionRearm is the zero-live-taint regression test: after
// every live tag is overwritten to the default (taint death — there is no
// explicit clear API), the filters must fully re-arm and suppress emission
// again, not just before the first seeding.
func TestDecoupledSuppressionRearm(t *testing.T) {
	src := `
_start:
	la t0, secret
	lw a0, 0(t0)        # seed: live taint
	la t1, buf
	sw a0, 0(t1)        # taint memory
	li a0, 0            # kill the register
	sw x0, 0(t1)        # kill the buffer bytes
	sw x0, 0(t0)        # kill the classified source bytes
	li t2, 200          # post-death loop: ~1000 instructions, all clear
1:	lw a1, 0(t1)
	addi a1, a1, 1
	sw a1, 0(t1)
	addi t2, t2, -1
	bnez t2, 1b
	call halt
	.data
secret:
	.word 0x5ec4e7
buf:
	.space 16
`
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	r := buildTaint(t, src, pol)
	r.c.EnableDecoupledTaint()
	if err := runQuanta(r.c, 64); err != nil {
		t.Fatal(err)
	}
	s, ok := r.c.DecoupledStats()
	if !ok {
		t.Fatal("DecoupledStats not available while decoupled")
	}
	r.c.StopDecoupled()

	if s.FullEmit {
		t.Fatal("expected filtered mode (no observer attached)")
	}
	if s.CleanedBlocks == 0 {
		t.Error("no blocks re-armed after taint death")
	}
	if s.LiveRegs != 0 {
		t.Errorf("LiveRegs = %d after full taint death, want 0", s.LiveRegs)
	}
	if s.DirtyBlocks != 0 {
		t.Errorf("DirtyBlocks = %d after full taint death, want 0", s.DirtyBlocks)
	}
	// The taint phase is ~10 instructions; everything after death must be
	// suppressed. A generous bound still proves the loop emitted nothing.
	if s.Emitted > 32 {
		t.Errorf("Emitted = %d, want the post-death loop fully suppressed", s.Emitted)
	}
	if s.Suppressed < 800 {
		t.Errorf("Suppressed = %d, want the ~1000-instruction clean loop counted", s.Suppressed)
	}
	if s.RingOccupancy != 0 {
		t.Errorf("RingOccupancy = %d after Run's drain, want 0", s.RingOccupancy)
	}
}

// TestDecoupledObsReplayParity checks fullEmit mode: with an observer
// attached, the monitor-side hook replay must produce the identical event
// stream — same sequence numbers, same provenance chains — as inline mode.
func TestDecoupledObsReplayParity(t *testing.T) {
	src := `
_start:
	la t0, secret
	lw a0, 0(t0)
	li a1, 3
	add a2, a0, a1
	la t1, buf
	sw a2, 0(t1)
	lw a3, 0(t1)
	bnez a3, 1f
1:	call halt
	.data
secret:
	.word 7
buf:
	.space 8
`
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	pol.WithBranchClearance(pol.L.MustTag(core.ClassLC))
	now := func() uint64 { return 0 }

	ri := buildTaint(t, src, pol)
	oi := obs.New()
	oi.Attach(now, pol.L, pol.Default)
	ri.c.Obs = oi
	errI := runQuanta(ri.c, 1_000_000)

	rd := buildTaint(t, src, pol)
	od := obs.New()
	od.Attach(now, pol.L, pol.Default)
	rd.c.Obs = od
	rd.c.EnableDecoupledTaint()
	errD := runQuanta(rd.c, 128)
	rd.c.StopDecoupled()

	var vi, vd *core.Violation
	if !errors.As(errI, &vi) || !errors.As(errD, &vd) {
		t.Fatalf("want violations in both modes, got inline=%v decoupled=%v", errI, errD)
	}
	if !reflect.DeepEqual(vi, vd) {
		t.Errorf("violation diverged:\ninline:    %+v\ndecoupled: %+v", vi, vd)
	}
	if oi.EventCount() != od.EventCount() {
		t.Errorf("event count diverged: inline %d decoupled %d", oi.EventCount(), od.EventCount())
	}
	ei, ed := oi.Events(), od.Events()
	if !reflect.DeepEqual(ei, ed) {
		n := len(ei)
		if len(ed) < n {
			n = len(ed)
		}
		for k := 0; k < n; k++ {
			if !reflect.DeepEqual(ei[k], ed[k]) {
				t.Fatalf("event %d diverged:\ninline:    %+v\ndecoupled: %+v", k, ei[k], ed[k])
			}
		}
		t.Fatalf("event streams diverged in length: inline %d decoupled %d", len(ei), len(ed))
	}
	// The violations' reconstructed provenance chains must match too.
	if !reflect.DeepEqual(vi.Provenance, vd.Provenance) {
		t.Errorf("provenance chain diverged:\ninline:    %+v\ndecoupled: %+v", vi.Provenance, vd.Provenance)
	}
	if len(vi.Provenance) == 0 {
		t.Error("expected a non-empty provenance chain with an observer attached")
	}
}

func TestDecoupledStatsLifecycle(t *testing.T) {
	src := "_start:\n\tcall halt\n"
	pol := confidentialityPolicy(0x9f000000, 4)
	r := buildTaint(t, src, pol)
	if _, ok := r.c.DecoupledStats(); ok {
		t.Error("stats available before enabling")
	}
	r.c.EnableDecoupledTaint()
	r.c.EnableDecoupledTaint() // idempotent
	if _, ok := r.c.DecoupledStats(); ok {
		t.Error("stats available before the first Run")
	}
	if err := runQuanta(r.c, 16); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.c.DecoupledStats(); !ok {
		t.Error("stats unavailable after Run")
	}
	r.c.StopDecoupled()
	r.c.StopDecoupled() // idempotent
	if r.c.Decoupled() {
		t.Error("still decoupled after stop")
	}
	if _, ok := r.c.DecoupledStats(); ok {
		t.Error("stats available after stop")
	}
}
