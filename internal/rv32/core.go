package rv32

import (
	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/flight"
	"vpdift/internal/kernel"
	"vpdift/internal/mem"
	"vpdift/internal/obs"
	"vpdift/internal/tlm"
)

// DecodeCacheFills reports how many predecoded-cache slots have been filled
// (i.e. slow-path decodes); the metrics exporter pairs it with Instret to
// derive the hit rate.
func (c *Core) DecodeCacheFills() uint64 { return c.ic.fills }

// DecodeCacheStats reports the decode-cache miss breakdown: fills (slow
// decodes that populated a slot) and uncached fetches (misaligned PC or the
// cache disabled — decoded without filling a slot). Hits are derived as
// Instret minus both.
func (c *Core) DecodeCacheStats() (fills, uncached uint64) { return c.ic.fills, c.uncachedFetch }

// Core is the plain (baseline, "VP") RV32IM instruction-set simulator.
// Accesses inside the RAM window use the direct memory slice (the DMI-like
// fast path); everything else is routed over the TLM bus.
type Core struct {
	Regs    [32]uint32
	PC      uint32
	Instret uint64

	// Halted is set by the platform (SysCtrl write) to stop execution.
	Halted bool

	// Tracer, when non-nil, is invoked before each instruction executes.
	Tracer func(pc, insn uint32)

	// Obs, when non-nil, receives instruction-boundary events (EvExec). The
	// baseline core carries no tags, so the platform wires this only when
	// the observer requests per-retire tracing (Options.TraceExec) — the
	// plain fetch loop is tight enough that even a guarded call per
	// instruction is measurable, and without TraceExec the events would be
	// dropped anyway. Taint provenance is the VP+ core's job.
	Obs *obs.Observer

	ram     []byte
	ramBase uint32
	ramSize uint32
	bus     *tlm.Bus

	// ic is the predecoded-instruction cache (see icache.go). The baseline
	// core carries it too, deliberately: accelerating only the VP+ would
	// flatter the Table II overhead ratio with a slow baseline.
	ic icache

	// irqPoll gates the per-instruction interrupt check: it is raised by
	// every event that could make an interrupt takeable (a device line
	// rising, writes to mstatus/mie, mret restoring MIE) and cleared when a
	// poll finds nothing pending, so the hot loop replaces a takeIRQ call
	// per instruction with one predictable branch.
	irqPoll bool

	mstatus  uint32
	mie      uint32
	mip      uint32
	mtvec    uint32
	mepc     uint32
	mcause   uint32
	mtval    uint32
	mscratch uint32

	mmioBuf [4]core.TByte

	// Retire, when non-nil, is invoked once per executed instruction with
	// its pc and raw word — the guest profiler's hook (internal/trace).
	// Separate from Tracer so profiling composes with disassembly tracing;
	// like every hook it costs one predictable branch when nil. New fields
	// live at the end of the struct: inserting them higher up shifts the
	// hot fields (Regs, ram, ic) across cache lines, which costs the tight
	// interpreter loop measurably.
	Retire func(pc, insn uint32)

	// uncachedFetch counts fetches that bypassed the decode cache (misaligned
	// PC or cache disabled) — the non-fill half of the miss count.
	uncachedFetch uint64

	// Cov, when non-nil, receives post-retire coverage events
	// (internal/cover). Only the guest view applies on the baseline core —
	// there are no tags to heatmap and no policy to audit.
	Cov *cover.Cover

	// FR, when non-nil, is the always-on flight recorder: one compressed
	// record per retire, captured post-switch (see flightcap.go). frAddr is
	// the last load/store effective address, stashed by load/store because
	// the post-switch capture cannot recompute it once rd aliased rs1.
	FR     *flight.Recorder
	frAddr uint32
}

// NewCore builds a baseline core over plain RAM and a bus for MMIO. The
// core registers a write hook on the RAM so that bus-initiated writes (DMA,
// TLM transactions) invalidate its predecoded-instruction cache.
func NewCore(ram *mem.PlainMemory, ramBase uint32, bus *tlm.Bus) *Core {
	c := &Core{
		ram:     ram.Data(),
		ramBase: ramBase,
		ramSize: ram.Size(),
		bus:     bus,
		ic:      newICache(ram.Size()),
		irqPoll: true,
	}
	ram.AddWriteHook(c.InvalidateDecodeCache)
	return c
}

// DisableDecodeCache turns the predecoded-instruction cache off: every
// fetch decodes from RAM bytes again. For ablation benchmarks.
func (c *Core) DisableDecodeCache() { c.ic = icache{} }

// InvalidateDecodeCache drops predecoded entries covering RAM byte offsets
// [start, end). It is registered as the RAM write hook and may be called by
// platform code that mutates RAM behind the core's back.
func (c *Core) InvalidateDecodeCache(start, end uint32) { c.ic.invalidate(start, end) }

// SetIRQ drives the machine interrupt-pending lines (mask of IntMTI /
// IntMEI / IntMSI).
func (c *Core) SetIRQ(line uint32, level bool) {
	if level {
		c.mip |= line
		c.irqPoll = true
	} else {
		c.mip &^= line
	}
}

// PendingIRQ reports whether any enabled interrupt is pending (regardless of
// the global MIE bit) — the WFI wake-up condition.
func (c *Core) PendingIRQ() bool { return c.mie&c.mip != 0 }

// Run executes up to max instructions. It returns early on WFI with no
// pending interrupt, on halt, or on an error (bus error, unhandled trap).
// Timing annotations of MMIO transactions accumulate into delay.
func (c *Core) Run(max uint64, delay *kernel.Time) (n uint64, st RunStatus, err error) {
	for n < max {
		if c.Halted {
			return n, RunHalt, nil
		}
		st, err = c.step(delay)
		if err != nil {
			return n, st, err
		}
		n++
		c.Instret++
		if st != RunOK {
			return n, st, nil
		}
	}
	return n, RunOK, nil
}

// takeIRQ enters the highest-priority pending enabled interrupt, if the
// global enable allows. Finding nothing takeable clears irqPoll; the events
// that can change that verdict re-raise it.
func (c *Core) takeIRQ() (bool, error) {
	if c.mstatus&MstatusMIE == 0 {
		c.irqPoll = false
		return false, nil
	}
	pending := c.mie & c.mip
	if pending == 0 {
		c.irqPoll = false
		return false, nil
	}
	var cause uint32
	switch {
	case pending&IntMEI != 0:
		cause = CauseMExtInt
	case pending&IntMSI != 0:
		cause = causeInterruptBit | 3
	default:
		cause = CauseMTimerInt
	}
	return true, c.trap(cause, 0, c.PC)
}

// trap enters the machine trap handler.
func (c *Core) trap(cause, tval, epc uint32) error {
	if c.mtvec == 0 {
		return &TrapError{Cause: cause, Tval: tval, PC: epc}
	}
	if c.FR != nil {
		c.FR.MarkTrap(c.Instret, epc, tval, cause)
	}
	c.mepc = epc
	c.mcause = cause
	c.mtval = tval
	// MPIE <- MIE; MIE <- 0; MPP <- M.
	if c.mstatus&MstatusMIE != 0 {
		c.mstatus |= MstatusMPIE
	} else {
		c.mstatus &^= MstatusMPIE
	}
	c.mstatus &^= MstatusMIE
	c.mstatus |= MstatusMPP
	c.PC = c.mtvec &^ 3
	return nil
}

// fetchWord assembles the little-endian instruction word at RAM offset off;
// the caller guarantees off+4 <= ramSize.
func (c *Core) fetchWord(off uint32) uint32 {
	return uint32(c.ram[off]) | uint32(c.ram[off+1])<<8 | uint32(c.ram[off+2])<<16 | uint32(c.ram[off+3])<<24
}

func (c *Core) step(delay *kernel.Time) (RunStatus, error) {
	if c.irqPoll {
		if taken, err := c.takeIRQ(); err != nil {
			return RunOK, err
		} else if taken {
			return RunOK, nil
		}
	}

	pc := c.PC
	off := pc - c.ramBase
	var i Inst
	var w uint32
	if idx := int(off >> 2); off&3 == 0 && idx < len(c.ic.ents) {
		e := &c.ic.ents[idx]
		if e.state != 0 {
			i = e.inst
			w = e.word
			if c.Tracer != nil {
				c.Tracer(pc, w)
			}
			if c.Retire != nil {
				c.Retire(pc, w)
			}
			if c.Obs != nil {
				c.Obs.BeginInsn(pc, w)
			}
		} else {
			w = c.fetchWord(off)
			if c.Tracer != nil {
				c.Tracer(pc, w)
			}
			if c.Retire != nil {
				c.Retire(pc, w)
			}
			if c.Obs != nil {
				c.Obs.BeginInsn(pc, w)
			}
			i = Decode(w)
			e.inst = i
			e.word = w
			e.state = icValid
			c.ic.noteFill(off)
		}
	} else {
		// Misaligned PC, fetch outside RAM, or the decode cache is off.
		if off >= c.ramSize || off+4 > c.ramSize {
			return RunOK, &BusError{What: "instruction fetch outside RAM", Addr: pc, PC: pc}
		}
		c.uncachedFetch++
		w = c.fetchWord(off)
		if c.Tracer != nil {
			c.Tracer(pc, w)
		}
		if c.Retire != nil {
			c.Retire(pc, w)
		}
		if c.Obs != nil {
			c.Obs.BeginInsn(pc, w)
		}
		i = Decode(w)
	}

	next := pc + 4
	switch i.Op {
	case OpLUI:
		c.set(i.Rd, uint32(i.Imm))
	case OpAUIPC:
		c.set(i.Rd, pc+uint32(i.Imm))
	case OpJAL:
		c.set(i.Rd, next)
		next = pc + uint32(i.Imm)
	case OpJALR:
		t := (c.Regs[i.Rs1] + uint32(i.Imm)) &^ 1
		c.set(i.Rd, next)
		next = t
	case OpBEQ:
		if c.Regs[i.Rs1] == c.Regs[i.Rs2] {
			next = pc + uint32(i.Imm)
		}
	case OpBNE:
		if c.Regs[i.Rs1] != c.Regs[i.Rs2] {
			next = pc + uint32(i.Imm)
		}
	case OpBLT:
		if int32(c.Regs[i.Rs1]) < int32(c.Regs[i.Rs2]) {
			next = pc + uint32(i.Imm)
		}
	case OpBGE:
		if int32(c.Regs[i.Rs1]) >= int32(c.Regs[i.Rs2]) {
			next = pc + uint32(i.Imm)
		}
	case OpBLTU:
		if c.Regs[i.Rs1] < c.Regs[i.Rs2] {
			next = pc + uint32(i.Imm)
		}
	case OpBGEU:
		if c.Regs[i.Rs1] >= c.Regs[i.Rs2] {
			next = pc + uint32(i.Imm)
		}
	case OpLB:
		v, err := c.load(c.Regs[i.Rs1]+uint32(i.Imm), 1, delay, pc)
		if err != nil {
			return RunOK, err
		}
		c.set(i.Rd, uint32(int32(v<<24)>>24))
	case OpLH:
		v, err := c.load(c.Regs[i.Rs1]+uint32(i.Imm), 2, delay, pc)
		if err != nil {
			return RunOK, err
		}
		c.set(i.Rd, uint32(int32(v<<16)>>16))
	case OpLW:
		v, err := c.load(c.Regs[i.Rs1]+uint32(i.Imm), 4, delay, pc)
		if err != nil {
			return RunOK, err
		}
		c.set(i.Rd, v)
	case OpLBU:
		v, err := c.load(c.Regs[i.Rs1]+uint32(i.Imm), 1, delay, pc)
		if err != nil {
			return RunOK, err
		}
		c.set(i.Rd, v)
	case OpLHU:
		v, err := c.load(c.Regs[i.Rs1]+uint32(i.Imm), 2, delay, pc)
		if err != nil {
			return RunOK, err
		}
		c.set(i.Rd, v)
	case OpSB:
		if err := c.store(c.Regs[i.Rs1]+uint32(i.Imm), c.Regs[i.Rs2], 1, delay, pc); err != nil {
			return RunOK, err
		}
	case OpSH:
		if err := c.store(c.Regs[i.Rs1]+uint32(i.Imm), c.Regs[i.Rs2], 2, delay, pc); err != nil {
			return RunOK, err
		}
	case OpSW:
		if err := c.store(c.Regs[i.Rs1]+uint32(i.Imm), c.Regs[i.Rs2], 4, delay, pc); err != nil {
			return RunOK, err
		}
	case OpADDI:
		c.set(i.Rd, c.Regs[i.Rs1]+uint32(i.Imm))
	case OpSLTI:
		c.set(i.Rd, b2u(int32(c.Regs[i.Rs1]) < i.Imm))
	case OpSLTIU:
		c.set(i.Rd, b2u(c.Regs[i.Rs1] < uint32(i.Imm)))
	case OpXORI:
		c.set(i.Rd, c.Regs[i.Rs1]^uint32(i.Imm))
	case OpORI:
		c.set(i.Rd, c.Regs[i.Rs1]|uint32(i.Imm))
	case OpANDI:
		c.set(i.Rd, c.Regs[i.Rs1]&uint32(i.Imm))
	case OpSLLI:
		c.set(i.Rd, c.Regs[i.Rs1]<<uint(i.Imm))
	case OpSRLI:
		c.set(i.Rd, c.Regs[i.Rs1]>>uint(i.Imm))
	case OpSRAI:
		c.set(i.Rd, uint32(int32(c.Regs[i.Rs1])>>uint(i.Imm)))
	case OpADD:
		c.set(i.Rd, c.Regs[i.Rs1]+c.Regs[i.Rs2])
	case OpSUB:
		c.set(i.Rd, c.Regs[i.Rs1]-c.Regs[i.Rs2])
	case OpSLL:
		c.set(i.Rd, c.Regs[i.Rs1]<<(c.Regs[i.Rs2]&31))
	case OpSLT:
		c.set(i.Rd, b2u(int32(c.Regs[i.Rs1]) < int32(c.Regs[i.Rs2])))
	case OpSLTU:
		c.set(i.Rd, b2u(c.Regs[i.Rs1] < c.Regs[i.Rs2]))
	case OpXOR:
		c.set(i.Rd, c.Regs[i.Rs1]^c.Regs[i.Rs2])
	case OpSRL:
		c.set(i.Rd, c.Regs[i.Rs1]>>(c.Regs[i.Rs2]&31))
	case OpSRA:
		c.set(i.Rd, uint32(int32(c.Regs[i.Rs1])>>(c.Regs[i.Rs2]&31)))
	case OpOR:
		c.set(i.Rd, c.Regs[i.Rs1]|c.Regs[i.Rs2])
	case OpAND:
		c.set(i.Rd, c.Regs[i.Rs1]&c.Regs[i.Rs2])
	case OpMUL:
		c.set(i.Rd, c.Regs[i.Rs1]*c.Regs[i.Rs2])
	case OpMULH:
		c.set(i.Rd, uint32(uint64(int64(int32(c.Regs[i.Rs1]))*int64(int32(c.Regs[i.Rs2])))>>32))
	case OpMULHSU:
		c.set(i.Rd, uint32(uint64(int64(int32(c.Regs[i.Rs1]))*int64(c.Regs[i.Rs2]))>>32))
	case OpMULHU:
		c.set(i.Rd, uint32(uint64(c.Regs[i.Rs1])*uint64(c.Regs[i.Rs2])>>32))
	case OpDIV:
		c.set(i.Rd, divS(c.Regs[i.Rs1], c.Regs[i.Rs2]))
	case OpDIVU:
		c.set(i.Rd, divU(c.Regs[i.Rs1], c.Regs[i.Rs2]))
	case OpREM:
		c.set(i.Rd, remS(c.Regs[i.Rs1], c.Regs[i.Rs2]))
	case OpREMU:
		c.set(i.Rd, remU(c.Regs[i.Rs1], c.Regs[i.Rs2]))
	case OpFENCE:
		// No-op: the memory model is sequentially consistent.
	case OpFENCEI:
		// Explicit fetch/store synchronization point: drop every predecoded
		// entry. (Stores already invalidate eagerly; FENCE.I additionally
		// pins the architectural contract for self-modifying code.)
		c.ic.invalidateAll()
	case OpECALL:
		return RunOK, c.trap(CauseECallM, 0, pc)
	case OpEBREAK:
		return RunOK, c.trap(CauseBreakpoint, 0, pc)
	case OpMRET:
		// MIE <- MPIE; MPIE <- 1.
		if c.mstatus&MstatusMPIE != 0 {
			c.mstatus |= MstatusMIE
		} else {
			c.mstatus &^= MstatusMIE
		}
		c.mstatus |= MstatusMPIE
		c.irqPoll = true
		next = c.mepc
	case OpWFI:
		if !c.PendingIRQ() {
			c.PC = next
			return RunWFI, nil
		}
	case OpCSRRW, OpCSRRS, OpCSRRC, OpCSRRWI, OpCSRRSI, OpCSRRCI:
		if err := c.csrOp(i, pc); err != nil {
			return RunOK, err
		}
		// csrOp may have trapped (illegal CSR) and replaced PC.
		if c.PC != pc {
			return RunOK, nil
		}
	default:
		return RunOK, c.trap(CauseIllegalInstr, c.fetchWord(off), pc)
	}
	if c.Cov != nil {
		c.coverStep(pc, off, next)
	}
	if c.FR != nil {
		// Flight capture, hand-inlined (see flightcap.go).
		fl := flightFlags[i.Op]
		if next != pc+4 {
			fl |= flight.FlagTaken
		}
		var faddr uint32
		if fl&(flight.FlagLoad|flight.FlagStore) != 0 {
			faddr = c.frAddr
		}
		rec := c.FR.Slot()
		rec.Time = c.Instret
		rec.PC = pc
		rec.Insn = w
		rec.Addr = faddr
		rec.Aux = 0
		rec.Kind = flight.KindRetire
		rec.Flags = fl
	}
	if c.PC == pc { // not redirected by a trap inside the switch
		c.PC = next
	}
	return RunOK, nil
}

// coverStep feeds the coverage views for one retired instruction. Called
// from step behind a single `c.Cov != nil` guard, so the disabled hot loop
// pays exactly one predictable branch; the raw word is refetched only on
// the enabled path. Violating or trapping instructions return from step
// early and are not counted — the platform attributes terminal violations
// through the policy audit instead.
func (c *Core) coverStep(pc, off, next uint32) {
	if g := c.Cov.Guest; g != nil {
		g.OnRetire(pc, c.fetchWord(off), next)
	}
}

// set writes a destination register, keeping x0 hardwired to zero.
func (c *Core) set(rd uint8, v uint32) {
	if rd != 0 {
		c.Regs[rd] = v
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func divS(a, b uint32) uint32 {
	switch {
	case b == 0:
		return 0xffffffff
	case a == 0x80000000 && b == 0xffffffff:
		return 0x80000000
	default:
		return uint32(int32(a) / int32(b))
	}
}

func divU(a, b uint32) uint32 {
	if b == 0 {
		return 0xffffffff
	}
	return a / b
}

func remS(a, b uint32) uint32 {
	switch {
	case b == 0:
		return a
	case a == 0x80000000 && b == 0xffffffff:
		return 0
	default:
		return uint32(int32(a) % int32(b))
	}
}

func remU(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	return a % b
}

// load reads size bytes (1, 2 or 4) little-endian, zero-extended.
func (c *Core) load(addr uint32, size uint32, delay *kernel.Time, pc uint32) (uint32, error) {
	c.frAddr = addr
	off := addr - c.ramBase
	if off < c.ramSize && off+size <= c.ramSize {
		switch size {
		case 1:
			return uint32(c.ram[off]), nil
		case 2:
			return uint32(c.ram[off]) | uint32(c.ram[off+1])<<8, nil
		default:
			return uint32(c.ram[off]) | uint32(c.ram[off+1])<<8 |
				uint32(c.ram[off+2])<<16 | uint32(c.ram[off+3])<<24, nil
		}
	}
	p := tlm.Payload{Cmd: tlm.Read, Addr: addr, Data: c.mmioBuf[:size], From: "cpu"}
	c.bus.Transport(&p, delay)
	if p.Resp != tlm.OK {
		return 0, &BusError{What: "load " + p.Resp.String(), Addr: addr, PC: pc}
	}
	var v uint32
	for j := uint32(0); j < size; j++ {
		v |= uint32(c.mmioBuf[j].V) << (8 * j)
	}
	return v, nil
}

// store writes size bytes (1, 2 or 4) little-endian.
func (c *Core) store(addr, val uint32, size uint32, delay *kernel.Time, pc uint32) error {
	c.frAddr = addr
	off := addr - c.ramBase
	if off < c.ramSize && off+size <= c.ramSize {
		for j := uint32(0); j < size; j++ {
			c.ram[off+j] = byte(val >> (8 * j))
		}
		// Keep the decode cache coherent with self-modifying code. The
		// watermark guard keeps the common data store at two compares.
		if c.ic.overlaps(off, off+size) {
			c.ic.invalidate(off, off+size)
		}
		return nil
	}
	for j := uint32(0); j < size; j++ {
		c.mmioBuf[j] = core.TByte{V: byte(val >> (8 * j))}
	}
	p := tlm.Payload{Cmd: tlm.Write, Addr: addr, Data: c.mmioBuf[:size], From: "cpu"}
	c.bus.Transport(&p, delay)
	if p.Resp != tlm.OK {
		return &BusError{What: "store " + p.Resp.String(), Addr: addr, PC: pc}
	}
	return nil
}

// csrOp executes the Zicsr instructions.
func (c *Core) csrOp(i Inst, pc uint32) error {
	csr := uint32(i.Imm)
	old, ok := c.csrRead(csr)
	if !ok {
		return c.trap(CauseIllegalInstr, 0, pc)
	}
	var operand uint32
	imm := i.Op == OpCSRRWI || i.Op == OpCSRRSI || i.Op == OpCSRRCI
	if imm {
		operand = uint32(i.Rs1)
	} else {
		operand = c.Regs[i.Rs1]
	}
	var newVal uint32
	write := true
	switch i.Op {
	case OpCSRRW, OpCSRRWI:
		newVal = operand
	case OpCSRRS, OpCSRRSI:
		newVal = old | operand
		write = i.Rs1 != 0
	default: // CSRRC, CSRRCI
		newVal = old &^ operand
		write = i.Rs1 != 0
	}
	if write {
		if !c.csrWrite(csr, newVal) {
			return c.trap(CauseIllegalInstr, 0, pc)
		}
	}
	c.set(i.Rd, old)
	return nil
}

func (c *Core) csrRead(csr uint32) (uint32, bool) {
	switch csr {
	case CSRMstatus:
		return c.mstatus | MstatusMPP, true
	case CSRMisa:
		return misaRV32IM, true
	case CSRMie:
		return c.mie, true
	case CSRMip:
		return c.mip, true
	case CSRMtvec:
		return c.mtvec, true
	case CSRMepc:
		return c.mepc, true
	case CSRMcause:
		return c.mcause, true
	case CSRMtval:
		return c.mtval, true
	case CSRMscratch:
		return c.mscratch, true
	case CSRMvendorid, CSRMarchid, CSRMimpid, CSRMhartid:
		return 0, true
	case CSRMcycle, CSRCycle, CSRMinstret, CSRInstret, CSRTime:
		return uint32(c.Instret), true
	case CSRMcycleh, CSRCycleh, CSRMinstreth, CSRInstreth, CSRTimeh:
		return uint32(c.Instret >> 32), true
	default:
		return 0, false
	}
}

func (c *Core) csrWrite(csr, v uint32) bool {
	switch csr {
	case CSRMstatus:
		c.mstatus = v & (MstatusMIE | MstatusMPIE)
		c.irqPoll = true
	case CSRMie:
		c.mie = v & (IntMSI | IntMTI | IntMEI)
		c.irqPoll = true
	case CSRMip:
		// Interrupt-pending lines are wired from devices; software writes
		// are ignored (hardwired bits per the privileged spec).
	case CSRMtvec:
		c.mtvec = v &^ 3
	case CSRMepc:
		c.mepc = v &^ 1
	case CSRMcause:
		c.mcause = v
	case CSRMtval:
		c.mtval = v
	case CSRMscratch:
		c.mscratch = v
	case CSRMisa, CSRMvendorid, CSRMarchid, CSRMimpid, CSRMhartid:
		// Read-only: writes ignored.
	case CSRMcycle, CSRMcycleh, CSRMinstret, CSRMinstreth:
		// Counters are maintained by the simulator; writes ignored.
	case CSRCycle, CSRCycleh, CSRInstret, CSRInstreth, CSRTime, CSRTimeh:
		return false // user-mode counter aliases are read-only
	default:
		return false
	}
	return true
}
