package rv32

import "fmt"

// abiNames maps register numbers to ABI names for disassembly.
var abiNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

var csrDisasmNames = map[int32]string{
	CSRMstatus: "mstatus", CSRMisa: "misa", CSRMie: "mie", CSRMtvec: "mtvec",
	CSRMscratch: "mscratch", CSRMepc: "mepc", CSRMcause: "mcause",
	CSRMtval: "mtval", CSRMip: "mip", CSRMhartid: "mhartid",
	CSRMcycle: "mcycle", CSRMinstret: "minstret",
	CSRCycle: "cycle", CSRTime: "time", CSRInstret: "instret",
}

var opNames = [numOps]string{
	OpIllegal: "illegal",
	OpLUI:     "lui", OpAUIPC: "auipc", OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge", OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLBU: "lbu", OpLHU: "lhu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori", OpORI: "ori", OpANDI: "andi",
	OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpADD: "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt", OpSLTU: "sltu",
	OpXOR: "xor", OpSRL: "srl", OpSRA: "sra", OpOR: "or", OpAND: "and",
	OpMUL: "mul", OpMULH: "mulh", OpMULHSU: "mulhsu", OpMULHU: "mulhu",
	OpDIV: "div", OpDIVU: "divu", OpREM: "rem", OpREMU: "remu",
	OpFENCE: "fence", OpFENCEI: "fence.i",
	OpECALL: "ecall", OpEBREAK: "ebreak", OpMRET: "mret", OpWFI: "wfi",
	OpCSRRW: "csrrw", OpCSRRS: "csrrs", OpCSRRC: "csrrc",
	OpCSRRWI: "csrrwi", OpCSRRSI: "csrrsi", OpCSRRCI: "csrrci",
}

// Name returns the mnemonic of the operation.
func (op Op) Name() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

func csrName(imm int32) string {
	if n, ok := csrDisasmNames[imm]; ok {
		return n
	}
	return fmt.Sprintf("0x%x", imm)
}

// Disassemble renders the instruction word at pc as assembly text. Branch
// and jump targets are printed as absolute addresses.
func Disassemble(w, pc uint32) string {
	i := Decode(w)
	n := i.Op.Name()
	rd, rs1, rs2 := abiNames[i.Rd], abiNames[i.Rs1], abiNames[i.Rs2]
	switch i.Op {
	case OpIllegal:
		return fmt.Sprintf(".word 0x%08x", w)
	case OpLUI, OpAUIPC:
		return fmt.Sprintf("%s %s, 0x%x", n, rd, uint32(i.Imm)>>12)
	case OpJAL:
		return fmt.Sprintf("%s %s, 0x%x", n, rd, pc+uint32(i.Imm))
	case OpJALR:
		return fmt.Sprintf("%s %s, %d(%s)", n, rd, i.Imm, rs1)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s %s, %s, 0x%x", n, rs1, rs2, pc+uint32(i.Imm))
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return fmt.Sprintf("%s %s, %d(%s)", n, rd, i.Imm, rs1)
	case OpSB, OpSH, OpSW:
		return fmt.Sprintf("%s %s, %d(%s)", n, rs2, i.Imm, rs1)
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
		return fmt.Sprintf("%s %s, %s, %d", n, rd, rs1, i.Imm)
	case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
		OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU:
		return fmt.Sprintf("%s %s, %s, %s", n, rd, rs1, rs2)
	case OpCSRRW, OpCSRRS, OpCSRRC:
		return fmt.Sprintf("%s %s, %s, %s", n, rd, csrName(i.Imm), rs1)
	case OpCSRRWI, OpCSRRSI, OpCSRRCI:
		return fmt.Sprintf("%s %s, %s, %d", n, rd, csrName(i.Imm), i.Rs1)
	default:
		return n
	}
}
