package rv32

// Decoupled taint monitoring: the VP+ split into a fast ISS front end and a
// parallel tag-propagation monitor, the software analogue of Wahab et al.'s
// DIFT coprocessor and the gem5 drop-based monitors. The front end retires
// instructions at near-VP speed; the monitor goroutine consumes compact
// retire records from a lock-free SPSC ring (internal/dift) and replays tag
// propagation and the obs/cover hooks against shadow state.
//
// Two organizations, chosen at the first Run:
//
//   - Replay mode (fullEmit, an Observer or Cover attached): the front end
//     keeps inline propagation and emits one KindRetire record per retired
//     instruction; the monitor replays the observability hooks off the hot
//     loop in exact inline order, so provenance chains and sequence numbers
//     are preserved bit-for-bit. The ISS stalls only at sync points (Run
//     return, violations, MMIO) and on ring backpressure.
//
//   - Filtered mode (no observers): measurement shows that on small hosts
//     any per-instruction ring traffic loses to inline propagation whenever
//     taint is ubiquitous (the Table I code-injection policy classifies the
//     whole firmware image), so here the filters elide the work instead of
//     deferring it. The front end keeps exact tags itself and emits nothing;
//     three flag-cache tiers prove the common instruction needs no tag work
//     at all:
//
//       - a per-register flag cache (decState.mask): a clear bit proves the
//         register carries the policy-default tag, so all-clear ALU ops
//         write the value half only and skip every clearance lookup covered
//         by defBranchOK/defMemOK;
//       - a Clean block (decState.bstate) proves every byte tag in it is
//         the default: loads skip the tag fold, clear stores skip the tag
//         spread;
//       - a Uniform block proves every byte tag equals the block tag
//         (decState.btag) — the steady state of policy-classified regions:
//         loads take the block tag without folding, and stores whose data
//         tag matches the block tag change no tag state and skip the
//         spread.
//
//     Only accesses that miss every tier fall back to exact per-byte tag
//     propagation with per-block bookkeeping; a block whose last
//     non-default byte dies is re-armed to Clean (CleanedBlocks counts
//     these), restoring full suppression after taint death.
//
// Precision is preserved by construction, not by rollback: every execution
// clearance check (fetch, branch, memory address, region store, output
// port) runs on the front end, at the faulting instruction, against exact
// tags — the fast paths only apply when the flag caches prove the check's
// inputs are default (or match the uniform block tag), and register and RAM
// tags are exact at every instruction boundary in filtered mode. Violations,
// *Result values and final tag state are therefore identical to inline mode.
//
// Ownership protocol (race freedom without locks): in filtered mode the
// front end owns all tag state and the ring stays empty. In replay mode the
// front end owns register values and tags, CSR tags, RAM bytes and the
// decode cache; the monitor owns the shadow register file and the
// observer/coverage state while records are pending. The front end reads
// monitor-owned state only after observing the ring empty (the consumer's
// head store synchronizes-with that load), and the monitor reads front-end
// state only through records (the producer's tail store synchronizes-with
// the consumer's load).

import (
	"math/bits"
	"runtime"
	"time"

	"vpdift/internal/core"
	"vpdift/internal/dift"
	"vpdift/internal/flight"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
	"vpdift/internal/tlm"
)

// Memory flag-cache block geometry.
const (
	decBlockShift = 6
	decBlockSize  = 1 << decBlockShift
)

// Per-block states. Clean is zero so "any spanned block non-Clean" is a
// single OR-and-compare in the hot path.
const (
	bsClean   uint8 = iota
	bsUniform       // every byte tag equals btag (policy-classified regions)
	bsExact         // mixed tags; per-byte state is exact, fold on access
	bsLazy          // not yet scanned; classified on first access
)

// decState carries everything the decoupled mode adds to a TaintCore. The
// front-end-owned and monitor-owned halves are documented on each field
// group; see the package comment for the ownership protocol.
type decState struct {
	ring *dift.Ring
	prop core.Prop
	def  core.Tag

	// fullEmit selects the observability mode: with an Observer or Cover
	// attached the front end keeps full inline propagation and emits one
	// KindRetire record per retired instruction for the monitor to replay
	// the hooks against shadow state (order and seq numbers preserved).
	// Without them the filtered mode A below runs.
	fullEmit bool
	started  bool

	// ---- front-end-owned filter state (filtered mode) ----

	// mask bit r set means register r may carry a non-default tag; clear
	// proves Regs[r].T == def. Register tags themselves are always exact.
	mask uint32
	// bstate is the per-block memory flag cache; btag is the proven uniform
	// tag of bsUniform blocks; nonDef counts non-default byte tags per
	// block (exact for bsExact blocks, used to re-arm Clean on taint death).
	bstate      []uint8
	btag        []core.Tag
	nonDef      []uint16
	dirtyBlocks int
	// defBranchOK / defMemOK precompute AllowedFlow(def, clearance) so the
	// all-clear fast path skips the check entirely.
	defBranchOK bool
	defMemOK    bool
	// storeRanges are the CheckStore region bounds; stores outside every
	// range provably cannot raise a region violation.
	storeRanges [][2]uint32

	// Front-end-owned counters, read at sync points and via DecoupledStats.
	emitted      uint64
	drains       uint64
	backpressure uint64
	stallNs      uint64
	cleanedTotal uint64
	instretAt    uint64

	// ---- monitor-owned shadow state (replay mode) ----

	// shadow holds the monitor's register file: full post-retire words
	// reconstructed from KindRetire records.
	shadow [32]core.Word

	mon monState
}

// EnableDecoupledTaint switches the core into decoupled-monitor mode. Call
// before the first Run; the monitor goroutine starts lazily on that Run (so
// image loading and classification are complete when the initial tag scan
// runs) and is stopped with StopDecoupled.
func (c *TaintCore) EnableDecoupledTaint() {
	if c.dec != nil {
		return
	}
	d := &decState{
		ring: dift.NewRing(0),
		prop: core.NewProp(c.pol),
		def:  c.def,
	}
	d.defBranchOK = !c.checkBranch || c.lat.AllowedFlow(c.def, c.branchClear)
	d.defMemOK = !c.checkMemAddr || c.lat.AllowedFlow(c.def, c.memAddrClear)
	for _, reg := range c.pol.Regions {
		if reg.CheckStore {
			d.storeRanges = append(d.storeRanges, [2]uint32{reg.Start, reg.End})
		}
	}
	c.dec = d
}

// Decoupled reports whether decoupled-monitor mode is enabled.
func (c *TaintCore) Decoupled() bool { return c.dec != nil }

// StopDecoupled drains the ring, stops the monitor goroutine and returns
// the core to inline mode. Final tag state is exact: the drain completes
// every pending shadow write and the register refresh before the goroutine
// exits.
func (c *TaintCore) StopDecoupled() {
	d := c.dec
	if d == nil {
		return
	}
	if d.started {
		c.drainDec()
		close(d.mon.stopC)
		<-d.mon.doneC
	}
	c.dec = nil
}

// startDecoupled runs on the first Run call after enabling: it decides the
// mode, seeds the flag caches from the post-load tag state, and launches
// the monitor.
func (c *TaintCore) startDecoupled() {
	d := c.dec
	d.fullEmit = c.Obs != nil || c.Cov != nil
	d.instretAt = c.Instret
	if d.fullEmit {
		d.shadow = c.Regs
	} else {
		d.scanAll(c)
		for r := 1; r < 32; r++ {
			if c.Regs[r].T != c.def {
				d.mask |= 1 << r
			}
		}
	}
	d.mon = newMonState()
	d.started = true
	go c.monitorLoop()
}

// scanAll allocates the flag caches with every block Lazy: blocks classify
// on first access, so startup cost is proportional to the touched working
// set, not the RAM size (8 MiB would cost milliseconds per run otherwise).
func (d *decState) scanAll(c *TaintCore) {
	nb := (len(c.ram) + decBlockSize - 1) >> decBlockShift
	d.bstate = make([]uint8, nb)
	for b := range d.bstate {
		d.bstate[b] = bsLazy
	}
	d.btag = make([]core.Tag, nb)
	d.nonDef = make([]uint16, nb)
}

// rescanBlock recounts one block's non-default byte tags and reclassifies
// it as Clean, Uniform or Exact.
func (d *decState) rescanBlock(c *TaintCore, b uint32) {
	lo := int(b) << decBlockShift
	hi := lo + decBlockSize
	if hi > len(c.ram) {
		hi = len(c.ram)
	}
	first := c.ram[lo].T
	uniform := true
	n := uint16(0)
	for o := lo; o < hi; o++ {
		t := c.ram[o].T
		if t != d.def {
			n++
		}
		if t != first {
			uniform = false
		}
	}
	d.nonDef[b] = n
	was := d.bstate[b]
	wasDirty := was == bsUniform || was == bsExact
	switch {
	case n == 0:
		d.bstate[b] = bsClean
		if wasDirty {
			d.dirtyBlocks--
		}
	case uniform:
		d.bstate[b] = bsUniform
		d.btag[b] = first
		if !wasDirty {
			d.dirtyBlocks++
		}
	default:
		d.bstate[b] = bsExact
		if !wasDirty {
			d.dirtyBlocks++
		}
	}
}

// DecoupledMemWrite is the tainted RAM's write hook in decoupled mode:
// external writers (DMA peripherals, loaders) mutate byte tags directly, so
// the affected blocks are rescanned. External writes only happen between
// CPU quanta, after Run's mandatory drain.
func (c *TaintCore) DecoupledMemWrite(start, end uint32) {
	d := c.dec
	if d == nil || !d.started || d.fullEmit || start >= end {
		return
	}
	if end > uint32(len(c.ram)) {
		end = uint32(len(c.ram))
	}
	for b := start >> decBlockShift; b <= (end-1)>>decBlockShift; b++ {
		// Lazy blocks stay lazy: they classify on first CPU access anyway.
		if d.bstate[b] != bsLazy {
			d.rescanBlock(c, b)
		}
	}
}

// drainDec is the replay-mode sync point: it blocks until the monitor has
// applied every published record, so the observer/coverage state is final
// before the caller proceeds. In filtered mode the ring is always empty and
// this is a single atomic load.
func (c *TaintCore) drainDec() {
	d := c.dec
	if d == nil || !d.started || d.ring.Empty() {
		return
	}
	start := time.Now()
	for !d.ring.Empty() {
		d.mon.wake()
		runtime.Gosched()
	}
	d.stallNs += uint64(time.Since(start))
	d.drains++
}

// push publishes one record, spinning (and waking the monitor) on
// backpressure. The monitor is also woken every 1024 records so large
// batches start draining before the sync point.
func (d *decState) push(rec *dift.Record) {
	d.emitted++
	if !d.ring.Push(rec) {
		for {
			d.backpressure++
			d.mon.wake()
			runtime.Gosched()
			if d.ring.Push(rec) {
				break
			}
		}
	}
	if d.emitted&1023 == 0 {
		d.mon.wake()
	}
}

// inStoreRange reports whether addr falls inside any CheckStore region.
func (d *decState) inStoreRange(addr uint32) bool {
	for _, r := range d.storeRanges {
		if addr >= r[0] && addr < r[1] {
			return true
		}
	}
	return false
}

// DecoupledStats is a snapshot of the decoupled monitor's counters. Consume
// it at sync points (after Run returns) for exact values.
type DecoupledStats struct {
	// Emitted counts records published to the ring; Suppressed counts
	// retired instructions whose records the filters dropped.
	Emitted    uint64
	Suppressed uint64
	// Drains counts sync points that found records still pending; StallNs
	// is the total time the front end spent waiting for those drains.
	Drains  uint64
	StallNs uint64
	// Backpressure counts failed pushes against a full ring.
	Backpressure uint64
	// CleanedBlocks counts flag-cache blocks re-armed after taint death.
	CleanedBlocks uint64
	// RingOccupancy and DirtyBlocks/LiveRegs describe the current instant.
	RingOccupancy int
	DirtyBlocks   int
	LiveRegs      int
	// FullEmit reports observability mode (one record per instruction).
	FullEmit bool
}

// DecoupledStats reports the monitor's counters; ok is false when
// decoupled mode is not enabled (or not yet started).
func (c *TaintCore) DecoupledStats() (s DecoupledStats, ok bool) {
	d := c.dec
	if d == nil || !d.started {
		return DecoupledStats{}, false
	}
	s = DecoupledStats{
		Emitted:       d.emitted,
		Drains:        d.drains,
		StallNs:       d.stallNs,
		Backpressure:  d.backpressure,
		CleanedBlocks: d.cleanedTotal,
		RingOccupancy: d.ring.Len(),
		DirtyBlocks:   d.dirtyBlocks,
		LiveRegs:      bits.OnesCount32(d.mask),
		FullEmit:      d.fullEmit,
	}
	if !d.fullEmit {
		if retired := c.Instret - d.instretAt; retired > s.Emitted {
			s.Suppressed = retired - s.Emitted
		}
	}
	return s, true
}

// emitRetire publishes the fullEmit-mode record for one retired
// instruction in place of the inline observeStep/coverStep calls. Field
// assignments mirror exactly what those hooks would have consumed: S1T
// carries the pre-joined OnOp tag for ALU records (the join happens on the
// front end so the observer's LUB count matches inline mode), load
// addresses come from the pre-execution operand snapshot, and Val/ValT are
// the post-writeback destination.
func (c *TaintCore) emitRetire(i Inst, pc, off, next uint32) {
	d := c.dec
	rec := dift.Record{
		Kind: dift.KindRetire,
		PC:   pc,
		Insn: c.fetchWord(off),
		Next: next,
		Op:   uint8(i.Op),
		Rd:   i.Rd,
		Rs1:  i.Rs1,
		Rs2:  i.Rs2,
	}
	switch i.Op {
	case OpJALR:
		rec.S1T = c.obsS1.T
		rec.Val, rec.ValT = c.Regs[i.Rd].V, c.Regs[i.Rd].T
	case OpMRET:
		rec.S1T = c.mepc.T
	case OpLB, OpLBU:
		rec.Size, rec.Addr = 1, c.obsS1.V+uint32(i.Imm)
		rec.Val, rec.ValT = c.Regs[i.Rd].V, c.Regs[i.Rd].T
	case OpLH, OpLHU:
		rec.Size, rec.Addr = 2, c.obsS1.V+uint32(i.Imm)
		rec.Val, rec.ValT = c.Regs[i.Rd].V, c.Regs[i.Rd].T
	case OpLW:
		rec.Size, rec.Addr = 4, c.obsS1.V+uint32(i.Imm)
		rec.Val, rec.ValT = c.Regs[i.Rd].V, c.Regs[i.Rd].T
	case OpSB:
		rec.Size, rec.Addr = 1, c.Regs[i.Rs1].V+uint32(i.Imm)
		rec.Val, rec.ValT = c.Regs[i.Rs2].V, c.Regs[i.Rs2].T
	case OpSH:
		rec.Size, rec.Addr = 2, c.Regs[i.Rs1].V+uint32(i.Imm)
		rec.Val, rec.ValT = c.Regs[i.Rs2].V, c.Regs[i.Rs2].T
	case OpSW:
		rec.Size, rec.Addr = 4, c.Regs[i.Rs1].V+uint32(i.Imm)
		rec.Val, rec.ValT = c.Regs[i.Rs2].V, c.Regs[i.Rs2].T
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
		rec.S1T = c.obsS1.T
		rec.Val, rec.ValT = c.Regs[i.Rd].V, c.Regs[i.Rd].T
	case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
		OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU:
		rec.S1T = c.lat.LUB(c.obsS1.T, c.obsS2.T)
		rec.Val, rec.ValT = c.Regs[i.Rd].V, c.Regs[i.Rd].T
	case OpLUI, OpAUIPC, OpJAL,
		OpCSRRW, OpCSRRS, OpCSRRC, OpCSRRWI, OpCSRRSI, OpCSRRCI:
		rec.Val, rec.ValT = c.Regs[i.Rd].V, c.Regs[i.Rd].T
	}
	d.push(&rec)
}

// runDecoupled is Run's mode-A loop: stepDec instead of step, and a
// mandatory drain at every return so callers (the SoC kernel loop, metrics
// samplers, peripherals running between quanta) always observe final tag
// state.
func (c *TaintCore) runDecoupled(max uint64, delay *kernel.Time) (n uint64, st RunStatus, err error) {
	for n < max {
		if c.Halted {
			c.drainDec()
			return n, RunHalt, nil
		}
		st, err = c.stepDec(delay)
		if err != nil {
			c.drainDec()
			return n, st, err
		}
		n++
		c.Instret++
		if st != RunOK {
			c.drainDec()
			return n, st, nil
		}
	}
	c.drainDec()
	return n, RunOK, nil
}

// decALUImmSlow is the I-type ALU writeback once the flag cache hit (a
// source or the destination may be tainted): propagate the exact source tag
// and keep the mask bit in sync. The all-clear fast path is written inline
// in stepDec's ALU case.
func (c *TaintCore) decALUImmSlow(i Inst, v uint32) {
	if i.Rd == 0 {
		return
	}
	d := c.dec
	t := c.Regs[i.Rs1].T
	if t == d.def {
		d.mask &^= 1 << i.Rd
	} else {
		d.mask |= 1 << i.Rd
	}
	c.Regs[i.Rd] = core.W(v, t)
}

// decALU2Slow is the R-type counterpart of decALUImmSlow.
func (c *TaintCore) decALU2Slow(i Inst, v uint32) {
	if i.Rd == 0 {
		return
	}
	d := c.dec
	t := c.Regs[i.Rs1].T
	if t2 := c.Regs[i.Rs2].T; t2 != t {
		t = c.lat.LUB(t, t2)
	}
	if t == d.def {
		d.mask &^= 1 << i.Rd
	} else {
		d.mask |= 1 << i.Rd
	}
	c.Regs[i.Rd] = core.W(v, t)
}

// decSetClear writes a destination with an untainted result (LUI, AUIPC,
// link registers): a set flag bit means this is a register taint death.
func (c *TaintCore) decSetClear(rd uint8, v uint32) {
	if rd == 0 {
		return
	}
	d := c.dec
	d.mask &^= 1 << rd
	c.Regs[rd] = core.W(v, d.def)
}

// decSyncReg reconciles the flag cache with a register the classic path
// wrote with an exact inline tag (CSR results).
func (c *TaintCore) decSyncReg(rd uint8) {
	if rd == 0 {
		return
	}
	d := c.dec
	if c.Regs[rd].T == d.def {
		d.mask &^= 1 << rd
	} else {
		d.mask |= 1 << rd
	}
}

// decLoadOp is filtered mode's complete load instruction: address check,
// memory read, sign extension, and destination writeback in one
// (non-inlined) call — the same call count as the classic path's load().
// Clean blocks skip the tag fold entirely; Uniform blocks take the proven
// block tag; only Exact blocks fold per-byte tags.
func (c *TaintCore) decLoadOp(i Inst, delay *kernel.Time, pc uint32) error {
	d := c.dec
	size := uint32(4)
	switch i.Op {
	case OpLB, OpLBU:
		size = 1
	case OpLH, OpLHU:
		size = 2
	}
	addr := c.Regs[i.Rs1].V + uint32(i.Imm)
	c.frAddr = addr
	if c.checkMemAddr && (!d.defMemOK || d.mask>>i.Rs1&1 != 0) {
		if bt := c.Regs[i.Rs1].T; !c.addrTagOK(bt) {
			return c.addrViolation(bt, addr, pc, i.Rs1)
		}
	}
	var v uint32
	t := d.def
	off := addr - c.ramBase
	if !c.ForceBusMem && off < c.ramSize && off+size <= c.ramSize {
		b0, b1 := off>>decBlockShift, (off+size-1)>>decBlockShift
		s := d.bstate[b0] | d.bstate[b1]
		if s == bsClean || (s == bsUniform && d.bstate[b0] == d.bstate[b1] && d.btag[b0] == d.btag[b1]) {
			if s != bsClean {
				t = d.btag[b0]
			}
			switch size {
			case 1:
				v = uint32(c.ram[off].V)
			case 2:
				v = uint32(c.ram[off].V) | uint32(c.ram[off+1].V)<<8
			default:
				v = uint32(c.ram[off].V) | uint32(c.ram[off+1].V)<<8 |
					uint32(c.ram[off+2].V)<<16 | uint32(c.ram[off+3].V)<<24
			}
		} else {
			if d.bstate[b0] == bsLazy {
				d.rescanBlock(c, b0)
			}
			if b1 != b0 && d.bstate[b1] == bsLazy {
				d.rescanBlock(c, b1)
			}
			switch size {
			case 1:
				b := c.ram[off]
				v, t = uint32(b.V), b.T
			case 2:
				b0, b1 := c.ram[off], c.ram[off+1]
				v, t = uint32(b0.V)|uint32(b1.V)<<8, core.Fold2(c.lat, b0, b1)
			default:
				b0, b1, b2, b3 := c.ram[off], c.ram[off+1], c.ram[off+2], c.ram[off+3]
				v = uint32(b0.V) | uint32(b1.V)<<8 | uint32(b2.V)<<16 | uint32(b3.V)<<24
				t = core.Fold4(c.lat, b0, b1, b2, b3)
			}
		}
	} else {
		p := tlm.Payload{Cmd: tlm.Read, Addr: addr, Data: c.mmioBuf[:size], From: "cpu"}
		c.bus.Transport(&p, delay)
		if p.Resp != tlm.OK {
			return &BusError{What: "load " + p.Resp.String(), Addr: addr, PC: pc}
		}
		t = c.mmioBuf[0].T
		for j := uint32(0); j < size; j++ {
			v |= uint32(c.mmioBuf[j].V) << (8 * j)
			t = c.lat.LUB(t, c.mmioBuf[j].T)
		}
	}
	switch i.Op {
	case OpLB:
		v = uint32(int32(v<<24) >> 24)
	case OpLH:
		v = uint32(int32(v<<16) >> 16)
	}
	if rd := i.Rd; rd != 0 {
		if t == d.def {
			d.mask &^= 1 << rd
		} else {
			d.mask |= 1 << rd
		}
		c.Regs[rd] = core.W(v, t)
	}
	return nil
}

// decStoreTags is the filtered-mode store's slow path: spread the exact data
// tag per byte, maintaining the non-default counts and the block states. A
// block whose last non-default byte dies re-arms to Clean — this is what
// restores full suppression after taint death.
func (c *TaintCore) decStoreTags(off, size uint32, val uint32, t core.Tag) {
	d := c.dec
	for j := uint32(0); j < size; j++ {
		o := off + j
		old := c.ram[o].T
		c.ram[o] = core.TByte{V: byte(val >> (8 * j)), T: t}
		if old == t {
			continue
		}
		b := o >> decBlockShift
		if old == d.def {
			d.nonDef[b]++
		} else if t == d.def {
			d.nonDef[b]--
		}
		was := d.bstate[b]
		if d.nonDef[b] == 0 {
			if was != bsClean {
				d.bstate[b] = bsClean
				d.dirtyBlocks--
				d.cleanedTotal++
			}
		} else {
			if was == bsClean {
				d.dirtyBlocks++
			}
			d.bstate[b] = bsExact
		}
	}
}

// decStore is filtered mode's store: Clean blocks swallow default-tagged
// data and Uniform blocks swallow matching-tagged data with no tag writes
// at all; everything else takes the exact per-byte spread.
func (c *TaintCore) decStore(i Inst, size uint32, delay *kernel.Time, pc uint32) error {
	d := c.dec
	addr := c.Regs[i.Rs1].V + uint32(i.Imm)
	c.frAddr = addr
	if c.checkMemAddr && (!d.defMemOK || d.mask>>i.Rs1&1 != 0) {
		if bt := c.Regs[i.Rs1].T; !c.addrTagOK(bt) {
			return c.addrViolation(bt, addr, pc, i.Rs1)
		}
	}
	if len(d.storeRanges) != 0 && d.inStoreRange(addr) {
		if err := c.pol.CheckStore(addr, c.Regs[i.Rs2].T); err != nil {
			if v, ok := err.(*core.Violation); ok {
				v.PC = pc
			}
			return err
		}
	}
	off := addr - c.ramBase
	if !c.ForceBusMem && off < c.ramSize && off+size <= c.ramSize {
		val := c.Regs[i.Rs2].V
		t := d.def
		if d.mask>>i.Rs2&1 != 0 {
			t = c.Regs[i.Rs2].T
		}
		b0, b1 := off>>decBlockShift, (off+size-1)>>decBlockShift
		s := d.bstate[b0] | d.bstate[b1]
		match := (s == bsClean && t == d.def) ||
			(s == bsUniform && d.bstate[b0] == d.bstate[b1] && d.btag[b0] == t && d.btag[b1] == t)
		if match {
			switch size {
			case 1:
				c.ram[off].V = byte(val)
			case 2:
				c.ram[off].V = byte(val)
				c.ram[off+1].V = byte(val >> 8)
			default:
				c.ram[off].V = byte(val)
				c.ram[off+1].V = byte(val >> 8)
				c.ram[off+2].V = byte(val >> 16)
				c.ram[off+3].V = byte(val >> 24)
			}
		} else {
			// Lazy blocks must be classified first so the non-default counts
			// the spread maintains are exact.
			if d.bstate[b0] == bsLazy {
				d.rescanBlock(c, b0)
			}
			if b1 != b0 && d.bstate[b1] == bsLazy {
				d.rescanBlock(c, b1)
			}
			c.decStoreTags(off, size, val, t)
		}
		if c.ic.overlaps(off, off+size) {
			c.ic.invalidate(off, off+size)
		}
		return nil
	}
	// MMIO: the peripheral's output clearance sees the exact data tag.
	val := c.Regs[i.Rs2]
	for j := uint32(0); j < size; j++ {
		c.mmioBuf[j] = core.TByte{V: byte(val.V >> (8 * j)), T: val.T}
	}
	p := tlm.Payload{Cmd: tlm.Write, Addr: addr, Data: c.mmioBuf[:size], From: "cpu"}
	c.bus.Transport(&p, delay)
	if p.Resp != tlm.OK {
		return &BusError{What: "store " + p.Resp.String(), Addr: addr, PC: pc}
	}
	return nil
}

// stepDec is mode A's interpreter step. It mirrors step exactly in
// architectural behaviour; the differences are confined to tag handling:
// clearance checks gate on the flag caches before falling back to the
// drained classic path, and register/memory writebacks go through the
// dec* helpers above. Every new opcode added to step must be added here —
// the inline/decoupled parity suite (TestDecoupledParity*, internal/wk)
// catches divergence.
func (c *TaintCore) stepDec(delay *kernel.Time) (RunStatus, error) {
	if c.irqPoll {
		if taken, err := c.takeIRQ(); err != nil {
			return RunOK, err
		} else if taken {
			return RunOK, nil
		}
	}

	d := c.dec
	pc := c.PC
	off := pc - c.ramBase
	var i Inst
	var w uint32
	if idx := int(off >> 2); off&3 == 0 && idx < len(c.ic.ents) {
		e := &c.ic.ents[idx]
		if e.state != 0 {
			i = e.inst
			w = e.word
			if c.Tracer != nil {
				c.Tracer(pc, w)
			}
			if c.Retire != nil {
				c.Retire(pc, w)
			}
			if !e.allowed {
				return RunOK, c.fetchViolation(pc, w, e.tag)
			}
		} else {
			b0, b1, b2, b3 := c.ram[off], c.ram[off+1], c.ram[off+2], c.ram[off+3]
			w = uint32(b0.V) | uint32(b1.V)<<8 | uint32(b2.V)<<16 | uint32(b3.V)<<24
			if c.Tracer != nil {
				c.Tracer(pc, w)
			}
			if c.Retire != nil {
				c.Retire(pc, w)
			}
			e.tag, e.allowed = 0, true
			if c.checkFetch {
				e.tag = c.foldFetchTag(b0, b1, b2, b3)
				e.allowed = c.lat.AllowedFlow(e.tag, c.fetchClear)
			}
			i = Decode(w)
			e.inst = i
			e.word = w
			e.state = icValid
			c.ic.noteFill(off)
			if !e.allowed {
				return RunOK, c.fetchViolation(pc, w, e.tag)
			}
		}
	} else {
		if off >= c.ramSize || off+4 > c.ramSize {
			return RunOK, &BusError{What: "instruction fetch outside RAM", Addr: pc, PC: pc}
		}
		c.uncachedFetch++
		b0, b1, b2, b3 := c.ram[off], c.ram[off+1], c.ram[off+2], c.ram[off+3]
		w = uint32(b0.V) | uint32(b1.V)<<8 | uint32(b2.V)<<16 | uint32(b3.V)<<24
		if c.Tracer != nil {
			c.Tracer(pc, w)
		}
		if c.Retire != nil {
			c.Retire(pc, w)
		}
		if c.checkFetch {
			t := c.foldFetchTag(b0, b1, b2, b3)
			if !c.lat.AllowedFlow(t, c.fetchClear) {
				return RunOK, c.fetchViolation(pc, w, t)
			}
		}
		i = Decode(w)
	}

	next := pc + 4
	r := &c.Regs
	switch i.Op {
	case OpLUI:
		if v := uint32(i.Imm); d.mask>>i.Rd&1 == 0 {
			if i.Rd != 0 {
				r[i.Rd] = core.W(v, d.def)
			}
		} else {
			c.decSetClear(i.Rd, v)
		}
	case OpAUIPC:
		if v := pc + uint32(i.Imm); d.mask>>i.Rd&1 == 0 {
			if i.Rd != 0 {
				r[i.Rd] = core.W(v, d.def)
			}
		} else {
			c.decSetClear(i.Rd, v)
		}
	case OpJAL:
		if d.mask>>i.Rd&1 == 0 {
			if i.Rd != 0 {
				r[i.Rd] = core.W(next, d.def)
			}
		} else {
			c.decSetClear(i.Rd, next)
		}
		next = pc + uint32(i.Imm)
	case OpJALR:
		if !d.defBranchOK || d.mask>>i.Rs1&1 != 0 {
			if !c.branchTagOK(r[i.Rs1].T) {
				return RunOK, c.branchViolation(r[i.Rs1].T, pc, i.Rs1, obs.RegNone)
			}
		}
		t := (r[i.Rs1].V + uint32(i.Imm)) &^ 1
		if d.mask>>i.Rd&1 == 0 {
			if i.Rd != 0 {
				r[i.Rd] = core.W(next, d.def)
			}
		} else {
			c.decSetClear(i.Rd, next)
		}
		next = t
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		if !d.defBranchOK || (d.mask>>i.Rs1|d.mask>>i.Rs2)&1 != 0 {
			condTag := c.lat.LUB(r[i.Rs1].T, r[i.Rs2].T)
			if !c.branchTagOK(condTag) {
				return RunOK, c.branchViolation(condTag, pc, i.Rs1, i.Rs2)
			}
		}
		a, b := r[i.Rs1].V, r[i.Rs2].V
		var taken bool
		switch i.Op {
		case OpBEQ:
			taken = a == b
		case OpBNE:
			taken = a != b
		case OpBLT:
			taken = int32(a) < int32(b)
		case OpBGE:
			taken = int32(a) >= int32(b)
		case OpBLTU:
			taken = a < b
		default:
			taken = a >= b
		}
		if taken {
			next = pc + uint32(i.Imm)
		}
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		if err := c.decLoadOp(i, delay, pc); err != nil {
			return RunOK, err
		}
	case OpSB:
		if err := c.decStore(i, 1, delay, pc); err != nil {
			return RunOK, err
		}
	case OpSH:
		if err := c.decStore(i, 2, delay, pc); err != nil {
			return RunOK, err
		}
	case OpSW:
		if err := c.decStore(i, 4, delay, pc); err != nil {
			return RunOK, err
		}
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
		var v uint32
		switch i.Op {
		case OpADDI:
			v = r[i.Rs1].V + uint32(i.Imm)
		case OpSLTI:
			v = b2u(int32(r[i.Rs1].V) < i.Imm)
		case OpSLTIU:
			v = b2u(r[i.Rs1].V < uint32(i.Imm))
		case OpXORI:
			v = r[i.Rs1].V ^ uint32(i.Imm)
		case OpORI:
			v = r[i.Rs1].V | uint32(i.Imm)
		case OpANDI:
			v = r[i.Rs1].V & uint32(i.Imm)
		case OpSLLI:
			v = r[i.Rs1].V << uint(i.Imm)
		case OpSRLI:
			v = r[i.Rs1].V >> uint(i.Imm)
		default:
			v = uint32(int32(r[i.Rs1].V) >> uint(i.Imm))
		}
		// Flag-cache fast path: all-clear operands and destination change no
		// tag state — write the value half only, emit nothing.
		if (d.mask>>i.Rs1|d.mask>>i.Rd)&1 == 0 {
			if i.Rd != 0 {
				r[i.Rd].V = v
			}
		} else {
			c.decALUImmSlow(i, v)
		}
	case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
		OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU:
		var v uint32
		switch i.Op {
		case OpADD:
			v = r[i.Rs1].V + r[i.Rs2].V
		case OpSUB:
			v = r[i.Rs1].V - r[i.Rs2].V
		case OpSLL:
			v = r[i.Rs1].V << (r[i.Rs2].V & 31)
		case OpSLT:
			v = b2u(int32(r[i.Rs1].V) < int32(r[i.Rs2].V))
		case OpSLTU:
			v = b2u(r[i.Rs1].V < r[i.Rs2].V)
		case OpXOR:
			v = r[i.Rs1].V ^ r[i.Rs2].V
		case OpSRL:
			v = r[i.Rs1].V >> (r[i.Rs2].V & 31)
		case OpSRA:
			v = uint32(int32(r[i.Rs1].V) >> (r[i.Rs2].V & 31))
		case OpOR:
			v = r[i.Rs1].V | r[i.Rs2].V
		case OpAND:
			v = r[i.Rs1].V & r[i.Rs2].V
		case OpMUL:
			v = r[i.Rs1].V * r[i.Rs2].V
		case OpMULH:
			v = uint32(uint64(int64(int32(r[i.Rs1].V))*int64(int32(r[i.Rs2].V))) >> 32)
		case OpMULHSU:
			v = uint32(uint64(int64(int32(r[i.Rs1].V))*int64(r[i.Rs2].V)) >> 32)
		case OpMULHU:
			v = uint32(uint64(r[i.Rs1].V) * uint64(r[i.Rs2].V) >> 32)
		case OpDIV:
			v = divS(r[i.Rs1].V, r[i.Rs2].V)
		case OpDIVU:
			v = divU(r[i.Rs1].V, r[i.Rs2].V)
		case OpREM:
			v = remS(r[i.Rs1].V, r[i.Rs2].V)
		default:
			v = remU(r[i.Rs1].V, r[i.Rs2].V)
		}
		if (d.mask>>i.Rs1|d.mask>>i.Rs2|d.mask>>i.Rd)&1 == 0 {
			if i.Rd != 0 {
				r[i.Rd].V = v
			}
		} else {
			c.decALU2Slow(i, v)
		}
	case OpFENCE:
		// No-op: the memory model is sequentially consistent.
	case OpFENCEI:
		c.ic.invalidateAll()
	case OpECALL:
		return RunOK, c.trap(CauseECallM, 0, pc)
	case OpEBREAK:
		return RunOK, c.trap(CauseBreakpoint, 0, pc)
	case OpMRET:
		// mepc's tag is front-end-owned (CSR tags never decouple), so the
		// check runs inline with no drain.
		if !c.branchTagOK(c.mepc.T) {
			return RunOK, c.branchViolation(c.mepc.T, pc, obs.RegNone, obs.RegNone)
		}
		st := c.mstatus.V
		if st&MstatusMPIE != 0 {
			st |= MstatusMIE
		} else {
			st &^= MstatusMIE
		}
		st |= MstatusMPIE
		c.mstatus = core.W(st, c.mstatus.T)
		c.irqPoll = true
		next = c.mepc.V
	case OpWFI:
		if !c.PendingIRQ() {
			c.PC = next
			return RunWFI, nil
		}
	case OpCSRRW, OpCSRRS, OpCSRRC, OpCSRRWI, OpCSRRSI, OpCSRRCI:
		// CSR and register tags are both front-end-owned and exact, so the
		// classic CSR path runs unchanged; only the flag cache needs syncing.
		if err := c.csrOp(i, pc); err != nil {
			return RunOK, err
		}
		if c.PC != pc {
			return RunOK, nil
		}
		c.decSyncReg(i.Rd)
	default:
		return RunOK, c.trap(CauseIllegalInstr, c.fetchWord(off), pc)
	}
	if c.FR != nil {
		// Flight capture, hand-inlined (see flightcap.go).
		fl := flightFlags[i.Op]
		if next != pc+4 {
			fl |= flight.FlagTaken
		}
		if i.Rd != 0 && c.Regs[i.Rd].T != c.def {
			fl |= flight.FlagTaintRd
		}
		var faddr uint32
		if fl&(flight.FlagLoad|flight.FlagStore) != 0 {
			faddr = c.frAddr
		}
		rec := c.FR.Slot()
		rec.Time = c.Instret
		rec.PC = pc
		rec.Insn = w
		rec.Addr = faddr
		rec.Aux = 0
		rec.Kind = flight.KindRetire
		rec.Flags = fl
	}
	if c.PC == pc {
		c.PC = next
	}
	return RunOK, nil
}
