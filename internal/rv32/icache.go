package rv32

import "vpdift/internal/core"

// This file implements the predecoded-instruction cache shared by both
// cores. Interpreting a guest spends a large share of its time re-decoding
// the same text words; real VPs (the original riscv-vp among them) eliminate
// that with an instruction cache over the DMI region, and this is the Go
// analog: a direct-mapped array with one entry per word-aligned RAM word,
// indexed by (pc - ramBase) >> 2.
//
// Correctness rests on write invalidation. Every path that can change RAM
// contents (or, on the VP+, RAM byte *tags*) drops the covered entries:
//
//   - the CPU's direct-path stores invalidate inline (Core.store,
//     TaintCore.store);
//   - bus-initiated writes — DMA transfers, TLM-routed data accesses when
//     soc.Config.TaintMemViaTLM is set, mem.Memory.Load/Classify — arrive
//     via the memory's write hooks, registered at core construction;
//   - FENCE.I is an explicit full-invalidate point, the architectural
//     "make stores visible to fetch" instruction.
//
// Both cores get the cache: if only the VP+ were accelerated, the Table II
// VP+/VP overhead factor would be flattered by a slow baseline.
//
// On the VP+ each entry additionally carries a fetch-tag summary — the LUB
// of the four instruction-byte tags and the result of the fetch-clearance
// check — so the per-fetch 3×LUB + AllowedFlow of a checked policy collapses
// to one cached comparison on a hit. Tag changes invalidate entries exactly
// like value changes, which keeps the summary honest (the code-injection
// detections of the WK suite depend on freshly written bytes being
// re-checked).

// icEntry is one direct-mapped cache slot. The plain core uses only inst
// and state; the taint core also fills the fetch-tag summary.
type icEntry struct {
	inst Inst
	// word is the raw little-endian instruction word inst was decoded from,
	// kept so hit-path consumers (flight recorder, tracer) need not
	// reassemble it from RAM bytes.
	word uint32
	// state is 0 when the entry is invalid, icValid when inst (and, on the
	// taint core, tag/allowed) describe the current RAM word.
	state uint8
	// tag is the LUB of the word's four byte tags (fetch-tag summary).
	tag core.Tag
	// allowed caches AllowedFlow(tag, fetchClear); always true when the
	// policy does not check fetches.
	allowed bool
}

const icValid uint8 = 1

// icache is the direct-mapped predecoded-instruction cache. lo/hi form a
// byte-offset watermark over the filled entries so the store fast path can
// skip invalidation with two compares when it writes outside any region
// that ever held cached instructions (the overwhelmingly common data
// store).
type icache struct {
	ents  []icEntry
	lo    uint32 // lowest filled byte offset (inclusive)
	hi    uint32 // highest filled byte offset (exclusive); 0 when empty
	fills uint64 // decode-cache miss count (each fill is one slow decode)
}

// newICache sizes the cache to cover a RAM of ramSize bytes.
func newICache(ramSize uint32) icache {
	return icache{ents: make([]icEntry, ramSize/4), lo: ^uint32(0)}
}

// noteFill extends the watermark over the word at byte offset off.
func (ic *icache) noteFill(off uint32) {
	ic.fills++
	if off < ic.lo {
		ic.lo = off
	}
	if off+4 > ic.hi {
		ic.hi = off + 4
	}
}

// overlaps reports whether a write to byte offsets [start, end) can touch a
// filled entry. It is the cheap inline guard for the store hot path.
func (ic *icache) overlaps(start, end uint32) bool {
	return start < ic.hi && end > ic.lo
}

// invalidate drops the entries covering byte offsets [start, end).
func (ic *icache) invalidate(start, end uint32) {
	if !ic.overlaps(start, end) || start >= end {
		return
	}
	first := start >> 2
	last := (end - 1) >> 2
	if last >= uint32(len(ic.ents)) {
		last = uint32(len(ic.ents)) - 1
	}
	for i := first; i <= last; i++ {
		ic.ents[i].state = 0
	}
}

// invalidateAll drops every entry (FENCE.I). Only the watermarked region is
// cleared, then the watermark resets.
func (ic *icache) invalidateAll() {
	if ic.hi == 0 {
		return
	}
	first := ic.lo >> 2
	last := (ic.hi - 1) >> 2
	if last >= uint32(len(ic.ents)) {
		last = uint32(len(ic.ents)) - 1
	}
	clear(ic.ents[first : last+1])
	ic.lo = ^uint32(0)
	ic.hi = 0
}
