package rv32

import (
	"errors"
	"testing"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/mem"
	"vpdift/internal/tlm"
)

// taintRig bundles a TaintCore test platform.
type taintRig struct {
	c   *TaintCore
	img *asm.Image
	ram *mem.Memory
	pol *core.Policy
}

// buildTaint assembles src (plus the halt epilogue) and builds a TaintCore
// under the given policy. The program image is loaded with the policy's
// load-time classification applied per byte.
func buildTaint(t *testing.T, src string, pol *core.Policy) *taintRig {
	t.Helper()
	if err := pol.Validate(); err != nil {
		t.Fatal(err)
	}
	img, err := asm.Assemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ram := mem.New(testRAMSize, pol.Default)
	flat := img.Flatten()
	for i, b := range flat {
		addr := testRAMBase + uint32(i)
		ram.Data()[i] = core.TByte{V: b, T: pol.ClassifyAt(addr)}
	}
	// Classification also applies to zero-initialized regions (BSS, key
	// buffers) beyond the image.
	for i := len(flat); i < len(ram.Data()); i++ {
		addr := testRAMBase + uint32(i)
		if tag := pol.ClassifyAt(addr); tag != pol.Default {
			ram.Data()[i].T = tag
		}
	}
	bus := tlm.NewBus()
	c := NewTaintCore(ram, testRAMBase, bus, pol)
	bus.MustMap("exit", testExit, 4, tlm.TargetFunc(func(p *tlm.Payload, d *kernel.Time) {
		c.Halted = true
		p.Resp = tlm.OK
	}))
	c.PC = img.Entry
	return &taintRig{c: c, img: img, ram: ram, pol: pol}
}

// run executes until halt or error.
func (r *taintRig) run(t *testing.T) error {
	t.Helper()
	var delay kernel.Time
	n, st, err := r.c.Run(1_000_000, &delay)
	if err != nil {
		return err
	}
	if st != RunHalt {
		t.Fatalf("status = %v after %d instructions, want halt", st, n)
	}
	return nil
}

// mustViolate runs and requires a violation of the given kind.
func (r *taintRig) mustViolate(t *testing.T, kind core.ViolationKind) *core.Violation {
	t.Helper()
	err := r.run(t)
	var v *core.Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want a violation", err)
	}
	if v.Kind != kind {
		t.Fatalf("violation kind = %v, want %v (%v)", v.Kind, kind, v)
	}
	return v
}

// confidentialityPolicy: IFP-1, secret region [secret, secret+len) is HC.
func confidentialityPolicy(secretStart, secretLen uint32) *core.Policy {
	l := core.IFP1()
	lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
	return core.NewPolicy(l, lc).WithRegion(core.RegionRule{
		Name: "secret", Start: secretStart, End: secretStart + secretLen,
		Classify: true, Class: hc,
	})
}

func TestTaintPropagationThroughALU(t *testing.T) {
	// secret is HC; sums and moves derived from it must be HC; unrelated
	// data stays LC.
	src := `
_start:
	la t0, secret
	lw a0, 0(t0)        # a0: HC
	li a1, 5            # a1: LC
	add a2, a0, a1      # HC (LUB)
	mv a3, a1           # LC
	xor a4, a0, a0      # HC (value 0, still tainted)
	addi a5, a2, 1      # HC via immediate op
	call halt
	.data
secret:
	.word 0x1337
`
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	r := buildTaint(t, src, pol)
	if err := r.run(t); err != nil {
		t.Fatal(err)
	}
	hc := pol.L.MustTag(core.ClassHC)
	lc := pol.L.MustTag(core.ClassLC)
	checks := map[int]core.Tag{10: hc, 11: lc, 12: hc, 13: lc, 14: hc, 15: hc}
	for reg, want := range checks {
		if got := r.c.Regs[reg].T; got != want {
			t.Errorf("x%d tag = %s, want %s", reg, pol.L.Name(got), pol.L.Name(want))
		}
	}
	if r.c.Regs[12].V != 0x1337+5 {
		t.Errorf("a2 value = 0x%x", r.c.Regs[12].V)
	}
}

func TestTaintStoreAndLoadRoundTrip(t *testing.T) {
	src := `
_start:
	la t0, secret
	lw a0, 0(t0)
	la t1, buf
	sw a0, 0(t1)        # taints buf bytes
	sb a0, 4(t1)
	lw a1, 0(t1)        # HC again
	lbu a2, 4(t1)       # HC
	lw a3, 8(t1)        # untouched: LC
	call halt
	.data
secret:
	.word 0xAABBCCDD
buf:
	.space 12
`
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	r := buildTaint(t, src, pol)
	if err := r.run(t); err != nil {
		t.Fatal(err)
	}
	hc, lc := pol.L.MustTag(core.ClassHC), pol.L.MustTag(core.ClassLC)
	if r.c.Regs[11].T != hc || r.c.Regs[12].T != hc {
		t.Error("tags must survive the store/load round trip")
	}
	if r.c.Regs[13].T != lc {
		t.Error("untouched memory must stay LC")
	}
	// Partial overwrite: storing an LC byte into the middle of a tainted
	// word makes the word's load tag still HC (LUB of remaining bytes).
	buf := img.MustSymbol("buf") - testRAMBase
	if r.ram.Data()[buf].T != hc || r.ram.Data()[buf+4].T != hc {
		t.Error("stored bytes must carry the stored tag")
	}
}

func TestBranchClearanceViolation(t *testing.T) {
	// if(secret == 1) — branching on HC data with LC branch clearance is the
	// implicit-flow guard (paper Section V-B2a).
	src := `
_start:
	la t0, secret
	lw a0, 0(t0)
	beqz a0, 1f
1:	call halt
	.data
secret:
	.word 1
`
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	pol.WithBranchClearance(pol.L.MustTag(core.ClassLC))
	r := buildTaint(t, src, pol)
	v := r.mustViolate(t, core.KindBranchClearance)
	if v.PC == 0 {
		t.Error("violation must carry the PC")
	}
}

func TestBranchOnPublicDataPasses(t *testing.T) {
	src := `
_start:
	li a0, 3
1:	addi a0, a0, -1
	bnez a0, 1b
	call halt
`
	pol := confidentialityPolicy(0x9f000000, 4) // secret region unused
	pol.WithBranchClearance(pol.L.MustTag(core.ClassLC))
	r := buildTaint(t, src, pol)
	if err := r.run(t); err != nil {
		t.Fatal(err)
	}
}

func TestJalrClearanceViolation(t *testing.T) {
	src := `
_start:
	la t0, secret
	lw a0, 0(t0)
	la t1, halt
	add t1, t1, a0      # target derived from secret
	jr t1
	.data
secret:
	.word 0
`
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	pol.WithBranchClearance(pol.L.MustTag(core.ClassLC))
	r := buildTaint(t, src, pol)
	r.mustViolate(t, core.KindBranchClearance)
}

func TestMemAddrClearanceViolation(t *testing.T) {
	// Mem[secret] = public — address side channel (paper Section V-B2c).
	src := `
_start:
	la t0, secret
	lw a0, 0(t0)
	la t1, buf
	add t1, t1, a0
	sw x0, 0(t1)        # store with secret-derived address
	call halt
	.data
secret:
	.word 4
buf:
	.space 64
`
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	pol.WithMemAddrClearance(pol.L.MustTag(core.ClassLC))
	r := buildTaint(t, src, pol)
	v := r.mustViolate(t, core.KindMemAddrClearance)
	if v.Addr == 0 {
		t.Error("violation must carry the address")
	}

	// The load direction leaks too.
	src2 := `
_start:
	la t0, secret
	lw a0, 0(t0)
	la t1, buf
	add t1, t1, a0
	lw a1, 0(t1)
	call halt
	.data
secret:
	.word 4
buf:
	.space 64
`
	img2 := asm.MustAssemble(src2+testEpilogue, asm.Options{Base: testRAMBase})
	pol2 := confidentialityPolicy(img2.MustSymbol("secret"), 4)
	pol2.WithMemAddrClearance(pol2.L.MustTag(core.ClassLC))
	r2 := buildTaint(t, src2, pol2)
	r2.mustViolate(t, core.KindMemAddrClearance)
}

func TestFetchClearanceDetectsInjectedCode(t *testing.T) {
	// IFP-2 integrity policy: program text is HI, fetch clearance HI, the
	// "injected" code region is LI (as if written by an attacker). Jumping
	// into it must raise a fetch-clearance violation — the Table I detector.
	src := `
_start:
	la t0, payload
	jr t0
	.data
payload:
	.word 0x00000013    # nop encoded as data, classified LI
	.word 0x00008067    # ret
`
	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := core.NewPolicy(l, li).
		WithFetchClearance(hi).
		WithRegion(core.RegionRule{
			Name: "text", Start: img.Base, End: img.Base + uint32(len(img.Text)),
			Classify: true, Class: hi,
		})
	r := buildTaint(t, src, pol)
	v := r.mustViolate(t, core.KindFetchClearance)
	if v.PC != img.MustSymbol("payload") {
		t.Errorf("violation at pc=0x%x, want payload 0x%x", v.PC, img.MustSymbol("payload"))
	}
}

func TestFetchClearancePassesForTrustedCode(t *testing.T) {
	src := `
_start:
	li a0, 1
	call halt
`
	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := core.NewPolicy(l, li).
		WithFetchClearance(hi).
		WithRegion(core.RegionRule{
			Name: "text", Start: img.Base, End: img.Base + uint32(len(img.Text)),
			Classify: true, Class: hi,
		})
	r := buildTaint(t, src, pol)
	if err := r.run(t); err != nil {
		t.Fatal(err)
	}
}

func TestStoreClearanceProtectsRegion(t *testing.T) {
	// Integrity: untrusted (LI) data must not overwrite the protected PIN.
	src := `
_start:
	la t0, pin
	la t1, input
	lbu a0, 0(t1)       # LI data
	sb a0, 0(t0)        # must violate
	call halt
	.data
pin:
	.word 0x44434241
input:
	.byte 0x66
`
	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pin := img.MustSymbol("pin")
	pol := core.NewPolicy(l, li).WithRegion(core.RegionRule{
		Name: "pin", Start: pin, End: pin + 4,
		Classify: true, Class: hi,
		CheckStore: true, Clearance: hi,
	})
	r := buildTaint(t, src, pol)
	v := r.mustViolate(t, core.KindStoreClearance)
	if v.Addr != pin {
		t.Errorf("violation addr = 0x%x, want pin 0x%x", v.Addr, pin)
	}
}

func TestStoreClearanceAllowsTrustedWrite(t *testing.T) {
	// HI data may be written into the HI-protected region (this permissive
	// behaviour is exactly what the paper's entropy attack exploits; the
	// per-byte fix is tested in internal/immo).
	src := `
_start:
	la t0, pin
	lbu a0, 0(t0)       # HI data (pin byte 0)
	sb a0, 1(t0)        # overwrite pin byte 1 with byte 0: allowed under HI
	call halt
	.data
pin:
	.word 0x44434241
`
	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pin := img.MustSymbol("pin")
	pol := core.NewPolicy(l, li).WithRegion(core.RegionRule{
		Name: "pin", Start: pin, End: pin + 4,
		Classify: true, Class: hi,
		CheckStore: true, Clearance: hi,
	})
	r := buildTaint(t, src, pol)
	if err := r.run(t); err != nil {
		t.Fatal(err)
	}
	if r.ram.Data()[pin-testRAMBase+1].V != 0x41 {
		t.Error("trusted overwrite did not happen")
	}
}

func TestPerByteKeyPolicyStopsEntropyAttack(t *testing.T) {
	// The same overwrite with the per-byte key policy must be detected.
	src := `
_start:
	la t0, pin
	lbu a0, 0(t0)
	sb a0, 1(t0)
	call halt
	.data
pin:
	.word 0x44434241
`
	l, err := core.PerByteKeyIntegrity(4)
	if err != nil {
		t.Fatal(err)
	}
	li := l.MustTag(core.ClassLI)
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pin := img.MustSymbol("pin")
	pol := core.NewPolicy(l, li)
	for i := uint32(0); i < 4; i++ {
		k := l.MustTag([]string{"K0", "K1", "K2", "K3"}[i])
		pol.WithRegion(core.RegionRule{
			Name: "pin", Start: pin + i, End: pin + i + 1,
			Classify: true, Class: k,
			CheckStore: true, Clearance: k,
		})
	}
	r := buildTaint(t, src, pol)
	v := r.mustViolate(t, core.KindStoreClearance)
	if v.HaveClass() != "K0" || v.RequiredClass() != "K1" {
		t.Errorf("violation %s -> %s, want K0 -> K1", v.HaveClass(), v.RequiredClass())
	}
}

func TestTrapVectorClearance(t *testing.T) {
	// mtvec written from a secret-derived value: taking a trap must violate
	// the branch clearance (the paper checks the trap handler address with
	// the same clearance).
	src := `
_start:
	la t0, secret
	lw a0, 0(t0)
	la t1, handler
	add t1, t1, a0      # handler address depends on secret (value 0)
	csrw mtvec, t1
	ecall
	call halt
handler:
	mret
	.data
secret:
	.word 0
`
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	pol.WithBranchClearance(pol.L.MustTag(core.ClassLC))
	r := buildTaint(t, src, pol)
	r.mustViolate(t, core.KindBranchClearance)
}

func TestMretTargetClearance(t *testing.T) {
	src := `
_start:
	la t0, secret
	lw a0, 0(t0)
	la t1, target
	add t1, t1, a0
	csrw mepc, t1       # tainted return target
	mret
target:
	call halt
	.data
secret:
	.word 0
`
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	pol.WithBranchClearance(pol.L.MustTag(core.ClassLC))
	r := buildTaint(t, src, pol)
	r.mustViolate(t, core.KindBranchClearance)
}

func TestCSRTagPropagation(t *testing.T) {
	src := `
_start:
	la t0, secret
	lw a0, 0(t0)
	csrw mscratch, a0   # CSR carries the tag
	csrr a1, mscratch   # read it back
	call halt
	.data
secret:
	.word 0x55
`
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	r := buildTaint(t, src, pol)
	if err := r.run(t); err != nil {
		t.Fatal(err)
	}
	if r.c.Regs[11].T != pol.L.MustTag(core.ClassHC) {
		t.Error("tag must round-trip through a CSR")
	}
}

func TestMMIOTagsOnTaintCore(t *testing.T) {
	// A device register returning HC-tagged bytes must taint the loaded
	// word; a store must deliver the store tag to the device.
	l := core.IFP1()
	lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
	pol := core.NewPolicy(l, lc)
	src := `
_start:
	li t0, 0x20000000
	lw a0, 0(t0)
	sw a0, 4(t0)
	call halt
`
	r := buildTaint(t, src, pol)
	// Rewire with the device: build a fresh rig by hand.
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	ram := mem.New(testRAMSize, lc)
	if err := ram.Load(0, img.Flatten(), lc); err != nil {
		t.Fatal(err)
	}
	bus := tlm.NewBus()
	c := NewTaintCore(ram, testRAMBase, bus, pol)
	var seenTag core.Tag
	bus.MustMap("exit", testExit, 4, tlm.TargetFunc(func(p *tlm.Payload, d *kernel.Time) {
		c.Halted = true
		p.Resp = tlm.OK
	}))
	bus.MustMap("dev", 0x20000000, 8, tlm.TargetFunc(func(p *tlm.Payload, d *kernel.Time) {
		switch p.Cmd {
		case tlm.Read:
			for j := range p.Data {
				p.Data[j] = core.B(0x11, hc)
			}
		case tlm.Write:
			seenTag = p.Data[0].T
		}
		p.Resp = tlm.OK
	}))
	c.PC = img.Entry
	var delay kernel.Time
	if _, st, err := c.Run(1000, &delay); err != nil || st != RunHalt {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if c.Regs[10].T != hc {
		t.Error("MMIO read must deliver device tags")
	}
	if seenTag != hc {
		t.Error("MMIO write must deliver register tags to the device")
	}
	_ = r
}

func TestTaintCoreUnhandledTrapAndBusError(t *testing.T) {
	l := core.IFP1()
	pol := core.NewPolicy(l, l.MustTag(core.ClassLC))
	r := buildTaint(t, "_start:\n\tecall\n", pol)
	var delay kernel.Time
	_, _, err := r.c.Run(100, &delay)
	var te *TrapError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TrapError", err)
	}

	r2 := buildTaint(t, "_start:\n\tli t0, 0x30000000\n\tlw a0, 0(t0)\n", pol)
	_, _, err = r2.c.Run(100, &delay)
	var be *BusError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BusError", err)
	}
}

func TestTaintCoreTrapHandling(t *testing.T) {
	// Full trap round trip on the taint core (same program as the plain
	// core's TestTrapAndMret).
	l := core.IFP2()
	pol := core.NewPolicy(l, l.MustTag(core.ClassLI))
	r := buildTaint(t, `
_start:
	la t0, handler
	csrw mtvec, t0
	li s0, 0
	ecall
	li s1, 1
	call halt
handler:
	addi s0, s0, 1
	csrr t1, mepc
	addi t1, t1, 4
	csrw mepc, t1
	mret
`, pol)
	if err := r.run(t); err != nil {
		t.Fatal(err)
	}
	if r.c.Regs[8].V != 1 || r.c.Regs[9].V != 1 {
		t.Error("trap round trip failed on taint core")
	}
}

func TestTaintCoreWFIAndInterrupt(t *testing.T) {
	l := core.IFP2()
	pol := core.NewPolicy(l, l.MustTag(core.ClassLI))
	r := buildTaint(t, `
_start:
	la t0, handler
	csrw mtvec, t0
	li t1, 0x80
	csrw mie, t1
	csrsi mstatus, 8
	wfi
	li s1, 1
	call halt
handler:
	addi s0, s0, 1
	csrw mie, x0
	mret
`, pol)
	var delay kernel.Time
	_, st, err := r.c.Run(1000, &delay)
	if err != nil || st != RunWFI {
		t.Fatalf("st=%v err=%v", st, err)
	}
	r.c.SetIRQ(IntMTI, true)
	_, st, err = r.c.Run(1000, &delay)
	if err != nil || st != RunHalt {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if r.c.Regs[8].V != 1 || r.c.Regs[9].V != 1 {
		t.Error("interrupt round trip failed")
	}
}

func TestX0KeepsDefaultTag(t *testing.T) {
	src := `
_start:
	la t0, secret
	lw a0, 0(t0)
	add x0, a0, a0      # write to x0 discarded, tag too
	mv a1, x0
	call halt
	.data
secret:
	.word 9
`
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := confidentialityPolicy(img.MustSymbol("secret"), 4)
	r := buildTaint(t, src, pol)
	if err := r.run(t); err != nil {
		t.Fatal(err)
	}
	if r.c.Regs[10+1].T != pol.L.MustTag(core.ClassLC) || r.c.Regs[0].V != 0 {
		t.Error("x0 must stay zero with the default tag")
	}
}
