package rv32

import (
	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/flight"
	"vpdift/internal/kernel"
	"vpdift/internal/mem"
	"vpdift/internal/obs"
	"vpdift/internal/tlm"
)

// TaintCore is the DIFT-enabled ("VP+") RV32IM instruction-set simulator.
// It mirrors Core exactly in architectural behaviour and adds, per the
// paper's Section V:
//
//   - tag storage: every register and every memory byte carries a security
//     class tag;
//   - tag propagation: computational instructions join source tags with the
//     IFP's LUB, loads fold the tags of the accessed bytes, stores write the
//     data tag to every byte;
//   - execution clearance: configurable checks on the instruction-fetch
//     word, on branch conditions and indirect-jump/trap-vector targets, and
//     on load/store addresses;
//   - region store clearance: integrity protection of configured memory
//     ranges.
//
// A check failure aborts execution with a *core.Violation.
type TaintCore struct {
	Regs    [32]core.Word
	PC      uint32
	Instret uint64
	Halted  bool

	// Tracer, when non-nil, is invoked before each instruction executes.
	Tracer func(pc, insn uint32)

	// Obs, when non-nil, records taint-propagation provenance and metrics
	// (see internal/obs). Every hook call sits behind a nil check, exactly
	// like Tracer, so a core without an observer pays only predictable
	// not-taken branches.
	Obs *obs.Observer

	// obsS1/obsS2 snapshot the source operands consumed by the current
	// instruction for observeStep (the interpreter switch may overwrite
	// them when rd aliases a source). Core fields rather than step locals
	// so the disabled-observer hot loop does not carry two extra live
	// values across the switch.
	obsS1, obsS2 core.Word

	// ForceBusMem disables the DMI-style direct RAM path for data
	// accesses: every load/store becomes a full TLM transaction with
	// per-access to_bytes/from_bytes conversion, the memory-interface
	// organization the paper describes for its VP+ (Section V-B1,
	// modification 3). It roughly doubles the DIFT overhead factor; see
	// the ablation benches and EXPERIMENTS.md.
	ForceBusMem bool

	ram     []core.TByte
	ramBase uint32
	ramSize uint32
	bus     *tlm.Bus

	// ic is the predecoded-instruction cache (see icache.go). On this core
	// each entry also carries the fetch-tag summary: the LUB of the word's
	// byte tags and the cached fetch-clearance verdict, recomputed only
	// when a write invalidates the entry.
	ic icache

	// irqPoll gates the per-instruction interrupt check; see Core.irqPoll.
	irqPoll bool

	lat *core.Lattice
	pol *core.Policy
	def core.Tag

	// Cached policy switches (hot path).
	checkFetch   bool
	fetchClear   core.Tag
	checkBranch  bool
	branchClear  core.Tag
	checkMemAddr bool
	memAddrClear core.Tag
	hasRegions   bool

	mstatus  core.Word
	mie      core.Word
	mip      uint32
	mtvec    core.Word
	mepc     core.Word
	mcause   core.Word
	mtval    core.Word
	mscratch core.Word

	mmioBuf [4]core.TByte

	// Retire, when non-nil, is invoked once per executed instruction with
	// its pc and raw word — the guest profiler's hook (internal/trace).
	// New fields live at the end of the struct: inserting them higher up
	// shifts the hot fields (Regs, ram, ic) across cache lines, which
	// costs the tight interpreter loop measurably.
	Retire func(pc, insn uint32)

	// uncachedFetch counts fetches bypassing the decode cache; see
	// Core.uncachedFetch.
	uncachedFetch uint64

	// Cov, when non-nil, receives post-retire coverage events: guest
	// block/edge coverage, taint heatmap samples, and policy-audit check
	// counts (internal/cover). One predictable branch per retire when nil.
	Cov *cover.Cover

	// dec, when non-nil, decouples tag propagation onto the parallel
	// monitor goroutine (see decoupled.go). Nil in inline mode: the classic
	// hot loop pays only predictable not-taken branches, like Tracer/Obs.
	dec *decState

	// FR, when non-nil, is the always-on flight recorder: one compressed
	// record per retire, captured post-switch on both the inline step and
	// the decoupled front end (see flightcap.go) — never from the monitor
	// goroutine, so the ring stays single-threaded. frAddr is the last
	// load/store effective address, stashed by the memory helpers.
	FR     *flight.Recorder
	frAddr uint32
}

// NewTaintCore builds a DIFT core over tainted RAM, enforcing the policy.
// The policy must have been validated against its lattice.
func NewTaintCore(ram *mem.Memory, ramBase uint32, bus *tlm.Bus, pol *core.Policy) *TaintCore {
	// The propagation engine (internal/core's Prop) is the single source of
	// the flattened policy switches; the inline core copies them into its own
	// fields to keep the hot-loop layout, and the decoupled monitor shares
	// the same Prop value directly.
	p := core.NewProp(pol)
	c := &TaintCore{
		ram:     ram.Data(),
		ramBase: ramBase,
		ramSize: ram.Size(),
		bus:     bus,
		lat:     p.L,
		pol:     p.Pol,
		def:     p.Def,

		checkFetch:   p.CheckFetch,
		fetchClear:   p.FetchClear,
		checkBranch:  p.CheckBranch,
		branchClear:  p.BranchClear,
		checkMemAddr: p.CheckMemAddr,
		memAddrClear: p.MemAddrClear,
		hasRegions:   p.HasRegions,

		ic:      newICache(ram.Size()),
		irqPoll: true,
	}
	ram.AddWriteHook(c.InvalidateDecodeCache)
	for i := range c.Regs {
		c.Regs[i] = core.W(0, c.def)
	}
	c.mstatus = core.W(0, c.def)
	c.mie = core.W(0, c.def)
	c.mtvec = core.W(0, c.def)
	c.mepc = core.W(0, c.def)
	c.mcause = core.W(0, c.def)
	c.mtval = core.W(0, c.def)
	c.mscratch = core.W(0, c.def)
	return c
}

// DisableDecodeCache turns the predecoded-instruction cache off: every
// fetch folds byte tags and decodes again. For ablation benchmarks.
func (c *TaintCore) DisableDecodeCache() { c.ic = icache{} }

// DecodeCacheFills reports how many predecoded-cache slots have been filled
// (i.e. slow-path decodes); the metrics exporter pairs it with Instret to
// derive the hit rate.
func (c *TaintCore) DecodeCacheFills() uint64 { return c.ic.fills }

// DecodeCacheStats reports the decode-cache miss breakdown; see
// Core.DecodeCacheStats.
func (c *TaintCore) DecodeCacheStats() (fills, uncached uint64) {
	return c.ic.fills, c.uncachedFetch
}

// InvalidateDecodeCache drops predecoded entries (and their fetch-tag
// summaries) covering RAM byte offsets [start, end). Registered as the
// tainted RAM's write hook.
func (c *TaintCore) InvalidateDecodeCache(start, end uint32) { c.ic.invalidate(start, end) }

// SetIRQ drives the machine interrupt-pending lines.
func (c *TaintCore) SetIRQ(line uint32, level bool) {
	if level {
		c.mip |= line
		c.irqPoll = true
	} else {
		c.mip &^= line
	}
}

// PendingIRQ reports whether any enabled interrupt is pending.
func (c *TaintCore) PendingIRQ() bool { return c.mie.V&c.mip != 0 }

// Run executes up to max instructions; see Core.Run. In decoupled mode
// every return is a sync point: the ring is drained so callers observe
// final tag state.
func (c *TaintCore) Run(max uint64, delay *kernel.Time) (n uint64, st RunStatus, err error) {
	if d := c.dec; d != nil {
		if !d.started {
			c.startDecoupled()
		}
		if !d.fullEmit {
			return c.runDecoupled(max, delay)
		}
		defer c.drainDec()
	}
	for n < max {
		if c.Halted {
			return n, RunHalt, nil
		}
		st, err = c.step(delay)
		if err != nil {
			return n, st, err
		}
		n++
		c.Instret++
		if st != RunOK {
			return n, st, nil
		}
	}
	return n, RunOK, nil
}

func (c *TaintCore) takeIRQ() (bool, error) {
	if c.mstatus.V&MstatusMIE == 0 {
		c.irqPoll = false
		return false, nil
	}
	pending := c.mie.V & c.mip
	if pending == 0 {
		c.irqPoll = false
		return false, nil
	}
	var cause uint32
	switch {
	case pending&IntMEI != 0:
		cause = CauseMExtInt
	case pending&IntMSI != 0:
		cause = causeInterruptBit | 3
	default:
		cause = CauseMTimerInt
	}
	return true, c.trap(cause, 0, c.PC)
}

// trap enters the machine trap handler. Per the paper, the trap-vector
// target is subject to the branch execution clearance ("the same clearance
// is used to check the interrupt/trap handler address").
func (c *TaintCore) trap(cause, tval, epc uint32) error {
	if c.mtvec.V == 0 {
		return &TrapError{Cause: cause, Tval: tval, PC: epc}
	}
	if c.checkBranch {
		if c.Obs != nil {
			c.Obs.Checks.Branch++
		}
		if !c.lat.AllowedFlow(c.mtvec.T, c.branchClear) {
			v := core.NewViolation(c.lat, core.KindBranchClearance, c.mtvec.T, c.branchClear).
				WithPC(epc).WithValue(c.mtvec.V)
			if c.Obs != nil {
				c.drainDec()
				c.Obs.OnViolation(v, 0, 0)
			}
			return v
		}
	}
	if c.FR != nil {
		c.FR.MarkTrap(c.Instret, epc, tval, cause)
	}
	c.mepc = core.W(epc, c.def)
	c.mcause = core.W(cause, c.def)
	c.mtval = core.W(tval, c.def)
	st := c.mstatus.V
	if st&MstatusMIE != 0 {
		st |= MstatusMPIE
	} else {
		st &^= MstatusMPIE
	}
	st &^= MstatusMIE
	st |= MstatusMPP
	c.mstatus = core.W(st, c.mstatus.T)
	c.PC = c.mtvec.V &^ 3
	return nil
}

// branchTagOK performs (and counts) the branch-condition / indirect-target
// clearance check. The violation construction is outlined into
// branchViolation so this stays within the inlining budget — it runs on
// every branch, jalr and mret.
func (c *TaintCore) branchTagOK(t core.Tag) bool {
	if !c.checkBranch {
		return true
	}
	if c.Obs != nil {
		c.Obs.Checks.Branch++
	}
	return c.lat.AllowedFlow(t, c.branchClear)
}

// branchViolation builds the branch-clearance violation after branchTagOK
// failed. rs1/rs2 name the source registers for provenance (obs.RegNone
// when the condition comes from a CSR such as mepc or mtvec).
func (c *TaintCore) branchViolation(t core.Tag, pc uint32, rs1, rs2 uint8) *core.Violation {
	v := core.NewViolation(c.lat, core.KindBranchClearance, t, c.branchClear).WithPC(pc)
	if c.Obs != nil {
		// Decoupled mode: the monitor must finish replaying earlier events
		// before the violation is recorded, or seq numbers would diverge.
		c.drainDec()
		c.Obs.SetInsn(pc, c.insnWord(pc))
		var p1, p2 uint64
		if rs1 != obs.RegNone {
			p1 = c.Obs.RegSource(rs1)
		}
		if rs2 != obs.RegNone {
			p2 = c.Obs.RegSource(rs2)
		}
		c.Obs.OnViolation(v, p1, p2)
	}
	return v
}

// addrTagOK performs (and counts) the memory-address clearance check; the
// cold violation path lives in addrViolation, keeping this inlinable inside
// load and store.
func (c *TaintCore) addrTagOK(t core.Tag) bool {
	if !c.checkMemAddr {
		return true
	}
	if c.Obs != nil {
		c.Obs.Checks.MemAddr++
	}
	return c.lat.AllowedFlow(t, c.memAddrClear)
}

// addrViolation builds the mem-address-clearance violation after addrTagOK
// failed; base names the address-forming register for provenance.
func (c *TaintCore) addrViolation(t core.Tag, addr, pc uint32, base uint8) *core.Violation {
	v := core.NewViolation(c.lat, core.KindMemAddrClearance, t, c.memAddrClear).
		WithPC(pc).WithAddr(addr)
	if c.Obs != nil {
		c.drainDec()
		c.Obs.SetInsn(pc, c.insnWord(pc))
		c.Obs.OnViolation(v, c.Obs.RegSource(base), 0)
	}
	return v
}

// fetchWord assembles the little-endian instruction word at RAM offset off;
// the caller guarantees off+4 <= ramSize.
func (c *TaintCore) fetchWord(off uint32) uint32 {
	return uint32(c.ram[off].V) | uint32(c.ram[off+1].V)<<8 |
		uint32(c.ram[off+2].V)<<16 | uint32(c.ram[off+3].V)<<24
}

// foldFetchTag joins the four byte tags of an instruction word via the
// shared propagation engine's fold (core.Fold4): all-equal short circuit,
// LUB chain otherwise.
func (c *TaintCore) foldFetchTag(b0, b1, b2, b3 core.TByte) core.Tag {
	return core.Fold4(c.lat, b0, b1, b2, b3)
}

func (c *TaintCore) step(delay *kernel.Time) (RunStatus, error) {
	if c.irqPoll {
		if taken, err := c.takeIRQ(); err != nil {
			return RunOK, err
		} else if taken {
			return RunOK, nil
		}
	}

	pc := c.PC
	off := pc - c.ramBase
	var i Inst
	var w uint32
	if idx := int(off >> 2); off&3 == 0 && idx < len(c.ic.ents) {
		e := &c.ic.ents[idx]
		if e.state != 0 {
			i = e.inst
			w = e.word
			if c.Tracer != nil {
				c.Tracer(pc, w)
			}
			if c.Retire != nil {
				c.Retire(pc, w)
			}
			if !e.allowed {
				// Cached fetch-clearance verdict: the word's tag summary
				// may not flow to the execution unit.
				return RunOK, c.fetchViolation(pc, w, e.tag)
			}
		} else {
			b0, b1, b2, b3 := c.ram[off], c.ram[off+1], c.ram[off+2], c.ram[off+3]
			w = uint32(b0.V) | uint32(b1.V)<<8 | uint32(b2.V)<<16 | uint32(b3.V)<<24
			if c.Tracer != nil {
				c.Tracer(pc, w)
			}
			if c.Retire != nil {
				c.Retire(pc, w)
			}
			e.tag, e.allowed = 0, true
			if c.checkFetch {
				if c.Obs != nil {
					c.Obs.Checks.Fetch++
				}
				e.tag = c.foldFetchTag(b0, b1, b2, b3)
				e.allowed = c.lat.AllowedFlow(e.tag, c.fetchClear)
			}
			i = Decode(w)
			e.inst = i
			e.word = w
			e.state = icValid
			c.ic.noteFill(off)
			if !e.allowed {
				return RunOK, c.fetchViolation(pc, w, e.tag)
			}
		}
	} else {
		// Misaligned PC, fetch outside RAM, or the decode cache is off.
		if off >= c.ramSize || off+4 > c.ramSize {
			return RunOK, &BusError{What: "instruction fetch outside RAM", Addr: pc, PC: pc}
		}
		c.uncachedFetch++
		b0, b1, b2, b3 := c.ram[off], c.ram[off+1], c.ram[off+2], c.ram[off+3]
		w = uint32(b0.V) | uint32(b1.V)<<8 | uint32(b2.V)<<16 | uint32(b3.V)<<24
		if c.Tracer != nil {
			c.Tracer(pc, w)
		}
		if c.Retire != nil {
			c.Retire(pc, w)
		}
		if c.checkFetch {
			if c.Obs != nil {
				c.Obs.Checks.Fetch++
			}
			t := c.foldFetchTag(b0, b1, b2, b3)
			if !c.lat.AllowedFlow(t, c.fetchClear) {
				return RunOK, c.fetchViolation(pc, w, t)
			}
		}
		i = Decode(w)
	}

	next := pc + 4
	r := &c.Regs
	if c.Obs != nil || c.dec != nil {
		// The decoupled fullEmit mode needs the same pre-execution operand
		// snapshot the observer does (retire records carry source tags).
		c.obsS1, c.obsS2 = r[i.Rs1], r[i.Rs2]
	}
	switch i.Op {
	case OpLUI:
		c.set(i.Rd, core.W(uint32(i.Imm), c.def))
	case OpAUIPC:
		c.set(i.Rd, core.W(pc+uint32(i.Imm), c.def))
	case OpJAL:
		c.set(i.Rd, core.W(next, c.def))
		next = pc + uint32(i.Imm)
	case OpJALR:
		// Indirect jump: the target register steers control flow, so it is
		// subject to the branch clearance.
		if !c.branchTagOK(r[i.Rs1].T) {
			return RunOK, c.branchViolation(r[i.Rs1].T, pc, i.Rs1, obs.RegNone)
		}
		t := (r[i.Rs1].V + uint32(i.Imm)) &^ 1
		c.set(i.Rd, core.W(next, c.def))
		next = t
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		condTag := c.lat.LUB(r[i.Rs1].T, r[i.Rs2].T)
		if !c.branchTagOK(condTag) {
			return RunOK, c.branchViolation(condTag, pc, i.Rs1, i.Rs2)
		}
		a, b := r[i.Rs1].V, r[i.Rs2].V
		var taken bool
		switch i.Op {
		case OpBEQ:
			taken = a == b
		case OpBNE:
			taken = a != b
		case OpBLT:
			taken = int32(a) < int32(b)
		case OpBGE:
			taken = int32(a) >= int32(b)
		case OpBLTU:
			taken = a < b
		default:
			taken = a >= b
		}
		if taken {
			next = pc + uint32(i.Imm)
		}
	case OpLB:
		v, err := c.load(i, 1, delay, pc)
		if err != nil {
			return RunOK, err
		}
		c.set(i.Rd, core.W(uint32(int32(v.V<<24)>>24), v.T))
	case OpLH:
		v, err := c.load(i, 2, delay, pc)
		if err != nil {
			return RunOK, err
		}
		c.set(i.Rd, core.W(uint32(int32(v.V<<16)>>16), v.T))
	case OpLW:
		v, err := c.load(i, 4, delay, pc)
		if err != nil {
			return RunOK, err
		}
		c.set(i.Rd, v)
	case OpLBU:
		v, err := c.load(i, 1, delay, pc)
		if err != nil {
			return RunOK, err
		}
		c.set(i.Rd, v)
	case OpLHU:
		v, err := c.load(i, 2, delay, pc)
		if err != nil {
			return RunOK, err
		}
		c.set(i.Rd, v)
	case OpSB:
		if err := c.store(i, 1, delay, pc); err != nil {
			return RunOK, err
		}
	case OpSH:
		if err := c.store(i, 2, delay, pc); err != nil {
			return RunOK, err
		}
	case OpSW:
		if err := c.store(i, 4, delay, pc); err != nil {
			return RunOK, err
		}
	case OpADDI:
		c.aluImm(i, r[i.Rs1].V+uint32(i.Imm))
	case OpSLTI:
		c.aluImm(i, b2u(int32(r[i.Rs1].V) < i.Imm))
	case OpSLTIU:
		c.aluImm(i, b2u(r[i.Rs1].V < uint32(i.Imm)))
	case OpXORI:
		c.aluImm(i, r[i.Rs1].V^uint32(i.Imm))
	case OpORI:
		c.aluImm(i, r[i.Rs1].V|uint32(i.Imm))
	case OpANDI:
		c.aluImm(i, r[i.Rs1].V&uint32(i.Imm))
	case OpSLLI:
		c.aluImm(i, r[i.Rs1].V<<uint(i.Imm))
	case OpSRLI:
		c.aluImm(i, r[i.Rs1].V>>uint(i.Imm))
	case OpSRAI:
		c.aluImm(i, uint32(int32(r[i.Rs1].V)>>uint(i.Imm)))
	case OpADD:
		c.alu(i, r[i.Rs1].V+r[i.Rs2].V)
	case OpSUB:
		c.alu(i, r[i.Rs1].V-r[i.Rs2].V)
	case OpSLL:
		c.alu(i, r[i.Rs1].V<<(r[i.Rs2].V&31))
	case OpSLT:
		c.alu(i, b2u(int32(r[i.Rs1].V) < int32(r[i.Rs2].V)))
	case OpSLTU:
		c.alu(i, b2u(r[i.Rs1].V < r[i.Rs2].V))
	case OpXOR:
		c.alu(i, r[i.Rs1].V^r[i.Rs2].V)
	case OpSRL:
		c.alu(i, r[i.Rs1].V>>(r[i.Rs2].V&31))
	case OpSRA:
		c.alu(i, uint32(int32(r[i.Rs1].V)>>(r[i.Rs2].V&31)))
	case OpOR:
		c.alu(i, r[i.Rs1].V|r[i.Rs2].V)
	case OpAND:
		c.alu(i, r[i.Rs1].V&r[i.Rs2].V)
	case OpMUL:
		c.alu(i, r[i.Rs1].V*r[i.Rs2].V)
	case OpMULH:
		c.alu(i, uint32(uint64(int64(int32(r[i.Rs1].V))*int64(int32(r[i.Rs2].V)))>>32))
	case OpMULHSU:
		c.alu(i, uint32(uint64(int64(int32(r[i.Rs1].V))*int64(r[i.Rs2].V))>>32))
	case OpMULHU:
		c.alu(i, uint32(uint64(r[i.Rs1].V)*uint64(r[i.Rs2].V)>>32))
	case OpDIV:
		c.alu(i, divS(r[i.Rs1].V, r[i.Rs2].V))
	case OpDIVU:
		c.alu(i, divU(r[i.Rs1].V, r[i.Rs2].V))
	case OpREM:
		c.alu(i, remS(r[i.Rs1].V, r[i.Rs2].V))
	case OpREMU:
		c.alu(i, remU(r[i.Rs1].V, r[i.Rs2].V))
	case OpFENCE:
		// No-op: the memory model is sequentially consistent.
	case OpFENCEI:
		// Explicit fetch/store synchronization: drop every predecoded
		// entry together with its fetch-tag summary.
		c.ic.invalidateAll()
	case OpECALL:
		return RunOK, c.trap(CauseECallM, 0, pc)
	case OpEBREAK:
		return RunOK, c.trap(CauseBreakpoint, 0, pc)
	case OpMRET:
		// Return target comes from mepc: a control transfer steered by a
		// register, so the branch clearance applies (like jalr).
		if !c.branchTagOK(c.mepc.T) {
			return RunOK, c.branchViolation(c.mepc.T, pc, obs.RegNone, obs.RegNone)
		}
		st := c.mstatus.V
		if st&MstatusMPIE != 0 {
			st |= MstatusMIE
		} else {
			st &^= MstatusMIE
		}
		st |= MstatusMPIE
		c.mstatus = core.W(st, c.mstatus.T)
		c.irqPoll = true
		next = c.mepc.V
	case OpWFI:
		if !c.PendingIRQ() {
			c.PC = next
			return RunWFI, nil
		}
	case OpCSRRW, OpCSRRS, OpCSRRC, OpCSRRWI, OpCSRRSI, OpCSRRCI:
		if err := c.csrOp(i, pc); err != nil {
			return RunOK, err
		}
		if c.PC != pc {
			return RunOK, nil
		}
	default:
		return RunOK, c.trap(CauseIllegalInstr, c.fetchWord(off), pc)
	}
	if c.dec != nil && c.dec.fullEmit {
		// Decoupled observability: hooks are replayed by the monitor from
		// the retire record instead of running inline.
		c.emitRetire(i, pc, off, next)
	} else {
		if c.Obs != nil {
			c.observeStep(i, pc, next)
		}
		if c.Cov != nil {
			c.coverStep(i, pc, off, next)
		}
	}
	if c.FR != nil {
		// Flight capture, hand-inlined (see flightcap.go).
		fl := flightFlags[i.Op]
		if next != pc+4 {
			fl |= flight.FlagTaken
		}
		if i.Rd != 0 && c.Regs[i.Rd].T != c.def {
			fl |= flight.FlagTaintRd
		}
		var faddr uint32
		if fl&(flight.FlagLoad|flight.FlagStore) != 0 {
			faddr = c.frAddr
		}
		rec := c.FR.Slot()
		rec.Time = c.Instret
		rec.PC = pc
		rec.Insn = w
		rec.Addr = faddr
		rec.Aux = 0
		rec.Kind = flight.KindRetire
		rec.Flags = fl
	}
	if c.PC == pc {
		c.PC = next
	}
	return RunOK, nil
}

// coverStep feeds the coverage views for one retired instruction: guest
// block/edge coverage, taint heatmap samples (store sites and the register
// file — safe post-switch because stores never write back a register, so
// Regs[rs1]/Regs[rs2] still hold the address base and data tag), and the
// policy audit's per-clearance-point check counts. Called from step behind
// a single `c.Cov != nil` guard, like observeStep, so the disabled hot loop
// pays one predictable branch. Violating instructions return from step
// early and are attributed through PolicyAudit.NoteViolation by the
// platform; a retire under an enabled fetch check counts as one enforcement
// even when the decode cache memoized the verdict.
func (c *TaintCore) coverStep(i Inst, pc, off, next uint32) {
	cv := c.Cov
	if g := cv.Guest; g != nil {
		g.OnRetire(pc, c.fetchWord(off), next)
	}
	if t := cv.Taint; t != nil {
		t.OnRetireRegs(&c.Regs)
		switch i.Op {
		case OpSB:
			t.OnStore(c.Regs[i.Rs1].V+uint32(i.Imm), 1, c.Regs[i.Rs2].T)
		case OpSH:
			t.OnStore(c.Regs[i.Rs1].V+uint32(i.Imm), 2, c.Regs[i.Rs2].T)
		case OpSW:
			t.OnStore(c.Regs[i.Rs1].V+uint32(i.Imm), 4, c.Regs[i.Rs2].T)
		}
	}
	if a := cv.Audit; a != nil {
		if c.checkFetch {
			a.Fetch.Checks++
		}
		switch i.Op {
		case OpJALR, OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpMRET:
			if c.checkBranch {
				a.Branch.Checks++
			}
		case OpLB, OpLH, OpLW, OpLBU, OpLHU:
			if c.checkMemAddr {
				a.MemAddr.Checks++
			}
		case OpSB, OpSH, OpSW:
			if c.checkMemAddr {
				a.MemAddr.Checks++
			}
			if c.hasRegions {
				a.NoteStore(c.Regs[i.Rs1].V + uint32(i.Imm))
			}
		}
	}
}

// alu writes an R-type result: value computed by the caller, tag joined from
// both sources — the paper's overloaded-operator semantics (Fig. 3 line 35).
// Provenance recording happens post-retire in observeStep so these helpers
// stay inlinable in the interpreter switch.
func (c *TaintCore) alu(i Inst, v uint32) {
	c.set(i.Rd, core.W(v, c.lat.LUB(c.Regs[i.Rs1].T, c.Regs[i.Rs2].T)))
}

// aluImm writes an I-type ALU result carrying the source register's tag.
func (c *TaintCore) aluImm(i Inst, v uint32) {
	c.set(i.Rd, core.W(v, c.Regs[i.Rs1].T))
}

// set writes a destination register, keeping x0 hardwired to zero with the
// policy default class.
func (c *TaintCore) set(rd uint8, w core.Word) {
	if rd != 0 {
		c.Regs[rd] = w
	}
}

// insnWord refetches the instruction word at pc for cold diagnostic paths
// (violation reports, deferred provenance recording).
func (c *TaintCore) insnWord(pc uint32) uint32 {
	off := pc - c.ramBase
	if off < c.ramSize && off+4 <= c.ramSize {
		return c.fetchWord(off)
	}
	return 0
}

// observeStep records the retired instruction's provenance: the
// instruction-boundary bookkeeping (BeginInsn), op events for ALU results,
// load events and the register assignments that consume them, and
// indirect-jump PC provenance. Called from step behind a single
// `c.Obs != nil` guard; the *pre-execution* source operands are snapshot in
// c.obsS1/c.obsS2 before the switch (which may overwrite them when rd
// aliases a source) rather than passed as arguments, so the
// disabled-observer path carries no extra live values. Deferring all
// recording to one post-retire call keeps alu/aluImm/set and the fetch fast
// path free of per-instruction observer branches — the disabled-observer
// hot loop compiles to the pre-observability code plus one check. Store
// events are the exception: they must be emitted inside store, before the
// bus transaction triggers a peripheral's output-clearance check.
func (c *TaintCore) observeStep(i Inst, pc, next uint32) {
	o := c.Obs
	s1, s2 := c.obsS1, c.obsS2
	o.BeginInsn(pc, c.insnWord(pc))
	switch i.Op {
	case OpJALR:
		// Order matters: OnJump reads rs1's provenance before AssignReg can
		// clear it (jalr ra, ra, 0 aliases rd and rs1).
		o.OnJump(next, i.Rs1, s1.T)
		o.AssignReg(i.Rd)
	case OpMRET:
		o.OnJump(next, obs.RegNone, c.mepc.T)
	case OpLB, OpLBU:
		o.OnLoad(s1.V+uint32(i.Imm), 1, c.Regs[i.Rd])
		o.AssignReg(i.Rd)
	case OpLH, OpLHU:
		o.OnLoad(s1.V+uint32(i.Imm), 2, c.Regs[i.Rd])
		o.AssignReg(i.Rd)
	case OpLW:
		o.OnLoad(s1.V+uint32(i.Imm), 4, c.Regs[i.Rd])
		o.AssignReg(i.Rd)
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
		o.OnOp(i.Rs1, obs.RegNone, c.Regs[i.Rd].V, s1.T)
		o.AssignReg(i.Rd)
	case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
		OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU:
		o.OnOp(i.Rs1, i.Rs2, c.Regs[i.Rd].V, c.lat.LUB(s1.T, s2.T))
		o.AssignReg(i.Rd)
	case OpLUI, OpAUIPC, OpJAL,
		OpCSRRW, OpCSRRS, OpCSRRC, OpCSRRWI, OpCSRRSI, OpCSRRCI:
		o.AssignReg(i.Rd) // untracked writers sever rd's old provenance
	}
}

// fetchViolation builds a fetch-clearance violation, attaching provenance
// through both the fetched word (freshly injected code) and the indirect
// jump that steered the PC there (an overwritten return address).
func (c *TaintCore) fetchViolation(pc, w uint32, t core.Tag) *core.Violation {
	v := core.NewViolation(c.lat, core.KindFetchClearance, t, c.fetchClear).
		WithPC(pc).WithValue(w)
	if c.Obs != nil {
		c.drainDec()
		c.Obs.SetInsn(pc, w)
		c.Obs.OnViolation(v, c.Obs.MemSource(pc), c.Obs.PCSource())
	}
	return v
}

// load reads size bytes little-endian, zero-extended, folding byte tags.
func (c *TaintCore) load(i Inst, size uint32, delay *kernel.Time, pc uint32) (core.Word, error) {
	base := c.Regs[i.Rs1]
	addr := base.V + uint32(i.Imm)
	c.frAddr = addr
	if !c.addrTagOK(base.T) {
		return core.Word{}, c.addrViolation(base.T, addr, pc, i.Rs1)
	}
	off := addr - c.ramBase
	if !c.ForceBusMem && off < c.ramSize && off+size <= c.ramSize {
		// Tag folding short-circuits when all accessed bytes carry the same
		// tag (the overwhelmingly common case — whole words written by sw
		// carry one tag), avoiding the per-byte LUB chain.
		var w core.Word
		switch size {
		case 1:
			b := c.ram[off]
			w = core.W(uint32(b.V), b.T)
		case 2:
			b0, b1 := c.ram[off], c.ram[off+1]
			w = core.W(uint32(b0.V)|uint32(b1.V)<<8, core.Fold2(c.lat, b0, b1))
		default:
			b0, b1, b2, b3 := c.ram[off], c.ram[off+1], c.ram[off+2], c.ram[off+3]
			w = core.W(
				uint32(b0.V)|uint32(b1.V)<<8|uint32(b2.V)<<16|uint32(b3.V)<<24,
				core.Fold4(c.lat, b0, b1, b2, b3),
			)
		}
		return w, nil
	}
	if c.dec != nil {
		// A peripheral may record input-classification events during the
		// transaction; drain so they interleave with replayed events in
		// program order.
		c.drainDec()
	}
	p := tlm.Payload{Cmd: tlm.Read, Addr: addr, Data: c.mmioBuf[:size], From: "cpu"}
	c.bus.Transport(&p, delay)
	if p.Resp != tlm.OK {
		return core.Word{}, &BusError{What: "load " + p.Resp.String(), Addr: addr, PC: pc}
	}
	var v uint32
	t := c.mmioBuf[0].T
	for j := uint32(0); j < size; j++ {
		v |= uint32(c.mmioBuf[j].V) << (8 * j)
		t = c.lat.LUB(t, c.mmioBuf[j].T)
	}
	return core.W(v, t), nil
}

// store writes size bytes little-endian, each carrying the value's tag,
// after the memory-address and region store-clearance checks.
func (c *TaintCore) store(i Inst, size uint32, delay *kernel.Time, pc uint32) error {
	base, val := c.Regs[i.Rs1], c.Regs[i.Rs2]
	addr := base.V + uint32(i.Imm)
	c.frAddr = addr
	if !c.addrTagOK(base.T) {
		return c.addrViolation(base.T, addr, pc, i.Rs1)
	}
	if c.hasRegions {
		if c.Obs != nil {
			c.Obs.Checks.Store++
		}
		if err := c.pol.CheckStore(addr, val.T); err != nil {
			if v, ok := err.(*core.Violation); ok {
				v.PC = pc
				if c.Obs != nil {
					c.drainDec()
					c.Obs.SetInsn(pc, c.insnWord(pc))
					c.Obs.OnViolation(v, c.Obs.RegSource(i.Rs2), 0)
				}
			}
			return err
		}
	}
	off := addr - c.ramBase
	ramOK := !c.ForceBusMem && off < c.ramSize && off+size <= c.ramSize
	if c.Obs != nil && (c.dec == nil || !ramOK) {
		// Emitted here, not in observeStep: the bus write below may trigger a
		// peripheral's output-clearance check, which links to this event via
		// LastStore. In decoupled mode RAM-store events replay on the monitor
		// instead; only MMIO stores fire inline, after a drain keeps the
		// event order identical.
		c.drainDec()
		c.Obs.SetInsn(pc, c.insnWord(pc))
		c.Obs.OnStore(addr, size, i.Rs2, val)
	}
	if ramOK {
		switch size {
		case 1:
			c.ram[off] = core.TByte{V: byte(val.V), T: val.T}
		case 2:
			c.ram[off] = core.TByte{V: byte(val.V), T: val.T}
			c.ram[off+1] = core.TByte{V: byte(val.V >> 8), T: val.T}
		default:
			c.ram[off] = core.TByte{V: byte(val.V), T: val.T}
			c.ram[off+1] = core.TByte{V: byte(val.V >> 8), T: val.T}
			c.ram[off+2] = core.TByte{V: byte(val.V >> 16), T: val.T}
			c.ram[off+3] = core.TByte{V: byte(val.V >> 24), T: val.T}
		}
		// Keep the decode cache (and its fetch-tag summaries) coherent with
		// self-modifying or freshly injected code.
		if c.ic.overlaps(off, off+size) {
			c.ic.invalidate(off, off+size)
		}
		return nil
	}
	for j := uint32(0); j < size; j++ {
		c.mmioBuf[j] = core.TByte{V: byte(val.V >> (8 * j)), T: val.T}
	}
	p := tlm.Payload{Cmd: tlm.Write, Addr: addr, Data: c.mmioBuf[:size], From: "cpu"}
	c.bus.Transport(&p, delay)
	if p.Resp != tlm.OK {
		return &BusError{What: "store " + p.Resp.String(), Addr: addr, PC: pc}
	}
	return nil
}

// csrOp executes the Zicsr instructions with tag propagation: the
// destination register receives the CSR's tag, and register-sourced writes
// carry the source register's tag into the CSR.
func (c *TaintCore) csrOp(i Inst, pc uint32) error {
	csr := uint32(i.Imm)
	old, ok := c.csrRead(csr)
	if !ok {
		return c.trap(CauseIllegalInstr, 0, pc)
	}
	var operand core.Word
	imm := i.Op == OpCSRRWI || i.Op == OpCSRRSI || i.Op == OpCSRRCI
	if imm {
		operand = core.W(uint32(i.Rs1), c.def)
	} else {
		operand = c.Regs[i.Rs1]
	}
	var newVal core.Word
	write := true
	switch i.Op {
	case OpCSRRW, OpCSRRWI:
		newVal = operand
	case OpCSRRS, OpCSRRSI:
		newVal = core.W(old.V|operand.V, c.lat.LUB(old.T, operand.T))
		write = i.Rs1 != 0
	default:
		newVal = core.W(old.V&^operand.V, c.lat.LUB(old.T, operand.T))
		write = i.Rs1 != 0
	}
	if write {
		if !c.csrWrite(csr, newVal) {
			return c.trap(CauseIllegalInstr, 0, pc)
		}
	}
	c.set(i.Rd, old)
	return nil
}

func (c *TaintCore) csrRead(csr uint32) (core.Word, bool) {
	switch csr {
	case CSRMstatus:
		return core.W(c.mstatus.V|MstatusMPP, c.mstatus.T), true
	case CSRMisa:
		return core.W(misaRV32IM, c.def), true
	case CSRMie:
		return c.mie, true
	case CSRMip:
		return core.W(c.mip, c.def), true
	case CSRMtvec:
		return c.mtvec, true
	case CSRMepc:
		return c.mepc, true
	case CSRMcause:
		return c.mcause, true
	case CSRMtval:
		return c.mtval, true
	case CSRMscratch:
		return c.mscratch, true
	case CSRMvendorid, CSRMarchid, CSRMimpid, CSRMhartid:
		return core.W(0, c.def), true
	case CSRMcycle, CSRCycle, CSRMinstret, CSRInstret, CSRTime:
		return core.W(uint32(c.Instret), c.def), true
	case CSRMcycleh, CSRCycleh, CSRMinstreth, CSRInstreth, CSRTimeh:
		return core.W(uint32(c.Instret>>32), c.def), true
	default:
		return core.Word{}, false
	}
}

func (c *TaintCore) csrWrite(csr uint32, w core.Word) bool {
	switch csr {
	case CSRMstatus:
		c.mstatus = core.W(w.V&(MstatusMIE|MstatusMPIE), w.T)
		c.irqPoll = true
	case CSRMie:
		c.mie = core.W(w.V&(IntMSI|IntMTI|IntMEI), w.T)
		c.irqPoll = true
	case CSRMip:
		// Hardwired from devices; software writes ignored.
	case CSRMtvec:
		c.mtvec = core.W(w.V&^3, w.T)
	case CSRMepc:
		c.mepc = core.W(w.V&^1, w.T)
	case CSRMcause:
		c.mcause = w
	case CSRMtval:
		c.mtval = w
	case CSRMscratch:
		c.mscratch = w
	case CSRMisa, CSRMvendorid, CSRMarchid, CSRMimpid, CSRMhartid:
		// Read-only: writes ignored.
	case CSRMcycle, CSRMcycleh, CSRMinstret, CSRMinstreth:
		// Simulator-maintained counters; writes ignored.
	case CSRCycle, CSRCycleh, CSRInstret, CSRInstreth, CSRTime, CSRTimeh:
		return false
	default:
		return false
	}
	return true
}
