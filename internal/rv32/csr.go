package rv32

import "fmt"

// Machine-mode CSR addresses (privileged spec subset).
const (
	CSRMstatus   = 0x300
	CSRMisa      = 0x301
	CSRMie       = 0x304
	CSRMtvec     = 0x305
	CSRMscratch  = 0x340
	CSRMepc      = 0x341
	CSRMcause    = 0x342
	CSRMtval     = 0x343
	CSRMip       = 0x344
	CSRMvendorid = 0xF11
	CSRMarchid   = 0xF12
	CSRMimpid    = 0xF13
	CSRMhartid   = 0xF14
	CSRMcycle    = 0xB00
	CSRMcycleh   = 0xB80
	CSRMinstret  = 0xB02
	CSRMinstreth = 0xB82
	CSRCycle     = 0xC00
	CSRTime      = 0xC01
	CSRInstret   = 0xC02
	CSRCycleh    = 0xC80
	CSRTimeh     = 0xC81
	CSRInstreth  = 0xC82
)

// mstatus bits.
const (
	MstatusMIE  = 1 << 3
	MstatusMPIE = 1 << 7
	MstatusMPP  = 3 << 11 // machine-mode only: MPP always reads 0b11
)

// mip/mie interrupt bits.
const (
	IntMSI = 1 << 3  // machine software interrupt
	IntMTI = 1 << 7  // machine timer interrupt
	IntMEI = 1 << 11 // machine external interrupt
)

// Trap causes.
const (
	CauseInstrMisaligned = 0
	CauseIllegalInstr    = 2
	CauseBreakpoint      = 3
	CauseECallM          = 11
	causeInterruptBit    = 1 << 31
	CauseMTimerInt       = causeInterruptBit | 7
	CauseMExtInt         = causeInterruptBit | 11
)

// misa value: RV32 (MXL=1) with I and M extensions.
const misaRV32IM = 1<<30 | 1<<8 | 1<<12

// RunStatus tells the platform why Core.Run / TaintCore.Run returned.
type RunStatus int

const (
	// RunOK: the instruction quantum was exhausted; call Run again.
	RunOK RunStatus = iota
	// RunWFI: the core executed WFI with no pending interrupt; resume once
	// an interrupt line changes.
	RunWFI
	// RunHalt: the core was halted (platform power-off via SysCtrl).
	RunHalt
)

// String names the run status.
func (s RunStatus) String() string {
	switch s {
	case RunOK:
		return "ok"
	case RunWFI:
		return "wfi"
	case RunHalt:
		return "halt"
	default:
		return fmt.Sprintf("runstatus(%d)", int(s))
	}
}

// BusError reports a transaction that did not complete (unmapped address,
// bad command). Guest bugs surface here instead of silently corrupting the
// simulation.
type BusError struct {
	What string
	Addr uint32
	PC   uint32
}

// Error implements error.
func (e *BusError) Error() string {
	return fmt.Sprintf("bus error: %s at addr=0x%08x (pc=0x%08x)", e.What, e.Addr, e.PC)
}

// TrapError reports an exception taken while mtvec is unset — the guest has
// no trap handler, so continuing would loop at address 0.
type TrapError struct {
	Cause uint32
	Tval  uint32
	PC    uint32
}

// Error implements error.
func (e *TrapError) Error() string {
	return fmt.Sprintf("unhandled trap: cause=%d tval=0x%08x pc=0x%08x (mtvec not set)", e.Cause, e.Tval, e.PC)
}
