package rv32

import (
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
)

// TestCSRCatalogue reads and writes every implemented CSR on both cores and
// checks read-only and illegal-CSR behaviour.
func TestCSRCatalogue(t *testing.T) {
	src := `
_start:
	la t0, handler
	csrw mtvec, t0

	# read every known CSR; none may trap
	csrr a0, mstatus
	csrr a0, misa
	csrr a0, mie
	csrr a0, mip
	csrr a0, mtvec
	csrr a0, mscratch
	csrr a0, mepc
	csrr a0, mcause
	csrr a0, mtval
	csrr a0, mvendorid
	csrr a0, marchid
	csrr a0, mimpid
	csrr a0, mhartid
	csrr a0, mcycle
	csrr a0, mcycleh
	csrr a0, minstret
	csrr a0, minstreth
	csrr a0, cycle
	csrr a0, cycleh
	csrr a0, time
	csrr a0, timeh
	csrr a0, instret
	csrr a0, instreth

	# counters advance
	csrr s0, instret
	nop
	nop
	csrr s1, instret
	bleu s1, s0, fail

	# writes to read-only machine info CSRs are ignored, not trapping
	li t1, 0x123
	csrw mhartid, t1
	csrr t2, mhartid
	bnez t2, fail
	csrw misa, t1
	csrw mcycle, t1
	csrw minstret, t1

	# writes to user counter aliases trap as illegal (handler counts)
	csrw cycle, t1
	csrw instret, t1
	csrw time, t1

	# unknown CSR number traps
	csrr t1, 0x123
	csrrw t1, 0x123, t2

	# mepc write clears bit 0
	li t1, 0x80000001
	csrw mepc, t1
	csrr t2, mepc
	andi t2, t2, 1
	bnez t2, fail

	# mtvec write clears low bits
	csrr s2, mtvec
	andi t2, s2, 3
	bnez t2, fail

	la t0, traps
	lw a0, 0(t0)
	li t1, 5
	bne a0, t1, fail
	li a0, 0
	call halt
fail:
	li a0, 1
	call halt

handler:
	la t0, traps
	lw t1, 0(t0)
	addi t1, t1, 1
	sw t1, 0(t0)
	csrr t1, mepc
	addi t1, t1, 4
	csrw mepc, t1
	mret

	.data
	.align 2
traps:
	.word 0
`
	// Plain core.
	c, _, _ := runPlain(t, src)
	if c.Regs[10+0] == 0 && false {
		t.Error("unreachable")
	}
	if got := c.Regs[10]; got != 0 {
		// a0 is reset to 0 before halt on success.
		t.Errorf("plain core CSR catalogue failed (a0=%d)", got)
	}

	// Taint core, permissive policy.
	l := core.IFP2()
	pol := core.NewPolicy(l, l.MustTag(core.ClassLI))
	r := buildTaint(t, src, pol)
	var delay kernel.Time
	if _, st, err := r.c.Run(1_000_000, &delay); err != nil || st != RunHalt {
		t.Fatalf("taint run st=%v err=%v", st, err)
	}
	if r.c.Regs[10].V != 0 {
		t.Errorf("taint core CSR catalogue failed (a0=%d)", r.c.Regs[10].V)
	}
}

// TestCSRNonZeroRs1SetClear: csrrs/csrrc with rs1 != x0 must write.
func TestCSRNonZeroRs1SetClear(t *testing.T) {
	c, _, _ := runPlain(t, `
_start:
	li t0, 0xF0
	csrw mscratch, t0
	li t1, 0x0F
	csrrs t2, mscratch, t1   # old 0xF0, now 0xFF
	li t1, 0x30
	csrrc t3, mscratch, t1   # old 0xFF, now 0xCF
	csrr t4, mscratch
	call halt
`)
	if c.Regs[7] != 0xF0 || c.Regs[28] != 0xFF || c.Regs[29] != 0xCF {
		t.Errorf("t2=0x%x t3=0x%x t4=0x%x", c.Regs[7], c.Regs[28], c.Regs[29])
	}
}

// TestMisalignedTargetsAndX0Writes exercises remaining step corners on the
// taint core: csrrsi/csrrci immediates, x0 destination discards.
func TestTaintCoreCSRImmediates(t *testing.T) {
	l := core.IFP2()
	pol := core.NewPolicy(l, l.MustTag(core.ClassLI))
	r := buildTaint(t, `
_start:
	csrwi mscratch, 21
	csrr a0, mscratch
	csrsi mscratch, 10
	csrr a1, mscratch
	csrci mscratch, 1
	csrr a2, mscratch
	csrrsi a3, mscratch, 0  # read without write
	call halt
`, pol)
	if err := r.run(t); err != nil {
		t.Fatal(err)
	}
	if r.c.Regs[10].V != 21 || r.c.Regs[11].V != 31 || r.c.Regs[12].V != 30 || r.c.Regs[13].V != 30 {
		t.Errorf("a0..a3 = %d %d %d %d", r.c.Regs[10].V, r.c.Regs[11].V, r.c.Regs[12].V, r.c.Regs[13].V)
	}
}

// TestSetIRQLowering covers the lowering branch of SetIRQ on both cores.
func TestSetIRQLowering(t *testing.T) {
	c, _, _ := buildPlain(t, "_start:\n\tcall halt\n")
	c.SetIRQ(IntMTI, true)
	c.SetIRQ(IntMEI, true)
	c.SetIRQ(IntMTI, false)
	if c.mip != IntMEI {
		t.Errorf("mip = 0x%x", c.mip)
	}
	l := core.IFP2()
	pol := core.NewPolicy(l, l.MustTag(core.ClassLI))
	r := buildTaint(t, "_start:\n\tcall halt\n", pol)
	r.c.SetIRQ(IntMSI, true)
	r.c.SetIRQ(IntMSI, false)
	if r.c.mip != 0 {
		t.Errorf("taint mip = 0x%x", r.c.mip)
	}
}

// TestTaintCoreSoftwareInterrupt covers the MSI cause path.
func TestTaintCoreSoftwareInterrupt(t *testing.T) {
	l := core.IFP2()
	pol := core.NewPolicy(l, l.MustTag(core.ClassLI))
	r := buildTaint(t, `
_start:
	la t0, handler
	csrw mtvec, t0
	li t1, 0x8           # MSIE
	csrw mie, t1
	csrsi mstatus, 8
1:	j 1b
handler:
	csrr s0, mcause
	call halt
`, pol)
	var delay kernel.Time
	if _, _, err := r.c.Run(20, &delay); err != nil {
		t.Fatal(err)
	}
	r.c.SetIRQ(IntMSI, true)
	if _, st, err := r.c.Run(1000, &delay); err != nil || st != RunHalt {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if r.c.Regs[8].V != 0x80000003 {
		t.Errorf("mcause = 0x%x, want software interrupt", r.c.Regs[8].V)
	}
}

// TestDisasmNames covers the Op.Name and csrName fallbacks.
func TestDisasmNames(t *testing.T) {
	if Op(200).Name() == "" || OpADD.Name() != "add" {
		t.Error("op names")
	}
	if csrName(0x300) != "mstatus" || csrName(0x7c0) != "0x7c0" {
		t.Error("csr names")
	}
}
