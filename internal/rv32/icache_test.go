package rv32

import (
	"testing"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/kernel"
)

// The predecoded-instruction cache must never let a core execute stale
// bytes: a guest that overwrites one of its own instructions has to see the
// new encoding on the next fetch. The tests below pin that invalidation
// semantics on both cores — for direct-path stores, with and without an
// intervening FENCE.I (the model invalidates eagerly on every store, which
// is stricter than the architecture requires, and FENCE.I must at minimum
// keep working as the architectural synchronization point).
//
// smcPatchBody calls victim (warming the cache with `li a0, 1`), overwrites
// victim's first instruction with `addi a0, x0, 7`, optionally issues
// FENCE.I, calls victim again, and packs both return values into a0:
// (first << 4) | second = 0x17 when the patch took effect.
func smcPatchBody(fence string) string {
	return `
_start:
	call victim          # warm the decode cache; returns 1
	mv s0, a0
	la t0, victim
	la t1, patch
	lw t1, 0(t1)
	sw t1, 0(t0)         # overwrite victim's first instruction
	` + fence + `
	call victim          # must now return 7
	slli s0, s0, 4
	or a0, a0, s0        # 0x17 on success
	call halt

victim:
	li a0, 1
	ret

	.data
	.align 2
patch:
	.word 0x00700513     # addi a0, x0, 7
`
}

func TestSelfModifyingCodePlainCore(t *testing.T) {
	for _, tc := range []struct {
		name, fence string
	}{
		{"with fence.i", "fence.i"},
		{"without fence.i", "nop"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, _, _ := runPlain(t, smcPatchBody(tc.fence))
			if got := c.Regs[10]; got != 0x17 {
				t.Errorf("a0 = %#x, want 0x17 (stale instruction executed)", got)
			}
		})
	}
}

func TestSelfModifyingCodeTaintCore(t *testing.T) {
	// A no-check policy: the point here is purely that the VP+ decode cache
	// invalidates on stores, not what the tags say.
	for _, tc := range []struct {
		name, fence string
	}{
		{"with fence.i", "fence.i"},
		{"without fence.i", "nop"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l := core.IFP2()
			pol := core.NewPolicy(l, l.MustTag(core.ClassLI))
			r := buildTaint(t, smcPatchBody(tc.fence), pol)
			if err := r.run(t); err != nil {
				t.Fatal(err)
			}
			if got := r.c.Regs[10].V; got != 0x17 {
				t.Errorf("a0 = %#x, want 0x17 (stale instruction executed)", got)
			}
		})
	}
}

func TestPatchedInstructionLosesFetchClearance(t *testing.T) {
	// The cached fetch-tag summary must die with the entry. victim is HI
	// text and its first fetch caches an allowed verdict; the patch word is
	// loaded from .data (outside the HI text region, so LI-tagged) and
	// stored over victim, so the second call must re-check the fold and
	// raise a fetch-clearance violation — a cached allowed=true surviving
	// the overwrite would be exactly the code-injection blind spot the WK
	// suite tests for. No FENCE.I on purpose: eager store invalidation
	// alone has to keep the summary honest.
	src := smcPatchBody("nop")
	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	pol := core.NewPolicy(l, li).
		WithFetchClearance(hi).
		WithRegion(core.RegionRule{
			Name: "text", Start: img.Base, End: img.Base + uint32(len(img.Text)),
			Classify: true, Class: hi,
		})
	r := buildTaint(t, src, pol)
	v := r.mustViolate(t, core.KindFetchClearance)
	if want := img.MustSymbol("victim"); v.PC != want {
		t.Errorf("violation at pc=%#x, want victim %#x", v.PC, want)
	}
}

func TestSelfModifyingCodeWithCacheDisabled(t *testing.T) {
	// The ablation configuration (always-decode slow path) must of course
	// see the new bytes too.
	c, _, _ := buildPlain(t, smcPatchBody("nop"))
	c.DisableDecodeCache()
	var delay kernel.Time
	n, st, err := c.Run(1_000_000, &delay)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st != RunHalt {
		t.Fatalf("status = %v after %d instructions, want halt", st, n)
	}
	if got := c.Regs[10]; got != 0x17 {
		t.Errorf("a0 = %#x, want 0x17", got)
	}
}

func TestICacheWatermarkAndInvalidate(t *testing.T) {
	ic := newICache(64)
	if ic.overlaps(0, 64) {
		t.Error("empty cache must not report overlap")
	}
	ic.ents[2].state = icValid
	ic.noteFill(8)
	ic.ents[5].state = icValid
	ic.noteFill(20)
	if !ic.overlaps(8, 12) || !ic.overlaps(20, 24) || !ic.overlaps(0, 64) {
		t.Error("watermark must cover filled entries")
	}
	if ic.overlaps(0, 8) || ic.overlaps(24, 64) {
		t.Error("watermark must exclude [0,8) and [24,64)")
	}
	// Invalidate a range touching only the first entry.
	ic.invalidate(10, 11)
	if ic.ents[2].state != 0 {
		t.Error("byte write into word 2 must invalidate entry 2")
	}
	if ic.ents[5].state == 0 {
		t.Error("entry 5 must survive an invalidate of word 2")
	}
	ic.invalidateAll()
	if ic.ents[5].state != 0 {
		t.Error("invalidateAll must drop entry 5")
	}
	if ic.overlaps(0, 64) {
		t.Error("invalidateAll must reset the watermark")
	}
	// Out-of-range invalidates must clamp, not panic.
	ic.noteFill(60)
	ic.ents[15].state = icValid
	ic.invalidate(60, 100)
	if ic.ents[15].state != 0 {
		t.Error("clamped invalidate must still drop the last entry")
	}
}
