package rv32

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/mem"
	"vpdift/internal/tlm"
)

const (
	testRAMBase = 0x80000000
	testRAMSize = 1 << 20
	testExit    = 0x11000000 // writing here halts the core
)

// testEpilogue halts the core; guest test programs end with `call halt`.
const testEpilogue = `
	.text
halt:
	li t6, 0x11000000
	sw x0, 0(t6)
1:	j 1b
`

func buildPlain(t *testing.T, src string) (*Core, *asm.Image, *mem.PlainMemory) {
	t.Helper()
	img, err := asm.Assemble(src+testEpilogue, asm.Options{Base: testRAMBase})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ram := mem.NewPlain(testRAMSize)
	if err := ram.Load(0, img.Flatten()); err != nil {
		t.Fatal(err)
	}
	bus := tlm.NewBus()
	c := NewCore(ram, testRAMBase, bus)
	bus.MustMap("exit", testExit, 4, tlm.TargetFunc(func(p *tlm.Payload, d *kernel.Time) {
		if p.Cmd == tlm.Write {
			c.Halted = true
		}
		p.Resp = tlm.OK
	}))
	c.PC = img.Entry
	return c, img, ram
}

// runPlain executes src until halt and returns the core for inspection.
func runPlain(t *testing.T, src string) (*Core, *asm.Image, *mem.PlainMemory) {
	t.Helper()
	c, img, ram := buildPlain(t, src)
	var delay kernel.Time
	n, st, err := c.Run(1_000_000, &delay)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st != RunHalt {
		t.Fatalf("status = %v after %d instructions, want halt", st, n)
	}
	return c, img, ram
}

func TestALUProgram(t *testing.T) {
	c, _, _ := runPlain(t, `
_start:
	li a0, 7
	li a1, 5
	add a2, a0, a1     # 12
	sub a3, a0, a1     # 2
	xor a4, a0, a1     # 2
	or  a5, a0, a1     # 7
	and a6, a0, a1     # 5
	sll a7, a0, a1     # 224
	li t0, -8
	sra t1, t0, a1     # -1 (arithmetic)
	srl t2, t0, a1     # large
	slt t3, t0, a0     # 1
	sltu t4, t0, a0    # 0 (t0 is huge unsigned)
	call halt
`)
	want := map[int]uint32{
		12: 12, 13: 2, 14: 2, 15: 7, 16: 5, 17: 224,
		6:  0xffffffff,
		7:  0xf8000000 >> 5 << 2 >> 2, // placeholder checked below
		28: 1, 29: 0,
	}
	// srl -8 >> 5 = 0x07FFFFFF8>>5 ... compute directly:
	want[7] = uint32(0xfffffff8) >> 5
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("x%d = 0x%x, want 0x%x", r, c.Regs[r], v)
		}
	}
}

func TestLoopSum(t *testing.T) {
	c, _, _ := runPlain(t, `
_start:
	li a0, 0      # sum
	li a1, 1      # i
	li a2, 10
1:	add a0, a0, a1
	addi a1, a1, 1
	ble a1, a2, 1b
	call halt
`)
	if c.Regs[10] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[10])
	}
}

func TestMulDivEdgeCases(t *testing.T) {
	c, _, _ := runPlain(t, `
_start:
	li a0, -7
	li a1, 3
	mul a2, a0, a1       # -21
	mulh a3, a0, a1      # -1 (sign ext of -21)
	li t0, 0x80000000
	li t1, -1
	div a4, t0, t1       # overflow -> 0x80000000
	rem a5, t0, t1       # overflow -> 0
	div a6, a0, x0       # div by zero -> -1
	divu a7, a0, x0      # divu by zero -> 0xFFFFFFFF
	rem s2, a0, x0       # rem by zero -> a0
	remu s3, a1, x0      # remu by zero -> a1
	mulhu s4, t1, t1     # 0xFFFFFFFE
	mulhsu s5, t1, t1    # -1 * big unsigned -> 0xFFFFFFFF... checked below
	divu s6, a1, a1      # 1
	call halt
`)
	checks := map[int]uint32{
		12: 0xffffffeb, // -21
		13: 0xffffffff,
		14: 0x80000000,
		15: 0,
		16: 0xffffffff,
		17: 0xffffffff,
		18: 0xfffffff9, // -7
		19: 3,
		20: 0xfffffffe,
		21: 0xffffffff, // mulhsu(-1, 0xffffffff) high word
		22: 1,
	}
	for r, v := range checks {
		if c.Regs[r] != v {
			t.Errorf("x%d = 0x%x, want 0x%x", r, c.Regs[r], v)
		}
	}
}

func TestLoadStoreSizes(t *testing.T) {
	c, img, ram := runPlain(t, `
_start:
	la t0, buf
	li t1, 0x88
	sb t1, 0(t0)
	lb a0, 0(t0)      # sign-extended: 0xFFFFFF88
	lbu a1, 0(t0)     # 0x88
	li t1, 0x8001
	sh t1, 2(t0)
	lh a2, 2(t0)      # 0xFFFF8001
	lhu a3, 2(t0)     # 0x8001
	li t1, 0xDEADBEEF
	sw t1, 4(t0)
	lw a4, 4(t0)
	call halt
	.data
buf:
	.space 16
`)
	want := map[int]uint32{
		10: 0xffffff88, 11: 0x88, 12: 0xffff8001, 13: 0x8001, 14: 0xdeadbeef,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("x%d = 0x%x, want 0x%x", r, c.Regs[r], v)
		}
	}
	buf := img.MustSymbol("buf") - testRAMBase
	if ram.Data()[buf+4] != 0xEF || ram.Data()[buf+7] != 0xDE {
		t.Error("sw byte order wrong")
	}
}

func TestFunctionCall(t *testing.T) {
	c, _, _ := runPlain(t, `
_start:
	li a0, 21
	call double
	mv s0, a0
	call halt
double:
	add a0, a0, a0
	ret
`)
	if c.Regs[8] != 42 {
		t.Errorf("s0 = %d, want 42", c.Regs[8])
	}
}

func TestX0IsHardwired(t *testing.T) {
	c, _, _ := runPlain(t, `
_start:
	li t0, 99
	add x0, t0, t0
	mv a0, x0
	call halt
`)
	if c.Regs[10] != 0 || c.Regs[0] != 0 {
		t.Error("x0 must stay zero")
	}
}

func TestCSRInstructions(t *testing.T) {
	c, _, _ := runPlain(t, `
_start:
	li t0, 0x123
	csrw mscratch, t0
	csrr a0, mscratch       # 0x123
	li t1, 0x00C
	csrs mscratch, t1
	csrr a1, mscratch       # 0x12F
	csrc mscratch, t1
	csrr a2, mscratch       # 0x123
	csrrwi a3, mscratch, 5  # old 0x123, scratch now 5
	csrr a4, mscratch       # 5
	csrr a5, misa
	csrr a6, mhartid        # 0
	call halt
`)
	want := map[int]uint32{
		10: 0x123, 11: 0x12f, 12: 0x123, 13: 0x123, 14: 5,
		15: misaRV32IM, 16: 0,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("x%d = 0x%x, want 0x%x", r, c.Regs[r], v)
		}
	}
}

func TestTrapAndMret(t *testing.T) {
	c, _, _ := runPlain(t, `
_start:
	la t0, handler
	csrw mtvec, t0
	li s0, 0
	ecall            # -> handler, s0 += 1, resumes after
	li s1, 1
	ebreak           # -> handler, s0 += 1
	li s2, 2
	call halt

handler:
	addi s0, s0, 1
	csrr s3, mcause  # last cause
	csrr t1, mepc
	addi t1, t1, 4   # skip the trapping instruction
	csrw mepc, t1
	mret
`)
	if c.Regs[8] != 2 {
		t.Errorf("handler ran %d times, want 2", c.Regs[8])
	}
	if c.Regs[9] != 1 || c.Regs[18] != 2 {
		t.Error("execution did not resume correctly after traps")
	}
	if c.Regs[19] != CauseBreakpoint {
		t.Errorf("mcause = %d, want breakpoint", c.Regs[19])
	}
}

func TestIllegalInstructionTrap(t *testing.T) {
	c, _, _ := runPlain(t, `
_start:
	la t0, handler
	csrw mtvec, t0
	.word 0xFFFFFFFF   # illegal
	li s1, 7           # skipped by handler redirect
	call halt
handler:
	csrr s0, mcause
	csrr s2, mtval
	call halt
`)
	if c.Regs[8] != CauseIllegalInstr {
		t.Errorf("mcause = %d, want illegal-instruction", c.Regs[8])
	}
	if c.Regs[18] != 0xFFFFFFFF {
		t.Errorf("mtval = 0x%x, want the instruction word", c.Regs[18])
	}
	if c.Regs[9] == 7 {
		t.Error("execution continued past the trap")
	}
}

func TestUnhandledTrapError(t *testing.T) {
	c, _, _ := buildPlain(t, "_start:\n\tecall\n")
	var delay kernel.Time
	_, _, err := c.Run(100, &delay)
	var te *TrapError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TrapError", err)
	}
	if te.Cause != CauseECallM {
		t.Errorf("cause = %d", te.Cause)
	}
	if !strings.Contains(te.Error(), "mtvec") {
		t.Errorf("error text = %q", te.Error())
	}
}

func TestBusErrorOnUnmappedMMIO(t *testing.T) {
	c, _, _ := buildPlain(t, `
_start:
	li t0, 0x40000000
	lw a0, 0(t0)
`)
	var delay kernel.Time
	_, _, err := c.Run(100, &delay)
	var be *BusError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BusError", err)
	}
	if be.Addr != 0x40000000 {
		t.Errorf("addr = 0x%x", be.Addr)
	}
}

func TestFetchOutsideRAM(t *testing.T) {
	c, _, _ := buildPlain(t, `
_start:
	li t0, 0x10000000
	jr t0
`)
	var delay kernel.Time
	_, _, err := c.Run(100, &delay)
	var be *BusError
	if !errors.As(err, &be) || !strings.Contains(be.Error(), "fetch") {
		t.Fatalf("err = %v, want fetch BusError", err)
	}
}

func TestWFIAndTimerInterrupt(t *testing.T) {
	c, _, _ := buildPlain(t, `
_start:
	la t0, handler
	csrw mtvec, t0
	li t1, 0x80          # MTIE
	csrw mie, t1
	csrsi mstatus, 8     # MIE
	wfi
	li s1, 1             # after wake + handler return
	call halt
handler:
	addi s0, s0, 1
	csrr t2, mip         # observe pending line
	csrw mie, x0         # mask the (still-high) timer line before mret
	mret
`)
	var delay kernel.Time
	n, st, err := c.Run(1000, &delay)
	if err != nil || st != RunWFI {
		t.Fatalf("n=%d st=%v err=%v, want WFI stop", n, st, err)
	}
	if c.PendingIRQ() {
		t.Fatal("no IRQ should be pending yet")
	}
	// Raise the timer line, as the CLINT would.
	c.SetIRQ(IntMTI, true)
	if !c.PendingIRQ() {
		t.Fatal("IRQ must be pending now")
	}
	_, st, err = c.Run(1000, &delay)
	if err != nil {
		t.Fatal(err)
	}
	if st != RunHalt {
		t.Fatalf("st = %v, want halt", st)
	}
	if c.Regs[8] != 1 || c.Regs[9] != 1 {
		t.Errorf("s0=%d s1=%d, want handler once then resume", c.Regs[8], c.Regs[9])
	}
	if c.Regs[7]&IntMTI == 0 {
		t.Error("handler must observe MTIP in mip")
	}
}

func TestInterruptPriorityExternalOverTimer(t *testing.T) {
	c, _, _ := buildPlain(t, `
_start:
	la t0, handler
	csrw mtvec, t0
	li t1, 0x880         # MTIE | MEIE
	csrw mie, t1
	csrsi mstatus, 8
1:	j 1b
handler:
	csrr s0, mcause
	call halt
`)
	var delay kernel.Time
	// Let setup run, then raise both lines.
	if _, _, err := c.Run(10, &delay); err != nil {
		t.Fatal(err)
	}
	c.SetIRQ(IntMTI, true)
	c.SetIRQ(IntMEI, true)
	if _, st, err := c.Run(1000, &delay); err != nil || st != RunHalt {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if c.Regs[8] != CauseMExtInt {
		t.Errorf("mcause = 0x%x, want external interrupt (priority over timer)", c.Regs[8])
	}
}

func TestInterruptDisabledByMIE(t *testing.T) {
	c, _, _ := buildPlain(t, `
_start:
	la t0, handler
	csrw mtvec, t0
	li t1, 0x80
	csrw mie, t1
	# mstatus.MIE left off
	li s0, 0
	li s1, 100
1:	addi s0, s0, 1
	blt s0, s1, 1b
	call halt
handler:
	li s2, 99
	mret
`)
	var delay kernel.Time
	if _, _, err := c.Run(10, &delay); err != nil {
		t.Fatal(err)
	}
	c.SetIRQ(IntMTI, true)
	if _, st, err := c.Run(100000, &delay); err != nil || st != RunHalt {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if c.Regs[18] == 99 {
		t.Error("interrupt taken despite mstatus.MIE=0")
	}
}

func TestInstretCounting(t *testing.T) {
	c, _, _ := runPlain(t, `
_start:
	nop
	nop
	nop
	call halt
`)
	// 3 nops + li t6 (2: lui would be 1... li 0x11000000 = single lui) +
	// jal + sw + (loop after halt store never reached? halted checked next
	// iteration, so sw counts, then loop j runs 0 times).
	if c.Instret < 6 || c.Instret > 8 {
		t.Errorf("instret = %d, want ~7", c.Instret)
	}
}

func TestRunQuantumResume(t *testing.T) {
	c, _, _ := buildPlain(t, `
_start:
	li s0, 0
	li s1, 1000
1:	addi s0, s0, 1
	blt s0, s1, 1b
	call halt
`)
	var delay kernel.Time
	total := uint64(0)
	for i := 0; i < 10000; i++ {
		n, st, err := c.Run(7, &delay)
		total += n
		if err != nil {
			t.Fatal(err)
		}
		if st == RunHalt {
			break
		}
	}
	if c.Regs[8] != 1000 {
		t.Errorf("s0 = %d: quantum-resumed execution diverged", c.Regs[8])
	}
	if total != c.Instret {
		t.Errorf("sum of quanta %d != instret %d", total, c.Instret)
	}
}

func TestRunStatusString(t *testing.T) {
	if RunOK.String() != "ok" || RunWFI.String() != "wfi" || RunHalt.String() != "halt" {
		t.Error("status strings")
	}
	if !strings.Contains(RunStatus(42).String(), "42") {
		t.Error("unknown status string")
	}
}

func TestMMIOLoadStore(t *testing.T) {
	// A device register at 0x20000000 that returns written value + 1.
	c, img, _ := buildPlain(t, `
_start:
	li t0, 0x20000000
	li t1, 41
	sw t1, 0(t0)
	lw a0, 0(t0)
	call halt
`)
	var reg uint32
	bus := tlm.NewBus()
	// Rebuild the core with an extra device: easier to re-create buses here.
	img2 := img
	ram := mem.NewPlain(testRAMSize)
	if err := ram.Load(0, img2.Flatten()); err != nil {
		t.Fatal(err)
	}
	c = NewCore(ram, testRAMBase, bus)
	bus.MustMap("exit", testExit, 4, tlm.TargetFunc(func(p *tlm.Payload, d *kernel.Time) {
		c.Halted = true
		p.Resp = tlm.OK
	}))
	bus.MustMap("dev", 0x20000000, 4, tlm.TargetFunc(func(p *tlm.Payload, d *kernel.Time) {
		switch p.Cmd {
		case tlm.Read:
			v := reg + 1
			for j := range p.Data {
				p.Data[j] = core.B(byte(v>>(8*uint(j))), 0)
			}
		case tlm.Write:
			reg = 0
			for j := range p.Data {
				reg |= uint32(p.Data[j].V) << (8 * uint(j))
			}
		}
		p.Resp = tlm.OK
	}))
	c.PC = img2.Entry
	var delay kernel.Time
	if _, st, err := c.Run(1000, &delay); err != nil || st != RunHalt {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if reg != 41 {
		t.Errorf("device saw %d", reg)
	}
	if c.Regs[10] != 42 {
		t.Errorf("a0 = %d, want 42", c.Regs[10])
	}
}

func TestDecodeInvalidWords(t *testing.T) {
	bad := []uint32{
		0x00000000, 0xFFFFFFFF,
		0x00002067,                 // jalr with funct3 != 0
		0x00003063,                 // branch funct3 == 3
		0x00003003,                 // load funct3 == 3
		0x00004023,                 // store funct3 == 4
		0x02000013 | 2<<25 | 1<<12, // slli with bad funct7
		0x40000033 | 1<<12,         // f7=0x20 with funct3=1
		0x00404073,                 // system funct3=4
	}
	for _, w := range bad {
		if got := Decode(w); got.Op != OpIllegal {
			t.Errorf("Decode(0x%08x) = %s, want illegal", w, got.Op.Name())
		}
	}
}

func TestDisassembleSmoke(t *testing.T) {
	cases := map[uint32]string{
		0x00A10093:     "addi ra, sp, 10",
		0x005201B3:     "add gp, tp, t0",
		0x00512423:     "sw t0, 8(sp)",
		0xFFC52303:     "lw t1, -4(a0)",
		0x00000073:     "ecall",
		0x30200073:     "mret",
		0x123452B7:     "lui t0, 0x12345",
		0x00208463:     "beq ra, sp, 0x1008",
		0x300110F3:     "csrrw ra, mstatus, sp",
		0x3052D073:     "csrrwi zero, mtvec, 5",
		0xDEADBEEF + 1: "", // likely illegal; just exercise the path
	}
	for w, want := range cases {
		got := Disassemble(w, 0x1000)
		if want != "" && got != want {
			t.Errorf("Disassemble(0x%08x) = %q, want %q", w, got, want)
		}
	}
	if !strings.Contains(Disassemble(0, 0), ".word") {
		t.Error("illegal word must disassemble as .word")
	}
}

// TestDifferentialPlainVsTaint runs generated programs on both cores and
// requires identical architectural state — the TaintCore must differ from
// Core only by its tag tracking, never in values.
func TestDifferentialPlainVsTaint(t *testing.T) {
	seed := uint32(0x1234567)
	rnd := func() uint32 {
		seed = seed*1664525 + 1013904223
		return seed
	}
	ops := []string{"add", "sub", "xor", "or", "and", "sll", "srl", "sra",
		"slt", "sltu", "mul", "mulh", "mulhu", "mulhsu", "div", "divu", "rem", "remu"}
	branches := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}
	stores := []string{"sb", "sh", "sw"}
	loads := []string{"lb", "lbu", "lh", "lhu", "lw"}
	for trial := 0; trial < 8; trial++ {
		var b strings.Builder
		b.WriteString("_start:\n")
		// Seed registers x5..x15 with random constants.
		for r := 5; r <= 15; r++ {
			fmt.Fprintf(&b, "\tli x%d, 0x%08x\n", r, rnd())
		}
		for k := 0; k < 250; k++ {
			rd := 5 + rnd()%11
			rs1 := 5 + rnd()%11
			rs2 := 5 + rnd()%11
			switch rnd() % 8 {
			case 0, 1, 2, 3:
				op := ops[rnd()%uint32(len(ops))]
				fmt.Fprintf(&b, "\t%s x%d, x%d, x%d\n", op, rd, rs1, rs2)
			case 4:
				fmt.Fprintf(&b, "\t%s x%d, %d(x31)\n", stores[rnd()%3], rd, rnd()%250)
			case 5:
				fmt.Fprintf(&b, "\t%s x%d, %d(x31)\n", loads[rnd()%5], rd, rnd()%250)
			case 6:
				// Forward branch over one instruction: both cores must
				// agree on the condition.
				br := branches[rnd()%uint32(len(branches))]
				fmt.Fprintf(&b, "\t%s x%d, x%d, 1f\n", br, rs1, rs2)
				fmt.Fprintf(&b, "\taddi x%d, x%d, 1\n1:\n", rd, rd)
			case 7:
				// CSR round trip through mscratch.
				fmt.Fprintf(&b, "\tcsrrw x%d, mscratch, x%d\n", rd, rs1)
				fmt.Fprintf(&b, "\tcsrrs x%d, mscratch, x%d\n", rs2, 0)
			}
			if k%17 == 0 {
				fmt.Fprintf(&b, "\tsw x%d, %d(x31)\n", rd, (rnd()%64)*4)
			}
		}
		b.WriteString("\tcall halt\n")
		src := "\t.equ SCRATCH, 0x80080000\n" +
			strings.Replace(b.String(), "_start:\n", "_start:\n\tli x31, SCRATCH\n", 1)

		plain, _, plainRAM := runPlain(t, src)

		// Taint run with an all-permissive policy.
		l := core.IFP2()
		pol := core.NewPolicy(l, l.MustTag(core.ClassLI))
		img := asm.MustAssemble(src+testEpilogue, asm.Options{Base: testRAMBase})
		ram := mem.New(testRAMSize, pol.Default)
		if err := ram.Load(0, img.Flatten(), pol.Default); err != nil {
			t.Fatal(err)
		}
		bus := tlm.NewBus()
		tc := NewTaintCore(ram, testRAMBase, bus, pol)
		bus.MustMap("exit", testExit, 4, tlm.TargetFunc(func(p *tlm.Payload, d *kernel.Time) {
			tc.Halted = true
			p.Resp = tlm.OK
		}))
		tc.PC = img.Entry
		var delay kernel.Time
		if _, st, err := tc.Run(1_000_000, &delay); err != nil || st != RunHalt {
			t.Fatalf("trial %d taint run: st=%v err=%v", trial, st, err)
		}
		for r := 0; r < 32; r++ {
			if plain.Regs[r] != tc.Regs[r].V {
				t.Fatalf("trial %d: x%d plain=0x%08x taint=0x%08x", trial, r, plain.Regs[r], tc.Regs[r].V)
			}
		}
		if plain.Instret != tc.Instret {
			t.Fatalf("trial %d: instret plain=%d taint=%d", trial, plain.Instret, tc.Instret)
		}
		for off := uint32(0x80000); off < 0x80000+256; off++ {
			if plainRAM.Data()[off] != ram.Data()[off].V {
				t.Fatalf("trial %d: memory diverged at +0x%x", trial, off)
			}
		}
	}
}
