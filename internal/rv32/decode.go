// Package rv32 implements the virtual prototype's CPU: an RV32IM (plus
// Zicsr, Zifencei and machine-mode trap handling) instruction-set simulator.
//
// The package provides two cores sharing one decoder:
//
//   - Core — the plain ISS used by the baseline platform ("VP" in the
//     paper's Table II). Registers are uint32, memory is plain bytes.
//   - TaintCore — the DIFT-enabled ISS ("VP+"): registers and memory carry
//     security tags, every instruction propagates tags through the IFP's
//     LUB, and the three execution-clearance checks of the paper
//     (Section V-B2: branch condition, instruction fetch, memory address)
//     plus region store-clearance checks are enforced.
//
// Keeping two cores rather than one parameterized core is deliberate: the
// baseline must not pay any tag-carrying cost, or the measured DIFT overhead
// would be meaningless (see DESIGN.md §5.2).
package rv32

// Op enumerates decoded operations.
type Op uint8

// Decoded operations. OpIllegal marks undecodable words.
const (
	OpIllegal Op = iota
	OpLUI
	OpAUIPC
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU
	OpSB
	OpSH
	OpSW
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	OpFENCE
	OpFENCEI
	OpECALL
	OpEBREAK
	OpMRET
	OpWFI
	OpCSRRW
	OpCSRRS
	OpCSRRC
	OpCSRRWI
	OpCSRRSI
	OpCSRRCI
	numOps
)

// Inst is a decoded instruction. Imm holds the sign-extended immediate; for
// shifts it is the shift amount, for CSR instructions the CSR address (and
// Rs1 doubles as the zimm for the immediate forms).
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

func immI(w uint32) int32 { return int32(w) >> 20 }
func immS(w uint32) int32 { return int32(w)>>25<<5 | int32(w>>7&0x1f) }
func immB(w uint32) int32 {
	return int32(w)>>31<<12 | int32(w>>7&1)<<11 | int32(w>>25&0x3f)<<5 | int32(w>>8&0xf)<<1
}
func immU(w uint32) int32 { return int32(w & 0xfffff000) }
func immJ(w uint32) int32 {
	return int32(w)>>31<<20 | int32(w>>12&0xff)<<12 | int32(w>>20&1)<<11 | int32(w>>21&0x3ff)<<1
}

// Decode translates a 32-bit instruction word. Undecodable words come back
// with Op == OpIllegal.
func Decode(w uint32) Inst {
	rd := uint8(w >> 7 & 0x1f)
	rs1 := uint8(w >> 15 & 0x1f)
	rs2 := uint8(w >> 20 & 0x1f)
	f3 := w >> 12 & 7
	f7 := w >> 25

	switch w & 0x7f {
	case 0x37:
		return Inst{Op: OpLUI, Rd: rd, Imm: immU(w)}
	case 0x17:
		return Inst{Op: OpAUIPC, Rd: rd, Imm: immU(w)}
	case 0x6f:
		return Inst{Op: OpJAL, Rd: rd, Imm: immJ(w)}
	case 0x67:
		if f3 == 0 {
			return Inst{Op: OpJALR, Rd: rd, Rs1: rs1, Imm: immI(w)}
		}
	case 0x63:
		ops := [8]Op{OpBEQ, OpBNE, 0, 0, OpBLT, OpBGE, OpBLTU, OpBGEU}
		if op := ops[f3]; op != 0 {
			return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immB(w)}
		}
	case 0x03:
		ops := [8]Op{OpLB, OpLH, OpLW, 0, OpLBU, OpLHU, 0, 0}
		if op := ops[f3]; op != 0 {
			return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI(w)}
		}
	case 0x23:
		ops := [8]Op{OpSB, OpSH, OpSW, 0, 0, 0, 0, 0}
		if op := ops[f3]; op != 0 {
			return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immS(w)}
		}
	case 0x13:
		switch f3 {
		case 0:
			return Inst{Op: OpADDI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 2:
			return Inst{Op: OpSLTI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 3:
			return Inst{Op: OpSLTIU, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 4:
			return Inst{Op: OpXORI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 6:
			return Inst{Op: OpORI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 7:
			return Inst{Op: OpANDI, Rd: rd, Rs1: rs1, Imm: immI(w)}
		case 1:
			if f7 == 0 {
				return Inst{Op: OpSLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}
			}
		case 5:
			switch f7 {
			case 0x00:
				return Inst{Op: OpSRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}
			case 0x20:
				return Inst{Op: OpSRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}
			}
		}
	case 0x33:
		switch f7 {
		case 0x00:
			ops := [8]Op{OpADD, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpOR, OpAND}
			return Inst{Op: ops[f3], Rd: rd, Rs1: rs1, Rs2: rs2}
		case 0x20:
			switch f3 {
			case 0:
				return Inst{Op: OpSUB, Rd: rd, Rs1: rs1, Rs2: rs2}
			case 5:
				return Inst{Op: OpSRA, Rd: rd, Rs1: rs1, Rs2: rs2}
			}
		case 0x01:
			ops := [8]Op{OpMUL, OpMULH, OpMULHSU, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU}
			return Inst{Op: ops[f3], Rd: rd, Rs1: rs1, Rs2: rs2}
		}
	case 0x0f:
		switch f3 {
		case 0:
			return Inst{Op: OpFENCE}
		case 1:
			return Inst{Op: OpFENCEI}
		}
	case 0x73:
		switch f3 {
		case 0:
			switch w {
			case 0x00000073:
				return Inst{Op: OpECALL}
			case 0x00100073:
				return Inst{Op: OpEBREAK}
			case 0x30200073:
				return Inst{Op: OpMRET}
			case 0x10500073:
				return Inst{Op: OpWFI}
			}
		case 1:
			return Inst{Op: OpCSRRW, Rd: rd, Rs1: rs1, Imm: int32(w >> 20)}
		case 2:
			return Inst{Op: OpCSRRS, Rd: rd, Rs1: rs1, Imm: int32(w >> 20)}
		case 3:
			return Inst{Op: OpCSRRC, Rd: rd, Rs1: rs1, Imm: int32(w >> 20)}
		case 5:
			return Inst{Op: OpCSRRWI, Rd: rd, Rs1: rs1, Imm: int32(w >> 20)}
		case 6:
			return Inst{Op: OpCSRRSI, Rd: rd, Rs1: rs1, Imm: int32(w >> 20)}
		case 7:
			return Inst{Op: OpCSRRCI, Rd: rd, Rs1: rs1, Imm: int32(w >> 20)}
		}
	}
	return Inst{Op: OpIllegal}
}
