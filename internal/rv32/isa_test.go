package rv32

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"vpdift/internal/kernel"
)

// isaOperands are the operand values every binary operation is checked
// against — zeros, ones, sign boundaries, shift-amount edges.
var isaOperands = []uint32{
	0, 1, 2, 31, 32, 33, 0x7fffffff, 0x80000000, 0xffffffff,
	0xfffffffe, 0x12345678, 0xdeadbeef, 100, 0xffffff9c, /* -100 */
}

// aluOracles give the architectural result of each R-type operation.
var aluOracles = map[string]func(a, b uint32) uint32{
	"add":    func(a, b uint32) uint32 { return a + b },
	"sub":    func(a, b uint32) uint32 { return a - b },
	"sll":    func(a, b uint32) uint32 { return a << (b & 31) },
	"srl":    func(a, b uint32) uint32 { return a >> (b & 31) },
	"sra":    func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) },
	"and":    func(a, b uint32) uint32 { return a & b },
	"or":     func(a, b uint32) uint32 { return a | b },
	"xor":    func(a, b uint32) uint32 { return a ^ b },
	"slt":    func(a, b uint32) uint32 { return b2u(int32(a) < int32(b)) },
	"sltu":   func(a, b uint32) uint32 { return b2u(a < b) },
	"mul":    func(a, b uint32) uint32 { return a * b },
	"mulh":   func(a, b uint32) uint32 { return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32) },
	"mulhu":  func(a, b uint32) uint32 { return uint32(uint64(a) * uint64(b) >> 32) },
	"mulhsu": func(a, b uint32) uint32 { return uint32(uint64(int64(int32(a))*int64(b)) >> 32) },
	"div":    divS,
	"divu":   divU,
	"rem":    remS,
	"remu":   remU,
}

// TestISAOracleALU runs every R-type operation over the operand matrix on
// the plain core and compares each result against the Go oracle.
func TestISAOracleALU(t *testing.T) {
	// Deterministic iteration order for reproducible failures.
	var names []string
	for n := range aluOracles {
		names = append(names, n)
	}
	for _, mnem := range names {
		t.Run(mnem, func(t *testing.T) {
			var b strings.Builder
			fmt.Fprintf(&b, "_start:\n\tla s0, results\n")
			for i, a := range isaOperands {
				for j, bv := range isaOperands {
					fmt.Fprintf(&b, "\tli t0, 0x%08x\n\tli t1, 0x%08x\n", a, bv)
					fmt.Fprintf(&b, "\t%s t2, t0, t1\n", mnem)
					fmt.Fprintf(&b, "\tsw t2, %d(s0)\n", (i*len(isaOperands)+j)*4)
				}
			}
			b.WriteString("\tcall halt\n\t.bss\n\t.align 4\nresults:\n")
			fmt.Fprintf(&b, "\t.space %d\n", len(isaOperands)*len(isaOperands)*4)

			_, img, ram := runPlain(t, b.String())
			base := img.MustSymbol("results") - testRAMBase
			oracle := aluOracles[mnem]
			for i, a := range isaOperands {
				for j, bv := range isaOperands {
					off := base + uint32(i*len(isaOperands)+j)*4
					got := binary.LittleEndian.Uint32(ram.Data()[off:])
					if want := oracle(a, bv); got != want {
						t.Errorf("%s(0x%08x, 0x%08x) = 0x%08x, want 0x%08x", mnem, a, bv, got, want)
					}
				}
			}
		})
	}
}

// TestISAOracleImmediates covers the I-type operations against the same
// oracles (sharing semantics with their R-type versions).
func TestISAOracleImmediates(t *testing.T) {
	imms := []int32{0, 1, -1, 2047, -2048, 100, -77}
	ops := map[string]func(a uint32, imm int32) uint32{
		"addi":  func(a uint32, i int32) uint32 { return a + uint32(i) },
		"xori":  func(a uint32, i int32) uint32 { return a ^ uint32(i) },
		"ori":   func(a uint32, i int32) uint32 { return a | uint32(i) },
		"andi":  func(a uint32, i int32) uint32 { return a & uint32(i) },
		"slti":  func(a uint32, i int32) uint32 { return b2u(int32(a) < i) },
		"sltiu": func(a uint32, i int32) uint32 { return b2u(a < uint32(i)) },
	}
	var names []string
	for n := range ops {
		names = append(names, n)
	}
	for _, mnem := range names {
		t.Run(mnem, func(t *testing.T) {
			var b strings.Builder
			b.WriteString("_start:\n\tla s0, results\n")
			for i, a := range isaOperands {
				for j, im := range imms {
					fmt.Fprintf(&b, "\tli t0, 0x%08x\n", a)
					fmt.Fprintf(&b, "\t%s t2, t0, %d\n", mnem, im)
					fmt.Fprintf(&b, "\tsw t2, %d(s0)\n", (i*len(imms)+j)*4)
				}
			}
			b.WriteString("\tcall halt\n\t.bss\n\t.align 4\nresults:\n")
			fmt.Fprintf(&b, "\t.space %d\n", len(isaOperands)*len(imms)*4)

			_, img, ram := runPlain(t, b.String())
			base := img.MustSymbol("results") - testRAMBase
			for i, a := range isaOperands {
				for j, im := range imms {
					off := base + uint32(i*len(imms)+j)*4
					got := binary.LittleEndian.Uint32(ram.Data()[off:])
					if want := ops[mnem](a, im); got != want {
						t.Errorf("%s(0x%08x, %d) = 0x%08x, want 0x%08x", mnem, a, im, got, want)
					}
				}
			}
		})
	}
}

// TestISAShiftImmediates covers slli/srli/srai over all shift amounts.
func TestISAShiftImmediates(t *testing.T) {
	val := uint32(0x80c01234)
	var b strings.Builder
	b.WriteString("_start:\n\tla s0, results\n")
	idx := 0
	for sh := 0; sh < 32; sh++ {
		for _, mnem := range []string{"slli", "srli", "srai"} {
			fmt.Fprintf(&b, "\tli t0, 0x%08x\n\t%s t2, t0, %d\n\tsw t2, %d(s0)\n", val, mnem, sh, idx*4)
			idx++
		}
	}
	b.WriteString("\tcall halt\n\t.bss\n\t.align 4\nresults:\n")
	fmt.Fprintf(&b, "\t.space %d\n", idx*4)
	_, img, ram := runPlain(t, b.String())
	base := img.MustSymbol("results") - testRAMBase
	idx = 0
	for sh := 0; sh < 32; sh++ {
		wants := []uint32{val << sh, val >> sh, uint32(int32(val) >> sh)}
		for k, mnem := range []string{"slli", "srli", "srai"} {
			got := binary.LittleEndian.Uint32(ram.Data()[base+uint32(idx*4):])
			if got != wants[k] {
				t.Errorf("%s by %d = 0x%08x, want 0x%08x", mnem, sh, got, wants[k])
			}
			idx++
		}
	}
}

// TestISABranchMatrix verifies every branch condition over signed/unsigned
// boundary pairs by counting taken branches.
func TestISABranchMatrix(t *testing.T) {
	pairs := [][2]uint32{
		{0, 0}, {1, 0}, {0, 1}, {0x7fffffff, 0x80000000}, {0x80000000, 0x7fffffff},
		{0xffffffff, 0}, {0, 0xffffffff}, {5, 5},
	}
	oracles := map[string]func(a, b uint32) bool{
		"beq":  func(a, b uint32) bool { return a == b },
		"bne":  func(a, b uint32) bool { return a != b },
		"blt":  func(a, b uint32) bool { return int32(a) < int32(b) },
		"bge":  func(a, b uint32) bool { return int32(a) >= int32(b) },
		"bltu": func(a, b uint32) bool { return a < b },
		"bgeu": func(a, b uint32) bool { return a >= b },
	}
	for mnem, oracle := range oracles {
		var b strings.Builder
		b.WriteString("_start:\n\tla s0, results\n")
		for i, p := range pairs {
			fmt.Fprintf(&b, "\tli t0, 0x%08x\n\tli t1, 0x%08x\n\tli t2, 0\n", p[0], p[1])
			fmt.Fprintf(&b, "\t%s t0, t1, 1f\n\tj 2f\n1:\tli t2, 1\n2:\tsw t2, %d(s0)\n", mnem, i*4)
		}
		b.WriteString("\tcall halt\n\t.bss\n\t.align 4\nresults:\n")
		fmt.Fprintf(&b, "\t.space %d\n", len(pairs)*4)
		_, img, ram := runPlain(t, b.String())
		base := img.MustSymbol("results") - testRAMBase
		for i, p := range pairs {
			got := binary.LittleEndian.Uint32(ram.Data()[base+uint32(i*4):])
			want := b2u(oracle(p[0], p[1]))
			if got != want {
				t.Errorf("%s(0x%08x, 0x%08x) taken=%d, want %d", mnem, p[0], p[1], got, want)
			}
		}
	}
}

// TestISAUnalignedAccess verifies the cores allow unaligned loads/stores
// (the platform supports them, like many embedded RV32 implementations).
func TestISAUnalignedAccess(t *testing.T) {
	c, img, _ := runPlain(t, `
_start:
	la t0, buf
	li t1, 0xA1B2C3D4
	sw t1, 1(t0)       # unaligned word store
	lw a0, 1(t0)       # unaligned word load
	lhu a1, 3(t0)      # unaligned half
	call halt
	.data
	.align 2
buf:
	.space 8
`)
	_ = img
	if c.Regs[10] != 0xA1B2C3D4 {
		t.Errorf("unaligned lw = 0x%08x", c.Regs[10])
	}
	if c.Regs[11] != 0xA1B2 {
		t.Errorf("unaligned lhu = 0x%08x", c.Regs[11])
	}
}

// TestISAAuipcJalr checks PC-relative addressing and the jalr LSB clearing.
func TestISAAuipcJalr(t *testing.T) {
	c, _, _ := runPlain(t, `
_start:
	auipc s0, 0          # s0 = pc of this instruction
	la t0, target
	addi t0, t0, 1       # odd target: jalr must clear bit 0
	jalr s1, 0(t0)       # s1 = return address
dead:
	li s2, 0xBAD
	call halt
target:
	li s2, 0x600D
	call halt
`)
	if c.Regs[18] != 0x600D {
		t.Errorf("jalr did not clear the target LSB (s2=0x%x)", c.Regs[18])
	}
	if c.Regs[8] != testRAMBase {
		t.Errorf("auipc = 0x%08x, want 0x%08x", c.Regs[8], uint32(testRAMBase))
	}
}

// TestISADisassembleDecodeAgree: for every decodable op, the mnemonic the
// disassembler prints must match the decoder's op name.
func TestISADisassembleDecodeAgree(t *testing.T) {
	words := []uint32{
		0x00A10093, 0x005201B3, 0x405201B3, 0x00C5F533, 0x123452B7, 0x12345297,
		0x0000006F, 0x00008067, 0x00208463, 0x00512423, 0xFFC52303, 0x00054303,
		0x00255303, 0x005100A3, 0x00511123, 0x023100B3, 0x023150B3, 0x023170B3,
		0x4040D093, 0x00409093, 0x0040D093, 0x00113093, 0xFFF14093, 0x004280E7,
		0x300110F3, 0x304020F3, 0x3052D073, 0x00000073, 0x00100073, 0x30200073,
		0x10500073, 0x0FF0000F, 0x0000100F,
	}
	for _, w := range words {
		inst := Decode(w)
		if inst.Op == OpIllegal {
			t.Errorf("0x%08x decodes as illegal", w)
			continue
		}
		dis := Disassemble(w, 0x1000)
		mnem := strings.Fields(dis)[0]
		if mnem != inst.Op.Name() {
			t.Errorf("0x%08x: disasm %q vs decode %q", w, mnem, inst.Op.Name())
		}
	}
}

// TestTracerFiresOnBothCores verifies the per-instruction trace hook.
func TestTracerFiresOnBothCores(t *testing.T) {
	c, _, _ := buildPlain(t, "_start:\n\tnop\n\tnop\n\tcall halt\n")
	var pcs []uint32
	c.Tracer = func(pc, insn uint32) { pcs = append(pcs, pc) }
	var delay kernel.Time
	if _, st, err := c.Run(100, &delay); err != nil || st != RunHalt {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if len(pcs) < 3 || pcs[0] != testRAMBase || pcs[1] != testRAMBase+4 {
		t.Errorf("trace = %x", pcs)
	}
}
