// Package dift provides the decoupling machinery between the VP+ ISS front
// end and the taint-monitor goroutine: a fixed-size retire record and a
// lock-free single-producer/single-consumer ring buffer.
//
// The architecture reproduces the DIFT coprocessor organization of Wahab et
// al. and the gem5 "soft drop" monitors: the main core retires instructions
// at full speed and pushes compact records into a FIFO; a separate
// monitoring core drains the FIFO and replays tag propagation against its
// own shadow state. Two early-drop filters (the zero-live-taint fast path
// and the per-block flag cache, both in internal/rv32) keep most records
// from ever entering the ring.
//
// The ring is strictly SPSC: exactly one goroutine may call Push and
// exactly one may call Peek/Advance. Publication order is the push order —
// the consumer observes records exactly once, in sequence, or not yet at
// all. Backpressure is explicit: Push returns false on a full ring and the
// producer decides how to stall.
package dift

import (
	"sync/atomic"

	"vpdift/internal/core"
)

// Record is one fixed-size retire event. Its meaning depends on Kind; the
// fields are a superset of what the monitor needs to replay tag
// propagation and the observability hooks for any instruction class.
type Record struct {
	// PC and Insn identify the retired instruction.
	PC   uint32
	Insn uint32
	// Next is the PC after the instruction (branch targets included).
	Next uint32
	// Addr is the effective address of a load/store (bus address), or the
	// RAM byte offset for KindStoreTags.
	Addr uint32
	// Val is the result value: the written-back rd for ALU/load records,
	// the stored word for store records.
	Val uint32

	// ValT is the result/store tag, S1T/S2T the source-operand tags.
	ValT core.Tag
	S1T  core.Tag
	S2T  core.Tag

	// Op is the rv32 opcode class (rv32.Op), Rd/Rs1/Rs2 the register
	// indices, Size the access width in bytes for loads and stores.
	Op   uint8
	Rd   uint8
	Rs1  uint8
	Rs2  uint8
	Size uint8

	// Kind selects the replay routine.
	Kind uint8
}

// Record kinds.
const (
	// KindRetire replays one retired instruction against the monitor's
	// shadow register file and the attached observability hooks.
	KindRetire uint8 = iota
	// KindStoreTags writes a store's tag over Size RAM byte tags starting
	// at byte offset Addr — the deferred tag half of a store whose value
	// half the front end already committed. The tag is the monitor's shadow
	// tag of register Rs2, or ValT verbatim when Rs2 is RegNone (the front
	// end knew the exact tag, typically the policy default).
	KindStoreTags
	// KindSetReg sets the monitor's shadow tag of register Rd to ValT — the
	// front end resolved an exact tag (an MMIO load, a drained fold, a
	// cleared destination) and publishes it.
	KindSetReg
	// KindAlu joins the shadow tags of Rs1 and Rs2 into Rd's shadow tag. A
	// source of RegNone contributes the policy default (the front end's
	// flag cache proved that operand clear).
	KindAlu
)

// RegNone marks an absent register operand in a record (mirrors
// obs.RegNone; duplicated to keep this package dependency-light).
const RegNone uint8 = 0xff

// cacheLinePad separates the producer- and consumer-owned fields so the
// two goroutines do not false-share a cache line.
type cacheLinePad [64]byte

// Ring is the lock-free SPSC record queue. Capacity is a power of two;
// head and tail are free-running uint64 counters (they never wrap in any
// realistic run: 2^64 records at one record per nanosecond is five
// centuries).
type Ring struct {
	buf  []Record
	mask uint64

	_ cacheLinePad
	// head is the consumer cursor: records [head, tail) are pending. The
	// consumer advances it only after fully applying a record, so
	// head == tail means "everything published has also been applied" —
	// the drain condition the front end synchronizes on. localHead mirrors
	// it consumer-locally so Peek/Advance pay one atomic store, not
	// round-trip loads; cachedTail is the consumer's copy of tail,
	// refreshed only when the ring looks empty, so steady-state Peek does
	// not touch the producer's line.
	head       atomic.Uint64
	localHead  uint64
	cachedTail uint64

	_ cacheLinePad
	// tail is the producer cursor, localTail its producer-local mirror;
	// cachedHead is the producer's copy of head, refreshed only when the
	// ring looks full.
	tail       atomic.Uint64
	localTail  uint64
	cachedHead uint64
}

// DefaultCapacity comfortably exceeds the largest TLM quantum (16384
// instructions), so a front end that drains at quantum boundaries never
// sees backpressure from its own quantum.
const DefaultCapacity = 1 << 15

// NewRing builds a ring holding capacity records, rounded up to a power of
// two (DefaultCapacity when zero or negative).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{buf: make([]Record, n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity in records.
func (r *Ring) Cap() int { return len(r.buf) }

// Push publishes one record. It returns false when the ring is full — the
// producer owns the stall policy. Producer-side only.
func (r *Ring) Push(rec *Record) bool {
	t := r.localTail
	if t-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = *rec
	r.localTail = t + 1
	r.tail.Store(t + 1)
	return true
}

// Peek returns the oldest pending record without consuming it, or nil when
// the ring is empty. The returned pointer is valid until Advance.
// Consumer-side only.
func (r *Ring) Peek() *Record {
	h := r.localHead
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return nil
		}
	}
	return &r.buf[h&r.mask]
}

// Advance consumes the record returned by the last Peek. The consumer must
// have finished applying it: Advance is what makes it invisible to the
// drain condition. Consumer-side only.
func (r *Ring) Advance() {
	h := r.localHead + 1
	r.localHead = h
	r.head.Store(h)
}

// Len reports the number of pending (published, unapplied) records. Safe
// from any goroutine; the value is a snapshot.
func (r *Ring) Len() int {
	t := r.tail.Load()
	h := r.head.Load()
	if t < h { // torn snapshot under concurrency; clamp
		return 0
	}
	if n := t - h; n <= uint64(len(r.buf)) {
		return int(n)
	}
	return len(r.buf)
}

// Empty reports whether every published record has been applied. Safe from
// any goroutine. The producer uses it as the drain condition: once Empty
// returns true and the producer publishes nothing further, the consumer's
// shadow state is final.
func (r *Ring) Empty() bool {
	return r.head.Load() == r.tail.Load()
}
