package dift

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestRingFIFOSingleThread checks basic FIFO behaviour and capacity
// rounding on one goroutine.
func TestRingFIFOSingleThread(t *testing.T) {
	r := NewRing(10)
	if r.Cap() != 16 {
		t.Fatalf("capacity 10 should round to 16, got %d", r.Cap())
	}
	if !r.Empty() || r.Len() != 0 {
		t.Fatal("new ring must be empty")
	}
	for i := 0; i < 16; i++ {
		if !r.Push(&Record{PC: uint32(i)}) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.Push(&Record{}) {
		t.Fatal("push succeeded on a full ring")
	}
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
	for i := 0; i < 16; i++ {
		rec := r.Peek()
		if rec == nil {
			t.Fatalf("peek %d returned nil", i)
		}
		if rec.PC != uint32(i) {
			t.Fatalf("record %d out of order: pc=%d", i, rec.PC)
		}
		r.Advance()
	}
	if r.Peek() != nil || !r.Empty() {
		t.Fatal("ring should be empty after draining")
	}
	// Wrap around: the cursors keep running past the buffer length.
	for round := 0; round < 5; round++ {
		for i := 0; i < 11; i++ {
			if !r.Push(&Record{Addr: uint32(round*100 + i)}) {
				t.Fatalf("wrap push failed (round %d, i %d)", round, i)
			}
		}
		for i := 0; i < 11; i++ {
			rec := r.Peek()
			if rec == nil || rec.Addr != uint32(round*100+i) {
				t.Fatalf("wrap round %d record %d corrupted: %+v", round, i, rec)
			}
			r.Advance()
		}
	}
}

// TestRingDefaultCapacity checks the zero-value capacity request.
func TestRingDefaultCapacity(t *testing.T) {
	if got := NewRing(0).Cap(); got != DefaultCapacity {
		t.Fatalf("default capacity = %d, want %d", got, DefaultCapacity)
	}
}

// TestRingStressStalledConsumer is the backpressure proof demanded by the
// decoupled-monitor design: a producer pushing at full speed against a
// consumer that repeatedly stalls must never drop, duplicate, or reorder a
// record. Run under -race in CI, it also proves the release/acquire
// publication protocol: every field of every record read by the consumer
// was fully written by the producer.
func TestRingStressStalledConsumer(t *testing.T) {
	const total = 60000
	r := NewRing(256) // small ring so backpressure actually happens

	var wg sync.WaitGroup
	wg.Add(2)
	var fullStalls uint64

	go func() { // producer: full speed, spin on full
		defer wg.Done()
		for i := uint32(0); i < total; i++ {
			rec := Record{PC: i, Insn: ^i, Addr: i * 4, Val: i ^ 0xdeadbeef, Kind: KindRetire}
			for !r.Push(&rec) {
				fullStalls++
				runtime.Gosched()
			}
		}
	}()

	errs := make(chan string, 1)
	go func() { // consumer: artificially stalled
		defer wg.Done()
		next := uint32(0)
		for next < total {
			rec := r.Peek()
			if rec == nil {
				runtime.Gosched()
				continue
			}
			if rec.PC != next || rec.Insn != ^next || rec.Addr != next*4 || rec.Val != next^0xdeadbeef {
				select {
				case errs <- "record corrupted or out of order":
				default:
				}
				return
			}
			r.Advance()
			next++
			if next%4096 == 0 {
				time.Sleep(100 * time.Microsecond) // the artificial stall
			}
		}
	}()

	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if !r.Empty() {
		t.Fatalf("ring not drained: %d pending", r.Len())
	}
	if fullStalls == 0 {
		t.Log("producer never hit backpressure; stall window too small for this host")
	}
}

// TestRingLenConcurrent checks that the Len/Empty snapshots stay sane while
// both sides run.
func TestRingLenConcurrent(t *testing.T) {
	r := NewRing(64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50000; i++ {
			for !r.Push(&Record{PC: uint32(i)}) {
				runtime.Gosched()
			}
		}
	}()
	got := 0
	for got < 50000 {
		if n := r.Len(); n < 0 || n > r.Cap() {
			t.Fatalf("Len out of range: %d", n)
		}
		if rec := r.Peek(); rec != nil {
			r.Advance()
			got++
		} else {
			runtime.Gosched() // single-CPU hosts: let the producer run
		}
	}
	<-done
}

// BenchmarkRingPushPop pins the cost of one publish/consume pair — the
// per-record tax the decoupled front end pays for every event its filters
// do not drop. The design target is a few nanoseconds.
func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing(1024)
	rec := Record{PC: 0x80000000, Insn: 0x00a00513, Val: 10, Kind: KindRetire}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.PC++
		if !r.Push(&rec) {
			b.Fatal("ring full")
		}
		if r.Peek() == nil {
			b.Fatal("ring empty")
		}
		r.Advance()
	}
}

// BenchmarkRingPushPopParallel measures the pair cost with the consumer on
// its own goroutine — the configuration the monitor actually runs in.
func BenchmarkRingPushPopParallel(b *testing.B) {
	r := NewRing(4096)
	done := make(chan struct{})
	go func() {
		defer close(done)
		n := 0
		for n < b.N {
			if r.Peek() != nil {
				r.Advance()
				n++
			} else {
				runtime.Gosched()
			}
		}
	}()
	rec := Record{Kind: KindRetire}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.PC = uint32(i)
		for !r.Push(&rec) {
			runtime.Gosched()
		}
	}
	<-done
}
