package wk

import (
	"strings"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/obs"
)

// paperResults is Table I of the paper, verbatim.
var paperResults = map[int]Result{
	1: NA, 2: NA, 3: Detected, 4: NA, 5: Detected, 6: Detected,
	7: Detected, 8: NA, 9: Detected, 10: Detected, 11: Detected,
	12: NA, 13: Detected, 14: Detected, 15: NA, 16: NA,
	17: Detected, 18: NA,
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 18 {
		t.Fatalf("suite has %d attacks, want 18", len(suite))
	}
	for i := range suite {
		a := &suite[i]
		if a.Num != i+1 {
			t.Errorf("attack %d out of order (Num=%d)", i+1, a.Num)
		}
		if a.Applicable() != (paperResults[a.Num] == Detected) {
			t.Errorf("attack %d applicability mismatch with Table I", a.Num)
		}
		if !a.Applicable() && a.NAReason == "" {
			t.Errorf("attack %d: N/A without a reason", a.Num)
		}
	}
}

func TestAttacksSucceedWithoutDIFT(t *testing.T) {
	// Every applicable attack must actually hijack control flow when the
	// DIFT engine is off — otherwise "Detected" would be vacuous.
	suite := Suite()
	for i := range suite {
		a := &suite[i]
		if !a.Applicable() {
			continue
		}
		res, err := Run(a, false)
		if err != nil {
			t.Errorf("attack %d (plain): %v", a.Num, err)
			continue
		}
		if res != Missed {
			t.Errorf("attack %d (plain): result %v, want control-flow hijack", a.Num, res)
		}
	}
}

func TestAttacksDetectedWithDIFT(t *testing.T) {
	// Table I: every applicable attack is detected by the fetch-clearance
	// check at the payload's first instruction.
	suite := Suite()
	for i := range suite {
		a := &suite[i]
		if !a.Applicable() {
			continue
		}
		res, err := Run(a, true)
		if err != nil {
			t.Errorf("attack %d: %v", a.Num, err)
			continue
		}
		if res != Detected {
			t.Errorf("attack %d: result %v, want Detected", a.Num, res)
		}
	}
}

func TestRunNotApplicable(t *testing.T) {
	suite := Suite()
	res, err := Run(&suite[0], true) // attack 1 is N/A
	if err != nil || res != NA {
		t.Errorf("Run(N/A) = %v, %v", res, err)
	}
	if _, err := suite[0].Build(); err == nil {
		t.Error("Build of N/A attack must fail")
	}
}

func TestTableMatchesPaper(t *testing.T) {
	table, err := Table()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 19 { // header + 18 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), table)
	}
	for i, line := range lines[1:] {
		want := paperResults[i+1].String()
		if !strings.HasSuffix(strings.TrimSpace(line), want) {
			t.Errorf("row %d = %q, want result %s", i+1, line, want)
		}
	}
}

func TestResultString(t *testing.T) {
	if NA.String() != "N/A" || Detected.String() != "Detected" || Missed.String() != "MISSED" {
		t.Error("result strings")
	}
}

func TestAttack3ProvenanceCrossesReturnAddress(t *testing.T) {
	// Attack 3 (Stack / Return Address / Direct): the provenance chain of
	// the fetch-clearance violation must cross the overflowed return
	// address — input from the UART, the store that smashed the saved ra,
	// the indirect jump through it, then the failed check at the payload.
	suite := Suite()
	var a *Attack
	for i := range suite {
		if suite[i].Num == 3 {
			a = &suite[i]
		}
	}
	if a == nil || !a.Applicable() {
		t.Fatal("attack 3 must be applicable")
	}
	res, v, err := RunObserved(a, true, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	if res != Detected || v == nil {
		t.Fatalf("result %v, violation %v; want Detected with a violation", res, v)
	}
	if v.Kind != core.KindFetchClearance {
		t.Fatalf("violation kind %v, want fetch clearance", v.Kind)
	}
	chain := v.Provenance
	if len(chain) == 0 {
		t.Fatal("detected attack must carry a provenance chain")
	}
	have := map[core.TaintEventKind]bool{}
	for _, ev := range chain {
		have[ev.Kind] = true
	}
	for _, want := range []core.TaintEventKind{
		core.EvClassify, core.EvInput, core.EvStore, core.EvJump, core.EvCheck,
	} {
		if !have[want] {
			t.Errorf("chain is missing a %v event", want)
		}
	}
	if last := chain[len(chain)-1]; last.Kind != core.EvCheck {
		t.Errorf("chain ends with %v, want the failed fetch check", last.Kind)
	}
	// The jump event must immediately precede the check in sequence terms:
	// the check's secondary link is the PC provenance set by the ret.
	var jumpSeq uint64
	for _, ev := range chain {
		if ev.Kind == core.EvJump {
			jumpSeq = ev.Seq
		}
	}
	if last := chain[len(chain)-1]; last.Prev2 != jumpSeq && last.Prev != jumpSeq {
		t.Errorf("failed check (prev=%d prev2=%d) is not linked to the jump event %d",
			last.Prev, last.Prev2, jumpSeq)
	}
}

func TestRunObservedWithoutObserver(t *testing.T) {
	// RunObserved with a nil observer degrades to Run: still Detected, but
	// no provenance attached.
	suite := Suite()
	res, v, err := RunObserved(&suite[2], true, nil) // attack 3
	if err != nil {
		t.Fatal(err)
	}
	if res != Detected || v == nil {
		t.Fatalf("result %v, want Detected", res)
	}
	if len(v.Provenance) != 0 {
		t.Errorf("nil observer: %d provenance events, want 0", len(v.Provenance))
	}
}
