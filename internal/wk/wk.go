// Package wk reproduces Table I of the paper: the Wilander–Kamkar buffer
// overflow attack suite, as ported to RISC-V by Palmiero et al. (IEEE HPEC
// 2018), run against the code-injection security policy of Section VI-B.
//
// Each attack smuggles the address of a "malicious" payload function into a
// control-flow slot (return address, function pointer, or longjmp buffer)
// by overflowing a buffer with attacker data arriving on the UART. The
// policy is IFP-2: the program image is classified High-Integrity at load
// time, the instruction-fetch unit has HI clearance, all external input is
// Low-Integrity, and — as in the paper — the payload function itself is
// classified LI before the test ("in a real world scenario, this code would
// be inserted by external components and thus also have an LI security
// class").
//
// Detection is a fetch-clearance violation at the first instruction of the
// payload. Eight of the eighteen attack forms are not applicable on RISC-V,
// for the same reasons as in the original port: there is no frame/base
// pointer to smash in the standard calling convention, and parameters
// travel in registers rather than on the stack.
package wk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/flight"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
	"vpdift/internal/soc"
)

// Result is the Table I outcome of one attack.
type Result int

// Possible outcomes.
const (
	// NA: the attack form does not exist on RISC-V.
	NA Result = iota
	// Detected: the DIFT engine stopped the injected code.
	Detected
	// Missed: the attack ran to completion without a violation (never
	// expected; it would falsify Table I).
	Missed
)

// String renders the outcome in Table I terms.
func (r Result) String() string {
	switch r {
	case NA:
		return "N/A"
	case Detected:
		return "Detected"
	default:
		return "MISSED"
	}
}

// Attack is one row of Table I.
type Attack struct {
	Num       int
	Location  string // "Stack" or "Heap/BSS/Data"
	Target    string
	Technique string // "Direct" or "Indirect"
	NAReason  string // non-empty for non-applicable forms

	body    string
	payload func(img *asm.Image) []byte
}

// Applicable reports whether the attack exists on RISC-V.
func (a *Attack) Applicable() bool { return a.NAReason == "" }

// Build assembles the attack's victim program.
func (a *Attack) Build() (*asm.Image, error) {
	if !a.Applicable() {
		return nil, fmt.Errorf("wk: attack %d is not applicable: %s", a.Num, a.NAReason)
	}
	return guest.Program(a.body)
}

// Payload produces the attacker input for the assembled image.
func (a *Attack) Payload(img *asm.Image) []byte { return a.payload(img) }

// le32 encodes a little-endian address.
func le32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

// fill returns n filler bytes.
func fill(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = 0x41
	}
	return out
}

// copyUART emits code copying n attacker bytes from the UART into the
// buffer whose address is already in t2. Clobbers t0..t4.
func copyUART(n int) string {
	return fmt.Sprintf(`
	li t3, %d
	li t0, UART_BASE
1:	lw t1, UART_RX(t0)
	srli t4, t1, UART_RX_EMPTY_BIT
	bnez t4, 1b
	sb t1, 0(t2)
	addi t2, t2, 1
	addi t3, t3, -1
	bnez t3, 1b
`, n)
}

// payloadFn is the "malicious code" all attacks try to execute. Outside the
// DIFT engine it runs and exits with the marker code 99 (proving the
// overflow works); under the policy its first fetch violates HI clearance.
const payloadFn = `
	.text
	.align 4
attack_code:
	li a0, 99
	j exit
attack_code_end:
`

// mainCallsVictim is the common driver: run the victim; if it returns
// normally the attack failed.
const mainCallsVictim = `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	call victim
	li a0, 1              # attack did not redirect control flow
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
`

// ExitAttackSucceeded is the guest exit code of a successful (undetected)
// code injection.
const ExitAttackSucceeded = 99

// stackTop looks up the runtime stack top; victim frame layouts below are
// deterministic, so payload builders can compute exact slot addresses.
func stackTop(img *asm.Image) uint32 { return img.MustSymbol("__stack_top") }

// Suite returns all 18 Table I attacks in order.
func Suite() []Attack {
	return []Attack{
		{
			Num: 1, Location: "Stack", Target: "Function Pointer (param)", Technique: "Direct",
			NAReason: "parameters are passed in registers on RISC-V; there is no stack-resident parameter to overflow directly",
		},
		{
			Num: 2, Location: "Stack", Target: "Longjmp Buffer (param)", Technique: "Direct",
			NAReason: "jmp_buf parameters are passed by register-held reference; no adjacent stack copy exists",
		},
		attack3(),
		{
			Num: 4, Location: "Stack", Target: "Base Pointer", Technique: "Direct",
			NAReason: "the RISC-V calling convention has no saved base/frame pointer to corrupt",
		},
		attack5(),
		attack6(),
		attack7(),
		{
			Num: 8, Location: "Heap/BSS/Data", Target: "Longjmp Buffer", Technique: "Direct",
			NAReason: "the ported suite allocates no static jmp_buf adjacent to an overflowable static buffer",
		},
		attack9(),
		attack10(),
		attack11(),
		{
			Num: 12, Location: "Stack", Target: "Base Pointer", Technique: "Indirect",
			NAReason: "the RISC-V calling convention has no saved base/frame pointer to corrupt",
		},
		attack13(),
		attack14(),
		{
			Num: 15, Location: "Heap/BSS/Data", Target: "Return Address", Technique: "Indirect",
			NAReason: "return addresses never reside in static memory on RISC-V",
		},
		{
			Num: 16, Location: "Heap/BSS/Data", Target: "Base Pointer", Technique: "Indirect",
			NAReason: "the RISC-V calling convention has no saved base/frame pointer to corrupt",
		},
		attack17(),
		{
			Num: 18, Location: "Heap/BSS/Data", Target: "Longjmp Buffer", Technique: "Indirect",
			NAReason: "the ported suite allocates no static jmp_buf reachable from an overflowable static buffer",
		},
	}
}

// --- Direct attacks -------------------------------------------------------

// Attack 3: stack buffer overflows straight into the caller-saved return
// address.
func attack3() Attack {
	body := mainCallsVictim + `
victim:
	addi sp, sp, -32
	sw ra, 28(sp)
	mv t2, sp             # 16-byte buffer at 0(sp); ra saved at 28(sp)
` + copyUART(32) + `
	lw ra, 28(sp)
	addi sp, sp, 32
	ret                   # returns into the injected payload
` + payloadFn
	return Attack{
		Num: 3, Location: "Stack", Target: "Return Address", Technique: "Direct",
		body: body,
		payload: func(img *asm.Image) []byte {
			return append(fill(28), le32(img.MustSymbol("attack_code"))...)
		},
	}
}

// Attack 5: stack buffer overflows an adjacent local function pointer.
func attack5() Attack {
	body := mainCallsVictim + `
victim:
	addi sp, sp, -32
	sw ra, 28(sp)
	la t0, benign
	sw t0, 16(sp)         # local function pointer above the buffer
	mv t2, sp
` + copyUART(20) + `
	lw t0, 16(sp)
	jalr t0               # calls the overwritten pointer
	lw ra, 28(sp)
	addi sp, sp, 32
	ret
benign:
	ret
` + payloadFn
	return Attack{
		Num: 5, Location: "Stack", Target: "Function Pointer (local)", Technique: "Direct",
		body: body,
		payload: func(img *asm.Image) []byte {
			return append(fill(16), le32(img.MustSymbol("attack_code"))...)
		},
	}
}

// Attack 6: stack buffer overflows into a local jmp_buf's saved ra.
func attack6() Attack {
	body := mainCallsVictim + `
victim:
	addi sp, sp, -96
	sw ra, 92(sp)
	addi a0, sp, 32       # jmp_buf at 32(sp); buffer at 0(sp)
	call setjmp
	bnez a0, 2f
	mv t2, sp
` + copyUART(36) + `
	addi a0, sp, 32
	li a1, 1
	call longjmp          # jumps through the corrupted buffer
2:	lw ra, 92(sp)
	addi sp, sp, 96
	ret
` + payloadFn
	return Attack{
		Num: 6, Location: "Stack", Target: "Longjmp Buffer", Technique: "Direct",
		body: body,
		payload: func(img *asm.Image) []byte {
			return append(fill(32), le32(img.MustSymbol("attack_code"))...)
		},
	}
}

// Attack 7: static buffer in .data overflows into an adjacent static
// function pointer.
func attack7() Attack {
	body := mainCallsVictim + `
victim:
	addi sp, sp, -16
	sw ra, 12(sp)
	la t0, benign
	la t1, wk_fnptr
	sw t0, 0(t1)
	la t2, wk_buf
` + copyUART(20) + `
	la t1, wk_fnptr
	lw t0, 0(t1)
	jalr t0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
benign:
	ret
	.data
	.align 2
wk_buf:
	.space 16
wk_fnptr:
	.word 0
` + payloadFn
	return Attack{
		Num: 7, Location: "Heap/BSS/Data", Target: "Function Pointer", Technique: "Direct",
		body: body,
		payload: func(img *asm.Image) []byte {
			return append(fill(16), le32(img.MustSymbol("attack_code"))...)
		},
	}
}

// --- Indirect attacks -----------------------------------------------------
//
// The indirect form overflows a general pointer adjacent to the buffer and
// plants a value; the program later stores the attacker value through the
// pointer, corrupting a target the overflow itself cannot reach.

// indirectVictim is the shared victim: buffer at 0(sp), pointer at 16(sp),
// attacker value at 20(sp); the spilled function-pointer parameter lives at
// 40(sp); victim frame is 48 bytes under main's 16.
const indirectVictim = `
victim:
	addi sp, sp, -48
	sw ra, 44(sp)
	sw a0, 40(sp)         # spilled parameter
	la t0, wk_scratch
	sw t0, 16(sp)         # general pointer above the buffer
	mv t2, sp
` + // 24 attacker bytes: 16 filler + pointer + value
	""

// indirectFrame computes victim stack-slot addresses: main subtracts 16,
// victim subtracts 48.
func indirectFrame(img *asm.Image, off uint32) uint32 {
	return stackTop(img) - 16 - 48 + off
}

// Attack 9: indirect write into the spilled function-pointer parameter.
func attack9() Attack {
	body := `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, benign
	call victim
	li a0, 1
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
` + indirectVictim + copyUART(24) + `
	lw t0, 16(sp)         # pointer (redirected to the spilled parameter)
	lw t1, 20(sp)         # attacker value
	sw t1, 0(t0)
	lw t0, 40(sp)         # call through the (corrupted) parameter
	jalr t0
	lw ra, 44(sp)
	addi sp, sp, 48
	ret
benign:
	ret
	.data
	.align 2
wk_scratch:
	.word 0
` + payloadFn
	return Attack{
		Num: 9, Location: "Stack", Target: "Function Pointer (param)", Technique: "Indirect",
		body: body,
		payload: func(img *asm.Image) []byte {
			p := fill(16)
			p = append(p, le32(indirectFrame(img, 40))...) // &spilled param
			p = append(p, le32(img.MustSymbol("attack_code"))...)
			return p
		},
	}
}

// Attack 10: indirect write into a caller jmp_buf passed as parameter.
func attack10() Attack {
	body := `
main:
	addi sp, sp, -96
	sw ra, 92(sp)
	addi a0, sp, 32       # jmp_buf in main's frame
	call setjmp
	bnez a0, 1f
	addi a0, sp, 32
	call victim           # victim longjmps through the corrupted buffer
1:	li a0, 1
	lw ra, 92(sp)
	addi sp, sp, 96
	ret
` + indirectVictim + copyUART(24) + `
	lw t0, 16(sp)
	lw t1, 20(sp)
	sw t1, 0(t0)          # corrupt jmp_buf saved ra
	lw a0, 40(sp)
	li a1, 1
	call longjmp
	.data
	.align 2
wk_scratch:
	.word 0
` + payloadFn
	return Attack{
		Num: 10, Location: "Stack", Target: "Longjump Buffer (param)", Technique: "Indirect",
		body: body,
		payload: func(img *asm.Image) []byte {
			// main: sp = top-96; jmp_buf at 32(sp) = top-64; victim frame
			// below: slots as in indirectFrame but with main's 96.
			jmpbuf := stackTop(img) - 96 + 32
			p := fill(16)
			p = append(p, le32(jmpbuf)...)
			p = append(p, le32(img.MustSymbol("attack_code"))...)
			return p
		},
	}
}

// Attack 11: indirect write into the victim's own saved return address.
func attack11() Attack {
	body := mainCallsVictim + indirectVictim + copyUART(24) + `
	lw t0, 16(sp)
	lw t1, 20(sp)
	sw t1, 0(t0)          # corrupt the saved ra at 44(sp)
	lw ra, 44(sp)
	addi sp, sp, 48
	ret
	.data
	.align 2
wk_scratch:
	.word 0
` + payloadFn
	return Attack{
		Num: 11, Location: "Stack", Target: "Return Address", Technique: "Indirect",
		body: body,
		payload: func(img *asm.Image) []byte {
			p := fill(16)
			p = append(p, le32(indirectFrame(img, 44))...) // &saved ra
			p = append(p, le32(img.MustSymbol("attack_code"))...)
			return p
		},
	}
}

// Attack 13: indirect write into a local function pointer.
func attack13() Attack {
	body := mainCallsVictim + `
victim:
	addi sp, sp, -48
	sw ra, 44(sp)
	la t0, benign
	sw t0, 24(sp)         # local function pointer
	la t0, wk_scratch
	sw t0, 16(sp)
	mv t2, sp
` + copyUART(24) + `
	lw t0, 16(sp)
	lw t1, 20(sp)
	sw t1, 0(t0)          # corrupt the local pointer at 24(sp)
	lw t0, 24(sp)
	jalr t0
	lw ra, 44(sp)
	addi sp, sp, 48
	ret
benign:
	ret
	.data
	.align 2
wk_scratch:
	.word 0
` + payloadFn
	return Attack{
		Num: 13, Location: "Stack", Target: "Function Pointer (local)", Technique: "Indirect",
		body: body,
		payload: func(img *asm.Image) []byte {
			p := fill(16)
			p = append(p, le32(indirectFrame(img, 24))...)
			p = append(p, le32(img.MustSymbol("attack_code"))...)
			return p
		},
	}
}

// Attack 14: indirect write into a local jmp_buf.
func attack14() Attack {
	body := mainCallsVictim + `
victim:
	addi sp, sp, -112
	sw ra, 108(sp)
	addi a0, sp, 48       # local jmp_buf
	call setjmp
	bnez a0, 2f
	la t0, wk_scratch
	sw t0, 16(sp)
	mv t2, sp
` + copyUART(24) + `
	lw t0, 16(sp)
	lw t1, 20(sp)
	sw t1, 0(t0)          # corrupt jmp_buf saved ra at 48(sp)
	addi a0, sp, 48
	li a1, 1
	call longjmp
2:	lw ra, 108(sp)
	addi sp, sp, 112
	ret
	.data
	.align 2
wk_scratch:
	.word 0
` + payloadFn
	return Attack{
		Num: 14, Location: "Stack", Target: "Longjmp Buffer", Technique: "Indirect",
		body: body,
		payload: func(img *asm.Image) []byte {
			// victim: sp = top-16-112; jmp_buf at 48(sp).
			jmpbuf := stackTop(img) - 16 - 112 + 48
			p := fill(16)
			p = append(p, le32(jmpbuf)...)
			p = append(p, le32(img.MustSymbol("attack_code"))...)
			return p
		},
	}
}

// Attack 17: indirect write through a static pointer into a static function
// pointer.
func attack17() Attack {
	body := mainCallsVictim + `
victim:
	addi sp, sp, -16
	sw ra, 12(sp)
	la t0, benign
	la t1, wk_fnptr
	sw t0, 0(t1)
	la t0, wk_scratch
	la t1, wk_ptr
	sw t0, 0(t1)
	la t2, wk_buf
` + copyUART(24) + `
	la t1, wk_ptr
	lw t0, 0(t1)          # pointer (redirected to wk_fnptr)
	la t1, wk_val
	lw t1, 0(t1)          # attacker value landed past the pointer
	sw t1, 0(t0)
	la t1, wk_fnptr
	lw t0, 0(t1)
	jalr t0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
benign:
	ret
	.data
	.align 2
wk_buf:
	.space 16
wk_ptr:
	.word 0
wk_val:
	.word 0
wk_fnptr:
	.word 0
wk_scratch:
	.word 0
` + payloadFn
	return Attack{
		Num: 17, Location: "Heap/BSS/Data", Target: "Function Pointer (local)", Technique: "Indirect",
		body: body,
		payload: func(img *asm.Image) []byte {
			p := fill(16)
			p = append(p, le32(img.MustSymbol("wk_fnptr"))...)
			p = append(p, le32(img.MustSymbol("attack_code"))...)
			return p
		},
	}
}

// Policy builds the Section VI-B code-injection policy for a victim image:
// IFP-2, program text HI, HI fetch clearance, everything external LI, and
// the payload function classified LI.
func Policy(img *asm.Image) *core.Policy {
	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	return core.NewPolicy(l, li).
		WithFetchClearance(hi).
		WithRegion(core.RegionRule{
			Name: "payload", Start: img.MustSymbol("attack_code"), End: img.MustSymbol("attack_code_end"),
			Classify: true, Class: li,
		}).
		WithRegion(core.RegionRule{
			Name: "text", Start: img.Base, End: img.Base + uint32(len(img.Text)),
			Classify: true, Class: hi,
		}).
		WithInput("uart0.rx", li)
}

// Note: the payload rule precedes the text rule because classification
// picks the first matching region and attack_code lies inside .text.

// Run executes one applicable attack. With dift enabled it returns the
// Table I outcome; with dift disabled it verifies the overflow actually
// hijacks control (exit code 99), returning Missed.
func Run(a *Attack, dift bool) (Result, error) {
	res, _, err := RunObserved(a, dift, nil)
	return res, err
}

// RunObserved is Run with an optional observer wired into the platform; the
// returned violation (nil unless Detected) then carries the provenance chain
// from the tainted input through the overflowed code pointer to the failed
// fetch-clearance check. The observer must be fresh — it binds to the
// attack's platform.
func RunObserved(a *Attack, dift bool, o *obs.Observer) (Result, *core.Violation, error) {
	return RunWithMode(a, dift, RunMode{Obs: o})
}

// RunMode configures how an attack's platform executes: an optional
// observer, the inline (default) or decoupled taint-monitor organization,
// whether the always-on flight recorder is disabled, and whether the
// coverage-observability layer is attached. Either way the verdict and
// violation must be identical — the decoupled and recorder parity suites
// hold RunWithMode to that.
type RunMode struct {
	Obs       *obs.Observer
	Decoupled bool
	FlightOff bool
	Cover     bool
}

// RunWithMode is RunObserved with the execution mode made explicit.
func RunWithMode(a *Attack, dift bool, mode RunMode) (Result, *core.Violation, error) {
	res, v, _, err := RunForensic(a, dift, mode)
	return res, v, err
}

// RunForensic is RunWithMode additionally returning the platform's forensic
// bundle — non-nil exactly when the run stopped on a violation or fault and
// the flight recorder was enabled.
func RunForensic(a *Attack, dift bool, mode RunMode) (Result, *core.Violation, *flight.Bundle, error) {
	res, v, bundle, _, err := runFull(a, dift, mode)
	return res, v, bundle, err
}

// RunCover runs one attack with the coverage layer attached and returns the
// run's serializable snapshot alongside the verdict. The snapshot's workload
// identity is "wk-<num>" and its policy "wk" (or "none" on the baseline VP),
// so snapshots from different attacks merge as disjoint runs.
func RunCover(a *Attack, dift bool, mode RunMode) (Result, *core.Violation, *cover.Snapshot, error) {
	mode.Cover = true
	res, v, _, snap, err := runFull(a, dift, mode)
	return res, v, snap, err
}

func runFull(a *Attack, dift bool, mode RunMode) (Result, *core.Violation, *flight.Bundle, *cover.Snapshot, error) {
	if !a.Applicable() {
		return NA, nil, nil, nil, nil
	}
	img, err := a.Build()
	if err != nil {
		return NA, nil, nil, nil, err
	}
	var pol *core.Policy
	if dift {
		pol = Policy(img)
	}
	cfg := soc.Config{Policy: pol, Obs: mode.Obs, DecoupledTaint: mode.Decoupled, FlightOff: mode.FlightOff}
	if mode.Cover {
		cfg.Cover = cover.New()
	}
	pl, err := soc.New(cfg)
	if err != nil {
		return NA, nil, nil, nil, err
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		return NA, nil, nil, nil, err
	}
	pl.UART.Inject(a.Payload(img))
	runErr := pl.Run(kernel.S)
	bundle := pl.LastForensics()
	var snap *cover.Snapshot
	if mode.Cover {
		polName := "none"
		if dift {
			polName = "wk"
		}
		snap = pl.CoverSnapshot(fmt.Sprintf("wk-%d", a.Num), polName)
	}

	var v *core.Violation
	if errors.As(runErr, &v) {
		if v.Kind != core.KindFetchClearance {
			return Detected, v, bundle, snap, fmt.Errorf("wk: attack %d raised %v, expected fetch clearance", a.Num, v)
		}
		if v.PC != img.MustSymbol("attack_code") {
			return Detected, v, bundle, snap, fmt.Errorf("wk: attack %d violated at pc=0x%x, expected payload entry", a.Num, v.PC)
		}
		return Detected, v, bundle, snap, nil
	}
	if runErr != nil {
		return Missed, nil, bundle, snap, runErr
	}
	exited, code := pl.Exited()
	if !exited {
		return Missed, nil, nil, snap, fmt.Errorf("wk: attack %d did not terminate", a.Num)
	}
	if code == ExitAttackSucceeded {
		return Missed, nil, nil, snap, nil
	}
	return Missed, nil, nil, snap, fmt.Errorf("wk: attack %d exited with %d; the overflow did not hijack control", a.Num, code)
}

// Table runs the whole suite under the policy and renders Table I.
func Table() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-14s %-26s %-10s %s\n", "Atk #", "Location", "Target", "Technique", "Result")
	suite := Suite()
	for i := range suite {
		a := &suite[i]
		res := NA
		if a.Applicable() {
			var err error
			res, err = Run(a, true)
			if err != nil {
				return "", err
			}
		}
		fmt.Fprintf(&b, "%-5d %-14s %-26s %-10s %s\n", a.Num, a.Location, a.Target, a.Technique, res)
	}
	return b.String(), nil
}
