package wk

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vpdift/internal/cover"
)

// TestSuiteCoverBaseline pins the merged suite snapshot byte-for-byte against
// the checked-in baseline — the same file CI's coverage-diff guard feeds to
// vp-diff. Regenerate after intentional coverage changes with
//
//	go test ./internal/wk -run TestSuiteCoverBaseline -update
func TestSuiteCoverBaseline(t *testing.T) {
	_, snaps, err := RunMatrixCover()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := cover.MergeAll(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "suite.cover.json")
	if *updateGolden {
		if err := os.WriteFile(golden, merged.JSON(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/wk -run TestSuiteCoverBaseline -update)", err)
	}
	if !bytes.Equal(merged.JSON(), want) {
		t.Errorf("suite coverage deviates from the checked-in baseline; if intentional, regenerate with -update")
	}
}

// TestMatrixCoverParity holds RunMatrixCover to the plain matrix: attaching
// the coverage layer may not change a single Table I verdict, and every
// applicable attack must report dynamic edges plus a well-formed snapshot.
func TestMatrixCoverParity(t *testing.T) {
	plain, err := RunMatrix()
	if err != nil {
		t.Fatal(err)
	}
	covered, snaps, err := RunMatrixCover()
	if err != nil {
		t.Fatal(err)
	}
	if covered.Detected != plain.Detected || covered.NA != plain.NA || covered.Missed != plain.Missed {
		t.Fatalf("cover matrix totals %d/%d/%d, plain %d/%d/%d",
			covered.Detected, covered.NA, covered.Missed,
			plain.Detected, plain.NA, plain.Missed)
	}
	if len(snaps) != len(covered.Rows) {
		t.Fatalf("%d snapshots for %d rows", len(snaps), len(covered.Rows))
	}
	for i, r := range covered.Rows {
		p := plain.Rows[i]
		if r.Result != p.Result || r.ClearancePoint != p.ClearancePoint || r.PC != p.PC {
			t.Errorf("attack %d: cover row (%s, %s, 0x%x) != plain row (%s, %s, 0x%x)",
				r.Num, r.Result, r.ClearancePoint, r.PC, p.Result, p.ClearancePoint, p.PC)
		}
		if p.Result == NA.String() {
			if r.Edges != 0 || snaps[i] != nil {
				t.Errorf("attack %d: N/A row has coverage (edges=%d)", r.Num, r.Edges)
			}
			continue
		}
		snap := snaps[i]
		if snap == nil {
			t.Fatalf("attack %d: applicable row without snapshot", r.Num)
		}
		if r.Edges == 0 || r.Edges != snap.EdgeCount() {
			t.Errorf("attack %d: row edges %d, snapshot %d", r.Num, r.Edges, snap.EdgeCount())
		}
		if len(snap.Runs) != 1 || snap.Runs[0].Policy != "wk" {
			t.Errorf("attack %d: run identity %+v", r.Num, snap.Runs)
		}
		if len(snap.Verdicts) != 1 || snap.Verdicts[0].Detected != (p.Result == Detected.String()) {
			t.Errorf("attack %d: verdict %+v, matrix result %s", r.Num, snap.Verdicts, p.Result)
		}
	}

	// The suite's snapshots describe disjoint runs of the same-geometry
	// platform, so they must fold cleanly into one suite snapshot.
	live := make([]*cover.Snapshot, 0, len(snaps))
	for _, s := range snaps {
		if s != nil {
			live = append(live, s)
		}
	}
	merged, err := cover.MergeAll(live...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Runs) != len(live) {
		t.Errorf("merged %d runs from %d snapshots", len(merged.Runs), len(live))
	}
	if merged.EdgeCount() == 0 || len(merged.Verdicts) != len(live) {
		t.Errorf("merged suite snapshot edges=%d verdicts=%d", merged.EdgeCount(), len(merged.Verdicts))
	}
	// Diffing the merge against itself is empty; dropping one attack's
	// snapshot is a regression naming its lost edges.
	if d := cover.Diff(merged, merged); !d.Empty() {
		t.Errorf("self-diff not empty: %s", d.JSON())
	}
	partial, err := cover.MergeAll(live[1:]...)
	if err != nil {
		t.Fatal(err)
	}
	if d := cover.Diff(merged, partial); !d.Regression() || len(d.LostEdges) == 0 {
		t.Errorf("dropping attack %d's snapshot is not a regression: %s", covered.Rows[0].Num, d.JSON())
	}
}
