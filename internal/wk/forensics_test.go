package wk

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vpdift/internal/flight"
)

// TestForensicBundleEndsAtViolation runs every applicable attack with the
// default (recorder-on) platform and checks the acceptance invariant: each
// detected attack yields a validating bundle whose trace window ends at the
// violating instruction.
func TestForensicBundleEndsAtViolation(t *testing.T) {
	for _, a := range Suite() {
		a := a
		if !a.Applicable() {
			continue
		}
		t.Run(fmt.Sprintf("attack-%d", a.Num), func(t *testing.T) {
			res, v, b, err := RunForensic(&a, true, RunMode{})
			if err != nil {
				t.Fatal(err)
			}
			if res != Detected || v == nil {
				t.Fatalf("attack %d not detected (res=%v)", a.Num, res)
			}
			if b == nil {
				t.Fatalf("attack %d detected but produced no forensic bundle", a.Num)
			}
			parsed, err := flight.ValidateBundle(b.JSON())
			if err != nil {
				t.Fatalf("bundle failed validation: %v", err)
			}
			if len(parsed.Trace) == 0 {
				t.Fatal("bundle has an empty trace window")
			}
			last := parsed.Trace[len(parsed.Trace)-1]
			if last.Kind != "violation" || last.PC != flight.Hex32(v.PC) {
				t.Fatalf("trace window ends at %s/%s, want violation at %s",
					last.Kind, last.PC, flight.Hex32(v.PC))
			}
			if parsed.Violation == nil || parsed.Violation.PC != flight.Hex32(v.PC) {
				t.Fatalf("bundle violation headline = %+v, want pc %s",
					parsed.Violation, flight.Hex32(v.PC))
			}
		})
	}
}

// TestForensicParityInlineDecoupled holds the inline and decoupled-monitor
// platforms to bit-identical forensics: the same attack must freeze the same
// trace window, the same register/tag file, the same memory hexdumps and the
// same violation headline, regardless of which core organization ran it.
// (Host-volatile metrics are the one excluded field.)
func TestForensicParityInlineDecoupled(t *testing.T) {
	for _, a := range Suite() {
		a := a
		if !a.Applicable() {
			continue
		}
		t.Run(fmt.Sprintf("attack-%d", a.Num), func(t *testing.T) {
			resI, vI, bI, err := RunForensic(&a, true, RunMode{})
			if err != nil {
				t.Fatal(err)
			}
			resD, vD, bD, err := RunForensic(&a, true, RunMode{Decoupled: true})
			if err != nil {
				t.Fatal(err)
			}
			if resI != Detected || resD != Detected {
				t.Fatalf("verdicts diverge: inline=%v decoupled=%v", resI, resD)
			}
			if vI.PC != vD.PC || vI.Kind != vD.Kind {
				t.Fatalf("violations diverge: inline=%v decoupled=%v", vI, vD)
			}
			if bI == nil || bD == nil {
				t.Fatalf("missing bundle: inline=%v decoupled=%v", bI != nil, bD != nil)
			}
			if bI.Reason != bD.Reason || bI.PC != bD.PC ||
				bI.Instret != bD.Instret || bI.SimNs != bD.SimNs ||
				bI.Captured != bD.Captured || bI.Dropped != bD.Dropped {
				t.Errorf("bundle headers diverge:\ninline:    reason=%s pc=%s instret=%d sim=%d cap=%d drop=%d\ndecoupled: reason=%s pc=%s instret=%d sim=%d cap=%d drop=%d",
					bI.Reason, bI.PC, bI.Instret, bI.SimNs, bI.Captured, bI.Dropped,
					bD.Reason, bD.PC, bD.Instret, bD.SimNs, bD.Captured, bD.Dropped)
			}
			if !reflect.DeepEqual(bI.Regs, bD.Regs) {
				t.Errorf("register/tag files diverge:\ninline:    %+v\ndecoupled: %+v", bI.Regs, bD.Regs)
			}
			if !reflect.DeepEqual(bI.Trace, bD.Trace) {
				for k := range bI.Trace {
					if k < len(bD.Trace) && !reflect.DeepEqual(bI.Trace[k], bD.Trace[k]) {
						t.Errorf("trace record %d diverges:\ninline:    %+v\ndecoupled: %+v",
							k, bI.Trace[k], bD.Trace[k])
						break
					}
				}
				t.Fatalf("trace windows diverge (inline %d records, decoupled %d)",
					len(bI.Trace), len(bD.Trace))
			}
			if !reflect.DeepEqual(bI.Mem, bD.Mem) {
				t.Errorf("memory windows diverge")
			}
			if !reflect.DeepEqual(bI.Violation, bD.Violation) {
				t.Errorf("violation headlines diverge:\ninline:    %+v\ndecoupled: %+v",
					bI.Violation, bD.Violation)
			}
		})
	}
}

// TestForensicRecorderInvariance proves the always-on recorder is a pure
// observer: with the recorder disabled, every attack must reach the exact
// same verdict, violating PC and violation kind in both core organizations.
func TestForensicRecorderInvariance(t *testing.T) {
	for _, a := range Suite() {
		a := a
		if !a.Applicable() {
			continue
		}
		t.Run(fmt.Sprintf("attack-%d", a.Num), func(t *testing.T) {
			for _, decoupled := range []bool{false, true} {
				resOn, vOn, bOn, err := RunForensic(&a, true, RunMode{Decoupled: decoupled})
				if err != nil {
					t.Fatal(err)
				}
				resOff, vOff, bOff, err := RunForensic(&a, true, RunMode{Decoupled: decoupled, FlightOff: true})
				if err != nil {
					t.Fatal(err)
				}
				if resOn != resOff {
					t.Fatalf("decoupled=%v: verdict diverges: on=%v off=%v", decoupled, resOn, resOff)
				}
				if vOn.PC != vOff.PC || vOn.Kind != vOff.Kind || vOn.Addr != vOff.Addr {
					t.Fatalf("decoupled=%v: violation diverges: on=%v off=%v", decoupled, vOn, vOff)
				}
				if bOn == nil {
					t.Fatalf("decoupled=%v: recorder on produced no bundle", decoupled)
				}
				if bOff != nil {
					t.Fatalf("decoupled=%v: recorder off produced a bundle", decoupled)
				}
			}
		})
	}
}

// TestForensicReportGolden locks the human-readable report for a fixed
// attack against a golden file. The report is deterministic by construction
// (volatile fields are excluded from WriteReport); run with -update to
// regenerate after an intentional format change.
func TestForensicReportGolden(t *testing.T) {
	var attack *Attack
	for _, a := range Suite() {
		a := a
		if a.Num == 3 && a.Applicable() {
			attack = &a
			break
		}
	}
	if attack == nil {
		t.Fatal("attack 3 not applicable")
	}
	res, _, b, err := RunForensic(attack, true, RunMode{})
	if err != nil {
		t.Fatal(err)
	}
	if res != Detected || b == nil {
		t.Fatalf("attack 3 not detected with a bundle (res=%v)", res)
	}
	// The version string depends on how the binary was built; pin it so the
	// golden holds under both `go test` and any future tagged build.
	b.Version = "test"
	var got bytes.Buffer
	if err := b.WriteReport(&got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "wk3.forensics.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, got.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/wk -run ForensicReportGolden -update` to create it)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		gotLines := bytes.Split(got.Bytes(), []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		n := len(gotLines)
		if len(wantLines) < n {
			n = len(wantLines)
		}
		for k := 0; k < n; k++ {
			if !bytes.Equal(gotLines[k], wantLines[k]) {
				t.Fatalf("report deviates from golden at line %d:\ngot:  %s\nwant: %s",
					k+1, gotLines[k], wantLines[k])
			}
		}
		t.Fatalf("report length deviates from golden: got %d lines, want %d",
			len(gotLines), len(wantLines))
	}
}
