package wk

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"vpdift/internal/core"
	"vpdift/internal/cover"
)

// ClearancePoints are the matrix columns: every clearance check the DIFT
// engine implements, in a fixed order. Table I's code-injection policy is
// expected to fire exactly one of them (the fetch clearance) for every
// applicable attack.
var ClearancePoints = []core.ViolationKind{
	core.KindOutputClearance,
	core.KindFetchClearance,
	core.KindBranchClearance,
	core.KindMemAddrClearance,
	core.KindStoreClearance,
}

// MatrixRow is one attack crossed with the clearance points.
type MatrixRow struct {
	Num       int    `json:"num"`
	Location  string `json:"location"`
	Target    string `json:"target"`
	Technique string `json:"technique"`
	Result    string `json:"result"`
	// ClearancePoint is the check that fired (ViolationKind string) for a
	// Detected attack; empty otherwise.
	ClearancePoint string `json:"clearance_point,omitempty"`
	// PC is the program counter of the violation (the payload entry point for
	// Table I detections); zero when nothing fired.
	PC       uint32 `json:"pc,omitempty"`
	NAReason string `json:"na_reason,omitempty"`
	// Edges is the attack's dynamic control-flow edge count, filled only by
	// RunMatrixCover (the plain matrix runs without the coverage layer).
	Edges int `json:"edges,omitempty"`
}

// Matrix is the machine-checked Table I detection matrix.
type Matrix struct {
	Rows     []MatrixRow `json:"rows"`
	Detected int         `json:"detected"`
	NA       int         `json:"na"`
	Missed   int         `json:"missed"`
}

// RunMatrix runs all 18 attacks under the Section VI-B policy and builds the
// detection matrix. A Missed row does not abort the run — the matrix is the
// diagnostic — but any infrastructure error (assembler, platform) does.
func RunMatrix() (*Matrix, error) { return runMatrix(RunMode{}) }

// RunMatrixDecoupled is RunMatrix on the decoupled-taint-monitor platform.
// Its result must be identical to RunMatrix — the Table I verdicts may not
// depend on the monitor organization.
func RunMatrixDecoupled() (*Matrix, error) { return runMatrix(RunMode{Decoupled: true}) }

// RunMatrixCover is RunMatrix with the coverage layer attached: every
// applicable attack additionally yields its coverage snapshot, and each
// matrix row carries the attack's dynamic edge count. Snapshots parallel
// the rows (nil for non-applicable attacks). The Table I verdicts must match
// RunMatrix exactly — coverage observation may not perturb detection.
func RunMatrixCover() (*Matrix, []*cover.Snapshot, error) {
	m := &Matrix{}
	var snaps []*cover.Snapshot
	suite := Suite()
	for i := range suite {
		a := &suite[i]
		row := MatrixRow{
			Num: a.Num, Location: a.Location, Target: a.Target,
			Technique: a.Technique, NAReason: a.NAReason,
		}
		if !a.Applicable() {
			row.Result = NA.String()
			m.NA++
			m.Rows = append(m.Rows, row)
			snaps = append(snaps, nil)
			continue
		}
		res, v, snap, err := RunCover(a, true, RunMode{})
		if err != nil && v == nil {
			return nil, nil, err
		}
		row.Result = res.String()
		if v != nil {
			row.ClearancePoint = v.Kind.String()
			row.PC = v.PC
		}
		row.Edges = snap.EdgeCount()
		switch res {
		case Detected:
			m.Detected++
		case Missed:
			m.Missed++
		default:
			m.NA++
		}
		m.Rows = append(m.Rows, row)
		snaps = append(snaps, snap)
	}
	return m, snaps, nil
}

func runMatrix(mode RunMode) (*Matrix, error) {
	m := &Matrix{}
	suite := Suite()
	for i := range suite {
		a := &suite[i]
		row := MatrixRow{
			Num: a.Num, Location: a.Location, Target: a.Target,
			Technique: a.Technique, NAReason: a.NAReason,
		}
		if !a.Applicable() {
			row.Result = NA.String()
			m.NA++
			m.Rows = append(m.Rows, row)
			continue
		}
		res, v, err := RunWithMode(a, true, mode)
		if err != nil && v == nil {
			return nil, err
		}
		row.Result = res.String()
		if v != nil {
			row.ClearancePoint = v.Kind.String()
			row.PC = v.PC
		}
		switch res {
		case Detected:
			m.Detected++
		case Missed:
			m.Missed++
		default:
			m.NA++
		}
		m.Rows = append(m.Rows, row)
	}
	return m, nil
}

// WriteText renders the matrix as an attack × clearance-point table: "X"
// marks the check that fired, "." a check that stayed silent, "-" a
// non-applicable attack.
func (m *Matrix) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%-5s %-14s %-26s %-10s", "Atk #", "Location", "Target", "Technique")
	for _, k := range ClearancePoints {
		fmt.Fprintf(w, " %-9s", shortPoint(k))
	}
	fmt.Fprintf(w, " %s\n", "Result")
	for _, r := range m.Rows {
		fmt.Fprintf(w, "%-5d %-14s %-26s %-10s", r.Num, r.Location, r.Target, r.Technique)
		for _, k := range ClearancePoints {
			mark := "."
			if r.Result == NA.String() {
				mark = "-"
			} else if r.ClearancePoint == k.String() {
				mark = "X"
			}
			fmt.Fprintf(w, " %-9s", mark)
		}
		fmt.Fprintf(w, " %s\n", r.Result)
	}
	fmt.Fprintf(w, "\nDetected %d / N-A %d / Missed %d (of %d)\n",
		m.Detected, m.NA, m.Missed, len(m.Rows))
}

// WriteJSON emits the matrix for machine checking (CI compares it against the
// Table I golden).
func (m *Matrix) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// shortPoint abbreviates a ViolationKind for a column header.
func shortPoint(k core.ViolationKind) string {
	return strings.TrimSuffix(k.String(), "-clearance")
}
