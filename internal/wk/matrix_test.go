package wk

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vpdift/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestMatrixMatchesTableI(t *testing.T) {
	m, err := RunMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's bottom line: 10 detected, 8 not applicable, none missed.
	if m.Detected != 10 || m.NA != 8 || m.Missed != 0 {
		t.Fatalf("matrix totals Detected=%d NA=%d Missed=%d, want 10/8/0",
			m.Detected, m.NA, m.Missed)
	}
	if len(m.Rows) != 18 {
		t.Fatalf("matrix has %d rows, want 18", len(m.Rows))
	}
	for i, r := range m.Rows {
		if r.Num != i+1 {
			t.Errorf("row %d out of order (Num=%d)", i, r.Num)
		}
		want := paperResults[r.Num].String()
		if r.Result != want {
			t.Errorf("attack %d: result %q, want %q", r.Num, r.Result, want)
		}
		if paperResults[r.Num] == Detected {
			// Every detection comes from the same clearance point: the
			// instruction-fetch check at the payload entry.
			if r.ClearancePoint != core.KindFetchClearance.String() {
				t.Errorf("attack %d: clearance point %q, want %q",
					r.Num, r.ClearancePoint, core.KindFetchClearance)
			}
			if r.PC == 0 {
				t.Errorf("attack %d: detected row has no violation PC", r.Num)
			}
		} else {
			if r.ClearancePoint != "" || r.PC != 0 {
				t.Errorf("attack %d: N/A row carries a violation (%q, pc=0x%x)",
					r.Num, r.ClearancePoint, r.PC)
			}
			if r.NAReason == "" {
				t.Errorf("attack %d: N/A row without a reason", r.Num)
			}
		}
	}
}

// TestMatrixGolden pins the rendered matrix byte-for-byte; CI regenerates the
// matrix and fails on any deviation from this checked-in Table I.
func TestMatrixGolden(t *testing.T) {
	m, err := RunMatrix()
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	m.WriteText(&text)
	golden := filepath.Join("testdata", "table1_matrix.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, text.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/wk -run TestMatrixGolden -update)", err)
	}
	if !bytes.Equal(text.Bytes(), want) {
		t.Errorf("matrix deviates from Table I golden:\n--- got ---\n%s--- want ---\n%s",
			text.String(), want)
	}
}

func TestMatrixJSONRoundTrip(t *testing.T) {
	m, err := RunMatrix()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Detected != m.Detected || back.NA != m.NA || len(back.Rows) != len(m.Rows) {
		t.Errorf("round trip lost totals: %+v", back)
	}
}
