package wk

import (
	"bytes"
	"reflect"
	"testing"

	"vpdift/internal/obs"
)

// TestMatrixParityDecoupled is the tentpole acceptance check: the full
// Table I detection matrix — verdicts, clearance points, violation PCs —
// must be byte-identical between the inline and the decoupled taint
// monitor.
func TestMatrixParityDecoupled(t *testing.T) {
	mi, err := RunMatrix()
	if err != nil {
		t.Fatal(err)
	}
	md, err := RunMatrixDecoupled()
	if err != nil {
		t.Fatal(err)
	}
	var bi, bd bytes.Buffer
	if err := mi.WriteJSON(&bi); err != nil {
		t.Fatal(err)
	}
	if err := md.WriteJSON(&bd); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bi.Bytes(), bd.Bytes()) {
		for i := range mi.Rows {
			if i < len(md.Rows) && !reflect.DeepEqual(mi.Rows[i], md.Rows[i]) {
				t.Errorf("attack %d diverged:\ninline:    %+v\ndecoupled: %+v",
					mi.Rows[i].Num, mi.Rows[i], md.Rows[i])
			}
		}
		t.Fatalf("matrix JSON diverged between inline and decoupled mode")
	}
	if mi.Detected == 0 || mi.Missed != 0 {
		t.Fatalf("matrix regressed: %+v", mi)
	}
}

// TestProvenanceParityDecoupled runs every applicable attack with a fresh
// observer under both monitor organizations and compares the violations
// field by field, including the full provenance chains (the decoupled
// platform replays observer hooks monitor-side; sequence numbers must be
// preserved exactly).
func TestProvenanceParityDecoupled(t *testing.T) {
	suite := Suite()
	for i := range suite {
		a := &suite[i]
		if !a.Applicable() {
			continue
		}
		oi := obs.New()
		ri, vi, err := RunWithMode(a, true, RunMode{Obs: oi})
		if err != nil {
			t.Fatalf("attack %d inline: %v", a.Num, err)
		}
		od := obs.New()
		rd, vd, err := RunWithMode(a, true, RunMode{Obs: od, Decoupled: true})
		if err != nil {
			t.Fatalf("attack %d decoupled: %v", a.Num, err)
		}
		if ri != rd {
			t.Errorf("attack %d verdict diverged: inline %v decoupled %v", a.Num, ri, rd)
			continue
		}
		if (vi == nil) != (vd == nil) {
			t.Errorf("attack %d violation presence diverged", a.Num)
			continue
		}
		if vi == nil {
			continue
		}
		if vi.Kind != vd.Kind || vi.PC != vd.PC || vi.Addr != vd.Addr ||
			vi.Have != vd.Have || vi.Required != vd.Required || vi.Value != vd.Value ||
			vi.Port != vd.Port {
			t.Errorf("attack %d violation diverged:\ninline:    %+v\ndecoupled: %+v", a.Num, vi, vd)
		}
		if len(vi.Provenance) == 0 {
			t.Errorf("attack %d: inline violation has no provenance chain", a.Num)
		}
		if !reflect.DeepEqual(vi.Provenance, vd.Provenance) {
			t.Errorf("attack %d provenance diverged (%d vs %d events)",
				a.Num, len(vi.Provenance), len(vd.Provenance))
			for k := 0; k < len(vi.Provenance) && k < len(vd.Provenance); k++ {
				if !reflect.DeepEqual(vi.Provenance[k], vd.Provenance[k]) {
					t.Errorf("  first divergence at event %d:\n  inline:    %+v\n  decoupled: %+v",
						k, vi.Provenance[k], vd.Provenance[k])
					break
				}
			}
		}
		if ec1, ec2 := oi.EventCount(), od.EventCount(); ec1 != ec2 {
			t.Errorf("attack %d observer event count diverged: inline %d decoupled %d", a.Num, ec1, ec2)
		}
	}
}

func TestRunWithModeDecoupledVerdicts(t *testing.T) {
	// Without DIFT the decoupled flag must be inert and the overflow still
	// hijacks control.
	suite := Suite()
	for i := range suite {
		a := &suite[i]
		if !a.Applicable() {
			continue
		}
		res, _, err := RunWithMode(a, false, RunMode{Decoupled: true})
		if err != nil {
			t.Fatalf("attack %d: %v", a.Num, err)
		}
		if res != Missed {
			t.Errorf("attack %d on baseline = %v, want Missed", a.Num, res)
		}
		break // one attack suffices; the full baseline sweep lives in wk_test.go
	}
}
