package asm

import "fmt"

// Register names: x0..x31 plus the standard ABI names.
var regNames = map[string]int{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7,
	"s0": 8, "fp": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
	"s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
	"t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

func init() {
	for i := 0; i < 32; i++ {
		regNames[fmt.Sprintf("x%d", i)] = i
	}
}

// regNum resolves a register name, reporting whether it is one.
func regNum(name string) (int, bool) {
	r, ok := regNames[name]
	return r, ok
}

// CSR addresses understood by the assembler (machine-mode subset of the
// RISC-V privileged spec, matching internal/rv32).
var csrNames = map[string]uint32{
	"mstatus":   0x300,
	"misa":      0x301,
	"mie":       0x304,
	"mtvec":     0x305,
	"mscratch":  0x340,
	"mepc":      0x341,
	"mcause":    0x342,
	"mtval":     0x343,
	"mip":       0x344,
	"mvendorid": 0xF11,
	"marchid":   0xF12,
	"mimpid":    0xF13,
	"mhartid":   0xF14,
	"mcycle":    0xB00,
	"mcycleh":   0xB80,
	"minstret":  0xB02,
	"minstreth": 0xB82,
	"cycle":     0xC00,
	"time":      0xC01,
	"instret":   0xC02,
	"cycleh":    0xC80,
	"timeh":     0xC81,
	"instreth":  0xC82,
}

// RISC-V base opcodes.
const (
	opLUI    = 0x37
	opAUIPC  = 0x17
	opJAL    = 0x6F
	opJALR   = 0x67
	opBRANCH = 0x63
	opLOAD   = 0x03
	opSTORE  = 0x23
	opOPIMM  = 0x13
	opOP     = 0x33
	opMISC   = 0x0F
	opSYSTEM = 0x73
)

// instFormat selects operand shape and encoder.
type instFormat int

const (
	fmtR      instFormat = iota // mnem rd, rs1, rs2
	fmtI                        // mnem rd, rs1, imm12
	fmtShift                    // mnem rd, rs1, shamt5
	fmtLoad                     // mnem rd, off(rs1)
	fmtStore                    // mnem rs2, off(rs1)
	fmtBranch                   // mnem rs1, rs2, target
	fmtU                        // mnem rd, imm20
	fmtJ                        // mnem rd, target
	fmtJalr                     // mnem rd, off(rs1) | rd, rs1
	fmtCSR                      // mnem rd, csr, rs1
	fmtCSRI                     // mnem rd, csr, uimm5
	fmtFixed                    // mnem (fixed encoding: ecall, mret, ...)
)

type instDef struct {
	format instFormat
	opcode uint32
	funct3 uint32
	funct7 uint32
	fixed  uint32 // for fmtFixed
}

// instTable defines all base (non-pseudo) instructions: RV32I, M, Zicsr,
// Zifencei, and the machine-mode returns.
var instTable = map[string]instDef{
	// RV32I register-register.
	"add":  {format: fmtR, opcode: opOP, funct3: 0, funct7: 0x00},
	"sub":  {format: fmtR, opcode: opOP, funct3: 0, funct7: 0x20},
	"sll":  {format: fmtR, opcode: opOP, funct3: 1, funct7: 0x00},
	"slt":  {format: fmtR, opcode: opOP, funct3: 2, funct7: 0x00},
	"sltu": {format: fmtR, opcode: opOP, funct3: 3, funct7: 0x00},
	"xor":  {format: fmtR, opcode: opOP, funct3: 4, funct7: 0x00},
	"srl":  {format: fmtR, opcode: opOP, funct3: 5, funct7: 0x00},
	"sra":  {format: fmtR, opcode: opOP, funct3: 5, funct7: 0x20},
	"or":   {format: fmtR, opcode: opOP, funct3: 6, funct7: 0x00},
	"and":  {format: fmtR, opcode: opOP, funct3: 7, funct7: 0x00},
	// M extension.
	"mul":    {format: fmtR, opcode: opOP, funct3: 0, funct7: 0x01},
	"mulh":   {format: fmtR, opcode: opOP, funct3: 1, funct7: 0x01},
	"mulhsu": {format: fmtR, opcode: opOP, funct3: 2, funct7: 0x01},
	"mulhu":  {format: fmtR, opcode: opOP, funct3: 3, funct7: 0x01},
	"div":    {format: fmtR, opcode: opOP, funct3: 4, funct7: 0x01},
	"divu":   {format: fmtR, opcode: opOP, funct3: 5, funct7: 0x01},
	"rem":    {format: fmtR, opcode: opOP, funct3: 6, funct7: 0x01},
	"remu":   {format: fmtR, opcode: opOP, funct3: 7, funct7: 0x01},
	// RV32I immediate.
	"addi":  {format: fmtI, opcode: opOPIMM, funct3: 0},
	"slti":  {format: fmtI, opcode: opOPIMM, funct3: 2},
	"sltiu": {format: fmtI, opcode: opOPIMM, funct3: 3},
	"xori":  {format: fmtI, opcode: opOPIMM, funct3: 4},
	"ori":   {format: fmtI, opcode: opOPIMM, funct3: 6},
	"andi":  {format: fmtI, opcode: opOPIMM, funct3: 7},
	"slli":  {format: fmtShift, opcode: opOPIMM, funct3: 1, funct7: 0x00},
	"srli":  {format: fmtShift, opcode: opOPIMM, funct3: 5, funct7: 0x00},
	"srai":  {format: fmtShift, opcode: opOPIMM, funct3: 5, funct7: 0x20},
	// Loads and stores.
	"lb":  {format: fmtLoad, opcode: opLOAD, funct3: 0},
	"lh":  {format: fmtLoad, opcode: opLOAD, funct3: 1},
	"lw":  {format: fmtLoad, opcode: opLOAD, funct3: 2},
	"lbu": {format: fmtLoad, opcode: opLOAD, funct3: 4},
	"lhu": {format: fmtLoad, opcode: opLOAD, funct3: 5},
	"sb":  {format: fmtStore, opcode: opSTORE, funct3: 0},
	"sh":  {format: fmtStore, opcode: opSTORE, funct3: 1},
	"sw":  {format: fmtStore, opcode: opSTORE, funct3: 2},
	// Control flow.
	"beq":  {format: fmtBranch, opcode: opBRANCH, funct3: 0},
	"bne":  {format: fmtBranch, opcode: opBRANCH, funct3: 1},
	"blt":  {format: fmtBranch, opcode: opBRANCH, funct3: 4},
	"bge":  {format: fmtBranch, opcode: opBRANCH, funct3: 5},
	"bltu": {format: fmtBranch, opcode: opBRANCH, funct3: 6},
	"bgeu": {format: fmtBranch, opcode: opBRANCH, funct3: 7},
	"jal":  {format: fmtJ, opcode: opJAL},
	"jalr": {format: fmtJalr, opcode: opJALR, funct3: 0},
	// Upper immediates.
	"lui":   {format: fmtU, opcode: opLUI},
	"auipc": {format: fmtU, opcode: opAUIPC},
	// Zicsr.
	"csrrw":  {format: fmtCSR, opcode: opSYSTEM, funct3: 1},
	"csrrs":  {format: fmtCSR, opcode: opSYSTEM, funct3: 2},
	"csrrc":  {format: fmtCSR, opcode: opSYSTEM, funct3: 3},
	"csrrwi": {format: fmtCSRI, opcode: opSYSTEM, funct3: 5},
	"csrrsi": {format: fmtCSRI, opcode: opSYSTEM, funct3: 6},
	"csrrci": {format: fmtCSRI, opcode: opSYSTEM, funct3: 7},
	// Fixed encodings.
	"ecall":   {format: fmtFixed, fixed: 0x00000073},
	"ebreak":  {format: fmtFixed, fixed: 0x00100073},
	"mret":    {format: fmtFixed, fixed: 0x30200073},
	"wfi":     {format: fmtFixed, fixed: 0x10500073},
	"fence":   {format: fmtFixed, fixed: 0x0ff0000f},
	"fence.i": {format: fmtFixed, fixed: 0x0000100f},
}

// Encoders. Immediate range errors are reported with the caller's context.

func encR(d instDef, rd, rs1, rs2 int) uint32 {
	return d.funct7<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | d.funct3<<12 | uint32(rd)<<7 | d.opcode
}

func encI(d instDef, rd, rs1 int, imm int64) (uint32, error) {
	if imm < -2048 || imm > 2047 {
		return 0, fmt.Errorf("immediate %d out of 12-bit signed range", imm)
	}
	return uint32(imm&0xfff)<<20 | uint32(rs1)<<15 | d.funct3<<12 | uint32(rd)<<7 | d.opcode, nil
}

func encShift(d instDef, rd, rs1 int, shamt int64) (uint32, error) {
	if shamt < 0 || shamt > 31 {
		return 0, fmt.Errorf("shift amount %d out of range 0..31", shamt)
	}
	return d.funct7<<25 | uint32(shamt)<<20 | uint32(rs1)<<15 | d.funct3<<12 | uint32(rd)<<7 | d.opcode, nil
}

func encS(d instDef, rs1, rs2 int, imm int64) (uint32, error) {
	if imm < -2048 || imm > 2047 {
		return 0, fmt.Errorf("store offset %d out of 12-bit signed range", imm)
	}
	u := uint32(imm & 0xfff)
	return (u>>5)<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | d.funct3<<12 | (u&0x1f)<<7 | d.opcode, nil
}

func encB(d instDef, rs1, rs2 int, off int64) (uint32, error) {
	if off < -4096 || off > 4095 {
		return 0, fmt.Errorf("branch target offset %d out of range (+-4KiB)", off)
	}
	if off&1 != 0 {
		return 0, fmt.Errorf("branch target offset %d not 2-byte aligned", off)
	}
	u := uint32(off) & 0x1fff
	return (u>>12&1)<<31 | (u>>5&0x3f)<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 |
		d.funct3<<12 | (u>>1&0xf)<<8 | (u>>11&1)<<7 | d.opcode, nil
}

func encU(d instDef, rd int, imm int64) (uint32, error) {
	if imm < 0 || imm > 0xfffff {
		return 0, fmt.Errorf("upper immediate %d out of 20-bit range", imm)
	}
	return uint32(imm)<<12 | uint32(rd)<<7 | d.opcode, nil
}

func encJ(d instDef, rd int, off int64) (uint32, error) {
	if off < -(1<<20) || off >= 1<<20 {
		return 0, fmt.Errorf("jump target offset %d out of range (+-1MiB)", off)
	}
	if off&1 != 0 {
		return 0, fmt.Errorf("jump target offset %d not 2-byte aligned", off)
	}
	u := uint32(off) & 0x1fffff
	return (u>>20&1)<<31 | (u>>1&0x3ff)<<21 | (u>>11&1)<<20 | (u>>12&0xff)<<12 | uint32(rd)<<7 | d.opcode, nil
}

func encCSR(d instDef, rd int, csr uint32, rs1 int) (uint32, error) {
	if csr > 0xfff {
		return 0, fmt.Errorf("CSR address 0x%x out of range", csr)
	}
	return csr<<20 | uint32(rs1)<<15 | d.funct3<<12 | uint32(rd)<<7 | d.opcode, nil
}

func encCSRI(d instDef, rd int, csr uint32, uimm int64) (uint32, error) {
	if csr > 0xfff {
		return 0, fmt.Errorf("CSR address 0x%x out of range", csr)
	}
	if uimm < 0 || uimm > 31 {
		return 0, fmt.Errorf("CSR immediate %d out of range 0..31", uimm)
	}
	return csr<<20 | uint32(uimm)<<15 | d.funct3<<12 | uint32(rd)<<7 | d.opcode, nil
}
