package asm

import (
	"fmt"
	"strings"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokIdent   tokKind = iota // mnemonic, register, symbol, directive (with leading '.')
	tokNumber                 // integer literal (value in num)
	tokString                 // quoted string (value in str)
	tokPunct                  // single punctuation rune: , ( ) + - * / % & | ^ ~ < > :
	tokPercent                // %hi / %lo marker (ident in str)
)

// token is one lexical unit of an assembly line.
type token struct {
	kind tokKind
	str  string // ident text, string contents, punct text ("<<" and ">>" are two-rune puncts)
	num  int64
}

func (t token) String() string {
	switch t.kind {
	case tokNumber:
		return fmt.Sprintf("%d", t.num)
	case tokString:
		return fmt.Sprintf("%q", t.str)
	default:
		return t.str
	}
}

// stripComment removes '#' and '//' comments outside string literals.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch {
		case c == '"':
			inStr = true
		case c == '#':
			return line[:i]
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}

// lexLine tokenizes one source line (comment already stripped).
func lexLine(line string) ([]token, error) {
	var toks []token
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case isIdentStart(c):
			j := i + 1
			for j < n && isIdentPart(line[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, str: line[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i + 1
			for j < n && isNumPart(line[j]) {
				j++
			}
			text := line[i:j]
			// Numeric local label refs: 1b / 1f.
			if (strings.HasSuffix(text, "b") || strings.HasSuffix(text, "f")) && isAllDigits(text[:len(text)-1]) {
				toks = append(toks, token{kind: tokIdent, str: text})
				i = j
				continue
			}
			v, err := parseInt(text)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokNumber, num: v})
			i = j
		case c == '\'':
			v, adv, err := parseCharLit(line[i:])
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokNumber, num: v})
			i += adv
		case c == '"':
			s, adv, err := parseStringLit(line[i:])
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, str: s})
			i += adv
		case c == '%':
			// %hi(...) / %lo(...) relocation marker when followed by a
			// name; plain modulo operator otherwise (e.g. "7 % 3", "1%0").
			if i+1 >= n || !isIdentStart(line[i+1]) {
				toks = append(toks, token{kind: tokPunct, str: "%"})
				i++
				continue
			}
			j := i + 1
			for j < n && isIdentPart(line[j]) {
				j++
			}
			toks = append(toks, token{kind: tokPercent, str: line[i+1 : j]})
			i = j
		case c == '<' || c == '>':
			if i+1 < n && line[i+1] == c {
				toks = append(toks, token{kind: tokPunct, str: line[i : i+2]})
				i += 2
			} else {
				return nil, fmt.Errorf("unexpected %q", string(c))
			}
		case strings.ContainsRune(",()+-*/%&|^~:=", rune(c)):
			toks = append(toks, token{kind: tokPunct, str: string(c)})
			i++
		default:
			return nil, fmt.Errorf("unexpected character %q", string(c))
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isNumPart(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') ||
		c == 'x' || c == 'X' || c == 'o' || c == 'O'
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// parseInt parses decimal, 0x hex, 0b binary and 0o/0-prefixed octal.
func parseInt(text string) (int64, error) {
	base := 10
	digits := text
	switch {
	case strings.HasPrefix(text, "0x"), strings.HasPrefix(text, "0X"):
		base, digits = 16, text[2:]
	case strings.HasPrefix(text, "0b"), strings.HasPrefix(text, "0B"):
		base, digits = 2, text[2:]
	case strings.HasPrefix(text, "0o"), strings.HasPrefix(text, "0O"):
		base, digits = 8, text[2:]
	}
	if digits == "" {
		return 0, fmt.Errorf("malformed number %q", text)
	}
	var v uint64
	for i := 0; i < len(digits); i++ {
		d := digitVal(digits[i])
		if d < 0 || d >= base {
			return 0, fmt.Errorf("malformed number %q", text)
		}
		v = v*uint64(base) + uint64(d)
		if v > 1<<63 {
			return 0, fmt.Errorf("number %q overflows", text)
		}
	}
	return int64(v), nil
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}

// parseCharLit parses 'c' or '\n' etc., returning the value and the number of
// input bytes consumed.
func parseCharLit(s string) (int64, int, error) {
	if len(s) < 3 {
		return 0, 0, fmt.Errorf("malformed character literal")
	}
	i := 1
	var v int64
	if s[i] == '\\' {
		if len(s) < 4 {
			return 0, 0, fmt.Errorf("malformed character literal")
		}
		e, err := unescape(s[i+1])
		if err != nil {
			return 0, 0, err
		}
		v = int64(e)
		i += 2
	} else {
		v = int64(s[i])
		i++
	}
	if i >= len(s) || s[i] != '\'' {
		return 0, 0, fmt.Errorf("unterminated character literal")
	}
	return v, i + 1, nil
}

// parseStringLit parses a double-quoted string with C-style escapes,
// returning the contents and the number of input bytes consumed.
func parseStringLit(s string) (string, int, error) {
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("unterminated escape in string")
			}
			e, err := unescape(s[i+1])
			if err != nil {
				return "", 0, err
			}
			b.WriteByte(e)
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated string literal")
}

func unescape(c byte) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	default:
		return 0, fmt.Errorf("unknown escape \\%c", c)
	}
}
