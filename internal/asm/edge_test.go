package asm

import (
	"encoding/binary"
	"strings"
	"testing"
)

func TestCharLiterals(t *testing.T) {
	img := mustAsm(t, `
	li a0, 'A'
	li a1, '\n'
	li a2, '\t'
	li a3, '\0'
	li a4, '\\'
	li a5, '\''
	.data
	.byte 'x', '\r', '"'
`)
	wantImms := map[int]int64{0: 'A', 1: '\n', 2: '\t', 3: 0, 4: '\\', 5: '\''}
	for i, want := range wantImms {
		w := word(t, img, i)
		imm := int64(int32(w) >> 20)
		if imm != want {
			t.Errorf("inst %d imm = %d, want %d", i, imm, want)
		}
	}
	if img.Data[0] != 'x' || img.Data[1] != '\r' || img.Data[2] != '"' {
		t.Errorf("data = %v", img.Data[:3])
	}
}

func TestCharLiteralErrors(t *testing.T) {
	for _, src := range []string{
		"li a0, 'A\n",    // unterminated
		"li a0, '\\q'\n", // bad escape
		"li a0, ''\n",    // empty
		"li a0, '\n",     // truncated
	} {
		if _, err := Assemble(src, Options{}); err == nil {
			t.Errorf("%q must fail", src)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	img := mustAsm(t, "\tnop\n\t.data\nmsg:\t.ascii \"a\\n\\t\\r\\0\\\\\\\"b\\'\"\n")
	want := "a\n\t\r\x00\\\"b'"
	if string(img.Data[:len(want)]) != want {
		t.Errorf("data = %q, want %q", img.Data[:len(want)], want)
	}
	if _, err := Assemble("\t.data\n\t.ascii \"bad\\q\"\n", Options{}); err == nil {
		t.Error("bad string escape must fail")
	}
	if _, err := Assemble("\t.data\n\t.ascii \"trunc\\", Options{}); err == nil {
		t.Error("truncated escape must fail")
	}
}

func TestNumberBases(t *testing.T) {
	img := mustAsm(t, `
	.data
	.word 0x10, 0X10, 0b101, 0B101, 0o17, 0O17, 42
`)
	want := []uint32{16, 16, 5, 5, 15, 15, 42}
	for i, w := range want {
		if got := binary.LittleEndian.Uint32(img.Data[i*4:]); got != w {
			t.Errorf("word %d = %d, want %d", i, got, w)
		}
	}
	for _, src := range []string{
		"\t.data\n\t.word 0x\n",
		"\t.data\n\t.word 0b\n",
		"\t.data\n\t.word 0b2\n",
		"\t.data\n\t.word 0xG\n",
	} {
		if _, err := Assemble(src, Options{}); err == nil {
			t.Errorf("%q must fail", src)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"\t.data\n\t.word 1/0\n", "division by zero"},
		{"\t.data\n\t.word 1%0\n", "modulo by zero"},
		{"\t.data\n\t.word 1<<64\n", "shift amount"},
		{"\t.data\n\t.word 1>>-1\n", "shift amount"},
		{"\t.data\n\t.word (1+2\n", "missing )"},
		{"\t.data\n\t.word %hi 5\n", "followed by"},
		{"\t.data\n\t.word %hi(5\n", "missing )"},
		{"\t.data\n\t.word %bogus(5)\n", "unknown relocation"},
		{"\t.data\n\t.word +\n", "expected expression"},
		{"\t.data\n\t.word ,\n", "unexpected"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestUnaryOperators(t *testing.T) {
	img := mustAsm(t, `
	.data
	.word -5 + 10, ~0 + 1, +7, - -3
`)
	want := []uint32{5, 0, 7, 3}
	for i, w := range want {
		if got := binary.LittleEndian.Uint32(img.Data[i*4:]); got != w {
			t.Errorf("word %d = %d, want %d", i, got, w)
		}
	}
}

func TestHiLoRelocations(t *testing.T) {
	// %hi/%lo must reconstruct any address, including the carry case.
	img := mustAsm(t, `
	lui a0, %hi(0x12345FFF)
	addi a0, a0, %lo(0x12345FFF)
	.data
	.word %hi(0x80000800), %lo(0x80000800)
`)
	lui, addi := word(t, img, 0), word(t, img, 1)
	hi := int64(lui >> 12)
	lo := int64(int32(addi) >> 20)
	if got := uint32(hi<<12 + lo); got != 0x12345FFF {
		t.Errorf("hi/lo reconstruct 0x%x", got)
	}
	// Carry: %hi(0x80000800) = 0x80001, %lo = -2048.
	if got := binary.LittleEndian.Uint32(img.Data[0:]); got != 0x80001 {
		t.Errorf("hi = 0x%x", got)
	}
	if got := int32(binary.LittleEndian.Uint32(img.Data[4:])); got != -2048 {
		t.Errorf("lo = %d", got)
	}
}

func TestPseudoOperandErrors(t *testing.T) {
	cases := []string{
		"li a0\n",
		"li 5, a0\n",
		"la a0\n",
		"mv a0, 5\n",
		"not 1, 2\n",
		"neg a0\n",
		"seqz a0\n",
		"snez a0\n",
		"sltz a0\n",
		"sgtz a0\n",
		"nop x1\n",
		"beqz a0\n",
		"bgt a0, a1\n",
		"j\n",
		"jr 5\n",
		"ret x1\n",
		"call\n",
		"tail\n",
		"csrr a0\n",
		"csrw mstatus\n",
		"csrs mstatus\n",
		"csrc mstatus\n",
		"csrwi mstatus\n",
		"csrsi mstatus\n",
		"csrci mstatus\n",
		"jal a0, a1, a2\n",
	}
	for _, src := range cases {
		if _, err := Assemble(src, Options{}); err == nil {
			t.Errorf("%q must fail", strings.TrimSpace(src))
		}
	}
}

func TestEncodeOperandKindErrors(t *testing.T) {
	cases := []string{
		"add a0, a1, 5\n",        // R-type needs registers
		"addi a0, 5, 5\n",        // rs1 must be a register
		"addi a0, a1, a2\n",      // imm must be an expression
		"lw a0, a1, a2\n",        // load needs mem operand
		"sw 5, 0(a0)\n",          // store data must be register
		"beq a0, 5, 0\n",         // branch rs2 register
		"lui a0, a1\n",           // U-imm must be expression
		"jal 5, 0\n",             // rd register
		"csrrw a0, mstatus, 5\n", // rs1 register
		"csrrwi a0, mstatus, a1\n",
		"csrrw a0, (a1), a2\n", // bad CSR operand
		"ecall a0\n",           // fixed form takes no operands
		"lw a0, 0(7)\n",        // base must be a register name
		"lw a0, 0(a1)(a2)\n",   // trailing tokens
	}
	for _, src := range cases {
		if _, err := Assemble(src, Options{}); err == nil {
			t.Errorf("%q must fail", strings.TrimSpace(src))
		}
	}
}

func TestRangeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"lui a0, 0x100000\n", "20-bit"},
		{"lui a0, -1\n", "20-bit"},
		{"sw a0, 5000(a1)\n", "12-bit"},
		{"csrrwi a0, mstatus, 32\n", "0..31"},
		{"csrrwi a0, 0x1001, 0\n", "out of range"},
		{".data\n.byte 256\n", "out of range"},
		{".data\n.byte -129\n", "out of range"},
		{".data\n.half 65536\n", "out of range"},
		{".space 1 << 30\n", "size"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v (want %q)", c.src, err, c.want)
		}
	}
}

func TestDirectiveErrors(t *testing.T) {
	cases := []string{
		".section\n",
		".section .rodata\n",
		".global\n",
		".global 5\n",
		".equ\n",
		".equ X\n",
		".equ X, someLabel\n", // labels not usable in .equ
		".word\n",
		".ascii\n",
		".ascii 5\n",
		".ascii \"a\" \"b\"\n", // missing comma
		".space\n",
		".space 1, 2, 3\n",
		".align\n",
		".align 1, 2\n",
		".balign 3\n", // not a power of two
		".align 30\n", // too large
	}
	for _, src := range cases {
		if _, err := Assemble(src, Options{}); err == nil {
			t.Errorf("%q must fail", strings.TrimSpace(src))
		}
	}
}

func TestLabelEdgeCases(t *testing.T) {
	// Multiple labels on one line, label-only lines, label then directive.
	img := mustAsm(t, `
a: b: c:
	nop
d:
	.data
e: f: .word 7
`)
	for _, n := range []string{"a", "b", "c"} {
		if img.MustSymbol(n) != img.Base {
			t.Errorf("%s != base", n)
		}
	}
	if img.MustSymbol("d") != img.Base+4 {
		t.Error("d after nop")
	}
	if img.MustSymbol("e") != img.MustSymbol("f") {
		t.Error("e and f must coincide")
	}
	// A numeric label inside .data referenced from .text resolves across
	// sections by address order; make sure doing so is at least stable.
	if _, err := Assemble("1:\tnop\n\tj 1b\n", Options{}); err != nil {
		t.Errorf("numeric label at start: %v", err)
	}
}

func TestErrorTruncation(t *testing.T) {
	// More than 12 errors must be truncated with a count.
	var b strings.Builder
	for i := 0; i < 20; i++ {
		b.WriteString("bogus\n")
	}
	_, err := Assemble(b.String(), Options{})
	if err == nil || !strings.Contains(err.Error(), "more errors") {
		t.Errorf("err = %v", err)
	}
}

func TestTokenString(t *testing.T) {
	toks, err := lexLine(`add 5 "s" ,`)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{}
	for _, tk := range toks {
		got = append(got, tk.String())
	}
	want := []string{"add", "5", `"s"`, ","}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestJalrForms(t *testing.T) {
	img := mustAsm(t, `
	jalr a0, 8(a1)
	jalr a0, a1
	jalr a1
	jr a1
	ret
`)
	// All must encode to opcode 0x67.
	for i := 0; i < 5; i++ {
		if w := word(t, img, i); w&0x7f != 0x67 {
			t.Errorf("inst %d opcode = 0x%x", i, w&0x7f)
		}
	}
	// Form 2: jalr a0, a1 == jalr a0, 0(a1).
	if w := word(t, img, 1); w>>20 != 0 || (w>>15)&31 != 11 || (w>>7)&31 != 10 {
		t.Errorf("jalr a0, a1 = 0x%08x", w)
	}
}

func TestIsConstName(t *testing.T) {
	if !isConstName("RAM_BASE") || !isConstName("X1") {
		t.Error("caps names are const-like")
	}
	if isConstName("main") || isConstName("_start") == false && false {
		t.Error("lowercase names are labels")
	}
	if isConstName("mixedCase") {
		t.Error("mixed case is a label")
	}
}
