package asm_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"vpdift/internal/asm"
	"vpdift/internal/rv32"
)

// TestDisassembleReassembleRoundTrip assembles a representative form of
// every instruction, disassembles the resulting word with internal/rv32,
// reassembles the disassembly, and requires the identical encoding. This
// pins assembler and disassembler to the same reading of the ISA.
func TestDisassembleReassembleRoundTrip(t *testing.T) {
	forms := []string{
		"lui t0, 0x12345",
		"auipc s3, 0xABCDE",
		"jal ra, 0x80000010",
		"jalr t1, 12(a0)",
		"beq a0, a1, 0x80000020",
		"bne s0, s1, 0x80000004",
		"blt t3, t4, 0x80000040",
		"bge zero, a7, 0x80000008",
		"bltu a2, a3, 0x80000010",
		"bgeu t5, t6, 0x80000000",
		"lb a0, -1(sp)",
		"lh a1, 2(gp)",
		"lw a2, 2047(tp)",
		"lbu a3, -2048(s11)",
		"lhu a4, 0(t2)",
		"sb s2, 5(a5)",
		"sh s3, -6(a6)",
		"sw s4, 100(s5)",
		"addi x1, x2, -3",
		"slti x3, x4, 9",
		"sltiu x5, x6, 10",
		"xori x7, x8, -1",
		"ori x9, x10, 0x7f",
		"andi x11, x12, 0x0f",
		"slli x13, x14, 31",
		"srli x15, x16, 1",
		"srai x17, x18, 15",
		"add x19, x20, x21",
		"sub x22, x23, x24",
		"sll x25, x26, x27",
		"slt x28, x29, x30",
		"sltu x31, x1, x2",
		"xor a0, a1, a2",
		"srl a3, a4, a5",
		"sra a6, a7, s2",
		"or s3, s4, s5",
		"and s6, s7, s8",
		"mul t0, t1, t2",
		"mulh t3, t4, t5",
		"mulhsu s0, s1, s2",
		"mulhu a0, a1, a2",
		"div a3, a4, a5",
		"divu s9, s10, s11",
		"rem t6, t5, t4",
		"remu a6, a7, t0",
		"csrrw t0, mstatus, t1",
		"csrrs t2, mepc, zero",
		"csrrc s0, mcause, s1",
		"csrrwi zero, mtvec, 5",
		"csrrsi a0, mscratch, 0",
		"csrrci a1, mtval, 31",
		"ecall",
		"ebreak",
		"mret",
		"wfi",
		"fence",
		"fence.i",
	}
	for _, form := range forms {
		// Branch/jump targets are absolute: anchor the instruction at the
		// default base so offsets resolve.
		img1, err := asm.Assemble(form+"\n", asm.Options{})
		if err != nil {
			t.Errorf("%q: %v", form, err)
			continue
		}
		w1 := binary.LittleEndian.Uint32(img1.Text)
		dis := rv32.Disassemble(w1, img1.Base)
		img2, err := asm.Assemble(dis+"\n", asm.Options{})
		if err != nil {
			t.Errorf("%q -> %q: reassembly failed: %v", form, dis, err)
			continue
		}
		w2 := binary.LittleEndian.Uint32(img2.Text)
		if w1 != w2 {
			t.Errorf("%q: 0x%08x -> %q -> 0x%08x", form, w1, dis, w2)
		}
	}
}

// TestDecodeMatchesAssembledOp: the decoder's op for every assembled form
// above must carry the same mnemonic the source used (modulo pseudo
// expansion, which this list avoids).
func TestDecodeMatchesAssembledOp(t *testing.T) {
	cases := map[string]string{
		"add a0, a1, a2":        "add",
		"lw a0, 0(sp)":          "lw",
		"jal ra, 0x80000000":    "jal",
		"csrrw t0, mstatus, t1": "csrrw",
		"wfi":                   "wfi",
	}
	for src, want := range cases {
		img, err := asm.Assemble(src+"\n", asm.Options{})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		w := binary.LittleEndian.Uint32(img.Text)
		if got := rv32.Decode(w).Op.Name(); got != want {
			t.Errorf("%q decodes as %q", src, got)
		}
	}
}

// TestDisassembleWholeGuestPrograms: every word of the text sections of the
// repository's real guests must disassemble to something the assembler
// accepts (or be an intentional .word literal).
func TestDisassembleWholeGuestPrograms(t *testing.T) {
	srcs := []string{
		"main:\n\taddi sp, sp, -16\n\tsw ra, 12(sp)\n\tli a0, 0x12345678\n\tcall f\n\tlw ra, 12(sp)\n\taddi sp, sp, 16\n\tret\nf:\n\tmul a0, a0, a0\n\tret\n",
	}
	for _, src := range srcs {
		img, err := asm.Assemble(src, asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+4 <= len(img.Text); i += 4 {
			w := binary.LittleEndian.Uint32(img.Text[i:])
			dis := rv32.Disassemble(w, img.Base+uint32(i))
			if strings.HasPrefix(dis, ".word") {
				t.Errorf("word %d (0x%08x) does not disassemble", i/4, w)
			}
		}
	}
}
