// Package asm implements a two-pass RV32IM assembler.
//
// It is the toolchain substitute for this reproduction: the paper assembles
// its guest software with a GCC RISC-V cross toolchain; here all guest
// binaries (benchmarks, attack programs, the immobilizer firmware) are
// written in RISC-V assembly and assembled in-process to genuine RV32
// machine code.
//
// Supported input:
//
//   - RV32I base ISA, M extension, Zicsr, Zifencei, mret/wfi.
//   - The standard pseudo-instructions (li, la, mv, call, ret, beqz, ...).
//   - Labels, numeric local labels (1:, 1b, 1f), .equ constants.
//   - Sections .text/.data/.bss with automatic layout, data directives
//     (.word/.half/.byte/.ascii/.asciz/.space/.align/.balign).
//   - Constant expressions with the usual operators and %hi()/%lo().
//
// Comments start with '#' or '//'.
package asm

import (
	"fmt"
	"strings"
)

// Options configures assembly.
type Options struct {
	// Base is the load/link address of the .text section. Defaults to
	// 0x80000000 (the RAM base of the SoC in internal/soc).
	Base uint32
	// DataAlign aligns the start of .data after .text. Defaults to 64.
	DataAlign uint32
}

const (
	secText = iota
	secData
	secBSS
	numSections
)

var sectionNames = [numSections]string{".text", ".data", ".bss"}

type opKind int

const (
	opReg opKind = iota
	opExpr
	opMem // expr(baseReg)
)

type operand struct {
	kind opKind
	reg  int
	ex   expr
	base int
}

type itemKind int

const (
	itInst itemKind = iota
	itData
	itBytes
	itSpace
)

// item is one unit of output: a single machine instruction, a data directive,
// raw bytes, or fill space.
type item struct {
	line     int
	section  int
	offset   uint32
	size     uint32
	kind     itemKind
	mnem     string
	ops      []operand
	elemSize uint32
	exprs    []expr
	raw      []byte
	fill     byte
}

type symVal struct {
	section int // -1 for absolute (.equ)
	value   int64
}

type assembler struct {
	opts    Options
	items   []item
	offsets [numSections]uint32
	bases   [numSections]uint32
	symbols map[string]symVal
	// locals maps a numeric label to its definitions in source order as
	// (section, offset); resolved to addresses after layout.
	locals  map[int64][]symVal
	section int
	line    int
	errs    []string
}

// Assemble translates RISC-V assembly source into a loadable Image.
func Assemble(src string, opts Options) (*Image, error) {
	if opts.Base == 0 {
		opts.Base = 0x80000000
	}
	if opts.DataAlign == 0 {
		opts.DataAlign = 64
	}
	a := &assembler{
		opts:    opts,
		symbols: make(map[string]symVal),
		locals:  make(map[int64][]symVal),
	}
	a.pass1(src)
	if len(a.errs) > 0 {
		return nil, a.err()
	}
	a.layout()
	img, err := a.pass2()
	if err != nil {
		return nil, err
	}
	return img, nil
}

// MustAssemble is Assemble that panics on error; for statically-known guest
// programs.
func MustAssemble(src string, opts Options) *Image {
	img, err := Assemble(src, opts)
	if err != nil {
		panic(err)
	}
	return img
}

func (a *assembler) errorf(format string, args ...any) {
	a.errs = append(a.errs, fmt.Sprintf("line %d: %s", a.line, fmt.Sprintf(format, args...)))
}

func (a *assembler) err() error {
	const maxShown = 12
	shown := a.errs
	suffix := ""
	if len(shown) > maxShown {
		suffix = fmt.Sprintf("\n... and %d more errors", len(shown)-maxShown)
		shown = shown[:maxShown]
	}
	return fmt.Errorf("asm: %s%s", strings.Join(shown, "\n"), suffix)
}

// ---------------------------------------------------------------- pass 1 --

func (a *assembler) pass1(src string) {
	for lineNo, raw := range strings.Split(src, "\n") {
		a.line = lineNo + 1
		toks, err := lexLine(stripComment(raw))
		if err != nil {
			a.errorf("%v", err)
			continue
		}
		// Leading labels: IDENT ':' or NUMBER ':'.
		for len(toks) >= 2 && toks[1].kind == tokPunct && toks[1].str == ":" {
			switch toks[0].kind {
			case tokIdent:
				a.defineLabel(toks[0].str)
			case tokNumber:
				a.locals[toks[0].num] = append(a.locals[toks[0].num],
					symVal{section: a.section, value: int64(a.offsets[a.section])})
			default:
				a.errorf("bad label %s", toks[0])
			}
			toks = toks[2:]
		}
		if len(toks) == 0 {
			continue
		}
		if toks[0].kind != tokIdent {
			a.errorf("expected mnemonic or directive, got %s", toks[0])
			continue
		}
		name := toks[0].str
		rest := toks[1:]
		if strings.HasPrefix(name, ".") {
			a.directive(name, rest)
			continue
		}
		a.instruction(strings.ToLower(name), rest)
	}
}

func (a *assembler) defineLabel(name string) {
	if _, dup := a.symbols[name]; dup {
		a.errorf("symbol %q redefined", name)
		return
	}
	a.symbols[name] = symVal{section: a.section, value: int64(a.offsets[a.section])}
}

// emit appends an item at the current location counter.
func (a *assembler) emit(it item) {
	it.line = a.line
	it.section = a.section
	it.offset = a.offsets[a.section]
	a.offsets[a.section] += it.size
	if a.section == secBSS && (it.kind != itSpace || it.fill != 0) {
		a.errorf(".bss may contain only .space/.align, not initialized data")
		return
	}
	a.items = append(a.items, it)
}

// equResolver resolves only absolute symbols already defined; used for
// values needed during pass 1.
type equResolver struct{ a *assembler }

func (r equResolver) lookup(name string, _ uint32) (int64, error) {
	if sv, ok := r.a.symbols[name]; ok && sv.section == -1 {
		return sv.value, nil
	}
	return 0, fmt.Errorf("symbol %q is not an absolute constant defined above", name)
}

func (a *assembler) directive(name string, toks []token) {
	switch name {
	case ".text":
		a.section = secText
	case ".data":
		a.section = secData
	case ".bss":
		a.section = secBSS
	case ".section":
		if len(toks) != 1 || toks[0].kind != tokIdent {
			a.errorf(".section needs a name")
			return
		}
		switch toks[0].str {
		case ".text", "text":
			a.section = secText
		case ".data", "data":
			a.section = secData
		case ".bss", "bss":
			a.section = secBSS
		default:
			a.errorf("unknown section %q", toks[0].str)
		}
	case ".global", ".globl":
		// Symbols are all visible in the image; accept and ignore.
		if len(toks) != 1 || toks[0].kind != tokIdent {
			a.errorf("%s needs a symbol name", name)
		}
	case ".equ", ".set":
		if len(toks) < 3 || toks[0].kind != tokIdent || toks[1].kind != tokPunct || toks[1].str != "," {
			a.errorf("%s needs: name, expression", name)
			return
		}
		ex, n, err := parseExprTokens(toks[2:])
		if err != nil || n != len(toks)-2 {
			a.errorf("bad expression in %s", name)
			return
		}
		v, err := ex.eval(equResolver{a}, 0)
		if err != nil {
			a.errorf("%v", err)
			return
		}
		if _, dup := a.symbols[toks[0].str]; dup {
			a.errorf("symbol %q redefined", toks[0].str)
			return
		}
		a.symbols[toks[0].str] = symVal{section: -1, value: v}
	case ".word", ".half", ".byte":
		size := map[string]uint32{".word": 4, ".half": 2, ".byte": 1}[name]
		exprs, err := a.parseExprList(toks)
		if err != nil {
			a.errorf("%v", err)
			return
		}
		if len(exprs) == 0 {
			a.errorf("%s needs at least one value", name)
			return
		}
		a.emit(item{kind: itData, elemSize: size, exprs: exprs, size: size * uint32(len(exprs))})
	case ".ascii", ".asciz":
		var raw []byte
		for i, t := range toks {
			if i%2 == 0 {
				if t.kind != tokString {
					a.errorf("%s needs string literals", name)
					return
				}
				raw = append(raw, t.str...)
				if name == ".asciz" {
					raw = append(raw, 0)
				}
			} else if t.kind != tokPunct || t.str != "," {
				a.errorf("expected , between strings")
				return
			}
		}
		if len(raw) == 0 {
			a.errorf("%s needs at least one string", name)
			return
		}
		a.emit(item{kind: itBytes, raw: raw, size: uint32(len(raw))})
	case ".space", ".skip":
		exprs, err := a.parseExprList(toks)
		if err != nil || len(exprs) == 0 || len(exprs) > 2 {
			a.errorf("%s needs: size [, fill]", name)
			return
		}
		n, err := exprs[0].eval(equResolver{a}, 0)
		if err != nil || n < 0 || n > 1<<28 {
			a.errorf("bad %s size: %v", name, err)
			return
		}
		var fill int64
		if len(exprs) == 2 {
			fill, err = exprs[1].eval(equResolver{a}, 0)
			if err != nil {
				a.errorf("bad fill: %v", err)
				return
			}
		}
		a.emit(item{kind: itSpace, size: uint32(n), fill: byte(fill)})
	case ".align", ".balign":
		exprs, err := a.parseExprList(toks)
		if err != nil || len(exprs) != 1 {
			a.errorf("%s needs one argument", name)
			return
		}
		v, err := exprs[0].eval(equResolver{a}, 0)
		if err != nil || v < 0 || v > 24 && name == ".align" || name == ".balign" && (v < 1 || v > 1<<24) {
			a.errorf("bad alignment: %v", err)
			return
		}
		bytes := uint32(v)
		if name == ".align" {
			bytes = 1 << uint(v)
		}
		if bytes&(bytes-1) != 0 {
			a.errorf("alignment %d is not a power of two", bytes)
			return
		}
		cur := a.offsets[a.section]
		pad := (bytes - cur%bytes) % bytes
		if pad == 0 {
			return
		}
		if a.section == secText && pad%4 == 0 {
			// Pad executable space with NOPs.
			nop := []byte{0x13, 0x00, 0x00, 0x00}
			raw := make([]byte, 0, pad)
			for i := uint32(0); i < pad/4; i++ {
				raw = append(raw, nop...)
			}
			a.emit(item{kind: itBytes, raw: raw, size: pad})
			return
		}
		a.emit(item{kind: itSpace, size: pad})
	default:
		a.errorf("unknown directive %s", name)
	}
}

// parseExprList parses "expr, expr, ..." to the end of the token list.
func (a *assembler) parseExprList(toks []token) ([]expr, error) {
	var out []expr
	for len(toks) > 0 {
		ex, n, err := parseExprTokens(toks)
		if err != nil {
			return nil, err
		}
		out = append(out, ex)
		toks = toks[n:]
		if len(toks) == 0 {
			break
		}
		if toks[0].kind != tokPunct || toks[0].str != "," {
			return nil, fmt.Errorf("expected , got %s", toks[0])
		}
		toks = toks[1:]
	}
	return out, nil
}

// splitOperands splits the token list at top-level commas.
func splitOperands(toks []token) [][]token {
	if len(toks) == 0 {
		return nil
	}
	var groups [][]token
	depth := 0
	start := 0
	for i, t := range toks {
		if t.kind == tokPunct {
			switch t.str {
			case "(":
				depth++
			case ")":
				depth--
			case ",":
				if depth == 0 {
					groups = append(groups, toks[start:i])
					start = i + 1
				}
			}
		}
	}
	groups = append(groups, toks[start:])
	return groups
}

// parseOperand classifies one operand group.
func parseOperand(toks []token) (operand, error) {
	if len(toks) == 0 {
		return operand{}, fmt.Errorf("empty operand")
	}
	// Bare register.
	if len(toks) == 1 && toks[0].kind == tokIdent {
		if r, ok := regNum(toks[0].str); ok {
			return operand{kind: opReg, reg: r}, nil
		}
	}
	// Memory operand with no displacement: (reg).
	if len(toks) == 3 && isPunct(toks[0], "(") && toks[1].kind == tokIdent && isPunct(toks[2], ")") {
		if r, ok := regNum(toks[1].str); ok {
			return operand{kind: opMem, base: r, ex: numExpr(0)}, nil
		}
	}
	// expr or expr(reg).
	ex, n, err := parseExprTokens(toks)
	if err != nil {
		return operand{}, err
	}
	rest := toks[n:]
	if len(rest) == 0 {
		return operand{kind: opExpr, ex: ex}, nil
	}
	if len(rest) == 3 && isPunct(rest[0], "(") && rest[1].kind == tokIdent && isPunct(rest[2], ")") {
		if r, ok := regNum(rest[1].str); ok {
			return operand{kind: opMem, base: r, ex: ex}, nil
		}
		return operand{}, fmt.Errorf("%q is not a register", rest[1].str)
	}
	return operand{}, fmt.Errorf("trailing tokens after expression: %s", rest[0])
}

func isPunct(t token, s string) bool { return t.kind == tokPunct && t.str == s }

// instruction parses operands, expands pseudo-instructions, and emits the
// resulting machine instructions.
func (a *assembler) instruction(mnem string, toks []token) {
	if a.section != secText {
		a.errorf("instruction %q outside .text", mnem)
		return
	}
	var ops []operand
	for _, g := range splitOperands(toks) {
		op, err := parseOperand(g)
		if err != nil {
			a.errorf("%s: %v", mnem, err)
			return
		}
		ops = append(ops, op)
	}
	expanded, err := a.expand(mnem, ops)
	if err != nil {
		a.errorf("%v", err)
		return
	}
	for _, e := range expanded {
		if _, ok := instTable[e.mnem]; !ok {
			a.errorf("unknown instruction %q", e.mnem)
			return
		}
		a.emit(item{kind: itInst, mnem: e.mnem, ops: e.ops, size: 4})
	}
}

// ---------------------------------------------------------------- layout --

func align(v, to uint32) uint32 { return (v + to - 1) / to * to }

func (a *assembler) layout() {
	a.bases[secText] = a.opts.Base
	a.bases[secData] = align(a.bases[secText]+a.offsets[secText], a.opts.DataAlign)
	a.bases[secBSS] = align(a.bases[secData]+a.offsets[secData], 16)
}

// ---------------------------------------------------------------- pass 2 --

// symResolver resolves all symbols to final addresses.
type symResolver struct{ a *assembler }

func (r symResolver) lookup(name string, pc uint32) (int64, error) {
	// Numeric local label references: Nb / Nf.
	if n := len(name); n >= 2 && isAllDigits(name[:n-1]) && (name[n-1] == 'b' || name[n-1] == 'f') {
		num, err := parseInt(name[:n-1])
		if err != nil {
			return 0, err
		}
		return r.local(num, name[n-1] == 'b', pc)
	}
	sv, ok := r.a.symbols[name]
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", name)
	}
	if sv.section == -1 {
		return sv.value, nil
	}
	return int64(r.a.bases[sv.section]) + sv.value, nil
}

func (r symResolver) local(num int64, backward bool, pc uint32) (int64, error) {
	defs := r.a.locals[num]
	if backward {
		best := int64(-1)
		for _, d := range defs {
			addr := int64(r.a.bases[d.section]) + d.value
			if addr <= int64(pc) && addr > best {
				best = addr
			}
		}
		if best < 0 {
			return 0, fmt.Errorf("no backward definition of local label %d", num)
		}
		return best, nil
	}
	best := int64(1) << 62
	for _, d := range defs {
		addr := int64(r.a.bases[d.section]) + d.value
		if addr > int64(pc) && addr < best {
			best = addr
		}
	}
	if best == int64(1)<<62 {
		return 0, fmt.Errorf("no forward definition of local label %d", num)
	}
	return best, nil
}

func (a *assembler) pass2() (*Image, error) {
	text := make([]byte, a.offsets[secText])
	data := make([]byte, a.offsets[secData])
	bufs := [numSections][]byte{text, data, nil}
	res := symResolver{a}

	for i := range a.items {
		it := &a.items[i]
		a.line = it.line
		addr := a.bases[it.section] + it.offset
		out := bufs[it.section]
		switch it.kind {
		case itInst:
			word, err := a.encode(it, addr, res)
			if err != nil {
				a.errorf("%s: %v", it.mnem, err)
				continue
			}
			putLE(out[it.offset:], uint64(word), 4)
		case itData:
			off := it.offset
			for _, ex := range it.exprs {
				v, err := ex.eval(res, addr)
				if err != nil {
					a.errorf("%v", err)
					break
				}
				if err := checkDataRange(v, it.elemSize); err != nil {
					a.errorf("%v", err)
					break
				}
				putLE(out[off:], uint64(v), int(it.elemSize))
				off += it.elemSize
			}
		case itBytes:
			copy(out[it.offset:], it.raw)
		case itSpace:
			if it.section != secBSS {
				for j := uint32(0); j < it.size; j++ {
					out[it.offset+j] = it.fill
				}
			}
		}
	}
	if len(a.errs) > 0 {
		return nil, a.err()
	}

	symbols := make(map[string]uint32, len(a.symbols))
	for name, sv := range a.symbols {
		if sv.section == -1 {
			symbols[name] = uint32(sv.value)
		} else {
			symbols[name] = a.bases[sv.section] + uint32(sv.value)
		}
	}
	entry := a.bases[secText]
	if e, ok := symbols["_start"]; ok {
		entry = e
	}
	return &Image{
		Base:     a.bases[secText],
		Text:     text,
		DataAddr: a.bases[secData],
		Data:     data,
		BSSAddr:  a.bases[secBSS],
		BSSSize:  a.offsets[secBSS],
		Entry:    entry,
		Symbols:  symbols,
	}, nil
}

func checkDataRange(v int64, size uint32) error {
	switch size {
	case 1:
		if v < -128 || v > 255 {
			return fmt.Errorf(".byte value %d out of range", v)
		}
	case 2:
		if v < -32768 || v > 65535 {
			return fmt.Errorf(".half value %d out of range", v)
		}
	case 4:
		if v < -(1<<31) || v > (1<<32)-1 {
			return fmt.Errorf(".word value %d out of range", v)
		}
	}
	return nil
}

func putLE(b []byte, v uint64, n int) {
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// encode translates one parsed instruction into its 32-bit encoding.
func (a *assembler) encode(it *item, addr uint32, res resolver) (uint32, error) {
	d := instTable[it.mnem]
	need := func(n int) error {
		if len(it.ops) != n {
			return fmt.Errorf("needs %d operands, got %d", n, len(it.ops))
		}
		return nil
	}
	reg := func(i int) (int, error) {
		if it.ops[i].kind != opReg {
			return 0, fmt.Errorf("operand %d must be a register", i+1)
		}
		return it.ops[i].reg, nil
	}
	val := func(i int) (int64, error) {
		if it.ops[i].kind != opExpr {
			return 0, fmt.Errorf("operand %d must be an expression", i+1)
		}
		return it.ops[i].ex.eval(res, addr)
	}
	memOp := func(i int) (int, int64, error) {
		op := it.ops[i]
		switch op.kind {
		case opMem:
			off, err := op.ex.eval(res, addr)
			return op.base, off, err
		case opReg: // bare register means offset 0
			return op.reg, 0, nil
		default:
			return 0, 0, fmt.Errorf("operand %d must be offset(reg)", i+1)
		}
	}

	switch d.format {
	case fmtR:
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := reg(0)
		if err != nil {
			return 0, err
		}
		rs1, err := reg(1)
		if err != nil {
			return 0, err
		}
		rs2, err := reg(2)
		if err != nil {
			return 0, err
		}
		return encR(d, rd, rs1, rs2), nil
	case fmtI:
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := reg(0)
		if err != nil {
			return 0, err
		}
		rs1, err := reg(1)
		if err != nil {
			return 0, err
		}
		imm, err := val(2)
		if err != nil {
			return 0, err
		}
		return encI(d, rd, rs1, imm)
	case fmtShift:
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := reg(0)
		if err != nil {
			return 0, err
		}
		rs1, err := reg(1)
		if err != nil {
			return 0, err
		}
		sh, err := val(2)
		if err != nil {
			return 0, err
		}
		return encShift(d, rd, rs1, sh)
	case fmtLoad:
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := reg(0)
		if err != nil {
			return 0, err
		}
		base, off, err := memOp(1)
		if err != nil {
			return 0, err
		}
		return encI(d, rd, base, off)
	case fmtStore:
		if err := need(2); err != nil {
			return 0, err
		}
		rs2, err := reg(0)
		if err != nil {
			return 0, err
		}
		base, off, err := memOp(1)
		if err != nil {
			return 0, err
		}
		return encS(d, base, rs2, off)
	case fmtBranch:
		if err := need(3); err != nil {
			return 0, err
		}
		rs1, err := reg(0)
		if err != nil {
			return 0, err
		}
		rs2, err := reg(1)
		if err != nil {
			return 0, err
		}
		target, err := val(2)
		if err != nil {
			return 0, err
		}
		return encB(d, rs1, rs2, target-int64(addr))
	case fmtU:
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := reg(0)
		if err != nil {
			return 0, err
		}
		imm, err := val(1)
		if err != nil {
			return 0, err
		}
		return encU(d, rd, imm)
	case fmtJ:
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := reg(0)
		if err != nil {
			return 0, err
		}
		target, err := val(1)
		if err != nil {
			return 0, err
		}
		return encJ(d, rd, target-int64(addr))
	case fmtJalr:
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := reg(0)
		if err != nil {
			return 0, err
		}
		base, off, err := memOp(1)
		if err != nil {
			return 0, err
		}
		return encI(d, rd, base, off)
	case fmtCSR, fmtCSRI:
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := reg(0)
		if err != nil {
			return 0, err
		}
		csr, err := a.csrOperand(it.ops[1], res, addr)
		if err != nil {
			return 0, err
		}
		if d.format == fmtCSR {
			rs1, err := reg(2)
			if err != nil {
				return 0, err
			}
			return encCSR(d, rd, csr, rs1)
		}
		uimm, err := val(2)
		if err != nil {
			return 0, err
		}
		return encCSRI(d, rd, csr, uimm)
	case fmtFixed:
		if err := need(0); err != nil {
			return 0, err
		}
		return d.fixed, nil
	}
	return 0, fmt.Errorf("unhandled format")
}

// csrOperand resolves a CSR name or numeric expression.
func (a *assembler) csrOperand(op operand, res resolver, addr uint32) (uint32, error) {
	if op.kind == opExpr {
		if s, ok := op.ex.(symExpr); ok {
			if n, ok := csrNames[string(s)]; ok {
				return n, nil
			}
		}
		v, err := op.ex.eval(res, addr)
		if err != nil {
			return 0, err
		}
		if v < 0 || v > 0xfff {
			return 0, fmt.Errorf("CSR address %d out of range", v)
		}
		return uint32(v), nil
	}
	return 0, fmt.Errorf("bad CSR operand")
}
