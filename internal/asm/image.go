package asm

import (
	"fmt"
	"sort"
)

// Image is the assembler's output: a loadable program, the stand-in for an
// ELF file in this toolchain. Text is placed at Base, Data at DataAddr, and
// BSSSize zero bytes conceptually follow at BSSAddr.
type Image struct {
	Base     uint32
	Text     []byte
	DataAddr uint32
	Data     []byte
	BSSAddr  uint32
	BSSSize  uint32
	Entry    uint32
	Symbols  map[string]uint32
}

// End returns the first address past the image, including BSS.
func (im *Image) End() uint32 { return im.BSSAddr + im.BSSSize }

// Size returns the total footprint in bytes from Base to End.
func (im *Image) Size() uint32 { return im.End() - im.Base }

// TextWords returns the number of 32-bit instruction words in .text; the
// paper's "LoC ASM" metric counts assembler opcodes in the final binary.
func (im *Image) TextWords() int { return len(im.Text) / 4 }

// Flatten renders the image as a single contiguous byte slice starting at
// Base, with zero fill between sections and over BSS.
func (im *Image) Flatten() []byte {
	out := make([]byte, im.Size())
	copy(out, im.Text)
	copy(out[im.DataAddr-im.Base:], im.Data)
	return out
}

// Symbol looks up a label or .equ constant.
func (im *Image) Symbol(name string) (uint32, bool) {
	v, ok := im.Symbols[name]
	return v, ok
}

// MustSymbol is Symbol that panics when the symbol does not exist.
func (im *Image) MustSymbol(name string) uint32 {
	v, ok := im.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("image: undefined symbol %q", name))
	}
	return v
}

// SymbolAt finds the closest symbol at or below addr, for diagnostics
// ("pc=0x80000124 <main+0x24>"). When several symbols share an address,
// label-like names win over ALL_CAPS constants (.equ equates such as
// RAM_BASE often coincide with real labels).
func (im *Image) SymbolAt(addr uint32) (name string, offset uint32, ok bool) {
	bestAddr := uint32(0)
	for n, a := range im.Symbols {
		if a > addr {
			continue
		}
		better := name == "" || a > bestAddr ||
			(a == bestAddr && isConstName(name) && !isConstName(n)) ||
			(a == bestAddr && isConstName(name) == isConstName(n) && n < name)
		if better {
			name, bestAddr = n, a
		}
	}
	if name == "" {
		return "", 0, false
	}
	return name, addr - bestAddr, true
}

// isConstName reports whether a symbol looks like an ALL_CAPS constant.
func isConstName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			return false
		}
	}
	return true
}

// String summarizes the image layout.
func (im *Image) String() string {
	return fmt.Sprintf("image: text [0x%08x,+0x%x) data [0x%08x,+0x%x) bss [0x%08x,+0x%x) entry 0x%08x, %d symbols",
		im.Base, len(im.Text), im.DataAddr, len(im.Data), im.BSSAddr, im.BSSSize, im.Entry, len(im.Symbols))
}

// SortedSymbols returns "name = 0xaddr" lines in address order, for the
// vp-asm tool's symbol dump.
func (im *Image) SortedSymbols() []string {
	type sym struct {
		name string
		addr uint32
	}
	syms := make([]sym, 0, len(im.Symbols))
	for n, a := range im.Symbols {
		syms = append(syms, sym{n, a})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].addr != syms[j].addr {
			return syms[i].addr < syms[j].addr
		}
		return syms[i].name < syms[j].name
	})
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = fmt.Sprintf("0x%08x %s", s.addr, s.name)
	}
	return out
}
