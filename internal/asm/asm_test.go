package asm

import (
	"encoding/binary"
	"strings"
	"testing"
)

// word extracts instruction i from the text section.
func word(t *testing.T, img *Image, i int) uint32 {
	t.Helper()
	if len(img.Text) < (i+1)*4 {
		t.Fatalf("text has %d bytes, want instruction %d", len(img.Text), i)
	}
	return binary.LittleEndian.Uint32(img.Text[i*4:])
}

func mustAsm(t *testing.T, src string) *Image {
	t.Helper()
	img, err := Assemble(src, Options{})
	if err != nil {
		t.Fatalf("assemble failed: %v", err)
	}
	return img
}

func TestGoldenEncodings(t *testing.T) {
	// Golden encodings cross-checked against the RISC-V ISA manual.
	cases := []struct {
		src  string
		want uint32
	}{
		{"addi x1, x2, 10", 0x00A10093},
		{"addi x0, x0, 0", 0x00000013}, // canonical NOP
		{"add x3, x4, x5", 0x005201B3},
		{"sub x3, x4, x5", 0x405201B3},
		{"and a0, a1, a2", 0x00C5F533},
		{"lui x5, 0x12345", 0x123452B7},
		{"auipc x5, 0x12345", 0x12345297},
		{"jal x0, .text_start", 0x0000006F},
		{"sw x5, 8(x2)", 0x00512423},
		{"lw x6, -4(x10)", 0xFFC52303},
		{"lbu x6, 0(x10)", 0x00054303},
		{"lhu x6, 2(x10)", 0x00255303},
		{"sb x5, 1(x2)", 0x005100A3},
		{"sh x5, 2(x2)", 0x00511123},
		{"mul x1, x2, x3", 0x023100B3},
		{"divu x1, x2, x3", 0x023150B3},
		{"remu x1, x2, x3", 0x023170B3},
		{"srai x1, x1, 4", 0x4040D093},
		{"slli x1, x1, 4", 0x00409093},
		{"srli x1, x1, 4", 0x0040D093},
		{"sltiu x1, x2, 1", 0x00113093},
		{"xori x1, x2, -1", 0xFFF14093},
		{"jalr x1, 4(x5)", 0x004280E7},
		{"csrrw x1, mstatus, x2", 0x300110F3},
		{"csrrs x1, 0x304, x0", 0x304020F3},
		{"csrrwi x0, mtvec, 5", 0x3052D073},
		{"ecall", 0x00000073},
		{"ebreak", 0x00100073},
		{"mret", 0x30200073},
		{"wfi", 0x10500073},
		{"fence", 0x0FF0000F},
		{"fence.i", 0x0000100F},
	}
	for _, c := range cases {
		src := ".text_start:\n" + c.src + "\n"
		img := mustAsm(t, src)
		if got := word(t, img, 0); got != c.want {
			t.Errorf("%q = 0x%08X, want 0x%08X", c.src, got, c.want)
		}
	}
}

func TestBranchAndJumpOffsets(t *testing.T) {
	img := mustAsm(t, `
start:
	beq x1, x2, target
	nop
target:
	jal x1, start
`)
	// beq at +0 to +8: offset 8.
	if got := word(t, img, 0); got != 0x00208463 {
		t.Errorf("beq = 0x%08X, want 0x00208463", got)
	}
	// jal at +8 back to 0: offset -8.
	// imm=-8: [20]=1 [10:1]=0x3FC [11]=1 [19:12]=0xFF
	want := uint32(1)<<31 | uint32(0x3fc)<<21 | uint32(1)<<20 | uint32(0xff)<<12 | 1<<7 | 0x6F
	if got := word(t, img, 2); got != want {
		t.Errorf("jal = 0x%08X, want 0x%08X", got, want)
	}
}

func TestPseudoInstructions(t *testing.T) {
	cases := []struct {
		src  string
		want []uint32
	}{
		{"nop", []uint32{0x00000013}},
		{"mv x1, x2", []uint32{0x00010093}},
		{"not x1, x2", []uint32{0xFFF14093}},
		{"neg x1, x2", []uint32{0x402000B3}},
		{"seqz x1, x2", []uint32{0x00113093}},
		{"snez x1, x2", []uint32{0x002030B3}},
		{"ret", []uint32{0x00008067}},
		{"jr x5", []uint32{0x00028067}},
		{"li x1, 42", []uint32{0x02A00093}},
		{"li x1, -1", []uint32{0xFFF00093}},
		// li 0x12345678: hi = 0x12345 + carry(0x678<0x800 no) = 0x12345, lo = 0x678
		{"li x1, 0x12345678", []uint32{0x123450B7, 0x67808093}},
		// li 0x12345FFF: lo = -1 sign-extended, hi = 0x12346
		{"li x1, 0x12345FFF", []uint32{0x123460B7, 0xFFF08093}},
		// li with zero low part folds to a single lui.
		{"li x1, 0x12345000", []uint32{0x123450B7}},
		{"csrr x1, mstatus", []uint32{0x300020F3}},
		{"csrw mstatus, x2", []uint32{0x30011073}},
		{"csrs mie, x2", []uint32{0x30412073}},
		{"csrci mstatus, 8", []uint32{0x30047073}},
	}
	for _, c := range cases {
		img := mustAsm(t, c.src+"\n")
		if img.TextWords() != len(c.want) {
			t.Errorf("%q expands to %d words, want %d", c.src, img.TextWords(), len(c.want))
			continue
		}
		for i, w := range c.want {
			if got := word(t, img, i); got != w {
				t.Errorf("%q word %d = 0x%08X, want 0x%08X", c.src, i, got, w)
			}
		}
	}
}

func TestBranchPseudos(t *testing.T) {
	img := mustAsm(t, `
l:	beqz x5, l
	bnez x5, l
	blez x5, l
	bgez x5, l
	bltz x5, l
	bgtz x5, l
	bgt x5, x6, l
	ble x5, x6, l
	bgtu x5, x6, l
	bleu x5, x6, l
`)
	if img.TextWords() != 10 {
		t.Fatalf("words = %d", img.TextWords())
	}
	// Check funct3/operand swaps by masking opcode+funct3+regs.
	type br struct{ f3, rs1, rs2 uint32 }
	want := []br{
		{0, 5, 0}, // beq x5, x0
		{1, 5, 0}, // bne x5, x0
		{5, 0, 5}, // bge x0, x5
		{5, 5, 0}, // bge x5, x0
		{4, 5, 0}, // blt x5, x0
		{4, 0, 5}, // blt x0, x5
		{4, 6, 5}, // blt x6, x5
		{5, 6, 5}, // bge x6, x5
		{6, 6, 5}, // bltu x6, x5
		{7, 6, 5}, // bgeu x6, x5
	}
	for i, w := range want {
		g := word(t, img, i)
		if g&0x7f != 0x63 {
			t.Errorf("inst %d: not a branch", i)
		}
		if (g>>12)&7 != w.f3 || (g>>15)&31 != w.rs1 || (g>>20)&31 != w.rs2 {
			t.Errorf("inst %d: f3=%d rs1=%d rs2=%d, want %+v", i, (g>>12)&7, (g>>15)&31, (g>>20)&31, w)
		}
	}
}

func TestLaAndSymbols(t *testing.T) {
	img := mustAsm(t, `
	la a0, value
	lw a1, 0(a0)
	.data
value:
	.word 0xCAFEBABE
`)
	addr := img.MustSymbol("value")
	if addr != img.DataAddr {
		t.Errorf("value at 0x%x, want data base 0x%x", addr, img.DataAddr)
	}
	// Verify the lui+addi pair reconstructs the address.
	lui, addi := word(t, img, 0), word(t, img, 1)
	hi := lui >> 12
	lo := int32(addi) >> 20
	if got := uint32(int64(hi)<<12 + int64(lo)); got != addr {
		t.Errorf("la reconstructs 0x%x, want 0x%x", got, addr)
	}
	if binary.LittleEndian.Uint32(img.Data[0:]) != 0xCAFEBABE {
		t.Error(".word value wrong")
	}
}

func TestDataDirectives(t *testing.T) {
	img := mustAsm(t, `
	nop
	.data
bytes:
	.byte 1, 2, 0xFF, -1
halfs:
	.half 0x1234, -2
str:
	.ascii "AB"
strz:
	.asciz "C"
sp:
	.space 3, 0xAA
	.balign 4
aligned:
	.word 7
`)
	d := img.Data
	if d[0] != 1 || d[1] != 2 || d[2] != 0xFF || d[3] != 0xFF {
		t.Errorf("bytes = %v", d[0:4])
	}
	if binary.LittleEndian.Uint16(d[4:]) != 0x1234 || binary.LittleEndian.Uint16(d[6:]) != 0xFFFE {
		t.Error("halfs wrong")
	}
	if string(d[8:10]) != "AB" || string(d[10:12]) != "C\x00" {
		t.Errorf("strings = %q", d[8:12])
	}
	if d[12] != 0xAA || d[14] != 0xAA {
		t.Error("space fill wrong")
	}
	al := img.MustSymbol("aligned")
	if al%4 != 0 {
		t.Errorf("aligned at 0x%x", al)
	}
	if binary.LittleEndian.Uint32(d[al-img.DataAddr:]) != 7 {
		t.Error("aligned word wrong")
	}
}

func TestBSS(t *testing.T) {
	img := mustAsm(t, `
	nop
	.bss
buf:
	.space 64
buf2:
	.space 16
`)
	if img.BSSSize != 80 {
		t.Errorf("BSSSize = %d", img.BSSSize)
	}
	if img.MustSymbol("buf") != img.BSSAddr || img.MustSymbol("buf2") != img.BSSAddr+64 {
		t.Error("bss symbols wrong")
	}
	if _, err := Assemble(".bss\n.word 5\n", Options{}); err == nil {
		t.Error("initialized data in .bss must be rejected")
	}
}

func TestEquAndExpressions(t *testing.T) {
	img := mustAsm(t, `
.equ BASE, 0x10000000
.equ OFF,  BASE + 0x10
.set SHIFTED, 1 << 8
	li a0, BASE
	li a1, OFF
	li a2, SHIFTED
	li a3, (2+3)*4 - 10/5
	li a4, 0xF0 & 0x1F | 2
	li a5, ~0 ^ -1
	.data
	.word OFF - BASE, SHIFTED >> 4, 7 % 3
`)
	if binary.LittleEndian.Uint32(img.Data[0:]) != 0x10 {
		t.Error("OFF-BASE")
	}
	if binary.LittleEndian.Uint32(img.Data[4:]) != 16 {
		t.Error("shift")
	}
	if binary.LittleEndian.Uint32(img.Data[8:]) != 1 {
		t.Error("mod")
	}
	// Words: 0 = li a0 (single lui, low part zero), 1-2 = li a1 (lui+addi),
	// 3 = li a2 (addi), then the constant-expression li's.
	if got := word(t, img, 4); got != 0x01200693 { // li a3, 18
		t.Errorf("li a3 = 0x%08X", got)
	}
	if got := word(t, img, 5); got != 0x01200713 { // li a4, 0x12
		t.Errorf("li a4 = 0x%08X", got)
	}
	if got := word(t, img, 6); got != 0x00000793 { // li a5, 0
		t.Errorf("li a5 = 0x%08X", got)
	}
}

func TestNumericLocalLabels(t *testing.T) {
	img := mustAsm(t, `
	nop
1:	nop
	j 1b
	j 1f
1:	nop
	j 1b
`)
	// j 1b at word 2 targets word 1 (offset -4).
	// j 1f at word 3 targets word 4 (offset +4).
	// j 1b at word 5 targets word 4 (offset -4).
	offsets := map[int]int32{2: -4, 3: 4, 5: -4}
	for i, want := range offsets {
		g := word(t, img, i)
		if g&0x7f != 0x6F {
			t.Fatalf("inst %d not jal", i)
		}
		// Decode J-immediate.
		imm := int32(g>>31)<<20 | int32(g>>12&0xff)<<12 | int32(g>>20&1)<<11 | int32(g>>21&0x3ff)<<1
		imm = imm << 11 >> 11
		if imm != want {
			t.Errorf("inst %d: offset %d, want %d", i, imm, want)
		}
	}
}

func TestEntryAndStart(t *testing.T) {
	img := mustAsm(t, "\tnop\n_start:\n\tnop\n")
	if img.Entry != img.Base+4 {
		t.Errorf("entry = 0x%x, want _start", img.Entry)
	}
	img2 := mustAsm(t, "\tnop\n")
	if img2.Entry != img2.Base {
		t.Errorf("default entry = 0x%x, want base", img2.Entry)
	}
}

func TestImageLayoutAndFlatten(t *testing.T) {
	img, err := Assemble(`
	nop
	.data
	.byte 0x42
	.bss
	.space 8
`, Options{Base: 0x1000, DataAlign: 16})
	if err != nil {
		t.Fatal(err)
	}
	if img.Base != 0x1000 || img.DataAddr != 0x1010 {
		t.Errorf("layout: base=0x%x data=0x%x", img.Base, img.DataAddr)
	}
	flat := img.Flatten()
	if uint32(len(flat)) != img.Size() {
		t.Errorf("flatten size %d != %d", len(flat), img.Size())
	}
	if flat[0] != 0x13 {
		t.Error("text not at start of flat image")
	}
	if flat[0x10] != 0x42 {
		t.Error("data not at DataAddr offset")
	}
}

func TestSymbolAt(t *testing.T) {
	img := mustAsm(t, `
_start:
	nop
	nop
fn:
	nop
`)
	name, off, ok := img.SymbolAt(img.Base + 4)
	if !ok || name != "_start" || off != 4 {
		t.Errorf("SymbolAt = %q+%d %v", name, off, ok)
	}
	name, off, ok = img.SymbolAt(img.Base + 8)
	if !ok || name != "fn" || off != 0 {
		t.Errorf("SymbolAt = %q+%d %v", name, off, ok)
	}
	if _, _, ok := img.SymbolAt(img.Base - 4); ok {
		t.Error("SymbolAt below all symbols must fail")
	}
}

func TestComments(t *testing.T) {
	img := mustAsm(t, `
	nop  # hash comment
	nop  // slash comment
	.data
msg: .asciz "a # not a comment // neither"
`)
	if img.TextWords() != 2 {
		t.Errorf("words = %d", img.TextWords())
	}
	if !strings.Contains(string(img.Data), "# not a comment //") {
		t.Errorf("data = %q", img.Data)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown instruction", "frobnicate x1, x2\n", "unknown instruction"},
		{"unknown directive", ".frobnicate\n", "unknown directive"},
		{"undefined symbol", "\tj nowhere\n", "undefined symbol"},
		{"redefined label", "a:\nnop\na:\n", "redefined"},
		{"redefined equ", ".equ A, 1\n.equ A, 2\n", "redefined"},
		{"imm range", "addi x1, x2, 5000\n", "out of 12-bit"},
		{"shift range", "slli x1, x2, 32\n", "out of range"},
		{"branch range", "start:\n.space 8192\nb: beq x0, x0, start\n", "out of range"},
		{"data in text operand", "add x1, 5, x2\n", "must be a register"},
		{"instruction in data", ".data\nnop\n", "outside .text"},
		{"bad csr", "csrr x1, 0x1000\n", "out of range"},
		{"bad char", "addi x1, x2, @\n", "unexpected"},
		{"li too big", "li x1, 0x100000000\n", "32 bits"},
		{"word range", ".data\n.word 0x100000000\n", "out of range"},
		{"no forward local", "\tj 1f\n", "no forward definition"},
		{"no backward local", "\tj 1b\n", "no backward definition"},
		{"unterminated string", ".data\n.ascii \"abc\n", "unterminated"},
		{"operand count", "add x1, x2\n", "operands"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, Options{})
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err.Error(), c.want)
		}
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus123 x1\n", Options{})
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error = %v, want line 3", err)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble must panic on error")
		}
	}()
	MustAssemble("bogus\n", Options{})
}

func TestAlignInText(t *testing.T) {
	img := mustAsm(t, `
	nop
	.align 4
aligned:
	nop
`)
	a := img.MustSymbol("aligned")
	if a%16 != 0 {
		t.Errorf("aligned = 0x%x, want 16-byte alignment", a)
	}
	// Padding must be NOPs, not zeros (zeros are illegal instructions).
	for i := 1; i < int(a-img.Base)/4; i++ {
		if got := word(t, img, i); got != 0x00000013 {
			t.Errorf("pad word %d = 0x%08X, want NOP", i, got)
		}
	}
}

func TestSectionDirective(t *testing.T) {
	img := mustAsm(t, `
	.section .data
x:	.word 1
	.section .text
	nop
	.section .bss
y:	.space 4
`)
	if img.TextWords() != 1 || len(img.Data) != 4 || img.BSSSize != 4 {
		t.Errorf("sections: text=%d data=%d bss=%d", img.TextWords(), len(img.Data), img.BSSSize)
	}
}

func TestImageStringAndSortedSymbols(t *testing.T) {
	img := mustAsm(t, "_start:\n\tnop\nend:\n")
	if !strings.Contains(img.String(), "entry") {
		t.Error("String()")
	}
	syms := img.SortedSymbols()
	if len(syms) != 2 || !strings.Contains(syms[0], "_start") {
		t.Errorf("SortedSymbols = %v", syms)
	}
	if _, ok := img.Symbol("missing"); ok {
		t.Error("Symbol(missing)")
	}
}
