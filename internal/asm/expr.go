package asm

import "fmt"

// resolver supplies symbol values during expression evaluation. pc is the
// address of the statement evaluating the expression (needed for numeric
// local label references like 1b/1f).
type resolver interface {
	lookup(name string, pc uint32) (int64, error)
}

// expr is an assembly-time constant expression.
type expr interface {
	eval(r resolver, pc uint32) (int64, error)
}

type numExpr int64

func (e numExpr) eval(resolver, uint32) (int64, error) { return int64(e), nil }

type symExpr string

func (e symExpr) eval(r resolver, pc uint32) (int64, error) { return r.lookup(string(e), pc) }

type unExpr struct {
	op string
	x  expr
}

func (e unExpr) eval(r resolver, pc uint32) (int64, error) {
	v, err := e.x.eval(r, pc)
	if err != nil {
		return 0, err
	}
	switch e.op {
	case "-":
		return -v, nil
	case "~":
		return ^v, nil
	case "+":
		return v, nil
	default:
		return 0, fmt.Errorf("unknown unary operator %q", e.op)
	}
}

type binExpr struct {
	op   string
	x, y expr
}

func (e binExpr) eval(r resolver, pc uint32) (int64, error) {
	a, err := e.x.eval(r, pc)
	if err != nil {
		return 0, err
	}
	b, err := e.y.eval(r, pc)
	if err != nil {
		return 0, err
	}
	switch e.op {
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	case "%":
		if b == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return a % b, nil
	case "&":
		return a & b, nil
	case "|":
		return a | b, nil
	case "^":
		return a ^ b, nil
	case "<<":
		if b < 0 || b > 63 {
			return 0, fmt.Errorf("shift amount %d out of range", b)
		}
		return a << uint(b), nil
	case ">>":
		if b < 0 || b > 63 {
			return 0, fmt.Errorf("shift amount %d out of range", b)
		}
		return int64(uint64(a) >> uint(b)), nil
	default:
		return 0, fmt.Errorf("unknown operator %q", e.op)
	}
}

// relocExpr applies a RISC-V relocation function (%hi / %lo) to its operand.
type relocExpr struct {
	fn string
	x  expr
}

func (e relocExpr) eval(r resolver, pc uint32) (int64, error) {
	v, err := e.x.eval(r, pc)
	if err != nil {
		return 0, err
	}
	switch e.fn {
	case "hi":
		// Upper 20 bits, compensated so that lui %hi + addi %lo (sign
		// extended) reconstructs the full value.
		return int64((uint32(v) + 0x800) >> 12), nil
	case "lo":
		// Low 12 bits as a signed value.
		return int64(int32(uint32(v)<<20) >> 20), nil
	default:
		return 0, fmt.Errorf("unknown relocation %%%s", e.fn)
	}
}

// exprParser is a precedence-climbing parser over a token slice.
type exprParser struct {
	toks []token
	pos  int
}

// parseExprTokens parses a leading expression from toks and returns it with
// the number of tokens consumed.
func parseExprTokens(toks []token) (expr, int, error) {
	p := &exprParser{toks: toks}
	e, err := p.parseBinary(0)
	if err != nil {
		return nil, 0, err
	}
	return e, p.pos, nil
}

// binary operator precedence, loosest first.
var precLevels = [][]string{
	{"|"},
	{"^"},
	{"&"},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *exprParser) parseBinary(level int) (expr, error) {
	if level == len(precLevels) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.peekPunct()
		if !ok || !contains(precLevels[level], op) {
			return left, nil
		}
		p.pos++
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		left = binExpr{op: op, x: left, y: right}
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func (p *exprParser) peekPunct() (string, bool) {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == tokPunct {
		return p.toks[p.pos].str, true
	}
	return "", false
}

func (p *exprParser) parseUnary() (expr, error) {
	if op, ok := p.peekPunct(); ok && (op == "-" || op == "~" || op == "+") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unExpr{op: op, x: x}, nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (expr, error) {
	if p.pos >= len(p.toks) {
		return nil, fmt.Errorf("expected expression")
	}
	t := p.toks[p.pos]
	switch t.kind {
	case tokNumber:
		p.pos++
		return numExpr(t.num), nil
	case tokIdent:
		p.pos++
		return symExpr(t.str), nil
	case tokPercent:
		p.pos++
		if op, ok := p.peekPunct(); !ok || op != "(" {
			return nil, fmt.Errorf("%%%s must be followed by (expr)", t.str)
		}
		p.pos++
		x, err := p.parseBinary(0)
		if err != nil {
			return nil, err
		}
		if op, ok := p.peekPunct(); !ok || op != ")" {
			return nil, fmt.Errorf("missing ) after %%%s", t.str)
		}
		p.pos++
		return relocExpr{fn: t.str, x: x}, nil
	case tokPunct:
		if t.str == "(" {
			p.pos++
			x, err := p.parseBinary(0)
			if err != nil {
				return nil, err
			}
			if op, ok := p.peekPunct(); !ok || op != ")" {
				return nil, fmt.Errorf("missing )")
			}
			p.pos++
			return x, nil
		}
	}
	return nil, fmt.Errorf("unexpected token %s in expression", t)
}

// constEval evaluates an expression with no symbol context; used where the
// assembler needs a value in pass 1 (e.g. .space sizes, li expansion sizing).
type noSymbols struct{}

func (noSymbols) lookup(name string, _ uint32) (int64, error) {
	return 0, fmt.Errorf("symbol %q not allowed here (value needed in pass 1)", name)
}
