package asm

import "fmt"

// instPat is one concrete instruction produced by pseudo expansion.
type instPat struct {
	mnem string
	ops  []operand
}

func rOp(r int) operand         { return operand{kind: opReg, reg: r} }
func eOp(e expr) operand        { return operand{kind: opExpr, ex: e} }
func mOp(b int, e expr) operand { return operand{kind: opMem, base: b, ex: e} }

func one(mnem string, ops ...operand) []instPat { return []instPat{{mnem: mnem, ops: ops}} }

// expand rewrites pseudo-instructions into base instructions; base
// instructions pass through unchanged. The expansion is purely syntactic
// except for li, which sizes its expansion by evaluating the constant (using
// .equ symbols defined earlier in the file).
func (a *assembler) expand(mnem string, ops []operand) ([]instPat, error) {
	argErr := func(want string) ([]instPat, error) {
		return nil, fmt.Errorf("%s: expected operands: %s", mnem, want)
	}
	regAt := func(i int) (int, bool) {
		if i < len(ops) && ops[i].kind == opReg {
			return ops[i].reg, true
		}
		return 0, false
	}
	exprAt := func(i int) (expr, bool) {
		if i < len(ops) && ops[i].kind == opExpr {
			return ops[i].ex, true
		}
		return nil, false
	}

	switch mnem {
	case "nop":
		if len(ops) != 0 {
			return argErr("none")
		}
		return one("addi", rOp(0), rOp(0), eOp(numExpr(0))), nil

	case "li":
		rd, ok1 := regAt(0)
		ex, ok2 := exprAt(1)
		if len(ops) != 2 || !ok1 || !ok2 {
			return argErr("rd, imm")
		}
		if v, err := ex.eval(equResolver{a}, 0); err == nil {
			if v < -(1<<31) || v > (1<<32)-1 {
				return nil, fmt.Errorf("li: constant %d does not fit in 32 bits", v)
			}
			if v >= -2048 && v <= 2047 {
				return one("addi", rOp(rd), rOp(0), eOp(numExpr(v))), nil
			}
			hi := int64((uint32(v) + 0x800) >> 12)
			lo := int64(int32(uint32(v)<<20) >> 20)
			out := one("lui", rOp(rd), eOp(numExpr(hi)))
			if lo != 0 {
				out = append(out, instPat{mnem: "addi", ops: []operand{rOp(rd), rOp(rd), eOp(numExpr(lo))}})
			}
			return out, nil
		}
		// Symbolic: same expansion as la.
		fallthrough

	case "la":
		rd, ok1 := regAt(0)
		ex, ok2 := exprAt(1)
		if len(ops) != 2 || !ok1 || !ok2 {
			return argErr("rd, symbol")
		}
		return []instPat{
			{mnem: "lui", ops: []operand{rOp(rd), eOp(relocExpr{fn: "hi", x: ex})}},
			{mnem: "addi", ops: []operand{rOp(rd), rOp(rd), eOp(relocExpr{fn: "lo", x: ex})}},
		}, nil

	case "mv":
		rd, ok1 := regAt(0)
		rs, ok2 := regAt(1)
		if len(ops) != 2 || !ok1 || !ok2 {
			return argErr("rd, rs")
		}
		return one("addi", rOp(rd), rOp(rs), eOp(numExpr(0))), nil
	case "not":
		rd, ok1 := regAt(0)
		rs, ok2 := regAt(1)
		if len(ops) != 2 || !ok1 || !ok2 {
			return argErr("rd, rs")
		}
		return one("xori", rOp(rd), rOp(rs), eOp(numExpr(-1))), nil
	case "neg":
		rd, ok1 := regAt(0)
		rs, ok2 := regAt(1)
		if len(ops) != 2 || !ok1 || !ok2 {
			return argErr("rd, rs")
		}
		return one("sub", rOp(rd), rOp(0), rOp(rs)), nil
	case "seqz":
		rd, ok1 := regAt(0)
		rs, ok2 := regAt(1)
		if len(ops) != 2 || !ok1 || !ok2 {
			return argErr("rd, rs")
		}
		return one("sltiu", rOp(rd), rOp(rs), eOp(numExpr(1))), nil
	case "snez":
		rd, ok1 := regAt(0)
		rs, ok2 := regAt(1)
		if len(ops) != 2 || !ok1 || !ok2 {
			return argErr("rd, rs")
		}
		return one("sltu", rOp(rd), rOp(0), rOp(rs)), nil
	case "sltz":
		rd, ok1 := regAt(0)
		rs, ok2 := regAt(1)
		if len(ops) != 2 || !ok1 || !ok2 {
			return argErr("rd, rs")
		}
		return one("slt", rOp(rd), rOp(rs), rOp(0)), nil
	case "sgtz":
		rd, ok1 := regAt(0)
		rs, ok2 := regAt(1)
		if len(ops) != 2 || !ok1 || !ok2 {
			return argErr("rd, rs")
		}
		return one("slt", rOp(rd), rOp(0), rOp(rs)), nil

	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		rs, ok1 := regAt(0)
		target, ok2 := exprAt(1)
		if len(ops) != 2 || !ok1 || !ok2 {
			return argErr("rs, target")
		}
		switch mnem {
		case "beqz":
			return one("beq", rOp(rs), rOp(0), eOp(target)), nil
		case "bnez":
			return one("bne", rOp(rs), rOp(0), eOp(target)), nil
		case "blez":
			return one("bge", rOp(0), rOp(rs), eOp(target)), nil
		case "bgez":
			return one("bge", rOp(rs), rOp(0), eOp(target)), nil
		case "bltz":
			return one("blt", rOp(rs), rOp(0), eOp(target)), nil
		default: // bgtz
			return one("blt", rOp(0), rOp(rs), eOp(target)), nil
		}

	case "bgt", "ble", "bgtu", "bleu":
		rs1, ok1 := regAt(0)
		rs2, ok2 := regAt(1)
		target, ok3 := exprAt(2)
		if len(ops) != 3 || !ok1 || !ok2 || !ok3 {
			return argErr("rs1, rs2, target")
		}
		swap := map[string]string{"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}
		return one(swap[mnem], rOp(rs2), rOp(rs1), eOp(target)), nil

	case "j":
		target, ok := exprAt(0)
		if len(ops) != 1 || !ok {
			return argErr("target")
		}
		return one("jal", rOp(0), eOp(target)), nil
	case "jal":
		if len(ops) == 1 { // jal target  ==  jal ra, target
			target, ok := exprAt(0)
			if !ok {
				return argErr("target")
			}
			return one("jal", rOp(1), eOp(target)), nil
		}
		return one(mnem, ops...), nil
	case "jr":
		rs, ok := regAt(0)
		if len(ops) != 1 || !ok {
			return argErr("rs")
		}
		return one("jalr", rOp(0), mOp(rs, numExpr(0))), nil
	case "jalr":
		if len(ops) == 1 { // jalr rs  ==  jalr ra, 0(rs)
			rs, ok := regAt(0)
			if !ok {
				return argErr("rs")
			}
			return one("jalr", rOp(1), mOp(rs, numExpr(0))), nil
		}
		return one(mnem, ops...), nil
	case "ret":
		if len(ops) != 0 {
			return argErr("none")
		}
		return one("jalr", rOp(0), mOp(1, numExpr(0))), nil
	case "call":
		target, ok := exprAt(0)
		if len(ops) != 1 || !ok {
			return argErr("target")
		}
		return one("jal", rOp(1), eOp(target)), nil
	case "tail":
		target, ok := exprAt(0)
		if len(ops) != 1 || !ok {
			return argErr("target")
		}
		return one("jal", rOp(0), eOp(target)), nil

	case "csrr": // csrr rd, csr  ==  csrrs rd, csr, x0
		rd, ok := regAt(0)
		if len(ops) != 2 || !ok {
			return argErr("rd, csr")
		}
		return one("csrrs", rOp(rd), ops[1], rOp(0)), nil
	case "csrw": // csrw csr, rs  ==  csrrw x0, csr, rs
		rs, ok := regAt(1)
		if len(ops) != 2 || !ok {
			return argErr("csr, rs")
		}
		return one("csrrw", rOp(0), ops[0], rOp(rs)), nil
	case "csrs":
		rs, ok := regAt(1)
		if len(ops) != 2 || !ok {
			return argErr("csr, rs")
		}
		return one("csrrs", rOp(0), ops[0], rOp(rs)), nil
	case "csrc":
		rs, ok := regAt(1)
		if len(ops) != 2 || !ok {
			return argErr("csr, rs")
		}
		return one("csrrc", rOp(0), ops[0], rOp(rs)), nil
	case "csrwi":
		if len(ops) != 2 {
			return argErr("csr, uimm")
		}
		return one("csrrwi", rOp(0), ops[0], ops[1]), nil
	case "csrsi":
		if len(ops) != 2 {
			return argErr("csr, uimm")
		}
		return one("csrrsi", rOp(0), ops[0], ops[1]), nil
	case "csrci":
		if len(ops) != 2 {
			return argErr("csr, uimm")
		}
		return one("csrrci", rOp(0), ops[0], ops[1]), nil
	}

	return one(mnem, ops...), nil
}
