package guest

import "testing"

func TestSHA512Constants(t *testing.T) {
	k := sha512K()
	// Spot-check against FIPS-180-4.
	if k[0] != 0x428a2f98d728ae22 {
		t.Errorf("K[0] = 0x%016x", k[0])
	}
	if k[79] != 0x6c44198c4a475817 {
		t.Errorf("K[79] = 0x%016x", k[79])
	}
	h := sha512H0()
	if h[0] != 0x6a09e667f3bcc908 {
		t.Errorf("H0[0] = 0x%016x", h[0])
	}
	if h[7] != 0x5be0cd19137e2179 {
		t.Errorf("H0[7] = 0x%016x", h[7])
	}
}

func TestSHA256Constants(t *testing.T) {
	k := sha256K()
	if k[0] != 0x428a2f98 || k[63] != 0xc67178f2 {
		t.Errorf("K = 0x%08x .. 0x%08x", k[0], k[63])
	}
	h := sha256H0()
	if h[0] != 0x6a09e667 || h[7] != 0x5be0cd19 {
		t.Errorf("H0 = 0x%08x .. 0x%08x", h[0], h[7])
	}
}
