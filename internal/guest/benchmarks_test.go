package guest_test

import (
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/soc"
)

// runBench executes a benchmark on the given platform flavour and verifies
// its self-check and expected output.
func runBench(t *testing.T, b guest.Benchmark, dift bool) uint64 {
	t.Helper()
	var pol *core.Policy
	if dift {
		l := core.IFP2()
		pol = core.NewPolicy(l, l.MustTag(core.ClassLI))
	}
	pl := soc.MustNew(soc.Config{Policy: pol})
	defer pl.Shutdown()
	if err := pl.Load(b.Image); err != nil {
		t.Fatal(err)
	}
	horizon := kernel.Forever
	if b.MinSimTimeMS > 0 {
		horizon = kernel.Time(b.MinSimTimeMS*4) * kernel.MS
	}
	if err := pl.Run(horizon); err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	exited, code := pl.Exited()
	if !exited {
		t.Fatalf("%s: did not exit (instret=%d)", b.Name, pl.Instret())
	}
	if code != 0 {
		t.Fatalf("%s: self-check failed with exit code %d", b.Name, code)
	}
	if b.ExpectUART != "" {
		if got := string(pl.UART.Output()); got != b.ExpectUART {
			t.Fatalf("%s: uart = %q, want %q", b.Name, got, b.ExpectUART)
		}
	}
	return pl.Instret()
}

func TestQSortBenchmark(t *testing.T) {
	n := runBench(t, guest.QSort(512), false)
	if n < 512*10 {
		t.Errorf("suspiciously few instructions: %d", n)
	}
	runBench(t, guest.QSort(512), true)
}

func TestQSortSorted(t *testing.T) {
	// Tiny instance sanity: 2 elements.
	runBench(t, guest.QSort(2), false)
}

func TestPrimesBenchmark(t *testing.T) {
	runBench(t, guest.Primes(1000), false)
	runBench(t, guest.Primes(1000), true)
}

func TestDhrystoneBenchmark(t *testing.T) {
	runBench(t, guest.Dhrystone(500), false)
	runBench(t, guest.Dhrystone(500), true)
}

func TestSHA256Benchmark(t *testing.T) {
	runBench(t, guest.SHA256(1000), false)
	runBench(t, guest.SHA256(1000), true)
}

func TestSHA256MultiBlockBoundary(t *testing.T) {
	// Lengths around the padding boundary (55/56 flip the extra block).
	for _, n := range []int{0, 1, 55, 56, 64, 119, 120, 128} {
		runBench(t, guest.SHA256(n), false)
	}
}

func TestSimpleSensorBenchmark(t *testing.T) {
	b := guest.SimpleSensor(3)
	var pol *core.Policy
	pl := soc.MustNew(soc.Config{Policy: pol})
	defer pl.Shutdown()
	if err := pl.Load(b.Image); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.Time(b.MinSimTimeMS*4) * kernel.MS); err != nil {
		t.Fatal(err)
	}
	exited, code := pl.Exited()
	if !exited || code != 0 {
		t.Fatalf("exited=%v code=%d", exited, code)
	}
	if got := len(pl.UART.Output()); got != 3*64 {
		t.Errorf("uart bytes = %d, want 192", got)
	}
}

func TestSHA512Benchmark(t *testing.T) {
	runBench(t, guest.SHA512(500), false)
	runBench(t, guest.SHA512(500), true)
}

func TestSHA512BlockBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 111, 112, 128, 200, 256} {
		runBench(t, guest.SHA512(n), false)
	}
}

func TestRTOSTasksBenchmark(t *testing.T) {
	b := guest.RTOSTasks(150)
	pl := soc.MustNew(soc.Config{})
	defer pl.Shutdown()
	if err := pl.Load(b.Image); err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(kernel.S); err != nil {
		t.Fatal(err)
	}
	exited, code := pl.Exited()
	if !exited || code != 0 {
		t.Fatalf("exited=%v code=%d instret=%d", exited, code, pl.Instret())
	}
	// Both counters and the switch count live in guest memory.
	c0, _ := pl.ReadRAM(b.Image.MustSymbol("rtos_count0"), 4)
	c1, _ := pl.ReadRAM(b.Image.MustSymbol("rtos_count1"), 4)
	sw, _ := pl.ReadRAM(b.Image.MustSymbol("rtos_switches"), 4)
	n0 := uint32(c0[0]) | uint32(c0[1])<<8 | uint32(c0[2])<<16 | uint32(c0[3])<<24
	n1 := uint32(c1[0]) | uint32(c1[1])<<8 | uint32(c1[2])<<16 | uint32(c1[3])<<24
	ns := uint32(sw[0]) | uint32(sw[1])<<8 | uint32(sw[2])<<16 | uint32(sw[3])<<24
	if n0 < 150 || n1 < 150 {
		t.Errorf("counters = %d, %d, want both >= 150 (preemption must interleave)", n0, n1)
	}
	if ns < 5 {
		t.Errorf("only %d context switches", ns)
	}
	// Run again on the DIFT platform.
	runBench(t, guest.RTOSTasks(150), true)
}
