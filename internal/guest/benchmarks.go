package guest

import (
	"fmt"

	"vpdift/internal/asm"
)

// Benchmark is one Table II workload: a self-contained guest program. The
// guest self-verifies its result and exits 0 on success; when ExpectUART is
// non-empty the host additionally compares the console output.
type Benchmark struct {
	Name       string
	Image      *asm.Image
	ExpectUART string
	// Interactive benchmarks (simple-sensor) need simulated time to pass;
	// MinSimTimeMS hints how long the host must run the platform.
	MinSimTimeMS int
}

// Scale selects benchmark working-set sizes. Tests use Small; cmd/perf can
// run Large to approach the paper's instruction counts.
type Scale int

// Available scales.
const (
	ScaleSmall Scale = iota
	ScaleMedium
	ScaleLarge
)

// QSort builds the quicksort benchmark: sort n pseudo-random words, then
// verify ascending order (the paper uses newlib's qsort).
func QSort(n int) Benchmark {
	src := fmt.Sprintf("\t.equ QSORT_N, %d\n", n) + `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	sw s0, 8(sp)
	sw s1, 4(sp)
	sw s2, 0(sp)
	li a0, 0xBEEF
	call srand
	la s0, qs_array
	li s1, 0
	li s2, QSORT_N
1:	call rand
	slli t0, s1, 2
	add t0, t0, s0
	sw a0, 0(t0)
	addi s1, s1, 1
	blt s1, s2, 1b

	la a0, qs_array
	li a1, 0
	li a2, QSORT_N - 1
	call quicksort

	# verify ascending (signed, matching the sort comparisons)
	la s0, qs_array
	li s1, 1
2:	slli t0, s1, 2
	add t0, t0, s0
	lw t1, 0(t0)
	lw t2, -4(t0)
	blt t1, t2, qs_fail
	addi s1, s1, 1
	blt s1, s2, 2b
	li a0, 0
	j qs_done
qs_fail:
	li a0, 1
qs_done:
	lw s2, 0(sp)
	lw s1, 4(sp)
	lw s0, 8(sp)
	lw ra, 12(sp)
	addi sp, sp, 16
	ret

# quicksort(a0: base, a1: lo index, a2: hi index), Lomuto partition
quicksort:
	bge a1, a2, qs_ret
	addi sp, sp, -32
	sw ra, 28(sp)
	sw s0, 24(sp)
	sw s1, 20(sp)
	sw s2, 16(sp)
	sw s3, 12(sp)
	mv s0, a0
	mv s1, a1
	mv s2, a2
	slli t0, s2, 2
	add t0, t0, s0
	lw t1, 0(t0)          # pivot = a[hi]
	mv t2, s1             # i
	mv t3, s1             # j
3:	bge t3, s2, 4f
	slli t4, t3, 2
	add t4, t4, s0
	lw t5, 0(t4)
	bge t5, t1, 5f
	slli t6, t2, 2
	add t6, t6, s0
	lw a3, 0(t6)
	sw t5, 0(t6)
	sw a3, 0(t4)
	addi t2, t2, 1
5:	addi t3, t3, 1
	j 3b
4:	slli t4, t2, 2        # swap a[i], a[hi]
	add t4, t4, s0
	lw t5, 0(t4)
	slli t6, s2, 2
	add t6, t6, s0
	lw a3, 0(t6)
	sw a3, 0(t4)
	sw t5, 0(t6)
	mv s3, t2
	mv a0, s0
	mv a1, s1
	addi a2, s3, -1
	call quicksort
	mv a0, s0
	addi a1, s3, 1
	mv a2, s2
	call quicksort
	lw s3, 12(sp)
	lw s2, 16(sp)
	lw s1, 20(sp)
	lw s0, 24(sp)
	lw ra, 28(sp)
	addi sp, sp, 32
qs_ret:
	ret

	.bss
	.align 4
qs_array:
	.space QSORT_N * 4
`
	return Benchmark{Name: "qsort", Image: MustProgram(src)}
}

// primeCount mirrors the guest's trial-division count for self-check
// injection.
func primeCount(n int) int {
	count := 0
	for c := 2; c < n; c++ {
		prime := true
		for d := 2; d*d <= c; d++ {
			if c%d == 0 {
				prime = false
				break
			}
		}
		if prime {
			count++
		}
	}
	return count
}

// Primes builds the prime-number-generator benchmark: count primes below n
// by trial division and verify against the expected count.
func Primes(n int) Benchmark {
	src := fmt.Sprintf("\t.equ PRIMES_N, %d\n\t.equ PRIMES_EXPECT, %d\n", n, primeCount(n)) + `
main:
	li s0, 2              # candidate
	li s1, 0              # count
	li s2, PRIMES_N
1:	bge s0, s2, 4f
	li t0, 2
2:	mul t1, t0, t0
	bgt t1, s0, 3f        # no divisor up to sqrt: prime
	rem t2, s0, t0
	beqz t2, 5f
	addi t0, t0, 1
	j 2b
3:	addi s1, s1, 1
5:	addi s0, s0, 1
	j 1b
4:	li t0, PRIMES_EXPECT
	bne s1, t0, 6f
	li a0, 0
	ret
6:	li a0, 1
	ret
`
	return Benchmark{Name: "primes", Image: MustProgram(src)}
}

// dhryChecksum mirrors the guest loop below in Go, producing the expected
// checksum for self-verification.
func dhryChecksum(iters int) uint32 {
	var arr1 [50]uint32
	var sum uint32
	s1 := "DHRYSTONE PROGRAM, 1'ST STRING"
	s2 := "DHRYSTONE PROGRAM, 2'ND STRING"
	for i := 0; i < iters; i++ {
		x := uint32(i)*3 + 1
		idx := uint32(i) % 50
		arr1[idx] = x
		arr1[(idx+7)%50] = arr1[idx] + 17
		// "Func2": first differing character position drives a branch.
		diff := 0
		for k := 0; k < len(s1); k++ {
			if s1[k] != s2[k] {
				diff = k
				break
			}
		}
		if uint32(diff)+x > 30 {
			sum += arr1[(idx+7)%50] * 2
		} else {
			sum += x
		}
		// "Proc7" analog.
		sum += (x + 2) + (x << 1) - (x >> 2)
		// record copy analog: fold a few array cells.
		sum ^= arr1[(idx+3)%50]
	}
	return sum
}

// Dhrystone builds the dhrystone-like benchmark: a synthetic mix of array
// stores, string comparison, branches and arithmetic function calls modeled
// on the Dhrystone 2.1 procedures, self-checked against a precomputed
// checksum. (The original C Dhrystone cannot be compiled here — see
// DESIGN.md substitutions.)
func Dhrystone(iters int) Benchmark {
	src := fmt.Sprintf("\t.equ DHRY_ITERS, %d\n\t.equ DHRY_EXPECT, 0x%08x\n", iters, dhryChecksum(iters)) + `
main:
	addi sp, sp, -32
	sw ra, 28(sp)
	sw s0, 24(sp)
	sw s1, 20(sp)
	sw s2, 16(sp)
	sw s3, 12(sp)
	sw s4, 8(sp)
	li s0, 0              # i
	li s1, DHRY_ITERS
	li s2, 0              # sum
1:	bge s0, s1, 9f
	# x = i*3 + 1
	slli t0, s0, 1
	add t0, t0, s0
	addi s3, t0, 1        # x
	# idx = i % 50
	li t0, 50
	remu s4, s0, t0
	# arr1[idx] = x
	la t1, dhry_arr1
	slli t2, s4, 2
	add t2, t2, t1
	sw s3, 0(t2)
	# arr1[(idx+7)%50] = arr1[idx] + 17
	lw t3, 0(t2)
	addi t3, t3, 17
	addi t4, s4, 7
	li t0, 50
	remu t4, t4, t0
	slli t4, t4, 2
	add t4, t4, t1
	sw t3, 0(t4)
	# diff = first differing char of the two strings
	la a0, dhry_str1
	la a1, dhry_str2
	call dhry_strdiff
	# if diff + x > 30: sum += arr1[(idx+7)%50]*2 else sum += x
	add t0, a0, s3
	li t1, 30
	bleu t0, t1, 2f
	la t1, dhry_arr1
	addi t4, s4, 7
	li t0, 50
	remu t4, t4, t0
	slli t4, t4, 2
	add t4, t4, t1
	lw t3, 0(t4)
	slli t3, t3, 1
	add s2, s2, t3
	j 3f
2:	add s2, s2, s3
3:	# Proc7 analog: sum += (x+2) + (x<<1) - (x>>2)
	addi t0, s3, 2
	slli t1, s3, 1
	add t0, t0, t1
	srli t1, s3, 2
	sub t0, t0, t1
	add s2, s2, t0
	# record fold: sum ^= arr1[(idx+3)%50]
	addi t4, s4, 3
	li t0, 50
	remu t4, t4, t0
	slli t4, t4, 2
	la t1, dhry_arr1
	add t4, t4, t1
	lw t3, 0(t4)
	xor s2, s2, t3
	addi s0, s0, 1
	j 1b
9:	li t0, DHRY_EXPECT
	bne s2, t0, 8f
	li a0, 0
	j 7f
8:	li a0, 1
7:	lw s4, 8(sp)
	lw s3, 12(sp)
	lw s2, 16(sp)
	lw s1, 20(sp)
	lw s0, 24(sp)
	lw ra, 28(sp)
	addi sp, sp, 32
	ret

# dhry_strdiff(a0, a1) -> a0: index of first differing byte (0 if equal)
dhry_strdiff:
	li t0, 0
1:	add t1, a0, t0
	lbu t2, 0(t1)
	add t1, a1, t0
	lbu t3, 0(t1)
	bne t2, t3, 2f
	beqz t2, 3f
	addi t0, t0, 1
	j 1b
3:	li t0, 0
2:	mv a0, t0
	ret

	.data
dhry_str1:
	.asciz "DHRYSTONE PROGRAM, 1'ST STRING"
dhry_str2:
	.asciz "DHRYSTONE PROGRAM, 2'ND STRING"
	.bss
	.align 4
dhry_arr1:
	.space 200
`
	return Benchmark{Name: "dhrystone", Image: MustProgram(src)}
}

// SimpleSensor builds the interrupt-driven sensor-to-UART copy application
// of Table II: claim the sensor IRQ, copy the 64-byte frame to the console,
// repeat for the given number of frames.
func SimpleSensor(frames int) Benchmark {
	src := fmt.Sprintf("\t.equ SENSOR_FRAMES, %d\n", frames) + `
main:
	la t0, ss_trap
	csrw mtvec, t0
	li t0, INTC_BASE
	li t1, 1 << IRQ_SENSOR
	sw t1, INTC_ENABLE(t0)
	li t1, 0x800          # MEIE
	csrw mie, t1
	csrsi mstatus, 8      # MIE
	la s0, ss_done
1:	lw t1, 0(s0)
	li t2, SENSOR_FRAMES
	blt t1, t2, 1b
	li a0, 0
	ret

ss_trap:
	addi sp, sp, -32
	sw t0, 28(sp)
	sw t1, 24(sp)
	sw t2, 20(sp)
	sw t3, 16(sp)
	sw t4, 12(sp)
	li t0, INTC_BASE
	lw t1, INTC_CLAIM(t0)
	li t0, SENSOR_BASE
	li t1, UART_BASE
	li t2, 0
2:	add t3, t0, t2
	lbu t4, 0(t3)
	sw t4, UART_TX(t1)
	addi t2, t2, 1
	li t3, 64
	blt t2, t3, 2b
	la t0, ss_done
	lw t1, 0(t0)
	addi t1, t1, 1
	sw t1, 0(t0)
	lw t4, 12(sp)
	lw t3, 16(sp)
	lw t2, 20(sp)
	lw t1, 24(sp)
	lw t0, 28(sp)
	addi sp, sp, 32
	mret

	.data
	.align 2
ss_done:
	.word 0
`
	return Benchmark{
		Name:         "simple-sensor",
		Image:        MustProgram(src),
		MinSimTimeMS: frames*25 + 50,
	}
}
