package guest

import (
	"fmt"
	"strings"
)

// genContextSave emits the trap-entry register save: x1 and x3..x31 pushed
// onto the current stack plus mepc, a 128-byte frame. x2 (sp) is implicit.
func genContextSave() string {
	var b strings.Builder
	b.WriteString("\taddi sp, sp, -128\n")
	b.WriteString("\tsw x1, 0(sp)\n")
	off := 4
	for r := 3; r <= 31; r++ {
		fmt.Fprintf(&b, "\tsw x%d, %d(sp)\n", r, off)
		off += 4
	}
	b.WriteString("\tcsrr t0, mepc\n")
	b.WriteString("\tsw t0, 120(sp)\n")
	return b.String()
}

// genContextRestore emits the mirror restore ending in mret.
func genContextRestore() string {
	var b strings.Builder
	b.WriteString("\tlw t0, 120(sp)\n")
	b.WriteString("\tcsrw mepc, t0\n")
	b.WriteString("\tlw x1, 0(sp)\n")
	off := 4
	for r := 3; r <= 31; r++ {
		fmt.Fprintf(&b, "\tlw x%d, %d(sp)\n", r, off)
		off += 4
	}
	b.WriteString("\taddi sp, sp, 128\n")
	b.WriteString("\tmret\n")
	return b.String()
}

// RTOSTasks builds the freertos-tasks analog of Table II: a mini-RTOS with
// a machine-timer-preemptive round-robin scheduler interleaving two
// never-yielding tasks, each performing busy arithmetic and bumping a
// counter. The program exits successfully once both counters reach the
// target — which can only happen if preemptive context switching works.
func RTOSTasks(target int) Benchmark {
	src := fmt.Sprintf("\t.equ RTOS_TARGET, %d\n\t.equ RTOS_TICK_US, 50\n", target) + `
main:
	la t0, rtos_tick
	csrw mtvec, t0

	# Build the initial context frame of each task: zeroed registers with
	# mepc pointing at the task entry.
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, rtos_stack0_top - 128
	li a1, 0
	li a2, 128
	call memset
	la t0, rtos_stack0_top - 128
	la t1, rtos_task0
	sw t1, 120(t0)
	la t2, rtos_tcb
	sw t0, 0(t2)

	la a0, rtos_stack1_top - 128
	li a1, 0
	li a2, 128
	call memset
	la t0, rtos_stack1_top - 128
	la t1, rtos_task1
	sw t1, 120(t0)
	la t2, rtos_tcb
	sw t0, 4(t2)

	# Arm the first tick.
	li t0, CLINT_BASE + CLINT_MTIME
	lw t1, 0(t0)
	addi t1, t1, RTOS_TICK_US
	li t0, CLINT_BASE + CLINT_MTIMECMP
	sw t1, 0(t0)
	sw x0, 4(t0)
	li t1, 0x80            # MTIE
	csrw mie, t1
	li t1, 0x80            # mstatus.MPIE: mret below enables interrupts
	csrw mstatus, t1

	# Start task 0 by restoring its initial frame.
	la t0, rtos_cur
	sw x0, 0(t0)
	la t0, rtos_tcb
	lw sp, 0(t0)
` + genContextRestore() + `

# Timer tick: save full context, switch tasks, re-arm, restore.
rtos_tick:
` + genContextSave() + `
	# tcb[cur] = sp
	la t0, rtos_cur
	lw t1, 0(t0)
	la t2, rtos_tcb
	slli t3, t1, 2
	add t3, t3, t2
	sw sp, 0(t3)
	# cur ^= 1; sp = tcb[cur]
	xori t1, t1, 1
	sw t1, 0(t0)
	slli t3, t1, 2
	add t3, t3, t2
	lw sp, 0(t3)
	# context-switch accounting
	la t0, rtos_switches
	lw t1, 0(t0)
	addi t1, t1, 1
	sw t1, 0(t0)
	# re-arm the next tick
	li t0, CLINT_BASE + CLINT_MTIME
	lw t1, 0(t0)
	addi t1, t1, RTOS_TICK_US
	li t0, CLINT_BASE + CLINT_MTIMECMP
	sw t1, 0(t0)
	sw x0, 4(t0)
` + genContextRestore() + `

# Task 0: producer — fill a message buffer and copy it into the shared
# queue area (memory-heavy, like FreeRTOS queue traffic), bump counter 0.
rtos_task0:
	la s0, rtos_count0
	la s1, rtos_count1
	la s2, rtos_msg0
	la s3, rtos_queue
1:	li t0, 0
	li t1, 64
2:	add t2, s2, t0         # msg[i] = i ^ count
	lw t4, 0(s0)
	xor t4, t4, t0
	sb t4, 0(t2)
	addi t0, t0, 1
	blt t0, t1, 2b
	li t0, 0
3:	add t2, s2, t0         # queue <- msg, word-wise
	lw t4, 0(t2)
	add t2, s3, t0
	sw t4, 0(t2)
	addi t0, t0, 4
	blt t0, t1, 3b
	lw t0, 0(s0)
	addi t0, t0, 1
	sw t0, 0(s0)
	li t1, RTOS_TARGET
	blt t0, t1, 1b
	lw t2, 0(s1)
	blt t2, t1, 1b
	li a0, 0
	j exit

# Task 1: consumer — checksum the queue contents into its own buffer, bump
# counter 1.
rtos_task1:
	la s0, rtos_count0
	la s1, rtos_count1
	la s2, rtos_queue
	la s3, rtos_msg1
1:	li t0, 0
	li t1, 64
	li t3, 0
2:	add t2, s2, t0         # sum += queue[i]; msg1[i] = queue[i]
	lw t4, 0(t2)
	add t3, t3, t4
	add t2, s3, t0
	sw t4, 0(t2)
	addi t0, t0, 4
	blt t0, t1, 2b
	la t2, rtos_sum
	sw t3, 0(t2)
	lw t0, 0(s1)
	addi t0, t0, 1
	sw t0, 0(s1)
	li t1, RTOS_TARGET
	blt t0, t1, 1b
	lw t2, 0(s0)
	blt t2, t1, 1b
	li a0, 0
	j exit

	.data
	.align 2
rtos_cur:
	.word 0
rtos_tcb:
	.word 0, 0
rtos_count0:
	.word 0
rtos_count1:
	.word 0
rtos_switches:
	.word 0
rtos_sum:
	.word 0
	.bss
	.align 4
rtos_msg0:
	.space 64
rtos_msg1:
	.space 64
rtos_queue:
	.space 64
	.align 4
rtos_stack0:
	.space 4096
rtos_stack0_top:
rtos_stack1:
	.space 4096
rtos_stack1_top:
`
	return Benchmark{Name: "freertos-tasks", Image: MustProgram(src), MinSimTimeMS: 1}
}
