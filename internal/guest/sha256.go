package guest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
)

// sha256K returns the 64 round constants (fractional parts of the cube
// roots of the first 64 primes), computed rather than pasted.
func sha256K() [64]uint32 {
	var k [64]uint32
	primes := firstPrimes(64)
	for i, p := range primes {
		frac := math.Cbrt(float64(p))
		frac -= math.Floor(frac)
		k[i] = uint32(frac * (1 << 32))
	}
	return k
}

// sha256H0 returns the initial state (fractional parts of the square roots
// of the first 8 primes).
func sha256H0() [8]uint32 {
	var h [8]uint32
	for i, p := range firstPrimes(8) {
		frac := math.Sqrt(float64(p))
		frac -= math.Floor(frac)
		h[i] = uint32(frac * (1 << 32))
	}
	return h
}

func firstPrimes(n int) []int {
	var out []int
	for c := 2; len(out) < n; c++ {
		prime := true
		for d := 2; d*d <= c; d++ {
			if c%d == 0 {
				prime = false
				break
			}
		}
		if prime {
			out = append(out, c)
		}
	}
	return out
}

func wordsDirective(ws []uint32) string {
	var b strings.Builder
	for i, w := range ws {
		if i%8 == 0 {
			b.WriteString("\n\t.word ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "0x%08x", w)
	}
	b.WriteString("\n")
	return b.String()
}

// lcgBytes mirrors the guest runtime's rand(): each message byte is
// (rand() >> 16) & 0xFF.
func lcgBytes(seed uint32, n int) []byte {
	out := make([]byte, n)
	s := seed
	for i := range out {
		s = s*1664525 + 1013904223
		out[i] = byte(s >> 16)
	}
	return out
}

const shaSeed = 0x5ADBEEF

// SHA256 builds the sha256 benchmark: hash msgLen bytes of LCG data with a
// full from-scratch SHA-256 in RV32 assembly and print the digest as hex;
// the host compares against crypto/sha256 over the same bytes.
func SHA256(msgLen int) Benchmark {
	padLen := ((msgLen+8)/64 + 1) * 64
	k := sha256K()
	h0 := sha256H0()

	src := fmt.Sprintf(`
	.equ SHA_SEED,   0x%08x
	.equ SHA_MSGLEN, %d
	.equ SHA_PADLEN, %d
`, shaSeed, msgLen, padLen) + `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	sw s0, 8(sp)
	sw s1, 4(sp)
	sw s2, 0(sp)
	li a0, SHA_SEED
	call srand
	# fill message with LCG bytes
	la s0, sha_msg
	li s1, 0
	li s2, SHA_MSGLEN
1:	call rand
	srli a0, a0, 16
	add t0, s0, s1
	sb a0, 0(t0)
	addi s1, s1, 1
	blt s1, s2, 1b
	# padding: 0x80 marker (the rest of the buffer is BSS zero), then the
	# big-endian bit length in the last four bytes
	li t1, 0x80
	add t0, s0, s2
	sb t1, 0(t0)
	li t1, SHA_MSGLEN * 8
	li t2, SHA_PADLEN - 4
	add t0, s0, t2
	srli t3, t1, 24
	sb t3, 0(t0)
	srli t3, t1, 16
	sb t3, 1(t0)
	srli t3, t1, 8
	sb t3, 2(t0)
	sb t1, 3(t0)
	# state = H0
	la a0, sha_state
	la a1, sha_h0
	li a2, 32
	call memcpy
	# compress all blocks
	li s1, 0
2:	la a0, sha_msg
	add a0, a0, s1
	call sha256_compress
	addi s1, s1, 64
	li t0, SHA_PADLEN
	blt s1, t0, 2b
	# print digest
	la s0, sha_state
	li s1, 0
3:	slli t0, s1, 2
	add t0, t0, s0
	lw a0, 0(t0)
	call uart_puthex
	addi s1, s1, 1
	li t0, 8
	blt s1, t0, 3b
	li a0, 0
	lw s2, 0(sp)
	lw s1, 4(sp)
	lw s0, 8(sp)
	lw ra, 12(sp)
	addi sp, sp, 16
	ret

# sha256_compress(a0: 64-byte block) - updates sha_state
sha256_compress:
	addi sp, sp, -48
	sw s1, 44(sp)
	sw s2, 40(sp)
	sw s3, 36(sp)
	sw s4, 32(sp)
	sw s5, 28(sp)
	sw s6, 24(sp)
	sw s7, 20(sp)
	sw s8, 16(sp)
	sw s9, 12(sp)
	sw s10, 8(sp)
	sw s11, 4(sp)

	# W[0..15]: big-endian message words
	la t0, sha_w
	li t1, 0
1:	slli t2, t1, 2
	add t3, a0, t2
	lbu t4, 0(t3)
	slli t4, t4, 8
	lbu t5, 1(t3)
	or t4, t4, t5
	slli t4, t4, 8
	lbu t5, 2(t3)
	or t4, t4, t5
	slli t4, t4, 8
	lbu t5, 3(t3)
	or t4, t4, t5
	add t3, t0, t2
	sw t4, 0(t3)
	addi t1, t1, 1
	li t2, 16
	blt t1, t2, 1b

	# W[16..63]: W[t] = sigma1(W[t-2]) + W[t-7] + sigma0(W[t-15]) + W[t-16]
	li t1, 16
2:	slli t2, t1, 2
	add t3, t0, t2
	lw t4, -8(t3)
	srli t5, t4, 17       # sigma1: ror17 ^ ror19 ^ shr10
	slli t6, t4, 15
	or t5, t5, t6
	srli t6, t4, 19
	xor t5, t5, t6
	slli t6, t4, 13
	xor t5, t5, t6
	srli t6, t4, 10
	xor t5, t5, t6
	lw t6, -28(t3)
	add t5, t5, t6
	lw t4, -60(t3)
	srli a3, t4, 7        # sigma0: ror7 ^ ror18 ^ shr3
	slli a4, t4, 25
	or a3, a3, a4
	srli a4, t4, 18
	xor a3, a3, a4
	slli a4, t4, 14
	xor a3, a3, a4
	srli a4, t4, 3
	xor a3, a3, a4
	add t5, t5, a3
	lw a3, -64(t3)
	add t5, t5, a3
	sw t5, 0(t3)
	addi t1, t1, 1
	li t2, 64
	blt t1, t2, 2b

	# working variables a..h in s1..s8
	la t0, sha_state
	lw s1, 0(t0)
	lw s2, 4(t0)
	lw s3, 8(t0)
	lw s4, 12(t0)
	lw s5, 16(t0)
	lw s6, 20(t0)
	lw s7, 24(t0)
	lw s8, 28(t0)
	la s10, sha_w
	la s11, sha_k
	li s9, 0
3:	# T1 = h + Sigma1(e) + Ch(e,f,g) + K[t] + W[t]
	srli t1, s5, 6        # Sigma1: ror6 ^ ror11 ^ ror25
	slli t2, s5, 26
	or t1, t1, t2
	srli t2, s5, 11
	xor t1, t1, t2
	slli t2, s5, 21
	xor t1, t1, t2
	srli t2, s5, 25
	xor t1, t1, t2
	slli t2, s5, 7
	xor t1, t1, t2
	and t2, s5, s6        # Ch = (e&f) ^ (~e&g)
	not t3, s5
	and t3, t3, s7
	xor t2, t2, t3
	add t1, t1, t2
	add t1, t1, s8
	slli t2, s9, 2
	add t3, s11, t2
	lw t4, 0(t3)
	add t1, t1, t4
	add t3, s10, t2
	lw t4, 0(t3)
	add t1, t1, t4
	# T2 = Sigma0(a) + Maj(a,b,c)
	srli t2, s1, 2        # Sigma0: ror2 ^ ror13 ^ ror22
	slli t3, s1, 30
	or t2, t2, t3
	srli t3, s1, 13
	xor t2, t2, t3
	slli t3, s1, 19
	xor t2, t2, t3
	srli t3, s1, 22
	xor t2, t2, t3
	slli t3, s1, 10
	xor t2, t2, t3
	and t3, s1, s2        # Maj
	and t4, s1, s3
	xor t3, t3, t4
	and t4, s2, s3
	xor t3, t3, t4
	add t2, t2, t3
	# rotate working variables
	mv s8, s7
	mv s7, s6
	mv s6, s5
	add s5, s4, t1
	mv s4, s3
	mv s3, s2
	mv s2, s1
	add s1, t1, t2
	addi s9, s9, 1
	li t2, 64
	blt s9, t2, 3b

	# state += working variables
	la t0, sha_state
	lw t1, 0(t0)
	add t1, t1, s1
	sw t1, 0(t0)
	lw t1, 4(t0)
	add t1, t1, s2
	sw t1, 4(t0)
	lw t1, 8(t0)
	add t1, t1, s3
	sw t1, 8(t0)
	lw t1, 12(t0)
	add t1, t1, s4
	sw t1, 12(t0)
	lw t1, 16(t0)
	add t1, t1, s5
	sw t1, 16(t0)
	lw t1, 20(t0)
	add t1, t1, s6
	sw t1, 20(t0)
	lw t1, 24(t0)
	add t1, t1, s7
	sw t1, 24(t0)
	lw t1, 28(t0)
	add t1, t1, s8
	sw t1, 28(t0)

	lw s11, 4(sp)
	lw s10, 8(sp)
	lw s9, 12(sp)
	lw s8, 16(sp)
	lw s7, 20(sp)
	lw s6, 24(sp)
	lw s5, 28(sp)
	lw s4, 32(sp)
	lw s3, 36(sp)
	lw s2, 40(sp)
	lw s1, 44(sp)
	addi sp, sp, 48
	ret

	.data
	.align 2
sha_h0:` + wordsDirective(h0[:]) + `
sha_k:` + wordsDirective(k[:]) + `
	.bss
	.align 4
sha_state:
	.space 32
sha_w:
	.space 256
sha_msg:
	.space SHA_PADLEN
`
	digest := sha256.Sum256(lcgBytes(shaSeed, msgLen))
	return Benchmark{
		Name:       "sha256",
		Image:      MustProgram(src),
		ExpectUART: hex.EncodeToString(digest[:]),
	}
}
