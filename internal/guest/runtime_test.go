package guest_test

import (
	"testing"

	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/soc"
)

// runGuest executes a guest body on the baseline platform and returns the
// console output and exit code.
func runGuest(t *testing.T, body string, input []byte) (string, uint32) {
	t.Helper()
	img, err := guest.Program(body)
	if err != nil {
		t.Fatal(err)
	}
	pl := soc.MustNew(soc.Config{})
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	if input != nil {
		pl.UART.Inject(input)
	}
	if err := pl.Run(10 * kernel.S); err != nil {
		t.Fatal(err)
	}
	exited, code := pl.Exited()
	if !exited {
		t.Fatal("guest did not exit")
	}
	return string(pl.UART.Output()), code
}

func TestLibPutdec(t *testing.T) {
	out, code := runGuest(t, `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	li a0, 0
	call uart_putdec
	li a0, ' '
	call uart_putc
	li a0, 7
	call uart_putdec
	li a0, ' '
	call uart_putc
	li a0, 1234567890
	call uart_putdec
	li a0, ' '
	call uart_putc
	li a0, -1            # prints as unsigned
	call uart_putdec
	li a0, 0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
`, nil)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if out != "0 7 1234567890 4294967295" {
		t.Errorf("putdec output = %q", out)
	}
}

func TestLibPuthex(t *testing.T) {
	out, _ := runGuest(t, `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	li a0, 0xDEADBEEF
	call uart_puthex
	li a0, 0
	call uart_puthex
	li a0, 0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
`, nil)
	if out != "deadbeef00000000" {
		t.Errorf("puthex output = %q", out)
	}
}

func TestLibStrcmp(t *testing.T) {
	_, code := runGuest(t, `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, s_abc
	la a1, s_abc2
	call strcmp
	bnez a0, fail        # equal strings -> 0
	la a0, s_abc
	la a1, s_abd
	call strcmp
	bgez a0, fail        # "abc" < "abd" -> negative
	la a0, s_abd
	la a1, s_abc
	call strcmp
	blez a0, fail        # "abd" > "abc" -> positive
	la a0, s_abc
	la a1, s_ab
	call strcmp
	blez a0, fail        # "abc" > "ab"
	li a0, 0
	j done
fail:
	li a0, 1
done:
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
	.data
s_abc:	.asciz "abc"
s_abc2:	.asciz "abc"
s_abd:	.asciz "abd"
s_ab:	.asciz "ab"
`, nil)
	if code != 0 {
		t.Errorf("strcmp self-test failed (exit %d)", code)
	}
}

func TestLibMemsetMemcpy(t *testing.T) {
	_, code := runGuest(t, `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, buf
	li a1, 0xAB
	li a2, 8
	call memset
	# verify
	la t0, buf
	lbu t1, 0(t0)
	li t2, 0xAB
	bne t1, t2, fail
	lbu t1, 7(t0)
	bne t1, t2, fail
	lbu t1, 8(t0)
	bnez t1, fail        # past end untouched
	# copy
	la a0, buf2
	la a1, buf
	li a2, 8
	call memcpy
	la t0, buf2
	lbu t1, 3(t0)
	li t2, 0xAB
	bne t1, t2, fail
	# zero-length operations are no-ops
	la a0, buf2
	li a1, 0xFF
	li a2, 0
	call memset
	la t0, buf2
	lbu t1, 0(t0)
	li t2, 0xAB
	bne t1, t2, fail
	li a0, 0
	j done
fail:
	li a0, 1
done:
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
	.bss
buf:	.space 16
buf2:	.space 16
`, nil)
	if code != 0 {
		t.Errorf("memset/memcpy self-test failed (exit %d)", code)
	}
}

func TestLibSetjmpLongjmp(t *testing.T) {
	_, code := runGuest(t, `
main:
	addi sp, sp, -80
	sw ra, 76(sp)
	li s0, 5             # live value captured by setjmp
	mv a0, sp            # jmp_buf on the stack
	call setjmp
	bnez a0, second
	li s0, 1             # clobber after setjmp; longjmp must restore 5
	mv a0, sp
	li a1, 42
	call longjmp
	li a0, 9             # unreachable
	j done
second:
	li t0, 42
	bne a0, t0, fail     # longjmp value delivered
	li t0, 5
	bne s0, t0, fail     # callee-saved register restored to setjmp-time value
	li a0, 0
	j done
fail:
	li a0, 1
done:
	lw ra, 76(sp)
	addi sp, sp, 80
	ret
`, nil)
	if code != 0 {
		t.Errorf("setjmp/longjmp self-test failed (exit %d)", code)
	}
}

func TestLibLongjmpZeroBecomesOne(t *testing.T) {
	_, code := runGuest(t, `
main:
	addi sp, sp, -80
	sw ra, 76(sp)
	mv a0, sp
	call setjmp
	bnez a0, second
	mv a0, sp
	li a1, 0             # longjmp(buf, 0) must deliver 1
	call longjmp
second:
	li t0, 1
	bne a0, t0, fail
	li a0, 0
	j done
fail:
	li a0, 1
done:
	lw ra, 76(sp)
	addi sp, sp, 80
	ret
`, nil)
	if code != 0 {
		t.Errorf("longjmp(0) self-test failed (exit %d)", code)
	}
}

func TestLibRandDeterministic(t *testing.T) {
	out1, _ := runGuest(t, randProg, nil)
	out2, _ := runGuest(t, randProg, nil)
	if out1 != out2 {
		t.Error("rand must be deterministic across runs")
	}
	if len(out1) != 16 {
		t.Errorf("output = %q", out1)
	}
}

const randProg = `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	li a0, 777
	call srand
	call rand
	call uart_puthex
	call rand
	call uart_puthex
	li a0, 0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
`

func TestLibGetcBlocksUntilInput(t *testing.T) {
	out, code := runGuest(t, `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	call uart_getc
	call uart_putc
	call uart_getc
	call uart_putc
	li a0, 0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
`, []byte("xy"))
	if code != 0 || out != "xy" {
		t.Errorf("echo = %q code=%d", out, code)
	}
}

func TestLibPrintf(t *testing.T) {
	out, code := runGuest(t, `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, fmt1
	li a1, 42
	li a2, 0xBEEF
	la a3, name
	call printf
	la a0, fmt2
	li a1, '!'
	call printf
	li a0, 0
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
	.data
fmt1:	.asciz "n=%d hex=%x who=%s\n"
fmt2:	.asciz "100%% done%c%q\n"
name:	.asciz "vp"
`, nil)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	want := "n=42 hex=0000beef who=vp\n100% done!q\n"
	if out != want {
		t.Errorf("printf output = %q, want %q", out, want)
	}
}
