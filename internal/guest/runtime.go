// Package guest contains the embedded software that runs on the virtual
// prototype: a small assembly runtime (crt0, UART console I/O, setjmp/
// longjmp, a PRNG) and the guest programs of the paper's evaluation — the
// seven Table II benchmarks, the code-injection suite's victim scaffolding,
// and the immobilizer firmware live in sibling files and packages.
//
// Everything is RV32 assembly assembled in-process by internal/asm; there is
// no external toolchain.
package guest

import "vpdift/internal/asm"

// Equates shared by all guest programs: the platform memory map (must match
// internal/soc) and peripheral register offsets (must match internal/periph).
const Equates = `
	.equ CLINT_BASE,   0x02000000
	.equ INTC_BASE,    0x0C000000
	.equ UART_BASE,    0x10000000
	.equ SYSCTRL_BASE, 0x11000000
	.equ CAN_BASE,     0x40000000
	.equ SENSOR_BASE,  0x50000000
	.equ AES_BASE,     0x60000000
	.equ DMA_BASE,     0x70000000
	.equ RAM_BASE,     0x80000000

	.equ UART_TX,     0x00
	.equ UART_RX,     0x04
	.equ UART_STATUS, 0x08
	.equ UART_RX_EMPTY_BIT, 31

	.equ CLINT_MSIP,     0x0000
	.equ CLINT_MTIMECMP, 0x4000
	.equ CLINT_MTIME,    0xBFF8

	.equ INTC_PENDING, 0x00
	.equ INTC_ENABLE,  0x04
	.equ INTC_CLAIM,   0x08

	.equ CAN_TX_ID,   0x00
	.equ CAN_TX_LEN,  0x04
	.equ CAN_TX_DATA, 0x08
	.equ CAN_TX_CTRL, 0x10
	.equ CAN_RX_ID,   0x14
	.equ CAN_RX_LEN,  0x18
	.equ CAN_RX_DATA, 0x1C
	.equ CAN_RX_CTRL, 0x24
	.equ CAN_STATUS,  0x28

	.equ SENSOR_FRAME,    0x00
	.equ SENSOR_DATA_TAG, 0x40

	.equ AES_KEY,  0x00
	.equ AES_IN,   0x10
	.equ AES_OUT,  0x20
	.equ AES_CTRL, 0x30

	.equ DMA_SRC,  0x00
	.equ DMA_DST,  0x04
	.equ DMA_LEN,  0x08
	.equ DMA_CTRL, 0x0C

	.equ IRQ_UART,   1
	.equ IRQ_SENSOR, 2
	.equ IRQ_CAN,    3
	.equ IRQ_DMA,    4
`

// Crt0 is the program entry: set up the stack, call main, power off with
// main's return value as exit code.
const Crt0 = `
	.text
_start:
	la sp, __stack_top
	call main
exit:                          # exit(a0)
	li t0, SYSCTRL_BASE
	sw a0, 0(t0)
1:	j 1b
`

// Lib is the runtime library: console I/O, memory helpers, setjmp/longjmp,
// and a 32-bit LCG. Registers follow the RISC-V calling convention
// (arguments and results in a0..a7, t-registers caller-saved).
const Lib = `
	.text
# uart_putc(a0: byte)
uart_putc:
	li t0, UART_BASE
	sw a0, UART_TX(t0)
	ret

# uart_puts(a0: pointer to NUL-terminated string)
uart_puts:
	li t0, UART_BASE
1:	lbu t1, 0(a0)
	beqz t1, 2f
	sw t1, UART_TX(t0)
	addi a0, a0, 1
	j 1b
2:	ret

# uart_getc() -> a0 (blocks until a byte arrives)
uart_getc:
	li t0, UART_BASE
1:	lw a0, UART_RX(t0)
	srli t1, a0, UART_RX_EMPTY_BIT
	bnez t1, 1b
	andi a0, a0, 0xFF
	ret

# uart_puthex(a0: word) - prints 8 hex digits
uart_puthex:
	li t0, UART_BASE
	li t2, 8              # digit count
1:	srli t3, a0, 28       # top nibble
	slli a0, a0, 4
	li t4, 10
	blt t3, t4, 2f
	addi t3, t3, 'a' - 10
	j 3f
2:	addi t3, t3, '0'
3:	sw t3, UART_TX(t0)
	addi t2, t2, -1
	bnez t2, 1b
	ret

# uart_putdec(a0: unsigned word) - prints decimal
uart_putdec:
	addi sp, sp, -16
	sw ra, 12(sp)
	li t0, 10
	bltu a0, t0, 2f
	divu t1, a0, t0       # quotient
	remu a0, a0, t0       # remainder stays for the tail call below
	mv t2, a0
	mv a0, t1
	sw t2, 8(sp)
	call uart_putdec
	lw a0, 8(sp)
2:	addi a0, a0, '0'
	li t0, UART_BASE
	sw a0, UART_TX(t0)
	lw ra, 12(sp)
	addi sp, sp, 16
	ret

# memcpy(a0: dst, a1: src, a2: n) -> a0
memcpy:
	mv t0, a0
	beqz a2, 2f
1:	lbu t1, 0(a1)
	sb t1, 0(t0)
	addi a1, a1, 1
	addi t0, t0, 1
	addi a2, a2, -1
	bnez a2, 1b
2:	ret

# memset(a0: dst, a1: byte, a2: n) -> a0
memset:
	mv t0, a0
	beqz a2, 2f
1:	sb a1, 0(t0)
	addi t0, t0, 1
	addi a2, a2, -1
	bnez a2, 1b
2:	ret

# strcmp(a0, a1) -> a0 (<0, 0, >0)
strcmp:
1:	lbu t0, 0(a0)
	lbu t1, 0(a1)
	bne t0, t1, 2f
	beqz t0, 3f
	addi a0, a0, 1
	addi a1, a1, 1
	j 1b
2:	sub a0, t0, t1
	ret
3:	li a0, 0
	ret

# setjmp(a0: jmp_buf of 16 words) -> 0 on direct call
setjmp:
	sw ra,  0(a0)
	sw sp,  4(a0)
	sw s0,  8(a0)
	sw s1, 12(a0)
	sw s2, 16(a0)
	sw s3, 20(a0)
	sw s4, 24(a0)
	sw s5, 28(a0)
	sw s6, 32(a0)
	sw s7, 36(a0)
	sw s8, 40(a0)
	sw s9, 44(a0)
	sw s10, 48(a0)
	sw s11, 52(a0)
	li a0, 0
	ret

# longjmp(a0: jmp_buf, a1: val) - returns val (or 1) from the setjmp site
longjmp:
	lw ra,  0(a0)
	lw sp,  4(a0)
	lw s0,  8(a0)
	lw s1, 12(a0)
	lw s2, 16(a0)
	lw s3, 20(a0)
	lw s4, 24(a0)
	lw s5, 28(a0)
	lw s6, 32(a0)
	lw s7, 36(a0)
	lw s8, 40(a0)
	lw s9, 44(a0)
	lw s10, 48(a0)
	lw s11, 52(a0)
	mv a0, a1
	bnez a0, 1f
	li a0, 1
1:	ret

# printf(a0: format, a1..a3: values) - minimal formatter for guest
# diagnostics. Verbs: %d (unsigned decimal), %x (8-digit hex), %c (char),
# %s (NUL-terminated string), %% (literal). At most three values.
printf:
	addi sp, sp, -32
	sw ra, 28(sp)
	sw s0, 24(sp)
	sw s1, 20(sp)
	sw s2, 16(sp)
	mv s0, a0             # cursor
	sw a1, 0(sp)          # argument array
	sw a2, 4(sp)
	sw a3, 8(sp)
	li s1, 0              # argument index
1:	lbu t0, 0(s0)
	beqz t0, 9f
	addi s0, s0, 1
	li t1, '%'
	bne t0, t1, 7f
	lbu t0, 0(s0)         # verb
	beqz t0, 9f
	addi s0, s0, 1
	li t1, '%'
	beq t0, t1, 7f
	# fetch next argument into s2
	slli t2, s1, 2
	add t2, t2, sp
	lw s2, 0(t2)
	addi s1, s1, 1
	li t1, 'd'
	beq t0, t1, 2f
	li t1, 'x'
	beq t0, t1, 3f
	li t1, 'c'
	beq t0, t1, 4f
	li t1, 's'
	beq t0, t1, 5f
	# unknown verb: print it literally, argument consumed
	mv a0, t0
	call uart_putc
	j 1b
2:	mv a0, s2
	call uart_putdec
	j 1b
3:	mv a0, s2
	call uart_puthex
	j 1b
4:	mv a0, s2
	call uart_putc
	j 1b
5:	mv a0, s2
	call uart_puts
	j 1b
7:	mv a0, t0             # ordinary character
	call uart_putc
	j 1b
9:	lw s2, 16(sp)
	lw s1, 20(sp)
	lw s0, 24(sp)
	lw ra, 28(sp)
	addi sp, sp, 32
	ret

# rand() -> a0: 32-bit LCG (Numerical Recipes constants)
rand:
	la t0, __rand_state
	lw t1, 0(t0)
	li t2, 1664525
	mul t1, t1, t2
	li t2, 1013904223
	add t1, t1, t2
	sw t1, 0(t0)
	mv a0, t1
	ret

# srand(a0: seed)
srand:
	la t0, __rand_state
	sw a0, 0(t0)
	ret

	.data
	.align 2
__rand_state:
	.word 0x12345678
`

// Stack reserves the guest stack in BSS.
const Stack = `
	.bss
	.align 4
__stack:
	.space 65536
__stack_top:
`

// Program assembles a complete guest program: equates, crt0, the given body
// (which must define main), the runtime library, and the stack.
func Program(body string) (*asm.Image, error) {
	return asm.Assemble(Equates+Crt0+body+Lib+Stack, asm.Options{})
}

// MustProgram is Program that panics on assembly errors; guest sources in
// this repository are static.
func MustProgram(body string) *asm.Image {
	img, err := Program(body)
	if err != nil {
		panic(err)
	}
	return img
}
