// Package stress implements the paper's future-work direction ("automatic
// test-case generation methods ... tailored for stress-testing security
// policies"): it generates random embedded programs whose data flows are
// known by construction and checks the DIFT engine against them.
//
// Each generated program runs two interleaved data-flow chains — one rooted
// at a classified secret, one rooted at public data — through a random mix
// of register moves, arithmetic, memory round trips at word/half/byte
// granularity, CSR round trips, MMIO round trips through the sensor frame,
// and DMA copies. One of the two chains is finally emitted on the UART:
//
//   - emitting the secret-rooted chain must ALWAYS raise an
//     output-clearance violation (a miss is under-tainting: a real leak the
//     engine would not catch);
//   - emitting the public chain must NEVER raise one (a false alarm is
//     over-tainting: the engine would reject correct firmware).
package stress

import (
	"errors"
	"fmt"
	"strings"

	"vpdift/internal/core"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
	"vpdift/internal/soc"
)

// Config parameterizes a stress run.
type Config struct {
	// Seeds is the number of generated programs per direction (each seed
	// is run twice: once emitting the secret chain, once the public one).
	Seeds int
	// Steps is the number of transformation steps per chain.
	Steps int
	// UseDMA includes DMA-copy hops in the step mix.
	UseDMA bool
	// UseMMIO includes sensor-frame round trips in the step mix.
	UseMMIO bool
	// UseCSR includes mscratch round trips in the step mix.
	UseCSR bool
}

// Failure records one engine bug found by the stress run.
type Failure struct {
	Seed       uint32
	EmitSecret bool
	Problem    string // "under-tainting" or "over-tainting"
	Detail     string
	Source     string
}

// Outcome summarizes a stress run.
type Outcome struct {
	Programs int
	Failures []Failure
}

// OK reports whether the engine survived the run.
func (o Outcome) OK() bool { return len(o.Failures) == 0 }

// gen builds one random program.
type gen struct {
	seed uint32
	cfg  Config
	b    strings.Builder
	slot int
}

func (g *gen) rnd() uint32 {
	g.seed = g.seed*1664525 + 1013904223
	return g.seed
}

func (g *gen) line(format string, args ...any) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

func (g *gen) newSlot() string {
	g.slot++
	return fmt.Sprintf("st_slot%d", g.slot)
}

// step emits one taint-preserving transformation of the live value in reg.
func (g *gen) step(reg, helper string) {
	choices := 8
	if g.cfg.UseDMA {
		choices++
	}
	if g.cfg.UseMMIO {
		choices++
	}
	if g.cfg.UseCSR {
		choices++
	}
	switch c := g.rnd() % uint32(choices); {
	case c == 0:
		g.line("mv t0, %s", reg)
		g.line("mv %s, t0", reg)
	case c == 1:
		g.line("li %s, %d", helper, g.rnd()%4096)
		g.line("add %s, %s, %s", reg, reg, helper)
	case c == 2:
		g.line("xori %s, %s, %d", reg, reg, g.rnd()%2048)
	case c == 3:
		g.line("slli %s, %s, 2", reg, reg)
		g.line("srli %s, %s, 2", reg, reg)
	case c == 4:
		s := g.newSlot()
		g.line("la t1, %s", s)
		g.line("sw %s, 0(t1)", reg)
		g.line("lw %s, 0(t1)", reg)
	case c == 5:
		s := g.newSlot()
		g.line("la t1, %s", s)
		g.line("sb %s, 0(t1)", reg)
		g.line("lbu %s, 0(t1)", reg)
	case c == 6:
		s := g.newSlot()
		g.line("la t1, %s", s)
		g.line("sh %s, 0(t1)", reg)
		g.line("lhu %s, 0(t1)", reg)
	case c == 7:
		g.line("li %s, 3", helper)
		g.line("mul %s, %s, %s", reg, reg, helper)
	case c == 8 && g.cfg.UseDMA:
		// DMA hop: value travels through the copy engine. The engine
		// ignores a start while busy, so poll first like real firmware
		// (the stress harness caught exactly this when the poll was
		// missing — see stress_test.go).
		src, dst := g.newSlot(), g.newSlot()
		wait := fmt.Sprintf("st_dmawait%d", g.slot)
		g.line("la t1, %s", src)
		g.line("sw %s, 0(t1)", reg)
		g.line("li t0, DMA_BASE")
		fmt.Fprintf(&g.b, "%s:\n", wait)
		g.line("lw t3, DMA_CTRL(t0)")
		g.line("andi t3, t3, 1")
		g.line("bnez t3, %s", wait)
		g.line("sw t1, DMA_SRC(t0)")
		g.line("la t1, %s", dst)
		g.line("sw t1, DMA_DST(t0)")
		g.line("li t3, 4")
		g.line("sw t3, DMA_LEN(t0)")
		g.line("li t3, 1")
		g.line("sw t3, DMA_CTRL(t0)")
		g.line("la t1, %s", dst)
		g.line("lw %s, 0(t1)", reg)
	case g.cfg.UseMMIO && (c == 8 && !g.cfg.UseDMA || c == 9 && g.cfg.UseDMA):
		// MMIO hop: park the byte in the sensor's writable frame.
		off := g.rnd() % 60
		g.line("li t1, SENSOR_BASE + %d", off)
		g.line("sb %s, 0(t1)", reg)
		g.line("lbu %s, 0(t1)", reg)
	default:
		// CSR hop.
		g.line("csrw mscratch, %s", reg)
		g.line("csrr %s, mscratch", reg)
	}
}

// program builds the guest source; emitSecret picks which chain reaches the
// console.
func (g *gen) program(emitSecret bool) string {
	g.b.Reset()
	g.slot = 0
	g.b.WriteString("main:\n")
	g.line("la t0, st_secret")
	g.line("lw s2, 0(t0)")
	g.line("li s3, 0x777")
	for i := 0; i < g.cfg.Steps; i++ {
		g.step("s2", "s4")
		g.step("s3", "s5")
	}
	out := "s3"
	if emitSecret {
		out = "s2"
	}
	g.line("li t0, UART_BASE")
	g.line("sw %s, UART_TX(t0)", out)
	g.line("li a0, 0")
	g.line("j exit")
	fmt.Fprintf(&g.b, "\t.data\n\t.align 2\nst_secret:\n\t.word 0x%08x\n", 0x5EC0_0000|g.rnd()&0xFFFF)
	for i := 1; i <= g.slot; i++ {
		fmt.Fprintf(&g.b, "\t.align 2\nst_slot%d:\n\t.word 0\n", i)
	}
	return g.b.String()
}

// runOne executes one generated program under the IFP-1 leak policy and
// classifies the outcome.
func runOne(seed uint32, cfg Config, emitSecret bool) *Failure {
	g := &gen{seed: seed, cfg: cfg}
	src := g.program(emitSecret)
	img, err := guest.Program(src)
	if err != nil {
		return &Failure{Seed: seed, EmitSecret: emitSecret, Problem: "generator", Detail: err.Error(), Source: src}
	}
	l := core.IFP1()
	lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
	secret := img.MustSymbol("st_secret")
	pol := core.NewPolicy(l, lc).
		WithOutput("uart0.tx", lc).
		WithRegion(core.RegionRule{
			Name: "secret", Start: secret, End: secret + 4,
			Classify: true, Class: hc,
		})
	pl, err := soc.New(soc.Config{Policy: pol})
	if err != nil {
		return &Failure{Seed: seed, EmitSecret: emitSecret, Problem: "platform", Detail: err.Error(), Source: src}
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		return &Failure{Seed: seed, EmitSecret: emitSecret, Problem: "load", Detail: err.Error(), Source: src}
	}
	runErr := pl.Run(10 * kernel.S)

	var v *core.Violation
	isViolation := errors.As(runErr, &v)
	switch {
	case emitSecret && !isViolation:
		return &Failure{
			Seed: seed, EmitSecret: true, Problem: "under-tainting",
			Detail: fmt.Sprintf("secret-derived console output not detected (err=%v)", runErr),
			Source: src,
		}
	case !emitSecret && isViolation:
		return &Failure{
			Seed: seed, EmitSecret: false, Problem: "over-tainting",
			Detail: v.Error(), Source: src,
		}
	case !emitSecret && runErr != nil:
		return &Failure{Seed: seed, EmitSecret: false, Problem: "runtime", Detail: runErr.Error(), Source: src}
	}
	return nil
}

// Run executes the stress campaign.
func Run(cfg Config) Outcome {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 50
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 8
	}
	var out Outcome
	for s := 1; s <= cfg.Seeds; s++ {
		seed := uint32(s) * 2654435761
		for _, emitSecret := range []bool{true, false} {
			out.Programs++
			if f := runOne(seed, cfg, emitSecret); f != nil {
				out.Failures = append(out.Failures, *f)
			}
		}
	}
	return out
}
