package stress

import (
	"strings"
	"testing"
)

func TestStressAllFeatures(t *testing.T) {
	out := Run(Config{Seeds: 20, Steps: 10, UseDMA: true, UseMMIO: true, UseCSR: true})
	if out.Programs != 40 {
		t.Errorf("programs = %d", out.Programs)
	}
	if !out.OK() {
		for _, f := range out.Failures {
			t.Errorf("seed %d (emitSecret=%v): %s: %s\n%s",
				f.Seed, f.EmitSecret, f.Problem, f.Detail, f.Source)
		}
	}
}

func TestStressCPUOnly(t *testing.T) {
	out := Run(Config{Seeds: 10, Steps: 6})
	if !out.OK() {
		t.Errorf("failures: %+v", out.Failures)
	}
}

func TestStressDefaults(t *testing.T) {
	out := Run(Config{Seeds: 2, Steps: 0}) // Steps defaults
	if out.Programs != 4 || !out.OK() {
		t.Errorf("outcome = %+v", out)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := &gen{seed: 99, cfg: Config{Steps: 5, UseDMA: true, UseMMIO: true, UseCSR: true}}
	g2 := &gen{seed: 99, cfg: Config{Steps: 5, UseDMA: true, UseMMIO: true, UseCSR: true}}
	if g1.program(true) != g2.program(true) {
		t.Error("same seed must generate the same program")
	}
	g3 := &gen{seed: 100, cfg: g1.cfg}
	if g1.program(true) == g3.program(true) {
		t.Error("different seeds should generate different programs")
	}
}

func TestGeneratorUsesRequestedHops(t *testing.T) {
	// With many steps, every enabled hop kind should appear.
	g := &gen{seed: 7, cfg: Config{Steps: 80, UseDMA: true, UseMMIO: true, UseCSR: true}}
	src := g.program(true)
	for _, want := range []string{"DMA_CTRL", "SENSOR_BASE", "mscratch"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated program never uses %s", want)
		}
	}
}
