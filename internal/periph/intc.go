package periph

import (
	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// IntC register map (byte offsets).
const (
	IntCPending = 0x00 // read-only: pending source bits
	IntCEnable  = 0x04 // read/write: enabled source bits
	IntCClaim   = 0x08 // read: highest-priority pending+enabled source number
	//         (claims it, clearing the pending bit); 0 = none.
	// write: re-raise a level source that is still asserted (complete).
	IntCSize = 0x0C
)

// IntC is a compact external-interrupt controller (the platform's PLIC
// substitute). Sources are numbered 1..31; lower numbers have higher
// priority. Level semantics: a source raised while another is claimed stays
// pending until claimed itself. The MEIP line to the core is
// (pending & enable) != 0.
type IntC struct {
	env       *Env
	pending   uint32
	enable    uint32
	levels    uint32 // raw line levels, for level-triggered re-arm on complete
	lastClaim uint32 // latched claim so multi-byte reads see one word
	setMEIP   func(bool)
}

// NewIntC creates the controller; setMEIP drives the core's external
// interrupt line.
func NewIntC(env *Env, setMEIP func(bool)) *IntC {
	return &IntC{env: env, setMEIP: setMEIP}
}

// SetSource drives interrupt source line n (1..31). Raising a line sets its
// pending bit; lowering only clears the level (the pending bit stays until
// claimed, as in a real interrupt controller latch).
func (ic *IntC) SetSource(n int, level bool) {
	if n < 1 || n > 31 {
		return
	}
	bit := uint32(1) << uint(n)
	if level {
		ic.levels |= bit
		ic.pending |= bit
	} else {
		ic.levels &^= bit
	}
	ic.updateMEIP()
}

// Source returns a closure driving line n; handy when wiring peripherals.
func (ic *IntC) Source(n int) func(bool) {
	return func(level bool) { ic.SetSource(n, level) }
}

// Pending returns the pending source bits; a waveform probe point.
func (ic *IntC) Pending() uint32 { return ic.pending }

// Enabled returns the enabled source bits; a waveform probe point.
func (ic *IntC) Enabled() uint32 { return ic.enable }

func (ic *IntC) updateMEIP() {
	if ic.setMEIP != nil {
		ic.setMEIP(ic.pending&ic.enable != 0)
	}
}

// Transport implements tlm.Target.
func (ic *IntC) Transport(p *tlm.Payload, delay *kernel.Time) {
	transport(ic, p, 10*kernel.NS, delay)
}

func (ic *IntC) readByte(off uint32) (core.TByte, bool) {
	switch {
	case off < IntCPending+4:
		return regRead(ic.pending, ic.env.Default, off-IntCPending), true
	case off < IntCEnable+4:
		return regRead(ic.enable, ic.env.Default, off-IntCEnable), true
	case off < IntCClaim+4:
		j := off - IntCClaim
		var claimed uint32
		if j == 0 {
			active := ic.pending & ic.enable
			for n := uint(1); n <= 31; n++ {
				if active&(1<<n) != 0 {
					claimed = uint32(n)
					ic.pending &^= 1 << n
					ic.updateMEIP()
					break
				}
			}
			// Stash for the remaining bytes of this word read.
			ic.lastClaim = claimed
		}
		return regRead(ic.lastClaim, ic.env.Default, j), true
	default:
		return core.TByte{}, false
	}
}

func (ic *IntC) writeByte(off uint32, b core.TByte) bool {
	switch {
	case off < IntCPending+4:
		return true // read-only
	case off < IntCEnable+4:
		ic.enable = regWrite(ic.enable, off-IntCEnable, b.V)
		ic.updateMEIP()
		return true
	case off < IntCClaim+4:
		// Complete: sources whose level is still high become pending again.
		if off == IntCClaim {
			n := uint(b.V)
			if n >= 1 && n <= 31 && ic.levels&(1<<n) != 0 {
				ic.pending |= 1 << n
			}
			ic.updateMEIP()
		}
		return true
	default:
		return false
	}
}
