package periph

import (
	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// CANFrame is a classic CAN 2.0 data frame (up to 8 payload bytes), with
// per-byte security tags.
type CANFrame struct {
	ID   uint32
	Data []core.TByte // length 0..8
}

// Clone deep-copies the frame.
func (f CANFrame) Clone() CANFrame {
	return CANFrame{ID: f.ID, Data: append([]core.TByte(nil), f.Data...)}
}

// CAN register map (byte offsets).
const (
	CANTxID   = 0x00 // TX frame ID
	CANTxLen  = 0x04 // TX payload length (0..8)
	CANTxData = 0x08 // 8 TX payload bytes
	CANTxCtrl = 0x10 // write 1: transmit
	CANRxID   = 0x14 // RX frame ID
	CANRxLen  = 0x18 // RX payload length; reads 0 when no frame
	CANRxData = 0x1C // 8 RX payload bytes
	CANRxCtrl = 0x24 // write 1: pop the received frame
	CANStatus = 0x28 // bit 0: RX frame available
	CANSize   = 0x2C
)

// CAN is the platform's CAN bus endpoint. The peer (e.g. the engine ECU of
// the immobilizer case study) lives on the host side: transmitted frames are
// passed to OnTransmit after the output-clearance check, and Deliver queues
// frames for the guest, classified by the configured RX class.
type CAN struct {
	env  *Env
	name string

	txClearanceSet bool
	txClearance    core.Tag
	rxClass        core.Tag

	txID  uint32
	txLen uint32
	txBuf [8]core.TByte

	rxQueue []CANFrame
	irq     func(bool)

	// OnTransmit is invoked for every transmitted frame.
	OnTransmit func(CANFrame)
	// TxLog records all transmitted frames.
	TxLog []CANFrame
}

// NewCAN creates the endpoint; irq is the RX-available line.
func NewCAN(env *Env, name string, irq func(bool)) *CAN {
	return &CAN{env: env, name: name, rxClass: env.Default, irq: irq}
}

// SetTxClearance enables the TX output-clearance check.
func (c *CAN) SetTxClearance(t core.Tag) { c.txClearanceSet = true; c.txClearance = t }

// SetRxClass sets the classification of delivered frames' bytes.
func (c *CAN) SetRxClass(t core.Tag) { c.rxClass = t }

// Deliver queues a frame from the bus peer. Plain bytes are classified with
// the RX class; pre-tagged frames keep their tags.
func (c *CAN) Deliver(id uint32, data []byte) {
	f := CANFrame{ID: id, Data: core.TagAll(data, c.rxClass)}
	c.rxQueue = append(c.rxQueue, f)
	c.noteDelivery(f)
	c.updateIRQ()
}

// DeliverTagged queues a frame with explicit tags.
func (c *CAN) DeliverTagged(f CANFrame) {
	f = f.Clone()
	c.rxQueue = append(c.rxQueue, f)
	c.noteDelivery(f)
	c.updateIRQ()
}

// noteDelivery records the frame arrival as an input event covering the RX
// payload registers, so a guest load of RXDATA links back to it.
func (c *CAN) noteDelivery(f CANFrame) {
	if c.env.Obs == nil {
		return
	}
	t := c.env.Default
	for _, b := range f.Data {
		t = c.env.lub(t, b.T)
	}
	c.env.Obs.OnInput(c.name, CANRxData, 8, c.name+".rx", f.ID, t)
}

func (c *CAN) updateIRQ() {
	if c.irq != nil {
		c.irq(len(c.rxQueue) > 0)
	}
}

// Transport implements tlm.Target.
func (c *CAN) Transport(p *tlm.Payload, delay *kernel.Time) {
	transport(c, p, 20*kernel.NS, delay)
}

func (c *CAN) rxHead() *CANFrame {
	if len(c.rxQueue) == 0 {
		return nil
	}
	return &c.rxQueue[0]
}

func (c *CAN) readByte(off uint32) (core.TByte, bool) {
	def := c.env.Default
	switch {
	case off < CANTxID+4:
		return regRead(c.txID, def, off-CANTxID), true
	case off < CANTxLen+4:
		return regRead(c.txLen, def, off-CANTxLen), true
	case off < CANTxData+8:
		return c.txBuf[off-CANTxData], true
	case off < CANTxCtrl+4:
		return regRead(0, def, off-CANTxCtrl), true
	case off < CANRxID+4:
		f := c.rxHead()
		if f == nil {
			return regRead(0, def, off-CANRxID), true
		}
		return regRead(f.ID, def, off-CANRxID), true
	case off < CANRxLen+4:
		f := c.rxHead()
		if f == nil {
			return regRead(0, def, off-CANRxLen), true
		}
		return regRead(uint32(len(f.Data)), def, off-CANRxLen), true
	case off < CANRxData+8:
		f := c.rxHead()
		j := off - CANRxData
		if f == nil || int(j) >= len(f.Data) {
			return core.TByte{V: 0, T: def}, true
		}
		return f.Data[j], true
	case off < CANRxCtrl+4:
		return regRead(0, def, off-CANRxCtrl), true
	case off < CANStatus+4:
		var v uint32
		if len(c.rxQueue) > 0 {
			v = 1
		}
		return regRead(v, def, off-CANStatus), true
	default:
		return core.TByte{}, false
	}
}

func (c *CAN) writeByte(off uint32, b core.TByte) bool {
	switch {
	case off < CANTxID+4:
		c.txID = regWrite(c.txID, off-CANTxID, b.V)
	case off < CANTxLen+4:
		c.txLen = regWrite(c.txLen, off-CANTxLen, b.V)
		if c.txLen > 8 {
			c.txLen = 8
		}
	case off < CANTxData+8:
		c.txBuf[off-CANTxData] = b
	case off < CANTxCtrl+4:
		if off == CANTxCtrl && b.V&1 != 0 {
			c.transmit()
		}
	case off < CANRxCtrl+4 && off >= CANRxCtrl:
		if off == CANRxCtrl && b.V&1 != 0 && len(c.rxQueue) > 0 {
			c.rxQueue = c.rxQueue[1:]
			c.updateIRQ()
		}
	case off < CANSize:
		// read-only registers: ignore writes
	default:
		return false
	}
	return true
}

// transmit checks each payload byte against the TX clearance, then hands the
// frame to the peer.
func (c *CAN) transmit() {
	f := CANFrame{ID: c.txID, Data: append([]core.TByte(nil), c.txBuf[:c.txLen]...)}
	for _, b := range f.Data {
		if !c.env.checkOutput(c.name+".tx", b, c.txClearanceSet, c.txClearance) {
			return
		}
	}
	c.TxLog = append(c.TxLog, f)
	if c.OnTransmit != nil {
		c.OnTransmit(f)
	}
}
