package periph

import (
	"bytes"
	"crypto/aes"
	"errors"
	"testing"
	"testing/quick"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// newEnv builds a peripheral environment over IFP-3 (or nil lattice when
// baseline is true).
func newEnv(baseline bool) (*Env, *core.Lattice) {
	sim := kernel.New()
	if baseline {
		return &Env{Sim: sim}, nil
	}
	l := core.IFP3()
	return &Env{Sim: sim, Lat: l, Default: l.MustTag("(LC,LI)")}, l
}

// rw is a test helper issuing a word transaction.
func rw(t *testing.T, tgt tlm.Target, cmd tlm.Command, addr uint32, data []core.TByte) tlm.Response {
	t.Helper()
	var delay kernel.Time
	p := tlm.Payload{Cmd: cmd, Addr: addr, Data: data}
	tgt.Transport(&p, &delay)
	return p.Resp
}

func readWord(t *testing.T, l *core.Lattice, tgt tlm.Target, addr uint32) core.Word {
	t.Helper()
	var buf [4]core.TByte
	if resp := rw(t, tgt, tlm.Read, addr, buf[:]); resp != tlm.OK {
		t.Fatalf("read at 0x%x: %v", addr, resp)
	}
	if l == nil {
		l = core.IFP1()
	}
	return core.WordFromBytes(l, buf[:])
}

func writeWord(t *testing.T, tgt tlm.Target, addr uint32, w core.Word) {
	t.Helper()
	var buf [4]core.TByte
	w.Bytes(buf[:])
	if resp := rw(t, tgt, tlm.Write, addr, buf[:]); resp != tlm.OK {
		t.Fatalf("write at 0x%x: %v", addr, resp)
	}
}

// ------------------------------------------------------------------ UART --

func TestUARTTransmitAndClearance(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	u := NewUART(env, "uart0", nil)
	u.SetTxClearance(l.MustTag("(LC,LI)"))

	// Public byte passes.
	writeWord(t, u, UARTTxData, core.W('A', env.Default))
	if string(u.Output()) != "A" {
		t.Fatalf("output = %q", u.Output())
	}
	// Confidential byte violates.
	writeWord(t, u, UARTTxData, core.W('S', l.MustTag("(HC,HI)")))
	err := env.Sim.Err()
	var v *core.Violation
	if !errors.As(err, &v) || v.Kind != core.KindOutputClearance || v.Port != "uart0.tx" {
		t.Fatalf("err = %v, want uart0.tx output violation", err)
	}
	if string(u.Output()) != "A" {
		t.Error("violating byte must not be transmitted")
	}
	if tagged := u.OutputTagged(); len(tagged) != 1 || tagged[0].V != 'A' {
		t.Error("OutputTagged mismatch")
	}
	u.ClearOutput()
	if len(u.Output()) != 0 {
		t.Error("ClearOutput")
	}
}

func TestUARTReceive(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	var irqLevel bool
	u := NewUART(env, "uart0", func(lv bool) { irqLevel = lv })
	li := l.MustTag("(LC,LI)")
	u.SetRxClass(li)

	if w := readWord(t, l, u, UARTRxData); w.V&UARTRxEmpty == 0 {
		t.Error("empty FIFO must read with the empty flag")
	}
	if w := readWord(t, l, u, UARTStatus); w.V&1 != 0 {
		t.Error("status must show no RX data")
	}
	u.Inject([]byte("hi"))
	if !irqLevel {
		t.Error("RX IRQ must raise on inject")
	}
	if w := readWord(t, l, u, UARTStatus); w.V&1 == 0 || w.V&2 == 0 {
		t.Error("status must show RX data and TX ready")
	}
	w := readWord(t, l, u, UARTRxData)
	if w.V != 'h' || w.T != li {
		t.Errorf("rx = %v", w)
	}
	w = readWord(t, l, u, UARTRxData)
	if w.V != 'i' {
		t.Errorf("rx = %v", w)
	}
	if !func() bool { w := readWord(t, l, u, UARTRxData); return w.V&UARTRxEmpty != 0 }() {
		t.Error("FIFO must be empty again")
	}
	if irqLevel {
		t.Error("RX IRQ must drop when drained")
	}

	hc := l.MustTag("(HC,HI)")
	u.InjectTagged([]core.TByte{{V: 'x', T: hc}})
	if w := readWord(t, l, u, UARTRxData); w.T != hc {
		t.Error("InjectTagged must keep tags")
	}
}

func TestUARTAddressError(t *testing.T) {
	env, _ := newEnv(false)
	defer env.Sim.Shutdown()
	u := NewUART(env, "uart0", nil)
	var buf [1]core.TByte
	if resp := rw(t, u, tlm.Read, UARTSize+4, buf[:]); resp != tlm.AddressError {
		t.Errorf("resp = %v", resp)
	}
	if resp := rw(t, u, tlm.Write, UARTSize+4, buf[:]); resp != tlm.AddressError {
		t.Errorf("resp = %v", resp)
	}
}

// ---------------------------------------------------------------- Sensor --

func TestSensorGeneratesTaggedFrames(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	irqs := 0
	s := NewSensor(env, "sensor0", func(lv bool) {
		if lv {
			irqs++
		}
	})
	hc := l.MustTag("(HC,LI)")
	s.SetDataTag(hc)

	if err := env.Sim.Run(100 * kernel.MS); err != nil {
		t.Fatal(err)
	}
	if s.Frames() != 4 || irqs != 4 {
		t.Errorf("frames = %d irqs = %d, want 4 each (25ms period over 100ms)", s.Frames(), irqs)
	}
	w := readWord(t, l, s, SensorFrame)
	if w.T != hc {
		t.Errorf("frame data tag = %s, want (HC,LI)", l.Name(w.T))
	}
	var b [1]core.TByte
	rw(t, s, tlm.Read, SensorFrame+63, b[:])
	if b[0].T != hc {
		t.Error("last frame byte must carry the data tag")
	}
	if b[0].V < 32 || b[0].V > 127 {
		t.Errorf("frame data %d not printable", b[0].V)
	}
}

func TestSensorDataTagRegister(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	s := NewSensor(env, "sensor0", nil)
	hc := l.MustTag("(HC,LI)")

	// Public write reconfigures the class.
	var b [1]core.TByte
	b[0] = core.B(byte(hc), env.Default)
	if resp := rw(t, s, tlm.Write, SensorDataTag, b[:]); resp != tlm.OK {
		t.Fatal(resp)
	}
	rb := [1]core.TByte{}
	rw(t, s, tlm.Read, SensorDataTag, rb[:])
	if rb[0].V != byte(hc) || rb[0].T != env.Default {
		t.Errorf("data_tag readback = %+v", rb[0])
	}

	// Tainted write to the config register violates (Fig. 4 line 47 cast).
	b[0] = core.B(0, l.MustTag("(HC,HI)"))
	rw(t, s, tlm.Write, SensorDataTag, b[:])
	var v *core.Violation
	if !errors.As(env.Sim.Err(), &v) {
		t.Fatalf("err = %v, want violation on tainted config write", env.Sim.Err())
	}

	// Out-of-range class value is ignored.
	env2, _ := newEnv(false)
	defer env2.Sim.Shutdown()
	s2 := NewSensor(env2, "sensor0", nil)
	b[0] = core.B(200, env2.Default)
	rw(t, s2, tlm.Write, SensorDataTag, b[:])
	rw(t, s2, tlm.Read, SensorDataTag, rb[:])
	if rb[0].V == 200 {
		t.Error("out-of-range class must not be accepted")
	}
}

func TestSensorFrameWritable(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	s := NewSensor(env, "sensor0", nil)
	hc := l.MustTag("(HC,HI)")
	var b [1]core.TByte
	b[0] = core.B(0x7f, hc)
	if resp := rw(t, s, tlm.Write, SensorFrame+5, b[:]); resp != tlm.OK {
		t.Fatal(resp)
	}
	rb := [1]core.TByte{}
	rw(t, s, tlm.Read, SensorFrame+5, rb[:])
	if rb[0] != b[0] {
		t.Error("frame write must keep value and tag")
	}
	if resp := rw(t, s, tlm.Read, SensorSize, rb[:]); resp != tlm.AddressError {
		t.Error("past-end read must fail")
	}
}

// ----------------------------------------------------------------- CLINT --

func TestCLINTTimer(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	var mtip bool
	c := NewCLINT(env, func(lv bool) { mtip = lv }, nil)

	if got := readWord(t, l, c, CLINTMtime); got.V != 0 {
		t.Errorf("mtime at t=0 = %d", got.V)
	}
	// Set mtimecmp to 100 µs.
	writeWord(t, c, CLINTMtimecmp, core.W(100, env.Default))
	writeWord(t, c, CLINTMtimecmp+4, core.W(0, env.Default))
	if mtip {
		t.Fatal("MTIP must be low before expiry")
	}
	if err := env.Sim.Run(99 * kernel.US); err != nil {
		t.Fatal(err)
	}
	if mtip {
		t.Fatal("MTIP raised too early")
	}
	if err := env.Sim.Run(101 * kernel.US); err != nil {
		t.Fatal(err)
	}
	if !mtip {
		t.Fatal("MTIP must raise at mtimecmp")
	}
	if got := readWord(t, l, c, CLINTMtime); got.V != 101 {
		t.Errorf("mtime = %d, want 101", got.V)
	}
	// Rewriting mtimecmp into the future drops the line.
	writeWord(t, c, CLINTMtimecmp, core.W(500, env.Default))
	if mtip {
		t.Error("MTIP must drop when mtimecmp moves to the future")
	}
	// Readback.
	if got := readWord(t, l, c, CLINTMtimecmp); got.V != 500 {
		t.Errorf("mtimecmp readback = %d", got.V)
	}
}

func TestCLINTImmediateExpiry(t *testing.T) {
	env, _ := newEnv(false)
	defer env.Sim.Shutdown()
	var mtip bool
	c := NewCLINT(env, func(lv bool) { mtip = lv }, nil)
	// mtimecmp = 0 expires immediately.
	writeWord(t, c, CLINTMtimecmp+4, core.W(0, env.Default))
	writeWord(t, c, CLINTMtimecmp, core.W(0, env.Default))
	if !mtip {
		t.Error("MTIP must raise for an already-expired compare")
	}
}

func TestCLINTMsip(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	var msip bool
	c := NewCLINT(env, func(bool) {}, func(lv bool) { msip = lv })
	writeWord(t, c, CLINTMsip, core.W(1, env.Default))
	if !msip {
		t.Error("MSIP must follow the msip register")
	}
	if got := readWord(t, l, c, CLINTMsip); got.V != 1 {
		t.Error("msip readback")
	}
	writeWord(t, c, CLINTMsip, core.W(0, env.Default))
	if msip {
		t.Error("MSIP must drop")
	}
}

// ------------------------------------------------------------------ IntC --

func TestIntCClaimPriority(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	var meip bool
	ic := NewIntC(env, func(lv bool) { meip = lv })

	ic.SetSource(5, true)
	if meip {
		t.Fatal("MEIP must stay low while the source is disabled")
	}
	writeWord(t, ic, IntCEnable, core.W(1<<5|1<<3, env.Default))
	if !meip {
		t.Fatal("MEIP must raise once enabled")
	}
	ic.SetSource(3, true)
	// Claim: lower number wins.
	if got := readWord(t, l, ic, IntCClaim); got.V != 3 {
		t.Errorf("claim = %d, want 3", got.V)
	}
	if got := readWord(t, l, ic, IntCClaim); got.V != 5 {
		t.Errorf("claim = %d, want 5", got.V)
	}
	if meip {
		t.Error("MEIP must drop when all claims taken")
	}
	if got := readWord(t, l, ic, IntCClaim); got.V != 0 {
		t.Errorf("claim = %d, want 0 when none pending", got.V)
	}
	// Complete with the level still high re-pends the source.
	writeWord(t, ic, IntCClaim, core.W(5, env.Default))
	if !meip {
		t.Error("complete of a still-high level source must re-raise MEIP")
	}
	ic.SetSource(5, false)
	readWord(t, l, ic, IntCClaim) // claim 5
	writeWord(t, ic, IntCClaim, core.W(5, env.Default))
	if meip {
		t.Error("complete of a lowered source must not re-raise")
	}
}

func TestIntCSourceClosureAndBounds(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	ic := NewIntC(env, nil)
	ic.Source(2)(true)
	ic.SetSource(0, true)  // out of range: ignored
	ic.SetSource(32, true) // out of range: ignored
	if got := readWord(t, l, ic, IntCPending); got.V != 1<<2 {
		t.Errorf("pending = 0x%x", got.V)
	}
}

// ------------------------------------------------------------------- DMA --

func TestDMACopyPreservesTags(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	hc := l.MustTag("(HC,HI)")

	bus := tlm.NewBus()
	ram := make([]core.TByte, 256)
	bus.MustMap("ram", 0x1000, 256, tlm.TargetFunc(func(p *tlm.Payload, d *kernel.Time) {
		switch p.Cmd {
		case tlm.Read:
			copy(p.Data, ram[p.Addr:])
		case tlm.Write:
			copy(ram[p.Addr:], p.Data)
		}
		p.Resp = tlm.OK
	}))
	var irq bool
	dma := NewDMA(env, bus, "dma0", func(lv bool) { irq = lv })
	bus.MustMap("dma", 0x2000, DMASize, dma)

	// Secret bytes at 0x1000..0x100F.
	for i := 0; i < 16; i++ {
		ram[i] = core.TByte{V: byte(i), T: hc}
	}
	writeWord(t, dma, DMASrc, core.W(0x1000, env.Default))
	writeWord(t, dma, DMADst, core.W(0x1080, env.Default))
	writeWord(t, dma, DMALen, core.W(16, env.Default))
	writeWord(t, dma, DMACtrl, core.W(1, env.Default))

	if got := readWord(t, l, dma, DMACtrl); got.V&1 == 0 {
		t.Error("DMA must be busy right after start")
	}
	if err := env.Sim.Run(10 * kernel.MS); err != nil {
		t.Fatal(err)
	}
	if !irq {
		t.Error("completion IRQ must fire")
	}
	if got := readWord(t, l, dma, DMAStatus); got.V != 1 {
		t.Errorf("done count = %d", got.V)
	}
	for i := 0; i < 16; i++ {
		if ram[0x80+i].V != byte(i) || ram[0x80+i].T != hc {
			t.Fatalf("byte %d: %+v — DMA must move tags with data", i, ram[0x80+i])
		}
	}
	// Register readbacks.
	if readWord(t, l, dma, DMASrc).V != 0x1000 || readWord(t, l, dma, DMADst).V != 0x1080 ||
		readWord(t, l, dma, DMALen).V != 16 {
		t.Error("register readback")
	}
}

func TestDMAErrors(t *testing.T) {
	env, _ := newEnv(false)
	defer env.Sim.Shutdown()
	bus := tlm.NewBus()
	dma := NewDMA(env, bus, "dma0", nil)
	writeWord(t, dma, DMASrc, core.W(0xdead0000, env.Default))
	writeWord(t, dma, DMALen, core.W(4, env.Default))
	writeWord(t, dma, DMACtrl, core.W(1, env.Default))
	if env.Sim.Err() == nil {
		t.Error("unmapped source must stop the simulation")
	}

	env2, _ := newEnv(false)
	defer env2.Sim.Shutdown()
	dma2 := NewDMA(env2, bus, "dma0", nil)
	writeWord(t, dma2, DMALen, core.W(maxDMALen+1, env2.Default))
	writeWord(t, dma2, DMACtrl, core.W(1, env2.Default))
	if env2.Sim.Err() == nil {
		t.Error("oversized transfer must stop the simulation")
	}

	var buf [1]core.TByte
	if resp := rw(t, dma2, tlm.Read, DMASize, buf[:]); resp != tlm.AddressError {
		t.Error("past-end access must fail")
	}
}

// ------------------------------------------------------------------- CAN --

func TestCANTransmitReceive(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	var irq bool
	c := NewCAN(env, "can0", func(lv bool) { irq = lv })
	li := l.MustTag("(LC,LI)")
	c.SetTxClearance(li)
	c.SetRxClass(li)

	var got []CANFrame
	c.OnTransmit = func(f CANFrame) { got = append(got, f) }

	// Guest-side transmit.
	writeWord(t, c, CANTxID, core.W(0x123, env.Default))
	writeWord(t, c, CANTxLen, core.W(3, env.Default))
	var b [3]core.TByte
	copy(b[:], core.TagAll([]byte{9, 8, 7}, env.Default))
	rw(t, c, tlm.Write, CANTxData, b[:])
	writeWord(t, c, CANTxCtrl, core.W(1, env.Default))
	if len(got) != 1 || got[0].ID != 0x123 || len(got[0].Data) != 3 || got[0].Data[2].V != 7 {
		t.Fatalf("transmit = %+v", got)
	}
	if len(c.TxLog) != 1 {
		t.Error("TxLog must record frames")
	}

	// Host-side delivery.
	c.Deliver(0x456, []byte{1, 2})
	if !irq {
		t.Error("RX IRQ must raise")
	}
	if readWord(t, l, c, CANStatus).V&1 == 0 {
		t.Error("status must show a frame")
	}
	if readWord(t, l, c, CANRxID).V != 0x456 || readWord(t, l, c, CANRxLen).V != 2 {
		t.Error("rx id/len")
	}
	var rb [2]core.TByte
	rw(t, c, tlm.Read, CANRxData, rb[:])
	if rb[0].V != 1 || rb[1].V != 2 || rb[0].T != li {
		t.Errorf("rx data = %+v", rb)
	}
	writeWord(t, c, CANRxCtrl, core.W(1, env.Default)) // pop
	if readWord(t, l, c, CANStatus).V&1 != 0 || irq {
		t.Error("queue must be empty after pop")
	}
	if readWord(t, l, c, CANRxLen).V != 0 {
		t.Error("empty queue must read len 0")
	}
}

func TestCANTxClearanceViolation(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	c := NewCAN(env, "can0", nil)
	c.SetTxClearance(l.MustTag("(LC,LI)"))
	sent := false
	c.OnTransmit = func(CANFrame) { sent = true }

	writeWord(t, c, CANTxLen, core.W(1, env.Default))
	var b [1]core.TByte
	b[0] = core.B(0x41, l.MustTag("(HC,HI)"))
	rw(t, c, tlm.Write, CANTxData, b[:])
	writeWord(t, c, CANTxCtrl, core.W(1, env.Default))

	var v *core.Violation
	if !errors.As(env.Sim.Err(), &v) || v.Port != "can0.tx" {
		t.Fatalf("err = %v, want can0.tx violation", env.Sim.Err())
	}
	if sent {
		t.Error("violating frame must not reach the peer")
	}
}

func TestCANDeliverTaggedAndClone(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	c := NewCAN(env, "can0", nil)
	hc := l.MustTag("(HC,HI)")
	f := CANFrame{ID: 7, Data: []core.TByte{{V: 1, T: hc}}}
	c.DeliverTagged(f)
	f.Data[0].V = 99 // mutate the original; the queued clone must not change
	var rb [1]core.TByte
	rw(t, c, tlm.Read, CANRxData, rb[:])
	if rb[0].V != 1 || rb[0].T != hc {
		t.Errorf("rx = %+v", rb[0])
	}
}

// ------------------------------------------------------------------- AES --

func TestAES128AgainstStdlib(t *testing.T) {
	f := func(key, pt [16]byte) bool {
		blk, err := aes.NewCipher(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 16)
		blk.Encrypt(want, pt[:])
		got := aesEncryptBlock(key, pt)
		return bytes.Equal(got[:], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAES128FIPSVector(t *testing.T) {
	// FIPS-197 Appendix B.
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := [16]byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	want := [16]byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}
	if got := aesEncryptBlock(key, pt); got != want {
		t.Fatalf("got % x, want % x", got, want)
	}
}

func TestAESPeripheralDeclassifies(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	hcHI := l.MustTag("(HC,HI)")
	lcLI := l.MustTag("(LC,LI)")
	a := NewAES(env, "aes0", core.NewDeclassifier(l))
	// The trusted engine admits every class — its input clearance is the
	// lattice top (HC,LI): both the secret key (HC,HI) and the untrusted
	// challenge (LC,LI) flow to it.
	top, ok := l.Top()
	if !ok {
		t.Fatal("IFP-3 must have a top")
	}
	a.SetInputClearance(top)
	a.SetOutputClass(lcLI)

	// Secret key in, public challenge in.
	key := core.TagAll(bytes.Repeat([]byte{0x2b}, 16), hcHI)
	rw(t, a, tlm.Write, AESKey, key)
	pt := core.TagAll(bytes.Repeat([]byte{0x32}, 16), lcLI)
	rw(t, a, tlm.Write, AESDataIn, pt)
	writeWord(t, a, AESCtrl, core.W(1, env.Default))
	if env.Sim.Err() != nil {
		t.Fatal(env.Sim.Err())
	}
	if readWord(t, l, a, AESCtrl).V&1 == 0 {
		t.Error("done bit must be set")
	}
	var ct [16]core.TByte
	rw(t, a, tlm.Read, AESDataOut, ct[:])
	var wantKey, wantPt [16]byte
	copy(wantKey[:], core.Values(key))
	copy(wantPt[:], core.Values(pt))
	want := aesEncryptBlock(wantKey, wantPt)
	for i := range ct {
		if ct[i].V != want[i] {
			t.Fatalf("ciphertext byte %d wrong", i)
		}
		if ct[i].T != lcLI {
			t.Fatalf("ciphertext byte %d tag = %s, want declassified (LC,LI)", i, l.Name(ct[i].T))
		}
	}
	// Key must not read back.
	var kb [16]core.TByte
	rw(t, a, tlm.Read, AESKey, kb[:])
	for _, b := range kb {
		if b.V != 0 {
			t.Fatal("key readback must be zero")
		}
	}
}

func TestAESWithoutDeclassifierKeepsTaint(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	hcHI := l.MustTag("(HC,HI)")
	a := NewAES(env, "aes0", nil)
	rw(t, a, tlm.Write, AESKey, core.TagAll(make([]byte, 16), hcHI))
	rw(t, a, tlm.Write, AESDataIn, core.TagAll(make([]byte, 16), env.Default))
	writeWord(t, a, AESCtrl, core.W(1, env.Default))
	var ct [16]core.TByte
	rw(t, a, tlm.Read, AESDataOut, ct[:])
	folded := l.LUB(hcHI, env.Default)
	if ct[0].T != folded {
		t.Errorf("without a declassifier the ciphertext keeps the folded tag, got %s", l.Name(ct[0].T))
	}
}

func TestAESInputClearance(t *testing.T) {
	// An AES configured with only (LC,LI) clearance must reject secret keys.
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	a := NewAES(env, "aes0", core.NewDeclassifier(l))
	a.SetInputClearance(l.MustTag("(LC,LI)"))
	rw(t, a, tlm.Write, AESKey, core.TagAll(make([]byte, 16), l.MustTag("(HC,HI)")))
	var v *core.Violation
	if !errors.As(env.Sim.Err(), &v) || v.Port != "aes0.in" {
		t.Fatalf("err = %v, want aes0.in violation", env.Sim.Err())
	}
}

// --------------------------------------------------------------- SysCtrl --

func TestSysCtrlExit(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	var code uint32 = 0xffffffff
	s := NewSysCtrl(env, func(c uint32) { code = c })
	writeWord(t, s, SysCtrlExit, core.W(0x1234, env.Default))
	if exited, c := s.Exited(); !exited || c != 0x1234 || code != 0x1234 {
		t.Errorf("exit = %v %d (callback %d)", exited, c, code)
	}
	// Second write is ignored.
	writeWord(t, s, SysCtrlExit, core.W(0x9999, env.Default))
	if _, c := s.Exited(); c != 0x1234 {
		t.Error("second exit write must be ignored")
	}
	if got := readWord(t, l, s, SysCtrlExit); got.V != 0x1234 {
		t.Error("exit code readback")
	}
}

func TestSysCtrlTimeAndErrors(t *testing.T) {
	env, l := newEnv(false)
	defer env.Sim.Shutdown()
	s := NewSysCtrl(env, nil)
	env.Sim.At(42*kernel.US, func() {})
	if err := env.Sim.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}
	if got := readWord(t, l, s, SysCtrlTime); got.V != 42 {
		t.Errorf("time = %d, want 42", got.V)
	}
	var buf [4]core.TByte
	if resp := rw(t, s, tlm.Read, SysCtrlSize, buf[:]); resp != tlm.AddressError {
		t.Error("past-end must fail")
	}
	p := tlm.Payload{Cmd: tlm.Command(7), Addr: 0, Data: buf[:]}
	var d kernel.Time
	s.Transport(&p, &d)
	if p.Resp != tlm.CommandError {
		t.Error("bad command must fail")
	}
}

// --------------------------------------------------------------- baseline --

func TestBaselineEnvSkipsChecks(t *testing.T) {
	env, _ := newEnv(true)
	defer env.Sim.Shutdown()
	u := NewUART(env, "uart0", nil)
	u.SetTxClearance(1)
	// With no lattice, any tag passes.
	writeWord(t, u, UARTTxData, core.W('Z', 3))
	if env.Sim.Err() != nil {
		t.Fatal("baseline platform must not enforce clearance")
	}
	if string(u.Output()) != "Z" {
		t.Error("output")
	}
	if env.lub(1, 2) != 0 {
		t.Error("baseline lub must be 0")
	}
}
