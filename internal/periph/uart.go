package periph

import (
	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// UART register map (byte offsets).
const (
	UARTTxData = 0x00 // write: transmit one byte (clearance checked)
	UARTRxData = 0x04 // read: bits 7:0 data, bit 31 set when FIFO empty
	UARTStatus = 0x08 // bit 0: RX data available; bit 1: TX ready (always 1)
	UARTSize   = 0x0C
)

// UARTRxEmpty is set in the RXDATA read value when the FIFO is empty.
const UARTRxEmpty = 1 << 31

// UART is the platform console. Host code injects RX bytes (classified per
// the policy's input classification) and reads the transmitted output. TX is
// an output interface in the sense of the paper: each transmitted byte is
// checked against the port's clearance.
type UART struct {
	env  *Env
	name string

	txClearanceSet bool
	txClearance    core.Tag
	rxClass        core.Tag

	rxFIFO []core.TByte
	tx     []core.TByte

	// rxLatch holds the RXDATA word assembled when its first byte is read,
	// so multi-byte register reads see one consistent value.
	rxLatch    uint32
	rxLatchTag core.Tag

	irq func(level bool) // external interrupt line (level = RX available)
}

// NewUART creates a UART. name is the port prefix ("uart0"); the TX
// clearance comes from policy.Outputs[name+".tx"] via the platform builder,
// rxClass is the classification assigned to injected input.
func NewUART(env *Env, name string, irq func(bool)) *UART {
	return &UART{env: env, name: name, rxClass: env.Default, irq: irq}
}

// SetTxClearance enables the TX output-clearance check.
func (u *UART) SetTxClearance(t core.Tag) { u.txClearanceSet = true; u.txClearance = t }

// SetRxClass sets the classification of injected input bytes.
func (u *UART) SetRxClass(t core.Tag) { u.rxClass = t }

// Inject queues console input; each byte is classified with the configured
// RX class. The RX interrupt line is raised while data is available.
func (u *UART) Inject(data []byte) {
	for _, b := range data {
		u.rxFIFO = append(u.rxFIFO, core.TByte{V: b, T: u.rxClass})
	}
	u.updateIRQ()
}

// InjectTagged queues console input with explicit per-byte tags; used by
// attack harnesses that model multiple input sources.
func (u *UART) InjectTagged(data []core.TByte) {
	u.rxFIFO = append(u.rxFIFO, data...)
	u.updateIRQ()
}

// Output returns everything transmitted so far as plain bytes.
func (u *UART) Output() []byte { return core.Values(u.tx) }

// OutputTagged returns the transmitted bytes with their tags.
func (u *UART) OutputTagged() []core.TByte { return append([]core.TByte(nil), u.tx...) }

// ClearOutput discards the TX log.
func (u *UART) ClearOutput() { u.tx = u.tx[:0] }

// RxPending returns the number of injected bytes the guest has not read yet;
// a waveform probe point.
func (u *UART) RxPending() int { return len(u.rxFIFO) }

// TxCount returns the number of bytes transmitted so far; a waveform probe
// point.
func (u *UART) TxCount() int { return len(u.tx) }

// LastTx returns the most recently transmitted byte (0 before any TX); a
// waveform probe point.
func (u *UART) LastTx() byte {
	if len(u.tx) == 0 {
		return 0
	}
	return u.tx[len(u.tx)-1].V
}

func (u *UART) updateIRQ() {
	if u.irq != nil {
		u.irq(len(u.rxFIFO) > 0)
	}
}

// Transport implements tlm.Target.
func (u *UART) Transport(p *tlm.Payload, delay *kernel.Time) {
	transport(u, p, 10*kernel.NS, delay)
}

func (u *UART) readByte(off uint32) (core.TByte, bool) {
	switch {
	case off >= UARTRxData && off < UARTRxData+4:
		j := off - UARTRxData
		// The LSB read pops the FIFO and latches the whole register value;
		// the remaining bytes of a word-sized read use the latch.
		if j == 0 {
			if len(u.rxFIFO) == 0 {
				u.rxLatch, u.rxLatchTag = UARTRxEmpty, u.env.Default
			} else {
				head := u.rxFIFO[0]
				u.rxFIFO = u.rxFIFO[1:]
				u.rxLatch, u.rxLatchTag = uint32(head.V), head.T
				if u.env.Obs != nil {
					u.env.Obs.OnInput(u.name, UARTRxData, 4, u.name+".rx",
						uint32(head.V), head.T)
				}
				u.updateIRQ()
			}
		}
		return regRead(u.rxLatch, u.rxLatchTag, j), true
	case off >= UARTStatus && off < UARTStatus+4:
		var v uint32 = 1 << 1 // TX always ready
		if len(u.rxFIFO) > 0 {
			v |= 1
		}
		return regRead(v, u.env.Default, off-UARTStatus), true
	case off < UARTTxData+4:
		return regRead(0, u.env.Default, off-UARTTxData), true
	default:
		return core.TByte{}, false
	}
}

func (u *UART) writeByte(off uint32, b core.TByte) bool {
	switch {
	case off == UARTTxData:
		if !u.env.checkOutput(u.name+".tx", b, u.txClearanceSet, u.txClearance) {
			return true // simulation is stopping; complete the transaction
		}
		u.tx = append(u.tx, b)
		return true
	case off > UARTTxData && off < UARTTxData+4:
		return true // upper bytes of a word-sized TX write are ignored
	case off >= UARTRxData && off < UARTStatus+4:
		return true // read-only registers: writes ignored
	default:
		return false
	}
}
