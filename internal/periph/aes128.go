package periph

// AES-128 block cipher, implemented from first principles (FIPS-197). The
// immobilizer case study's AES peripheral encrypts the challenge with the
// secret PIN-derived key; the implementation is validated against the Go
// standard library's crypto/aes in the tests.

// aesSbox is the AES S-box, generated at init from the GF(2^8) inverse and
// the affine transform rather than pasted as a table.
var aesSbox [256]byte

// aesRcon holds the round constants for key expansion.
var aesRcon [11]byte

func init() {
	// Multiplicative inverses via exhaustive search are fine at init time.
	inv := func(x byte) byte {
		if x == 0 {
			return 0
		}
		for y := 1; y < 256; y++ {
			if gmul(x, byte(y)) == 1 {
				return byte(y)
			}
		}
		panic("unreachable")
	}
	for i := 0; i < 256; i++ {
		b := inv(byte(i))
		// Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
		s := b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63
		aesSbox[i] = s
	}
	rc := byte(1)
	for i := 1; i <= 10; i++ {
		aesRcon[i] = rc
		rc = gmul(rc, 2)
	}
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

// gmul multiplies in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// aesExpandKey expands a 16-byte key into 11 round keys (176 bytes).
func aesExpandKey(key [16]byte) [176]byte {
	var w [176]byte
	copy(w[:16], key[:])
	for i := 16; i < 176; i += 4 {
		var t [4]byte
		copy(t[:], w[i-4:i])
		if i%16 == 0 {
			t[0], t[1], t[2], t[3] = aesSbox[t[1]]^aesRcon[i/16], aesSbox[t[2]], aesSbox[t[3]], aesSbox[t[0]]
		}
		for j := 0; j < 4; j++ {
			w[i+j] = w[i-16+j] ^ t[j]
		}
	}
	return w
}

// aesEncryptBlock encrypts one 16-byte block with AES-128.
func aesEncryptBlock(key, in [16]byte) [16]byte {
	w := aesExpandKey(key)
	var s [16]byte
	copy(s[:], in[:])
	addRoundKey(&s, w[0:16])
	for round := 1; round <= 9; round++ {
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, w[16*round:16*round+16])
	}
	subBytes(&s)
	shiftRows(&s)
	addRoundKey(&s, w[160:176])
	return s
}

func addRoundKey(s *[16]byte, k []byte) {
	for i := range s {
		s[i] ^= k[i]
	}
}

func subBytes(s *[16]byte) {
	for i := range s {
		s[i] = aesSbox[s[i]]
	}
}

// shiftRows operates on the column-major state layout of FIPS-197: byte i
// is row i%4, column i/4.
func shiftRows(s *[16]byte) {
	var t [16]byte
	copy(t[:], s[:])
	for r := 1; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r+4*c] = t[r+4*((c+r)%4)]
		}
	}
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		col := s[4*c : 4*c+4]
		a0, a1, a2, a3 := col[0], col[1], col[2], col[3]
		col[0] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		col[1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		col[2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		col[3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	}
}
