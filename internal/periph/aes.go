package periph

import (
	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// AES register map (byte offsets).
const (
	AESKey     = 0x00 // 16-byte key (write-only; reads as zero)
	AESDataIn  = 0x10 // 16-byte plaintext
	AESDataOut = 0x20 // 16-byte ciphertext (read-only)
	AESCtrl    = 0x30 // write 1: encrypt; read bit 0: done
	AESSize    = 0x34
)

// AES is the trusted crypto engine of the immobilizer case study. It is the
// platform's declassification point (paper Section IV-A): the key and
// plaintext may carry high classifications (the peripheral's input clearance
// permits them), and the produced ciphertext is declassified to the
// configured output class so it may leave on public interfaces — "changing
// the data classification to non-confidential after it has been encrypted".
//
// Declassification is a capability: the platform builder hands the AES its
// core.Declassifier; no other peripheral holds one.
type AES struct {
	env  *Env
	name string

	inClearanceSet bool
	inClearance    core.Tag // classes allowed to enter the engine
	decl           *core.Declassifier
	outClass       core.Tag // class of produced ciphertext

	key  [16]core.TByte
	in   [16]core.TByte
	out  [16]core.TByte
	done bool
}

// NewAES creates the engine. decl may be nil (baseline platform); then the
// ciphertext keeps the folded input tag.
func NewAES(env *Env, name string, decl *core.Declassifier) *AES {
	a := &AES{env: env, name: name, decl: decl, outClass: env.Default}
	return a
}

// SetInputClearance restricts which classes may be written into the engine.
// The immobilizer policy gives the AES (HC,HI) clearance, so the secret key
// is allowed in while ordinary peripherals reject it.
func (a *AES) SetInputClearance(t core.Tag) { a.inClearanceSet = true; a.inClearance = t }

// SetOutputClass configures the declassified ciphertext class.
func (a *AES) SetOutputClass(t core.Tag) { a.outClass = t }

// Transport implements tlm.Target.
func (a *AES) Transport(p *tlm.Payload, delay *kernel.Time) {
	transport(a, p, 40*kernel.NS, delay)
}

func (a *AES) readByte(off uint32) (core.TByte, bool) {
	switch {
	case off < AESKey+16:
		// Key is write-only: reading back would be a trivial leak.
		return core.TByte{V: 0, T: a.env.Default}, true
	case off < AESDataIn+16:
		return a.in[off-AESDataIn], true
	case off < AESDataOut+16:
		return a.out[off-AESDataOut], true
	case off < AESCtrl+4:
		var v uint32
		if a.done {
			v = 1
		}
		return regRead(v, a.env.Default, off-AESCtrl), true
	default:
		return core.TByte{}, false
	}
}

func (a *AES) writeByte(off uint32, b core.TByte) bool {
	if off < AESDataOut && a.inClearanceSet && a.env.Lat != nil {
		if a.env.Audit != nil {
			a.env.Audit.Output(a.name+".in").Checks++
		}
		if !a.env.Lat.AllowedFlow(b.T, a.inClearance) {
			v := core.NewViolation(a.env.Lat, core.KindOutputClearance, b.T, a.inClearance).
				WithPort(a.name + ".in")
			if a.env.Obs != nil {
				a.env.Obs.Checks.Input++
				a.env.Obs.OnViolation(v, a.env.Obs.LastStore(), 0)
			}
			a.env.Sim.Fatal(v)
			return true
		}
	}
	switch {
	case off < AESKey+16:
		a.key[off-AESKey] = b
		a.done = false
	case off < AESDataIn+16:
		a.in[off-AESDataIn] = b
		a.done = false
	case off < AESDataOut+16:
		// read-only
	case off < AESCtrl+4:
		if off == AESCtrl && b.V&1 != 0 {
			a.encrypt()
		}
	default:
		return false
	}
	return true
}

// encrypt runs AES-128 over the input block and declassifies the output.
func (a *AES) encrypt() {
	var key, in [16]byte
	var folded core.Tag = a.env.Default
	for i := 0; i < 16; i++ {
		key[i] = a.key[i].V
		in[i] = a.in[i].V
		folded = a.env.lub(folded, a.env.lub(a.key[i].T, a.in[i].T))
	}
	ct := aesEncryptBlock(key, in)
	outTag := folded
	if a.decl != nil {
		// The declassification step: ciphertext leaves with the configured
		// public class even though it depends on the secret key.
		outTag = a.outClass
		if a.env.Obs != nil {
			a.env.Obs.OnDeclassify(a.name, AESKey, 48, AESDataOut, 16, folded, outTag)
		}
	}
	for i := 0; i < 16; i++ {
		a.out[i] = core.TByte{V: ct[i], T: outTag}
	}
	a.done = true
}
