package periph

import (
	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// Sensor register map (byte offsets).
const (
	SensorFrame     = 0x00 // 64-byte memory-mapped data frame
	SensorFrameSize = 64
	SensorDataTag   = 0x40 // 8-bit security class of generated data
	SensorSize      = 0x44
)

// SensorPeriod is the frame generation period: 25 ms, i.e. 40 frames per
// second, matching the paper's Fig. 4.
const SensorPeriod = 25 * kernel.MS

// Sensor is the paper's Fig. 4 peripheral: a SystemC-thread-driven sensor
// with a memory-mapped 64-byte data frame. A run thread periodically fills
// the frame with pseudo-random printable data tagged with the configurable
// data_tag register, then raises an interrupt.
//
// Writing the data_tag register requires the written byte to satisfy the
// default (public) clearance — the paper's overloaded conversion "requires
// by default a low confidentiality (LC) tag, throwing an error otherwise"
// (Fig. 4, line 47).
type Sensor struct {
	env   *Env
	name  string
	frame [SensorFrameSize]core.TByte
	tag   core.Tag

	seed   uint32
	frames uint64
	irq    func(level bool)
}

// NewSensor creates the sensor and spawns its generation thread. irq pulses
// once per generated frame.
func NewSensor(env *Env, name string, irq func(bool)) *Sensor {
	s := &Sensor{env: env, name: name, tag: env.Default, seed: 0x5eed5eed, irq: irq}
	env.Sim.Spawn(name+".run", s.run)
	return s
}

// SetDataTag configures the security class of generated data (the
// classification of this input source).
func (s *Sensor) SetDataTag(t core.Tag) { s.tag = t }

// Frames returns the number of frames generated so far.
func (s *Sensor) Frames() uint64 { return s.frames }

// run is the SC_THREAD equivalent of the paper's Fig. 4 run() loop.
func (s *Sensor) run(p *kernel.Proc) {
	for {
		p.Wait(SensorPeriod)
		for i := range s.frame {
			// Pseudo-random printable data, classified with data_tag
			// (Fig. 4 line 21: rand() % 96 + 128 — printable range here).
			s.seed = s.seed*1664525 + 1013904223
			s.frame[i] = core.TByte{V: byte(s.seed>>24%96 + 32), T: s.tag}
		}
		s.frames++
		if s.irq != nil {
			s.irq(true)
		}
	}
}

// Transport implements tlm.Target.
func (s *Sensor) Transport(p *tlm.Payload, delay *kernel.Time) {
	transport(s, p, 20*kernel.NS, delay)
}

func (s *Sensor) readByte(off uint32) (core.TByte, bool) {
	switch {
	case off < SensorFrameSize:
		return s.frame[off], true
	case off == SensorDataTag:
		// The configured security class itself is not confidential
		// (Fig. 4 line 44).
		return core.TByte{V: byte(s.tag), T: s.env.Default}, true
	default:
		return core.TByte{}, false
	}
}

func (s *Sensor) writeByte(off uint32, b core.TByte) bool {
	switch {
	case off < SensorFrameSize:
		s.frame[off] = b
		return true
	case off == SensorDataTag:
		// Configuration write: the value is consumed as a plain byte, which
		// requires public clearance (implicit-cast check of Fig. 4).
		if !s.env.checkOutput(s.name+".data_tag", b, s.env.Lat != nil, s.env.Default) {
			return true
		}
		if s.env.Lat != nil && int(b.V) >= s.env.Lat.Size() {
			return true // out-of-range class: ignore the write
		}
		s.tag = core.Tag(b.V)
		return true
	default:
		return false
	}
}
