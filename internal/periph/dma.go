package periph

import (
	"fmt"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// DMA register map (byte offsets).
const (
	DMASrc    = 0x00 // source bus address
	DMADst    = 0x04 // destination bus address
	DMALen    = 0x08 // length in bytes
	DMACtrl   = 0x0C // write 1: start; read bit 0: busy
	DMAStatus = 0x10 // completed transfer count
	DMASize   = 0x14
)

// DMABytesPerUS is the modeled transfer throughput.
const DMABytesPerUS = 64

// maxDMALen bounds a single transfer; larger requests are a guest bug.
const maxDMALen = 1 << 20

// DMA is a memory-to-memory copy engine and the showcase of fine-grained
// HW/SW interaction tracking: it moves data over the bus as tainted bytes,
// so security tags propagate through DMA transfers exactly as through CPU
// copies — the flow the paper says source-level DIFT tools miss.
type DMA struct {
	env  *Env
	bus  *tlm.Bus
	name string

	src, dst, length uint32
	busy             bool
	done             uint32
	irq              func(bool)
}

// NewDMA creates the engine. Transfers are issued on the given bus; irq
// pulses on completion.
func NewDMA(env *Env, bus *tlm.Bus, name string, irq func(bool)) *DMA {
	return &DMA{env: env, bus: bus, name: name, irq: irq}
}

// Transport implements tlm.Target.
func (d *DMA) Transport(p *tlm.Payload, delay *kernel.Time) {
	transport(d, p, 10*kernel.NS, delay)
}

// Busy reports whether a transfer is in flight; a waveform probe point.
func (d *DMA) Busy() bool { return d.busy }

// Transfers returns the completed transfer count; a waveform probe point.
func (d *DMA) Transfers() uint32 { return d.done }

func (d *DMA) readByte(off uint32) (core.TByte, bool) {
	def := d.env.Default
	switch {
	case off < DMASrc+4:
		return regRead(d.src, def, off-DMASrc), true
	case off < DMADst+4:
		return regRead(d.dst, def, off-DMADst), true
	case off < DMALen+4:
		return regRead(d.length, def, off-DMALen), true
	case off < DMACtrl+4:
		var v uint32
		if d.busy {
			v = 1
		}
		return regRead(v, def, off-DMACtrl), true
	case off < DMAStatus+4:
		return regRead(d.done, def, off-DMAStatus), true
	default:
		return core.TByte{}, false
	}
}

func (d *DMA) writeByte(off uint32, b core.TByte) bool {
	switch {
	case off < DMASrc+4:
		d.src = regWrite(d.src, off-DMASrc, b.V)
	case off < DMADst+4:
		d.dst = regWrite(d.dst, off-DMADst, b.V)
	case off < DMALen+4:
		d.length = regWrite(d.length, off-DMALen, b.V)
	case off < DMACtrl+4:
		if off == DMACtrl && b.V&1 != 0 {
			d.start()
		}
	case off < DMAStatus+4:
		// read-only
	default:
		return false
	}
	return true
}

// start performs the copy and schedules the completion interrupt after the
// modeled transfer time.
func (d *DMA) start() {
	if d.busy {
		return
	}
	if d.length > maxDMALen {
		d.env.Sim.Fatal(fmt.Errorf("%s: transfer length %d exceeds limit", d.name, d.length))
		return
	}
	d.busy = true
	src, dst, n := d.src, d.dst, d.length
	// The copy happens through ordinary tainted bus transactions, chunked
	// like a real burst engine.
	var delay kernel.Time
	buf := make([]core.TByte, 64)
	for n > 0 {
		chunk := uint32(len(buf))
		if n < chunk {
			chunk = n
		}
		p := tlm.Payload{Cmd: tlm.Read, Addr: src, Data: buf[:chunk], From: d.name}
		d.bus.Transport(&p, &delay)
		if p.Resp != tlm.OK {
			d.env.Sim.Fatal(fmt.Errorf("%s: source read %s at 0x%08x", d.name, p.Resp, src))
			return
		}
		p = tlm.Payload{Cmd: tlm.Write, Addr: dst, Data: buf[:chunk], From: d.name}
		d.bus.Transport(&p, &delay)
		if p.Resp != tlm.OK {
			d.env.Sim.Fatal(fmt.Errorf("%s: destination write %s at 0x%08x", d.name, p.Resp, dst))
			return
		}
		if d.env.Obs != nil {
			t := d.env.Default
			for _, b := range buf[:chunk] {
				t = d.env.lub(t, b.T)
			}
			d.env.Obs.OnDMA(d.name, src, dst, chunk, t)
		}
		src += chunk
		dst += chunk
		n -= chunk
	}
	transferTime := kernel.Time(d.length/DMABytesPerUS+1) * kernel.US
	d.env.Sim.After(transferTime, func() {
		d.busy = false
		d.done++
		if d.irq != nil {
			d.irq(true)
		}
	})
}
