// Package periph implements the SoC's hardware peripherals as TLM targets,
// mirroring the SystemC modules of the paper's virtual prototype:
//
//   - UART: byte console with RX classification and TX output-clearance
//     checks.
//   - Sensor: the paper's Fig. 4 peripheral — a 64-byte memory-mapped data
//     frame periodically refilled with data classified by a data_tag
//     register, raising an interrupt per frame.
//   - CLINT: RISC-V core-local interruptor (mtime/mtimecmp timer).
//   - IntC: a small external-interrupt controller (PLIC stand-in).
//   - DMA: memory-to-memory copy engine; tags travel with the data, so
//     taint flows through DMA transfers exactly as through CPU copies.
//   - CAN: frame-based bus endpoint with a host-side peer callback.
//   - AES: AES-128 engine (implemented from scratch) that encrypts a block
//     and *declassifies* the ciphertext, the paper's canonical
//     declassification use case.
//   - SysCtrl: power-off/exit-code register.
//
// Every peripheral carries tags on all data paths. Policy enforcement points
// (output clearance, configuration-register casts) report violations by
// stopping the simulation via kernel.Simulator.Fatal, the analog of the
// paper's ClearanceException.
package periph

import (
	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
	"vpdift/internal/tlm"
)

// Env bundles what every peripheral needs: the simulator (time, events,
// fatal errors) and the security context. Lattice may be nil on the baseline
// platform — then all checks are disabled and tags are passed through
// untouched.
type Env struct {
	Sim *kernel.Simulator
	Lat *core.Lattice
	// Default is the tag for data originating in unclassified hardware.
	Default core.Tag
	// Obs, when non-nil, records peripheral I/O, declassification, and
	// clearance-check events for provenance chains; nil disables all
	// recording at zero cost (one branch per hook site).
	Obs *obs.Observer
	// Audit, when non-nil, counts output-sink clearance checks per port for
	// the coverage subsystem's policy audit; nil disables counting (one
	// branch per check).
	Audit *cover.PolicyAudit
}

// checkOutput enforces an output port clearance on one byte, stopping the
// simulation on violation. enabled is false when the port has no clearance
// assigned (or the platform is the baseline).
func (e *Env) checkOutput(port string, b core.TByte, enabled bool, required core.Tag) bool {
	if !enabled || e.Lat == nil {
		return true
	}
	if e.Audit != nil {
		e.Audit.Output(port).Checks++
	}
	if e.Lat.AllowedFlow(b.T, required) {
		if e.Obs != nil {
			e.Obs.OnOutput(port, b.V, b.T)
		}
		return true
	}
	v := core.NewViolation(e.Lat, core.KindOutputClearance, b.T, required).
		WithPort(port).WithValue(uint32(b.V))
	if e.Obs != nil {
		// The byte just reached the port from the CPU's store (or a DMA
		// write); chain the check through that last sink event.
		e.Obs.Checks.Output++
		e.Obs.OnViolation(v, e.Obs.LastStore(), 0)
	}
	e.Sim.Fatal(v)
	return false
}

// lub joins two tags, tolerating a nil lattice (baseline platform).
func (e *Env) lub(a, b core.Tag) core.Tag {
	if e.Lat == nil {
		return 0
	}
	return e.Lat.LUB(a, b)
}

// byteDevice is a byte-addressable register file; the shared transport
// routine below adapts it to TLM. ok=false produces an address error.
type byteDevice interface {
	readByte(off uint32) (core.TByte, bool)
	writeByte(off uint32, b core.TByte) bool
}

// transport implements tlm.Target semantics over a byteDevice.
func transport(d byteDevice, p *tlm.Payload, accessDelay kernel.Time, delay *kernel.Time) {
	*delay += accessDelay
	switch p.Cmd {
	case tlm.Read:
		for i := range p.Data {
			b, ok := d.readByte(p.Addr + uint32(i))
			if !ok {
				p.Resp = tlm.AddressError
				return
			}
			p.Data[i] = b
		}
	case tlm.Write:
		for i := range p.Data {
			if !d.writeByte(p.Addr+uint32(i), p.Data[i]) {
				p.Resp = tlm.AddressError
				return
			}
		}
	default:
		p.Resp = tlm.CommandError
		return
	}
	p.Resp = tlm.OK
}

// regRead returns byte j of a 32-bit value with a tag.
func regRead(v uint32, t core.Tag, j uint32) core.TByte {
	return core.TByte{V: byte(v >> (8 * j)), T: t}
}

// regWrite replaces byte j of a 32-bit value.
func regWrite(v uint32, j uint32, b byte) uint32 {
	shift := 8 * j
	return v&^(0xff<<shift) | uint32(b)<<shift
}
