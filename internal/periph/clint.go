package periph

import (
	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// CLINT register map (byte offsets), following the standard RISC-V layout.
const (
	CLINTMsip     = 0x0000 // software interrupt (bit 0)
	CLINTMtimecmp = 0x4000 // 64-bit timer compare
	CLINTMtime    = 0xBFF8 // 64-bit timer, read-only
	CLINTSize     = 0xC000
)

// CLINTTickNS is the mtime resolution: 1 µs per tick (1 MHz timebase, the
// conventional riscv-vp/SiFive rate).
const CLINTTickNS = 1000

// CLINT is the core-local interruptor: the machine timer and software
// interrupt source. mtime is derived from simulated time; writing mtimecmp
// schedules the MTIP line through the simulation kernel.
type CLINT struct {
	env      *Env
	mtimecmp uint64
	msip     uint32
	setMTIP  func(bool)
	setMSIP  func(bool)
}

// NewCLINT creates the CLINT. setMTIP/setMSIP drive the core's interrupt
// lines.
func NewCLINT(env *Env, setMTIP, setMSIP func(bool)) *CLINT {
	return &CLINT{env: env, mtimecmp: ^uint64(0), setMTIP: setMTIP, setMSIP: setMSIP}
}

// MTime returns the current timer value.
func (c *CLINT) MTime() uint64 { return uint64(c.env.Sim.Now()) / CLINTTickNS }

// update recomputes the MTIP level and, when the compare lies in the future,
// schedules a callback at the exact expiry time.
func (c *CLINT) update() {
	now := c.MTime()
	if now >= c.mtimecmp {
		c.setMTIP(true)
		return
	}
	c.setMTIP(false)
	cmp := c.mtimecmp
	delta := kernel.Time((cmp - now) * CLINTTickNS)
	c.env.Sim.After(delta, func() {
		// Only fire if the compare value is still the one we armed for.
		if c.mtimecmp == cmp && c.MTime() >= c.mtimecmp {
			c.setMTIP(true)
		}
	})
}

// Transport implements tlm.Target.
func (c *CLINT) Transport(p *tlm.Payload, delay *kernel.Time) {
	transport(c, p, 10*kernel.NS, delay)
}

func (c *CLINT) readByte(off uint32) (core.TByte, bool) {
	switch {
	case off < CLINTMsip+4:
		return regRead(c.msip, c.env.Default, off-CLINTMsip), true
	case off >= CLINTMtimecmp && off < CLINTMtimecmp+8:
		j := off - CLINTMtimecmp
		return core.TByte{V: byte(c.mtimecmp >> (8 * j)), T: c.env.Default}, true
	case off >= CLINTMtime && off < CLINTMtime+8:
		j := off - CLINTMtime
		return core.TByte{V: byte(c.MTime() >> (8 * j)), T: c.env.Default}, true
	default:
		return core.TByte{}, false
	}
}

func (c *CLINT) writeByte(off uint32, b core.TByte) bool {
	switch {
	case off < CLINTMsip+4:
		c.msip = regWrite(c.msip, off-CLINTMsip, b.V)
		if c.setMSIP != nil {
			c.setMSIP(c.msip&1 != 0)
		}
		return true
	case off >= CLINTMtimecmp && off < CLINTMtimecmp+8:
		j := off - CLINTMtimecmp
		shift := 8 * j
		c.mtimecmp = c.mtimecmp&^(0xff<<shift) | uint64(b.V)<<shift
		// Re-arm after the last byte of the usual two-word write sequence;
		// re-arming on every byte is also correct, just busier.
		c.update()
		return true
	case off >= CLINTMtime && off < CLINTMtime+8:
		return true // read-only: ignore
	default:
		return false
	}
}
