package periph

import (
	"vpdift/internal/kernel"
	"vpdift/internal/tlm"
)

// SysCtrl register map (byte offsets).
const (
	SysCtrlExit = 0x00 // write: power off with this exit code
	SysCtrlTime = 0x04 // read: simulated time in microseconds (32 bits)
	SysCtrlSize = 0x08
)

// SysCtrl is the platform controller: the guest writes its exit code here to
// power off (the equivalent of the riscv-vp "sys" exit device).
type SysCtrl struct {
	env *Env
	// OnExit is invoked once with the guest's exit code.
	OnExit   func(code uint32)
	exitCode uint32
	exited   bool
}

// NewSysCtrl creates the controller.
func NewSysCtrl(env *Env, onExit func(code uint32)) *SysCtrl {
	return &SysCtrl{env: env, OnExit: onExit}
}

// Exited reports whether the guest powered off, and with which code.
func (s *SysCtrl) Exited() (bool, uint32) { return s.exited, s.exitCode }

// Transport implements tlm.Target. SysCtrl handles whole transactions
// itself so that a word-sized exit write delivers its complete value before
// the power-off triggers.
func (s *SysCtrl) Transport(p *tlm.Payload, delay *kernel.Time) {
	*delay += 10 * kernel.NS
	end := uint64(p.Addr) + uint64(len(p.Data))
	if end > SysCtrlSize {
		p.Resp = tlm.AddressError
		return
	}
	switch p.Cmd {
	case tlm.Read:
		us := uint32(uint64(s.env.Sim.Now()) / uint64(kernel.US))
		for i := range p.Data {
			off := p.Addr + uint32(i)
			switch {
			case off < SysCtrlExit+4:
				p.Data[i] = regRead(s.exitCode, s.env.Default, off-SysCtrlExit)
			default:
				p.Data[i] = regRead(us, s.env.Default, off-SysCtrlTime)
			}
		}
	case tlm.Write:
		code := s.exitCode
		touchedExit := false
		for i := range p.Data {
			off := p.Addr + uint32(i)
			if off < SysCtrlExit+4 {
				code = regWrite(code, off-SysCtrlExit, p.Data[i].V)
				touchedExit = true
			}
		}
		if touchedExit && !s.exited {
			s.exited = true
			s.exitCode = code
			if s.OnExit != nil {
				s.OnExit(code)
			}
		}
	default:
		p.Resp = tlm.CommandError
		return
	}
	p.Resp = tlm.OK
}
