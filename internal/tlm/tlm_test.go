package tlm

import (
	"fmt"
	"strings"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
)

// echoTarget records the last payload and answers reads with a fixed tainted
// pattern.
type echoTarget struct {
	lastCmd  Command
	lastAddr uint32
	lastData []core.TByte
	fill     core.TByte
	latency  kernel.Time
}

func (e *echoTarget) Transport(p *Payload, delay *kernel.Time) {
	e.lastCmd = p.Cmd
	e.lastAddr = p.Addr
	e.lastData = append([]core.TByte(nil), p.Data...)
	if p.Cmd == Read {
		for i := range p.Data {
			p.Data[i] = e.fill
		}
	}
	*delay += e.latency
	p.Resp = OK
}

func TestCommandAndResponseStrings(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("command strings")
	}
	if OK.String() != "ok" || AddressError.String() != "address-error" ||
		CommandError.String() != "command-error" || Response(9).String() != "response(9)" {
		t.Error("response strings")
	}
}

func TestBusRoutingRebasesAddress(t *testing.T) {
	b := NewBus()
	t1 := &echoTarget{}
	t2 := &echoTarget{}
	b.MustMap("low", 0x1000, 0x100, t1)
	b.MustMap("high", 0x8000, 0x1000, t2)

	var delay kernel.Time
	p := Payload{Cmd: Write, Addr: 0x1010, Data: make([]core.TByte, 4)}
	b.Transport(&p, &delay)
	if p.Resp != OK {
		t.Fatalf("resp = %v", p.Resp)
	}
	if t1.lastAddr != 0x10 {
		t.Errorf("target saw addr 0x%x, want rebased 0x10", t1.lastAddr)
	}
	if p.Addr != 0x1010 {
		t.Errorf("payload addr must be restored, got 0x%x", p.Addr)
	}

	p = Payload{Cmd: Read, Addr: 0x8ffc, Data: make([]core.TByte, 4)}
	b.Transport(&p, &delay)
	if p.Resp != OK || t2.lastAddr != 0xffc {
		t.Errorf("resp=%v addr=0x%x", p.Resp, t2.lastAddr)
	}
}

func TestBusAddressErrors(t *testing.T) {
	b := NewBus()
	b.MustMap("dev", 0x1000, 0x100, &echoTarget{})
	var delay kernel.Time

	for _, addr := range []uint32{0x0, 0xfff, 0x1100, 0xffffffff} {
		p := Payload{Cmd: Read, Addr: addr, Data: make([]core.TByte, 1)}
		b.Transport(&p, &delay)
		if p.Resp != AddressError {
			t.Errorf("addr 0x%x: resp = %v, want address-error", addr, p.Resp)
		}
	}
	// A transfer that starts inside but runs past the end must fail.
	p := Payload{Cmd: Read, Addr: 0x10fe, Data: make([]core.TByte, 4)}
	b.Transport(&p, &delay)
	if p.Resp != AddressError {
		t.Errorf("straddling transfer: resp = %v, want address-error", p.Resp)
	}
}

func TestBusRangeAtTopOfAddressSpace(t *testing.T) {
	b := NewBus()
	tgt := &echoTarget{}
	b.MustMap("top", 0xffff0000, 0x10000, tgt)
	var delay kernel.Time
	p := Payload{Cmd: Write, Addr: 0xfffffffc, Data: make([]core.TByte, 4)}
	b.Transport(&p, &delay)
	if p.Resp != OK || tgt.lastAddr != 0xfffc {
		t.Errorf("resp=%v addr=0x%x", p.Resp, tgt.lastAddr)
	}
}

func TestBusMapValidation(t *testing.T) {
	b := NewBus()
	b.MustMap("a", 0x1000, 0x100, &echoTarget{})
	if err := b.Map("empty", 0x5000, 0, &echoTarget{}); err == nil {
		t.Error("empty range must be rejected")
	}
	if err := b.Map("wrap", 0xffffff00, 0x200, &echoTarget{}); err == nil {
		t.Error("wrapping range must be rejected")
	}
	if err := b.Map("nil", 0x2000, 4, nil); err == nil {
		t.Error("nil target must be rejected")
	}
	for _, c := range []struct {
		name        string
		start, size uint32
	}{
		{"inside", 0x1010, 4},
		{"covering", 0x0800, 0x1000},
		{"head", 0x0ff0, 0x20},
		{"tail", 0x10f0, 0x20},
		{"exact", 0x1000, 0x100},
	} {
		if err := b.Map(c.name, c.start, c.size, &echoTarget{}); err == nil {
			t.Errorf("overlap %q must be rejected", c.name)
		}
	}
	// Adjacent ranges are fine.
	if err := b.Map("before", 0x0f00, 0x100, &echoTarget{}); err != nil {
		t.Errorf("adjacent-before: %v", err)
	}
	if err := b.Map("after", 0x1100, 0x100, &echoTarget{}); err != nil {
		t.Errorf("adjacent-after: %v", err)
	}
}

func TestMustMapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMap must panic on error")
		}
	}()
	NewBus().MustMap("bad", 0, 0, &echoTarget{})
}

func TestTagsTravelThroughBus(t *testing.T) {
	// The core claim of the TLM integration: tags are preserved end-to-end
	// through a transaction.
	l := core.IFP1()
	hc := l.MustTag(core.ClassHC)
	b := NewBus()
	tgt := &echoTarget{fill: core.B(0x5a, hc)}
	b.MustMap("dev", 0x4000, 0x100, tgt)

	var delay kernel.Time
	// Write: target must see the tags the initiator sent.
	p := Payload{Cmd: Write, Addr: 0x4000, Data: core.TagAll([]byte{1, 2}, hc)}
	b.Transport(&p, &delay)
	for i, tb := range tgt.lastData {
		if tb.T != hc {
			t.Errorf("write byte %d lost its tag", i)
		}
	}
	// Read: initiator must see the tags the target produced.
	p = Payload{Cmd: Read, Addr: 0x4000, Data: make([]core.TByte, 2)}
	b.Transport(&p, &delay)
	for i, tb := range p.Data {
		if tb != core.B(0x5a, hc) {
			t.Errorf("read byte %d = %+v", i, tb)
		}
	}
}

func TestTargetFunc(t *testing.T) {
	called := false
	var tf Target = TargetFunc(func(p *Payload, delay *kernel.Time) {
		called = true
		p.Resp = OK
	})
	var delay kernel.Time
	p := Payload{}
	tf.Transport(&p, &delay)
	if !called || p.Resp != OK {
		t.Error("TargetFunc adapter failed")
	}
}

func TestDelayAccumulates(t *testing.T) {
	b := NewBus()
	b.MustMap("slow", 0, 0x100, &echoTarget{latency: 10 * kernel.NS})
	delay := 5 * kernel.NS
	p := Payload{Cmd: Read, Addr: 0, Data: make([]core.TByte, 1)}
	b.Transport(&p, &delay)
	if delay != 15*kernel.NS {
		t.Errorf("delay = %v, want 15ns", delay)
	}
}

func TestReadWriteWordHelpers(t *testing.T) {
	l := core.IFP2()
	hi := l.MustTag(core.ClassHI)
	b := NewBus()
	ram := make([]core.TByte, 16)
	b.MustMap("ram", 0x100, 16, TargetFunc(func(p *Payload, delay *kernel.Time) {
		switch p.Cmd {
		case Read:
			copy(p.Data, ram[p.Addr:])
		case Write:
			copy(ram[p.Addr:], p.Data)
		}
		p.Resp = OK
	}))

	var delay kernel.Time
	if resp := b.WriteWord(core.W(0x11223344, hi), 0x104, &delay); resp != OK {
		t.Fatalf("write resp = %v", resp)
	}
	w, resp := b.ReadWord(l, 0x104, &delay)
	if resp != OK || w.V != 0x11223344 || w.T != hi {
		t.Errorf("read = %v resp = %v", w, resp)
	}
	if _, resp := b.ReadWord(l, 0xdead0000, &delay); resp != AddressError {
		t.Errorf("unmapped read resp = %v", resp)
	}
	if resp := b.WriteWord(core.Word{}, 0xdead0000, &delay); resp != AddressError {
		t.Errorf("unmapped write resp = %v", resp)
	}
}

func TestRangeOfAndRanges(t *testing.T) {
	b := NewBus()
	b.MustMap("ram", 0x8000, 0x1000, &echoTarget{})
	b.MustMap("uart", 0x1000, 0x100, &echoTarget{})
	name, start, end, ok := b.RangeOf(0x8123)
	if !ok || name != "ram" || start != 0x8000 || end != 0x9000 {
		t.Errorf("RangeOf = %q 0x%x 0x%x %v", name, start, end, ok)
	}
	if _, _, _, ok := b.RangeOf(0x0); ok {
		t.Error("RangeOf unmapped must report !ok")
	}
	rs := b.Ranges()
	if len(rs) != 2 || !strings.Contains(rs[0], "uart") || !strings.Contains(rs[1], "ram") {
		t.Errorf("Ranges() = %v, want address order", rs)
	}
}

// TestPropertyBusRouting cross-checks the binary-search router against a
// linear-scan oracle over randomized maps and addresses.
func TestPropertyBusRouting(t *testing.T) {
	seed := uint32(0xB005)
	rnd := func() uint32 {
		seed = seed*1664525 + 1013904223
		return seed
	}
	for trial := 0; trial < 50; trial++ {
		b := NewBus()
		type rng struct{ start, end uint64 }
		var oracle []rng
		// Build up to 8 non-overlapping ranges by trial insertion.
		for i := 0; i < 8; i++ {
			start := rnd() % 0xFFFF0000
			size := rnd()%0x10000 + 1
			overlaps := false
			for _, r := range oracle {
				if uint64(start) < r.end && r.start < uint64(start)+uint64(size) {
					overlaps = true
					break
				}
			}
			if overlaps {
				continue
			}
			if err := b.Map(fmt.Sprintf("r%d", i), start, size, &echoTarget{}); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			oracle = append(oracle, rng{uint64(start), uint64(start) + uint64(size)})
		}
		for probe := 0; probe < 200; probe++ {
			addr := rnd()
			want := false
			for _, r := range oracle {
				if uint64(addr) >= r.start && uint64(addr) < r.end {
					want = true
					break
				}
			}
			_, _, _, got := b.RangeOf(addr)
			if got != want {
				t.Fatalf("trial %d: route(0x%x) = %v, oracle %v", trial, addr, got, want)
			}
		}
	}
}
