package tlm

import (
	"fmt"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
)

// Transaction is one observed bus access.
type Transaction struct {
	At   kernel.Time
	Cmd  Command
	Addr uint32
	Data []core.TByte // copy of the payload data after completion
	Resp Response
}

// String renders the transaction for logs.
func (t Transaction) String() string {
	return fmt.Sprintf("%v %s addr=0x%08x len=%d %s data=% x",
		t.At, t.Cmd, t.Addr, len(t.Data), t.Resp, core.Values(t.Data))
}

// Monitor wraps a Target and records its transactions — the analog of a
// TLM analysis port. It is inserted transparently between the bus and a
// target:
//
//	mon := tlm.NewMonitor(device, sim, 256)
//	bus.Map("dev", base, size, mon)
//
// Keep records small: every transaction copies its payload.
type Monitor struct {
	target  Target
	sim     *kernel.Simulator
	limit   int
	log     []Transaction
	dropped uint64
	// OnTransaction, when set, is invoked for every completed access.
	OnTransaction func(Transaction)
}

// NewMonitor wraps target, keeping at most limit records (older entries are
// discarded first; limit <= 0 keeps everything).
func NewMonitor(target Target, sim *kernel.Simulator, limit int) *Monitor {
	return &Monitor{target: target, sim: sim, limit: limit}
}

// Transport implements Target.
func (m *Monitor) Transport(p *Payload, delay *kernel.Time) {
	m.target.Transport(p, delay)
	tr := Transaction{
		Cmd:  p.Cmd,
		Addr: p.Addr,
		Data: append([]core.TByte(nil), p.Data...),
		Resp: p.Resp,
	}
	if m.sim != nil {
		tr.At = m.sim.Now()
	}
	m.log = append(m.log, tr)
	if m.limit > 0 && len(m.log) > m.limit {
		m.dropped += uint64(len(m.log) - m.limit)
		m.log = m.log[len(m.log)-m.limit:]
	}
	if m.OnTransaction != nil {
		m.OnTransaction(tr)
	}
}

// Log returns the recorded transactions, oldest first.
func (m *Monitor) Log() []Transaction { return append([]Transaction(nil), m.log...) }

// Dropped reports how many transactions were silently discarded because the
// log exceeded its limit — nonzero means Log is a truncated view.
func (m *Monitor) Dropped() uint64 { return m.dropped }

// Reset clears the record. The dropped counter survives: it counts lifetime
// truncation, not current log state.
func (m *Monitor) Reset() { m.log = m.log[:0] }
