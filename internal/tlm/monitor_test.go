package tlm

import (
	"strings"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
)

func TestMonitorRecordsTransactions(t *testing.T) {
	sim := kernel.New()
	defer sim.Shutdown()
	sim.At(42*kernel.NS, func() {})
	if err := sim.Run(kernel.Forever); err != nil {
		t.Fatal(err)
	}

	ram := make([]core.TByte, 16)
	dev := TargetFunc(func(p *Payload, d *kernel.Time) {
		switch p.Cmd {
		case Read:
			copy(p.Data, ram[p.Addr:])
		case Write:
			copy(ram[p.Addr:], p.Data)
		}
		p.Resp = OK
	})
	var seen []Transaction
	mon := NewMonitor(dev, sim, 3)
	mon.OnTransaction = func(tr Transaction) { seen = append(seen, tr) }

	bus := NewBus()
	bus.MustMap("dev", 0x1000, 16, mon)

	var delay kernel.Time
	if resp := bus.WriteWord(core.W(0xAABBCCDD, 1), 0x1004, &delay); resp != OK {
		t.Fatal(resp)
	}
	if _, resp := bus.ReadWord(core.IFP1(), 0x1004, &delay); resp != OK {
		t.Fatal(resp)
	}

	log := mon.Log()
	if len(log) != 2 || len(seen) != 2 {
		t.Fatalf("log=%d seen=%d", len(log), len(seen))
	}
	if log[0].Cmd != Write || log[0].Addr != 4 || log[0].At != 42*kernel.NS {
		t.Errorf("write record = %+v", log[0])
	}
	if log[1].Cmd != Read || log[1].Data[0].V != 0xDD || log[1].Data[0].T != 1 {
		t.Errorf("read record = %+v (tags must be recorded)", log[1])
	}
	if !strings.Contains(log[0].String(), "write addr=0x00000004") {
		t.Errorf("String() = %q", log[0].String())
	}

	// Limit: issue more transactions than the cap.
	for i := 0; i < 5; i++ {
		bus.WriteWord(core.W(uint32(i), 0), 0x1000, &delay)
	}
	if got := len(mon.Log()); got != 3 {
		t.Errorf("log length = %d, want capped 3", got)
	}
	mon.Reset()
	if len(mon.Log()) != 0 {
		t.Error("Reset must clear the log")
	}
}

func TestMonitorDropped(t *testing.T) {
	dev := TargetFunc(func(p *Payload, d *kernel.Time) { p.Resp = OK })
	mon := NewMonitor(dev, nil, 2)
	var delay kernel.Time
	issue := func(n int) {
		for i := 0; i < n; i++ {
			p := Payload{Cmd: Read, Data: make([]core.TByte, 1)}
			mon.Transport(&p, &delay)
		}
	}
	issue(2)
	if got := mon.Dropped(); got != 0 {
		t.Fatalf("dropped = %d before exceeding the limit", got)
	}
	issue(5)
	if got := mon.Dropped(); got != 5 {
		t.Fatalf("dropped = %d, want 5", got)
	}
	if len(mon.Log()) != 2 {
		t.Fatalf("log length = %d, want capped 2", len(mon.Log()))
	}
	// Dropped is a lifetime counter: Reset clears the log, not the count.
	mon.Reset()
	if got := mon.Dropped(); got != 5 {
		t.Fatalf("dropped = %d after Reset, want 5", got)
	}
	issue(3)
	if got := mon.Dropped(); got != 6 {
		t.Fatalf("dropped = %d after refill, want 6", got)
	}
}

func TestMonitorUnlimited(t *testing.T) {
	dev := TargetFunc(func(p *Payload, d *kernel.Time) { p.Resp = OK })
	mon := NewMonitor(dev, nil, 0)
	var delay kernel.Time
	for i := 0; i < 300; i++ {
		p := Payload{Cmd: Read, Data: make([]core.TByte, 1)}
		mon.Transport(&p, &delay)
	}
	if len(mon.Log()) != 300 {
		t.Errorf("unlimited log length = %d", len(mon.Log()))
	}
}
