// Package tlm is the transaction-level-modeling layer of the virtual
// prototype — the Go substitute for SystemC TLM-2.0 generic payloads, sockets
// and the interconnect.
//
// The essential idea the paper relies on is reproduced here: the payload's
// data array carries *tainted* bytes (core.TByte), so security tags flow
// through every bus transaction — CPU to memory, CPU to peripheral, DMA to
// memory — without any peripheral-specific plumbing. Where the C++
// implementation casts a Taint<uint8_t> array into the generic payload's
// char* data pointer, we simply type the payload data as []core.TByte.
package tlm

import (
	"fmt"
	"sort"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
)

// Command distinguishes read and write transactions, like
// tlm::tlm_command.
type Command int

const (
	// Read transfers data from the target into the payload.
	Read Command = iota
	// Write transfers payload data into the target.
	Write
)

// String returns "read" or "write".
func (c Command) String() string {
	if c == Read {
		return "read"
	}
	return "write"
}

// Response is the transaction completion status, like tlm::tlm_response_status.
type Response int

const (
	// OK: the transaction completed.
	OK Response = iota
	// AddressError: no target is mapped at the address, or the offset is
	// outside the target's register file.
	AddressError
	// CommandError: the target does not support the command at this offset
	// (e.g. write to a read-only register).
	CommandError
)

// String names the response status.
func (r Response) String() string {
	switch r {
	case OK:
		return "ok"
	case AddressError:
		return "address-error"
	case CommandError:
		return "command-error"
	default:
		return fmt.Sprintf("response(%d)", int(r))
	}
}

// Payload is the generic payload: command, address, tainted data, response.
// For Read commands the target fills Data; for Write commands the initiator
// provides it. Addr is rewritten by the Bus to be target-relative, like a
// TLM interconnect decoding the global address.
type Payload struct {
	Cmd  Command
	Addr uint32
	Data []core.TByte
	Resp Response
	// From optionally names the initiator ("cpu", "dma0") for bus tracing —
	// the analog of the TLM extension a transaction recorder would read.
	From string
}

// Target is a TLM target socket: anything reachable over the bus implements
// the blocking transport call. The delay pointer accumulates the
// transaction's timing annotation (loosely-timed style); targets may add
// their access latency to it.
type Target interface {
	Transport(p *Payload, delay *kernel.Time)
}

// TargetFunc adapts a function to the Target interface.
type TargetFunc func(p *Payload, delay *kernel.Time)

// Transport implements Target.
func (f TargetFunc) Transport(p *Payload, delay *kernel.Time) { f(p, delay) }

// mapping is one bus decode entry covering [start, end). end is uint64 so a
// range may extend to the top of the 32-bit address space.
type mapping struct {
	name   string
	start  uint32
	end    uint64
	target Target
}

// Bus routes transactions to targets by address range, subtracting the range
// base so targets see local offsets. It is itself a Target, so buses can be
// cascaded. Routing is a binary search over the sorted ranges.
type Bus struct {
	maps []mapping
	// Trace, when non-nil, is invoked after every routed transaction with
	// the decoded range name ("" for unmapped addresses) and the completed
	// payload, its global address restored. One predictable branch when nil.
	Trace func(rangeName string, p *Payload)
}

// NewBus creates an empty bus.
func NewBus() *Bus { return &Bus{} }

// Map attaches a target to the global address range [start, start+size).
// Ranges must not overlap and size must be nonzero; the end address must not
// wrap the 32-bit space.
func (b *Bus) Map(name string, start, size uint32, t Target) error {
	if size == 0 {
		return fmt.Errorf("bus: range %q is empty", name)
	}
	end := uint64(start) + uint64(size)
	if end > 1<<32 {
		return fmt.Errorf("bus: range %q [0x%x, +0x%x) wraps the address space", name, start, size)
	}
	if t == nil {
		return fmt.Errorf("bus: range %q has a nil target", name)
	}
	for _, ex := range b.maps {
		if uint64(start) < ex.end && uint64(ex.start) < end {
			return fmt.Errorf("bus: range %q [0x%x, 0x%x) overlaps %q [0x%x, 0x%x)",
				name, start, end, ex.name, ex.start, ex.end)
		}
	}
	b.maps = append(b.maps, mapping{name: name, start: start, end: end, target: t})
	sort.Slice(b.maps, func(i, j int) bool { return b.maps[i].start < b.maps[j].start })
	return nil
}

// MustMap is Map that panics on error; for static platform construction.
func (b *Bus) MustMap(name string, start, size uint32, t Target) {
	if err := b.Map(name, start, size, t); err != nil {
		panic(err)
	}
}

// route finds the mapping covering addr.
func (b *Bus) route(addr uint32) *mapping {
	lo, hi := 0, len(b.maps)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.maps[mid].start <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	m := &b.maps[lo-1]
	if uint64(addr) >= m.end {
		return nil
	}
	return m
}

// Transport routes the payload to the mapped target, rebasing the address.
// Transactions to unmapped addresses complete with AddressError, like a TLM
// interconnect returning TLM_ADDRESS_ERROR_RESPONSE.
func (b *Bus) Transport(p *Payload, delay *kernel.Time) {
	m := b.route(p.Addr)
	if m == nil {
		p.Resp = AddressError
		if b.Trace != nil {
			b.Trace("", p)
		}
		return
	}
	// The full transfer must stay inside the range.
	if uint64(p.Addr)+uint64(len(p.Data)) > m.end {
		p.Resp = AddressError
		if b.Trace != nil {
			b.Trace(m.name, p)
		}
		return
	}
	global := p.Addr
	p.Addr -= m.start
	m.target.Transport(p, delay)
	p.Addr = global
	if b.Trace != nil {
		b.Trace(m.name, p)
	}
}

// RangeOf returns the name and bounds of the mapping covering addr, for
// diagnostics.
func (b *Bus) RangeOf(addr uint32) (name string, start uint32, end uint64, ok bool) {
	m := b.route(addr)
	if m == nil {
		return "", 0, 0, false
	}
	return m.name, m.start, m.end, true
}

// Ranges lists the mapped ranges in address order as "name [start, end)"
// strings; used by cmd/vp-run to dump the platform memory map.
func (b *Bus) Ranges() []string {
	out := make([]string, len(b.maps))
	for i, m := range b.maps {
		out[i] = fmt.Sprintf("%-8s [0x%08x, 0x%08x)", m.name, m.start, m.end)
	}
	return out
}

// ReadWord issues a 4-byte read transaction at addr and folds the result into
// a tainted word. Convenience for initiators (DMA, tests).
func (b *Bus) ReadWord(l *core.Lattice, addr uint32, delay *kernel.Time) (core.Word, Response) {
	var buf [4]core.TByte
	p := Payload{Cmd: Read, Addr: addr, Data: buf[:]}
	b.Transport(&p, delay)
	if p.Resp != OK {
		return core.Word{}, p.Resp
	}
	return core.WordFromBytes(l, buf[:]), OK
}

// WriteWord issues a 4-byte write transaction at addr.
func (b *Bus) WriteWord(w core.Word, addr uint32, delay *kernel.Time) Response {
	var buf [4]core.TByte
	w.Bytes(buf[:])
	p := Payload{Cmd: Write, Addr: addr, Data: buf[:]}
	b.Transport(&p, delay)
	return p.Resp
}
