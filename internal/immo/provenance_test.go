package immo

import (
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/obs"
)

// mustECUObserved builds an observed ECU or fails the test.
func mustECUObserved(t *testing.T, v Variant, kind PolicyKind, o *obs.Observer) *ECU {
	t.Helper()
	e, err := NewECUObserved(v, kind, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestDebugDumpProvenanceChain(t *testing.T) {
	// The paper's headline scenario with the observability subsystem on: the
	// UART debug-dump violation must carry a complete provenance chain whose
	// first event is the PIN's load-time classification and whose last is
	// the failed uart0.tx output-clearance check.
	o := obs.New()
	e := mustECUObserved(t, VariantVulnerable, PolicyBase, o)
	_, err := e.DebugDump()
	v := wantViolation(t, err, core.KindOutputClearance)

	chain := v.Provenance
	if len(chain) == 0 {
		t.Fatal("violation must carry a non-empty provenance chain")
	}
	first, last := chain[0], chain[len(chain)-1]
	if first.Kind != core.EvClassify {
		t.Errorf("chain starts with %v, want the classification root", first.Kind)
	}
	if first.Port != "pin" {
		t.Errorf("chain root classifies region %q, want the PIN region", first.Port)
	}
	pin := e.Image.MustSymbol("immo_pin")
	if first.Addr != pin {
		t.Errorf("chain root covers 0x%x, want immo_pin at 0x%x", first.Addr, pin)
	}
	if last.Kind != core.EvCheck {
		t.Errorf("chain ends with %v, want the failed clearance check", last.Kind)
	}
	if last.Port != "uart0.tx" {
		t.Errorf("failed check at port %q, want uart0.tx", last.Port)
	}
	// The chain must pass through actual data movement, not jump straight
	// from root to check.
	var hasLoad bool
	for _, ev := range chain {
		if ev.Kind == core.EvLoad {
			hasLoad = true
		}
	}
	if !hasLoad {
		t.Errorf("chain has no load event; events: %v", kinds(chain))
	}
	// Report rendering: one line per event, oldest first.
	if rep := v.ProvenanceReport(nil); rep == "" {
		t.Error("ProvenanceReport is empty")
	}
}

func TestDisabledObserverSameViolation(t *testing.T) {
	// Observability off must not change detection: same violation kind and
	// port, no provenance, and a never-attached observer records nothing.
	e := mustECU(t, VariantVulnerable, PolicyBase)
	_, err := e.DebugDump()
	v := wantViolation(t, err, core.KindOutputClearance)
	if v.Port != "uart0.tx" {
		t.Errorf("violation at %q, want uart0.tx", v.Port)
	}
	if len(v.Provenance) != 0 {
		t.Errorf("violation without an observer carries %d provenance events, want 0", len(v.Provenance))
	}

	idle := obs.New()
	if idle.Attached() || idle.EventCount() != 0 {
		t.Errorf("fresh observer: attached=%v events=%d", idle.Attached(), idle.EventCount())
	}
}

func TestObserverMetricsCounted(t *testing.T) {
	o := obs.New()
	e := mustECUObserved(t, VariantFixed, PolicyBase, o)
	challenge := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := e.Authenticate(challenge); err != nil {
		t.Fatal(err)
	}
	m := e.Platform.MetricsSnapshot()
	for _, key := range []string{"sim.instret", "lub_ops", "checks.input", "bus.txns", "obs.events"} {
		if m[key] == 0 {
			t.Errorf("metric %q is zero after an authentication round", key)
		}
	}
	if m["obs.pinned"] == 0 {
		t.Error("PIN classification must be pinned as a provenance root")
	}
}

func kinds(evs []core.TaintEvent) []core.TaintEventKind {
	out := make([]core.TaintEventKind, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind
	}
	return out
}
