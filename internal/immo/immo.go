package immo

import (
	"bytes"
	"crypto/aes"
	"fmt"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
	"vpdift/internal/soc"
	"vpdift/internal/telemetry"
	"vpdift/internal/trace"
)

// PolicyKind selects the security policy under validation.
type PolicyKind int

// Policy kinds for the case study.
const (
	// PolicyNone runs without DIFT (baseline VP) — used for the Table II
	// immo-fixed performance row.
	PolicyNone PolicyKind = iota
	// PolicyBase is the paper's initial immobilizer policy: IFP-3, PIN
	// classified (HC,HI), (LC,LI) clearance on all I/O, AES declassifies.
	PolicyBase
	// PolicyPerByte is the final fix: each PIN byte has its own integrity
	// class, closing the HI-overwrite entropy attack.
	PolicyPerByte
)

// Key returns the AES-128 key derived from the PIN (repeated four times).
func Key() [16]byte {
	var k [16]byte
	for i := range k {
		k[i] = PIN[i%4]
	}
	return k
}

// Expected computes the reference response to a challenge: the first 8
// bytes of AES-128(Key, challenge || zeros) — exactly what the engine ECU
// computes with its own copy of the PIN.
func Expected(challenge [8]byte) [8]byte {
	return expectedWithKey(Key(), challenge)
}

func expectedWithKey(key [16]byte, challenge [8]byte) [8]byte {
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err)
	}
	var pt, ct [16]byte
	copy(pt[:8], challenge[:])
	blk.Encrypt(ct[:], pt[:])
	var out [8]byte
	copy(out[:], ct[:8])
	return out
}

// BasePolicy builds the paper's initial immobilizer policy for the given
// firmware image: IFP-3; PIN classified and store-protected as (HC,HI); all
// input and output devices at (LC,LI); the AES engine admits everything
// (lattice top) and declassifies its ciphertext to (LC,LI); branch and
// memory-address execution clearance at (LC,LI) to catch implicit flows.
func BasePolicy(img *asm.Image) *core.Policy {
	l := core.IFP3()
	lcLI := l.MustTag("(LC,LI)")
	hcHI := l.MustTag("(HC,HI)")
	top, _ := l.Top()
	pin := img.MustSymbol("immo_pin")
	return core.NewPolicy(l, lcLI).
		WithRegion(core.RegionRule{
			Name: "pin", Start: pin, End: pin + 4,
			Classify: true, Class: hcHI,
			CheckStore: true, Clearance: hcHI,
		}).
		WithOutput("uart0.tx", lcLI).
		WithOutput("can0.tx", lcLI).
		WithOutput("aes0.in", top).
		WithInput("uart0.rx", lcLI).
		WithInput("can0.rx", lcLI).
		WithInput("aes0.out", lcLI).
		WithBranchClearance(lcLI).
		WithMemAddrClearance(lcLI)
}

// PerBytePolicy builds the final policy: the confidentiality lattice
// crossed with per-key-byte integrity classes, each PIN byte classified and
// store-protected with its own class.
func PerBytePolicy(img *asm.Image) (*core.Policy, error) {
	integ, err := core.PerByteKeyIntegrity(4)
	if err != nil {
		return nil, err
	}
	l, err := core.Product(core.IFP1(), integ)
	if err != nil {
		return nil, err
	}
	lcLI := l.MustTag("(LC,LI)")
	top, ok := l.Top()
	if !ok {
		return nil, fmt.Errorf("immo: per-byte lattice has no top")
	}
	pin := img.MustSymbol("immo_pin")
	p := core.NewPolicy(l, lcLI).
		WithOutput("uart0.tx", lcLI).
		WithOutput("can0.tx", lcLI).
		WithOutput("aes0.in", top).
		WithInput("uart0.rx", lcLI).
		WithInput("can0.rx", lcLI).
		WithInput("aes0.out", lcLI).
		WithBranchClearance(lcLI).
		WithMemAddrClearance(lcLI)
	for i := uint32(0); i < 4; i++ {
		k := l.MustTag(fmt.Sprintf("(HC,K%d)", i))
		p.WithRegion(core.RegionRule{
			Name: fmt.Sprintf("pin%d", i), Start: pin + i, End: pin + i + 1,
			Classify: true, Class: k,
			CheckStore: true, Clearance: k,
		})
	}
	return p, nil
}

// ECU drives an immobilizer platform from the engine's (host) side.
type ECU struct {
	Platform *soc.Platform
	Image    *asm.Image
}

// NewECU builds the immobilizer with the chosen firmware variant and
// policy.
func NewECU(v Variant, kind PolicyKind) (*ECU, error) {
	return NewECUObserved(v, kind, nil)
}

// NewECUObserved is NewECU with a taint-provenance observer wired into the
// platform; o may be nil.
func NewECUObserved(v Variant, kind PolicyKind, o *obs.Observer) (*ECU, error) {
	return NewECUTraced(v, kind, o, nil)
}

// NewECUTraced is NewECUObserved with the simulation-side trace layer also
// attached; either of o and tr may be nil.
func NewECUTraced(v Variant, kind PolicyKind, o *obs.Observer, tr *trace.Trace) (*ECU, error) {
	return NewECUCovered(v, kind, o, tr, nil)
}

// NewECUCovered is NewECUTraced with the coverage subsystem also attached;
// any of o, tr and cov may be nil. The policy-audit view makes the ECU the
// paper's policy-validation workbench: after a run, cov.Audit reports which
// rules of the immobilizer policy were never exercised.
func NewECUCovered(v Variant, kind PolicyKind, o *obs.Observer, tr *trace.Trace, cov *cover.Cover) (*ECU, error) {
	return NewECUSampled(v, kind, o, tr, cov, nil)
}

// NewECUSampled is NewECUCovered with a live-telemetry sampler also
// attached; any of o, tr, cov and smp may be nil. The sampler ticks on
// simulated time, so the captured timeseries is deterministic for a given
// challenge schedule.
func NewECUSampled(v Variant, kind PolicyKind, o *obs.Observer, tr *trace.Trace, cov *cover.Cover, smp *telemetry.Sampler) (*ECU, error) {
	return NewECUWithConfig(v, kind, ECUConfig{Obs: o, Trace: tr, Cover: cov, Telemetry: smp})
}

// ECUConfig collects every optional attachment for an ECU platform in one
// struct (the NewECU* constructor chain stays for compatibility).
type ECUConfig struct {
	Obs       *obs.Observer
	Trace     *trace.Trace
	Cover     *cover.Cover
	Telemetry *telemetry.Sampler
	// Decoupled runs the taint monitor on a parallel goroutine; the case
	// study's verdicts must be identical either way.
	Decoupled bool
	// FlightOff disables the always-on flight recorder (the forensic parity
	// suite proves the verdicts are identical with it on or off).
	FlightOff bool
}

// NewECUWithConfig builds the immobilizer with the chosen firmware variant,
// policy, and platform attachments.
func NewECUWithConfig(v Variant, kind PolicyKind, cfg ECUConfig) (*ECU, error) {
	img := Firmware(v)
	var pol *core.Policy
	switch kind {
	case PolicyNone:
	case PolicyBase:
		pol = BasePolicy(img)
	case PolicyPerByte:
		var err error
		pol, err = PerBytePolicy(img)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("immo: unknown policy kind %d", kind)
	}
	pl, err := soc.New(soc.Config{
		Policy: pol, Obs: cfg.Obs, Trace: cfg.Trace, Cover: cfg.Cover,
		Telemetry: cfg.Telemetry, DecoupledTaint: cfg.Decoupled,
		FlightOff: cfg.FlightOff,
	})
	if err != nil {
		return nil, err
	}
	if err := pl.Load(img); err != nil {
		pl.Shutdown()
		return nil, err
	}
	return &ECU{Platform: pl, Image: img}, nil
}

// Close releases the platform.
func (e *ECU) Close() { e.Platform.Shutdown() }

// step advances the simulation by d. Policy violations surface as the
// returned error.
func (e *ECU) step(d kernel.Time) error {
	return e.Platform.Run(e.Platform.Sim.Now() + d)
}

// Idle advances the simulation by d with no stimulus — the firmware polls
// quietly. Useful for letting an attached telemetry sampler capture the
// platform's idle shape.
func (e *ECU) Idle(d kernel.Time) error { return e.step(d) }

// stepUntil advances in 1 ms slices until cond holds or the budget runs
// out; it reports whether cond held.
func (e *ECU) stepUntil(budget kernel.Time, cond func() bool) (bool, error) {
	deadline := e.Platform.Sim.Now() + budget
	for e.Platform.Sim.Now() < deadline {
		if cond() {
			return true, nil
		}
		if err := e.step(kernel.MS); err != nil {
			return false, err
		}
		if exited, _ := e.Platform.Exited(); exited {
			return cond(), nil
		}
	}
	return cond(), nil
}

// Authenticate performs one challenge-response round: the engine sends the
// challenge on CAN ID 0x100 and waits for the 8-byte response on ID 0x101.
func (e *ECU) Authenticate(challenge [8]byte) ([8]byte, error) {
	var resp [8]byte
	before := len(e.Platform.CAN.TxLog)
	e.Platform.CAN.Deliver(0x100, challenge[:])
	ok, err := e.stepUntil(kernel.S, func() bool {
		return len(e.Platform.CAN.TxLog) > before
	})
	if err != nil {
		return resp, err
	}
	if !ok {
		return resp, fmt.Errorf("immo: no response within budget")
	}
	f := e.Platform.CAN.TxLog[before]
	if f.ID != 0x101 || len(f.Data) != 8 {
		return resp, fmt.Errorf("immo: unexpected response frame id=0x%x len=%d", f.ID, len(f.Data))
	}
	copy(resp[:], core.Values(f.Data))
	return resp, nil
}

// Command sends a debug command byte (plus optional payload) on the UART
// and advances the simulation, returning any policy violation.
func (e *ECU) Command(cmd byte, payload ...byte) error {
	e.Platform.UART.Inject(append([]byte{cmd}, payload...))
	return e.step(50 * kernel.MS)
}

// DebugDump issues the 'd' command and returns the console bytes it
// produced.
func (e *ECU) DebugDump() ([]byte, error) {
	e.Platform.UART.ClearOutput()
	err := e.Command('d')
	return e.Platform.UART.Output(), err
}

// BruteForcePIN0 mounts the paper's post-entropy-attack brute force: after
// PIN[1..3] have been overwritten with PIN[0], the key has 8 bits of
// entropy, so 256 trial encryptions of the observed challenge/response pair
// recover PIN[0].
func BruteForcePIN0(challenge, response [8]byte) (byte, bool) {
	for b := 0; b < 256; b++ {
		var key [16]byte
		for i := range key {
			key[i] = byte(b)
		}
		if expectedWithKey(key, challenge) == response {
			return byte(b), true
		}
	}
	return 0, false
}

// ContainsPIN reports whether the byte sequence contains the secret PIN.
func ContainsPIN(data []byte) bool {
	return bytes.Contains(data, PIN[:])
}
