package immo

import (
	"bytes"
	"strings"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/soc"
)

// TestPolicyAuditFlagsDeadRules reproduces the policy-validation workflow:
// run the legitimate authentication under a deliberately over-broad policy
// and let the audit report the rules that were never exercised. The extra
// rule protects a region the firmware never stores to, so the audit must
// flag it — this is exactly how a policy developer spots rules that either
// guard nothing or were never tested.
func TestPolicyAuditFlagsDeadRules(t *testing.T) {
	img := Firmware(VariantFixed)
	pol := BasePolicy(img)
	hcHI := pol.L.MustTag("(HC,HI)")
	scratch := img.MustSymbol("immo_pin") + 16
	pol.WithRegion(core.RegionRule{
		Name: "overbroad-scratch", Start: scratch, End: scratch + 4,
		CheckStore: true, Clearance: hcHI,
	})

	cov := &cover.Cover{Audit: cover.NewAudit()}
	pl, err := soc.New(soc.Config{Policy: pol, Cover: cov})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		t.Fatal(err)
	}
	e := &ECU{Platform: pl, Image: img}
	challenge := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	resp, err := e.Authenticate(challenge)
	if err != nil {
		t.Fatal(err)
	}
	if resp != Expected(challenge) {
		t.Fatal("authentication failed under the over-broad policy")
	}

	dead := cov.Audit.DeadRules()
	if len(dead) == 0 {
		t.Fatal("audit reports no dead rules on an over-broad policy")
	}
	found := false
	for _, d := range dead {
		if strings.Contains(d, "overbroad-scratch") {
			found = true
		}
	}
	if !found {
		t.Errorf("dead rules %q do not flag the over-broad region rule", dead)
	}

	// The exercised side of the audit must show activity: branch and
	// mem-addr clearances are enabled and checked on every retire.
	if cov.Audit.Branch.Checks == 0 || cov.Audit.MemAddr.Checks == 0 {
		t.Errorf("enabled clearance points show no checks: branch=%d memaddr=%d",
			cov.Audit.Branch.Checks, cov.Audit.MemAddr.Checks)
	}

	// Both renderings must carry the dead rule.
	var report, js bytes.Buffer
	if err := cov.Audit.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	if err := cov.Audit.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{report.String(), js.String()} {
		if !strings.Contains(out, "overbroad-scratch") {
			t.Errorf("rendering does not mention the dead rule:\n%s", out)
		}
	}
}

// TestPolicyAuditViolationAttribution checks that a terminal violation is
// attributed to its clearance point: the 'o' attack (override the PIN with
// external data) must land on the pin region's store rule.
func TestPolicyAuditViolationAttribution(t *testing.T) {
	cov := &cover.Cover{Audit: cover.NewAudit()}
	e, err := NewECUCovered(VariantFixed, PolicyBase, nil, nil, cov)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	wantViolation(t, e.Command('o', 0x42), core.KindStoreClearance)

	var js bytes.Buffer
	if err := cov.Audit.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"violations": 1`) {
		t.Errorf("audit JSON records no violation:\n%s", js.String())
	}
}
