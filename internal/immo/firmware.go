// Package immo reproduces the paper's Section VI-A case study: the
// electronic control unit (ECU) of a car engine immobilizer.
//
// The immobilizer holds a secret 4-byte PIN. The engine ECU (modeled on the
// host side) authenticates it with a challenge-response protocol over the
// CAN bus: the engine sends a random challenge, the immobilizer answers
// with the challenge encrypted by the PIN-derived key on its AES
// peripheral, and the engine verifies against its own copy of the PIN. The
// PIN never crosses the CAN bus in plaintext.
//
// The firmware also has a UART debug console, whose memory-dump command is
// the vulnerability the paper's policy validation finds: the dump includes
// the PIN region. VariantFixed excludes it.
//
// The paper's attack scenarios are modeled as debug commands that trigger
// the corresponding buggy code paths:
//
//	'a' — write the PIN directly to the UART (direct leak)
//	'b' — copy the PIN through an intermediate buffer, then send the
//	      buffer on the CAN bus (indirect leak)
//	'c' — branch on a PIN bit and emit a result (implicit flow)
//	'o' — overwrite a PIN byte with external (UART) data (integrity)
//	'e' — overwrite PIN bytes 1..3 with byte 0 (the HI-overwrite
//	      entropy-reduction attack)
//	'd' — debug memory dump
//	'q' — quit (power off)
package immo

import (
	"fmt"
	"strings"

	"vpdift/internal/asm"
	"vpdift/internal/guest"
)

// PIN is the immobilizer's secret. The AES-128 key is the PIN repeated four
// times.
var PIN = [4]byte{0x13, 0x57, 0x9B, 0xDF}

// Variant selects the firmware build.
type Variant int

// Firmware variants.
const (
	// VariantVulnerable dumps the whole data segment, PIN included — the
	// vulnerability the security policy finds.
	VariantVulnerable Variant = iota
	// VariantFixed excludes the PIN region from the dump ("we fixed this
	// security vulnerability by correcting the debug function to exclude
	// the memory region of the key").
	VariantFixed
	// VariantFixedIRQ is the fixed firmware restructured to be fully
	// interrupt-driven: the CPU sleeps in WFI and the CAN and UART raise
	// external interrupts — the fine-grained HW/SW interaction style the
	// paper emphasizes. Functionally identical to VariantFixed.
	VariantFixedIRQ
)

// dump routine for the vulnerable build: everything from immo_data_start to
// immo_data_end.
const dumpVulnerable = `
	.text
immo_dump:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, immo_data_start
	la a1, immo_data_end
	call immo_dump_range
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
`

// dump routine for the fixed build: the two ranges around the PIN.
const dumpFixed = `
	.text
immo_dump:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, immo_data_start
	la a1, immo_pin
	call immo_dump_range
	la a0, immo_pin + 4
	la a1, immo_data_end
	call immo_dump_range
	lw ra, 12(sp)
	addi sp, sp, 16
	ret
`

// mainPolling is the polled main loop of the paper's firmware.
const mainPolling = `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, banner
	call uart_puts
immo_loop:
	# challenge waiting on the CAN bus?
	li t0, CAN_BASE
	lw t1, CAN_STATUS(t0)
	andi t1, t1, 1
	beqz t1, 1f
	call immo_handle_challenge
1:	# debug command waiting on the UART?
	li t0, UART_BASE
	lw t1, UART_STATUS(t0)
	andi t1, t1, 1
	beqz t1, immo_loop
	lw a0, UART_RX(t0)
	andi a0, a0, 0xFF
	call immo_handle_cmd
	j immo_loop
`

// mainIRQ is the interrupt-driven main loop: sleep in WFI; the trap handler
// claims CAN and UART interrupts from the controller and dispatches to the
// same service routines.
const mainIRQ = `
main:
	addi sp, sp, -16
	sw ra, 12(sp)
	la a0, banner
	call uart_puts
	la t0, immo_irq_trap
	csrw mtvec, t0
	li t0, INTC_BASE
	li t1, (1 << IRQ_CAN) | (1 << IRQ_UART)
	sw t1, INTC_ENABLE(t0)
	li t1, 0x800          # MEIE
	csrw mie, t1
	csrsi mstatus, 8      # MIE
immo_idle:
	wfi
	j immo_idle

immo_irq_trap:
	addi sp, sp, -48
	sw ra, 44(sp)
	sw a0, 40(sp)
	sw a1, 36(sp)
	sw a2, 32(sp)
	sw t0, 28(sp)
	sw t1, 24(sp)
	sw t2, 20(sp)
	sw t3, 16(sp)
	sw t4, 12(sp)
	sw t5, 8(sp)
	sw t6, 4(sp)
1:	# claim until the controller runs dry
	li t0, INTC_BASE
	lw t1, INTC_CLAIM(t0)
	beqz t1, 5f
	li t2, IRQ_CAN
	bne t1, t2, 2f
	call immo_handle_challenge
	li t0, INTC_BASE
	li t1, IRQ_CAN
	sw t1, INTC_CLAIM(t0)     # complete: re-pend if more frames wait
	j 1b
2:	li t2, IRQ_UART
	bne t1, t2, 1b
3:	# drain every available console byte
	li t0, UART_BASE
	lw a0, UART_RX(t0)
	srli t1, a0, UART_RX_EMPTY_BIT
	bnez t1, 4f
	andi a0, a0, 0xFF
	call immo_handle_cmd
	j 3b
4:	li t0, INTC_BASE
	li t1, IRQ_UART
	sw t1, INTC_CLAIM(t0)
	j 1b
5:	lw t6, 4(sp)
	lw t5, 8(sp)
	lw t4, 12(sp)
	lw t3, 16(sp)
	lw t2, 20(sp)
	lw t1, 24(sp)
	lw t0, 28(sp)
	lw a2, 32(sp)
	lw a1, 36(sp)
	lw a0, 40(sp)
	lw ra, 44(sp)
	addi sp, sp, 48
	mret
`

const firmwareBody = `

# immo_load_key: AES key = PIN repeated four times.
immo_load_key:
	li t0, AES_BASE
	la t1, immo_pin
	li t2, 0
1:	andi t3, t2, 3
	add t3, t3, t1
	lbu t4, 0(t3)
	add t3, t0, t2
	sb t4, AES_KEY(t3)
	addi t2, t2, 1
	li t3, 16
	blt t2, t3, 1b
	ret

# immo_handle_challenge: encrypt the 8-byte CAN challenge (zero padded to a
# block) and answer with the first 8 ciphertext bytes.
immo_handle_challenge:
	addi sp, sp, -16
	sw ra, 12(sp)
	li t0, CAN_BASE
	li t1, AES_BASE
	li t2, 0
1:	add t3, t0, t2
	lbu t4, CAN_RX_DATA(t3)
	add t3, t1, t2
	sb t4, AES_IN(t3)
	addi t2, t2, 1
	li t3, 8
	blt t2, t3, 1b
2:	add t3, t1, t2
	sb x0, AES_IN(t3)
	addi t2, t2, 1
	li t3, 16
	blt t2, t3, 2b
	li t3, 1
	sw t3, CAN_RX_CTRL(t0)
	call immo_load_key
	li t0, CAN_BASE
	li t1, AES_BASE
	li t3, 1
	sw t3, AES_CTRL(t1)
3:	lw t3, AES_CTRL(t1)
	andi t3, t3, 1
	beqz t3, 3b
	li t3, 0x101
	sw t3, CAN_TX_ID(t0)
	li t3, 8
	sw t3, CAN_TX_LEN(t0)
	li t2, 0
4:	add t3, t1, t2
	lbu t4, AES_OUT(t3)
	add t3, t0, t2
	sb t4, CAN_TX_DATA(t3)
	addi t2, t2, 1
	li t3, 8
	blt t2, t3, 4b
	li t3, 1
	sw t3, CAN_TX_CTRL(t0)
	lw ra, 12(sp)
	addi sp, sp, 16
	ret

# immo_handle_cmd(a0: command byte)
immo_handle_cmd:
	addi sp, sp, -16
	sw ra, 12(sp)
	li t0, 'q'
	beq a0, t0, cmd_quit
	li t0, 'd'
	beq a0, t0, cmd_dump
	li t0, 'a'
	beq a0, t0, cmd_leak_direct
	li t0, 'b'
	beq a0, t0, cmd_leak_indirect
	li t0, 'c'
	beq a0, t0, cmd_leak_branch
	li t0, 'o'
	beq a0, t0, cmd_overwrite
	li t0, 'f'
	beq a0, t0, cmd_leak_overflow
	li t0, 'e'
	beq a0, t0, cmd_entropy
	# unknown command: ignore
cmd_done:
	lw ra, 12(sp)
	addi sp, sp, 16
	ret

cmd_quit:
	li a0, 0
	j exit

cmd_dump:
	call immo_dump
	j cmd_done

# Attack scenario 1a (paper: "directly ... write the PIN to an output
# interface").
cmd_leak_direct:
	la t1, immo_pin
	li t2, 0
1:	add t3, t1, t2
	lbu a0, 0(t3)
	li t0, UART_BASE
	sw a0, UART_TX(t0)
	addi t2, t2, 1
	li t3, 4
	blt t2, t3, 1b
	j cmd_done

# Attack scenario 1b: indirectly through an intermediate buffer, out on the
# CAN bus.
cmd_leak_indirect:
	la a0, immo_buf
	la a1, immo_pin
	li a2, 4
	call memcpy
	li t0, CAN_BASE
	li t3, 0x1FF
	sw t3, CAN_TX_ID(t0)
	li t3, 4
	sw t3, CAN_TX_LEN(t0)
	la t1, immo_buf
	li t2, 0
1:	add t3, t1, t2
	lbu t4, 0(t3)
	add t3, t0, t2
	sb t4, CAN_TX_DATA(t3)
	addi t2, t2, 1
	li t3, 4
	blt t2, t3, 1b
	li t3, 1
	sw t3, CAN_TX_CTRL(t0)
	j cmd_done

# Attack scenario 1c: a buffer-overflow read — print the serial string with
# a length that runs past its buffer into the adjacent PIN (the classic
# out-of-bounds read leak).
cmd_leak_overflow:
	la t1, serial
	li t2, 0
1:	add t3, t1, t2
	lbu t4, 0(t3)
	li t0, UART_BASE
	sw t4, UART_TX(t0)
	addi t2, t2, 1
	li t3, 16            # serial is 9 bytes; the read crosses into the PIN
	blt t2, t3, 1b
	j cmd_done

# Attack scenario 2: control flow depending on the PIN.
cmd_leak_branch:
	la t1, immo_pin
	lbu t2, 0(t1)
	andi t2, t2, 1
	beqz t2, 1f          # branch condition carries the PIN class
	li a0, '1'
	j 2f
1:	li a0, '0'
2:	li t0, UART_BASE
	sw a0, UART_TX(t0)
	j cmd_done

# Attack scenario 3: override the PIN with external data (the next UART
# byte).
cmd_overwrite:
	li t0, UART_BASE
1:	lw t1, UART_RX(t0)
	srli t2, t1, UART_RX_EMPTY_BIT
	bnez t2, 1b
	andi t1, t1, 0xFF
	la t2, immo_pin
	sb t1, 0(t2)
	j cmd_done

# The HI-overwrite entropy attack: PIN[1..3] = PIN[0]. Every store moves
# (HC,HI) data into the (HC,HI) region — allowed by the base policy.
cmd_entropy:
	la t1, immo_pin
	lbu t2, 0(t1)
	sb t2, 1(t1)
	sb t2, 2(t1)
	sb t2, 3(t1)
	j cmd_done

# immo_dump_range(a0: start, a1: end): raw bytes to the UART.
immo_dump_range:
	li t0, UART_BASE
1:	bgeu a0, a1, 2f
	lbu t1, 0(a0)
	sw t1, UART_TX(t0)
	addi a0, a0, 1
	j 1b
2:	ret

	.data
immo_data_start:
banner:
	.asciz "immo v1\n"
serial:
	.asciz "ECU-4711"
	.align 2
immo_pin:
	.byte {PIN0}, {PIN1}, {PIN2}, {PIN3}
config_word:
	.word 0x00010203
immo_buf:
	.space 16
immo_data_end:
	.byte 0
`

// Firmware assembles the immobilizer firmware.
func Firmware(v Variant) *asm.Image {
	var body string
	if v == VariantFixedIRQ {
		body = mainIRQ + firmwareBody
	} else {
		body = mainPolling + firmwareBody
	}
	for i, b := range PIN {
		body = strings.ReplaceAll(body, fmt.Sprintf("{PIN%d}", i), fmt.Sprintf("0x%02x", b))
	}
	if v == VariantVulnerable {
		body += dumpVulnerable
	} else {
		body += dumpFixed
	}
	return guest.MustProgram(body)
}
