package immo

import (
	"errors"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
)

// mustECU builds an ECU or fails the test.
func mustECU(t *testing.T, v Variant, kind PolicyKind) *ECU {
	t.Helper()
	e, err := NewECU(v, kind)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// wantViolation asserts err is a policy violation of the given kind.
func wantViolation(t *testing.T, err error, kind core.ViolationKind) *core.Violation {
	t.Helper()
	var v *core.Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want a violation", err)
	}
	if v.Kind != kind {
		t.Fatalf("violation = %v, want kind %v", v, kind)
	}
	return v
}

func TestChallengeResponseAuthentication(t *testing.T) {
	// The legitimate protocol must work under the base policy: the AES
	// declassification lets the response leave on the CAN bus even though
	// it depends on the secret PIN.
	for _, kind := range []PolicyKind{PolicyNone, PolicyBase, PolicyPerByte} {
		e := mustECU(t, VariantFixed, kind)
		challenge := [8]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04}
		resp, err := e.Authenticate(challenge)
		if err != nil {
			t.Fatalf("policy %d: %v", kind, err)
		}
		if want := Expected(challenge); resp != want {
			t.Errorf("policy %d: response % x, want % x", kind, resp, want)
		}
		// A second round with a different challenge.
		challenge2 := [8]byte{9, 8, 7, 6, 5, 4, 3, 2}
		resp2, err := e.Authenticate(challenge2)
		if err != nil {
			t.Fatal(err)
		}
		if want := Expected(challenge2); resp2 != want {
			t.Errorf("second response % x, want % x", resp2, want)
		}
	}
}

func TestDebugDumpLeaksPIN(t *testing.T) {
	// Without DIFT, the vulnerable dump silently leaks the PIN — this is
	// the baseline behaviour the policy validation is for.
	e := mustECU(t, VariantVulnerable, PolicyNone)
	dump, err := e.DebugDump()
	if err != nil {
		t.Fatal(err)
	}
	if !ContainsPIN(dump) {
		t.Fatal("vulnerable dump must contain the PIN (that's the bug)")
	}
}

func TestDebugDumpViolationDetected(t *testing.T) {
	// Under the base policy the dump hits the UART clearance as soon as a
	// PIN byte is transmitted — the vulnerability found in the paper.
	e := mustECU(t, VariantVulnerable, PolicyBase)
	_, err := e.DebugDump()
	v := wantViolation(t, err, core.KindOutputClearance)
	if v.Port != "uart0.tx" {
		t.Errorf("violation at %q, want uart0.tx", v.Port)
	}
}

func TestFixedDumpPasses(t *testing.T) {
	// The fixed firmware dumps around the PIN: no violation, and the PIN
	// does not appear in the output.
	e := mustECU(t, VariantFixed, PolicyBase)
	dump, err := e.DebugDump()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) == 0 {
		t.Fatal("fixed dump produced no output")
	}
	if ContainsPIN(dump) {
		t.Fatal("fixed dump must not contain the PIN")
	}
}

func TestAttackScenario1DirectLeak(t *testing.T) {
	e := mustECU(t, VariantFixed, PolicyBase)
	err := e.Command('a')
	v := wantViolation(t, err, core.KindOutputClearance)
	if v.Port != "uart0.tx" {
		t.Errorf("violation at %q", v.Port)
	}
}

func TestAttackScenario1IndirectLeak(t *testing.T) {
	// PIN -> intermediate buffer -> CAN: the tag follows the copy.
	e := mustECU(t, VariantFixed, PolicyBase)
	err := e.Command('b')
	v := wantViolation(t, err, core.KindOutputClearance)
	if v.Port != "can0.tx" {
		t.Errorf("violation at %q, want can0.tx", v.Port)
	}
}

func TestAttackScenario2BranchOnPIN(t *testing.T) {
	e := mustECU(t, VariantFixed, PolicyBase)
	err := e.Command('c')
	wantViolation(t, err, core.KindBranchClearance)
}

func TestAttackScenario3OverwritePIN(t *testing.T) {
	// External (LI) data into the (HC,HI) PIN region.
	e := mustECU(t, VariantFixed, PolicyBase)
	err := e.Command('o', 0x42)
	wantViolation(t, err, core.KindStoreClearance)
}

func TestEntropyAttackUndetectedByBasePolicy(t *testing.T) {
	// The paper's key observation: the base policy permits overwriting PIN
	// bytes with *other PIN bytes* (HI data into an HI region), collapsing
	// the key to 8 bits of entropy; the attacker then brute-forces the
	// byte from one observed challenge/response pair.
	e := mustECU(t, VariantFixed, PolicyBase)
	if err := e.Command('e'); err != nil {
		t.Fatalf("entropy attack must NOT be detected by the base policy, got %v", err)
	}
	challenge := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	resp, err := e.Authenticate(challenge)
	if err != nil {
		t.Fatal(err)
	}
	recovered, ok := BruteForcePIN0(challenge, resp)
	if !ok {
		t.Fatal("brute force must succeed against the collapsed key")
	}
	if recovered != PIN[0] {
		t.Errorf("recovered 0x%02x, want PIN[0] = 0x%02x", recovered, PIN[0])
	}
}

func TestEntropyAttackDetectedByPerBytePolicy(t *testing.T) {
	// The fix: per-byte PIN classes make PIN[0] -> PIN[1] an illegal flow.
	e := mustECU(t, VariantFixed, PolicyPerByte)
	err := e.Command('e')
	v := wantViolation(t, err, core.KindStoreClearance)
	if v.HaveClass() != "(HC,K0)" {
		t.Errorf("offending class = %s, want (HC,K0)", v.HaveClass())
	}
}

func TestBruteForceFailsAgainstFullEntropyKey(t *testing.T) {
	// Sanity: without the entropy attack, the 256-candidate brute force
	// cannot find the full 32-bit-entropy key.
	challenge := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	resp := Expected(challenge)
	if _, ok := BruteForcePIN0(challenge, resp); ok {
		t.Fatal("brute force must fail against the full key")
	}
}

func TestQuitCommand(t *testing.T) {
	e := mustECU(t, VariantFixed, PolicyBase)
	if err := e.Command('q'); err != nil {
		t.Fatal(err)
	}
	exited, code := e.Platform.Exited()
	if !exited || code != 0 {
		t.Errorf("exited=%v code=%d", exited, code)
	}
}

func TestUnknownCommandIgnored(t *testing.T) {
	e := mustECU(t, VariantFixed, PolicyBase)
	if err := e.Command('z'); err != nil {
		t.Fatal(err)
	}
	// Still alive and responsive.
	challenge := [8]byte{5, 5, 5, 5, 5, 5, 5, 5}
	if _, err := e.Authenticate(challenge); err != nil {
		t.Fatal(err)
	}
}

func TestKeyDerivation(t *testing.T) {
	k := Key()
	for i, b := range k {
		if b != PIN[i%4] {
			t.Fatalf("key[%d] = 0x%02x", i, b)
		}
	}
}

func TestIRQDrivenFirmware(t *testing.T) {
	// The interrupt-driven firmware must behave identically: authenticate,
	// dump safely, and all attacks must still be caught mid-handler.
	e := mustECU(t, VariantFixedIRQ, PolicyBase)
	challenge := [8]byte{0xAA, 0xBB, 1, 2, 3, 4, 5, 6}
	resp, err := e.Authenticate(challenge)
	if err != nil {
		t.Fatal(err)
	}
	if resp != Expected(challenge) {
		t.Errorf("response % x", resp)
	}
	dump, err := e.DebugDump()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) == 0 || ContainsPIN(dump) {
		t.Errorf("dump len=%d containsPIN=%v", len(dump), ContainsPIN(dump))
	}
	// Direct leak: the violation now fires inside the interrupt handler.
	err = e.Command('a')
	wantViolation(t, err, core.KindOutputClearance)
}

func TestIRQDrivenFirmwareSleeps(t *testing.T) {
	// WFI idling: with nothing to do, the IRQ firmware must execute far
	// fewer instructions per simulated second than the polling build.
	irq := mustECU(t, VariantFixedIRQ, PolicyNone)
	poll := mustECU(t, VariantFixed, PolicyNone)
	for _, e := range []*ECU{irq, poll} {
		if err := e.step(100 * kernel.MS); err != nil {
			t.Fatal(err)
		}
	}
	ni, np := irq.Platform.Instret(), poll.Platform.Instret()
	if ni*10 > np {
		t.Errorf("IRQ build executed %d instructions vs polling %d; expected >10x saving", ni, np)
	}
}

func TestIRQFirmwareEntropyAttack(t *testing.T) {
	e := mustECU(t, VariantFixedIRQ, PolicyPerByte)
	err := e.Command('e')
	wantViolation(t, err, core.KindStoreClearance)
}

func TestNewECUErrors(t *testing.T) {
	if _, err := NewECU(VariantFixed, PolicyKind(99)); err == nil {
		t.Error("unknown policy kind must fail")
	}
}

func TestPerBytePolicyShape(t *testing.T) {
	img := Firmware(VariantFixed)
	p, err := PerBytePolicy(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.L.Size(); got != 12 {
		t.Errorf("per-byte lattice size = %d, want 12 (2 conf x 6 integ)", got)
	}
	if len(p.Regions) != 4 {
		t.Errorf("regions = %d, want one per PIN byte", len(p.Regions))
	}
}

func TestAuthenticateTimesOutWithoutFirmwareResponse(t *testing.T) {
	// An ECU that has already quit cannot answer: Authenticate reports it.
	e := mustECU(t, VariantFixed, PolicyBase)
	if err := e.Command('q'); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Authenticate([8]byte{1}); err == nil {
		t.Error("authenticate against a dead ECU must fail")
	}
}

func TestAttackScenario1OverflowRead(t *testing.T) {
	// The paper's scenario 1 "through ... buffer overflow": an out-of-bounds
	// read walks off the serial-number string into the PIN.
	e := mustECU(t, VariantFixed, PolicyBase)
	err := e.Command('f')
	v := wantViolation(t, err, core.KindOutputClearance)
	if v.Port != "uart0.tx" {
		t.Errorf("violation at %q", v.Port)
	}
	// Without DIFT the same overflow silently leaks PIN bytes.
	plain := mustECU(t, VariantFixed, PolicyNone)
	plain.Platform.UART.ClearOutput()
	if err := plain.Command('f'); err != nil {
		t.Fatal(err)
	}
	out := plain.Platform.UART.Output()
	if !bytesContainByte(out, PIN[0]) {
		t.Errorf("plain overflow read did not leak PIN[0]; output % x", out)
	}
}

func bytesContainByte(hay []byte, b byte) bool {
	for _, x := range hay {
		if x == b {
			return true
		}
	}
	return false
}
