package immo_test

import (
	"bytes"
	"testing"

	"vpdift/internal/immo"
	"vpdift/internal/soc"
	"vpdift/internal/trace"
)

// immoChallenge is the fixed challenge used by the traced runs.
var immoChallenge = [8]byte{0xCA, 0xFE, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06}

// tracedAuthRun performs one immobilizer authentication round with the
// given trace views attached and returns the ECU for inspection. The caller
// closes it.
func tracedAuthRun(t *testing.T, tr *trace.Trace) *immo.ECU {
	t.Helper()
	e, err := immo.NewECUTraced(immo.VariantFixed, immo.PolicyBase, nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Authenticate(immoChallenge)
	if err != nil {
		e.Close()
		t.Fatal(err)
	}
	if resp != immo.Expected(immoChallenge) {
		e.Close()
		t.Fatalf("response mismatch: % x", resp)
	}
	return e
}

// TestKernelTraceDeterminism runs the immobilizer authentication twice with
// kernel/bus tracing attached: the simulation kernel is deterministic, so
// the two event streams must serialize byte-identically.
func TestKernelTraceDeterminism(t *testing.T) {
	stream := func() []byte {
		kt := trace.NewKernelTrace(0)
		e := tracedAuthRun(t, &trace.Trace{Kernel: kt})
		defer e.Close()
		var b bytes.Buffer
		if err := kt.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		if kt.EventCount() == 0 {
			t.Fatal("no kernel events recorded")
		}
		return b.Bytes()
	}
	a, b := stream(), stream()
	if len(a) == 0 {
		t.Fatal("empty trace stream")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs produced different kernel traces (%d vs %d bytes)",
			len(a), len(b))
	}
}

// TestProfilerAttribution requires at least 90% of the retired cycles of an
// immobilizer authentication round to attribute to named symbols in the
// firmware image — the acceptance bar for the guest profiler.
func TestProfilerAttribution(t *testing.T) {
	prof := trace.NewProfiler(soc.RAMBase, soc.DefaultRAMSize)
	e := tracedAuthRun(t, &trace.Trace{Prof: prof})
	defer e.Close()

	if prof.Total() == 0 {
		t.Fatal("profiler saw no retires")
	}
	if att := prof.Attributed(); att < 0.90 {
		t.Fatalf("only %.1f%% of %d retired cycles attributed to named symbols",
			att*100, prof.Total())
	}
	hot, flat := prof.Hottest()
	if hot == "" || flat == 0 {
		t.Fatalf("no hottest function (hot=%q flat=%d)", hot, flat)
	}
	// The idle poll loop dominates an authentication round.
	if hot != "immo_loop" {
		t.Logf("note: hottest function is %q (flat %d)", hot, flat)
	}
	// The retire hook must observe what the core retired: the profiler total
	// can lag Instret only by the interrupt-entry steps, which retire no
	// instruction.
	instret := e.Platform.Instret()
	if prof.Total() > instret || instret-prof.Total() > 64 {
		t.Fatalf("profiler total %d vs instret %d", prof.Total(), instret)
	}
}
