package immo

import (
	"errors"
	"testing"

	"vpdift/internal/core"
)

// mustDecoupledECU builds an ECU on the decoupled-taint-monitor platform.
func mustDecoupledECU(t *testing.T, v Variant, kind PolicyKind) *ECU {
	t.Helper()
	e, err := NewECUWithConfig(v, kind, ECUConfig{Decoupled: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestDecoupledCaseStudyParity replays the paper's immobilizer scenarios on
// the decoupled platform: the legitimate protocol must still pass (the AES
// declassification included), and every attack scenario must raise the same
// violation kind at the same port as the inline monitor.
func TestDecoupledCaseStudyParity(t *testing.T) {
	t.Run("authentication", func(t *testing.T) {
		e := mustDecoupledECU(t, VariantFixed, PolicyBase)
		challenge := [8]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04}
		resp, err := e.Authenticate(challenge)
		if err != nil {
			t.Fatal(err)
		}
		if want := Expected(challenge); resp != want {
			t.Errorf("response % x, want % x", resp, want)
		}
	})

	scenarios := []struct {
		name    string
		cmd     byte
		payload []byte
		kind    core.ViolationKind
		port    string
	}{
		{"direct-leak", 'a', nil, core.KindOutputClearance, "uart0.tx"},
		{"indirect-leak", 'b', nil, core.KindOutputClearance, "can0.tx"},
		{"branch-on-pin", 'c', nil, core.KindBranchClearance, ""},
		{"overwrite-pin", 'o', []byte{0x42}, core.KindStoreClearance, ""},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			// Inline reference and decoupled platform, same stimulus.
			ei := mustECU(t, VariantFixed, PolicyBase)
			errI := ei.Command(sc.cmd, sc.payload...)
			ed := mustDecoupledECU(t, VariantFixed, PolicyBase)
			errD := ed.Command(sc.cmd, sc.payload...)

			var vi, vd *core.Violation
			if !errors.As(errI, &vi) || !errors.As(errD, &vd) {
				t.Fatalf("want violations in both modes: inline=%v decoupled=%v", errI, errD)
			}
			if vd.Kind != sc.kind {
				t.Fatalf("decoupled violation = %v, want kind %v", vd, sc.kind)
			}
			if sc.port != "" && vd.Port != sc.port {
				t.Errorf("decoupled violation port = %q, want %q", vd.Port, sc.port)
			}
			if vi.Kind != vd.Kind || vi.PC != vd.PC || vi.Addr != vd.Addr ||
				vi.Have != vd.Have || vi.Required != vd.Required || vi.Port != vd.Port {
				t.Errorf("violation diverged:\ninline:    %+v\ndecoupled: %+v", vi, vd)
			}
		})
	}

	t.Run("entropy-attack-per-byte", func(t *testing.T) {
		// The per-byte policy's store clearance must fire identically.
		ei := mustECU(t, VariantFixed, PolicyPerByte)
		errI := ei.Command('e')
		ed := mustDecoupledECU(t, VariantFixed, PolicyPerByte)
		errD := ed.Command('e')
		var vi, vd *core.Violation
		if !errors.As(errI, &vi) || !errors.As(errD, &vd) {
			t.Fatalf("want violations in both modes: inline=%v decoupled=%v", errI, errD)
		}
		if vi.Kind != vd.Kind || vi.PC != vd.PC || vi.Addr != vd.Addr {
			t.Errorf("violation diverged:\ninline:    %+v\ndecoupled: %+v", vi, vd)
		}
	})
}
