package immo

import (
	"bytes"
	"encoding/json"
	"testing"

	"vpdift/internal/kernel"
	"vpdift/internal/telemetry"
)

// The PR's acceptance scenario: the immobilizer under a 1 ms sampler must
// produce a timeseries of at least 10 samples with strictly increasing
// simulated timestamps and monotone sim.instret.
func TestImmoTelemetryTimeseries(t *testing.T) {
	smp := telemetry.NewSampler(telemetry.Options{Every: kernel.MS})
	e, err := NewECUSampled(VariantFixed, PolicyBase, nil, nil, nil, smp)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for i := 0; i < 6; i++ {
		challenge := [8]byte{byte(i), 2, 3, 4, 5, 6, 7, 8}
		resp, err := e.Authenticate(challenge)
		if err != nil {
			t.Fatal(err)
		}
		if want := Expected(challenge); resp != want {
			t.Fatalf("round %d: resp = %x, want %x", i, resp, want)
		}
	}
	// Idle stretch: the guest polls quietly, the daemon keeps sampling.
	if err := e.step(8 * kernel.MS); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := smp.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) < 10 {
		t.Fatalf("timeseries has %d samples, want >= 10", len(lines))
	}
	var prevT, prevI uint64
	for i, line := range lines {
		var sm struct {
			T       uint64            `json:"t_ns"`
			Metrics map[string]uint64 `json:"metrics"`
		}
		if err := json.Unmarshal(line, &sm); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if i > 0 && sm.T <= prevT {
			t.Fatalf("line %d: t_ns %d not strictly increasing after %d", i, sm.T, prevT)
		}
		prevT = sm.T
		if ir := sm.Metrics["sim.instret"]; ir < prevI {
			t.Fatalf("line %d: sim.instret %d moved backwards from %d", i, ir, prevI)
		} else {
			prevI = ir
		}
	}
	// The firmware authenticates and then idles; the sampler keeps ticking
	// through the idle stretches, so instret plateaus but time keeps moving —
	// exactly the shape a dashboard needs to show "the guest is quiet".
	if last, ok := smp.Last(); !ok || last.Metrics["sim.instret"] == 0 {
		t.Fatal("final sample has no retired instructions")
	}
}

// Telemetry must not change what the simulation computes: the same
// challenge sequence with and without a sampler yields identical responses
// and identical final instruction counts.
func TestImmoTelemetryNonIntrusive(t *testing.T) {
	run := func(smp *telemetry.Sampler) ([8]byte, uint64) {
		e, err := NewECUSampled(VariantFixed, PolicyBase, nil, nil, nil, smp)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		challenge := [8]byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4}
		resp, err := e.Authenticate(challenge)
		if err != nil {
			t.Fatal(err)
		}
		return resp, e.Platform.Instret()
	}
	respPlain, instretPlain := run(nil)
	respSampled, instretSampled := run(telemetry.NewSampler(telemetry.Options{Every: kernel.MS}))
	if respPlain != respSampled {
		t.Errorf("responses diverge: %x vs %x", respPlain, respSampled)
	}
	if instretPlain != instretSampled {
		t.Errorf("instret diverges: %d vs %d", instretPlain, instretSampled)
	}
}
