package immo

import (
	"errors"
	"reflect"
	"testing"

	"vpdift/internal/core"
)

// TestForensicParityCaseStudy runs the paper's immobilizer attack scenarios
// and holds the flight recorder to the same contract the WK suite enforces:
// every violating scenario freezes a bundle whose trace window ends at the
// violation, bit-identical between the inline and decoupled monitor, and
// disabling the recorder changes nothing about the verdict.
func TestForensicParityCaseStudy(t *testing.T) {
	scenarios := []struct {
		name    string
		cmd     byte
		payload []byte
		kind    core.ViolationKind
	}{
		{"direct-leak", 'a', nil, core.KindOutputClearance},
		{"branch-on-pin", 'c', nil, core.KindBranchClearance},
		{"overwrite-pin", 'o', []byte{0x42}, core.KindStoreClearance},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			ei := mustECU(t, VariantFixed, PolicyBase)
			errI := ei.Command(sc.cmd, sc.payload...)
			ed := mustDecoupledECU(t, VariantFixed, PolicyBase)
			errD := ed.Command(sc.cmd, sc.payload...)

			var vi, vd *core.Violation
			if !errors.As(errI, &vi) || !errors.As(errD, &vd) {
				t.Fatalf("want violations in both modes: inline=%v decoupled=%v", errI, errD)
			}
			bI := ei.Platform.LastForensics()
			bD := ed.Platform.LastForensics()
			if bI == nil || bD == nil {
				t.Fatalf("missing bundle: inline=%v decoupled=%v", bI != nil, bD != nil)
			}
			if bI.Reason != "violation" {
				t.Fatalf("bundle reason %q, want violation", bI.Reason)
			}
			for _, b := range []struct {
				mode string
				got  string
			}{{"inline", bI.Trace[len(bI.Trace)-1].Kind}, {"decoupled", bD.Trace[len(bD.Trace)-1].Kind}} {
				if b.got != "violation" {
					t.Fatalf("%s trace window ends at %q, want violation", b.mode, b.got)
				}
			}
			if !reflect.DeepEqual(bI.Regs, bD.Regs) {
				t.Errorf("register/tag files diverge")
			}
			if !reflect.DeepEqual(bI.Trace, bD.Trace) {
				t.Errorf("trace windows diverge (inline %d records, decoupled %d)",
					len(bI.Trace), len(bD.Trace))
			}
			if !reflect.DeepEqual(bI.Violation, bD.Violation) {
				t.Errorf("violation headlines diverge:\ninline:    %+v\ndecoupled: %+v",
					bI.Violation, bD.Violation)
			}

			// Recorder off: same verdict, no bundle.
			eo, err := NewECUWithConfig(VariantFixed, PolicyBase, ECUConfig{FlightOff: true})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(eo.Close)
			errO := eo.Command(sc.cmd, sc.payload...)
			var vo *core.Violation
			if !errors.As(errO, &vo) {
				t.Fatalf("recorder-off run did not violate: %v", errO)
			}
			if vo.Kind != vi.Kind || vo.PC != vi.PC || vo.Addr != vi.Addr {
				t.Fatalf("recorder-off violation diverges: on=%v off=%v", vi, vo)
			}
			if eo.Platform.LastForensics() != nil {
				t.Fatal("recorder-off platform produced a bundle")
			}
		})
	}
}
