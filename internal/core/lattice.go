package core

import (
	"fmt"
	"strings"
)

// Lattice is an Information Flow Policy (IFP): a finite join-semilattice of
// security classes. Following the paper (Section IV-A), an IFP describes the
// allowed information flow in the system. An edge X -> Y means data of class
// X may flow to a place (output interface, memory region, execution unit)
// with clearance Y. Clearance checks use the reflexive-transitive closure of
// the edges (AllowedFlow); combining data uses the least upper bound (LUB).
//
// A Lattice is immutable after construction. LUB and AllowedFlow are
// precomputed tables, so both operations are O(1) — this is the hot path of
// the DIFT engine.
type Lattice struct {
	names   []string
	allowed []bool // n*n closure matrix: allowed[x*n+y] == AllowedFlow(x, y)
	lub     []Tag  // n*n join table: lub[x*n+y] == LUB(x, y)

	// lubCount, when non-nil, is incremented on every LUB — the observer's
	// join-operation counter. Set once at platform wiring time (before the
	// simulation starts); nil in normal operation so the hot path pays only
	// a predictable not-taken branch.
	lubCount *uint64

	// lubPair/flowPair, when non-nil, are n*n per-edge hit-count matrices
	// maintained by the coverage subsystem's policy audit: lubPair[a*n+b]
	// counts LUB(a, b) calls and flowPair[from*n+to] counts AllowedFlow
	// queries. Like lubCount they are installed once at wiring time and nil
	// in normal operation (one predictable not-taken branch per call).
	lubPair  []uint64
	flowPair []uint64
}

// NewLattice builds an IFP from named security classes and directed flow
// edges. Edges are given as pairs of class names (from, to). The relation is
// closed reflexively and transitively. NewLattice returns an error when
//
//   - a class name is duplicated or an edge mentions an unknown class,
//   - the flow relation has a cycle between distinct classes (the order must
//     be a partial order), or
//   - some pair of classes has no unique least upper bound (the order must be
//     a join-semilattice so that combining data always yields a well-defined
//     class).
func NewLattice(classes []string, edges [][2]string) (*Lattice, error) {
	n := len(classes)
	if n == 0 {
		return nil, fmt.Errorf("lattice: no security classes")
	}
	if n > MaxClasses {
		return nil, fmt.Errorf("lattice: %d classes exceeds the maximum of %d", n, MaxClasses)
	}
	index := make(map[string]int, n)
	for i, name := range classes {
		if name == "" {
			return nil, fmt.Errorf("lattice: class %d has an empty name", i)
		}
		if _, dup := index[name]; dup {
			return nil, fmt.Errorf("lattice: duplicate class %q", name)
		}
		index[name] = i
	}

	allowed := make([]bool, n*n)
	for i := 0; i < n; i++ {
		allowed[i*n+i] = true
	}
	for _, e := range edges {
		from, ok := index[e[0]]
		if !ok {
			return nil, fmt.Errorf("lattice: edge references unknown class %q", e[0])
		}
		to, ok := index[e[1]]
		if !ok {
			return nil, fmt.Errorf("lattice: edge references unknown class %q", e[1])
		}
		allowed[from*n+to] = true
	}
	// Warshall transitive closure.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !allowed[i*n+k] {
				continue
			}
			for j := 0; j < n; j++ {
				if allowed[k*n+j] {
					allowed[i*n+j] = true
				}
			}
		}
	}
	// Antisymmetry: a cycle between distinct classes makes them equivalent,
	// which almost certainly indicates a policy specification bug.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if allowed[i*n+j] && allowed[j*n+i] {
				return nil, fmt.Errorf("lattice: classes %q and %q flow to each other; merge them into one class",
					classes[i], classes[j])
			}
		}
	}

	// Precompute joins and verify the join-semilattice property.
	lub := make([]Tag, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			join, err := computeJoin(allowed, n, i, j, classes)
			if err != nil {
				return nil, err
			}
			lub[i*n+j] = Tag(join)
		}
	}

	l := &Lattice{
		names:   append([]string(nil), classes...),
		allowed: allowed,
		lub:     lub,
	}
	return l, nil
}

// computeJoin finds the unique least upper bound of classes i and j, or
// reports an error when none exists or it is ambiguous.
func computeJoin(allowed []bool, n, i, j int, names []string) (int, error) {
	// Scan the upper bounds (classes u with i->u and j->u), keeping the
	// lowest comparable one; uniqueness is verified below.
	best := -1
	for u := 0; u < n; u++ {
		if !(allowed[i*n+u] && allowed[j*n+u]) {
			continue
		}
		if best == -1 || allowed[u*n+best] {
			best = u
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("lattice: classes %q and %q have no common upper bound; add a top class", names[i], names[j])
	}
	// best must be below every other upper bound, otherwise the LUB is
	// ambiguous.
	for u := 0; u < n; u++ {
		if allowed[i*n+u] && allowed[j*n+u] && !allowed[best*n+u] {
			return 0, fmt.Errorf("lattice: classes %q and %q have no unique least upper bound (%q and %q are incomparable bounds)",
				names[i], names[j], names[best], names[u])
		}
	}
	return best, nil
}

// MustNewLattice is NewLattice that panics on error. It is intended for
// statically-known policies (the IFP-1/2/3 constructors and tests).
func MustNewLattice(classes []string, edges [][2]string) *Lattice {
	l, err := NewLattice(classes, edges)
	if err != nil {
		panic(err)
	}
	return l
}

// Size returns the number of security classes.
func (l *Lattice) Size() int { return len(l.names) }

// Name returns the name of the class identified by t.
func (l *Lattice) Name(t Tag) string {
	if int(t) >= len(l.names) {
		return fmt.Sprintf("<invalid tag %d>", t)
	}
	return l.names[t]
}

// TagOf looks up a class by name.
func (l *Lattice) TagOf(name string) (Tag, bool) {
	for i, n := range l.names {
		if n == name {
			return Tag(i), true
		}
	}
	return 0, false
}

// MustTag is TagOf that panics when the class does not exist.
func (l *Lattice) MustTag(name string) Tag {
	t, ok := l.TagOf(name)
	if !ok {
		panic(fmt.Sprintf("lattice: unknown class %q (have %s)", name, strings.Join(l.names, ", ")))
	}
	return t
}

// LUB returns the least upper bound of two security classes: the class of
// data produced by combining data of classes a and b (paper Section IV-A).
func (l *Lattice) LUB(a, b Tag) Tag {
	if l.lubCount != nil {
		*l.lubCount++
	}
	n := len(l.names)
	if l.lubPair != nil {
		l.lubPair[int(a)*n+int(b)]++
	}
	return l.lub[int(a)*n+int(b)]
}

// SetLUBCounter installs (or, with nil, removes) the join-operation counter.
// It must be called before the simulation starts; counter installation is
// the only permitted post-construction mutation of a Lattice.
func (l *Lattice) SetLUBCounter(c *uint64) { l.lubCount = c }

// SetAuditCounters installs (or, with nil, removes) the policy audit's
// per-pair hit matrices: lubPair[a*n+b] counts LUB(a, b) calls and
// flowPair[from*n+to] counts AllowedFlow(from, to) queries. Each slice must
// be nil or of length Size()*Size(). Like SetLUBCounter it must be called
// before the simulation starts.
func (l *Lattice) SetAuditCounters(lubPair, flowPair []uint64) {
	n := len(l.names)
	if lubPair != nil && len(lubPair) != n*n {
		panic(fmt.Sprintf("lattice: lubPair length %d, want %d", len(lubPair), n*n))
	}
	if flowPair != nil && len(flowPair) != n*n {
		panic(fmt.Sprintf("lattice: flowPair length %d, want %d", len(flowPair), n*n))
	}
	l.lubPair = lubPair
	l.flowPair = flowPair
}

// AllowedFlow reports whether data of class from may flow to a sink with
// clearance to — the paper's allowedFlow(X, Y) predicate. It holds iff there
// is a (possibly empty) directed path from `from` to `to` in the IFP.
func (l *Lattice) AllowedFlow(from, to Tag) bool {
	n := len(l.names)
	if l.flowPair != nil {
		l.flowPair[int(from)*n+int(to)]++
	}
	return l.allowed[int(from)*n+int(to)]
}

// Top returns the greatest class — the one every class may flow to — if the
// lattice has one. A sink with the top as clearance admits all data; trusted
// peripherals like the immobilizer's AES engine use it as input clearance.
func (l *Lattice) Top() (Tag, bool) {
	t := Tag(0)
	for i := 1; i < len(l.names); i++ {
		t = l.LUB(t, Tag(i))
	}
	for i := 0; i < len(l.names); i++ {
		if !l.AllowedFlow(Tag(i), t) {
			return 0, false
		}
	}
	return t, true
}

// Classes returns the class names in tag order.
func (l *Lattice) Classes() []string {
	return append([]string(nil), l.names...)
}

// String renders the lattice as its classes and direct flow relation; used
// in logs and the policy dumps of cmd/vp-run.
func (l *Lattice) String() string {
	var b strings.Builder
	b.WriteString("classes: ")
	b.WriteString(strings.Join(l.names, ", "))
	b.WriteString("; flows:")
	n := len(l.names)
	first := true
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && l.allowed[i*n+j] {
				if !first {
					b.WriteString(",")
				}
				first = false
				fmt.Fprintf(&b, " %s->%s", l.names[i], l.names[j])
			}
		}
	}
	if first {
		b.WriteString(" (none)")
	}
	return b.String()
}

// DOT renders the IFP as a Graphviz digraph of its covering relation (the
// transitive reduction of the flow relation) — the notation of the paper's
// Fig. 1. Pipe the output of cmd/ifp-dot through `dot -Tsvg` to draw it.
func (l *Lattice) DOT(name string) string {
	n := len(l.names)
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=BT;\n  node [shape=box];\n", name)
	for _, c := range l.names {
		fmt.Fprintf(&b, "  %q;\n", c)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || !l.allowed[i*n+j] {
				continue
			}
			// Covering edge: no intermediate k with i->k->j.
			covering := true
			for k := 0; k < n && covering; k++ {
				if k != i && k != j && l.allowed[i*n+k] && l.allowed[k*n+j] {
					covering = false
				}
			}
			if covering {
				fmt.Fprintf(&b, "  %q -> %q;\n", l.names[i], l.names[j])
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Standard class names used by the IFP constructors below, matching Fig. 1 of
// the paper. For the product lattice IFP-3 the combined names are of the form
// "(HC,LI)".
const (
	ClassLC = "LC" // Low-Confidentiality
	ClassHC = "HC" // High-Confidentiality
	ClassHI = "HI" // High-Integrity
	ClassLI = "LI" // Low-Integrity
)

// IFP1 returns the confidentiality lattice of Fig. 1 (left): classes LC and
// HC with the single flow LC -> HC. Confidential (HC) data may not flow to an
// LC sink.
func IFP1() *Lattice {
	return MustNewLattice(
		[]string{ClassLC, ClassHC},
		[][2]string{{ClassLC, ClassHC}},
	)
}

// IFP2 returns the integrity lattice of Fig. 1 (middle): classes HI and LI
// with the single flow HI -> LI. Untrusted (LI) data may not flow to an HI
// sink.
func IFP2() *Lattice {
	return MustNewLattice(
		[]string{ClassHI, ClassLI},
		[][2]string{{ClassHI, ClassLI}},
	)
}

// IFP3 returns the combined confidentiality+integrity lattice of Fig. 1
// (right): the product of IFP1 and IFP2 with four classes. A flow is allowed
// iff it is allowed in both component lattices. The paper's LUB example
// holds: LUB((LC,LI), (HC,HI)) == (HC,LI).
func IFP3() *Lattice {
	l, err := Product(IFP1(), IFP2())
	if err != nil {
		panic(err) // product of two valid lattices is always valid
	}
	return l
}

// Product combines two IFPs into their product lattice: classes are pairs
// "(a,b)", and a flow (a1,b1) -> (a2,b2) is allowed iff a1 -> a2 in the first
// lattice and b1 -> b2 in the second. This is the paper's "natural
// combination" used to build IFP-3 from IFP-1 and IFP-2.
func Product(a, b *Lattice) (*Lattice, error) {
	na, nb := a.Size(), b.Size()
	if na*nb > MaxClasses {
		return nil, fmt.Errorf("lattice: product would have %d classes (max %d)", na*nb, MaxClasses)
	}
	classes := make([]string, 0, na*nb)
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			classes = append(classes, "("+a.names[i]+","+b.names[j]+")")
		}
	}
	var edges [][2]string
	for i1 := 0; i1 < na; i1++ {
		for j1 := 0; j1 < nb; j1++ {
			for i2 := 0; i2 < na; i2++ {
				for j2 := 0; j2 < nb; j2++ {
					if i1 == i2 && j1 == j2 {
						continue
					}
					if a.allowed[i1*na+i2] && b.allowed[j1*nb+j2] {
						edges = append(edges, [2]string{classes[i1*nb+j1], classes[i2*nb+j2]})
					}
				}
			}
		}
	}
	return NewLattice(classes, edges)
}

// PerByteKeyIntegrity returns an integrity lattice with per-key-byte classes,
// the fix applied at the end of the paper's immobilizer case study
// (Section VI-A): each byte i of the secret PIN gets its own class "K<i>"
// so that one key byte cannot overwrite another (which would reduce the
// encryption entropy and enable a byte-by-byte brute-force attack).
//
// Flows: K<i> -> HI -> LI. The K classes are pairwise incomparable, and no
// class flows *into* a K class: PIN bytes are only ever classified at
// provisioning time, never written at runtime.
func PerByteKeyIntegrity(keyBytes int) (*Lattice, error) {
	if keyBytes < 1 {
		return nil, fmt.Errorf("lattice: key must have at least 1 byte, got %d", keyBytes)
	}
	classes := []string{ClassHI, ClassLI}
	edges := [][2]string{{ClassHI, ClassLI}}
	for i := 0; i < keyBytes; i++ {
		k := fmt.Sprintf("K%d", i)
		classes = append(classes, k)
		edges = append(edges, [2]string{k, ClassHI})
	}
	return NewLattice(classes, edges)
}
