package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestWordBytesRoundTrip(t *testing.T) {
	l := IFP1()
	hc := l.MustTag(ClassHC)
	w := W(0xdeadbeef, hc)
	var buf [4]TByte
	w.Bytes(buf[:])
	for i, b := range buf {
		if b.T != hc {
			t.Errorf("byte %d tag = %d, want HC (to_bytes uses the same tag for each byte)", i, b.T)
		}
	}
	got := WordFromBytes(l, buf[:])
	if got != w {
		t.Errorf("round trip = %v, want %v", got, w)
	}
}

func TestWordFromBytesJoinsTags(t *testing.T) {
	// from_bytes must LUB-combine all byte tags (Fig. 3, line 21).
	l := IFP3()
	lcLI := l.MustTag("(LC,LI)")
	hcHI := l.MustTag("(HC,HI)")
	lcHI := l.MustTag("(LC,HI)")
	buf := []TByte{{1, lcHI}, {2, lcLI}, {3, hcHI}, {4, lcHI}}
	w := WordFromBytes(l, buf)
	if w.V != 0x04030201 {
		t.Errorf("value = 0x%08x, want 0x04030201 (little endian)", w.V)
	}
	if want := l.MustTag("(HC,LI)"); w.T != want {
		t.Errorf("tag = %s, want (HC,LI)", l.Name(w.T))
	}
}

func TestHalfBytesRoundTrip(t *testing.T) {
	l := IFP2()
	li := l.MustTag(ClassLI)
	w := W(0x1234cafe, li)
	var buf [2]TByte
	w.HalfBytes(buf[:])
	h := HalfFromBytes(l, buf[:])
	if h.V != 0xcafe || h.T != li {
		t.Errorf("half round trip = %v", h)
	}
}

func TestWordByte(t *testing.T) {
	l := IFP1()
	b := W(0xa1b2c3d4, l.MustTag(ClassHC)).Byte()
	if b.V != 0xd4 || b.T != l.MustTag(ClassHC) {
		t.Errorf("Byte() = %+v", b)
	}
}

func TestCheckClearance(t *testing.T) {
	l := IFP1()
	lc, hc := l.MustTag(ClassLC), l.MustTag(ClassHC)
	if err := W(1, lc).CheckClearance(l, hc); err != nil {
		t.Errorf("LC data at HC sink must pass: %v", err)
	}
	if err := W(1, lc).CheckClearance(l, lc); err != nil {
		t.Errorf("LC data at LC sink must pass: %v", err)
	}
	err := W(0x42, hc).CheckClearance(l, lc)
	if err == nil {
		t.Fatal("HC data at LC sink must be rejected")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("error type = %T, want *Violation", err)
	}
	if v.Kind != KindOutputClearance || v.Have != hc || v.Required != lc || v.Value != 0x42 {
		t.Errorf("violation fields = %+v", v)
	}
	if v.HaveClass() != ClassHC || v.RequiredClass() != ClassLC {
		t.Errorf("violation classes = %s -> %s", v.HaveClass(), v.RequiredClass())
	}
}

func TestJoinBytes(t *testing.T) {
	l := IFP2()
	hi, li := l.MustTag(ClassHI), l.MustTag(ClassLI)
	if got := JoinBytes(l, hi, nil); got != hi {
		t.Errorf("empty fold = %s, want seed", l.Name(got))
	}
	data := []TByte{{0, hi}, {0, hi}, {0, li}}
	if got := JoinBytes(l, hi, data); got != li {
		t.Errorf("fold = %s, want LI", l.Name(got))
	}
}

func TestTagAllValuesCopyValues(t *testing.T) {
	l := IFP1()
	hc := l.MustTag(ClassHC)
	src := []byte{1, 2, 3}
	tb := TagAll(src, hc)
	for i, b := range tb {
		if b.V != src[i] || b.T != hc {
			t.Errorf("TagAll[%d] = %+v", i, b)
		}
	}
	if got := Values(tb); string(got) != string(src) {
		t.Errorf("Values = %v", got)
	}
	dst := make([]byte, 2)
	CopyValues(dst, tb)
	if dst[0] != 1 || dst[1] != 2 {
		t.Errorf("CopyValues = %v", dst)
	}
	big := make([]byte, 5)
	CopyValues(big, tb) // must not panic on short src
	if big[2] != 3 || big[3] != 0 {
		t.Errorf("CopyValues short-src = %v", big)
	}
}

func TestDeclassifier(t *testing.T) {
	l := IFP1()
	lc, hc := l.MustTag(ClassLC), l.MustTag(ClassHC)
	d := NewDeclassifier(l)
	w := d.Word(W(7, hc), lc)
	if w.T != lc || w.V != 7 {
		t.Errorf("declassified word = %v", w)
	}
	data := []TByte{{1, hc}, {2, hc}}
	d.Bytes(data, lc)
	for i, b := range data {
		if b.T != lc {
			t.Errorf("declassified byte %d tag = %d", i, b.T)
		}
	}
}

func TestWordString(t *testing.T) {
	if got := W(0x2a, 1).String(); got != "0x0000002a#1" {
		t.Errorf("String() = %q", got)
	}
}

func TestPropertyBytesRoundTrip(t *testing.T) {
	l := IFP3()
	f := func(v uint32, rawTag uint8) bool {
		tag := clamp(l, rawTag)
		var buf [4]TByte
		w := W(v, tag)
		w.Bytes(buf[:])
		return WordFromBytes(l, buf[:]) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyFromBytesTagIsFoldOfByteTags(t *testing.T) {
	l := IFP3()
	f := func(vals [4]byte, raw [4]uint8) bool {
		var buf [4]TByte
		want := clamp(l, raw[0])
		for i := range buf {
			buf[i] = TByte{vals[i], clamp(l, raw[i])}
			want = l.LUB(want, clamp(l, raw[i]))
		}
		return WordFromBytes(l, buf[:]).T == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
