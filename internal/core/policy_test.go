package core

import (
	"errors"
	"strings"
	"testing"
)

func testPolicy(t *testing.T) (*Policy, Tag, Tag) {
	t.Helper()
	l := IFP2()
	hi, li := l.MustTag(ClassHI), l.MustTag(ClassLI)
	p := NewPolicy(l, li).
		WithFetchClearance(hi).
		WithOutput("uart0.tx", li).
		WithRegion(RegionRule{
			Name: "pin", Start: 0x100, End: 0x104,
			Classify: true, Class: hi,
			CheckStore: true, Clearance: hi,
		})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, hi, li
}

func TestPolicyClassifyAt(t *testing.T) {
	p, hi, li := testPolicy(t)
	if got := p.ClassifyAt(0x100); got != hi {
		t.Errorf("ClassifyAt(pin) = %d, want HI", got)
	}
	if got := p.ClassifyAt(0x103); got != hi {
		t.Errorf("ClassifyAt(pin end-1) = %d, want HI", got)
	}
	if got := p.ClassifyAt(0x104); got != li {
		t.Errorf("ClassifyAt(past pin) = %d, want default", got)
	}
	if got := p.ClassifyAt(0xff); got != li {
		t.Errorf("ClassifyAt(before pin) = %d, want default", got)
	}
}

func TestPolicyClassifyFirstRuleWins(t *testing.T) {
	l := IFP2()
	hi, li := l.MustTag(ClassHI), l.MustTag(ClassLI)
	p := NewPolicy(l, li).
		WithRegion(RegionRule{Name: "inner", Start: 0x10, End: 0x20, Classify: true, Class: hi}).
		WithRegion(RegionRule{Name: "outer", Start: 0x00, End: 0x100, Classify: true, Class: li})
	if got := p.ClassifyAt(0x10); got != hi {
		t.Errorf("first matching rule must win, got %d", got)
	}
}

func TestPolicyCheckStore(t *testing.T) {
	p, hi, li := testPolicy(t)
	if err := p.CheckStore(0x100, hi); err != nil {
		t.Errorf("HI store into pin must pass: %v", err)
	}
	if err := p.CheckStore(0x200, li); err != nil {
		t.Errorf("store outside protected region must pass: %v", err)
	}
	err := p.CheckStore(0x102, li)
	if err == nil {
		t.Fatal("LI store into HI-protected pin must be rejected")
	}
	var v *Violation
	if !errors.As(err, &v) || v.Kind != KindStoreClearance || v.Addr != 0x102 {
		t.Errorf("violation = %+v", err)
	}
}

func TestPolicyCheckStoreAllOverlappingRules(t *testing.T) {
	l, err := PerByteKeyIntegrity(2)
	if err != nil {
		t.Fatal(err)
	}
	li := l.MustTag(ClassLI)
	k0, k1 := l.MustTag("K0"), l.MustTag("K1")
	p := NewPolicy(l, li).
		WithRegion(RegionRule{Name: "pin0", Start: 0x100, End: 0x101, CheckStore: true, Clearance: k0}).
		WithRegion(RegionRule{Name: "pin1", Start: 0x101, End: 0x102, CheckStore: true, Clearance: k1})
	// Writing K0-classified data over PIN byte 1 is the entropy attack and
	// must be rejected.
	if err := p.CheckStore(0x101, k0); err == nil {
		t.Error("K0 data into K1 region must be rejected")
	}
	if err := p.CheckStore(0x101, k1); err != nil {
		t.Errorf("K1 data into K1 region must pass: %v", err)
	}
}

func TestPolicyCheckOutput(t *testing.T) {
	p, hi, li := testPolicy(t)
	if err := p.CheckOutput("uart0.tx", hi); err != nil {
		t.Errorf("HI -> LI output must pass: %v", err)
	}
	if err := p.CheckOutput("uart0.tx", li); err != nil {
		t.Errorf("LI -> LI output must pass: %v", err)
	}
	if err := p.CheckOutput("unknown.port", li); err != nil {
		t.Errorf("unchecked port must pass: %v", err)
	}

	// A confidentiality policy rejects HC on an LC port.
	l := IFP1()
	lc, hc := l.MustTag(ClassLC), l.MustTag(ClassHC)
	pc := NewPolicy(l, lc).WithOutput("uart0.tx", lc)
	err := pc.CheckOutput("uart0.tx", hc)
	if err == nil {
		t.Fatal("HC data on LC port must be rejected")
	}
	var v *Violation
	if !errors.As(err, &v) || v.Port != "uart0.tx" {
		t.Errorf("violation = %+v", err)
	}
	if !strings.Contains(err.Error(), "uart0.tx") {
		t.Errorf("error should mention port: %v", err)
	}
}

func TestPolicyValidate(t *testing.T) {
	l := IFP1() // 2 classes: tags 0, 1
	bad := Tag(9)
	cases := []struct {
		name string
		p    *Policy
	}{
		{"nil lattice", &Policy{}},
		{"bad default", NewPolicy(l, bad)},
		{"bad fetch", NewPolicy(l, 0).WithFetchClearance(bad)},
		{"bad branch", NewPolicy(l, 0).WithBranchClearance(bad)},
		{"bad memaddr", NewPolicy(l, 0).WithMemAddrClearance(bad)},
		{"bad output", NewPolicy(l, 0).WithOutput("p", bad)},
		{"bad region class", NewPolicy(l, 0).WithRegion(RegionRule{Name: "r", Start: 0, End: 4, Classify: true, Class: bad})},
		{"bad region clearance", NewPolicy(l, 0).WithRegion(RegionRule{Name: "r", Start: 0, End: 4, CheckStore: true, Clearance: bad})},
		{"empty region", NewPolicy(l, 0).WithRegion(RegionRule{Name: "r", Start: 4, End: 4})},
		{"inverted region", NewPolicy(l, 0).WithRegion(RegionRule{Name: "r", Start: 8, End: 4})},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: Validate must fail", c.name)
		}
	}
	good := NewPolicy(l, 0).
		WithFetchClearance(1).WithBranchClearance(0).WithMemAddrClearance(0).
		WithOutput("p", 1).
		WithRegion(RegionRule{Name: "r", Start: 0, End: 4, Classify: true, CheckStore: true, Clearance: 1})
	if err := good.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
}

func TestPolicyWithOutputOnZeroValue(t *testing.T) {
	var p Policy
	p.L = IFP1()
	p.WithOutput("x", 0) // must allocate the map
	if _, ok := p.OutputClearance("x"); !ok {
		t.Error("WithOutput on zero-value policy lost the entry")
	}
}

func TestViolationKindStrings(t *testing.T) {
	kinds := []ViolationKind{
		KindOutputClearance, KindFetchClearance, KindBranchClearance,
		KindMemAddrClearance, KindStoreClearance, ViolationKind(99),
	}
	want := []string{
		"output-clearance", "fetch-clearance", "branch-clearance",
		"mem-addr-clearance", "store-clearance", "violation-kind(99)",
	}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d String() = %q, want %q", i, k.String(), want[i])
		}
	}
}

func TestViolationErrorMessage(t *testing.T) {
	l := IFP2()
	v := NewViolation(l, KindFetchClearance, l.MustTag(ClassLI), l.MustTag(ClassHI)).
		WithPC(0x80000010).WithAddr(0x2000).WithValue(0x1234)
	msg := v.Error()
	for _, want := range []string{"fetch-clearance", "LI", "HI", "0x80000010", "0x00002000"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
	// A violation without a bound lattice still prints.
	raw := &Violation{Kind: KindStoreClearance, Have: 3, Required: 1}
	if !strings.Contains(raw.Error(), "tag 3") {
		t.Errorf("unbound violation error = %q", raw.Error())
	}
}
