package core

import "fmt"

// ExecClearance configures the three execution-clearance points the paper
// identifies inside the CPU core (Section V-B2): branch execution,
// instruction fetch, and memory access. Each point can be enabled
// independently and is assigned its own clearance class, "to let the engineer
// select the most suitable configuration".
type ExecClearance struct {
	CheckFetch bool
	Fetch      Tag // instruction words must satisfy allowedFlow(class(insn), Fetch)

	CheckBranch bool
	Branch      Tag // branch conditions and trap-vector targets must satisfy allowedFlow(class(cond), Branch)

	CheckMemAddr bool
	MemAddr      Tag // load/store addresses must satisfy allowedFlow(class(addr), MemAddr)
}

// RegionRule attaches policy to a physical address range [Start, End).
// A rule can play two roles, separately or together:
//
//   - Classification: data loaded into the region at image-load time (and
//     data read from it before ever being written) carries Class. This
//     implements the paper's classification of e.g. "a secret key stored in
//     memory" or "the memory holding the program is classified as HI during
//     program loading".
//   - Store clearance: every store into the region must satisfy
//     allowedFlow(class(data), Clearance). This implements integrity
//     protection of sensitive data such as the immobilizer PIN.
type RegionRule struct {
	Name  string
	Start uint32 // inclusive
	End   uint32 // exclusive

	Classify bool
	Class    Tag

	CheckStore bool
	Clearance  Tag
}

// Contains reports whether addr falls inside the region.
func (r *RegionRule) Contains(addr uint32) bool { return addr >= r.Start && addr < r.End }

// Policy is a complete security policy in the sense of Section IV-A of the
// paper: an IFP (the lattice), a classification (region rules plus the
// peripherals' own input classification), and clearance assignments (output
// ports, memory regions, execution-clearance points).
type Policy struct {
	L *Lattice

	// Default is the class given to data with no other classification — the
	// "public/untrusted" bottom of most policies (e.g. LC in IFP-1, LI in
	// IFP-2). Registers and memory reset to Default.
	Default Tag

	// Exec configures the CPU execution-clearance checks.
	Exec ExecClearance

	// Outputs assigns clearance to named sink ports ("uart0.tx",
	// "can0.tx", and peripheral input clearances like "aes0.in"). A port
	// with no entry is unchecked.
	Outputs map[string]Tag

	// Inputs assigns classification to named data sources ("uart0.rx",
	// "can0.rx", "sensor0.data", and the declassified "aes0.out"). A source
	// with no entry produces Default-class data.
	Inputs map[string]Tag

	// Regions lists classification and store-clearance rules. Rules may
	// overlap; on classification the first matching rule wins, on store
	// checks every matching rule is enforced.
	Regions []RegionRule
}

// NewPolicy creates a policy over lattice l with the given default class and
// no checks enabled.
func NewPolicy(l *Lattice, defaultClass Tag) *Policy {
	return &Policy{
		L:       l,
		Default: defaultClass,
		Outputs: make(map[string]Tag),
		Inputs:  make(map[string]Tag),
	}
}

// WithOutput assigns clearance to a named output port and returns p for
// chaining.
func (p *Policy) WithOutput(port string, clearance Tag) *Policy {
	if p.Outputs == nil {
		p.Outputs = make(map[string]Tag)
	}
	p.Outputs[port] = clearance
	return p
}

// WithInput assigns a classification to a named input source and returns p
// for chaining.
func (p *Policy) WithInput(source string, class Tag) *Policy {
	if p.Inputs == nil {
		p.Inputs = make(map[string]Tag)
	}
	p.Inputs[source] = class
	return p
}

// InputClass looks up the classification of a named input source, falling
// back to the policy default.
func (p *Policy) InputClass(source string) Tag {
	if t, ok := p.Inputs[source]; ok {
		return t
	}
	return p.Default
}

// WithRegion appends a region rule and returns p for chaining.
func (p *Policy) WithRegion(r RegionRule) *Policy {
	p.Regions = append(p.Regions, r)
	return p
}

// WithFetchClearance enables the instruction-fetch check.
func (p *Policy) WithFetchClearance(t Tag) *Policy {
	p.Exec.CheckFetch = true
	p.Exec.Fetch = t
	return p
}

// WithBranchClearance enables the branch-condition check.
func (p *Policy) WithBranchClearance(t Tag) *Policy {
	p.Exec.CheckBranch = true
	p.Exec.Branch = t
	return p
}

// WithMemAddrClearance enables the memory-address check.
func (p *Policy) WithMemAddrClearance(t Tag) *Policy {
	p.Exec.CheckMemAddr = true
	p.Exec.MemAddr = t
	return p
}

// Validate checks that every tag referenced by the policy exists in the
// lattice and that region bounds are well-formed.
func (p *Policy) Validate() error {
	if p.L == nil {
		return fmt.Errorf("policy: no lattice")
	}
	n := Tag(p.L.Size() - 1)
	check := func(what string, t Tag) error {
		if t > n {
			return fmt.Errorf("policy: %s references tag %d, but the lattice has only %d classes", what, t, p.L.Size())
		}
		return nil
	}
	if err := check("default class", p.Default); err != nil {
		return err
	}
	if p.Exec.CheckFetch {
		if err := check("fetch clearance", p.Exec.Fetch); err != nil {
			return err
		}
	}
	if p.Exec.CheckBranch {
		if err := check("branch clearance", p.Exec.Branch); err != nil {
			return err
		}
	}
	if p.Exec.CheckMemAddr {
		if err := check("mem-addr clearance", p.Exec.MemAddr); err != nil {
			return err
		}
	}
	for port, t := range p.Outputs {
		if err := check("output "+port, t); err != nil {
			return err
		}
	}
	for src, t := range p.Inputs {
		if err := check("input "+src, t); err != nil {
			return err
		}
	}
	for i := range p.Regions {
		r := &p.Regions[i]
		if r.End <= r.Start {
			return fmt.Errorf("policy: region %q has empty or inverted range [0x%x, 0x%x)", r.Name, r.Start, r.End)
		}
		if r.Classify {
			if err := check("region "+r.Name+" class", r.Class); err != nil {
				return err
			}
		}
		if r.CheckStore {
			if err := check("region "+r.Name+" clearance", r.Clearance); err != nil {
				return err
			}
		}
	}
	return nil
}

// ClassifyAt returns the classification for an address, or the policy default
// when no classification rule matches. The first matching rule wins.
func (p *Policy) ClassifyAt(addr uint32) Tag {
	for i := range p.Regions {
		r := &p.Regions[i]
		if r.Classify && r.Contains(addr) {
			return r.Class
		}
	}
	return p.Default
}

// CheckStore enforces all store-clearance rules covering addr against a
// datum of class have. It returns nil when no rule matches or all flows are
// allowed.
func (p *Policy) CheckStore(addr uint32, have Tag) error {
	for i := range p.Regions {
		r := &p.Regions[i]
		if r.CheckStore && r.Contains(addr) && !p.L.AllowedFlow(have, r.Clearance) {
			return NewViolation(p.L, KindStoreClearance, have, r.Clearance).WithAddr(addr)
		}
	}
	return nil
}

// OutputClearance looks up the clearance of a named output port.
func (p *Policy) OutputClearance(port string) (Tag, bool) {
	t, ok := p.Outputs[port]
	return t, ok
}

// CheckOutput enforces an output port's clearance against a datum of class
// have. Unchecked ports always pass.
func (p *Policy) CheckOutput(port string, have Tag) error {
	required, ok := p.Outputs[port]
	if !ok {
		return nil
	}
	if p.L.AllowedFlow(have, required) {
		return nil
	}
	return NewViolation(p.L, KindOutputClearance, have, required).WithPort(port)
}
