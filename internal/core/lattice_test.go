package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestIFP1Flows(t *testing.T) {
	l := IFP1()
	lc, hc := l.MustTag(ClassLC), l.MustTag(ClassHC)
	if !l.AllowedFlow(lc, hc) {
		t.Error("LC -> HC must be allowed")
	}
	if l.AllowedFlow(hc, lc) {
		t.Error("HC -> LC must be forbidden (confidential data must not leak)")
	}
	if !l.AllowedFlow(lc, lc) || !l.AllowedFlow(hc, hc) {
		t.Error("flows must be reflexive")
	}
}

func TestIFP2Flows(t *testing.T) {
	l := IFP2()
	hi, li := l.MustTag(ClassHI), l.MustTag(ClassLI)
	if !l.AllowedFlow(hi, li) {
		t.Error("HI -> LI must be allowed")
	}
	if l.AllowedFlow(li, hi) {
		t.Error("LI -> HI must be forbidden (untrusted data must not influence trusted sinks)")
	}
}

func TestIFP3LUBPaperExample(t *testing.T) {
	// Paper, Example 1: "in IFP-3 the LUB of A=(LC,LI) and B=(HC,HI) is
	// C=(HC,LI)".
	l := IFP3()
	a := l.MustTag("(LC,LI)")
	b := l.MustTag("(HC,HI)")
	want := l.MustTag("(HC,LI)")
	if got := l.LUB(a, b); got != want {
		t.Errorf("LUB((LC,LI),(HC,HI)) = %s, want (HC,LI)", l.Name(got))
	}
	if got := l.LUB(b, a); got != want {
		t.Errorf("LUB must be commutative; got %s", l.Name(got))
	}
}

func TestIFP3Flows(t *testing.T) {
	l := IFP3()
	lcHI := l.MustTag("(LC,HI)")
	lcLI := l.MustTag("(LC,LI)")
	hcHI := l.MustTag("(HC,HI)")
	hcLI := l.MustTag("(HC,LI)")

	cases := []struct {
		from, to Tag
		want     bool
	}{
		{lcHI, lcLI, true},  // losing integrity is fine
		{lcHI, hcHI, true},  // gaining confidentiality requirement is fine
		{lcHI, hcLI, true},  // both
		{hcHI, lcLI, false}, // confidential data to public+untrusted sink
		{hcHI, lcHI, false}, // confidential data to public sink
		{lcLI, lcHI, false}, // untrusted data to trusted sink
		{lcLI, hcHI, false}, // untrusted data to trusted sink
		{hcLI, hcHI, false}, // untrusted data to trusted sink
		{hcLI, lcLI, false}, // confidential to public
		{hcHI, hcLI, true},  // trusted confidential to untrusted confidential
		{lcLI, hcLI, true},
	}
	for _, c := range cases {
		if got := l.AllowedFlow(c.from, c.to); got != c.want {
			t.Errorf("AllowedFlow(%s, %s) = %v, want %v", l.Name(c.from), l.Name(c.to), got, c.want)
		}
	}
}

func TestIFP3IsProductOfComponents(t *testing.T) {
	// A flow is allowed in IFP-3 iff allowed in IFP-1 and IFP-2 componentwise.
	l3, l1, l2 := IFP3(), IFP1(), IFP2()
	for _, c1 := range l1.Classes() {
		for _, i1 := range l2.Classes() {
			for _, c2 := range l1.Classes() {
				for _, i2 := range l2.Classes() {
					from := l3.MustTag("(" + c1 + "," + i1 + ")")
					to := l3.MustTag("(" + c2 + "," + i2 + ")")
					want := l1.AllowedFlow(l1.MustTag(c1), l1.MustTag(c2)) &&
						l2.AllowedFlow(l2.MustTag(i1), l2.MustTag(i2))
					if got := l3.AllowedFlow(from, to); got != want {
						t.Errorf("AllowedFlow(%s,%s) = %v, want %v", l3.Name(from), l3.Name(to), got, want)
					}
				}
			}
		}
	}
}

func TestLatticeRejectsCycle(t *testing.T) {
	_, err := NewLattice([]string{"A", "B"}, [][2]string{{"A", "B"}, {"B", "A"}})
	if err == nil {
		t.Fatal("cyclic flow relation must be rejected")
	}
}

func TestLatticeRejectsMissingJoin(t *testing.T) {
	// Two incomparable classes with no common upper bound.
	_, err := NewLattice([]string{"A", "B"}, nil)
	if err == nil {
		t.Fatal("order without joins must be rejected")
	}
}

func TestLatticeRejectsAmbiguousJoin(t *testing.T) {
	// A and B both flow to two incomparable upper bounds T1, T2: no least
	// upper bound. (Add a top above T1, T2 so that {T1,T2} has a join but
	// {A,B} still has two minimal upper bounds.)
	_, err := NewLattice(
		[]string{"A", "B", "T1", "T2", "TOP"},
		[][2]string{
			{"A", "T1"}, {"A", "T2"},
			{"B", "T1"}, {"B", "T2"},
			{"T1", "TOP"}, {"T2", "TOP"},
		})
	if err == nil || !strings.Contains(err.Error(), "least upper bound") {
		t.Fatalf("ambiguous join must be rejected, got %v", err)
	}
}

func TestLatticeRejectsBadInput(t *testing.T) {
	if _, err := NewLattice(nil, nil); err == nil {
		t.Error("empty class list must be rejected")
	}
	if _, err := NewLattice([]string{"A", "A"}, nil); err == nil {
		t.Error("duplicate class must be rejected")
	}
	if _, err := NewLattice([]string{"A", ""}, nil); err == nil {
		t.Error("empty class name must be rejected")
	}
	if _, err := NewLattice([]string{"A"}, [][2]string{{"A", "Z"}}); err == nil {
		t.Error("edge to unknown class must be rejected")
	}
	if _, err := NewLattice([]string{"A"}, [][2]string{{"Z", "A"}}); err == nil {
		t.Error("edge from unknown class must be rejected")
	}
}

func TestTagOfAndName(t *testing.T) {
	l := IFP2()
	hi, ok := l.TagOf(ClassHI)
	if !ok {
		t.Fatal("HI must exist in IFP2")
	}
	if l.Name(hi) != ClassHI {
		t.Errorf("Name(TagOf(HI)) = %q", l.Name(hi))
	}
	if _, ok := l.TagOf("NOPE"); ok {
		t.Error("unknown class must not resolve")
	}
	if got := l.Name(Tag(250)); !strings.Contains(got, "invalid") {
		t.Errorf("Name of invalid tag = %q", got)
	}
}

func TestMustTagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTag of unknown class must panic")
		}
	}()
	IFP1().MustTag("NOPE")
}

func TestPerByteKeyIntegrity(t *testing.T) {
	l, err := PerByteKeyIntegrity(4)
	if err != nil {
		t.Fatal(err)
	}
	hi, li := l.MustTag(ClassHI), l.MustTag(ClassLI)
	k0, k1 := l.MustTag("K0"), l.MustTag("K1")

	if l.AllowedFlow(k0, k1) || l.AllowedFlow(k1, k0) {
		t.Error("distinct key-byte classes must be incomparable (this is the entropy-attack fix)")
	}
	if !l.AllowedFlow(k0, hi) || !l.AllowedFlow(k0, li) {
		t.Error("key bytes are trusted: K0 -> HI -> LI must be allowed")
	}
	if l.AllowedFlow(hi, k0) || l.AllowedFlow(li, k0) {
		t.Error("nothing may flow into a key-byte class at runtime")
	}
	if got := l.LUB(k0, k1); got != hi {
		t.Errorf("LUB(K0, K1) = %s, want HI", l.Name(got))
	}
	if _, err := PerByteKeyIntegrity(0); err == nil {
		t.Error("zero-byte key must be rejected")
	}
}

func TestProductSizeLimit(t *testing.T) {
	classes := make([]string, 17)
	var edges [][2]string
	classes[16] = "TOP"
	for i := 0; i < 16; i++ {
		classes[i] = string(rune('a' + i))
		edges = append(edges, [2]string{classes[i], "TOP"})
	}
	// Chain them so joins exist: a->b->...->TOP.
	for i := 0; i+1 < 16; i++ {
		edges = append(edges, [2]string{classes[i], classes[i+1]})
	}
	l, err := NewLattice(classes, edges)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Product(l, l); err == nil {
		t.Error("product with > MaxClasses classes must be rejected")
	}
}

func TestLatticeString(t *testing.T) {
	s := IFP1().String()
	if !strings.Contains(s, "LC->HC") {
		t.Errorf("String() = %q, want it to mention LC->HC", s)
	}
	one := MustNewLattice([]string{"ONLY"}, nil)
	if !strings.Contains(one.String(), "(none)") {
		t.Errorf("String() of flowless lattice = %q", one.String())
	}
}

// latticesUnderTest returns a set of structurally different valid lattices
// for property tests.
func latticesUnderTest(t *testing.T) []*Lattice {
	t.Helper()
	perByte, err := PerByteKeyIntegrity(4)
	if err != nil {
		t.Fatal(err)
	}
	diamond := MustNewLattice(
		[]string{"BOT", "L", "R", "TOP"},
		[][2]string{{"BOT", "L"}, {"BOT", "R"}, {"L", "TOP"}, {"R", "TOP"}})
	chain := MustNewLattice(
		[]string{"C0", "C1", "C2", "C3", "C4"},
		[][2]string{{"C0", "C1"}, {"C1", "C2"}, {"C2", "C3"}, {"C3", "C4"}})
	return []*Lattice{IFP1(), IFP2(), IFP3(), perByte, diamond, chain}
}

// clamp maps an arbitrary byte into a valid tag of l.
func clamp(l *Lattice, raw uint8) Tag { return Tag(int(raw) % l.Size()) }

func TestPropertyLUBCommutative(t *testing.T) {
	for _, l := range latticesUnderTest(t) {
		f := func(a, b uint8) bool {
			x, y := clamp(l, a), clamp(l, b)
			return l.LUB(x, y) == l.LUB(y, x)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("lattice %s: LUB not commutative: %v", l, err)
		}
	}
}

func TestPropertyLUBAssociative(t *testing.T) {
	for _, l := range latticesUnderTest(t) {
		f := func(a, b, c uint8) bool {
			x, y, z := clamp(l, a), clamp(l, b), clamp(l, c)
			return l.LUB(l.LUB(x, y), z) == l.LUB(x, l.LUB(y, z))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("lattice %s: LUB not associative: %v", l, err)
		}
	}
}

func TestPropertyLUBIdempotentAndUpperBound(t *testing.T) {
	for _, l := range latticesUnderTest(t) {
		f := func(a, b uint8) bool {
			x, y := clamp(l, a), clamp(l, b)
			j := l.LUB(x, y)
			return l.LUB(x, x) == x && // idempotent
				l.AllowedFlow(x, j) && l.AllowedFlow(y, j) // upper bound
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("lattice %s: LUB upper-bound property failed: %v", l, err)
		}
	}
}

func TestPropertyLUBIsLeast(t *testing.T) {
	// For every upper bound u of {x, y}, LUB(x,y) -> u.
	for _, l := range latticesUnderTest(t) {
		n := l.Size()
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				j := l.LUB(Tag(x), Tag(y))
				for u := 0; u < n; u++ {
					if l.AllowedFlow(Tag(x), Tag(u)) && l.AllowedFlow(Tag(y), Tag(u)) &&
						!l.AllowedFlow(j, Tag(u)) {
						t.Errorf("lattice %s: LUB(%s,%s)=%s is not least (bound %s)",
							l, l.Name(Tag(x)), l.Name(Tag(y)), l.Name(j), l.Name(Tag(u)))
					}
				}
			}
		}
	}
}

func TestPropertyFlowTransitive(t *testing.T) {
	for _, l := range latticesUnderTest(t) {
		f := func(a, b, c uint8) bool {
			x, y, z := clamp(l, a), clamp(l, b), clamp(l, c)
			if l.AllowedFlow(x, y) && l.AllowedFlow(y, z) {
				return l.AllowedFlow(x, z)
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("lattice %s: flow relation not transitive: %v", l, err)
		}
	}
}

func TestPropertyFlowMonotoneUnderLUB(t *testing.T) {
	// If x -> t and y -> t then LUB(x,y) -> t: joining data never makes a
	// previously-forbidden flow allowed, and vice versa joining cannot lose a
	// clearance both inputs had.
	for _, l := range latticesUnderTest(t) {
		f := func(a, b, c uint8) bool {
			x, y, sink := clamp(l, a), clamp(l, b), clamp(l, c)
			j := l.LUB(x, y)
			if l.AllowedFlow(x, sink) && l.AllowedFlow(y, sink) {
				return l.AllowedFlow(j, sink)
			}
			// If either input may not flow to the sink, the join may not
			// either (the join is above both inputs).
			return !l.AllowedFlow(j, sink) || (l.AllowedFlow(x, sink) && l.AllowedFlow(y, sink))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("lattice %s: LUB/flow monotonicity failed: %v", l, err)
		}
	}
}
