package core

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenericTaintSizes(t *testing.T) {
	if NewTaint[uint8](0, 0).Size() != 1 ||
		NewTaint[uint16](0, 0).Size() != 2 ||
		NewTaint[uint32](0, 0).Size() != 4 ||
		NewTaint[uint64](0, 0).Size() != 8 {
		t.Error("sizes")
	}
}

func TestGenericTaintRoundTrips(t *testing.T) {
	l := IFP3()
	f := func(v uint64, raw uint8) bool {
		tag := clamp(l, raw)

		t8 := NewTaint(uint8(v), tag)
		var b1 [1]TByte
		t8.ToBytes(b1[:])
		if TaintFromBytes[uint8](l, b1[:]) != t8 {
			return false
		}

		t16 := NewTaint(uint16(v), tag)
		var b2 [2]TByte
		t16.ToBytes(b2[:])
		if TaintFromBytes[uint16](l, b2[:]) != t16 {
			return false
		}

		t32 := NewTaint(uint32(v), tag)
		var b4 [4]TByte
		t32.ToBytes(b4[:])
		if TaintFromBytes[uint32](l, b4[:]) != t32 {
			return false
		}

		t64 := NewTaint(v, tag)
		var b8 [8]TByte
		t64.ToBytes(b8[:])
		return TaintFromBytes[uint64](l, b8[:]) == t64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenericTaintFromBytesFoldsTags(t *testing.T) {
	l := IFP3()
	lcLI := l.MustTag("(LC,LI)")
	hcHI := l.MustTag("(HC,HI)")
	buf := []TByte{{1, lcLI}, {2, hcHI}}
	got := TaintFromBytes[uint16](l, buf)
	if got.Value != 0x0201 || got.Tag != l.MustTag("(HC,LI)") {
		t.Errorf("got %+v", got)
	}
}

func TestGenericTaintOps(t *testing.T) {
	l := IFP1()
	lc, hc := l.MustTag(ClassLC), l.MustTag(ClassHC)
	a := NewTaint[uint32](6, lc)
	b := NewTaint[uint32](3, hc)
	if got := a.Add(l, b); got.Value != 9 || got.Tag != hc {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Xor(l, b); got.Value != 5 || got.Tag != hc {
		t.Errorf("Xor = %+v", got)
	}
	if got := a.And(l, b); got.Value != 2 || got.Tag != hc {
		t.Errorf("And = %+v", got)
	}
	if got := a.Or(l, b); got.Value != 7 || got.Tag != hc {
		t.Errorf("Or = %+v", got)
	}
}

func TestGenericTaintClearanceAndDeclassify(t *testing.T) {
	l := IFP1()
	lc, hc := l.MustTag(ClassLC), l.MustTag(ClassHC)
	secret := NewTaint[uint16](0xBEEF, hc)
	err := secret.CheckClearance(l, lc)
	var v *Violation
	if !errors.As(err, &v) || v.Value != 0xBEEF {
		t.Fatalf("err = %v", err)
	}
	if err := secret.CheckClearance(l, hc); err != nil {
		t.Fatal(err)
	}
	d := NewDeclassifier(l)
	pub := secret.Declassify(d, lc)
	if pub.Tag != lc || pub.Value != 0xBEEF {
		t.Errorf("declassified = %+v", pub)
	}
	if got := secret.Declassify(nil, lc); got != secret {
		t.Error("nil declassifier must be a no-op")
	}
}

func TestLatticeDOT(t *testing.T) {
	dot := IFP1().DOT("IFP-1")
	for _, want := range []string{`digraph "IFP-1"`, `"LC" -> "HC"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// IFP-3's DOT must contain only covering edges: the diagonal
	// (LC,HI) -> (HC,LI) is implied via intermediates and must be absent.
	dot3 := IFP3().DOT("IFP-3")
	if strings.Contains(dot3, `"(LC,HI)" -> "(HC,LI)"`) {
		t.Error("DOT must show the transitive reduction only")
	}
	for _, want := range []string{
		`"(LC,HI)" -> "(HC,HI)"`,
		`"(LC,HI)" -> "(LC,LI)"`,
		`"(HC,HI)" -> "(HC,LI)"`,
		`"(LC,LI)" -> "(HC,LI)"`,
	} {
		if !strings.Contains(dot3, want) {
			t.Errorf("DOT missing covering edge %q", want)
		}
	}
}
