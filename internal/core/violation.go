package core

import (
	"fmt"
	"strings"
)

// ViolationKind classifies where in the platform a security-policy violation
// was detected.
type ViolationKind int

const (
	// KindOutputClearance: data reached an output interface (UART TX, CAN TX,
	// ...) whose clearance it does not satisfy — the confidentiality check of
	// the paper's clearance concept.
	KindOutputClearance ViolationKind = iota
	// KindFetchClearance: the CPU fetched an instruction word whose class may
	// not flow to the fetch unit's clearance (paper Section V-B2b). With an
	// HI fetch clearance this is the code-injection detector of Table I.
	KindFetchClearance
	// KindBranchClearance: a branch (or trap-vector) condition carries a class
	// that may not flow to the branch unit's clearance (implicit information
	// flow, paper Section V-B2a).
	KindBranchClearance
	// KindMemAddrClearance: a load/store address carries a class that may not
	// flow to the memory-access clearance (address side channel, paper
	// Section V-B2c).
	KindMemAddrClearance
	// KindStoreClearance: a store targets a protected memory region (e.g. the
	// immobilizer PIN) with data whose class may not flow to the region's
	// clearance — the integrity check of the case study.
	KindStoreClearance
)

// String returns a short identifier for the kind.
func (k ViolationKind) String() string {
	switch k {
	case KindOutputClearance:
		return "output-clearance"
	case KindFetchClearance:
		return "fetch-clearance"
	case KindBranchClearance:
		return "branch-clearance"
	case KindMemAddrClearance:
		return "mem-addr-clearance"
	case KindStoreClearance:
		return "store-clearance"
	default:
		return fmt.Sprintf("violation-kind(%d)", int(k))
	}
}

// Violation is the runtime error raised by the DIFT engine when the security
// policy is violated. It corresponds to the paper's ClearanceException
// (Fig. 3, line 28). The simulation stops at the raising instruction.
type Violation struct {
	Kind     ViolationKind
	Have     Tag    // security class of the offending data
	Required Tag    // clearance of the sink
	PC       uint32 // program counter of the violating instruction (0 if n/a)
	Addr     uint32 // memory/bus address involved (0 if n/a)
	Value    uint32 // offending data value (diagnostic)
	Port     string // output port name for KindOutputClearance
	// Provenance, when an observer was attached to the platform, is the
	// ordered chain of taint events that carried the offending tag from its
	// classification site to the failed clearance check (the chain's last
	// event). Empty without an observer.
	Provenance []TaintEvent
	lattice    *Lattice
}

// NewViolation builds a violation bound to a lattice so that Error can print
// class names rather than raw tags.
func NewViolation(l *Lattice, kind ViolationKind, have, required Tag) *Violation {
	return &Violation{Kind: kind, Have: have, Required: required, lattice: l}
}

// WithPC returns v with the program counter set.
func (v *Violation) WithPC(pc uint32) *Violation { v.PC = pc; return v }

// WithAddr returns v with the bus address set.
func (v *Violation) WithAddr(addr uint32) *Violation { v.Addr = addr; return v }

// WithValue returns v with the offending value set.
func (v *Violation) WithValue(val uint32) *Violation { v.Value = val; return v }

// WithPort returns v with the output port name set.
func (v *Violation) WithPort(port string) *Violation { v.Port = port; return v }

// HaveClass returns the class name of the offending data.
func (v *Violation) HaveClass() string {
	if v.lattice == nil {
		return fmt.Sprintf("tag %d", v.Have)
	}
	return v.lattice.Name(v.Have)
}

// RequiredClass returns the class name of the sink's clearance.
func (v *Violation) RequiredClass() string {
	if v.lattice == nil {
		return fmt.Sprintf("tag %d", v.Required)
	}
	return v.lattice.Name(v.Required)
}

// ProvenanceReport renders the provenance chain as one line per event,
// classification site first, failed check last. annotate may be nil; when
// non-nil it can add per-event context (disassembly, symbol names). The
// report is empty when no observer was attached.
func (v *Violation) ProvenanceReport(annotate func(TaintEvent) string) string {
	if len(v.Provenance) == 0 {
		return ""
	}
	var b strings.Builder
	for _, ev := range v.Provenance {
		b.WriteString("  ")
		b.WriteString(ev.Format(v.lattice, annotate))
		b.WriteString("\n")
	}
	return b.String()
}

// Error implements error.
func (v *Violation) Error() string {
	msg := fmt.Sprintf("security violation (%s): flow %s -> %s not allowed",
		v.Kind, v.HaveClass(), v.RequiredClass())
	if v.Port != "" {
		msg += fmt.Sprintf(" at port %q", v.Port)
	}
	if v.PC != 0 {
		msg += fmt.Sprintf(" at pc=0x%08x", v.PC)
	}
	if v.Addr != 0 {
		msg += fmt.Sprintf(" addr=0x%08x", v.Addr)
	}
	return msg
}
