// Package core implements the DIFT (Dynamic Information Flow Tracking) engine
// described in "Dynamic Information Flow Tracking for Embedded Binaries using
// SystemC-based Virtual Prototypes" (DAC 2020).
//
// The engine is built around three concepts, mirroring Section IV of the
// paper:
//
//   - A security class is represented as an integer Tag into a Lattice, the
//     Information Flow Policy (IFP). The Lattice provides the two fundamental
//     operations LUB (least upper bound, used when data of different classes
//     is combined) and AllowedFlow (used for clearance checks at outputs and
//     at execution-clearance points in the CPU).
//   - Data carries its tag alongside its value: TByte for a tainted byte (the
//     unit routed through TLM transactions and stored in memory) and Word for
//     a tainted 32-bit value (the unit held in CPU registers).
//   - A Policy bundles classification (which inputs get which tags),
//     clearance (which tags outputs, memory regions, and the CPU's
//     execution-clearance points require) and the IFP itself.
//
// Violations of the policy are reported as *Violation errors.
package core

// Tag identifies a security class within a Lattice. Tags are only meaningful
// relative to the lattice that issued them; combining tags from different
// lattices is a programming error.
//
// The paper represents security classes as integer tags the same way
// (Section V-A): "We represent security classes in the DIFT engine as
// (integer) tags by simply mapping each security class of the IFP to a
// unique tag."
type Tag uint8

// MaxClasses bounds the number of security classes in a lattice. Tags are
// 8-bit, matching the paper's `typedef uint8_t Tag`.
const MaxClasses = 256
