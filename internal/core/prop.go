package core

// This file is the tag-propagation engine shared by the two execution
// organizations of the VP+: the inline TaintCore (tags propagated in the
// interpreter loop) and the decoupled front-end/monitor pair (tags
// propagated by a parallel goroutine fed from a retire-record ring,
// internal/rv32 + internal/dift). Both must implement the paper's Section V
// semantics identically — propagation joins with the IFP's LUB, loads fold
// byte tags, stores spread the value tag — so the primitives live here,
// once, and the detection matrix cannot diverge between modes.

// Prop is a policy's propagation/clearance configuration flattened for the
// hot path: every per-instruction decision reduces to a bool test and an
// O(1) lattice query. The inline core copies these fields at construction;
// the decoupled front end and monitor share one Prop value.
type Prop struct {
	L   *Lattice
	Pol *Policy
	// Def is the policy's default (untainted) class.
	Def Tag

	// Execution-clearance switches, pre-decoded from Pol.Exec.
	CheckFetch   bool
	FetchClear   Tag
	CheckBranch  bool
	BranchClear  Tag
	CheckMemAddr bool
	MemAddrClear Tag
	// HasRegions gates the per-store region scan.
	HasRegions bool
}

// NewProp flattens a validated policy into its propagation configuration.
func NewProp(pol *Policy) Prop {
	return Prop{
		L:            pol.L,
		Pol:          pol,
		Def:          pol.Default,
		CheckFetch:   pol.Exec.CheckFetch,
		FetchClear:   pol.Exec.Fetch,
		CheckBranch:  pol.Exec.CheckBranch,
		BranchClear:  pol.Exec.Branch,
		CheckMemAddr: pol.Exec.CheckMemAddr,
		MemAddrClear: pol.Exec.MemAddr,
		HasRegions:   len(pol.Regions) > 0,
	}
}

// Join is the computational propagation rule (the paper's overloaded
// operators, Fig. 3): the result of combining two operands carries the LUB
// of their classes.
func (p *Prop) Join(a, b Tag) Tag { return p.L.LUB(a, b) }

// Fold2 joins the tags of a 2-byte access, short-circuiting the all-equal
// case (uniformly classified data, the overwhelmingly common one) to one
// comparison without LUBs.
func Fold2(l *Lattice, b0, b1 TByte) Tag {
	t := b0.T
	if b1.T != t {
		t = l.LUB(b0.T, b1.T)
	}
	return t
}

// Fold4 joins the tags of a 4-byte access with the same short circuit.
func Fold4(l *Lattice, b0, b1, b2, b3 TByte) Tag {
	t := b0.T
	if b1.T != t || b2.T != t || b3.T != t {
		t = l.LUB(l.LUB(b0.T, b1.T), l.LUB(b2.T, b3.T))
	}
	return t
}

// SetTags writes one tag over every byte of a store's footprint — the
// store propagation rule. The inline core performs it fused with the value
// write; the decoupled monitor applies it from a KindStoreTags record after
// the front end has already committed the values.
func SetTags(bytes []TByte, t Tag) {
	for i := range bytes {
		bytes[i].T = t
	}
}

// UniformTag reports whether every byte of the range carries one tag, and
// which. It backs the decoupled front end's flag cache: a block whose bytes
// are uniformly tagged collapses load folds and store spreads to one
// comparison.
func UniformTag(bytes []TByte) (Tag, bool) {
	if len(bytes) == 0 {
		return 0, false
	}
	t := bytes[0].T
	for i := 1; i < len(bytes); i++ {
		if bytes[i].T != t {
			return 0, false
		}
	}
	return t, true
}
