package core

import "fmt"

// TByte is a tainted byte: the paper's Taint<uint8_t>. It is the unit stored
// in memory and routed through TLM transactions (the payload data of
// internal/tlm is a []TByte, reproducing the paper's trick of casting the
// Taint<uint8_t> array into the generic payload's data pointer).
type TByte struct {
	V byte
	T Tag
}

// Word is a tainted 32-bit value: the paper's Taint<int32_t>/Taint<uint32_t>
// used for CPU and peripheral registers. Go has no operator overloading, so
// instruction execution combines values explicitly and joins tags with
// Lattice.LUB — the semantics of the paper's overloaded operators
// (value op, tag = LUB(tag_a, tag_b)) are preserved exactly.
type Word struct {
	V uint32
	T Tag
}

// W constructs a tainted word.
func W(v uint32, t Tag) Word { return Word{V: v, T: t} }

// B constructs a tainted byte.
func B(v byte, t Tag) TByte { return TByte{V: v, T: t} }

// Bytes serializes the word into buf as four tainted bytes (little-endian),
// each carrying the word's tag — the paper's to_bytes (Fig. 3, line 12).
// It panics if buf is shorter than 4 bytes.
func (w Word) Bytes(buf []TByte) {
	_ = buf[3]
	buf[0] = TByte{byte(w.V), w.T}
	buf[1] = TByte{byte(w.V >> 8), w.T}
	buf[2] = TByte{byte(w.V >> 16), w.T}
	buf[3] = TByte{byte(w.V >> 24), w.T}
}

// WordFromBytes deserializes a little-endian word from four tainted bytes,
// folding the byte tags with LUB — the paper's from_bytes (Fig. 3, line 18).
// It panics if buf is shorter than 4 bytes.
func WordFromBytes(l *Lattice, buf []TByte) Word {
	_ = buf[3]
	t := buf[0].T
	t = l.LUB(t, buf[1].T)
	t = l.LUB(t, buf[2].T)
	t = l.LUB(t, buf[3].T)
	v := uint32(buf[0].V) | uint32(buf[1].V)<<8 | uint32(buf[2].V)<<16 | uint32(buf[3].V)<<24
	return Word{V: v, T: t}
}

// HalfFromBytes deserializes a little-endian 16-bit value from two tainted
// bytes, folding the tags. It panics if buf is shorter than 2 bytes.
func HalfFromBytes(l *Lattice, buf []TByte) Word {
	_ = buf[1]
	return Word{
		V: uint32(buf[0].V) | uint32(buf[1].V)<<8,
		T: l.LUB(buf[0].T, buf[1].T),
	}
}

// HalfBytes serializes the low 16 bits of the word into two tainted bytes.
func (w Word) HalfBytes(buf []TByte) {
	_ = buf[1]
	buf[0] = TByte{byte(w.V), w.T}
	buf[1] = TByte{byte(w.V >> 8), w.T}
}

// Byte returns the low 8 bits of the word as a tainted byte.
func (w Word) Byte() TByte { return TByte{V: byte(w.V), T: w.T} }

// CheckClearance verifies that the word may flow to a sink with the given
// clearance — the paper's check_clearance (Fig. 3, line 26). On failure it
// returns a *Violation of kind KindOutputClearance with empty Port; callers
// with more context (the CPU, peripherals) build their own Violation values.
func (w Word) CheckClearance(l *Lattice, required Tag) error {
	if l.AllowedFlow(w.T, required) {
		return nil
	}
	return &Violation{
		Kind:     KindOutputClearance,
		Have:     w.T,
		Required: required,
		Value:    w.V,
		lattice:  l,
	}
}

// JoinBytes folds the tags of a tainted byte slice with LUB, starting from
// the lattice's tag zero-value semantics: the fold of an empty slice is the
// provided seed tag.
func JoinBytes(l *Lattice, seed Tag, data []TByte) Tag {
	t := seed
	for _, b := range data {
		t = l.LUB(t, b.T)
	}
	return t
}

// CopyValues copies only the values of src into a plain byte slice.
func CopyValues(dst []byte, src []TByte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] = src[i].V
	}
}

// TagAll returns a tainted copy of data with every byte carrying tag t.
func TagAll(data []byte, t Tag) []TByte {
	out := make([]TByte, len(data))
	for i, v := range data {
		out[i] = TByte{V: v, T: t}
	}
	return out
}

// Values extracts the plain bytes of a tainted slice.
func Values(data []TByte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = b.V
	}
	return out
}

// Declassifier is the capability to lower the security class of data outside
// the flows permitted by the IFP. Following the paper's threat model
// (Section IV-B), only trusted hardware peripherals may declassify; the
// platform builder (internal/soc) hands a Declassifier to such peripherals
// (e.g. the AES engine, which declassifies ciphertext so it can leave on the
// public CAN bus) and to nothing else.
type Declassifier struct {
	l *Lattice
}

// NewDeclassifier creates a declassification capability for the lattice.
// It lives in internal/, so only platform-construction code can mint one.
func NewDeclassifier(l *Lattice) *Declassifier { return &Declassifier{l: l} }

// Word relabels a tainted word to class `to`, ignoring the IFP.
func (d *Declassifier) Word(w Word, to Tag) Word { return Word{V: w.V, T: to} }

// Bytes relabels all bytes in-place to class `to`, ignoring the IFP.
func (d *Declassifier) Bytes(data []TByte, to Tag) {
	for i := range data {
		data[i].T = to
	}
}

// String renders a tainted word for traces, e.g. "0x0000002a#HC".
func (w Word) String() string { return fmt.Sprintf("0x%08x#%d", w.V, w.T) }
