package core

import (
	"fmt"
	"strings"
)

// TaintEventKind classifies one step of tag movement through the platform.
// The kinds mirror the places where the paper's DIFT engine touches tags:
// load-time classification, peripheral inputs, the core's load/compute/store
// propagation rules, control transfers steered by tainted registers, DMA
// bursts, AES declassification, output-port traffic, and the clearance
// checks themselves.
type TaintEventKind uint8

const (
	// EvClassify: a policy region rule assigned a class to a memory range at
	// load time — the root of most provenance chains.
	EvClassify TaintEventKind = iota + 1
	// EvInput: data entered the platform through a peripheral input port
	// (UART RX pop, CAN frame delivery, sensor frame refill).
	EvInput
	// EvLoad: the CPU read memory (or a bus target) into a register.
	EvLoad
	// EvOp: a computational instruction combined source-register tags.
	EvOp
	// EvStore: the CPU wrote a register value to memory or a bus target.
	EvStore
	// EvJump: a control transfer steered by a register (jalr, mret) — the
	// link that lets fetch-clearance chains cross an overwritten return
	// address.
	EvJump
	// EvDMA: the DMA engine moved a burst of tainted bytes.
	EvDMA
	// EvDeclassify: the AES engine lowered the ciphertext's class.
	EvDeclassify
	// EvOutput: a byte left the platform through an output port after
	// passing its clearance check.
	EvOutput
	// EvCheck: a clearance check failed; the terminal event of a violation's
	// provenance chain.
	EvCheck
	// EvExec: an instruction retired (full-trace mode only).
	EvExec
	// EvBusRead / EvBusWrite: a monitored TLM transaction completed.
	EvBusRead
	EvBusWrite
)

// String returns a short identifier for the kind.
func (k TaintEventKind) String() string {
	switch k {
	case EvClassify:
		return "classify"
	case EvInput:
		return "input"
	case EvLoad:
		return "load"
	case EvOp:
		return "op"
	case EvStore:
		return "store"
	case EvJump:
		return "jump"
	case EvDMA:
		return "dma"
	case EvDeclassify:
		return "declassify"
	case EvOutput:
		return "output"
	case EvCheck:
		return "check"
	case EvExec:
		return "exec"
	case EvBusRead:
		return "bus-read"
	case EvBusWrite:
		return "bus-write"
	default:
		return fmt.Sprintf("event-kind(%d)", uint8(k))
	}
}

// MarshalJSON renders the kind as its string name in JSONL/trace exports.
func (k TaintEventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// TaintEvent is one recorded step of tag flow. Events form a backward-linked
// DAG: Prev (and, for two-source steps, Prev2) hold the sequence numbers of
// the events that produced this event's data. Seq 0 means "no recorded
// source" — the chain ends there.
type TaintEvent struct {
	Seq   uint64         `json:"seq"`
	Time  uint64         `json:"t_ns"` // simulated time in nanoseconds
	Kind  TaintEventKind `json:"kind"`
	PC    uint32         `json:"pc,omitempty"`    // program counter (0 when n/a)
	Insn  uint32         `json:"insn,omitempty"`  // raw instruction word (0 when n/a)
	Addr  uint32         `json:"addr,omitempty"`  // memory/bus address involved
	Value uint32         `json:"value,omitempty"` // data value moved
	Tag   Tag            `json:"tag"`             // class of the moved data
	Port  string         `json:"port,omitempty"`  // port/region name for I/O and classify events
	Prev  uint64         `json:"prev,omitempty"`  // seq of the data-source event
	Prev2 uint64         `json:"prev2,omitempty"` // seq of a second source (two-operand ops, control flow)
}

// Format renders the event as one human-readable line. l may be nil (tags
// print raw); annotate, when non-nil, can append extra context such as a
// disassembled instruction or a symbol name.
func (ev TaintEvent) Format(l *Lattice, annotate func(TaintEvent) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%-6d %10dns  %-10s", ev.Seq, ev.Time, ev.Kind)
	if ev.PC != 0 {
		fmt.Fprintf(&b, " pc=0x%08x", ev.PC)
	}
	if ev.Addr != 0 {
		fmt.Fprintf(&b, " addr=0x%08x", ev.Addr)
	}
	if ev.Kind != EvClassify {
		fmt.Fprintf(&b, " value=0x%x", ev.Value)
	}
	if l != nil {
		fmt.Fprintf(&b, " class=%s", l.Name(ev.Tag))
	} else {
		fmt.Fprintf(&b, " tag=%d", ev.Tag)
	}
	if ev.Port != "" {
		fmt.Fprintf(&b, " %q", ev.Port)
	}
	if ev.Prev != 0 {
		fmt.Fprintf(&b, " <-#%d", ev.Prev)
	}
	if ev.Prev2 != 0 {
		fmt.Fprintf(&b, ",#%d", ev.Prev2)
	}
	if annotate != nil {
		if extra := annotate(ev); extra != "" {
			b.WriteString("  ; ")
			b.WriteString(extra)
		}
	}
	return b.String()
}
