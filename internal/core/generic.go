package core

// This file mirrors the paper's Fig. 3 as literally as Go allows: where the
// C++ implementation defines `template <typename T> class Taint`, Go
// generics give Taint[T]. The simulator's hot paths use the specialized
// Word/TByte types; Taint[T] is the convenience type for peripheral models
// and host-side tooling that want typed tainted registers of any width.

// Unsigned enumerates the value widths a Taint register can hold.
type Unsigned interface {
	~uint8 | ~uint16 | ~uint32 | ~uint64
}

// Taint couples a value with its security class — the paper's Taint<T>.
type Taint[T Unsigned] struct {
	Value T
	Tag   Tag
}

// NewTaint constructs a tainted value (Fig. 3's two-argument constructor).
func NewTaint[T Unsigned](value T, tag Tag) Taint[T] {
	return Taint[T]{Value: value, Tag: tag}
}

// ToBytes serializes the value into little-endian tainted bytes, each
// carrying the value's tag — Fig. 3's to_bytes. The buffer must hold
// Size() bytes.
func (t Taint[T]) ToBytes(buf []TByte) {
	n := t.Size()
	_ = buf[n-1]
	v := uint64(t.Value)
	for i := 0; i < n; i++ {
		buf[i] = TByte{V: byte(v >> (8 * i)), T: t.Tag}
	}
}

// TaintFromBytes deserializes a little-endian value from tainted bytes,
// LUB-folding the byte tags — Fig. 3's from_bytes.
func TaintFromBytes[T Unsigned](l *Lattice, buf []TByte) Taint[T] {
	var zero T
	n := Taint[T]{Value: zero}.Size()
	_ = buf[n-1]
	var v uint64
	tag := buf[0].T
	for i := 0; i < n; i++ {
		v |= uint64(buf[i].V) << (8 * i)
		tag = l.LUB(tag, buf[i].T)
	}
	return Taint[T]{Value: T(v), Tag: tag}
}

// Size returns the value width in bytes.
func (t Taint[T]) Size() int {
	switch any(t.Value).(type) {
	case uint8:
		return 1
	case uint16:
		return 2
	case uint32:
		return 4
	default:
		return 8
	}
}

// Add applies the paper's overloaded operator+ semantics: value sum, tag
// join (Fig. 3 lines 33–37).
func (t Taint[T]) Add(l *Lattice, other Taint[T]) Taint[T] {
	return Taint[T]{Value: t.Value + other.Value, Tag: l.LUB(t.Tag, other.Tag)}
}

// Xor applies value XOR with tag join.
func (t Taint[T]) Xor(l *Lattice, other Taint[T]) Taint[T] {
	return Taint[T]{Value: t.Value ^ other.Value, Tag: l.LUB(t.Tag, other.Tag)}
}

// And applies value AND with tag join.
func (t Taint[T]) And(l *Lattice, other Taint[T]) Taint[T] {
	return Taint[T]{Value: t.Value & other.Value, Tag: l.LUB(t.Tag, other.Tag)}
}

// Or applies value OR with tag join.
func (t Taint[T]) Or(l *Lattice, other Taint[T]) Taint[T] {
	return Taint[T]{Value: t.Value | other.Value, Tag: l.LUB(t.Tag, other.Tag)}
}

// CheckClearance is Fig. 3's check_clearance: it returns a *Violation when
// the value may not flow to a sink with the given clearance.
func (t Taint[T]) CheckClearance(l *Lattice, required Tag) error {
	if l.AllowedFlow(t.Tag, required) {
		return nil
	}
	return NewViolation(l, KindOutputClearance, t.Tag, required).WithValue(uint32(t.Value))
}

// Declassify returns the value relabeled to the given class; callers must
// hold the platform's Declassifier capability, which is enforced by taking
// it as a parameter.
func (t Taint[T]) Declassify(d *Declassifier, to Tag) Taint[T] {
	if d == nil {
		return t
	}
	return Taint[T]{Value: t.Value, Tag: to}
}
