// Package serve wires the repo's workload zoo into the telemetry server's
// session factory: it turns wire-level session specs (workload name, scale,
// policy, stimulus) into loaded soc platforms with drive closures, and
// content-hashes the resolved (image, policy, stimulus) triple into the
// dedup key the result store is indexed by. It exists as its own package so
// telemetry stays free of soc/perf/immo/wk imports (which would cycle
// through soc's sampler dependency).
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/guest"
	"vpdift/internal/immo"
	"vpdift/internal/kernel"
	"vpdift/internal/obs"
	"vpdift/internal/perf"
	"vpdift/internal/soc"
	"vpdift/internal/telemetry"
	"vpdift/internal/wk"
)

// DefaultChallengeEvery is the immobilizer challenge period when the
// factory's ChallengeEvery is zero.
const DefaultChallengeEvery = 5 * kernel.MS

// DefaultMicroPrimes sizes the "micro" load-test guest: small enough that a
// session costs well under a millisecond of host time, large enough that the
// run loop takes more than one Step chunk.
const DefaultMicroPrimes = 200

// Factory implements telemetry.SessionFactory over every workload the repo
// ships: the immobilizer challenge loop, the Table II benchmark rows, the
// Wilander–Kamkar attack suite, and a tiny "micro" guest for load testing.
type Factory struct {
	// ChallengeEvery is the simulated-time period between immobilizer
	// challenges for the "immo" workload. Defaults to DefaultChallengeEvery.
	ChallengeEvery kernel.Time
	// MicroPrimes sizes the "micro" guest (primes up to N). Defaults to
	// DefaultMicroPrimes.
	MicroPrimes int

	// images memoizes assembled guests by workload|scale: a session's Key and
	// Build each resolve the spec, and assembling the same benchmark afresh
	// for every submission dominates session cost under load. Images are
	// read-only after assembly (Load copies them into RAM), so sharing one
	// across sessions is safe; policies are still built fresh per session.
	imgMu  sync.Mutex
	images map[string]*asm.Image
}

// NewFactory returns a Factory with default tuning.
func NewFactory() *Factory { return &Factory{} }

var _ telemetry.SessionFactory = (*Factory)(nil)

// resolved is the factory's intermediate form: everything the key needs
// (image bytes, policy name, horizon) plus what Build needs on top (the
// policy object and the drive constructor, bound to a platform later).
type resolved struct {
	img     *asm.Image
	policy  *core.Policy
	polName string
	horizon kernel.Time
	drive   func(pl *soc.Platform) func() error
}

func (f *Factory) challengeEvery() kernel.Time {
	if f.ChallengeEvery > 0 {
		return f.ChallengeEvery
	}
	return DefaultChallengeEvery
}

func (f *Factory) microPrimes() int {
	if f.MicroPrimes > 0 {
		return f.MicroPrimes
	}
	return DefaultMicroPrimes
}

// cachedImage returns the memoized image for a cache key, assembling it with
// build on the first request.
func (f *Factory) cachedImage(key string, build func() (*asm.Image, error)) (*asm.Image, error) {
	f.imgMu.Lock()
	defer f.imgMu.Unlock()
	if img, ok := f.images[key]; ok {
		return img, nil
	}
	img, err := build()
	if err != nil {
		return nil, err
	}
	if f.images == nil {
		f.images = make(map[string]*asm.Image)
	}
	f.images[key] = img
	return img, nil
}

// Names lists every workload name the factory accepts, for error messages
// and documentation. Table II names are reported at the small scale (the
// set is scale-independent).
func Names() []string {
	names := []string{"immo", "micro"}
	for _, w := range perf.Workloads(perf.ScaleSmall) {
		if w.Drive != nil {
			continue // interactive rows are served as "immo"
		}
		names = append(names, w.Name)
	}
	for _, a := range wk.Suite() {
		if a.Applicable() {
			names = append(names, fmt.Sprintf("wk-%d", a.Num))
		}
	}
	sort.Strings(names[2:])
	return names
}

// resolve turns a spec into its image, policy and drive constructor. It is
// the shared front half of Key and Build.
func (f *Factory) resolve(spec telemetry.SessionSpec) (resolved, error) {
	horizon := kernel.Time(0)
	if spec.HorizonMs > 0 {
		horizon = kernel.Time(spec.HorizonMs) * kernel.MS
	}
	switch {
	case spec.Workload == "immo":
		return f.resolveImmo(spec, horizon)
	case spec.Workload == "micro":
		return f.resolveMicro(spec, horizon)
	case strings.HasPrefix(spec.Workload, "wk-"):
		return f.resolveAttack(spec, horizon)
	default:
		return f.resolvePerf(spec, horizon)
	}
}

func (f *Factory) resolveImmo(spec telemetry.SessionSpec, horizon kernel.Time) (resolved, error) {
	img, err := f.cachedImage("immo", func() (*asm.Image, error) {
		return immo.Firmware(immo.VariantFixed), nil
	})
	if err != nil {
		return resolved{}, err
	}
	r := resolved{img: img, horizon: horizon}
	switch spec.Policy {
	case "", "default", "base":
		r.policy, r.polName = immo.BasePolicy(img), "base"
	case "per-byte":
		p, err := immo.PerBytePolicy(img)
		if err != nil {
			return resolved{}, err
		}
		r.policy, r.polName = p, "per-byte"
	case "none":
		r.polName = "none"
	default:
		return resolved{}, fmt.Errorf("serve: immo policy must be default, base, per-byte or none, not %q", spec.Policy)
	}
	every := f.challengeEvery()
	seed := seedByte(spec.Stimulus)
	r.drive = func(pl *soc.Platform) func() error {
		round, next := seed, kernel.Time(0)
		return func() error {
			if now := pl.Sim.Now(); now >= next {
				challenge := [8]byte{round, 2, 3, 4, 5, 6, 7, 8}
				pl.CAN.Deliver(0x100, challenge[:])
				round++
				next = now + every
			}
			return nil
		}
	}
	return r, nil
}

func (f *Factory) resolveMicro(spec telemetry.SessionSpec, horizon kernel.Time) (resolved, error) {
	img, err := f.cachedImage(fmt.Sprintf("micro|%d", f.microPrimes()), func() (*asm.Image, error) {
		return guest.Primes(f.microPrimes()).Image, nil
	})
	if err != nil {
		return resolved{}, err
	}
	r := resolved{img: img, horizon: horizon}
	switch spec.Policy {
	case "", "default", "code-injection":
		// The standard code-injection policy Table II uses for rows without
		// their own: perf.SessionPolicy with a nil Policy hook selects it.
		r.policy, r.polName = perf.SessionPolicy(perf.Workload{}, img), "code-injection"
	case "none":
		r.polName = "none"
	default:
		return resolved{}, fmt.Errorf("serve: micro policy must be default, code-injection or none, not %q", spec.Policy)
	}
	return r, nil
}

func (f *Factory) resolveAttack(spec telemetry.SessionSpec, horizon kernel.Time) (resolved, error) {
	num, err := strconv.Atoi(strings.TrimPrefix(spec.Workload, "wk-"))
	if err != nil {
		return resolved{}, fmt.Errorf("serve: bad attack name %q (want wk-<n>)", spec.Workload)
	}
	for _, a := range wk.Suite() {
		if a.Num != num {
			continue
		}
		if !a.Applicable() {
			return resolved{}, fmt.Errorf("serve: attack wk-%d not applicable: %s", num, a.NAReason)
		}
		img, err := f.cachedImage(spec.Workload, a.Build)
		if err != nil {
			return resolved{}, err
		}
		r := resolved{img: img, horizon: horizon}
		if r.horizon == 0 {
			r.horizon = kernel.S
		}
		switch spec.Policy {
		case "", "default":
			r.policy, r.polName = wk.Policy(img), "wk"
		case "none":
			r.polName = "none"
		default:
			return resolved{}, fmt.Errorf("serve: attack policy must be default or none, not %q", spec.Policy)
		}
		attack := a
		r.drive = func(pl *soc.Platform) func() error {
			injected := false
			return func() error {
				if !injected {
					pl.UART.Inject(attack.Payload(img))
					injected = true
				}
				return nil
			}
		}
		return r, nil
	}
	return resolved{}, fmt.Errorf("serve: no attack wk-%d in the suite", num)
}

func (f *Factory) resolvePerf(spec telemetry.SessionSpec, horizon kernel.Time) (resolved, error) {
	scaleName := spec.Scale
	if scaleName == "" {
		scaleName = "small"
	}
	scale, err := perf.ParseScale(scaleName)
	if err != nil {
		return resolved{}, err
	}
	for _, w := range perf.Workloads(scale) {
		if w.Name != spec.Workload {
			continue
		}
		if w.Drive != nil {
			return resolved{}, fmt.Errorf("serve: workload %q needs an interactive driver; request \"immo\" instead", w.Name)
		}
		img, err := f.cachedImage(w.Name+"|"+scaleName, func() (*asm.Image, error) {
			return w.Build(), nil
		})
		if err != nil {
			return resolved{}, err
		}
		r := resolved{img: img, horizon: horizon}
		if r.horizon == 0 {
			r.horizon = w.Horizon
		}
		switch spec.Policy {
		case "", "default":
			r.policy, r.polName = perf.SessionPolicy(w, img), "default"
		case "none":
			r.polName = "none"
		default:
			return resolved{}, fmt.Errorf("serve: workload policy must be default or none, not %q", spec.Policy)
		}
		return r, nil
	}
	return resolved{}, fmt.Errorf("serve: unknown workload %q (have %s)", spec.Workload, strings.Join(Names(), ", "))
}

// Key content-hashes everything that determines a session's result: the
// flattened image bytes and layout, the policy name, the stimulus, the
// horizon, and the observability attachments (a sampled run reports sample
// counts a bare run cannot, so they must not coalesce).
func (f *Factory) Key(spec telemetry.SessionSpec) (string, error) {
	r, err := f.resolve(spec)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(r.img.Flatten())
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], r.img.Base)
	binary.LittleEndian.PutUint32(hdr[4:], r.img.Entry)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(r.horizon))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(spec.SampleUs))
	h.Write(hdr[:])
	fmt.Fprintf(h, "|%s|%s|%v", r.polName, spec.Stimulus, spec.Observe)
	// Coverage capture changes the stored result's shape (it grows a
	// snapshot), so covered and uncovered runs must not share a dedup key.
	// Appended conditionally to keep every pre-existing key stable.
	if spec.Cover {
		fmt.Fprintf(h, "|cover")
	}
	return hex.EncodeToString(h.Sum(nil))[:32], nil
}

// Build constructs the platform for a spec: soc.New with the resolved
// policy, optional observer and sampler, the image loaded, and the drive
// closure bound. Close releases the kernel goroutines at finalize.
func (f *Factory) Build(spec telemetry.SessionSpec) (telemetry.SessionConfig, error) {
	r, err := f.resolve(spec)
	if err != nil {
		return telemetry.SessionConfig{}, err
	}
	cfg := soc.Config{Policy: r.policy, RAMSize: ramFor(r.img)}
	if spec.Observe {
		cfg.Obs = obs.New()
	}
	if spec.Cover {
		cfg.Cover = cover.New()
	}
	var smp *telemetry.Sampler
	if spec.SampleUs > 0 {
		smp = telemetry.NewSampler(telemetry.Options{Every: kernel.Time(spec.SampleUs) * kernel.US})
		cfg.Telemetry = smp
	}
	pl, err := soc.New(cfg)
	if err != nil {
		return telemetry.SessionConfig{}, err
	}
	if err := pl.Load(r.img); err != nil {
		pl.Shutdown()
		return telemetry.SessionConfig{}, err
	}
	sc := telemetry.SessionConfig{
		Platform: pl,
		Sampler:  smp,
		Horizon:  r.horizon,
		Close:    pl.Shutdown,
	}
	if spec.Cover {
		workload, polName := spec.Workload, r.polName
		sc.CoverSnapshot = func() *cover.Snapshot {
			return pl.CoverSnapshot(workload, polName)
		}
	}
	if r.drive != nil {
		sc.Drive = r.drive(pl)
	}
	return sc, nil
}

// ramFor sizes a session's tagged RAM to its guest instead of the 8 MiB
// default: every guest in the repo carries its stack inside its own BSS
// (crt0's __stack_top), so RAM only has to cover the image plus scratch
// headroom. Under load this is the dominant per-session allocation — the VP+
// tags every RAM byte — so right-sizing it is worth ~10x session throughput.
func ramFor(img *asm.Image) uint32 {
	const headroom = 1 << 20 // 1 MiB past the image for DMA scratch and slack
	need := img.End() - soc.RAMBase + headroom
	// Round up to a whole MiB, capped at the platform default.
	need = (need + (1 << 20) - 1) &^ ((1 << 20) - 1)
	if need > soc.DefaultRAMSize {
		need = soc.DefaultRAMSize
	}
	return need
}

// seedByte derives the immobilizer round seed from the stimulus string, so
// distinct stimuli drive genuinely distinct challenge sequences (and the
// dedup key difference is not cosmetic).
func seedByte(stimulus string) byte {
	if stimulus == "" {
		return 1
	}
	h := fnv.New32a()
	h.Write([]byte(stimulus))
	b := byte(h.Sum32())
	if b == 0 {
		b = 1
	}
	return b
}
