package serve

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"vpdift/internal/core"
	"vpdift/internal/kernel"
	"vpdift/internal/telemetry"
	"vpdift/internal/wk"
)

func TestNamesCoverWorkloadZoo(t *testing.T) {
	names := Names()
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"immo", "micro", "qsort", "primes"} {
		if !have[want] {
			t.Errorf("Names() missing %q: %v", want, names)
		}
	}
	anyAttack := false
	for n := range have {
		if strings.HasPrefix(n, "wk-") {
			anyAttack = true
		}
	}
	if !anyAttack {
		t.Errorf("Names() lists no wk-N attacks: %v", names)
	}
}

func TestKeyDeterministicAndDiscriminating(t *testing.T) {
	f := NewFactory()
	base := telemetry.SessionSpec{Workload: "micro", Stimulus: "a"}
	k1, err := f.Key(base)
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	k2, err := f.Key(base)
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if k1 != k2 {
		t.Fatalf("same spec hashed differently: %s vs %s", k1, k2)
	}
	variants := []telemetry.SessionSpec{
		{Workload: "micro", Stimulus: "b"},
		{Workload: "micro", Stimulus: "a", Policy: "none"},
		{Workload: "micro", Stimulus: "a", HorizonMs: 7},
		{Workload: "micro", Stimulus: "a", SampleUs: 100},
		{Workload: "micro", Stimulus: "a", Observe: true},
		{Workload: "immo", Stimulus: "a"},
	}
	for _, v := range variants {
		kv, err := f.Key(v)
		if err != nil {
			t.Fatalf("Key(%+v): %v", v, err)
		}
		if kv == k1 {
			t.Errorf("spec %+v collides with base key %s", v, k1)
		}
	}
}

func TestBuildMicroRunsToExit(t *testing.T) {
	f := NewFactory()
	sc, err := f.Build(telemetry.SessionSpec{Workload: "micro"})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer sc.Close()
	if sc.Horizon != 0 {
		t.Errorf("micro horizon = %v, want 0 (run to exit)", sc.Horizon)
	}
	if err := sc.Platform.Run(kernel.S); err != nil {
		t.Fatalf("Run: %v", err)
	}
	exited, code := sc.Platform.Exited()
	if !exited || code != 0 {
		t.Fatalf("micro guest exited=%v code=%d, want clean exit", exited, code)
	}
}

func TestBuildImmoDriveDeliversChallenges(t *testing.T) {
	f := NewFactory()
	sc, err := f.Build(telemetry.SessionSpec{Workload: "immo", Stimulus: "t1", SampleUs: 1000})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer sc.Close()
	if sc.Drive == nil {
		t.Fatal("immo session has no drive closure")
	}
	if sc.Sampler == nil {
		t.Fatal("SampleUs set but no sampler attached")
	}
	// Interleave drive and run the way the server's chunked loop does.
	for i := 0; i < 12; i++ {
		if err := sc.Drive(); err != nil {
			t.Fatalf("Drive: %v", err)
		}
		if err := sc.Platform.Run(sc.Platform.Now() + kernel.MS); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	m := map[string]uint64{}
	sc.Platform.MetricsSnapshotInto(m)
	if m["io.can_frames_delivered"] == 0 && m["io.can_rx_frames"] == 0 {
		// Metric name varies; just insist the sim made progress under drive.
		if sc.Platform.Now() < 10*kernel.MS {
			t.Fatalf("immo session stalled at %v", sc.Platform.Now())
		}
	}
	if sc.Sampler.Total() == 0 {
		t.Error("sampler recorded no samples over 12ms at 1ms cadence")
	}
}

func TestBuildAttackDetected(t *testing.T) {
	// Use the first applicable attack so the test tracks the suite.
	var num int
	for _, a := range wk.Suite() {
		if a.Applicable() {
			num = a.Num
			break
		}
	}
	if num == 0 {
		t.Skip("no applicable attacks in suite")
	}
	f := NewFactory()
	sc, err := f.Build(telemetry.SessionSpec{Workload: fmt.Sprintf("wk-%d", num)})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer sc.Close()
	if sc.Horizon != kernel.S {
		t.Errorf("attack horizon = %v, want %v", sc.Horizon, kernel.S)
	}
	if err := sc.Drive(); err != nil {
		t.Fatalf("Drive: %v", err)
	}
	err = sc.Platform.Run(sc.Horizon)
	var v *core.Violation
	if !errors.As(err, &v) {
		t.Fatalf("wk-%d under default policy: err = %v, want a *core.Violation", num, err)
	}
}

func TestResolveErrors(t *testing.T) {
	f := NewFactory()
	cases := []telemetry.SessionSpec{
		{Workload: "no-such-workload"},
		{Workload: "immo", Policy: "bogus"},
		{Workload: "micro", Policy: "per-byte"},
		{Workload: "wk-999"},
		{Workload: "qsort", Scale: "galactic"},
	}
	for _, spec := range cases {
		if _, err := f.Key(spec); err == nil {
			t.Errorf("Key(%+v) succeeded, want error", spec)
		}
	}
}
