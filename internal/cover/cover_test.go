package cover

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"vpdift/internal/asm"
	"vpdift/internal/core"
)

const (
	nop    = 0x00000013 // addi x0, x0, 0
	beqP8  = 0x00000463 // beq x0, x0, +8
	jalP8  = 0x0080006f // jal x0, +8
	base   = 0x80000000
	ramLen = 0x100
)

// testImage builds a six-instruction image by hand:
//
//	0x00 main: nop
//	0x04       beq +8      -> 0x0c taken, 0x08 fall-through
//	0x08       nop
//	0x0c tail: jal +8      -> 0x14
//	0x10       nop
//	0x14       nop
func testImage() *asm.Image {
	words := []uint32{nop, beqP8, nop, jalP8, nop, nop}
	text := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(text[4*i:], w)
	}
	return &asm.Image{
		Base: base, Text: text, Entry: base,
		DataAddr: base + uint32(len(text)), BSSAddr: base + uint32(len(text)),
		Symbols: map[string]uint32{"main": base, "tail": base + 0x0c},
	}
}

// retire replays the taken path through the test image.
func retire(g *GuestCov) {
	g.OnRetire(base+0x00, nop, base+0x04)
	g.OnRetire(base+0x04, beqP8, base+0x0c) // taken
	g.OnRetire(base+0x0c, jalP8, base+0x14)
	g.OnRetire(base+0x14, nop, base+0x18)
}

func TestImmediateExtractors(t *testing.T) {
	if got := bImm(beqP8); got != 8 {
		t.Errorf("bImm(beq +8) = %d", got)
	}
	if got := jImm(jalP8); got != 8 {
		t.Errorf("jImm(jal +8) = %d", got)
	}
	// Negative offsets must sign-extend: beq x0, x0, -4 assembles with
	// imm[12]=1, imm[11]=1, imm[10:5]=0x3f, imm[4:1]=0xe.
	beqM4 := uint32(1)<<31 | uint32(0x3f)<<25 | uint32(0xe)<<8 | uint32(1)<<7 | 0x63
	if got := bImm(beqM4); got != -4 {
		t.Errorf("bImm(beq -4) = %d", got)
	}
	jalM4 := uint32(1)<<31 | uint32(0xff)<<12 | uint32(1)<<20 | uint32(0x3fe)<<21 | 0x6f
	if got := jImm(jalM4); got != -4 {
		t.Errorf("jImm(jal -4) = %d", got)
	}
}

func TestGuestCountsAndEdges(t *testing.T) {
	g := NewGuest()
	g.Configure(base, ramLen)
	g.SetImage(testImage())
	retire(g)

	if got := g.Count(base + 0x04); got != 1 {
		t.Errorf("Count(branch) = %d, want 1", got)
	}
	if got := g.Count(base + 0x08); got != 0 {
		t.Errorf("Count(fall-through) = %d, want 0", got)
	}
	if got := g.EdgeCount(base+0x04, base+0x0c); got != 1 {
		t.Errorf("taken edge count = %d, want 1", got)
	}
	if got := g.EdgeCount(base+0x04, base+0x08); got != 0 {
		t.Errorf("not-taken edge count = %d, want 0", got)
	}

	s := g.Stats()
	if s.Insns != 6 || s.InsnsCovered != 4 {
		t.Errorf("insns %d/%d, want 4/6", s.InsnsCovered, s.Insns)
	}
	// Leaders: entry 0x00, fall-through 0x08, branch target/function 0x0c,
	// post-jal 0x10, jal target 0x14.
	if s.Blocks != 5 || s.BlocksCovered != 3 {
		t.Errorf("blocks %d/%d, want 3/5", s.BlocksCovered, s.Blocks)
	}
	// Static edges: branch taken, branch fall-through, jal target.
	if s.Edges != 3 || s.EdgesCovered != 2 {
		t.Errorf("edges %d/%d, want 2/3", s.EdgesCovered, s.Edges)
	}
	if s.DynOnlyEdges != 0 {
		t.Errorf("dyn-only edges = %d, want 0", s.DynOnlyEdges)
	}

	// An indirect transfer (next != pc+4 from a non-branch) records a
	// dynamic-only edge the static CFG cannot know.
	g.OnRetire(base+0x14, nop, base)
	if s := g.Stats(); s.DynOnlyEdges != 1 {
		t.Errorf("after indirect: dyn-only edges = %d, want 1", s.DynOnlyEdges)
	}
}

func TestGuestReportAndLcov(t *testing.T) {
	g := NewGuest()
	g.Configure(base, ramLen)
	g.SetImage(testImage())
	retire(g)
	// Execute one word outside the image (injected code).
	g.OnRetire(base+0x40, nop, base+0x44)

	var rep bytes.Buffer
	if err := g.WriteReport(&rep, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"guest coverage:", "main:", "tail:", "per-function coverage:",
		"executed outside the image",
	} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report lacks %q:\n%s", want, rep.String())
		}
	}

	var info bytes.Buffer
	if err := g.WriteLcov(&info, "prog.s"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SF:prog.s", "FN:1,main", "FN:4,tail", "FNDA:1,main",
		"FNF:2", "FNH:2", "DA:1,1", "DA:3,0", "LF:6", "LH:4", "end_of_record",
	} {
		if !strings.Contains(info.String(), want) {
			t.Errorf("lcov lacks %q:\n%s", want, info.String())
		}
	}
}

func TestTaintHeatmap(t *testing.T) {
	l := core.IFP1()
	lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
	tc := NewTaint()
	tc.Configure(base, 64, l, lc)

	tc.OnStore(base+8, 4, hc)
	if got := tc.EverTainted(); got != 4 {
		t.Errorf("ever tainted = %d, want 4", got)
	}
	if got := tc.ChurnTotal(); got != 4 {
		t.Errorf("churn = %d, want 4", got)
	}
	// Same tag again: no churn, no new ever-tainted bytes.
	tc.OnStore(base+8, 4, hc)
	if got := tc.ChurnTotal(); got != 4 {
		t.Errorf("churn after idempotent store = %d, want 4", got)
	}
	// Reverting to the default churns but does not grow the ever set.
	tc.OnStore(base+8, 4, lc)
	if got, ever := tc.ChurnTotal(), tc.EverTainted(); got != 8 || ever != 4 {
		t.Errorf("after revert: churn %d ever %d, want 8 and 4", got, ever)
	}
	// Bus-initiated writes feed the same map.
	tc.OnMemWrite([]core.TByte{{V: 1, T: hc}}, 0)
	if got := tc.EverTainted(); got != 5 {
		t.Errorf("after mem write: ever tainted = %d, want 5", got)
	}
	// Out-of-window stores are ignored.
	tc.OnStore(base+1000, 4, hc)
	if got := tc.EverTainted(); got != 5 {
		t.Errorf("out-of-window store changed the map: %d", got)
	}

	var regs [32]core.Word
	regs[5].T = hc
	tc.OnRetireRegs(&regs)
	tc.OnRetireRegs(&regs)

	var heat bytes.Buffer
	if err := tc.WriteHeat(&heat, func(addr uint32) string { return "sym" }); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"taint heatmap: 5 bytes", "x5   100.00%", "<sym>", "HC"} {
		if !strings.Contains(heat.String(), want) {
			t.Errorf("heat report lacks %q:\n%s", want, heat.String())
		}
	}
}

func TestTaintInitFromRAMSeedsWithoutChurn(t *testing.T) {
	l := core.IFP1()
	lc, hc := l.MustTag(core.ClassLC), l.MustTag(core.ClassHC)
	tc := NewTaint()
	tc.Configure(base, 16, l, lc)
	data := make([]core.TByte, 16)
	data[3].T = hc
	tc.InitFromRAM(data)
	if got := tc.EverTainted(); got != 1 {
		t.Errorf("ever tainted = %d, want 1", got)
	}
	if got := tc.ChurnTotal(); got != 0 {
		t.Errorf("classification seeding counted as churn: %d", got)
	}
}

func TestAuditCountsAndDeadRules(t *testing.T) {
	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	pol := core.NewPolicy(l, li).
		WithFetchClearance(hi).
		WithRegion(core.RegionRule{
			Name: "guarded", Start: base, End: base + 16,
			CheckStore: true, Clearance: hi,
		}).
		WithOutput("uart0.tx", li)

	a := NewAudit()
	if a.Configured() {
		t.Fatal("unconfigured audit claims to be configured")
	}
	a.Configure(pol)

	// The lattice now feeds the pair matrices.
	l.LUB(hi, li)
	if !l.AllowedFlow(hi, li) {
		t.Fatal("IFP2 must allow HI -> LI")
	}
	a.Fetch.Checks++
	a.NoteStore(base + 4) // inside the guarded region
	a.NoteStore(base + 64)
	if a.regions[0].Checks != 1 {
		t.Errorf("region checks = %d, want 1", a.regions[0].Checks)
	}
	a.NoteViolation(core.NewViolation(l, core.KindFetchClearance, li, hi).WithPC(base))
	if a.Fetch.Violations != 1 {
		t.Errorf("fetch violations = %d, want 1", a.Fetch.Violations)
	}

	dead := a.DeadRules()
	joined := strings.Join(dead, "\n")
	if !strings.Contains(joined, `output clearance on "uart0.tx"`) {
		t.Errorf("dead rules miss the unexercised output: %q", dead)
	}
	if strings.Contains(joined, "fetch clearance") || strings.Contains(joined, `region "guarded"`) {
		t.Errorf("dead rules flag exercised points: %q", dead)
	}

	// Report generation must not pollute the counters (flowAllowed
	// temporarily reinstalls them to query the lattice closure).
	var before uint64
	for _, c := range a.flowPair {
		before += c
	}
	var rep bytes.Buffer
	if err := a.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	var after uint64
	for _, c := range a.flowPair {
		after += c
	}
	if before != after {
		t.Errorf("WriteReport changed flow counters: %d -> %d", before, after)
	}
	if !strings.Contains(rep.String(), "policy audit") {
		t.Errorf("report:\n%s", rep.String())
	}

	var js bytes.Buffer
	if err := a.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"classes"`, `"flow"`, `"dead_rules"`, `"uart0.tx"`, `"guarded"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("audit JSON lacks %q:\n%s", want, js.String())
		}
	}
}

func TestCoverActive(t *testing.T) {
	var nilCover *Cover
	if nilCover.Active() {
		t.Error("nil cover is active")
	}
	if (&Cover{}).Active() {
		t.Error("empty cover is active")
	}
	if !(&Cover{Guest: NewGuest()}).Active() {
		t.Error("guest-only cover is inactive")
	}
	c := New()
	if c.Guest == nil || c.Taint == nil || c.Audit == nil || !c.Active() {
		t.Error("New() must populate all three views")
	}
}
