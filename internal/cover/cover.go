// Package cover is the coverage-observability layer of the virtual
// prototype: where internal/obs answers "where did tainted data flow?" and
// internal/trace answers "what did the simulator do?", this package answers
// "what did this run actually exercise?". It provides three coordinated
// views:
//
//   - GuestCov: basic-block and edge coverage of the guest program built on
//     the cores' retire hook, with per-function percentages from the image
//     symbol table, an lcov-style .info export, and an annotated-disassembly
//     text report.
//   - TaintCov: per-byte memory taint heatmaps (ever-tainted bitmap, taint
//     churn counters, per-class residency) and per-register taint-occupancy
//     statistics, rendered as a compact address-range heat report.
//   - PolicyAudit: per-lattice-edge LUB/AllowedFlow hit counters,
//     per-clearance-point check/violation counts, and a dead-rule report
//     flagging IFP classes and clearance rules a run never exercised.
//
// All three follow the nil-hook discipline of internal/obs and
// internal/trace: a platform built without a Cover (or with unused views
// left nil) pays one predictable branch per retired instruction and nothing
// else — the contract the CI perf guard pins.
package cover

// Cover bundles the enabled views. Leave a field nil to disable that view;
// a zero Cover is valid and records nothing.
type Cover struct {
	Guest *GuestCov
	Taint *TaintCov
	Audit *PolicyAudit
}

// New returns a Cover with all three views enabled. The views size their
// buffers when the platform configures them at wiring time.
func New() *Cover {
	return &Cover{Guest: NewGuest(), Taint: NewTaint(), Audit: NewAudit()}
}

// Active reports whether any view is enabled.
func (c *Cover) Active() bool {
	return c != nil && (c.Guest != nil || c.Taint != nil || c.Audit != nil)
}
