package cover

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"vpdift/internal/asm"
)

// GuestCov records guest code coverage from the cores' retire hook: a
// per-word execution count over the RAM window (like the trace profiler's
// histogram) plus a dynamic control-flow edge set. Basic blocks and their
// totals are derived at report time by a static scan of the image text, so
// the hot hook stays two array operations and a map update on control
// transfers.
type GuestCov struct {
	base   uint32
	counts []uint64
	edges  map[uint64]uint64 // pc<<32|next -> traversal count
	img    *asm.Image
	cfg    *staticCFG // lazily built from img; the image is fixed after load
}

// NewGuest returns an unconfigured guest-coverage view; the platform sizes
// it via Configure at wiring time.
func NewGuest() *GuestCov {
	return &GuestCov{edges: make(map[uint64]uint64)}
}

// Configure sizes the execution-count window to the RAM window, mirroring
// the profiler: one counter per 32-bit word.
func (g *GuestCov) Configure(base, size uint32) {
	g.base = base
	g.counts = make([]uint64, (size+3)/4)
}

// SetImage attaches the loaded program so reports can attribute coverage to
// functions and annotate disassembly.
func (g *GuestCov) SetImage(img *asm.Image) {
	g.img = img
	g.cfg = nil
}

// staticCFG returns the image's control-flow graph, built once: Stats runs
// on every telemetry sample, and the CFG depends only on the static text.
func (g *GuestCov) staticCFG() *staticCFG {
	if g.cfg == nil {
		g.cfg = buildCFG(g.img)
	}
	return g.cfg
}

// OnRetire records one retired instruction and, when the successor is not
// the fall-through (or the instruction is a conditional branch, whose
// not-taken edge matters for edge coverage), the control-flow edge.
func (g *GuestCov) OnRetire(pc, insn, next uint32) {
	if idx := (pc - g.base) >> 2; int(idx) < len(g.counts) {
		g.counts[idx]++
	}
	if next != pc+4 || insn&0x7f == opBranch {
		g.edges[uint64(pc)<<32|uint64(next)]++
	}
}

// Count returns the execution count recorded for pc.
func (g *GuestCov) Count(pc uint32) uint64 {
	if idx := (pc - g.base) >> 2; int(idx) < len(g.counts) {
		return g.counts[idx]
	}
	return 0
}

// EdgeCount returns the traversal count of the control-flow edge from -> to.
func (g *GuestCov) EdgeCount(from, to uint32) uint64 {
	return g.edges[uint64(from)<<32|uint64(to)]
}

// Raw RISC-V opcode fields; cover decodes control flow from raw bits (the
// profiler's technique) so it does not depend on internal/rv32.
const (
	opBranch = 0x63
	opJAL    = 0x6f
	opJALR   = 0x67
	opSystem = 0x73
)

// bImm extracts the sign-extended B-type branch offset.
func bImm(w uint32) int32 {
	imm := (w>>31&1)<<12 | (w>>7&1)<<11 | (w>>25&0x3f)<<5 | (w>>8&0xf)<<1
	return int32(imm<<19) >> 19
}

// jImm extracts the sign-extended J-type jump offset.
func jImm(w uint32) int32 {
	imm := (w>>31&1)<<20 | (w>>12&0xff)<<12 | (w>>20&1)<<11 | (w>>21&0x3ff)<<1
	return int32(imm<<11) >> 11
}

// textWord returns the instruction word at pc from the image text.
func textWord(img *asm.Image, pc uint32) uint32 {
	off := pc - img.Base
	return uint32(img.Text[off]) | uint32(img.Text[off+1])<<8 |
		uint32(img.Text[off+2])<<16 | uint32(img.Text[off+3])<<24
}

// fn is a function resolved from the image symbol table: label-like symbols
// inside .text, each extending to the next symbol or the end of text.
type fn struct {
	name       string
	start, end uint32
}

// functions lists the image's text functions in address order.
func functions(img *asm.Image) []fn {
	textEnd := img.Base + uint32(len(img.Text))
	var fns []fn
	for name, addr := range img.Symbols {
		if addr < img.Base || addr >= textEnd || isConstSym(name) {
			continue
		}
		fns = append(fns, fn{name: name, start: addr})
	}
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].start != fns[j].start {
			return fns[i].start < fns[j].start
		}
		return fns[i].name < fns[j].name
	})
	// Collapse same-address aliases (keep the first by name) and close ranges.
	out := fns[:0]
	for _, f := range fns {
		if len(out) > 0 && out[len(out)-1].start == f.start {
			continue
		}
		out = append(out, f)
	}
	for i := range out {
		if i+1 < len(out) {
			out[i].end = out[i+1].start
		} else {
			out[i].end = textEnd
		}
	}
	return out
}

// isConstSym mirrors the image's ALL_CAPS-constant heuristic.
func isConstSym(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'a' && c <= 'z' {
			return false
		}
	}
	return true
}

// staticCFG is the statically-derivable control-flow structure of the image
// text: basic-block leaders and the edge set of direct branches and jumps.
// Indirect transfers (jalr, mret, traps) contribute dynamic edges only.
type staticCFG struct {
	leaders map[uint32]bool
	edges   map[uint64]bool // pc<<32|target for branch taken/fall-through and jal
}

func buildCFG(img *asm.Image) *staticCFG {
	cfg := &staticCFG{leaders: make(map[uint32]bool), edges: make(map[uint64]bool)}
	textEnd := img.Base + uint32(len(img.Text))
	inText := func(a uint32) bool { return a >= img.Base && a < textEnd }
	cfg.leaders[img.Entry] = true
	for _, f := range functions(img) {
		cfg.leaders[f.start] = true
	}
	for pc := img.Base; pc+4 <= textEnd; pc += 4 {
		w := textWord(img, pc)
		switch w & 0x7f {
		case opBranch:
			t := pc + uint32(bImm(w))
			if inText(t) {
				cfg.leaders[t] = true
				cfg.edges[uint64(pc)<<32|uint64(t)] = true
			}
			cfg.leaders[pc+4] = true
			cfg.edges[uint64(pc)<<32|uint64(pc+4)] = true
		case opJAL:
			t := pc + uint32(jImm(w))
			if inText(t) {
				cfg.leaders[t] = true
				cfg.edges[uint64(pc)<<32|uint64(t)] = true
			}
			cfg.leaders[pc+4] = true
		case opJALR, opSystem:
			cfg.leaders[pc+4] = true
		}
	}
	delete(cfg.leaders, textEnd)
	return cfg
}

// GuestStats summarizes guest coverage for the metrics registry and report
// headers.
type GuestStats struct {
	Insns, InsnsCovered   int
	Blocks, BlocksCovered int
	Edges, EdgesCovered   int
	DynOnlyEdges          int // executed edges outside the static set (indirect)
}

func pct(cov, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(cov) / float64(total)
}

// Stats computes coverage totals against the attached image; zero without
// one.
func (g *GuestCov) Stats() GuestStats {
	var s GuestStats
	if g.img == nil {
		return s
	}
	textEnd := g.img.Base + uint32(len(g.img.Text))
	for pc := g.img.Base; pc+4 <= textEnd; pc += 4 {
		s.Insns++
		if g.Count(pc) > 0 {
			s.InsnsCovered++
		}
	}
	cfg := g.staticCFG()
	for leader := range cfg.leaders {
		s.Blocks++
		if g.Count(leader) > 0 {
			s.BlocksCovered++
		}
	}
	for e := range cfg.edges {
		s.Edges++
		if g.edges[e] > 0 {
			s.EdgesCovered++
		}
	}
	for e := range g.edges {
		if !cfg.edges[e] {
			s.DynOnlyEdges++
		}
	}
	return s
}

// WriteLcov emits coverage in the lcov .info format (one DA record per
// instruction word, FN/FNDA records per function), mapping instruction words
// to lines as (pc-base)/4+1 — the convention genhtml and IDE gutters accept
// for flat assembly listings. srcName names the SF record.
func (g *GuestCov) WriteLcov(w io.Writer, srcName string) error {
	if g.img == nil {
		return fmt.Errorf("cover: no image attached; cannot export lcov")
	}
	img := g.img
	line := func(pc uint32) uint32 { return (pc-img.Base)/4 + 1 }
	if _, err := fmt.Fprintf(w, "TN:\nSF:%s\n", srcName); err != nil {
		return err
	}
	fns := functions(img)
	hit := 0
	for _, f := range fns {
		fmt.Fprintf(w, "FN:%d,%s\n", line(f.start), f.name)
	}
	for _, f := range fns {
		c := g.Count(f.start)
		if c > 0 {
			hit++
		}
		fmt.Fprintf(w, "FNDA:%d,%s\n", c, f.name)
	}
	fmt.Fprintf(w, "FNF:%d\nFNH:%d\n", len(fns), hit)
	textEnd := img.Base + uint32(len(img.Text))
	lf, lh := 0, 0
	for pc := img.Base; pc+4 <= textEnd; pc += 4 {
		c := g.Count(pc)
		lf++
		if c > 0 {
			lh++
		}
		fmt.Fprintf(w, "DA:%d,%d\n", line(pc), c)
	}
	_, err := fmt.Fprintf(w, "LF:%d\nLH:%d\nend_of_record\n", lf, lh)
	return err
}

// WriteReport renders the human-readable coverage report: overall and
// per-function percentages, an annotated disassembly of the image text
// (execution count per instruction, uncovered lines marked), and any
// executed address ranges outside the image — injected code a WK attack
// managed to run shows up here. disasm may be nil; when non-nil it renders
// each instruction word (callers pass rv32.Disassemble).
func (g *GuestCov) WriteReport(w io.Writer, disasm func(insn, pc uint32) string) error {
	if g.img == nil {
		_, err := fmt.Fprintln(w, "guest coverage: no image attached")
		return err
	}
	img := g.img
	s := g.Stats()
	fmt.Fprintf(w, "guest coverage: %d/%d instructions (%.1f%%), %d/%d blocks (%.1f%%), %d/%d edges (%.1f%%)",
		s.InsnsCovered, s.Insns, pct(s.InsnsCovered, s.Insns),
		s.BlocksCovered, s.Blocks, pct(s.BlocksCovered, s.Blocks),
		s.EdgesCovered, s.Edges, pct(s.EdgesCovered, s.Edges))
	if s.DynOnlyEdges > 0 {
		fmt.Fprintf(w, " (+%d indirect edges)", s.DynOnlyEdges)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "per-function coverage:")
	for _, f := range functions(img) {
		total, cov := 0, 0
		var execs uint64
		for pc := f.start; pc+4 <= f.end; pc += 4 {
			total++
			if c := g.Count(pc); c > 0 {
				cov++
				execs += c
			}
		}
		fmt.Fprintf(w, "  %-24s %3d/%3d insns %6.1f%%  %10d executions\n",
			f.name, cov, total, pct(cov, total), execs)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "annotated disassembly (count | pc | insn):")
	textEnd := img.Base + uint32(len(img.Text))
	cfg := buildCFG(img)
	for pc := img.Base; pc+4 <= textEnd; pc += 4 {
		if cfg.leaders[pc] {
			if name, off, ok := img.SymbolAt(pc); ok && off == 0 && !isConstSym(name) {
				fmt.Fprintf(w, "%s:\n", name)
			}
		}
		insn := textWord(img, pc)
		c := g.Count(pc)
		mark := fmt.Sprintf("%10d", c)
		if c == 0 {
			mark = "         -"
		}
		dis := fmt.Sprintf(".word 0x%08x", insn)
		if disasm != nil {
			dis = disasm(insn, pc)
		}
		fmt.Fprintf(w, "  %s  0x%08x  %s\n", mark, pc, dis)
	}

	if ranges := g.executedOutside(); len(ranges) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "executed outside the image (injected or stale code):")
		for _, r := range ranges {
			fmt.Fprintf(w, "  [0x%08x, 0x%08x)  %d executions\n", r.start, r.end, r.execs)
		}
	}
	return nil
}

type execRange struct {
	start, end uint32
	execs      uint64
}

// executedOutside lists contiguous executed ranges not covered by the image
// text.
func (g *GuestCov) executedOutside() []execRange {
	var out []execRange
	textEnd := g.img.Base + uint32(len(g.img.Text))
	for idx, c := range g.counts {
		if c == 0 {
			continue
		}
		pc := g.base + uint32(idx)*4
		if pc >= g.img.Base && pc < textEnd {
			continue
		}
		if n := len(out); n > 0 && out[n-1].end == pc {
			out[n-1].end = pc + 4
			out[n-1].execs += c
		} else {
			out = append(out, execRange{start: pc, end: pc + 4, execs: c})
		}
	}
	return out
}

// Summary returns a one-line coverage summary for log output.
func (g *GuestCov) Summary() string {
	s := g.Stats()
	return strings.TrimSpace(fmt.Sprintf("insns %.1f%% blocks %.1f%% edges %.1f%%",
		pct(s.InsnsCovered, s.Insns), pct(s.BlocksCovered, s.Blocks), pct(s.EdgesCovered, s.Edges)))
}
