package cover

import (
	"fmt"
	"io"

	"vpdift/internal/core"
)

// TaintCov records where taint went: a per-byte ever-tainted bitmap and
// churn counter over the RAM window, per-class tainted-write counts, and
// per-register taint-occupancy statistics. It is fed from three sites that
// together see every tag the platform writes: the VP+ core's store fast
// path (OnStore), the tainted memory's write hook for bus-initiated writes
// (OnMemWrite — DMA and TLM transactions bypass the core), and the
// load-time classification scan (InitFromRAM).
type TaintCov struct {
	base uint32
	size uint32
	def  core.Tag
	lat  *core.Lattice

	ever        []uint64   // 1 bit per RAM byte: ever held a non-default tag
	shadow      []core.Tag // last observed tag per byte, for churn detection
	churn       []uint32   // per-word count of byte tag changes
	classWrites []uint64   // per-class tainted byte-write counts

	regOcc  [32]uint64 // retires during which the register held a non-default tag
	retires uint64
}

// NewTaint returns an unconfigured taint-coverage view; the platform sizes
// it via Configure at wiring time.
func NewTaint() *TaintCov { return &TaintCov{} }

// Configure sizes the heatmap buffers to the RAM window and binds the
// policy's lattice and default class.
func (t *TaintCov) Configure(base, size uint32, lat *core.Lattice, def core.Tag) {
	t.base, t.size, t.lat, t.def = base, size, lat, def
	t.ever = make([]uint64, (size+63)/64)
	t.shadow = make([]core.Tag, size)
	t.churn = make([]uint32, (size+3)/4)
	t.classWrites = make([]uint64, lat.Size())
	for i := range t.shadow {
		t.shadow[i] = def
	}
}

// noteByte records one tag written to RAM offset off.
func (t *TaintCov) noteByte(off uint32, tag core.Tag) {
	if off >= t.size {
		return
	}
	if tag != t.def {
		t.ever[off>>6] |= 1 << (off & 63)
		if int(tag) < len(t.classWrites) {
			t.classWrites[tag]++
		}
	}
	if t.shadow[off] != tag {
		t.churn[off>>2]++
		t.shadow[off] = tag
	}
}

// OnStore records a CPU store of size bytes carrying tag at addr. Called
// from the VP+ core's post-retire cover hook (the direct-RAM store path does
// not pass through the memory's write hooks).
func (t *TaintCov) OnStore(addr, size uint32, tag core.Tag) {
	for j := uint32(0); j < size; j++ {
		t.noteByte(addr+j-t.base, tag)
	}
}

// OnMemWrite records a bus-initiated write (DMA descriptor fill, TLM
// transaction): data holds the bytes just written starting at RAM offset
// startOff, tags included.
func (t *TaintCov) OnMemWrite(data []core.TByte, startOff uint32) {
	for j, b := range data {
		t.noteByte(startOff+uint32(j), b.T)
	}
}

// InitFromRAM seeds the shadow tags from the freshly loaded and classified
// RAM: classification roots (the immobilizer PIN region, HI text) count as
// ever-tainted, but seeding does not count as churn.
func (t *TaintCov) InitFromRAM(data []core.TByte) {
	n := uint32(len(data))
	if n > t.size {
		n = t.size
	}
	for off := uint32(0); off < n; off++ {
		tag := data[off].T
		t.shadow[off] = tag
		if tag != t.def {
			t.ever[off>>6] |= 1 << (off & 63)
		}
	}
}

// OnRetireRegs samples register-file taint occupancy at one retired
// instruction.
func (t *TaintCov) OnRetireRegs(regs *[32]core.Word) {
	t.retires++
	for i := 1; i < 32; i++ {
		if regs[i].T != t.def {
			t.regOcc[i]++
		}
	}
}

// EverTainted counts RAM bytes that ever held a non-default tag.
func (t *TaintCov) EverTainted() uint64 {
	var n uint64
	for _, w := range t.ever {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ChurnTotal sums all per-word tag-change counts.
func (t *TaintCov) ChurnTotal() uint64 {
	var n uint64
	for _, c := range t.churn {
		n += uint64(c)
	}
	return n
}

// residency counts bytes currently holding each class, from the shadow tags.
func (t *TaintCov) residency() []uint64 {
	out := make([]uint64, len(t.classWrites))
	for _, tag := range t.shadow {
		if int(tag) < len(out) {
			out[tag]++
		}
	}
	return out
}

type taintRange struct {
	start, end uint32 // offsets
	churn      uint64
}

// taintedRanges walks the ever-tainted bitmap into contiguous byte ranges.
func (t *TaintCov) taintedRanges() []taintRange {
	var out []taintRange
	for off := uint32(0); off < t.size; off++ {
		if t.ever[off>>6]&(1<<(off&63)) == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].end == off {
			out[n-1].end = off + 1
		} else {
			out = append(out, taintRange{start: off, end: off + 1})
		}
	}
	for i := range out {
		for w := out[i].start &^ 3; w < out[i].end; w += 4 {
			out[i].churn += uint64(t.churn[w>>2])
		}
	}
	return out
}

// heatBar renders churn-per-byte as a coarse five-step heat scale.
func heatBar(churn uint64, bytes uint32) string {
	if bytes == 0 {
		return ""
	}
	per := float64(churn) / float64(bytes)
	switch {
	case per == 0:
		return "."
	case per < 1:
		return "▁"
	case per < 4:
		return "▃"
	case per < 16:
		return "▅"
	default:
		return "█"
	}
}

// WriteHeat renders the compact address-range heat report: ever-tainted
// ranges with churn heat, per-class residency, and register taint
// occupancy. symAt may be nil; when non-nil it annotates range starts
// (callers pass a closure over the image's SymbolAt).
func (t *TaintCov) WriteHeat(w io.Writer, symAt func(addr uint32) string) error {
	if t.shadow == nil {
		_, err := fmt.Fprintln(w, "taint coverage: not configured")
		return err
	}
	fmt.Fprintf(w, "taint heatmap: %d bytes ever tainted, %d tag changes over %d retires\n\n",
		t.EverTainted(), t.ChurnTotal(), t.retires)

	fmt.Fprintln(w, "tainted address ranges (heat = tag changes per byte):")
	for _, r := range t.taintedRanges() {
		start, end := t.base+r.start, t.base+r.end
		sym := ""
		if symAt != nil {
			if s := symAt(start); s != "" {
				sym = "  <" + s + ">"
			}
		}
		fmt.Fprintf(w, "  %s [0x%08x, 0x%08x) %6d bytes  churn %-8d%s\n",
			heatBar(r.churn, r.end-r.start), start, end, r.end-r.start, r.churn, sym)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "per-class residency (current) and tainted writes (lifetime):")
	res := t.residency()
	for i, n := range res {
		if core.Tag(i) == t.def && t.classWrites[i] == 0 {
			continue // the default class covers everything else; skip unless written
		}
		fmt.Fprintf(w, "  %-12s %10d bytes resident  %10d bytes written\n",
			t.lat.Name(core.Tag(i)), n, t.classWrites[i])
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "register taint occupancy (fraction of retires with a non-default tag):")
	any := false
	for i := 1; i < 32; i++ {
		if t.regOcc[i] == 0 {
			continue
		}
		any = true
		fmt.Fprintf(w, "  x%-3d %6.2f%%  (%d/%d retires)\n",
			i, 100*float64(t.regOcc[i])/float64(t.retires), t.regOcc[i], t.retires)
	}
	if !any {
		fmt.Fprintln(w, "  (no register ever held tainted data)")
	}
	return nil
}
