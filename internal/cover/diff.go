package cover

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// DiffSchema versions the serialized diff report emitted by vp-diff -json
// and the campaign coverage-diff endpoint.
const DiffSchema = "vpdift.cover-diff/v1"

// VerdictFlip records a workload/policy pair whose detection outcome changed
// between the two compared snapshots.
type VerdictFlip struct {
	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Base     string `json:"base"`
	Other    string `json:"other"`
}

// DiffReport is the structured comparison of two snapshots ("base" is the
// reference — typically the older run or the CI baseline — and "other" the
// candidate). Lost edges, newly-dead rules, and verdict flips constitute a
// regression.
type DiffReport struct {
	Schema    string `json:"schema"`
	BaseRuns  int    `json:"base_runs"`
	OtherRuns int    `json:"other_runs"`

	NewEdges   []string `json:"new_edges,omitempty"`
	LostEdges  []string `json:"lost_edges,omitempty"`
	NewBlocks  []string `json:"new_blocks,omitempty"`
	LostBlocks []string `json:"lost_blocks,omitempty"`

	TaintGained      []string `json:"taint_gained,omitempty"`
	TaintLost        []string `json:"taint_lost,omitempty"`
	TaintGainedBytes uint64   `json:"taint_gained_bytes,omitempty"`
	TaintLostBytes   uint64   `json:"taint_lost_bytes,omitempty"`

	RevivedRules   []string `json:"revived_rules,omitempty"`
	NewlyDeadRules []string `json:"newly_dead_rules,omitempty"`

	VerdictFlips []VerdictFlip `json:"verdict_flips,omitempty"`
}

// Diff compares other against base. Nil snapshots are treated as empty, so
// Diff(nil, s) reports everything in s as new.
func Diff(base, other *Snapshot) *DiffReport {
	d := &DiffReport{Schema: DiffSchema}
	if base != nil {
		d.BaseRuns = len(base.Runs)
	}
	if other != nil {
		d.OtherRuns = len(other.Runs)
	}

	bg, og := guestOf(base), guestOf(other)
	d.NewEdges = keysOnlyIn(og.Edges, bg.Edges)
	d.LostEdges = keysOnlyIn(bg.Edges, og.Edges)
	d.NewBlocks = keysOnlyIn(og.Hits, bg.Hits)
	d.LostBlocks = keysOnlyIn(bg.Hits, og.Hits)

	bt, ot := taintOf(base), taintOf(other)
	bs, os := parseSpans(bt.Ever), parseSpans(ot.Ever)
	gained, lost := subtractSpans(os, bs), subtractSpans(bs, os)
	d.TaintGained, d.TaintGainedBytes = formatSpans(gained), spanBytes(gained)
	d.TaintLost, d.TaintLostBytes = formatSpans(lost), spanBytes(lost)

	// Rule-exercise delta: only meaningful when both sides carry an audit.
	if ba, oa := auditOf(base), auditOf(other); ba != nil && oa != nil {
		d.RevivedRules = stringsOnlyIn(ba.DeadRules, oa.DeadRules)
		d.NewlyDeadRules = stringsOnlyIn(oa.DeadRules, ba.DeadRules)
	}

	d.VerdictFlips = verdictFlips(base, other)
	return d
}

func guestOf(s *Snapshot) *GuestSnap {
	if s == nil || s.Guest == nil {
		return &GuestSnap{}
	}
	return s.Guest
}

func taintOf(s *Snapshot) *TaintSnap {
	if s == nil || s.Taint == nil {
		return &TaintSnap{}
	}
	return s.Taint
}

func auditOf(s *Snapshot) *AuditSnap {
	if s == nil {
		return nil
	}
	return s.Audit
}

// keysOnlyIn returns the sorted keys of a that are absent from b.
func keysOnlyIn(a, b map[string]uint64) []string {
	var out []string
	for k := range a {
		if _, ok := b[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// stringsOnlyIn returns the sorted elements of a absent from b.
func stringsOnlyIn(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if !in[s] {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// verdictFlips pairs verdicts by (workload, policy) and reports every pair
// present on both sides whose outcome set differs.
func verdictFlips(base, other *Snapshot) []VerdictFlip {
	type key struct{ w, p string }
	outcomes := func(s *Snapshot) map[key]string {
		if s == nil {
			return nil
		}
		sets := map[key]map[string]bool{}
		for _, v := range s.Verdicts {
			k := key{v.Workload, v.Policy}
			if sets[k] == nil {
				sets[k] = map[string]bool{}
			}
			sets[k][v.outcome()] = true
		}
		out := make(map[key]string, len(sets))
		for k, set := range sets {
			var list []string
			for o := range set {
				list = append(list, o)
			}
			sort.Strings(list)
			joined := list[0]
			for _, o := range list[1:] {
				joined += " | " + o
			}
			out[k] = joined
		}
		return out
	}
	bo, oo := outcomes(base), outcomes(other)
	var flips []VerdictFlip
	for k, b := range bo {
		if o, ok := oo[k]; ok && o != b {
			flips = append(flips, VerdictFlip{Workload: k.w, Policy: k.p, Base: b, Other: o})
		}
	}
	sort.Slice(flips, func(i, j int) bool {
		if flips[i].Workload != flips[j].Workload {
			return flips[i].Workload < flips[j].Workload
		}
		return flips[i].Policy < flips[j].Policy
	})
	return flips
}

// Empty reports whether the two snapshots' coverage is identical in every
// dimension the diff tracks.
func (d *DiffReport) Empty() bool {
	return len(d.NewEdges) == 0 && len(d.LostEdges) == 0 &&
		len(d.NewBlocks) == 0 && len(d.LostBlocks) == 0 &&
		len(d.TaintGained) == 0 && len(d.TaintLost) == 0 &&
		len(d.RevivedRules) == 0 && len(d.NewlyDeadRules) == 0 &&
		len(d.VerdictFlips) == 0
}

// Regression reports whether the candidate lost ground against the base:
// edges no longer reached, rules that went dead, or detection verdicts that
// flipped. New coverage is progress, not a regression.
func (d *DiffReport) Regression() bool {
	return len(d.LostEdges) > 0 || len(d.NewlyDeadRules) > 0 || len(d.VerdictFlips) > 0
}

// JSON renders the deterministic machine-readable report.
func (d *DiffReport) JSON() []byte {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		panic("cover: diff marshal: " + err.Error())
	}
	return append(b, '\n')
}

// WriteReport renders the human-readable comparison.
func (d *DiffReport) WriteReport(w io.Writer) error {
	fmt.Fprintf(w, "coverage diff: base %d run(s) vs candidate %d run(s)\n", d.BaseRuns, d.OtherRuns)
	if d.Empty() {
		_, err := fmt.Fprintln(w, "  identical coverage: no edge, taint, rule, or verdict differences")
		return err
	}
	section := func(title string, items []string) {
		if len(items) == 0 {
			return
		}
		fmt.Fprintf(w, "  %s (%d):\n", title, len(items))
		for _, it := range items {
			fmt.Fprintf(w, "    %s\n", it)
		}
	}
	section("new edges", d.NewEdges)
	section("LOST edges", d.LostEdges)
	section("new blocks", d.NewBlocks)
	section("LOST blocks", d.LostBlocks)
	if len(d.TaintGained) > 0 {
		fmt.Fprintf(w, "  taint gained: %d byte(s)\n", d.TaintGainedBytes)
		for _, r := range d.TaintGained {
			fmt.Fprintf(w, "    %s\n", r)
		}
	}
	if len(d.TaintLost) > 0 {
		fmt.Fprintf(w, "  taint lost: %d byte(s)\n", d.TaintLostBytes)
		for _, r := range d.TaintLost {
			fmt.Fprintf(w, "    %s\n", r)
		}
	}
	section("revived rules (dead in base, exercised now)", d.RevivedRules)
	section("NEWLY DEAD rules", d.NewlyDeadRules)
	if len(d.VerdictFlips) > 0 {
		fmt.Fprintf(w, "  VERDICT FLIPS (%d):\n", len(d.VerdictFlips))
		for _, f := range d.VerdictFlips {
			fmt.Fprintf(w, "    %s/%s: %s -> %s\n", f.Workload, f.Policy, f.Base, f.Other)
		}
	}
	if d.Regression() {
		_, err := fmt.Fprintln(w, "  REGRESSION: lost edges, newly-dead rules, or verdict flips present")
		return err
	}
	_, err := fmt.Fprintln(w, "  no regression: candidate only adds coverage")
	return err
}

// Frontier names what a contribution adds beyond an accumulated base: the
// keep/discard signal for a coverage-guided fuzzer and the per-cell
// contribution record in campaign rollups.
type Frontier struct {
	NewEdges      int      `json:"new_edges"`
	NewBlocks     int      `json:"new_blocks"`
	NewTaintBytes uint64   `json:"new_taint_bytes"`
	RevivedRules  []string `json:"revived_rules,omitempty"`
	NewVerdicts   int      `json:"new_verdicts"`
	Edges         []string `json:"edges,omitempty"`
}

// Frontier reports what s contributes beyond base. A nil base means
// everything in s is frontier.
func (s *Snapshot) Frontier(base *Snapshot) *Frontier {
	d := Diff(base, s)
	f := &Frontier{
		NewEdges:      len(d.NewEdges),
		NewBlocks:     len(d.NewBlocks),
		NewTaintBytes: d.TaintGainedBytes,
		RevivedRules:  d.RevivedRules,
		Edges:         d.NewEdges,
	}
	seen := make(map[Verdict]bool)
	if base != nil {
		for _, v := range base.Verdicts {
			seen[v] = true
		}
	}
	for _, v := range s.Verdicts {
		if !seen[v] {
			f.NewVerdicts++
		}
	}
	return f
}

// Contributes reports whether the frontier is non-empty — whether the run
// reached anything the accumulated base had not.
func (f *Frontier) Contributes() bool {
	return f.NewEdges > 0 || f.NewBlocks > 0 || f.NewTaintBytes > 0 ||
		len(f.RevivedRules) > 0 || f.NewVerdicts > 0
}
