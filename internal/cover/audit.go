package cover

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"vpdift/internal/core"
)

// PointStat counts enforcement activity at one clearance point.
type PointStat struct {
	Checks     uint64 `json:"checks"`
	Violations uint64 `json:"violations"`
}

// exercised reports whether the point was touched at all.
func (p PointStat) exercised() bool { return p.Checks != 0 || p.Violations != 0 }

// PolicyAudit records which parts of a security policy a run exercised:
// per-lattice-edge LUB and AllowedFlow hit counts (installed into the
// lattice via SetAuditCounters), check/violation counts per execution
// clearance point and per output sink, and region store-rule hits. Its
// dead-rule report flags classes and rules no execution ever touched — the
// policy-completeness audit the survey literature asks for.
//
// Check counting is approximate at the edges: a retired instruction counts
// as one enforcement per enabled point (the cached fetch verdict counts as
// enforcement even when the LUB was memoized), while the final violating
// instruction never retires and is accounted through NoteViolation instead.
type PolicyAudit struct {
	lat *core.Lattice
	pol *core.Policy

	lubPair  []uint64
	flowPair []uint64

	// Fetch/Branch/MemAddr are incremented directly by the VP+ core's cover
	// hook (exported to keep the enabled path a field increment).
	Fetch, Branch, MemAddr PointStat

	outputs map[string]*PointStat
	regions []PointStat // parallel to pol.Regions
}

// NewAudit returns an unconfigured policy audit; the platform binds it to
// the policy via Configure at wiring time.
func NewAudit() *PolicyAudit {
	return &PolicyAudit{outputs: make(map[string]*PointStat)}
}

// Configure binds the audit to the platform's policy and installs the
// per-pair hit matrices into the lattice. Call it after all wiring-time
// lattice queries (Top, clearance lookups) so setup noise does not pollute
// the run's counts.
func (a *PolicyAudit) Configure(pol *core.Policy) {
	a.pol = pol
	a.lat = pol.L
	n := pol.L.Size()
	a.lubPair = make([]uint64, n*n)
	a.flowPair = make([]uint64, n*n)
	pol.L.SetAuditCounters(a.lubPair, a.flowPair)
	a.regions = make([]PointStat, len(pol.Regions))
	for port := range pol.Outputs {
		a.outputs[port] = &PointStat{}
	}
}

// Output returns (creating on demand) the stat cell for a named sink port.
// Peripherals call it once at wiring time and cache the pointer.
func (a *PolicyAudit) Output(port string) *PointStat {
	s, ok := a.outputs[port]
	if !ok {
		s = &PointStat{}
		a.outputs[port] = s
	}
	return s
}

// NoteStore counts region store-clearance rule hits for a retired store to
// addr. Mirrors Policy.CheckStore: every matching rule is enforced, so every
// matching rule counts a check.
func (a *PolicyAudit) NoteStore(addr uint32) {
	for i := range a.pol.Regions {
		r := &a.pol.Regions[i]
		if r.CheckStore && r.Contains(addr) {
			a.regions[i].Checks++
		}
	}
}

// Configured reports whether the audit was bound to a policy.
func (a *PolicyAudit) Configured() bool { return a.pol != nil }

// NoteViolation attributes a terminal violation to its clearance point. The
// violating instruction never retires (the core returns early), so the
// platform records it here when the run error carries a *core.Violation.
func (a *PolicyAudit) NoteViolation(v *core.Violation) {
	if a.pol == nil {
		return
	}
	switch v.Kind {
	case core.KindFetchClearance:
		a.Fetch.Violations++
	case core.KindBranchClearance:
		a.Branch.Violations++
	case core.KindMemAddrClearance:
		a.MemAddr.Violations++
	case core.KindStoreClearance:
		for i := range a.pol.Regions {
			r := &a.pol.Regions[i]
			if r.CheckStore && r.Contains(v.Addr) {
				a.regions[i].Violations++
			}
		}
	case core.KindOutputClearance:
		a.Output(v.Port).Violations++
	}
}

// pairs lists the nonzero cells of an n*n hit matrix as (from, to, count).
type pairHit struct {
	From, To string
	Count    uint64
}

func (a *PolicyAudit) nonzeroPairs(m []uint64) []pairHit {
	n := a.lat.Size()
	var out []pairHit
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if c := m[i*n+j]; c != 0 {
				out = append(out, pairHit{a.lat.Name(core.Tag(i)), a.lat.Name(core.Tag(j)), c})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].From+out[i].To < out[j].From+out[j].To
	})
	return out
}

// classTouched reports whether class i appeared as an operand of any LUB or
// AllowedFlow query.
func (a *PolicyAudit) classTouched(i int) bool {
	n := a.lat.Size()
	for j := 0; j < n; j++ {
		if a.lubPair[i*n+j] != 0 || a.lubPair[j*n+i] != 0 ||
			a.flowPair[i*n+j] != 0 || a.flowPair[j*n+i] != 0 {
			return true
		}
	}
	return false
}

// DeadRules lists the policy elements this run never exercised: classes
// untouched by any lattice query, enabled clearance points never checked,
// region store rules never hit, and output clearances never queried.
func (a *PolicyAudit) DeadRules() []string {
	var dead []string
	for i := 0; i < a.lat.Size(); i++ {
		if !a.classTouched(i) {
			dead = append(dead, fmt.Sprintf("class %q never touched by any LUB or flow query", a.lat.Name(core.Tag(i))))
		}
	}
	e := a.pol.Exec
	if e.CheckFetch && !a.Fetch.exercised() {
		dead = append(dead, fmt.Sprintf("fetch clearance (%s) enabled but never checked", a.lat.Name(e.Fetch)))
	}
	if e.CheckBranch && !a.Branch.exercised() {
		dead = append(dead, fmt.Sprintf("branch clearance (%s) enabled but never checked", a.lat.Name(e.Branch)))
	}
	if e.CheckMemAddr && !a.MemAddr.exercised() {
		dead = append(dead, fmt.Sprintf("mem-addr clearance (%s) enabled but never checked", a.lat.Name(e.MemAddr)))
	}
	for i := range a.pol.Regions {
		r := &a.pol.Regions[i]
		if r.CheckStore && !a.regions[i].exercised() {
			dead = append(dead, fmt.Sprintf("region %q store clearance (%s) never exercised", r.Name, a.lat.Name(r.Clearance)))
		}
	}
	ports := make([]string, 0, len(a.outputs))
	for port := range a.outputs {
		ports = append(ports, port)
	}
	sort.Strings(ports)
	for _, port := range ports {
		if !a.outputs[port].exercised() {
			dead = append(dead, fmt.Sprintf("output clearance on %q never checked", port))
		}
	}
	// Globally sorted so every consumer — report, JSON export, snapshot
	// merge intersection — sees one canonical order regardless of how the
	// policy was assembled.
	sort.Strings(dead)
	return dead
}

// DeadRuleCount counts the rules DeadRules would list without rendering
// their descriptions — the allocation-free form the per-sample telemetry
// snapshot uses.
func (a *PolicyAudit) DeadRuleCount() int {
	n := 0
	for i := 0; i < a.lat.Size(); i++ {
		if !a.classTouched(i) {
			n++
		}
	}
	e := a.pol.Exec
	if e.CheckFetch && !a.Fetch.exercised() {
		n++
	}
	if e.CheckBranch && !a.Branch.exercised() {
		n++
	}
	if e.CheckMemAddr && !a.MemAddr.exercised() {
		n++
	}
	for i := range a.pol.Regions {
		if a.pol.Regions[i].CheckStore && !a.regions[i].exercised() {
			n++
		}
	}
	for _, p := range a.outputs {
		if !p.exercised() {
			n++
		}
	}
	return n
}

// auditJSON is the machine-readable export consumed by cmd/ifp-dot -cover
// and the CI artifact upload.
type auditJSON struct {
	Classes []string             `json:"classes"`
	LUB     [][]uint64           `json:"lub"`
	Flow    [][]uint64           `json:"flow"`
	Exec    map[string]execPoint `json:"exec"`
	Outputs map[string]PointStat `json:"outputs"`
	Regions []regionPoint        `json:"regions"`
	Dead    []string             `json:"dead_rules"`
}

type execPoint struct {
	Enabled   bool   `json:"enabled"`
	Clearance string `json:"clearance,omitempty"`
	PointStat
}

type regionPoint struct {
	Name      string `json:"name"`
	Start     uint32 `json:"start"`
	End       uint32 `json:"end"`
	Clearance string `json:"clearance,omitempty"`
	PointStat
}

func (a *PolicyAudit) export() auditJSON {
	n := a.lat.Size()
	matrix := func(m []uint64) [][]uint64 {
		out := make([][]uint64, n)
		for i := 0; i < n; i++ {
			out[i] = m[i*n : (i+1)*n : (i+1)*n]
		}
		return out
	}
	e := a.pol.Exec
	exec := map[string]execPoint{
		"fetch":    {Enabled: e.CheckFetch, PointStat: a.Fetch},
		"branch":   {Enabled: e.CheckBranch, PointStat: a.Branch},
		"mem-addr": {Enabled: e.CheckMemAddr, PointStat: a.MemAddr},
	}
	if e.CheckFetch {
		p := exec["fetch"]
		p.Clearance = a.lat.Name(e.Fetch)
		exec["fetch"] = p
	}
	if e.CheckBranch {
		p := exec["branch"]
		p.Clearance = a.lat.Name(e.Branch)
		exec["branch"] = p
	}
	if e.CheckMemAddr {
		p := exec["mem-addr"]
		p.Clearance = a.lat.Name(e.MemAddr)
		exec["mem-addr"] = p
	}
	outs := make(map[string]PointStat, len(a.outputs))
	for port, s := range a.outputs {
		outs[port] = *s
	}
	regs := make([]regionPoint, 0, len(a.pol.Regions))
	for i := range a.pol.Regions {
		r := &a.pol.Regions[i]
		if !r.CheckStore {
			continue
		}
		regs = append(regs, regionPoint{
			Name: r.Name, Start: r.Start, End: r.End,
			Clearance: a.lat.Name(r.Clearance), PointStat: a.regions[i],
		})
	}
	return auditJSON{
		Classes: a.lat.Classes(),
		LUB:     matrix(a.lubPair),
		Flow:    matrix(a.flowPair),
		Exec:    exec,
		Outputs: outs,
		Regions: regs,
		Dead:    a.DeadRules(),
	}
}

// WriteJSON emits the audit as indented JSON.
func (a *PolicyAudit) WriteJSON(w io.Writer) error {
	if a.pol == nil {
		return fmt.Errorf("cover: policy audit not configured")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a.export())
}

// WriteReport renders the human-readable policy-audit report.
func (a *PolicyAudit) WriteReport(w io.Writer) error {
	if a.pol == nil {
		_, err := fmt.Fprintln(w, "policy audit: not configured")
		return err
	}
	fmt.Fprintln(w, "policy audit")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "execution clearance points (checks / violations):")
	e := a.pol.Exec
	point := func(name string, enabled bool, clear core.Tag, s PointStat) {
		if !enabled {
			fmt.Fprintf(w, "  %-10s disabled\n", name)
			return
		}
		fmt.Fprintf(w, "  %-10s clearance %-8s %10d / %d\n", name, a.lat.Name(clear), s.Checks, s.Violations)
	}
	point("fetch", e.CheckFetch, e.Fetch, a.Fetch)
	point("branch", e.CheckBranch, e.Branch, a.Branch)
	point("mem-addr", e.CheckMemAddr, e.MemAddr, a.MemAddr)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "output sinks (checks / violations):")
	ports := make([]string, 0, len(a.outputs))
	for port := range a.outputs {
		ports = append(ports, port)
	}
	sort.Strings(ports)
	for _, port := range ports {
		s := a.outputs[port]
		clear := ""
		if t, ok := a.pol.OutputClearance(port); ok {
			clear = a.lat.Name(t)
		}
		fmt.Fprintf(w, "  %-16s clearance %-8s %10d / %d\n", port, clear, s.Checks, s.Violations)
	}
	fmt.Fprintln(w)

	if len(a.regions) > 0 {
		fmt.Fprintln(w, "region store rules (checks / violations):")
		for i := range a.pol.Regions {
			r := &a.pol.Regions[i]
			if !r.CheckStore {
				continue
			}
			fmt.Fprintf(w, "  %-16s [0x%08x, 0x%08x) clearance %-8s %10d / %d\n",
				r.Name, r.Start, r.End, a.lat.Name(r.Clearance), a.regions[i].Checks, a.regions[i].Violations)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "lattice edge hits (LUB / flow queries):")
	lub := a.nonzeroPairs(a.lubPair)
	flow := a.nonzeroPairs(a.flowPair)
	if len(lub) == 0 && len(flow) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for _, p := range lub {
		fmt.Fprintf(w, "  LUB  %-8s ⊔ %-8s %10d\n", p.From, p.To, p.Count)
	}
	for _, p := range flow {
		verdict := "allowed"
		from, _ := a.lat.TagOf(p.From)
		to, _ := a.lat.TagOf(p.To)
		if !a.flowAllowed(from, to) {
			verdict = "DENIED"
		}
		fmt.Fprintf(w, "  flow %-8s → %-8s %10d  %s\n", p.From, p.To, p.Count, verdict)
	}
	fmt.Fprintln(w)

	dead := a.DeadRules()
	if len(dead) == 0 {
		fmt.Fprintln(w, "dead rules: none — every class and rule was exercised")
	} else {
		fmt.Fprintf(w, "dead rules (%d):\n", len(dead))
		for _, d := range dead {
			fmt.Fprintf(w, "  ! %s\n", d)
		}
	}
	return nil
}

// flowAllowed queries the closure without touching the installed counters.
func (a *PolicyAudit) flowAllowed(from, to core.Tag) bool {
	saved := a.flowPair
	a.lat.SetAuditCounters(a.lubPair, nil)
	ok := a.lat.AllowedFlow(from, to)
	a.lat.SetAuditCounters(a.lubPair, saved)
	return ok
}
