package cover

import (
	"fmt"
	"math"
)

// Merge combines two coverage snapshots into the fleet view: hit and edge
// counts add (saturating), taint bitmaps union, audit counters add, verdicts
// union, and dead rules *intersect* — a rule is truly dead only if it was
// dead in every merged run.
//
// Runs are deduplicated by content digest, which makes Merge idempotent:
// when every run in b is already present in a (merge(S, S) being the
// degenerate case) the result is just a. A *partial* overlap would
// double-count the shared runs' counters, so it is rejected as an error —
// it only arises from merging two already-merged snapshots with shared
// ancestry, and the caller should merge the underlying per-run snapshots
// instead. Merge is commutative and associative up to canonical ordering.
func Merge(a, b *Snapshot) (*Snapshot, error) {
	if a == nil && b == nil {
		return nil, fmt.Errorf("cover: merge of two nil snapshots")
	}
	if a == nil {
		return b.Clone(), nil
	}
	if b == nil {
		return a.Clone(), nil
	}
	if a.Schema != SnapshotSchema || b.Schema != SnapshotSchema {
		return nil, fmt.Errorf("cover: merge schema mismatch (%q vs %q)", a.Schema, b.Schema)
	}
	switch shared := sharedRuns(a, b); {
	case shared == len(b.Runs) && len(b.Runs) > 0:
		return a.Clone(), nil
	case shared == len(a.Runs) && len(a.Runs) > 0:
		return b.Clone(), nil
	case shared > 0:
		return nil, fmt.Errorf("cover: merge would double-count %d shared run(s); merge per-run snapshots instead", shared)
	}

	out := &Snapshot{Schema: SnapshotSchema}
	out.Runs = append(append([]RunID(nil), a.Runs...), b.Runs...)

	var err error
	if out.Guest, err = mergeGuest(a.Guest, b.Guest); err != nil {
		return nil, err
	}
	out.Taint = mergeTaint(a.Taint, b.Taint)
	out.Audit = mergeAudit(a.Audit, b.Audit)
	out.Verdicts = mergeVerdicts(a.Verdicts, b.Verdicts)
	out.normalize()
	return out, nil
}

// sharedRuns counts b's runs whose digest already appears in a. Runs without
// a digest are never considered shared.
func sharedRuns(a, b *Snapshot) int {
	seen := make(map[string]bool, len(a.Runs))
	for _, r := range a.Runs {
		if r.Digest != "" {
			seen[r.Digest] = true
		}
	}
	n := 0
	for _, r := range b.Runs {
		if r.Digest != "" && seen[r.Digest] {
			n++
		}
	}
	return n
}

func satAdd(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

// addCounts merges count maps with saturating addition.
func addCounts(a, b map[string]uint64) map[string]uint64 {
	out := cloneCounts(a)
	for k, v := range b {
		out[k] = satAdd(out[k], v)
	}
	return out
}

func mergeGuest(a, b *GuestSnap) (*GuestSnap, error) {
	if a == nil && b == nil {
		return nil, nil
	}
	if a == nil {
		return &GuestSnap{Base: b.Base, Hits: cloneCounts(b.Hits), Edges: cloneCounts(b.Edges)}, nil
	}
	if b == nil {
		return &GuestSnap{Base: a.Base, Hits: cloneCounts(a.Hits), Edges: cloneCounts(a.Edges)}, nil
	}
	if a.Base != b.Base {
		return nil, fmt.Errorf("cover: merge guest base mismatch (%s vs %s)", a.Base, b.Base)
	}
	return &GuestSnap{Base: a.Base, Hits: addCounts(a.Hits, b.Hits), Edges: addCounts(a.Edges, b.Edges)}, nil
}

func mergeTaint(a, b *TaintSnap) *TaintSnap {
	if a == nil && b == nil {
		return nil
	}
	if a == nil {
		a = &TaintSnap{}
	}
	if b == nil {
		b = &TaintSnap{}
	}
	out := &TaintSnap{
		Ever:        formatSpans(normalizeSpans(append(parseSpans(a.Ever), parseSpans(b.Ever)...))),
		ClassWrites: addCounts(a.ClassWrites, b.ClassWrites),
		Retires:     satAdd(a.Retires, b.Retires),
		Churn:       satAdd(a.Churn, b.Churn),
	}
	n := len(a.RegOcc)
	if len(b.RegOcc) > n {
		n = len(b.RegOcc)
	}
	out.RegOcc = make([]uint64, n)
	for i := range out.RegOcc {
		var av, bv uint64
		if i < len(a.RegOcc) {
			av = a.RegOcc[i]
		}
		if i < len(b.RegOcc) {
			bv = b.RegOcc[i]
		}
		out.RegOcc[i] = satAdd(av, bv)
	}
	return out
}

func mergeAudit(a, b *AuditSnap) *AuditSnap {
	if a == nil && b == nil {
		return nil
	}
	// Runs without the audit view (a baseline VP cell) do not weaken the
	// dead-rule intersection: only audited runs vote.
	if a == nil {
		return (&Snapshot{Audit: b}).Clone().Audit
	}
	if b == nil {
		return (&Snapshot{Audit: a}).Clone().Audit
	}
	out := &AuditSnap{
		Classes:   unionStrings(a.Classes, b.Classes),
		LUB:       addCounts(a.LUB, b.LUB),
		Flow:      addCounts(a.Flow, b.Flow),
		Points:    map[string]PointStat{},
		DeadRules: intersectStrings(a.DeadRules, b.DeadRules),
	}
	for k, v := range a.Points {
		out.Points[k] = v
	}
	for k, v := range b.Points {
		p := out.Points[k]
		p.Checks = satAdd(p.Checks, v.Checks)
		p.Violations = satAdd(p.Violations, v.Violations)
		out.Points[k] = p
	}
	return out
}

func unionStrings(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func intersectStrings(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	out := []string{}
	for _, s := range a {
		if in[s] {
			out = append(out, s)
		}
	}
	return out
}

func mergeVerdicts(a, b []Verdict) []Verdict {
	seen := make(map[Verdict]bool, len(a)+len(b))
	var out []Verdict
	for _, v := range append(append([]Verdict{}, a...), b...) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// MergeAll folds a sequence of snapshots left to right, skipping nils.
func MergeAll(snaps ...*Snapshot) (*Snapshot, error) {
	var acc *Snapshot
	for _, s := range snaps {
		if s == nil {
			continue
		}
		var err error
		if acc, err = Merge(acc, s); err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("cover: nothing to merge")
	}
	return acc, nil
}
