package cover

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"vpdift/internal/core"
)

// SnapshotSchema versions the serialized coverage snapshot. Bump it on any
// change to the snapshot shape; ParseSnapshot rejects other schemas so a
// stale baseline fails loudly instead of diffing garbage.
const SnapshotSchema = "vpdift.cover/v1"

// RunID identifies one captured run inside a snapshot: what ran (image and
// policy content hashes), under which labels, and a content digest of the
// run's own coverage. The digest is what makes Merge idempotent — merging a
// snapshot whose runs are already present is a no-op, so merge(S, S) == S.
type RunID struct {
	Digest   string `json:"digest,omitempty"`
	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Image    string `json:"image_sha256,omitempty"`
	PolicyID string `json:"policy_sha256,omitempty"`
}

// Verdict records a run's detection outcome so diffs can flag verdict flips
// (a workload/policy pair that used to be detected and no longer is, or vice
// versa).
type Verdict struct {
	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Detected bool   `json:"detected"`
	Kind     string `json:"kind,omitempty"` // violation kind when detected
	PC       string `json:"pc,omitempty"`   // violating pc when detected
	Exited   bool   `json:"exited,omitempty"`
	ExitCode uint32 `json:"exit_code,omitempty"`
	Error    string `json:"error,omitempty"` // non-violation run error
}

// outcome renders the comparable detection outcome (location-independent:
// the violating pc may legitimately move without being a flip).
func (v Verdict) outcome() string {
	switch {
	case v.Detected:
		return "detected (" + v.Kind + ")"
	case v.Error != "":
		return "error"
	case v.Exited:
		return "clean (exit " + strconv.FormatUint(uint64(v.ExitCode), 10) + ")"
	default:
		return "clean"
	}
}

// GuestSnap serializes guest code coverage: nonzero per-instruction hit
// counts and the dynamic control-flow edge set, both keyed by hex addresses
// so encoding/json's sorted map keys make the export byte-deterministic.
type GuestSnap struct {
	Base  string            `json:"base"`
	Hits  map[string]uint64 `json:"hits,omitempty"`  // "0xPC" -> execution count
	Edges map[string]uint64 `json:"edges,omitempty"` // "0xPC->0xNEXT" -> traversals
}

// TaintSnap serializes taint coverage: the ever-tainted bitmap as sorted
// half-open address ranges, lifetime per-class tainted-write counts, and
// register-file taint occupancy.
type TaintSnap struct {
	Ever        []string          `json:"ever,omitempty"` // "0xLO-0xHI" half-open
	ClassWrites map[string]uint64 `json:"class_writes,omitempty"`
	RegOcc      []uint64          `json:"reg_occupancy,omitempty"` // 32 entries
	Retires     uint64            `json:"retires"`
	Churn       uint64            `json:"churn"`
}

// AuditSnap serializes the policy audit: per-edge LUB/flow hit counts,
// check/violation counts per clearance point, and the run's dead-rule list.
// Points is keyed "exec:fetch" / "exec:branch" / "exec:mem-addr" /
// "output:<port>" / "region:<name>".
type AuditSnap struct {
	Classes   []string             `json:"classes,omitempty"`
	LUB       map[string]uint64    `json:"lub,omitempty"`  // "A->B" -> count
	Flow      map[string]uint64    `json:"flow,omitempty"` // "A->B" -> count
	Points    map[string]PointStat `json:"points,omitempty"`
	DeadRules []string             `json:"dead_rules"`
}

// Snapshot is the versioned, byte-deterministic cross-run coverage record:
// everything the three cover views accumulated in one run (or, after Merge,
// across many), plus run identity and detection verdicts. It is the exchange
// format between campaign cells, the rollup endpoint, wk-suite exports, and
// the vp-diff regression guard.
type Snapshot struct {
	Schema   string     `json:"schema"`
	Runs     []RunID    `json:"runs"`
	Guest    *GuestSnap `json:"guest,omitempty"`
	Taint    *TaintSnap `json:"taint,omitempty"`
	Audit    *AuditSnap `json:"audit,omitempty"`
	Verdicts []Verdict  `json:"verdicts,omitempty"`
}

func hexAddr(a uint32) string { return fmt.Sprintf("0x%08x", a) }

func edgeKey(e uint64) string {
	return hexAddr(uint32(e>>32)) + "->" + hexAddr(uint32(e))
}

// Capture freezes the current state of a Cover into a snapshot. Views the
// platform never configured (the Taint and Audit views on a baseline VP) are
// omitted. verdict may be nil for runs with no meaningful outcome. The
// returned snapshot carries run's content digest, so later Merges can
// recognize it.
func Capture(c *Cover, run RunID, verdict *Verdict) *Snapshot {
	s := &Snapshot{Schema: SnapshotSchema}
	if c != nil {
		if g := c.Guest; g != nil && g.counts != nil {
			gs := &GuestSnap{Base: hexAddr(g.base), Hits: map[string]uint64{}, Edges: map[string]uint64{}}
			for idx, n := range g.counts {
				if n != 0 {
					gs.Hits[hexAddr(g.base+uint32(idx)*4)] = n
				}
			}
			for e, n := range g.edges {
				gs.Edges[edgeKey(e)] = n
			}
			s.Guest = gs
		}
		if t := c.Taint; t != nil && t.shadow != nil {
			ts := &TaintSnap{
				ClassWrites: map[string]uint64{},
				RegOcc:      append([]uint64(nil), t.regOcc[:]...),
				Retires:     t.retires,
				Churn:       t.ChurnTotal(),
			}
			for _, r := range t.taintedRanges() {
				ts.Ever = append(ts.Ever, hexAddr(t.base+r.start)+"-"+hexAddr(t.base+r.end))
			}
			for i, n := range t.classWrites {
				if n != 0 {
					ts.ClassWrites[t.lat.Name(core.Tag(i))] = n
				}
			}
			s.Taint = ts
		}
		if a := c.Audit; a != nil && a.Configured() {
			s.Audit = captureAudit(a)
		}
	}
	if verdict != nil {
		s.Verdicts = []Verdict{*verdict}
	}
	run.Digest = s.fingerprint()
	s.Runs = []RunID{run}
	s.normalize()
	return s
}

func captureAudit(a *PolicyAudit) *AuditSnap {
	as := &AuditSnap{
		Classes:   append([]string(nil), a.lat.Classes()...),
		LUB:       map[string]uint64{},
		Flow:      map[string]uint64{},
		Points:    map[string]PointStat{},
		DeadRules: append([]string{}, a.DeadRules()...),
	}
	n := a.lat.Size()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			key := a.lat.Name(core.Tag(i)) + "->" + a.lat.Name(core.Tag(j))
			if c := a.lubPair[i*n+j]; c != 0 {
				as.LUB[key] = c
			}
			if c := a.flowPair[i*n+j]; c != 0 {
				as.Flow[key] = c
			}
		}
	}
	e := a.pol.Exec
	if e.CheckFetch || a.Fetch.exercised() {
		as.Points["exec:fetch"] = a.Fetch
	}
	if e.CheckBranch || a.Branch.exercised() {
		as.Points["exec:branch"] = a.Branch
	}
	if e.CheckMemAddr || a.MemAddr.exercised() {
		as.Points["exec:mem-addr"] = a.MemAddr
	}
	for port, s := range a.outputs {
		as.Points["output:"+port] = *s
	}
	for i := range a.pol.Regions {
		r := &a.pol.Regions[i]
		if r.CheckStore {
			as.Points["region:"+r.Name] = a.regions[i]
		}
	}
	return as
}

// normalize brings the snapshot into canonical order so that export is
// byte-deterministic: maps serialize sorted by encoding/json already, and
// every slice is sorted here.
func (s *Snapshot) normalize() {
	sort.Slice(s.Runs, func(i, j int) bool {
		a, b := s.Runs[i], s.Runs[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		return a.Digest < b.Digest
	})
	if s.Taint != nil {
		sort.Strings(s.Taint.Ever)
	}
	if s.Audit != nil {
		sort.Strings(s.Audit.Classes)
		sort.Strings(s.Audit.DeadRules)
		if s.Audit.DeadRules == nil {
			s.Audit.DeadRules = []string{}
		}
	}
	sort.Slice(s.Verdicts, func(i, j int) bool {
		a, b := s.Verdicts[i], s.Verdicts[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		return a.outcome() < b.outcome()
	})
}

// fingerprint computes the run content digest: sha256 over the canonical
// JSON with all run digests cleared (so the digest does not depend on
// itself).
func (s *Snapshot) fingerprint() string {
	c := s.Clone()
	for i := range c.Runs {
		c.Runs[i].Digest = ""
	}
	sum := sha256.Sum256(c.JSON())
	return hex.EncodeToString(sum[:16])
}

// Clone deep-copies the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	c := &Snapshot{Schema: s.Schema}
	c.Runs = append([]RunID(nil), s.Runs...)
	c.Verdicts = append([]Verdict(nil), s.Verdicts...)
	if s.Guest != nil {
		c.Guest = &GuestSnap{Base: s.Guest.Base, Hits: cloneCounts(s.Guest.Hits), Edges: cloneCounts(s.Guest.Edges)}
	}
	if s.Taint != nil {
		t := *s.Taint
		t.Ever = append([]string(nil), s.Taint.Ever...)
		t.ClassWrites = cloneCounts(s.Taint.ClassWrites)
		t.RegOcc = append([]uint64(nil), s.Taint.RegOcc...)
		c.Taint = &t
	}
	if s.Audit != nil {
		a := *s.Audit
		a.Classes = append([]string(nil), s.Audit.Classes...)
		a.LUB = cloneCounts(s.Audit.LUB)
		a.Flow = cloneCounts(s.Audit.Flow)
		a.Points = make(map[string]PointStat, len(s.Audit.Points))
		for k, v := range s.Audit.Points {
			a.Points[k] = v
		}
		a.DeadRules = append([]string{}, s.Audit.DeadRules...)
		c.Audit = &a
	}
	return c
}

func cloneCounts(m map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// JSON renders the canonical byte-deterministic export: two identical
// snapshots always serialize to identical bytes.
func (s *Snapshot) JSON() []byte {
	c := s.Clone()
	c.normalize()
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil { // only on unrepresentable values; the schema has none
		panic("cover: snapshot marshal: " + err.Error())
	}
	return append(b, '\n')
}

// WriteJSON writes the canonical export to w.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	_, err := w.Write(s.JSON())
	return err
}

// ParseSnapshot decodes and validates a serialized snapshot, normalizing it
// so that re-export reproduces the canonical bytes.
func ParseSnapshot(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("cover: parse snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("cover: snapshot schema %q, want %q", s.Schema, SnapshotSchema)
	}
	if s.Guest != nil {
		if _, err := parseAddr(s.Guest.Base); err != nil {
			return nil, fmt.Errorf("cover: snapshot guest base: %w", err)
		}
	}
	if s.Taint != nil {
		for _, r := range s.Taint.Ever {
			if _, _, err := parseSpan(r); err != nil {
				return nil, fmt.Errorf("cover: snapshot taint range: %w", err)
			}
		}
	}
	s.normalize()
	return &s, nil
}

// EdgeCount returns the number of distinct dynamic control-flow edges.
// Nil-safe, like the other count accessors: an absent snapshot counts zero.
func (s *Snapshot) EdgeCount() int {
	if s == nil || s.Guest == nil {
		return 0
	}
	return len(s.Guest.Edges)
}

// BlockCount returns the number of distinct executed instruction addresses.
func (s *Snapshot) BlockCount() int {
	if s == nil || s.Guest == nil {
		return 0
	}
	return len(s.Guest.Hits)
}

// TaintBytes returns the total ever-tainted byte count across all ranges.
func (s *Snapshot) TaintBytes() uint64 {
	if s == nil || s.Taint == nil {
		return 0
	}
	return spanBytes(parseSpans(s.Taint.Ever))
}

func parseAddr(s string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return v, nil
}

func parseSpan(s string) (lo, hi uint64, err error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("bad range %q", s)
	}
	if lo, err = parseAddr(a); err != nil {
		return 0, 0, err
	}
	if hi, err = parseAddr(b); err != nil {
		return 0, 0, err
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("inverted range %q", s)
	}
	return lo, hi, nil
}

// span is a half-open [lo, hi) address interval used for taint-bitmap set
// algebra in Merge and Diff.
type span struct{ lo, hi uint64 }

// parseSpans decodes range strings, dropping malformed ones (ParseSnapshot
// already validated external input), and normalizes: sorted, coalesced,
// non-overlapping.
func parseSpans(rs []string) []span {
	var out []span
	for _, r := range rs {
		lo, hi, err := parseSpan(r)
		if err != nil || lo == hi {
			continue
		}
		out = append(out, span{lo, hi})
	}
	return normalizeSpans(out)
}

func normalizeSpans(in []span) []span {
	sort.Slice(in, func(i, j int) bool { return in[i].lo < in[j].lo })
	var out []span
	for _, s := range in {
		if n := len(out); n > 0 && s.lo <= out[n-1].hi {
			if s.hi > out[n-1].hi {
				out[n-1].hi = s.hi
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// subtractSpans returns the parts of a not covered by b.
func subtractSpans(a, b []span) []span {
	var out []span
	j := 0
	for _, s := range a {
		lo := s.lo
		for j < len(b) && b[j].hi <= lo {
			j++
		}
		k := j
		for k < len(b) && b[k].lo < s.hi {
			if b[k].lo > lo {
				out = append(out, span{lo, b[k].lo})
			}
			if b[k].hi > lo {
				lo = b[k].hi
			}
			k++
		}
		if lo < s.hi {
			out = append(out, span{lo, s.hi})
		}
	}
	return out
}

func spanBytes(ss []span) uint64 {
	var n uint64
	for _, s := range ss {
		n += s.hi - s.lo
	}
	return n
}

func formatSpans(ss []span) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = hexAddr(uint32(s.lo)) + "-" + hexAddr(uint32(s.hi))
	}
	return out
}
