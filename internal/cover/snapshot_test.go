package cover

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vpdift/internal/core"
)

var updateSnapGolden = flag.Bool("update", false, "rewrite the snapshot golden file")

// fullCover assembles a Cover with all three views configured and fed a
// small deterministic history, standing in for one complete VP+ run.
func fullCover(t *testing.T) *Cover {
	t.Helper()
	c := New()
	c.Guest.Configure(base, ramLen)
	c.Guest.SetImage(testImage())
	retire(c.Guest)

	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	c.Taint.Configure(base, 64, l, li)
	c.Taint.OnStore(base+8, 4, hi)
	var regs [32]core.Word
	for i := range regs {
		regs[i].T = li
	}
	regs[5].T = hi
	c.Taint.OnRetireRegs(&regs)

	pol := core.NewPolicy(l, li).
		WithFetchClearance(hi).
		WithRegion(core.RegionRule{
			Name: "guarded", Start: base, End: base + 16,
			CheckStore: true, Clearance: hi,
		}).
		WithOutput("uart0.tx", li)
	c.Audit.Configure(pol)
	l.LUB(hi, li)
	l.AllowedFlow(hi, li)
	c.Audit.Fetch.Checks++
	c.Audit.NoteStore(base + 4)
	return c
}

func testRun(workload string) RunID {
	return RunID{Workload: workload, Policy: "wk", Image: "img0", PolicyID: "pol0"}
}

func captureFull(t *testing.T, workload string) *Snapshot {
	t.Helper()
	return Capture(fullCover(t), testRun(workload), &Verdict{
		Workload: workload, Policy: "wk", Detected: true, Kind: "fetch-clearance", PC: "0x80000014",
	})
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := captureFull(t, "w1")
	first := s.JSON()
	parsed, err := ParseSnapshot(first)
	if err != nil {
		t.Fatal(err)
	}
	second := parsed.JSON()
	if !bytes.Equal(first, second) {
		t.Errorf("round trip not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if parsed.EdgeCount() != s.EdgeCount() || parsed.BlockCount() != s.BlockCount() {
		t.Errorf("round trip changed counts: edges %d->%d blocks %d->%d",
			s.EdgeCount(), parsed.EdgeCount(), s.BlockCount(), parsed.BlockCount())
	}
	if len(s.Runs) != 1 || s.Runs[0].Digest == "" {
		t.Fatalf("capture must stamp a run digest: %+v", s.Runs)
	}
}

func TestSnapshotGolden(t *testing.T) {
	got := captureFull(t, "w1").JSON()
	// Re-capture from an independently built, identical history: export
	// must be byte-deterministic across process-level map randomization.
	again := captureFull(t, "w1").JSON()
	if !bytes.Equal(got, again) {
		t.Fatalf("two identical captures serialize differently:\n%s\n---\n%s", got, again)
	}
	path := filepath.Join("testdata", "snapshot.golden")
	if *updateSnapGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("snapshot drifted from golden (regenerate with -update):\n%s", got)
	}
}

func TestSnapshotSchemaRejected(t *testing.T) {
	if _, err := ParseSnapshot([]byte(`{"schema":"vpdift.cover/v0","runs":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := ParseSnapshot([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMergeIdempotent(t *testing.T) {
	s := captureFull(t, "w1")
	m, err := Merge(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.JSON(), s.JSON()) {
		t.Errorf("merge(S, S) != S:\n%s\n---\n%s", m.JSON(), s.JSON())
	}
}

// variantSnapshot builds a snapshot with different coverage content (extra
// retires) so its digest differs from captureFull's.
func variantSnapshot(t *testing.T, workload string) *Snapshot {
	t.Helper()
	c := fullCover(t)
	c.Guest.OnRetire(base+0x04, beqP8, base+0x08) // not-taken edge
	c.Guest.OnRetire(base+0x08, nop, base+0x0c)
	c.Taint.OnStore(base+32, 2, core.IFP2().MustTag(core.ClassHI))
	return Capture(c, testRun(workload), &Verdict{Workload: workload, Policy: "wk", Detected: true, Kind: "fetch-clearance"})
}

func TestMergeCommutativeAssociative(t *testing.T) {
	a := captureFull(t, "w1")
	b := variantSnapshot(t, "w2")
	c := variantSnapshot(t, "w3")

	ab, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Merge(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.JSON(), ba.JSON()) {
		t.Error("merge not commutative")
	}

	abc1, err := MergeAll(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Merge(b, c)
	if err != nil {
		t.Fatal(err)
	}
	abc2, err := Merge(a, bc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(abc1.JSON(), abc2.JSON()) {
		t.Error("merge not associative")
	}

	// Overlapping edge sets must add counts; w2 adds the not-taken edge.
	if ab.Guest.Edges["0x80000004->0x8000000c"] != 2 {
		t.Errorf("shared edge count = %d, want 2", ab.Guest.Edges["0x80000004->0x8000000c"])
	}
	if _, ok := ab.Guest.Edges["0x80000004->0x80000008"]; !ok {
		t.Error("merge lost w2's not-taken edge")
	}
	if got := len(ab.Runs); got != 2 {
		t.Errorf("merged runs = %d, want 2", got)
	}
}

func TestMergePartialOverlapRejected(t *testing.T) {
	a := captureFull(t, "w1")
	b := variantSnapshot(t, "w2")
	ab, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	c := variantSnapshot(t, "w3")
	bc, err := Merge(b, c)
	if err != nil {
		t.Fatal(err)
	}
	// ab and bc share exactly run w2: merging them would double-count it.
	if _, err := Merge(ab, bc); err == nil {
		t.Error("partial run overlap not rejected")
	}
	// Full containment is fine: ab already includes a.
	m, err := Merge(ab, a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.JSON(), ab.JSON()) {
		t.Error("merging a contained run must be a no-op")
	}
}

func TestMergeDeadRuleIntersection(t *testing.T) {
	a := captureFull(t, "w1")
	// Exercise the output sink in run b only: the output dead rule must
	// vanish from the intersection, region rule stays dead in neither
	// (exercised in both), class dead rules intersect.
	cb := fullCover(t)
	cb.Audit.Output("uart0.tx").Checks++
	b := Capture(cb, testRun("w2"), nil)

	joinedA := strings.Join(a.Audit.DeadRules, "\n")
	if !strings.Contains(joinedA, `output clearance on "uart0.tx"`) {
		t.Fatalf("fixture must start with a dead output rule: %q", a.Audit.DeadRules)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(m.Audit.DeadRules, "\n")
	if strings.Contains(joined, `output clearance on "uart0.tx"`) {
		t.Errorf("rule exercised in one run still dead after merge: %q", m.Audit.DeadRules)
	}
	for _, d := range m.Audit.DeadRules {
		if !strings.Contains(joinedA, d) {
			t.Errorf("merged dead rule %q not dead in run a", d)
		}
	}
}

func TestDiffSelfEmpty(t *testing.T) {
	s := captureFull(t, "w1")
	d := Diff(s, s)
	if !d.Empty() {
		t.Errorf("self diff not empty: %s", d.JSON())
	}
	if d.Regression() {
		t.Error("self diff reports a regression")
	}
	var rep bytes.Buffer
	if err := d.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "identical coverage") {
		t.Errorf("report: %s", rep.String())
	}
}

func TestDiffLostEdgeIsRegression(t *testing.T) {
	s := captureFull(t, "w1")
	mutilated := s.Clone()
	const edge = "0x80000004->0x8000000c"
	if _, ok := mutilated.Guest.Edges[edge]; !ok {
		t.Fatalf("fixture lacks edge %s", edge)
	}
	delete(mutilated.Guest.Edges, edge)

	d := Diff(s, mutilated)
	if !d.Regression() {
		t.Fatal("lost edge not flagged as regression")
	}
	if len(d.LostEdges) != 1 || d.LostEdges[0] != edge {
		t.Errorf("lost edges = %v, want [%s]", d.LostEdges, edge)
	}
	var rep bytes.Buffer
	if err := d.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), edge) || !strings.Contains(rep.String(), "REGRESSION") {
		t.Errorf("report does not name the lost edge:\n%s", rep.String())
	}

	// The reverse direction is new coverage, not a regression.
	if rd := Diff(mutilated, s); rd.Regression() || len(rd.NewEdges) != 1 {
		t.Errorf("gained edge misreported: regression=%v new=%v", rd.Regression(), rd.NewEdges)
	}
}

func TestDiffVerdictFlip(t *testing.T) {
	s := captureFull(t, "w1")
	flipped := s.Clone()
	flipped.Verdicts[0].Detected = false
	flipped.Verdicts[0].Kind = ""

	d := Diff(s, flipped)
	if !d.Regression() || len(d.VerdictFlips) != 1 {
		t.Fatalf("verdict flip not detected: %s", d.JSON())
	}
	f := d.VerdictFlips[0]
	if f.Workload != "w1" || !strings.Contains(f.Base, "detected") || strings.Contains(f.Other, "detected") {
		t.Errorf("flip = %+v", f)
	}
}

func TestDiffTaintDelta(t *testing.T) {
	a := captureFull(t, "w1")
	b := variantSnapshot(t, "w1")
	d := Diff(a, b)
	if d.TaintGainedBytes != 2 {
		t.Errorf("taint gained = %d bytes (%v), want 2", d.TaintGainedBytes, d.TaintGained)
	}
	if d.TaintLostBytes != 0 {
		t.Errorf("taint lost = %d bytes, want 0", d.TaintLostBytes)
	}
}

func TestDiffNewlyDeadRule(t *testing.T) {
	a := captureFull(t, "w1")
	b := a.Clone()
	b.Audit.DeadRules = append([]string{}, a.Audit.DeadRules...)
	b.Audit.DeadRules = append(b.Audit.DeadRules, "branch clearance (HI) enabled but never checked")
	d := Diff(a, b)
	if !d.Regression() || len(d.NewlyDeadRules) != 1 {
		t.Errorf("newly dead rule not flagged: %s", d.JSON())
	}
	if rd := Diff(b, a); rd.Regression() || len(rd.RevivedRules) != 1 {
		t.Errorf("revived rule misreported: %s", rd.JSON())
	}
}

func TestFrontier(t *testing.T) {
	a := captureFull(t, "w1")
	b := variantSnapshot(t, "w2")

	f := b.Frontier(a)
	if !f.Contributes() {
		t.Fatal("variant contributes nothing")
	}
	if f.NewEdges != 1 || f.NewBlocks != 1 || f.NewTaintBytes != 2 {
		t.Errorf("frontier = %+v, want 1 edge, 1 block, 2 taint bytes", f)
	}
	if f.NewVerdicts != 1 { // w2's verdict is new against w1's
		t.Errorf("new verdicts = %d, want 1", f.NewVerdicts)
	}

	// Against nil everything is frontier; against itself nothing is.
	if f := a.Frontier(nil); f.NewEdges != a.EdgeCount() || !f.Contributes() {
		t.Errorf("frontier vs nil = %+v", f)
	}
	if f := a.Frontier(a); f.Contributes() {
		t.Errorf("frontier vs self contributes: %+v", f)
	}
}

func TestSpanAlgebra(t *testing.T) {
	spans := parseSpans([]string{"0x00000010-0x00000020", "0x00000018-0x00000030", "0x00000040-0x00000044"})
	if len(spans) != 2 || spans[0] != (span{0x10, 0x30}) || spans[1] != (span{0x40, 0x44}) {
		t.Fatalf("normalize = %v", spans)
	}
	if got := spanBytes(spans); got != 0x24 {
		t.Errorf("bytes = %#x, want 0x24", got)
	}
	rest := subtractSpans(spans, []span{{0x14, 0x42}})
	if len(rest) != 2 || rest[0] != (span{0x10, 0x14}) || rest[1] != (span{0x42, 0x44}) {
		t.Errorf("subtract = %v", rest)
	}
}

// TestReportDeterminism pins the satellite requirement: the heat and audit
// reports render identically on repeated invocations (no map-iteration
// ordering leaks), and DeadRules is globally sorted.
func TestReportDeterminism(t *testing.T) {
	c := fullCover(t)
	render := func() (string, string, string) {
		var heat, audit, guest bytes.Buffer
		if err := c.Taint.WriteHeat(&heat, nil); err != nil {
			t.Fatal(err)
		}
		if err := c.Audit.WriteReport(&audit); err != nil {
			t.Fatal(err)
		}
		if err := c.Guest.WriteReport(&guest, nil); err != nil {
			t.Fatal(err)
		}
		return heat.String(), audit.String(), guest.String()
	}
	h1, a1, g1 := render()
	h2, a2, g2 := render()
	if h1 != h2 || a1 != a2 || g1 != g2 {
		t.Error("reports differ across invocations")
	}
	dead := c.Audit.DeadRules()
	for i := 1; i < len(dead); i++ {
		if dead[i-1] > dead[i] {
			t.Errorf("DeadRules not sorted: %q > %q", dead[i-1], dead[i])
		}
	}
}
