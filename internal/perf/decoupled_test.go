package perf

import (
	"strings"
	"testing"
	"time"
)

func TestRunRowBestOptsDecoupled(t *testing.T) {
	// The decoupled flavour runs the same deterministic instruction stream,
	// so all three measurements must retire the same count.
	w := Workloads(ScaleSmall)[0]
	row, err := RunRowBestOpts(w, false, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if row.VPPlusDec.Wall <= 0 {
		t.Fatalf("decoupled flavour not measured: %+v", row)
	}
	if row.VP.Instr != row.VPPlusDec.Instr {
		t.Errorf("instruction counts differ: VP %d, VP+dec %d", row.VP.Instr, row.VPPlusDec.Instr)
	}
	if row.OverheadDecoupled() <= 0 {
		t.Errorf("decoupled overhead = %v", row.OverheadDecoupled())
	}

	// Inline-only rows must not grow a decoupled measurement.
	plain, err := RunRowBestOpts(w, false, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain.VPPlusDec.Wall != 0 || plain.OverheadDecoupled() != 0 {
		t.Errorf("inline-only row has decoupled data: %+v", plain)
	}
}

func TestReportDecoupledFields(t *testing.T) {
	rows := []Row{{
		Name: "qsort", Instr: 1000, LoCASM: 10,
		VP:        Measurement{Instr: 1000, Wall: time.Second},
		VPPlus:    Measurement{Instr: 1000, Wall: 1600 * time.Millisecond},
		VPPlusDec: Measurement{Instr: 1000, Wall: 1200 * time.Millisecond},
	}}
	rep := NewReport("small", false, rows)
	if rep.Rows[0].OverheadDec < 1.19 || rep.Rows[0].OverheadDec > 1.21 {
		t.Errorf("OverheadDec = %v", rep.Rows[0].OverheadDec)
	}
	if rep.AverageOverheadDecoupled < 1.19 || rep.AverageOverheadDecoupled > 1.21 {
		t.Errorf("AverageOverheadDecoupled = %v", rep.AverageOverheadDecoupled)
	}

	// A mixed set (one row without the decoupled flavour) must not publish a
	// misleading average.
	mixed := append(rows, Row{
		Name: "primes", Instr: 1000, LoCASM: 10,
		VP:     Measurement{Instr: 1000, Wall: time.Second},
		VPPlus: Measurement{Instr: 1000, Wall: 1500 * time.Millisecond},
	})
	if rep := NewReport("small", false, mixed); rep.AverageOverheadDecoupled != 0 {
		t.Errorf("mixed-set AverageOverheadDecoupled = %v, want 0", rep.AverageOverheadDecoupled)
	}

	// Inline-only reports must stay byte-compatible: no decoupled keys.
	inlineOnly := NewReport("small", false, mixed[1:])
	if inlineOnly.Rows[0].VPPlusDecSecs != 0 || inlineOnly.AverageOverheadDecoupled != 0 {
		t.Errorf("inline-only report has decoupled data: %+v", inlineOnly)
	}
}

func TestTableDecoupledColumns(t *testing.T) {
	rows := []Row{{
		Name: "qsort", Instr: 1000, LoCASM: 10,
		VP:        Measurement{Instr: 1000, Wall: time.Second},
		VPPlus:    Measurement{Instr: 1000, Wall: 1600 * time.Millisecond},
		VPPlusDec: Measurement{Instr: 1000, Wall: 1200 * time.Millisecond},
	}}
	out := Table(rows)
	for _, want := range []string{"VP+dec [s]", "Ov.dec", "1.20x"} {
		if !strings.Contains(out, want) {
			t.Errorf("decoupled table missing %q:\n%s", want, out)
		}
	}
	rows[0].VPPlusDec = Measurement{}
	if out := Table(rows); strings.Contains(out, "VP+dec") {
		t.Errorf("inline-only table has decoupled columns:\n%s", out)
	}
}

func TestCheckRegressionDecoupled(t *testing.T) {
	base := Report{Rows: []ReportRow{{
		Name: "qsort", VPMIPS: 100, VPPlusMIPS: 60, VPPlusDecMIPS: 80,
	}}}
	good := []Row{{
		Name:      "qsort",
		VP:        Measurement{Instr: 100_000_000, Wall: time.Second}, // 100 MIPS
		VPPlus:    Measurement{Instr: 60_000_000, Wall: time.Second},  // 60 MIPS
		VPPlusDec: Measurement{Instr: 80_000_000, Wall: time.Second},  // 80 MIPS
	}}
	if msgs := CheckRegression(base, good, 0.10); len(msgs) != 0 {
		t.Errorf("unexpected regressions: %v", msgs)
	}
	bad := []Row{{
		Name:      "qsort",
		VP:        Measurement{Instr: 100_000_000, Wall: time.Second},
		VPPlus:    Measurement{Instr: 60_000_000, Wall: time.Second},
		VPPlusDec: Measurement{Instr: 40_000_000, Wall: time.Second}, // 50% drop
	}}
	msgs := CheckRegression(base, bad, 0.10)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "VP+dec") {
		t.Errorf("decoupled regression not flagged: %v", msgs)
	}
	// A row measured inline-only must not be compared against the baseline's
	// decoupled column.
	inlineOnly := []Row{{
		Name:   "qsort",
		VP:     Measurement{Instr: 100_000_000, Wall: time.Second},
		VPPlus: Measurement{Instr: 60_000_000, Wall: time.Second},
	}}
	if msgs := CheckRegression(base, inlineOnly, 0.10); len(msgs) != 0 {
		t.Errorf("inline-only row flagged against decoupled baseline: %v", msgs)
	}
}
