// Package perf regenerates Table II of the paper: the performance overhead
// of the DIFT engine, comparing the baseline platform (VP) against the
// DIFT-enabled platform (VP+) over the seven benchmark workloads.
//
// Absolute MIPS depend on the host machine; the reproduced quantity is the
// per-workload overhead factor (paper: 1.2x–2.9x, average 2.0x).
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"vpdift/internal/asm"
	"vpdift/internal/core"
	"vpdift/internal/cover"
	"vpdift/internal/guest"
	"vpdift/internal/immo"
	"vpdift/internal/kernel"
	"vpdift/internal/soc"
	"vpdift/internal/telemetry"
	"vpdift/internal/trace"
)

// Scale selects workload sizes. ScaleSmall keeps the full table under a few
// seconds (tests, benches); ScaleLarge approaches the paper's instruction
// counts (minutes of host time).
type Scale int

// Available scales.
const (
	ScaleSmall Scale = iota
	ScaleMedium
	ScaleLarge
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "large":
		return ScaleLarge, nil
	default:
		return 0, fmt.Errorf("perf: unknown scale %q (small|medium|large)", s)
	}
}

// Workload is one Table II row: how to build the guest and how to drive the
// platform to completion.
type Workload struct {
	Name string
	// Build produces the guest image (fresh per run).
	Build func() *asm.Image
	// Policy produces the VP+ security policy for the image. Nil selects
	// the standard code-injection policy (IFP-2, text HI, fetch clearance).
	Policy func(img *asm.Image) *core.Policy
	// Horizon bounds simulated time; 0 means run to guest exit.
	Horizon kernel.Time
	// Drive optionally interacts with the platform while it runs (the
	// immobilizer workload feeds challenges). It is invoked instead of the
	// default single Run call.
	Drive func(pl *soc.Platform, horizon kernel.Time) error
}

// codeInjectionPolicy is the default VP+ policy for the perf rows: it
// exercises tag propagation everywhere plus the per-fetch clearance check.
func codeInjectionPolicy(img *asm.Image) *core.Policy {
	l := core.IFP2()
	hi, li := l.MustTag(core.ClassHI), l.MustTag(core.ClassLI)
	return core.NewPolicy(l, li).
		WithFetchClearance(hi).
		WithRegion(core.RegionRule{
			Name: "image", Start: img.Base, End: img.End(),
			Classify: true, Class: hi,
		})
}

// SessionPolicy returns the VP+ policy for a workload image: the workload's
// own policy when it has one, the standard code-injection policy otherwise.
// vp-serve uses it to run Table II workloads as live sessions.
func SessionPolicy(w Workload, img *asm.Image) *core.Policy {
	if w.Policy != nil {
		return w.Policy(img)
	}
	return codeInjectionPolicy(img)
}

// Workloads returns the seven Table II rows at the given scale.
func Workloads(scale Scale) []Workload {
	qsortN := []int{20000, 100000, 400000}[scale]
	dhryN := []int{30000, 200000, 1000000}[scale]
	primesN := []int{30000, 150000, 700000}[scale]
	sha512N := []int{96 << 10, 768 << 10, 4 << 20}[scale]
	frames := []int{20, 100, 400}[scale]
	rtosN := []int{400, 3000, 15000}[scale]
	immoRounds := []int{10, 60, 300}[scale]

	return []Workload{
		{Name: "qsort", Build: func() *asm.Image { return guest.QSort(qsortN).Image }},
		{Name: "dhrystone", Build: func() *asm.Image { return guest.Dhrystone(dhryN).Image }},
		{Name: "primes", Build: func() *asm.Image { return guest.Primes(primesN).Image }},
		{Name: "sha512", Build: func() *asm.Image { return guest.SHA512(sha512N).Image }},
		{
			Name:    "simple-sensor",
			Build:   func() *asm.Image { return guest.SimpleSensor(frames).Image },
			Horizon: kernel.Time(frames+10) * 25 * kernel.MS,
		},
		{Name: "freertos-tasks", Build: func() *asm.Image { return guest.RTOSTasks(rtosN).Image }},
		{
			Name:   "immo-fixed",
			Build:  func() *asm.Image { return immo.Firmware(immo.VariantFixed) },
			Policy: immo.BasePolicy,
			Drive:  immoDriver(immoRounds),
		},
	}
}

// immoDriver feeds the immobilizer challenge/response rounds and debug
// dumps, then quits it.
func immoDriver(rounds int) func(pl *soc.Platform, _ kernel.Time) error {
	return func(pl *soc.Platform, _ kernel.Time) error {
		challenge := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		for r := 0; r < rounds; r++ {
			challenge[0] = byte(r)
			before := len(pl.CAN.TxLog)
			pl.CAN.Deliver(0x100, challenge)
			deadline := pl.Sim.Now() + kernel.S
			for len(pl.CAN.TxLog) == before {
				if pl.Sim.Now() >= deadline {
					return fmt.Errorf("perf: immo did not answer round %d", r)
				}
				if err := pl.Run(pl.Sim.Now() + kernel.MS); err != nil {
					return err
				}
			}
			if r%8 == 0 {
				pl.UART.Inject([]byte{'d'})
			}
		}
		pl.UART.Inject([]byte{'q'})
		for {
			if exited, _ := pl.Exited(); exited {
				return nil
			}
			if err := pl.Run(pl.Sim.Now() + kernel.MS); err != nil {
				return err
			}
		}
	}
}

// Measurement is the outcome of one platform run: executed instructions and
// host wall-clock time.
type Measurement struct {
	Instr uint64
	Wall  time.Duration
}

// MIPS returns million instructions per host second.
func (m Measurement) MIPS() float64 {
	if m.Wall <= 0 {
		return 0
	}
	return float64(m.Instr) / 1e6 / m.Wall.Seconds()
}

// Options selects the platform flavour for a single measurement run.
type Options struct {
	// DIFT selects the VP+ (with the workload's policy); false is the
	// baseline VP.
	DIFT bool
	// TLMMem routes every VP+ data access through full TLM transactions
	// (the paper's memory-interface organization) instead of the direct
	// path.
	TLMMem bool
	// Decoupled runs the VP+ taint monitor on a parallel goroutine fed
	// through a retire-record ring instead of inline in the interpreter
	// loop. Ignored on the baseline VP.
	Decoupled bool
	// NoDecodeCache disables the predecoded-instruction cache, for
	// ablation: it isolates how much of the platform's speed comes from
	// caching decode work versus the rest of the interpreter.
	NoDecodeCache bool
	// Trace attaches the simulation-side trace layer (profiler, waveform
	// probes, kernel trace) to the measured platform; nil measures the
	// undisturbed fast path. Used by the -profile smoke run of the CI perf
	// guard.
	Trace *trace.Trace
	// Cover attaches the coverage subsystem (guest coverage, taint heatmap,
	// policy audit) to the measured platform; nil measures the undisturbed
	// fast path. Used by the -cover smoke run of the CI perf guard.
	Cover *cover.Cover
	// Telemetry attaches a live-metrics sampler to the measured platform;
	// nil measures the undisturbed fast path. Used by the -telemetry smoke
	// run of the CI perf guard.
	Telemetry *telemetry.Sampler
	// FlightOff disables the always-on flight recorder for this
	// measurement. The default measures the platform as shipped (recorder
	// on); the -flight guard uses this to price the recorder.
	FlightOff bool
}

// RunOnce executes the workload on one platform flavour (dift selects VP+)
// and measures it.
func RunOnce(w Workload, dift bool) (Measurement, error) {
	return RunOnceOpts(w, Options{DIFT: dift})
}

// RunOnceCfg is RunOnce with the VP+ memory-interface choice exposed.
func RunOnceCfg(w Workload, dift, tlmMem bool) (Measurement, error) {
	return RunOnceOpts(w, Options{DIFT: dift, TLMMem: tlmMem})
}

// RunOnceOpts executes and measures the workload under the given options.
func RunOnceOpts(w Workload, o Options) (Measurement, error) {
	img := w.Build()
	var pol *core.Policy
	dift := o.DIFT
	if dift {
		if w.Policy != nil {
			pol = w.Policy(img)
		} else {
			pol = codeInjectionPolicy(img)
		}
	}
	pl, err := soc.New(soc.Config{Policy: pol, TaintMemViaTLM: o.TLMMem, DecoupledTaint: o.Decoupled, NoDecodeCache: o.NoDecodeCache, Trace: o.Trace, Cover: o.Cover, Telemetry: o.Telemetry, FlightOff: o.FlightOff})
	if err != nil {
		return Measurement{}, err
	}
	defer pl.Shutdown()
	if err := pl.Load(img); err != nil {
		return Measurement{}, err
	}
	horizon := w.Horizon
	if horizon == 0 {
		horizon = kernel.Forever
	}
	start := time.Now()
	if w.Drive != nil {
		err = w.Drive(pl, horizon)
	} else {
		err = pl.Run(horizon)
	}
	wall := time.Since(start)
	if err != nil {
		return Measurement{}, fmt.Errorf("perf: %s (dift=%v): %w", w.Name, dift, err)
	}
	if exited, code := pl.Exited(); !exited {
		return Measurement{}, fmt.Errorf("perf: %s did not exit", w.Name)
	} else if code != 0 {
		return Measurement{}, fmt.Errorf("perf: %s failed its self-check (exit %d)", w.Name, code)
	}
	return Measurement{Instr: pl.Instret(), Wall: wall}, nil
}

// ProfileSmoke runs one workload with the trace layer (kernel trace +
// profiler) attached and returns the profiler for inspection. It is the CI
// guard's check that tracing coexists with the hot loop: the run must exit
// cleanly and the profiler must attribute the retired cycles.
func ProfileSmoke(w Workload, dift bool) (*trace.Profiler, Measurement, error) {
	tr := &trace.Trace{
		Kernel: trace.NewKernelTrace(0),
		Prof:   trace.NewProfiler(soc.RAMBase, soc.DefaultRAMSize),
	}
	m, err := RunOnceOpts(w, Options{DIFT: dift, Trace: tr})
	return tr.Prof, m, err
}

// CoverSmoke runs one workload with all three coverage views attached and
// returns them for inspection. It is the CI guard's check that coverage
// coexists with the hot loop: the run must exit cleanly, the views must have
// recorded data, and the measured MIPS must stay within a (generous) band of
// the archived Table II VP+ figure.
func CoverSmoke(w Workload, dift bool) (*cover.Cover, Measurement, error) {
	cv := cover.New()
	m, err := RunOnceOpts(w, Options{DIFT: dift, Cover: cv})
	return cv, m, err
}

// TelemetrySmoke runs one workload with a live-telemetry sampler ticking at
// the given simulated-time period and returns the sampler for inspection. It
// is the CI guard's check that the sampler daemon coexists with the hot
// loop: the run must exit cleanly and the captured timeseries must be
// well-formed (checked by the caller).
func TelemetrySmoke(w Workload, dift bool, every kernel.Time) (*telemetry.Sampler, Measurement, error) {
	smp := telemetry.NewSampler(telemetry.Options{Every: every})
	m, err := RunOnceOpts(w, Options{DIFT: dift, Telemetry: smp})
	return smp, m, err
}

// Row is one completed Table II row.
type Row struct {
	Name   string
	Instr  uint64
	LoCASM int
	VP     Measurement
	VPPlus Measurement
	// VPPlusDec is the decoupled-taint-monitor VP+ measurement; zero when
	// the row was measured without -decoupled.
	VPPlusDec Measurement
}

// Overhead is the VP+ / VP slowdown factor.
func (r Row) Overhead() float64 {
	if r.VP.Wall <= 0 {
		return 0
	}
	return r.VPPlus.Wall.Seconds() / r.VP.Wall.Seconds()
}

// OverheadDecoupled is the decoupled VP+ / VP slowdown factor (0 when the
// decoupled flavour was not measured).
func (r Row) OverheadDecoupled() float64 {
	if r.VP.Wall <= 0 || r.VPPlusDec.Wall <= 0 {
		return 0
	}
	return r.VPPlusDec.Wall.Seconds() / r.VP.Wall.Seconds()
}

// RunRow measures both flavours of one workload.
func RunRow(w Workload) (Row, error) {
	return RunRowCfg(w, false)
}

// RunRowCfg measures both flavours, optionally with the VP+ routed through
// TLM memory transactions.
func RunRowCfg(w Workload, tlmMem bool) (Row, error) {
	return RunRowBest(w, tlmMem, 1)
}

// RunRowBest measures both flavours reps times each and keeps the fastest
// measurement per flavour. The simulator is deterministic, so repeated runs
// execute identical instruction streams; wall-clock differences are host
// noise (shared runners, frequency scaling), and best-of-N measures what the
// code can do rather than what the host happened to allow. The CI perf
// guard uses reps=3 so a single contended run cannot fail the build.
func RunRowBest(w Workload, tlmMem bool, reps int) (Row, error) {
	return RunRowBestOpts(w, tlmMem, reps, false)
}

// RunRowBestOpts is RunRowBest with an optional third flavour: when decoupled
// is set, the VP+ is additionally measured with the taint monitor running on
// a parallel propagation core (Row.VPPlusDec), so one report carries the
// inline-vs-decoupled overhead pair per workload.
func RunRowBestOpts(w Workload, tlmMem bool, reps int, decoupled bool) (Row, error) {
	return RunRowConfig(w, RowConfig{TLMMem: tlmMem, Reps: reps, Decoupled: decoupled})
}

// RowConfig selects the flavours and conditions RunRowConfig measures.
type RowConfig struct {
	TLMMem    bool
	Reps      int
	Decoupled bool
	// FlightOff measures every flavour with the flight recorder disabled.
	// The default prices the platform as shipped (recorder on).
	FlightOff bool
}

// RunRowConfig measures one workload's flavours under the given config.
func RunRowConfig(w Workload, cfg RowConfig) (Row, error) {
	tlmMem, reps, decoupled := cfg.TLMMem, cfg.Reps, cfg.Decoupled
	if reps < 1 {
		reps = 1
	}
	best := func(o Options) (Measurement, error) {
		var m Measurement
		n := reps
		for r := 0; r < n; r++ {
			got, err := RunOnceOpts(w, o)
			if err != nil {
				return Measurement{}, err
			}
			if r == 0 || got.Wall < m.Wall {
				m = got
			}
			if r == 0 && reps > 1 && got.Wall < 200*time.Millisecond {
				// Sub-200ms workloads are dominated by scheduling noise; a
				// single contended slice skews the whole measurement. Triple
				// the repetitions — the extra runs cost well under a second.
				n = reps * 3
			}
		}
		return m, nil
	}
	vp, err := best(Options{FlightOff: cfg.FlightOff})
	if err != nil {
		return Row{}, err
	}
	vpp, err := best(Options{DIFT: true, TLMMem: tlmMem, FlightOff: cfg.FlightOff})
	if err != nil {
		return Row{}, err
	}
	row := Row{
		Name:   w.Name,
		Instr:  vp.Instr,
		LoCASM: w.Build().TextWords(),
		VP:     vp,
		VPPlus: vpp,
	}
	if decoupled {
		vppd, err := best(Options{DIFT: true, TLMMem: tlmMem, Decoupled: true, FlightOff: cfg.FlightOff})
		if err != nil {
			return Row{}, err
		}
		row.VPPlusDec = vppd
	}
	return row, nil
}

// ReportRow is one Table II row in the machine-readable report.
type ReportRow struct {
	Name       string  `json:"name"`
	Instr      uint64  `json:"instructions"`
	LoCASM     int     `json:"loc_asm"`
	VPSecs     float64 `json:"vp_seconds"`
	VPPlusSecs float64 `json:"vp_plus_seconds"`
	VPMIPS     float64 `json:"vp_mips"`
	VPPlusMIPS float64 `json:"vp_plus_mips"`
	Overhead   float64 `json:"overhead_factor"`
	// Decoupled-monitor pair; omitted when the row was measured inline-only.
	VPPlusDecSecs float64 `json:"vp_plus_dec_seconds,omitempty"`
	VPPlusDecMIPS float64 `json:"vp_plus_dec_mips,omitempty"`
	OverheadDec   float64 `json:"overhead_factor_decoupled,omitempty"`
}

// ReportMeta records the conditions a report was measured under, so a
// baseline diff can tell a code regression from a host change. SampleEveryNS
// is the telemetry smoke's sampling period (0 when the smoke did not run).
type ReportMeta struct {
	GoVersion     string `json:"go_version"`
	OS            string `json:"os"`
	Arch          string `json:"arch"`
	NumCPU        int    `json:"num_cpu"`
	Reps          int    `json:"reps"`
	SampleEveryNS uint64 `json:"sample_every_ns,omitempty"`
}

// NewReportMeta captures the current host and run configuration.
func NewReportMeta(reps int, sampleEvery kernel.Time) ReportMeta {
	return ReportMeta{
		GoVersion:     runtime.Version(),
		OS:            runtime.GOOS,
		Arch:          runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Reps:          reps,
		SampleEveryNS: uint64(sampleEvery),
	}
}

// Report is the machine-readable Table II comparison, written next to the
// human-readable table so CI or plotting scripts can diff runs.
type Report struct {
	Scale           string      `json:"scale"`
	TLMMem          bool        `json:"tlm_mem"`
	Meta            *ReportMeta `json:"meta,omitempty"`
	Rows            []ReportRow `json:"rows"`
	AverageOverhead float64     `json:"average_overhead"`
	// AverageOverheadDecoupled is present only when every row carries a
	// decoupled measurement; the perf guard asserts it beats AverageOverhead.
	AverageOverheadDecoupled float64 `json:"average_overhead_decoupled,omitempty"`
}

// NewReport converts measured rows into a Report.
func NewReport(scale string, tlmMem bool, rows []Row) Report {
	rep := Report{Scale: scale, TLMMem: tlmMem}
	var sumOv, sumOvDec float64
	nDec := 0
	for _, r := range rows {
		rr := ReportRow{
			Name:       r.Name,
			Instr:      r.Instr,
			LoCASM:     r.LoCASM,
			VPSecs:     r.VP.Wall.Seconds(),
			VPPlusSecs: r.VPPlus.Wall.Seconds(),
			VPMIPS:     r.VP.MIPS(),
			VPPlusMIPS: r.VPPlus.MIPS(),
			Overhead:   r.Overhead(),
		}
		if r.VPPlusDec.Wall > 0 {
			rr.VPPlusDecSecs = r.VPPlusDec.Wall.Seconds()
			rr.VPPlusDecMIPS = r.VPPlusDec.MIPS()
			rr.OverheadDec = r.OverheadDecoupled()
			sumOvDec += r.OverheadDecoupled()
			nDec++
		}
		rep.Rows = append(rep.Rows, rr)
		sumOv += r.Overhead()
	}
	if len(rows) > 0 {
		rep.AverageOverhead = sumOv / float64(len(rows))
	}
	if nDec == len(rows) && nDec > 0 {
		rep.AverageOverheadDecoupled = sumOvDec / float64(nDec)
	}
	return rep
}

// WriteFile writes the report as indented JSON to path.
func (rep Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report previously written with WriteFile (the CI perf
// guard's archived baseline).
func ReadFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("perf: %s: %w", path, err)
	}
	return rep, nil
}

// CheckRegression compares measured rows against a baseline report and
// returns one message per workload whose VP or VP+ MIPS fell more than
// tolerance (e.g. 0.10 for 10%) below the baseline. Workloads missing from
// either side are skipped — the guard must not fail on renamed benchmarks.
func CheckRegression(baseline Report, rows []Row, tolerance float64) []string {
	base := make(map[string]ReportRow, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[r.Name] = r
	}
	var msgs []string
	check := func(name, flavour string, got, want float64) {
		if want > 0 && got < want*(1-tolerance) {
			msgs = append(msgs, fmt.Sprintf(
				"%s: %s %.1f MIPS is %.1f%% below baseline %.1f MIPS (tolerance %.0f%%)",
				name, flavour, got, (1-got/want)*100, want, tolerance*100))
		}
	}
	for _, r := range rows {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		check(r.Name, "VP", r.VP.MIPS(), b.VPMIPS)
		check(r.Name, "VP+", r.VPPlus.MIPS(), b.VPPlusMIPS)
		if r.VPPlusDec.Wall > 0 && b.VPPlusDecMIPS > 0 {
			check(r.Name, "VP+dec", r.VPPlusDec.MIPS(), b.VPPlusDecMIPS)
		}
	}
	return msgs
}

// group3 formats an integer with thousands separators, as in the paper.
func group3(v uint64) string {
	s := fmt.Sprintf("%d", v)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, ",")
}

// Table renders rows in the paper's Table II layout plus the average line.
// Rows measured with the decoupled monitor get two extra columns (VP+dec
// seconds and overhead) after the inline pair.
func Table(rows []Row) string {
	dec := false
	for _, r := range rows {
		if r.VPPlusDec.Wall > 0 {
			dec = true
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %16s %8s %9s %9s %7s %7s %6s",
		"Benchmark", "#instr. exec.", "LoC ASM", "VP [s]", "VP+ [s]", "VP", "VP+", "Ov.")
	if dec {
		fmt.Fprintf(&b, " %10s %7s", "VP+dec [s]", "Ov.dec")
	}
	fmt.Fprintf(&b, "\n%-16s %16s %8s %9s %9s %7s %7s %6s\n",
		"", "", "", "(sim time)", "", "(MIPS)", "", "")
	var sumInstr, n uint64
	var sumLoC int
	var sumVP, sumVPP, sumVPPD float64
	var sumMipsVP, sumMipsVPP, sumOv, sumOvDec float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %16s %8d %9.2f %9.2f %7.1f %7.1f %5.1fx",
			r.Name, group3(r.Instr), r.LoCASM,
			r.VP.Wall.Seconds(), r.VPPlus.Wall.Seconds(),
			r.VP.MIPS(), r.VPPlus.MIPS(), r.Overhead())
		if dec {
			fmt.Fprintf(&b, " %10.2f %6.2fx", r.VPPlusDec.Wall.Seconds(), r.OverheadDecoupled())
		}
		b.WriteByte('\n')
		sumInstr += r.Instr
		sumLoC += r.LoCASM
		sumVP += r.VP.Wall.Seconds()
		sumVPP += r.VPPlus.Wall.Seconds()
		sumVPPD += r.VPPlusDec.Wall.Seconds()
		sumMipsVP += r.VP.MIPS()
		sumMipsVPP += r.VPPlus.MIPS()
		sumOv += r.Overhead()
		sumOvDec += r.OverheadDecoupled()
		n++
	}
	if n > 0 {
		f := float64(n)
		fmt.Fprintf(&b, "%-16s %16s %8d %9.2f %9.2f %7.1f %7.1f %5.1fx",
			"- average -", group3(sumInstr/n), sumLoC/int(n),
			sumVP/f, sumVPP/f, sumMipsVP/f, sumMipsVPP/f, sumOv/f)
		if dec {
			fmt.Fprintf(&b, " %10.2f %6.2fx", sumVPPD/f, sumOvDec/f)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
