package perf

import (
	"strings"
	"testing"
	"time"

	"vpdift/internal/asm"
	"vpdift/internal/guest"
	"vpdift/internal/kernel"
)

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"small": ScaleSmall, "medium": ScaleMedium, "large": ScaleLarge} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale must be rejected")
	}
}

func TestWorkloadsCoverTableII(t *testing.T) {
	names := []string{"qsort", "dhrystone", "primes", "sha512", "simple-sensor", "freertos-tasks", "immo-fixed"}
	ws := Workloads(ScaleSmall)
	if len(ws) != len(names) {
		t.Fatalf("%d workloads, want %d", len(ws), len(names))
	}
	for i, w := range ws {
		if w.Name != names[i] {
			t.Errorf("workload %d = %q, want %q", i, w.Name, names[i])
		}
	}
}

func TestRunRowQsortTiny(t *testing.T) {
	// A minimal end-to-end row: both flavours run, same instruction count,
	// and VP+ is not faster than VP by construction of the metric.
	w := Workloads(ScaleSmall)[0]
	row, err := RunRow(w)
	if err != nil {
		t.Fatal(err)
	}
	if row.Instr == 0 || row.LoCASM == 0 {
		t.Errorf("row = %+v", row)
	}
	if row.VP.Instr != row.VPPlus.Instr {
		t.Errorf("instruction counts differ: VP %d, VP+ %d (same binary, same input)",
			row.VP.Instr, row.VPPlus.Instr)
	}
	if row.Overhead() <= 0 {
		t.Errorf("overhead = %v", row.Overhead())
	}
}

func TestRunRowBestKeepsFastest(t *testing.T) {
	// Best-of-N returns a valid row; the deterministic simulator retires the
	// same instruction stream every rep, so the counts must agree with a
	// single-rep run of the same workload.
	w := Workloads(ScaleSmall)[0]
	row, err := RunRowBest(w, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	single, err := RunRow(w)
	if err != nil {
		t.Fatal(err)
	}
	if row.Instr != single.Instr {
		t.Errorf("best-of-2 retired %d instructions, single run %d", row.Instr, single.Instr)
	}
	if row.VP.Wall <= 0 || row.VPPlus.Wall <= 0 {
		t.Errorf("non-positive wall time: %+v", row)
	}
}

func TestRunRowImmoTiny(t *testing.T) {
	ws := Workloads(ScaleSmall)
	w := ws[len(ws)-1]
	if w.Name != "immo-fixed" {
		t.Fatal("expected immo-fixed last")
	}
	row, err := RunRow(w)
	if err != nil {
		t.Fatal(err)
	}
	if row.Instr == 0 {
		t.Error("no instructions executed")
	}
}

func TestMeasurementMIPS(t *testing.T) {
	m := Measurement{Instr: 2_000_000, Wall: time.Second}
	if got := m.MIPS(); got < 1.9 || got > 2.1 {
		t.Errorf("MIPS = %v", got)
	}
	if (Measurement{}).MIPS() != 0 {
		t.Error("zero measurement MIPS")
	}
	if (Row{}).Overhead() != 0 {
		t.Error("zero row overhead")
	}
}

func TestTableFormat(t *testing.T) {
	rows := []Row{{
		Name: "qsort", Instr: 430719182, LoCASM: 17052,
		VP:     Measurement{Instr: 430719182, Wall: 11600 * time.Millisecond},
		VPPlus: Measurement{Instr: 430719182, Wall: 18300 * time.Millisecond},
	}}
	out := Table(rows)
	for _, want := range []string{"qsort", "430,719,182", "17052", "- average -", "1.6x"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestGroup3(t *testing.T) {
	cases := map[uint64]string{0: "0", 7: "7", 999: "999", 1000: "1,000", 1234567: "1,234,567"}
	for v, want := range cases {
		if got := group3(v); got != want {
			t.Errorf("group3(%d) = %q", v, got)
		}
	}
}

func TestRunOnceFailurePaths(t *testing.T) {
	// Guest that fails its self-check.
	failing := Workload{
		Name: "failing",
		Build: func() *asm.Image {
			return guest.MustProgram("main:\n\tli a0, 3\n\tret\n")
		},
	}
	if _, err := RunOnce(failing, false); err == nil || !strings.Contains(err.Error(), "self-check") {
		t.Errorf("err = %v, want self-check failure", err)
	}

	// Guest that never exits within its horizon.
	hanging := Workload{
		Name: "hanging",
		Build: func() *asm.Image {
			return guest.MustProgram("main:\n1:\tj 1b\n")
		},
		Horizon: kernel.MS,
	}
	if _, err := RunOnce(hanging, true); err == nil || !strings.Contains(err.Error(), "did not exit") {
		t.Errorf("err = %v, want did-not-exit", err)
	}
}

func TestRunOnceTLMMemMatchesResults(t *testing.T) {
	// The TLM-routed VP+ must produce identical guest results (instruction
	// count), only slower.
	w := Workloads(ScaleSmall)[2] // primes
	direct, err := RunOnceCfg(w, true, false)
	if err != nil {
		t.Fatal(err)
	}
	viaTLM, err := RunOnceCfg(w, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Instr != viaTLM.Instr {
		t.Errorf("instruction counts differ: %d vs %d", direct.Instr, viaTLM.Instr)
	}
}
